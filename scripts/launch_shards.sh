#!/bin/sh
# launch_shards.sh — fleet launcher for sharded harness runs: start N
# shard workers (locally in parallel, or one per host over ssh), collect
# one NDJSON file per shard, then merge + render offline:
#
#   scripts/launch_shards.sh --shards=4 --out=results -- \
#       build/bench/fig4_bbv_ddv --scale=paper --threads=0
#   build/tools/dsm_report merge results/shard_*.of4.ndjson > merged.ndjson
#   build/tools/dsm_report render merged.ndjson
#
# Multi-host: pass --hosts=a,b,c (round-robin over shards; the binary and
# working directory must exist on every host, e.g. a shared filesystem).
# Remote workers stream their records back over the ssh connection, so
# only the NDJSON ever crosses the network:
#
#   scripts/launch_shards.sh --shards=8 --hosts=n0,n1,n2,n3 --out=results \
#       -- /shared/repo/build/bench/fig4_bbv_ddv --scale=paper --threads=0
#
# Each local worker also writes a progress heartbeat side channel to
# $out/shard_<i>.of<N>.hb.ndjson (watch the fleet live with
# `dsm_report progress $out/*.hb.ndjson`); pass --no-heartbeat to turn
# the side channel off. Heartbeats stay off for ssh workers — the file
# would land on the remote filesystem where nothing local can poll it.
#
# For batch schedulers, `dsm_report plan --sbatch` prints an equivalent
# job-array script instead of launching anything.
set -eu

shards=""
hosts=""
out="."
heartbeat=1
while [ $# -gt 0 ]; do
  case "$1" in
    --shards=*) shards="${1#--shards=}" ;;
    --hosts=*)  hosts="${1#--hosts=}" ;;
    --out=*)    out="${1#--out=}" ;;
    --no-heartbeat) heartbeat=0 ;;
    --) shift; break ;;
    *) echo "launch_shards.sh: unknown option $1" >&2; exit 2 ;;
  esac
  shift
done
if [ -z "$shards" ] || [ $# -lt 1 ]; then
  echo "usage: launch_shards.sh --shards=N [--hosts=h1,h2,...] [--out=DIR]" \
       "[--no-heartbeat] -- BINARY [FLAGS...]" >&2
  exit 2
fi

mkdir -p "$out"

# Round-robin hosts over shard ids ("" = run locally).
host_count=0
if [ -n "$hosts" ]; then
  set -f
  old_ifs="$IFS"; IFS=,
  for h in $hosts; do
    host_count=$((host_count + 1))
    eval "host_$host_count=\$h"
  done
  IFS="$old_ifs"
  set +f
fi

# The remote side gets one shell-evaluated string: single-quote every
# argument (with '\'' escaping) so flags with spaces/globs/$ survive the
# remote shell exactly as the local exec-"$@" branch passes them.
remote_cmd=""
for arg in "$@"; do
  quoted=$(printf '%s' "$arg" | sed "s/'/'\\\\''/g")
  remote_cmd="$remote_cmd '$quoted'"
done

# Interrupted launches must not strand detached workers: on INT/TERM,
# kill every still-running shard, report which ones were reaped (so the
# user knows which NDJSON files are partial), and exit with the
# conventional 128+signal code. The EXIT trap is cleared on the normal
# path before the final report.
launched=0
cleanup() {
  sig="$1"
  reaped=""
  i=0
  while [ "$i" -lt "$launched" ]; do
    eval "pid=\$pid_$i"
    if kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      reaped="$reaped $i"
    fi
    i=$((i + 1))
  done
  # Collect the corpses so no zombie outlives the script.
  i=0
  while [ "$i" -lt "$launched" ]; do
    eval "pid=\$pid_$i"
    wait "$pid" 2>/dev/null || true
    i=$((i + 1))
  done
  if [ -n "$reaped" ]; then
    echo "launch_shards.sh: interrupted ($sig); reaped shards:$reaped" \
         "(of $shards) — their NDJSON in $out is partial" >&2
  else
    echo "launch_shards.sh: interrupted ($sig); no shards left running" >&2
  fi
}
trap 'cleanup INT; exit 130' INT
trap 'cleanup TERM; exit 143' TERM

i=0
while [ "$i" -lt "$shards" ]; do
  file="$out/shard_$i.of$shards.ndjson"
  hb_file="$out/shard_$i.of$shards.hb.ndjson"
  if [ "$host_count" -gt 0 ]; then
    slot=$(( (i % host_count) + 1 ))
    eval "host=\$host_$slot"
    echo "launch_shards.sh: shard $i/$shards on $host -> $file" >&2
    # -n: the backgrounded workers must not compete for the script's
    # stdin (SIGTTIN hangs / stolen bytes).
    ssh -n "$host" "$remote_cmd --shard=$i/$shards" > "$file" &
  elif [ "$heartbeat" -eq 1 ]; then
    echo "launch_shards.sh: shard $i/$shards locally -> $file" >&2
    "$@" --shard="$i/$shards" --heartbeat="$hb_file" > "$file" &
  else
    echo "launch_shards.sh: shard $i/$shards locally -> $file" >&2
    "$@" --shard="$i/$shards" > "$file" &
  fi
  eval "pid_$i=$!"
  launched=$((launched + 1))
  i=$((i + 1))
done

# Reap every worker and name each culprit: one bad shard must not mask
# another, and "shard 3 of 8 failed" beats "a worker failed somewhere".
rc=0
failed=""
i=0
while [ "$i" -lt "$shards" ]; do
  eval "pid=\$pid_$i"
  worker_rc=0
  wait "$pid" || worker_rc=$?
  if [ "$worker_rc" -ne 0 ]; then
    echo "launch_shards.sh: shard $i/$shards failed (exit $worker_rc)" >&2
    failed="$failed $i"
    rc="$worker_rc"
  fi
  i=$((i + 1))
done
trap - INT TERM
if [ "$rc" -ne 0 ]; then
  echo "launch_shards.sh: failed shards:$failed (of $shards); partial" \
       "NDJSON kept in $out for inspection" >&2
  exit "$rc"
fi

echo "launch_shards.sh: all $shards shards done; next:" >&2
echo "  dsm_report merge $out/shard_*.of$shards.ndjson > $out/merged.ndjson" >&2
echo "  dsm_report render $out/merged.ndjson" >&2
if [ "$heartbeat" -eq 1 ] && [ "$host_count" -eq 0 ]; then
  echo "  dsm_report progress $out/shard_*.of$shards.hb.ndjson" >&2
fi
