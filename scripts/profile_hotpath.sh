#!/bin/sh
# profile_hotpath.sh — fresh gprof profile of the memory-system hot path,
# the starting point ROADMAP.md prescribes for every perf PR: build an
# out-of-tree -pg tree (the normal build stays untouched), run
# `bench/perf_hotpath --scale=bench` three times, and write the annotated
# flat profile + call graph of run 1 followed by the top flat-profile
# lines of runs 2 and 3 as a stability cross-check. (Pooling the runs
# with `gprof -s` would be preferable, but the image's binutils gprof
# dies with "somebody miscounted: ltab.len=..." on this binary's symbol
# table — even merging a gmon file with itself — so each run is analyzed
# separately; the workload is deterministic, so the runs agree to
# sampling noise.)
#
#   scripts/profile_hotpath.sh [--build=DIR] [--out=FILE] [-- extra args]
#
# Defaults: --build=build-pg, --out=profile_hotpath.txt. Extra args after
# `--` go to perf_hotpath (e.g. `-- --topology=Hypercube`). The harness's
# JSON trajectory is redirected into the -pg tree so the repo's committed
# BENCH_hotpath.json is never clobbered by an instrumented (slower) run.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build="$repo/build-pg"
out="$repo/profile_hotpath.txt"
while [ $# -gt 0 ]; do
  case "$1" in
    --build=*) build="${1#--build=}" ;;
    --out=*)   out="${1#--out=}" ;;
    --)        shift; break ;;
    *) echo "usage: $0 [--build=DIR] [--out=FILE] [-- harness args]" >&2
       exit 2 ;;
  esac
  shift
done

# Out-of-tree instrumented build: optimized (so the profile reflects the
# shipped inlining) but with -pg call counting and symbols. -no-pie pins
# the text segment, without which ASLR makes the three gmon histograms
# incompatible and `gprof -s` dies with "somebody miscounted".
cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-pg -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-pg -no-pie" >/dev/null
cmake --build "$build" -j "$(nproc)" --target perf_hotpath >/dev/null

bin="$build/bench/perf_hotpath"
cd "$build"  # gmon.out lands in the cwd

# Three full runs, pooled. --threads=1 keeps gprof's sampling coherent
# (gmon.out is per-process and its timers are per-thread-unaware).
i=1
while [ "$i" -le 3 ]; do
  echo "profile run $i/3..." >&2
  "$bin" --scale=bench --threads=1 --json="$build/hotpath_pg.json" \
    ${1+"$@"} >/dev/null
  mv gmon.out "gmon.$i.out"
  i=$((i + 1))
done

{
  echo "# gprof flat profile: perf_hotpath --scale=bench (run 1 of 3)"
  echo "# built: RelWithDebInfo -pg ($(c++ --version | head -n1))"
  echo "# host: $(uname -sr)"
  echo
  gprof -b -p "$bin" gmon.1.out
  echo
  echo "# call graph (run 1, top entries)"
  echo
  gprof -b -q "$bin" gmon.1.out | head -n 120
  echo
  echo "# stability cross-check: top flat-profile lines of runs 2 and 3"
  for run in 2 3; do
    echo
    echo "## run $run"
    gprof -b -p "$bin" "gmon.$run.out" | sed -n '1,14p'
  done
} > "$out"

echo "wrote $out" >&2
