#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dsm {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cov(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatTest, KnownPopulationVariance) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example: sigma^2 = 4
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.cov(), 0.4);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i * 0.1;
    all.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(RunningStatTest, CovZeroWhenMeanZero) {
  RunningStat s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_EQ(s.cov(), 0.0);  // guarded against divide-by-zero
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bucket 0
  h.add(9.99);   // bucket 9
  h.add(-5.0);   // clamps to bucket 0
  h.add(50.0);   // clamps to bucket 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[9], 2u);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.buckets()[1], 10u);
}

TEST(HistogramTest, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(StatRegistryTest, IncSetGet) {
  StatRegistry r;
  EXPECT_EQ(r.get("x"), 0u);
  EXPECT_FALSE(r.has("x"));
  r.inc("x");
  r.inc("x", 4);
  EXPECT_EQ(r.get("x"), 5u);
  r.set("x", 2);
  EXPECT_EQ(r.get("x"), 2u);
  EXPECT_TRUE(r.has("x"));
}

TEST(StatRegistryTest, MergeAddsCounters) {
  StatRegistry a, b;
  a.inc("shared", 1);
  b.inc("shared", 2);
  b.inc("only_b", 7);
  a.merge(b);
  EXPECT_EQ(a.get("shared"), 3u);
  EXPECT_EQ(a.get("only_b"), 7u);
}

TEST(SpanStatsTest, MeanStddevCov) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean_of(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev_of(xs), 2.0);
  EXPECT_DOUBLE_EQ(cov_of(xs), 0.4);
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(cov_of({}), 0.0);
}

}  // namespace
}  // namespace dsm
