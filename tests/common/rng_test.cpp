#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dsm {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng r(9);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) ++seen[r.next_below(10)];
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(seen[i], 800) << "bucket " << i;   // ~1000 expected
    EXPECT_LT(seen[i], 1200) << "bucket " << i;
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(13);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng r(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng r(19);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(23);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng r(29);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 20'000; ++i) ++counts[r.zipf(16, 1.2)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[15]);
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng r(31);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 16'000; ++i) ++counts[r.zipf(8, 0.0)];
  for (const int c : counts) {
    EXPECT_GT(c, 1600);
    EXPECT_LT(c, 2400);
  }
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng r(37);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  r.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(41);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace dsm
