#include "common/config.hpp"

#include <gtest/gtest.h>

namespace dsm {
namespace {

TEST(ConfigTest, DefaultMatchesTable1) {
  const MachineConfig cfg = default_config(8);
  EXPECT_EQ(cfg.core.frequency_hz, 2'000'000'000u);
  EXPECT_EQ(cfg.core.num_alu, 6u);
  EXPECT_EQ(cfg.core.num_fpu, 4u);
  EXPECT_EQ(cfg.core.fetch_width, 6u);
  EXPECT_EQ(cfg.core.issue_width, 6u);
  EXPECT_EQ(cfg.core.commit_width, 6u);
  EXPECT_EQ(cfg.core.int_regs, 128u);
  EXPECT_EQ(cfg.core.fp_regs, 128u);
  EXPECT_EQ(cfg.predictor.table_entries, 2048u);
  EXPECT_EQ(cfg.l1.size_bytes, 16u * 1024);
  EXPECT_EQ(cfg.l1.associativity, 1u);
  EXPECT_EQ(cfg.l1.latency_cycles, 1u);
  EXPECT_EQ(cfg.l2.size_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(cfg.l2.associativity, 8u);
  EXPECT_EQ(cfg.l2.line_bytes, 32u);
  EXPECT_EQ(cfg.l2.latency_cycles, 12u);
  EXPECT_DOUBLE_EQ(cfg.memory.access_ns, 75.0);
  EXPECT_DOUBLE_EQ(cfg.memory.bandwidth_gbps, 2.6);
  EXPECT_EQ(cfg.network.topology, Topology::kHypercube);
  EXPECT_DOUBLE_EQ(cfg.network.router_frequency_hz, 400e6);
  EXPECT_DOUBLE_EQ(cfg.network.pin_to_pin_ns, 16.0);
  EXPECT_EQ(cfg.phase.bbv_entries, 32u);
  EXPECT_EQ(cfg.phase.footprint_vectors, 32u);
  EXPECT_EQ(cfg.phase.interval_instructions, 3'000'000u);
}

TEST(ConfigTest, NsToCyclesAt2GHz) {
  const MachineConfig cfg = default_config(2);
  EXPECT_EQ(cfg.ns_to_cycles(75.0), 150u);
  EXPECT_EQ(cfg.ns_to_cycles(16.0), 32u);
  EXPECT_EQ(cfg.ns_to_cycles(0.4), 1u);  // rounds up
}

TEST(ConfigTest, IntervalPerProcessorDividesByNodes) {
  for (const unsigned n : {2u, 8u, 32u}) {
    const MachineConfig cfg = default_config(n);
    EXPECT_EQ(cfg.interval_per_processor(), 3'000'000u / n);
  }
}

TEST(ConfigTest, DefaultValidatesForPaperNodeCounts) {
  for (const unsigned n : {1u, 2u, 4u, 8u, 16u, 32u}) {
    EXPECT_EQ(default_config(n).validate(), "") << n << " nodes";
  }
}

TEST(ConfigTest, HypercubeRejectsNonPow2) {
  MachineConfig cfg = default_config(8);
  cfg.num_nodes = 6;
  EXPECT_NE(cfg.validate(), "");
}

TEST(ConfigTest, RejectsMismatchedLineSizes) {
  MachineConfig cfg = default_config(8);
  cfg.l1.line_bytes = 64;
  EXPECT_NE(cfg.validate(), "");
}

TEST(ConfigTest, RejectsNonPow2Structures) {
  MachineConfig cfg = default_config(8);
  cfg.predictor.table_entries = 1000;
  EXPECT_NE(cfg.validate(), "");

  cfg = default_config(8);
  cfg.l2.size_bytes = 3'000'000;
  EXPECT_NE(cfg.validate(), "");
}

TEST(ConfigTest, RejectsBadMlpOverlap) {
  MachineConfig cfg = default_config(8);
  cfg.core.mlp_overlap = 1.0;
  EXPECT_NE(cfg.validate(), "");
  cfg.core.mlp_overlap = -0.1;
  EXPECT_NE(cfg.validate(), "");
}

TEST(ConfigTest, RejectsPageSmallerThanLine) {
  MachineConfig cfg = default_config(8);
  cfg.memory.page_bytes = 16;
  EXPECT_NE(cfg.validate(), "");
}

TEST(ConfigTest, Table1RenderingContainsEveryRow) {
  const std::string t = format_table1(default_config(32));
  for (const char* needle :
       {"2GHz", "6 ALU, 4 FPU", "6/6/6", "128 Int, 128 FP",
        "2048-entry gshare", "16kB, direct-mapped, 1 cycle",
        "2MB, 8-way, 32B, 12 cycles", "SDRAM interleaved, 75ns, 2.6GB/s",
        "Hypercube, wormhole, 400MHz pipelined router, 16ns pin-to-pin"}) {
    EXPECT_NE(t.find(needle), std::string::npos) << needle;
  }
}

TEST(ConfigTest, TopologyNames) {
  EXPECT_STREQ(topology_name(Topology::kHypercube), "Hypercube");
  EXPECT_STREQ(topology_name(Topology::kRing), "Ring");
}

}  // namespace
}  // namespace dsm
