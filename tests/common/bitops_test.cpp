#include "common/bitops.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dsm {
namespace {

TEST(BitopsTest, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2((1ull << 63) + 1));
}

TEST(BitopsTest, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(2), 1u);
  EXPECT_EQ(log2_exact(32), 5u);
  EXPECT_EQ(log2_exact(1ull << 40), 40u);
}

TEST(BitopsTest, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(32), 32u);
  EXPECT_EQ(ceil_pow2(33), 64u);
}

TEST(BitopsTest, HammingIsHypercubeHopCount) {
  EXPECT_EQ(hamming(0b0000, 0b0000), 0u);
  EXPECT_EQ(hamming(0b0000, 0b1111), 4u);
  EXPECT_EQ(hamming(0b1010, 0b0101), 4u);
  EXPECT_EQ(hamming(5, 4), 1u);
}

TEST(BitopsTest, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 8), 0u);
  EXPECT_EQ(ceil_div(1, 8), 1u);
  EXPECT_EQ(ceil_div(8, 8), 1u);
  EXPECT_EQ(ceil_div(9, 8), 2u);
}

TEST(BitopsTest, AlignUp) {
  EXPECT_EQ(align_up(0, 32), 0u);
  EXPECT_EQ(align_up(1, 32), 32u);
  EXPECT_EQ(align_up(32, 32), 32u);
  EXPECT_EQ(align_up(4097, 4096), 8192u);
}

TEST(BitopsTest, Fnv1a64IsDeterministicAndSpreads) {
  EXPECT_EQ(fnv1a64(42), fnv1a64(42));
  EXPECT_NE(fnv1a64(42), fnv1a64(43));
  // Consecutive inputs should land in different low bits most of the time
  // (the BBV accumulator uses hash % 32).
  int collisions = 0;
  for (std::uint64_t i = 0; i < 64; ++i)
    if (fnv1a64(i) % 32 == fnv1a64(i + 1) % 32) ++collisions;
  EXPECT_LT(collisions, 10);
}

TEST(BitopsTest, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(BitopsTest, ForEachSetBitEdgeCases) {
  std::vector<unsigned> seen;
  for_each_set_bit(0, [&](unsigned i) { seen.push_back(i); });
  EXPECT_TRUE(seen.empty());
  for_each_set_bit(~0ull, [&](unsigned i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 64u);
  for (unsigned i = 0; i < 64; ++i) EXPECT_EQ(seen[i], i);
  seen.clear();
  for_each_set_bit(1ull << 63, [&](unsigned i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 63u);
}

TEST(BitopsTest, ForEachSetBitMatchesFullScanOnRandomSharerSets) {
  // The coherence fabric iterates invalidation targets by bit-scanning the
  // sharer bitset; it must visit exactly the nodes a 0..63 scan visits, in
  // the same ascending order.
  std::uint64_t x = 0x9e3779b97f4a7c15ull;  // xorshift64
  for (int trial = 0; trial < 1000; ++trial) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    // Mix densities: mask down some trials so sparse sets are covered.
    const std::uint64_t bits =
        trial % 3 == 0 ? x : (trial % 3 == 1 ? x & (x >> 32) : x & 0xffull);
    std::vector<unsigned> scan;
    for (unsigned i = 0; i < 64; ++i)
      if ((bits >> i) & 1u) scan.push_back(i);
    std::vector<unsigned> ctz;
    for_each_set_bit(bits, [&](unsigned i) { ctz.push_back(i); });
    ASSERT_EQ(ctz, scan) << "bits=" << bits;
  }
}

}  // namespace
}  // namespace dsm
