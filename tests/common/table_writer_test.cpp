#include "common/table_writer.hpp"

#include <gtest/gtest.h>

namespace dsm {
namespace {

TEST(TableWriterTest, TextAlignsColumns) {
  TableWriter t({"a", "long_header"});
  t.add_row({"xxxxxx", "1"});
  const std::string out = t.to_text();
  // Header separator and both rows present.
  EXPECT_NE(out.find("a      | long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxx | 1"), std::string::npos);
}

TEST(TableWriterTest, CsvEscapesSpecials) {
  TableWriter t({"name", "note"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
}

TEST(TableWriterTest, CsvRowCount) {
  TableWriter t({"x"});
  t.add_row({"1"});
  t.add_row({"2"});
  const std::string csv = t.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableWriterTest, FmtSignificantDigits) {
  EXPECT_EQ(TableWriter::fmt(0.123456, 3), "0.123");
  EXPECT_EQ(TableWriter::fmt(1234567.0, 3), "1.23e+06");
  EXPECT_EQ(TableWriter::fmt(2.0, 4), "2");
}

TEST(TableWriterDeathTest, RowWidthMismatchAborts) {
  TableWriter t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only one"}), "row width");
}

}  // namespace
}  // namespace dsm
