#include "sim/allocator.hpp"

#include <gtest/gtest.h>

#include "memory/home_map.hpp"

namespace dsm::sim {
namespace {

constexpr std::uint64_t kPage = 4096;

TEST(AllocatorTest, AllocationsArePageAlignedAndDisjoint) {
  mem::HomeMap hm(4, kPage, mem::Placement::kRoundRobin);
  SimAllocator alloc(hm);
  const Addr a = alloc.alloc(100);
  const Addr b = alloc.alloc(5000);
  const Addr c = alloc.alloc(1);
  EXPECT_EQ(a % kPage, 0u);
  EXPECT_EQ(b % kPage, 0u);
  EXPECT_EQ(c % kPage, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(c, b + 5000);
  EXPECT_EQ(alloc.allocated_bytes(), 5101u);
}

TEST(AllocatorTest, AllocOnPlacesEveryPage) {
  mem::HomeMap hm(4, kPage, mem::Placement::kRoundRobin);
  SimAllocator alloc(hm);
  const Addr a = alloc.alloc_on(3 * kPage, 2);
  for (Addr off = 0; off < 3 * kPage; off += kPage)
    EXPECT_EQ(hm.home_of(a + off, 0), 2u);
}

TEST(AllocatorTest, AllocDistributedRoundRobins) {
  mem::HomeMap hm(4, kPage, mem::Placement::kFirstTouch);
  SimAllocator alloc(hm);
  const Addr a = alloc.alloc_distributed(4 * kPage, 1);
  EXPECT_EQ(hm.home_of(a, 0), 1u);
  EXPECT_EQ(hm.home_of(a + kPage, 0), 2u);
  EXPECT_EQ(hm.home_of(a + 2 * kPage, 0), 3u);
  EXPECT_EQ(hm.home_of(a + 3 * kPage, 0), 0u);
}

TEST(AllocatorTest, DefaultAllocUsesPolicy) {
  mem::HomeMap hm(4, kPage, mem::Placement::kRoundRobin);
  SimAllocator alloc(hm);
  const Addr a = alloc.alloc(2 * kPage);
  // Round-robin policy by page index: consecutive pages differ.
  EXPECT_NE(hm.home_of(a, 0), hm.home_of(a + kPage, 0));
}

TEST(AllocatorTest, BaseIsRespected) {
  mem::HomeMap hm(2, kPage, mem::Placement::kRoundRobin);
  SimAllocator alloc(hm, /*base=*/1ull << 30);
  EXPECT_GE(alloc.alloc(8), 1ull << 30);
}

TEST(AllocatorDeathTest, ZeroBytesAborts) {
  mem::HomeMap hm(2, kPage, mem::Placement::kRoundRobin);
  SimAllocator alloc(hm);
  EXPECT_DEATH(alloc.alloc(0), "bytes");
}

}  // namespace
}  // namespace dsm::sim
