// machine_test.cpp — end-to-end behaviour of the simulated DSM machine:
// interval recording semantics, CPI accounting, DDV wiring, determinism,
// and the synchronization-instruction exclusion rule from the paper.
#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/thread_ctx.hpp"

namespace dsm::sim {
namespace {

MachineConfig small_cfg(unsigned nodes, InstrCount interval = 80'000) {
  MachineConfig cfg = default_config(nodes);
  cfg.phase.interval_instructions = interval * nodes;  // per-proc interval
  return cfg;
}

TEST(MachineTest, RecordsIntervalsOfRequestedLength) {
  Machine m(small_cfg(2, 10'000));
  const auto run = m.run([](ThreadCtx& ctx) {
    for (int i = 0; i < 3500; ++i) ctx.bb(sim::bb_id("t"), 9);
  });
  // 3500 * 10 instr = 35'000 per proc -> 3 full intervals of ~10k.
  ASSERT_EQ(run.procs.size(), 2u);
  EXPECT_EQ(run.procs[0].intervals.size(), 3u);
  for (const auto& rec : run.procs[0].intervals) {
    EXPECT_GE(rec.instructions, 10'000u);
    EXPECT_LT(rec.instructions, 10'010u);  // bounded overshoot
    EXPECT_GT(rec.cycles, 0u);
    EXPECT_NEAR(rec.cpi,
                static_cast<double>(rec.cycles) / rec.instructions, 1e-12);
  }
}

TEST(MachineTest, CpiReflectsComputeBound) {
  Machine m(small_cfg(1, 60'000));
  const auto run = m.run([](ThreadCtx& ctx) {
    for (int i = 0; i < 2000; ++i) ctx.bb(sim::bb_id("c"), 59);
  });
  // Pure 6-wide integer code: CPI must hover near 1/6 plus branch costs.
  EXPECT_GT(run.cpi(0), 0.15);
  EXPECT_LT(run.cpi(0), 0.30);
}

TEST(MachineTest, MemoryStallsRaiseCpi) {
  auto body_compute = [](ThreadCtx& ctx) {
    for (int i = 0; i < 5000; ++i) ctx.bb(sim::bb_id("x"), 19);
  };
  Machine m1(small_cfg(1));
  const double cpi_compute = m1.run(body_compute).cpi(0);

  auto body_memory = [](ThreadCtx& ctx) {
    const Addr base = ctx.alloc(8u << 20);  // 8 MB: exceeds L2
    for (int i = 0; i < 5000; ++i) {
      ctx.load(base + (static_cast<Addr>(i) * 4099 * 32) % (8u << 20));
      ctx.bb(sim::bb_id("x"), 18);
    }
  };
  Machine m2(small_cfg(1));
  const double cpi_memory = m2.run(body_memory).cpi(0);
  EXPECT_GT(cpi_memory, cpi_compute * 2);
}

TEST(MachineTest, SyncCyclesCountButSyncInstructionsDoNot) {
  // Paper: intervals are defined over committed *non-synchronization*
  // instructions; waiting still burns cycles (raising CPI).
  Machine m(small_cfg(2, 5'000));
  const auto run = m.run([](ThreadCtx& ctx) {
    for (int r = 0; r < 4; ++r) {
      // Node 1 does triple work; node 0 waits at the barrier.
      const int iters = ctx.self() == 1 ? 1500 : 500;
      for (int i = 0; i < iters; ++i) ctx.bb(sim::bb_id("w"), 9);
      ctx.barrier();
    }
  });
  // Node 0 committed 4*5000 = 20k instructions, node 1 60k.
  EXPECT_EQ(run.instructions[0], 20'000u);
  EXPECT_EQ(run.instructions[1], 60'000u);
  // Both finish at the same cycle (last barrier), so node 0's CPI is ~3x.
  EXPECT_EQ(run.final_cycles[0], run.final_cycles[1]);
  EXPECT_GT(run.cpi(0), 2.5 * run.cpi(1));
  EXPECT_GT(run.sync_cycles[0], run.sync_cycles[1]);
}

TEST(MachineTest, IntervalRecordsCarryDdvVectors) {
  Machine m(small_cfg(4, 4'000));
  const auto run = m.run([](ThreadCtx& ctx) {
    // Every node hammers node-0-homed memory.
    static Addr hot = 0;
    if (ctx.self() == 0) hot = ctx.alloc_on(1u << 16, 0);
    ctx.barrier();
    for (int i = 0; i < 3000; ++i) {
      ctx.load(hot + static_cast<Addr>(ctx.rng().next_below(1u << 16)));
      ctx.bb(sim::bb_id("m"), 3);
    }
  });
  const auto& rec = run.procs[1].intervals.at(0);
  ASSERT_EQ(rec.f.size(), 4u);
  ASSERT_EQ(rec.c.size(), 4u);
  // Node 1's own accesses concentrate on home 0.
  EXPECT_GT(rec.f[0], rec.f[1] + rec.f[2] + rec.f[3]);
  // Contention vector aggregates everyone: C[0] >= own F[0].
  EXPECT_GE(rec.c[0], rec.f[0]);
  EXPECT_GT(rec.dds, 0.0);
}

TEST(MachineTest, DdvTrafficIsRecorded) {
  Machine m(small_cfg(4, 4'000));
  const auto run = m.run([](ThreadCtx& ctx) {
    for (int i = 0; i < 2000; ++i) ctx.bb(sim::bb_id("d"), 9);
  });
  const std::size_t intervals = run.procs[0].intervals.size();
  ASSERT_GT(intervals, 0u);
  // Each interval end: (n-1) requests + (n-1) replies.
  EXPECT_EQ(run.net_messages[3] % (2 * 3), 0u);
  EXPECT_GE(run.net_messages[3], intervals * 2 * 3);
}

TEST(MachineTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Machine m(small_cfg(4, 8'000));
    return m.run([](ThreadCtx& ctx) {
      const Addr base = ctx.self() == 0 ? ctx.alloc_distributed(1u << 18)
                                        : 0;
      static Addr shared_base = 0;
      if (ctx.self() == 0) shared_base = base;
      ctx.barrier();
      for (int i = 0; i < 4000; ++i) {
        ctx.load(shared_base +
                 static_cast<Addr>(ctx.rng().next_below(1u << 18)));
        ctx.bb(sim::bb_id("det"), 7);
      }
      ctx.barrier();
    });
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.procs.size(), b.procs.size());
  for (unsigned p = 0; p < a.procs.size(); ++p) {
    EXPECT_EQ(a.final_cycles[p], b.final_cycles[p]) << p;
    ASSERT_EQ(a.procs[p].intervals.size(), b.procs[p].intervals.size());
    for (std::size_t i = 0; i < a.procs[p].intervals.size(); ++i) {
      EXPECT_EQ(a.procs[p].intervals[i].cycles,
                b.procs[p].intervals[i].cycles);
      EXPECT_EQ(a.procs[p].intervals[i].bbv, b.procs[p].intervals[i].bbv);
      EXPECT_EQ(a.procs[p].intervals[i].f, b.procs[p].intervals[i].f);
    }
  }
}

TEST(MachineTest, BbvSnapshotsReflectBlockMix) {
  Machine m(small_cfg(1, 30'000));
  const auto run = m.run([](ThreadCtx& ctx) {
    // Interval 0: pure block A; interval 1: pure block B.
    for (int i = 0; i < 1000; ++i) ctx.bb(sim::bb_id("A"), 29);
    for (int i = 0; i < 1000; ++i) ctx.bb(sim::bb_id("B"), 29);
  });
  ASSERT_GE(run.procs[0].intervals.size(), 2u);
  const auto& v0 = run.procs[0].intervals[0].bbv;
  const auto& v1 = run.procs[0].intervals[1].bbv;
  EXPECT_GT(phase::manhattan(v0, v1), 100'000u);  // nearly disjoint
}

TEST(MachineTest, RemoteFractionGrowsWithHotRemoteData) {
  Machine m(small_cfg(4, 8'000));
  const auto run = m.run([](ThreadCtx& ctx) {
    static Addr hot = 0;
    if (ctx.self() == 0) hot = ctx.alloc_on(1u << 16, 0);
    ctx.barrier();
    for (int i = 0; i < 3000; ++i) {
      ctx.load(hot + static_cast<Addr>(ctx.rng().next_below(1u << 16)));
      ctx.bb(sim::bb_id("r"), 4);
    }
  });
  // Node 0 reads locally; node 3 reads remotely (via directory/c2c).
  EXPECT_LT(run.remote_access_fraction(0), 0.5);
  EXPECT_GT(run.remote_access_fraction(3), 0.5);
}

TEST(MachineTest, LocksSerializeCriticalSections) {
  Machine m(small_cfg(4, 1'000'000));
  const auto run = m.run([](ThreadCtx& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.lock(1);
      ctx.compute(1000, 0.0);
      ctx.unlock(1);
    }
  });
  // 40 critical sections of ~167 cycles each serialize: the last thread
  // through the lock finishes after 40 * ~160 cycles.
  const Cycle last =
      *std::max_element(run.final_cycles.begin(), run.final_cycles.end());
  EXPECT_GT(last, 40u * 160u);
}

TEST(MachineDeathTest, MachineRunsOnlyOnce) {
  Machine m(small_cfg(1));
  m.run([](ThreadCtx&) {});
  EXPECT_DEATH(m.run([](ThreadCtx&) {}), "one application");
}

}  // namespace
}  // namespace dsm::sim
