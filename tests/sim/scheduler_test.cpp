#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dsm::sim {
namespace {

TEST(SchedulerTest, RunsEveryThreadOnce) {
  Scheduler s(4);
  std::vector<int> ran(4, 0);
  s.run([&](unsigned tid) { ++ran[tid]; });
  for (const int r : ran) EXPECT_EQ(r, 1);
}

TEST(SchedulerTest, MinCycleFirstOrdering) {
  // Threads advance different amounts per yield; the execution trace must
  // interleave in min-cycle order.
  Scheduler s(2);
  std::vector<std::pair<unsigned, Cycle>> trace;
  s.run([&](unsigned tid) {
    for (int i = 0; i < 5; ++i) {
      trace.emplace_back(tid, s.cycle(tid));
      s.advance(tid, tid == 0 ? 10 : 25);  // thread 0 is "faster"
      s.yield(tid);
    }
  });
  // At every trace point, the running thread's cycle must be <= the cycle
  // the other thread resumed with next.
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    EXPECT_LE(trace[i].second, trace[i + 1].second + 25)
        << "entry " << i;  // bounded skew
  }
  // Thread 0 (cheaper steps) must run more often early on.
  unsigned zeros_in_first_half = 0;
  for (std::size_t i = 0; i < trace.size() / 2; ++i)
    zeros_in_first_half += (trace[i].first == 0);
  EXPECT_GE(zeros_in_first_half, trace.size() / 4);
}

TEST(SchedulerTest, DeterministicInterleaving) {
  auto run_once = [] {
    Scheduler s(4);
    std::vector<unsigned> order;
    s.run([&](unsigned tid) {
      for (int i = 0; i < 8; ++i) {
        order.push_back(tid);
        s.advance(tid, (tid + 1) * 7);
        s.yield(tid);
      }
    });
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SchedulerTest, BlockUnblockHandshake) {
  Scheduler s(2);
  bool woke = false;
  s.run([&](unsigned tid) {
    if (tid == 0) {
      s.block(tid);  // sleeps until thread 1 unblocks us
      woke = true;
    } else {
      s.advance(tid, 100);
      s.unblock(0);
      s.set_cycle(0, 150);
    }
  });
  EXPECT_TRUE(woke);
}

TEST(SchedulerTest, CycleAccessors) {
  Scheduler s(2);
  s.run([&](unsigned tid) {
    if (tid == 1) {
      s.advance(tid, 42);
      EXPECT_EQ(s.cycle(tid), 42u);
      s.set_cycle(tid, 1000);
      EXPECT_EQ(s.cycle(tid), 1000u);
    }
  });
}

TEST(SchedulerTest, ContextSwitchesCounted) {
  Scheduler s(2);
  s.run([&](unsigned tid) {
    for (int i = 0; i < 3; ++i) {
      s.advance(tid, 1);
      s.yield(tid);
    }
  });
  // At least one dispatch per thread turn.
  EXPECT_GE(s.context_switches(), 8u);
}

TEST(SchedulerTest, OnlyRunnableDetectsLoneliness) {
  Scheduler s(2);
  bool observed = false;
  s.run([&](unsigned tid) {
    if (tid == 0) {
      s.block(tid);
    } else {
      observed = s.only_runnable(tid);
      s.unblock(0);
    }
  });
  EXPECT_TRUE(observed);
}

TEST(SchedulerDeathTest, DeadlockAborts) {
  // Every thread blocks and nobody unblocks: the coordinator must abort
  // with a diagnostic rather than hang.
  EXPECT_DEATH(
      {
        Scheduler s(2);
        s.run([&](unsigned tid) { s.block(tid); });
      },
      "deadlock");
}

}  // namespace
}  // namespace dsm::sim
