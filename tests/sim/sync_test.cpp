#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/config.hpp"

namespace dsm::sim {
namespace {

SyncConfig sync_cfg() { return SyncConfig{}; }

TEST(BarrierTest, ReleasesAllAtMaxArrivalPlusCost) {
  Scheduler s(3);
  SimBarrier barrier(s, 3, sync_cfg());
  std::vector<Cycle> after(3);
  s.run([&](unsigned tid) {
    s.advance(tid, 100 * (tid + 1));  // arrivals at 100, 200, 300
    barrier.wait(tid);
    after[tid] = s.cycle(tid);
  });
  // Release = 300 + base 100 + per-stage 60 * ceil(log2 3) = 300+100+120.
  for (const Cycle c : after) EXPECT_EQ(c, 520u);
  EXPECT_EQ(barrier.episodes(), 1u);
}

TEST(BarrierTest, ReusableAcrossEpisodes) {
  Scheduler s(2);
  SimBarrier barrier(s, 2, sync_cfg());
  std::vector<Cycle> final_cycles(2);
  s.run([&](unsigned tid) {
    for (int round = 0; round < 5; ++round) {
      s.advance(tid, tid == 0 ? 10 : 30);
      barrier.wait(tid);
      // Own clock is at the episode's release point: at least the slowest
      // arrival of this round (30 cycles/round).
      EXPECT_GE(s.cycle(tid), 30u * (round + 1));
    }
    final_cycles[tid] = s.cycle(tid);
  });
  EXPECT_EQ(barrier.episodes(), 5u);
  EXPECT_EQ(final_cycles[0], final_cycles[1]);
}

TEST(BarrierTest, WaitStatTracksImbalance) {
  Scheduler s(2);
  SimBarrier barrier(s, 2, sync_cfg());
  s.run([&](unsigned tid) {
    s.advance(tid, tid == 0 ? 0 : 1000);
    barrier.wait(tid);
  });
  // The early arriver waited >= 1000 cycles.
  EXPECT_GE(barrier.wait_stat().max(), 1000.0);
}

TEST(BarrierTest, SingleParticipantPassesThrough) {
  Scheduler s(1);
  SimBarrier barrier(s, 1, sync_cfg());
  s.run([&](unsigned tid) {
    barrier.wait(tid);
    barrier.wait(tid);
  });
  EXPECT_EQ(barrier.episodes(), 2u);
}

TEST(LockTest, UncontendedAcquireIsCheap) {
  Scheduler s(1);
  SimLock lock(s, sync_cfg());
  s.run([&](unsigned tid) {
    lock.acquire(tid);
    EXPECT_EQ(s.cycle(tid), sync_cfg().lock_acquire_cycles);
    lock.release(tid);
  });
  EXPECT_EQ(lock.acquisitions(), 1u);
  EXPECT_EQ(lock.contended(), 0u);
}

TEST(LockTest, ContendedHandoffSerializes) {
  Scheduler s(3);
  SimLock lock(s, sync_cfg());
  std::vector<std::pair<Cycle, unsigned>> critical;  // (entry cycle, tid)
  s.run([&](unsigned tid) {
    lock.acquire(tid);
    critical.emplace_back(s.cycle(tid), tid);
    s.advance(tid, 500);  // long critical section
    s.yield(tid);         // let the others collide with the held lock
    lock.release(tid);
  });
  ASSERT_EQ(critical.size(), 3u);
  // Entries are strictly ordered in time, separated by the section length.
  for (std::size_t i = 1; i < critical.size(); ++i)
    EXPECT_GE(critical[i].first, critical[i - 1].first + 500);
  EXPECT_EQ(lock.contended(), 2u);
}

TEST(LockTest, TimeLaggedAcquirerCannotEnterThePast) {
  // A thread whose local clock lags the lock's last release must acquire
  // at the release time — occupancy intervals never overlap in simulated
  // time even though cooperative execution ran them back to back.
  Scheduler s(2);
  SimLock lock(s, sync_cfg());
  std::vector<std::pair<Cycle, Cycle>> spans;  // (entry, exit)
  s.run([&](unsigned tid) {
    lock.acquire(tid);
    const Cycle entry = s.cycle(tid);
    s.advance(tid, 500);
    spans.emplace_back(entry, s.cycle(tid));
    lock.release(tid);
  });
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_GE(spans[1].first, spans[0].second);
}

TEST(LockTest, FifoOrderAmongWaiters) {
  Scheduler s(3);
  SimLock lock(s, sync_cfg());
  std::vector<unsigned> order;
  s.run([&](unsigned tid) {
    // Stagger arrival: tid 0 first (holds), then 1, then 2 queue up.
    s.advance(tid, tid * 10);
    lock.acquire(tid);
    order.push_back(tid);
    s.advance(tid, 300);
    lock.release(tid);
  });
  EXPECT_EQ(order, (std::vector<unsigned>{0, 1, 2}));
}

TEST(LockDeathTest, ReleaseByNonOwnerAborts) {
  EXPECT_DEATH(
      {
        Scheduler s(2);
        SimLock lock(s, sync_cfg());
        s.run([&](unsigned tid) {
          if (tid == 0) {
            lock.acquire(tid);
            s.advance(tid, 100);
            lock.release(tid);
          } else {
            lock.release(tid);  // never acquired
          }
        });
      },
      "non-owner");
}

TEST(TaskQueueTest, HandsOutAllTasksExactlyOnce) {
  Scheduler s(4);
  TaskQueue q(s, sync_cfg());
  std::vector<int> claimed(100, 0);
  s.run([&](unsigned tid) {
    if (tid == 0) q.refill(100);
    // Every thread spins for the refill (cooperative: tid 0 runs first at
    // cycle 0; give others a tiny offset so refill happens first).
    s.advance(tid, 1 + tid);
    for (;;) {
      const auto t = q.pop(tid);
      if (!t) break;
      ++claimed[*t];
      s.advance(tid, 17);
    }
  });
  for (const int c : claimed) EXPECT_EQ(c, 1);
}

TEST(TaskQueueTest, PopOnEmptyReturnsNullopt) {
  Scheduler s(1);
  TaskQueue q(s, sync_cfg());
  s.run([&](unsigned tid) {
    EXPECT_FALSE(q.pop(tid).has_value());
    q.refill(1);
    EXPECT_TRUE(q.pop(tid).has_value());
    EXPECT_FALSE(q.pop(tid).has_value());
  });
}

}  // namespace
}  // namespace dsm::sim
