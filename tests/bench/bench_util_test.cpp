// bench_util_test.cpp — parse_options used to exit() on malformed input,
// which made it untestable and would kill a multi-sweep driver mid-flight.
// It now returns a ParseResult; these are the tests that exit() precluded.
#include "bench/bench_util.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dsm::bench {
namespace {

ParseResult parse(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  return parse_options(static_cast<int>(args.size()),
                       const_cast<char**>(args.data()));
}

TEST(ParseOptionsTest, DefaultsWhenNoFlags) {
  const auto r = parse({});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.options.scale, apps::Scale::kPaper);
  EXPECT_TRUE(r.options.app_names.empty());
  EXPECT_TRUE(r.options.node_counts.empty());
  EXPECT_EQ(r.options.threads, 1u);
  EXPECT_FALSE(r.options.verbose);
}

TEST(ParseOptionsTest, ParsesEveryFlag) {
  const auto r = parse({"--scale=test", "--apps=LU,FMM", "--nodes=2,8",
                        "--csv=/tmp/x", "--threads=4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.scale, apps::Scale::kTest);
  EXPECT_EQ(r.options.app_names,
            (std::vector<std::string>{"LU", "FMM"}));
  EXPECT_EQ(r.options.node_counts, (std::vector<unsigned>{2, 8}));
  EXPECT_EQ(r.options.csv_dir, "/tmp/x");
  EXPECT_EQ(r.options.threads, 4u);
}

TEST(ParseOptionsTest, ThreadsZeroMeansAuto) {
  const auto r = parse({"--threads=0"});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.options.threads, 0u);
  EXPECT_GE(driver::ExperimentRunner(r.options.threads).threads(), 1u);
}

TEST(ParseOptionsTest, UnknownOptionFailsWithoutExiting) {
  const auto r = parse({"--frobnicate"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--frobnicate"), std::string::npos);
}

TEST(ParseOptionsTest, UnknownAppFailsAtParse) {
  const auto r = parse({"--apps=LU,Equak"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("Equak"), std::string::npos);
  // Case differences are not errors.
  EXPECT_TRUE(parse({"--apps=lu,EQUAKE"}).ok);
}

TEST(ParseOptionsTest, BadScaleFails) {
  const auto r = parse({"--scale=huge"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("huge"), std::string::npos);
}

TEST(ParseOptionsTest, BadThreadsValueFails) {
  EXPECT_FALSE(parse({"--threads=many"}).ok);
  EXPECT_FALSE(parse({"--threads="}).ok);
  EXPECT_FALSE(parse({"--threads=4x"}).ok);
  // Signed and wrapping values must not sneak through strtoul.
  EXPECT_FALSE(parse({"--threads=-1"}).ok);
  EXPECT_FALSE(parse({"--threads=99999999999999999999"}).ok);
  EXPECT_FALSE(parse({"--threads=5000"}).ok);  // past the sanity cap
}

TEST(ParseOptionsTest, BadNodesEntriesFail) {
  EXPECT_FALSE(parse({"--nodes=2,zero"}).ok);
  EXPECT_FALSE(parse({"--nodes=0"}).ok);
  EXPECT_FALSE(parse({"--nodes=-1"}).ok);
  EXPECT_FALSE(parse({"--nodes=4294967298"}).ok);  // would truncate to 2
  EXPECT_FALSE(parse({"--nodes=2,+8"}).ok);
}

TEST(ParseOptionsTest, ScaleSetReportsExplicitScale) {
  EXPECT_FALSE(parse({}).scale_set);
  EXPECT_FALSE(parse({"--threads=2"}).scale_set);
  EXPECT_TRUE(parse({"--scale=test"}).scale_set);
}

TEST(ParseOptionsTest, ParsesShardWorkerFlag) {
  const auto r = parse({"--shard=1/4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.options.shard_set);
  EXPECT_TRUE(stream_mode(r.options));
  EXPECT_EQ(r.options.shard.index, 1u);
  EXPECT_EQ(r.options.shard.count, 4u);
  // Default: not a shard worker, full sweep, human output.
  const auto d = parse({});
  EXPECT_FALSE(d.options.shard_set);
  EXPECT_FALSE(stream_mode(d.options));
  EXPECT_EQ(d.options.shard.count, 1u);
}

TEST(ParseOptionsTest, ParsesOrchestratorFlag) {
  const auto r = parse({"--shards=4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.shards, 4u);
  EXPECT_FALSE(stream_mode(r.options));  // orchestrator is not a worker
  EXPECT_EQ(parse({}).options.shards, 0u);
}

TEST(ParseOptionsTest, BadShardValuesFail) {
  EXPECT_FALSE(parse({"--shard="}).ok);
  EXPECT_FALSE(parse({"--shard=2"}).ok);
  EXPECT_FALSE(parse({"--shard=2/2"}).ok);   // index out of range
  EXPECT_FALSE(parse({"--shard=-1/2"}).ok);
  EXPECT_FALSE(parse({"--shard=a/b"}).ok);
  EXPECT_FALSE(parse({"--shards=0"}).ok);
  EXPECT_FALSE(parse({"--shards=many"}).ok);
  EXPECT_FALSE(parse({"--shards=99999"}).ok);  // past the sanity cap
}

TEST(ParseOptionsTest, WorkerAndOrchestratorFlagsAreMutuallyExclusive) {
  const auto r = parse({"--shard=0/2", "--shards=2"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("mutually exclusive"), std::string::npos);
}

TEST(ParseOptionsTest, CsvIsRejectedInShardedRuns) {
  // Stream mode replaces the table/CSV printing path; silently writing
  // no files would be worse than refusing.
  EXPECT_FALSE(parse({"--csv=/tmp/x", "--shard=0/2"}).ok);
  EXPECT_FALSE(parse({"--csv=/tmp/x", "--shards=2"}).ok);
  EXPECT_TRUE(parse({"--csv=/tmp/x", "--threads=2"}).ok);
}

TEST(MaybeOrchestrateTest, PassesThroughWhenNotOrchestrating) {
  std::vector<const char*> args = {"bench", "--threads=2"};
  const auto parsed = parse_options(static_cast<int>(args.size()),
                                    const_cast<char**>(args.data()));
  EXPECT_FALSE(maybe_orchestrate(static_cast<int>(args.size()),
                                 const_cast<char**>(args.data()), parsed)
                   .has_value());
}

TEST(ParseOptionsTest, GoogleBenchmarkFlagsAreIgnored) {
  const auto r = parse({"--benchmark_filter=BM_Bbv", "--threads=2"});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.options.threads, 2u);
}

TEST(SelectedAppsTest, DefaultsToAllFourInTableOrder) {
  BenchOptions opt;
  const auto apps = selected_apps(opt);
  ASSERT_EQ(apps.size(), 4u);
  EXPECT_EQ(apps[0]->name, "LU");
  EXPECT_EQ(apps[3]->name, "Equake");
}

TEST(SelectedAppsTest, FilterKeepsTableOrder) {
  BenchOptions opt;
  opt.app_names = {"Equake", "LU"};  // order on the command line
  const auto apps = selected_apps(opt);
  ASSERT_EQ(apps.size(), 2u);
  EXPECT_EQ(apps[0]->name, "LU");  // Table II order wins for figures
  EXPECT_EQ(apps[1]->name, "Equake");
}

TEST(SelectedAppsTest, MatchesCaseInsensitively) {
  BenchOptions opt;
  opt.app_names = {"lu", "EQUAKE"};
  const auto apps = selected_apps(opt);
  ASSERT_EQ(apps.size(), 2u);
  EXPECT_EQ(apps[0]->name, "LU");
  EXPECT_EQ(apps[1]->name, "Equake");
}

TEST(RunSweepTest, EmptySelectionYieldsEmptySweep) {
  BenchOptions opt;
  opt.app_names = {"NotAnApp"};
  EXPECT_TRUE(selected_apps(opt).empty());
  // Must return no results — not expand to a default "" spec point that
  // would abort inside app_by_name.
  EXPECT_TRUE(run_sweep(selected_apps(opt), {8}, opt).empty());
  EXPECT_TRUE(run_sweep({&apps::paper_apps().front()}, {}, opt).empty());
}

TEST(NamedAppsTest, CommandLineOrderWins) {
  BenchOptions opt;
  opt.app_names = {"Equake", "LU"};
  const auto apps = named_apps(opt, {"FMM"});
  ASSERT_EQ(apps.size(), 2u);
  EXPECT_EQ(apps[0]->name, "Equake");
  EXPECT_EQ(apps[1]->name, "LU");
}

TEST(NamedAppsTest, DefaultsApplyWhenUnset) {
  BenchOptions opt;
  const auto apps = named_apps(opt, {"FMM"});
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0]->name, "FMM");
}

}  // namespace
}  // namespace dsm::bench
