#include "network/network.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/config.hpp"
#include "network/contention.hpp"

// Global operator new/delete replacements that count allocations, so the
// "zero per-message heap allocations on the message_latency path" property
// is a regression-tested invariant, not a code-review promise.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t sz) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dsm::net {
namespace {

MachineConfig cfg32() { return default_config(32); }

TEST(NetworkTest, LocalMessagesAreFree) {
  auto cfg = cfg32();
  Network n(cfg);
  EXPECT_EQ(n.zero_load_latency(3, 3, 32), 0u);
  EXPECT_EQ(n.message_latency(3, 3, 32, 0, TrafficClass::kData), 0u);
}

TEST(NetworkTest, ZeroLoadDecomposition) {
  auto cfg = cfg32();
  Network n(cfg);
  // 1 hop, 32-byte payload: hop latency 16ns = 32 cycles; flits = 1 header
  // + 4 payload; serialization (flits-1) * 5 core cycles = 20.
  EXPECT_EQ(n.zero_load_latency(0, 1, 32), 32u + 20u);
  // 5 hops (0 -> 31): 5*32 + 20.
  EXPECT_EQ(n.zero_load_latency(0, 31, 32), 160u + 20u);
  // Control message (8 bytes): 2 flits -> 5 cycles serialization.
  EXPECT_EQ(n.zero_load_latency(0, 1, 8), 32u + 5u);
}

TEST(NetworkTest, LatencyGrowsWithDistance) {
  auto cfg = cfg32();
  Network n(cfg);
  const auto near = n.zero_load_latency(0, 1, 32);
  const auto far = n.zero_load_latency(0, 31, 32);
  EXPECT_LT(near, far);
}

TEST(NetworkTest, TrafficAccountingByClass) {
  auto cfg = cfg32();
  Network n(cfg);
  n.message_latency(0, 1, 8, 0, TrafficClass::kCoherence);
  n.message_latency(0, 2, 32, 0, TrafficClass::kData);
  n.message_latency(0, 3, 32, 0, TrafficClass::kData);
  n.message_latency(0, 4, 136, 0, TrafficClass::kDdv);
  EXPECT_EQ(n.messages_sent(TrafficClass::kCoherence), 1u);
  EXPECT_EQ(n.messages_sent(TrafficClass::kData), 2u);
  EXPECT_EQ(n.messages_sent(TrafficClass::kDdv), 1u);
  EXPECT_EQ(n.messages_sent(TrafficClass::kSync), 0u);
  EXPECT_EQ(n.bytes_sent(TrafficClass::kData), 64u);
  EXPECT_EQ(n.total_messages(), 4u);
  EXPECT_EQ(n.total_bytes(), 8u + 64u + 136u);
}

TEST(NetworkTest, ContentionRaisesLatencyNextEpoch) {
  auto cfg = cfg32();
  Network n(cfg);
  const Cycle epoch = cfg.network.contention_epoch_cycles;
  const auto base = n.zero_load_latency(0, 1, 32);
  // Saturate link 0->1 during epoch 0.
  for (int i = 0; i < 2000; ++i)
    n.message_latency(0, 1, 32, epoch / 2, TrafficClass::kData);
  // In epoch 1 the queueing term must appear.
  const auto loaded =
      n.probe_latency(0, 1, 32, epoch + 1);
  EXPECT_GT(loaded, base);
}

TEST(NetworkTest, ContentionDecaysAfterIdleEpoch) {
  auto cfg = cfg32();
  Network n(cfg);
  const Cycle epoch = cfg.network.contention_epoch_cycles;
  for (int i = 0; i < 2000; ++i)
    n.message_latency(0, 1, 32, epoch / 2, TrafficClass::kData);
  const auto base = n.zero_load_latency(0, 1, 32);
  // Two epochs later with no traffic, utilization resets.
  EXPECT_EQ(n.probe_latency(0, 1, 32, 3 * epoch + 1), base);
}

TEST(NetworkTest, ProbeDoesNotRecordTraffic) {
  auto cfg = cfg32();
  Network n(cfg);
  const auto before = n.total_messages();
  n.probe_latency(0, 5, 32, 0);
  EXPECT_EQ(n.total_messages(), before);
}

TEST(NetworkTest, MessageLatencyPathIsAllocationFree) {
  // Route tables and contention state are preallocated at construction;
  // after that, message_latency must never touch the heap.
  auto cfg = cfg32();
  Network n(cfg);
  const std::uint64_t before =
      g_alloc_count.load(std::memory_order_relaxed);
  Cycle now = 0;
  for (NodeId src = 0; src < 32; ++src)
    for (NodeId dst = 0; dst < 32; ++dst) {
      now += n.message_latency(src, dst, 32, now, TrafficClass::kData);
      n.probe_latency(src, dst, 32, now);
    }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before);
}

TEST(LinkContentionTrackerTest, UtilizationIsPreviousEpoch) {
  LinkContentionTracker t(/*num_links=*/128, 1000, 100.0);
  t.record(7, 500, 50.0);  // epoch 0
  EXPECT_EQ(t.utilization(7, 900), 0.0);   // still epoch 0: previous empty
  EXPECT_DOUBLE_EQ(t.utilization(7, 1500), 0.5);  // epoch 1 sees epoch 0
  EXPECT_EQ(t.utilization(7, 2500), 0.0);  // epoch 2: epoch 1 was idle
}

TEST(LinkContentionTrackerTest, QueueingDelayShape) {
  LinkContentionTracker t(/*num_links=*/128, 1000, 100.0);
  t.record(1, 100, 50.0);
  // u = 0.5 -> alpha * 0.5/0.5 = alpha.
  EXPECT_DOUBLE_EQ(t.queueing_delay(1, 1500, 2.0), 2.0);
  // Unknown link: no delay.
  EXPECT_DOUBLE_EQ(t.queueing_delay(99, 1500, 2.0), 0.0);
}

TEST(LinkContentionTrackerTest, UtilizationCapBoundsDelay) {
  LinkContentionTracker t(/*num_links=*/128, 1000, 100.0);
  t.record(1, 100, 1e6);  // absurd overload
  // Cap at 0.90 -> delay = alpha * 9.
  EXPECT_DOUBLE_EQ(t.queueing_delay(1, 1500, 1.0), 9.0);
}

}  // namespace
}  // namespace dsm::net
