#include "network/topology.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace dsm::net {
namespace {

TEST(TopologyTest, HypercubeHopsAreHamming) {
  TopologyModel t(Topology::kHypercube, 32);
  EXPECT_EQ(t.hops(0, 0), 0u);
  EXPECT_EQ(t.hops(0, 1), 1u);
  EXPECT_EQ(t.hops(0, 31), 5u);
  EXPECT_EQ(t.hops(0b10101, 0b01010), 5u);
  EXPECT_EQ(t.diameter(), 5u);
}

TEST(TopologyTest, HypercubeRouteIsEcube) {
  TopologyModel t(Topology::kHypercube, 8);
  // 0 -> 5 (0b101): lowest dimension first: 0 -> 1 -> 5.
  const auto path = t.route(0, 5);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 0u * 8 + 1);  // link 0 -> 1
  EXPECT_EQ(path[1], 1u * 8 + 5);  // link 1 -> 5
}

TEST(TopologyTest, Mesh2DHopsManhattan) {
  TopologyModel t(Topology::kMesh2D, 16);  // 4x4
  EXPECT_EQ(t.hops(0, 15), 6u);  // (0,0) -> (3,3)
  EXPECT_EQ(t.hops(5, 6), 1u);
  EXPECT_EQ(t.diameter(), 6u);
}

TEST(TopologyTest, Torus2DWrapsAround) {
  TopologyModel t(Topology::kTorus2D, 16);  // 4x4
  EXPECT_EQ(t.hops(0, 3), 1u);   // wrap in x
  EXPECT_EQ(t.hops(0, 12), 1u);  // wrap in y
  EXPECT_EQ(t.hops(0, 15), 2u);
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(TopologyTest, RingShorterDirection) {
  TopologyModel t(Topology::kRing, 10);
  EXPECT_EQ(t.hops(0, 1), 1u);
  EXPECT_EQ(t.hops(0, 9), 1u);
  EXPECT_EQ(t.hops(0, 5), 5u);
  EXPECT_EQ(t.diameter(), 5u);
}

TEST(TopologyTest, DdvDistanceDiagonalIsOne) {
  // The paper defines D[i][i] == 1 ("1 if i = j").
  for (const auto kind : {Topology::kHypercube, Topology::kRing}) {
    TopologyModel t(kind, 8);
    for (NodeId i = 0; i < 8; ++i) EXPECT_EQ(t.ddv_distance(i, i), 1u);
  }
}

TEST(TopologyTest, DdvDistanceMatrixShapeAndSymmetry) {
  TopologyModel t(Topology::kHypercube, 16);
  const auto d = t.ddv_distance_matrix();
  ASSERT_EQ(d.size(), 16u * 16u);
  for (NodeId i = 0; i < 16; ++i)
    for (NodeId j = 0; j < 16; ++j)
      EXPECT_EQ(d[i * 16 + j], d[j * 16 + i]);
}

TEST(TopologyDeathTest, HypercubeRequiresPow2) {
  EXPECT_DEATH(TopologyModel(Topology::kHypercube, 6), "power-of-two");
}

TEST(TopologyDeathTest, MeshRequiresSquare) {
  EXPECT_DEATH(TopologyModel(Topology::kMesh2D, 8), "square");
}

// ---- property sweep: route() is consistent with hops() on every pair ----

using TopoParam = std::tuple<Topology, unsigned>;

class TopologyPropertyTest : public ::testing::TestWithParam<TopoParam> {};

TEST_P(TopologyPropertyTest, RouteLengthEqualsHopsEverywhere) {
  const auto [kind, nodes] = GetParam();
  TopologyModel t(kind, nodes);
  for (NodeId s = 0; s < nodes; ++s) {
    for (NodeId d = 0; d < nodes; ++d) {
      EXPECT_EQ(t.route(s, d).size(), t.hops(s, d))
          << topology_name(kind) << " " << s << "->" << d;
    }
  }
}

TEST_P(TopologyPropertyTest, RouteTableMatchesOnTheFlyWalk) {
  // The constructor tabulates compute_route(); the table view handed out
  // by route() must reproduce the reference walk link-for-link.
  const auto [kind, nodes] = GetParam();
  TopologyModel t(kind, nodes);
  for (NodeId s = 0; s < nodes; ++s) {
    for (NodeId d = 0; d < nodes; ++d) {
      const auto table = t.route(s, d);
      const auto walk = t.compute_route(s, d);
      ASSERT_EQ(table.size(), walk.size())
          << topology_name(kind) << " " << s << "->" << d;
      for (std::size_t i = 0; i < walk.size(); ++i)
        EXPECT_EQ(table[i], walk[i])
            << topology_name(kind) << " " << s << "->" << d << " hop " << i;
    }
  }
}

TEST_P(TopologyPropertyTest, RouteIsAdjacentChainFromSrcToDst) {
  // Every route must be a chain of valid directed links: each link leaves
  // the node the previous one entered, starting at src and ending at dst.
  const auto [kind, nodes] = GetParam();
  TopologyModel t(kind, nodes);
  for (NodeId s = 0; s < nodes; ++s) {
    for (NodeId d = 0; d < nodes; ++d) {
      NodeId cur = s;
      for (const LinkId link : t.route(s, d)) {
        const NodeId from = link / nodes;
        const NodeId to = link % nodes;
        EXPECT_EQ(from, cur);
        EXPECT_EQ(t.hops(from, to), 1u);  // links join adjacent routers
        cur = to;
      }
      EXPECT_EQ(cur, d);
    }
  }
}

TEST(TopologyTest, RouteFallbackAboveTableLimitMatchesWalk) {
  // Above kPrecomputeMaxNodes the table is skipped and route() computes
  // into scratch; it must still agree with the reference walk.
  TopologyModel t(Topology::kRing, TopologyModel::kPrecomputeMaxNodes + 9);
  const unsigned n = t.nodes();
  for (NodeId s = 0; s < n; s += 7) {
    for (NodeId d = 0; d < n; d += 5) {
      const auto table = t.route(s, d);
      const auto walk = t.compute_route(s, d);
      ASSERT_EQ(table.size(), walk.size());
      for (std::size_t i = 0; i < walk.size(); ++i)
        EXPECT_EQ(table[i], walk[i]);
    }
  }
}

TEST_P(TopologyPropertyTest, HopsSymmetricAndTriangleInequality) {
  const auto [kind, nodes] = GetParam();
  TopologyModel t(kind, nodes);
  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = 0; b < nodes; ++b) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
      for (NodeId c = 0; c < nodes; c += 3)
        EXPECT_LE(t.hops(a, b), t.hops(a, c) + t.hops(c, b));
    }
  }
}

TEST_P(TopologyPropertyTest, MeanHopsBetweenOneAndDiameter) {
  const auto [kind, nodes] = GetParam();
  TopologyModel t(kind, nodes);
  if (nodes == 1) return;
  EXPECT_GE(t.mean_hops(), 1.0);
  EXPECT_LE(t.mean_hops(), static_cast<double>(t.diameter()));
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopologyPropertyTest,
    ::testing::Values(TopoParam{Topology::kHypercube, 2},
                      TopoParam{Topology::kHypercube, 8},
                      TopoParam{Topology::kHypercube, 32},
                      TopoParam{Topology::kHypercube, 64},
                      TopoParam{Topology::kMesh2D, 4},
                      TopoParam{Topology::kMesh2D, 16},
                      TopoParam{Topology::kMesh2D, 64},
                      TopoParam{Topology::kTorus2D, 16},
                      TopoParam{Topology::kTorus2D, 25},
                      TopoParam{Topology::kTorus2D, 64},
                      TopoParam{Topology::kRing, 2},
                      TopoParam{Topology::kRing, 7},
                      TopoParam{Topology::kRing, 16},
                      TopoParam{Topology::kRing, 64}));

}  // namespace
}  // namespace dsm::net
