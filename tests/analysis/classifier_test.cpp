#include "analysis/classifier.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "phase/detector.hpp"

namespace dsm::analysis {
namespace {

phase::IntervalRecord rec(unsigned bucket, double dds, double cpi) {
  phase::IntervalRecord r;
  r.bbv.assign(32, 0);
  r.bbv[bucket] = 65536;
  r.dds = dds;
  r.cpi = cpi;
  r.instructions = 1000;
  r.cycles = static_cast<Cycle>(cpi * 1000);
  return r;
}

TEST(ClassifierTest, CountsDistinctPhases) {
  std::vector<phase::IntervalRecord> trace;
  for (int i = 0; i < 10; ++i) trace.push_back(rec(i % 2, 0, 1.0));
  const auto c = classify_trace(trace, false, 32, {.bbv = 100, .dds = 0});
  EXPECT_EQ(c.distinct_phases, 2u);
  ASSERT_EQ(c.assignment.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(c.assignment[i], i % 2);
}

TEST(ClassifierTest, OfflineReplayEqualsOnlineDetector) {
  // The offline sweep must reproduce the *online* hardware decision
  // sequence bit for bit, LRU churn included.
  Rng rng(99);
  std::vector<phase::IntervalRecord> trace;
  for (int i = 0; i < 400; ++i) {
    trace.push_back(rec(static_cast<unsigned>(rng.next_below(8)),
                        rng.uniform_real(0, 1000),
                        rng.uniform_real(0.2, 4.0)));
  }
  const phase::Thresholds t{.bbv = 40'000, .dds = 300.0};

  // Online, with a small table to force LRU replacements.
  phase::BbvDdvDetector online(4, t);
  std::vector<PhaseId> online_ids;
  for (const auto& r : trace) online_ids.push_back(online.classify(r).phase);

  const auto offline = classify_trace(trace, true, 4, t);
  EXPECT_EQ(offline.assignment, online_ids);
  EXPECT_GT(offline.footprint_replacements, 0u);
}

TEST(ClassifierTest, DdsOnlyMattersWhenEnabled) {
  std::vector<phase::IntervalRecord> trace{rec(0, 0, 1), rec(0, 1e9, 1)};
  const phase::Thresholds t{.bbv = 100, .dds = 10.0};
  EXPECT_EQ(classify_trace(trace, false, 32, t).distinct_phases, 1u);
  EXPECT_EQ(classify_trace(trace, true, 32, t).distinct_phases, 2u);
}

TEST(ClassifierTest, EmptyTrace) {
  const auto c = classify_trace({}, true, 32, {});
  EXPECT_EQ(c.distinct_phases, 0u);
  EXPECT_TRUE(c.assignment.empty());
}

}  // namespace
}  // namespace dsm::analysis
