#include "analysis/curve.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dsm::analysis {
namespace {

/// Builds a synthetic trace with two true behaviours that share a BBV but
/// differ in DDS and CPI — the paper's DSM failure mode in miniature.
std::vector<phase::ProcessorTrace> two_hidden_phases(unsigned procs,
                                                     unsigned intervals) {
  Rng rng(7);
  std::vector<phase::ProcessorTrace> out(procs);
  for (unsigned p = 0; p < procs; ++p) {
    out[p].node = p;
    for (unsigned i = 0; i < intervals; ++i) {
      phase::IntervalRecord r;
      r.bbv.assign(32, 0);
      r.bbv[3] = 65536;  // identical code signature everywhere
      const bool hot = (i / 8) % 2 == 0;  // behaviour alternates in runs
      r.dds = hot ? rng.uniform_real(9e6, 1.1e7) : rng.uniform_real(9e5, 1.1e6);
      r.cpi = hot ? rng.uniform_real(2.9, 3.1) : rng.uniform_real(0.95, 1.05);
      r.instructions = 100'000;
      r.cycles = static_cast<Cycle>(r.cpi * 100'000);
      out[p].intervals.push_back(std::move(r));
    }
  }
  return out;
}

TEST(CurveTest, BbvCurveBlindToHiddenPhases) {
  const auto procs = two_hidden_phases(4, 64);
  CurveParams cp;
  const auto curve = bbv_cov_curve(procs, cp);
  ASSERT_EQ(curve.size(), cp.bbv_steps);
  // BBV merges everything into 1 phase at any threshold: high CoV.
  EXPECT_GT(cov_at_phases(curve, 25.0), 0.3);
}

TEST(CurveTest, DdvCurveSeparatesHiddenPhases) {
  const auto procs = two_hidden_phases(4, 64);
  CurveParams cp;
  const auto curve = bbv_ddv_cov_curve(procs, cp);
  // With a DDS axis, 2 phases suffice for near-zero CoV.
  EXPECT_LT(cov_at_phases(curve, 3.0), 0.05);
}

TEST(CurveTest, DdvEnvelopeNeverAboveBbvCurve) {
  const auto procs = two_hidden_phases(2, 48);
  CurveParams cp;
  const auto bbv = bbv_cov_curve(procs, cp);
  const auto ddv = bbv_ddv_cov_curve(procs, cp);
  for (const double phases : {1.0, 2.0, 5.0, 10.0, 25.0}) {
    EXPECT_LE(cov_at_phases(ddv, phases), cov_at_phases(bbv, phases) + 1e-9)
        << phases;
  }
}

TEST(CurveTest, TuningFractionGrowsWithPhases) {
  const auto procs = two_hidden_phases(2, 64);
  CurveParams cp;
  const auto curve = bbv_ddv_cov_points(procs, cp);
  for (const auto& pt : curve) {
    EXPECT_GE(pt.tuning_fraction, 0.0);
    EXPECT_LE(pt.tuning_fraction, 1.0);
    // trials * phases / intervals, capped.
    EXPECT_NEAR(pt.tuning_fraction,
                std::min(1.0, pt.mean_phases * cp.tuning_trials / 64.0),
                0.02);
  }
}

TEST(CurveTest, LowerEnvelopeKeepsMinimumPerBucket) {
  std::vector<CurvePoint> pts;
  CurvePoint a;
  a.mean_phases = 5.0;
  a.mean_cov = 0.5;
  CurvePoint b;
  b.mean_phases = 5.1;  // same 0.5-bucket
  b.mean_cov = 0.2;
  CurvePoint c;
  c.mean_phases = 9.0;
  c.mean_cov = 0.9;
  pts = {a, b, c};
  const auto env = lower_envelope(pts);
  ASSERT_EQ(env.size(), 2u);
  EXPECT_DOUBLE_EQ(env[0].mean_cov, 0.2);
  EXPECT_DOUBLE_EQ(env[1].mean_cov, 0.9);
  EXPECT_LT(env[0].mean_phases, env[1].mean_phases);
}

TEST(CurveTest, CovAtPhasesIsStaircaseMin) {
  std::vector<CurvePoint> curve(3);
  curve[0].mean_phases = 2;
  curve[0].mean_cov = 0.8;
  curve[1].mean_phases = 6;
  curve[1].mean_cov = 0.3;
  curve[2].mean_phases = 10;
  curve[2].mean_cov = 0.5;  // non-monotone point
  EXPECT_DOUBLE_EQ(cov_at_phases(curve, 1.0), 0.8);  // below all: coarsest
  EXPECT_DOUBLE_EQ(cov_at_phases(curve, 2.0), 0.8);
  EXPECT_DOUBLE_EQ(cov_at_phases(curve, 7.0), 0.3);
  EXPECT_DOUBLE_EQ(cov_at_phases(curve, 20.0), 0.3);  // best within budget
}

TEST(CurveTest, PhasesForCovFindsCheapestOperatingPoint) {
  std::vector<CurvePoint> curve(3);
  curve[0].mean_phases = 2;
  curve[0].mean_cov = 0.8;
  curve[1].mean_phases = 6;
  curve[1].mean_cov = 0.3;
  curve[2].mean_phases = 10;
  curve[2].mean_cov = 0.25;
  EXPECT_DOUBLE_EQ(phases_for_cov(curve, 0.3), 6.0);
  EXPECT_DOUBLE_EQ(phases_for_cov(curve, 0.26), 10.0);
  EXPECT_DOUBLE_EQ(phases_for_cov(curve, 0.1), 1e9);  // unreachable
}

}  // namespace
}  // namespace dsm::analysis
