#include "analysis/cov.hpp"

#include <gtest/gtest.h>

namespace dsm::analysis {
namespace {

phase::IntervalRecord with_cpi(double cpi) {
  phase::IntervalRecord r;
  r.cpi = cpi;
  return r;
}

TEST(CovTest, PerfectPhasesGiveZero) {
  // Two phases, each internally homogeneous: identifier CoV = 0.
  std::vector<phase::IntervalRecord> trace;
  std::vector<PhaseId> assign;
  for (int i = 0; i < 10; ++i) {
    trace.push_back(with_cpi(1.0));
    assign.push_back(0);
    trace.push_back(with_cpi(5.0));
    assign.push_back(1);
  }
  EXPECT_DOUBLE_EQ(identifier_cov(trace, assign), 0.0);
}

TEST(CovTest, SinglePhaseMergesAllVariance) {
  // All intervals one phase: CoV of {2,4,4,4,5,5,7,9} = 0.4.
  std::vector<phase::IntervalRecord> trace;
  std::vector<PhaseId> assign;
  for (const double c : {2., 4., 4., 4., 5., 5., 7., 9.}) {
    trace.push_back(with_cpi(c));
    assign.push_back(0);
  }
  EXPECT_DOUBLE_EQ(identifier_cov(trace, assign), 0.4);
}

TEST(CovTest, WeightingByIntervalPopulation) {
  // Phase 0: 8 intervals with CoV 0.4; phase 1: 2 identical intervals
  // (CoV 0). Weighted: 0.4 * 8/10.
  std::vector<phase::IntervalRecord> trace;
  std::vector<PhaseId> assign;
  for (const double c : {2., 4., 4., 4., 5., 5., 7., 9.}) {
    trace.push_back(with_cpi(c));
    assign.push_back(0);
  }
  trace.push_back(with_cpi(10.0));
  assign.push_back(1);
  trace.push_back(with_cpi(10.0));
  assign.push_back(1);
  EXPECT_DOUBLE_EQ(identifier_cov(trace, assign), 0.4 * 0.8);
}

TEST(CovTest, SingletonPhasesContributeZero) {
  // Every interval its own phase: the degenerate CoV = 0 case the paper
  // warns about ("each requiring tuning").
  std::vector<phase::IntervalRecord> trace;
  std::vector<PhaseId> assign;
  for (int i = 0; i < 7; ++i) {
    trace.push_back(with_cpi(i + 1.0));
    assign.push_back(i);
  }
  EXPECT_DOUBLE_EQ(identifier_cov(trace, assign), 0.0);
}

TEST(CovTest, PerPhaseStatsBreakdown) {
  std::vector<phase::IntervalRecord> trace{with_cpi(1), with_cpi(3),
                                           with_cpi(10)};
  const std::vector<PhaseId> assign{0, 0, 4};
  const auto stats = per_phase_stats(trace, assign);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].phase, 0);
  EXPECT_EQ(stats[0].intervals, 2u);
  EXPECT_DOUBLE_EQ(stats[0].mean_cpi, 2.0);
  EXPECT_DOUBLE_EQ(stats[0].cov_cpi, 0.5);
  EXPECT_EQ(stats[1].phase, 4);
  EXPECT_EQ(stats[1].intervals, 1u);
  EXPECT_DOUBLE_EQ(stats[1].cov_cpi, 0.0);
}

TEST(CovTest, EmptyTraceIsZero) {
  EXPECT_DOUBLE_EQ(identifier_cov({}, {}), 0.0);
}

}  // namespace
}  // namespace dsm::analysis
