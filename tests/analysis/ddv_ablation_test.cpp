#include "analysis/ddv_ablation.hpp"

#include <gtest/gtest.h>

namespace dsm::analysis {
namespace {

std::vector<phase::ProcessorTrace> one_record(unsigned nodes) {
  std::vector<phase::ProcessorTrace> procs(1);
  procs[0].node = 0;
  phase::IntervalRecord r;
  r.f.assign(nodes, 0);
  r.c.assign(nodes, 0);
  r.f[0] = 4;
  r.f[1] = 2;
  r.c[0] = 4;
  r.c[1] = 7;
  r.dds = -1.0;  // must be overwritten
  procs[0].intervals.push_back(r);
  return procs;
}

TEST(DdvAblationTest, VariantFormulasExact) {
  net::TopologyModel topo(Topology::kHypercube, 2);  // D = [[1,1],[1,1]]
  const auto procs = one_record(2);

  auto dds = [&](DdsVariant v) {
    return with_dds_variant(procs, topo, v)[0].intervals[0].dds;
  };
  // D[0][0]=1, D[0][1]=1 on a 2-node hypercube.
  EXPECT_DOUBLE_EQ(dds(DdsVariant::kFull), 4 * 1 * 4 + 2 * 1 * 7);
  EXPECT_DOUBLE_EQ(dds(DdsVariant::kNoContention), 4 * 1 + 2 * 1);
  EXPECT_DOUBLE_EQ(dds(DdsVariant::kNoDistance), 4 * 4 + 2 * 7);
  EXPECT_DOUBLE_EQ(dds(DdsVariant::kFrequencyOnly), 6);
}

TEST(DdvAblationTest, UsesPerProcessorDistanceRow) {
  // On a 4-node hypercube, D[1][2] = hamming(1,2) = 2.
  net::TopologyModel topo(Topology::kHypercube, 4);
  std::vector<phase::ProcessorTrace> procs(1);
  procs[0].node = 1;
  phase::IntervalRecord r;
  r.f = {0, 0, 3, 0};
  r.c = {0, 0, 5, 0};
  procs[0].intervals.push_back(r);
  const auto out =
      with_dds_variant(procs, topo, DdsVariant::kFull)[0].intervals[0];
  EXPECT_DOUBLE_EQ(out.dds, 3.0 * 2.0 * 5.0);
}

TEST(DdvAblationTest, OriginalLeftUntouched) {
  net::TopologyModel topo(Topology::kHypercube, 2);
  const auto procs = one_record(2);
  (void)with_dds_variant(procs, topo, DdsVariant::kFull);
  EXPECT_DOUBLE_EQ(procs[0].intervals[0].dds, -1.0);
}

TEST(DdvAblationTest, VariantNames) {
  EXPECT_STREQ(dds_variant_name(DdsVariant::kFull), "F*D*C (paper)");
  EXPECT_STREQ(dds_variant_name(DdsVariant::kFrequencyOnly),
               "F (frequency only)");
}

}  // namespace
}  // namespace dsm::analysis
