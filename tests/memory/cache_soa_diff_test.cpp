// cache_soa_diff_test.cpp — randomized differential test of the SoA
// Cache against a retained reference implementation of the pre-PR-5
// AoS (row-major Way{tag, state, lru}) walk. ~1M mixed operations per
// geometry replay the exact call patterns CoherenceFabric::access makes
// — lookup/touch/set_state chains, fills with victim extraction,
// invalidations, downgrades — and every observable (hit/miss/eviction/
// invalidation counters, victim identity and state, per-line states,
// resident-line sets) must stay identical throughout. The reference is
// the old code verbatim (modulo test-local naming), so any divergence in
// the SoA walk, the sentinel-tag trick, the direct-mapped fast path, or
// the fused fill victim scan fails here with the operation index.
#include "memory/cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hpp"

namespace dsm::mem {
namespace {

// ---- reference: the old AoS cache, retained verbatim ----

class RefCache {
 public:
  explicit RefCache(const CacheConfig& cfg)
      : cfg_(cfg),
        sets_(cfg.size_bytes /
              (static_cast<std::uint64_t>(cfg.line_bytes) *
               cfg.associativity)),
        ways_(sets_ * cfg.associativity) {
    unsigned shift = 0;
    while ((1u << shift) < cfg.line_bytes) ++shift;
    line_shift_ = shift;
  }

  Addr line_of(Addr a) const {
    return a & ~static_cast<Addr>(cfg_.line_bytes - 1);
  }

  LineState state(Addr addr) const {
    const Way* w = find(addr);
    return w ? w->state : LineState::kInvalid;
  }

  bool probe(Addr addr) const { return find(addr) != nullptr; }

  bool access(Addr addr) {
    Way* w = find(addr);
    if (w == nullptr) {
      ++misses_;
      return false;
    }
    w->lru = ++tick_;
    ++hits_;
    return true;
  }

  void set_state(Addr addr, LineState s) {
    Way* w = find(addr);
    ASSERT_TRUE(w != nullptr);
    w->state = s;
  }

  std::optional<Victim> fill(Addr addr, LineState s) {
    const Addr line = line_of(addr);
    Way* base = &ways_[set_index(line) * cfg_.associativity];
    Way* victim = nullptr;
    for (unsigned w = 0; w < cfg_.associativity; ++w) {
      if (base[w].state == LineState::kInvalid) {
        victim = &base[w];
        break;
      }
      if (victim == nullptr || base[w].lru < victim->lru) victim = &base[w];
    }
    std::optional<Victim> out;
    if (victim->state != LineState::kInvalid) {
      out = Victim{victim->tag, victim->state};
      ++evictions_;
    }
    victim->tag = line;
    victim->state = s;
    victim->lru = ++tick_;
    return out;
  }

  LineState invalidate(Addr addr) {
    Way* w = find(addr);
    if (w == nullptr) return LineState::kInvalid;
    const LineState prior = w->state;
    w->state = LineState::kInvalid;
    ++invals_;
    return prior;
  }

  LineState downgrade(Addr addr) {
    Way* w = find(addr);
    if (w == nullptr) return LineState::kInvalid;
    const LineState prior = w->state;
    if (prior == LineState::kExclusive || prior == LineState::kModified)
      w->state = LineState::kShared;
    return prior;
  }

  void flush() {
    for (auto& w : ways_) w.state = LineState::kInvalid;
  }

  std::vector<Addr> resident_lines() const {
    std::vector<Addr> out;
    for (const auto& w : ways_)
      if (w.state != LineState::kInvalid) out.push_back(w.tag);
    return out;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t invalidations_received() const { return invals_; }

 private:
  struct Way {
    Addr tag = 0;
    LineState state = LineState::kInvalid;
    std::uint64_t lru = 0;
  };

  std::uint64_t set_index(Addr line) const {
    return (line >> line_shift_) & (sets_ - 1);
  }

  Way* find(Addr addr) {
    const Addr line = line_of(addr);
    Way* base = &ways_[set_index(line) * cfg_.associativity];
    for (unsigned w = 0; w < cfg_.associativity; ++w) {
      if (base[w].state != LineState::kInvalid && base[w].tag == line)
        return &base[w];
    }
    return nullptr;
  }
  const Way* find(Addr addr) const {
    return const_cast<RefCache*>(this)->find(addr);
  }

  CacheConfig cfg_;
  std::uint64_t sets_;
  unsigned line_shift_ = 0;
  std::vector<Way> ways_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invals_ = 0;
};

// ---- the differential driver ----

CacheConfig geometry(std::uint64_t bytes, unsigned assoc, unsigned line) {
  CacheConfig c;
  c.size_bytes = bytes;
  c.associativity = assoc;
  c.line_bytes = line;
  c.latency_cycles = 1;
  return c;
}

void run_diff(const CacheConfig& cfg, std::uint64_t ops, std::uint64_t seed) {
  Cache soa(cfg);
  RefCache ref(cfg);
  std::uint64_t x = seed;
  auto rnd = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  const std::uint64_t lines = 4 * cfg.size_bytes / cfg.line_bytes;
  const LineState states[3] = {LineState::kShared, LineState::kExclusive, LineState::kModified};

  for (std::uint64_t i = 0; i < ops; ++i) {
    const Addr a = (rnd() % lines) * cfg.line_bytes + (rnd() % cfg.line_bytes);
    const unsigned op = rnd() % 16;
    if (op < 6) {
      // The fabric's hit pattern: one lookup, then state read + touch or
      // miss counting, with an optional write upgrade.
      const auto h = soa.lookup(a);
      const LineState want = ref.state(a);
      ASSERT_EQ(soa.state_of(h), want) << "op " << i;
      if (want != LineState::kInvalid) {
        ref.access(a);
        soa.touch(h);
        if ((rnd() & 1) != 0 && want != LineState::kInvalid) {
          ref.set_state(a, LineState::kModified);
          soa.set_state(h, LineState::kModified);
        }
      } else {
        ref.access(a);
        soa.record_miss();
      }
    } else if (op < 11) {
      // Fill-if-absent with a random grant state; victims must agree in
      // identity AND dirtiness — the writeback path hangs off both.
      if (!ref.probe(a)) {
        const LineState s = states[rnd() % 3];
        const auto vr = ref.fill(a, s);
        const auto vs = soa.fill(a, s);
        ASSERT_EQ(vr.has_value(), vs.has_value()) << "op " << i;
        if (vr) {
          ASSERT_EQ(vr->line_addr, vs->line_addr) << "op " << i;
          ASSERT_EQ(vr->state, vs->state) << "op " << i;
        }
      }
    } else if (op < 13) {
      ASSERT_EQ(ref.invalidate(a), soa.invalidate(soa.lookup(a))) << "op " << i;
    } else if (op < 15) {
      ASSERT_EQ(ref.downgrade(a), soa.downgrade(soa.lookup(a))) << "op " << i;
    } else if (op == 15 && (rnd() % 4096) == 0) {
      ref.flush();
      soa.flush();
    } else {
      ASSERT_EQ(ref.probe(a), static_cast<bool>(soa.lookup(a))) << "op " << i;
    }

    ASSERT_EQ(ref.hits(), soa.hits()) << "op " << i;
    ASSERT_EQ(ref.misses(), soa.misses()) << "op " << i;
    ASSERT_EQ(ref.evictions(), soa.evictions()) << "op " << i;
    ASSERT_EQ(ref.invalidations_received(), soa.invalidations_received())
        << "op " << i;
  }

  // Full content + LRU-order equivalence at the end. resident_lines() is
  // set-major in both implementations, so the sequences must match
  // element for element, not just as sets.
  const auto lr = ref.resident_lines();
  const auto ls = soa.resident_lines();
  ASSERT_EQ(lr.size(), ls.size());
  for (std::size_t i = 0; i < lr.size(); ++i) {
    ASSERT_EQ(lr[i], ls[i]) << "slot " << i;
    ASSERT_EQ(ref.state(lr[i]), soa.state(ls[i]));
  }
}

TEST(CacheSoaDiffTest, DirectMappedL1Geometry) {
  // Table I L1 shape (16 kB direct-mapped): exercises the branch-free
  // fast path.
  run_diff(geometry(16 * 1024, 1, 32), 500'000, 0x2545F4914F6CDD1Dull);
}

TEST(CacheSoaDiffTest, EightWayL2Geometry) {
  // L2 shape shrunk (8-way, 32 B lines): exercises the tag-lane walk and
  // the fused victim scan under constant eviction pressure.
  run_diff(geometry(64 * 1024, 8, 32), 500'000, 0xA3C59AC2ED1B54A3ull);
}

TEST(CacheSoaDiffTest, OddAssociativityGeometry) {
  // Non-power-of-two ways: the lane indexing must not assume pow2 assoc.
  run_diff(geometry(12 * 1024, 3, 64), 100'000, 0x9E3779B97F4A7C15ull);
}

}  // namespace
}  // namespace dsm::mem
