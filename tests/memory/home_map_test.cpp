#include "memory/home_map.hpp"

#include <gtest/gtest.h>

namespace dsm::mem {
namespace {

constexpr std::uint64_t kPage = 4096;

TEST(HomeMapTest, RoundRobinCyclesPages) {
  HomeMap m(4, kPage, Placement::kRoundRobin);
  EXPECT_EQ(m.home_of(0, 0), 0u);
  EXPECT_EQ(m.home_of(kPage, 0), 1u);
  EXPECT_EQ(m.home_of(2 * kPage, 0), 2u);
  EXPECT_EQ(m.home_of(4 * kPage, 0), 0u);
  // Same page, any offset.
  EXPECT_EQ(m.home_of(kPage + 123, 3), 1u);
}

TEST(HomeMapTest, BlockCyclicGroupsPages) {
  HomeMap m(4, kPage, Placement::kBlockCyclic, /*block_pages=*/2);
  EXPECT_EQ(m.home_of(0, 0), 0u);
  EXPECT_EQ(m.home_of(kPage, 0), 0u);
  EXPECT_EQ(m.home_of(2 * kPage, 0), 1u);
  EXPECT_EQ(m.home_of(7 * kPage, 0), 3u);
  EXPECT_EQ(m.home_of(8 * kPage, 0), 0u);
}

TEST(HomeMapTest, FirstTouchBindsToAccessor) {
  HomeMap m(4, kPage, Placement::kFirstTouch);
  EXPECT_EQ(m.peek_home(0), kNoNode);  // untouched
  EXPECT_EQ(m.home_of(100, 2), 2u);    // first touch by node 2
  EXPECT_EQ(m.home_of(200, 3), 2u);    // sticks
  EXPECT_EQ(m.peek_home(0), 2u);
  EXPECT_EQ(m.bound_pages(), 1u);
}

TEST(HomeMapTest, ExplicitPlacementOverridesPolicy) {
  HomeMap m(4, kPage, Placement::kRoundRobin);
  m.place_range(0, 3 * kPage, 3);
  EXPECT_EQ(m.home_of(0, 0), 3u);
  EXPECT_EQ(m.home_of(kPage, 0), 3u);
  EXPECT_EQ(m.home_of(2 * kPage + kPage - 1, 0), 3u);
  EXPECT_EQ(m.home_of(3 * kPage, 0), 3u % 4);  // back to policy (page 3)
}

TEST(HomeMapTest, PlaceRangePartialPagesCoverWholePages) {
  HomeMap m(4, kPage, Placement::kRoundRobin);
  // Range straddling two pages binds both.
  m.place_range(kPage - 10, 20, 2);
  EXPECT_EQ(m.home_of(0, 0), 2u);
  EXPECT_EQ(m.home_of(kPage, 0), 2u);
  EXPECT_EQ(m.home_of(2 * kPage, 0), 2u % 4);  // untouched page: policy
}

TEST(HomeMapTest, DistributeRangeRoundRobins) {
  HomeMap m(4, kPage, Placement::kFirstTouch);
  m.distribute_range(0, 8 * kPage, /*first_node=*/1);
  EXPECT_EQ(m.home_of(0, 0), 1u);
  EXPECT_EQ(m.home_of(kPage, 0), 2u);
  EXPECT_EQ(m.home_of(3 * kPage, 0), 0u);
  EXPECT_EQ(m.home_of(7 * kPage, 0), 0u);
}

TEST(HomeMapTest, LaterPlacementWins) {
  HomeMap m(4, kPage, Placement::kRoundRobin);
  m.place_range(0, kPage, 1);
  m.place_range(0, kPage, 2);
  EXPECT_EQ(m.home_of(0, 0), 2u);
}

TEST(HomeMapTest, ZeroByteRangesAreNoOps) {
  HomeMap m(4, kPage, Placement::kRoundRobin);
  m.place_range(0, 0, 3);
  m.distribute_range(0, 0, 1);
  EXPECT_EQ(m.bound_pages(), 0u);
}

TEST(HomeMapTest, AllHomesWithinNodeCount) {
  HomeMap m(8, kPage, Placement::kRoundRobin);
  for (Addr a = 0; a < 100 * kPage; a += kPage / 2)
    EXPECT_LT(m.home_of(a, 0), 8u);
}

}  // namespace
}  // namespace dsm::mem
