#include "memory/cache.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace dsm::mem {
namespace {

CacheConfig small_cache(unsigned assoc) {
  CacheConfig c;
  c.size_bytes = 1024;
  c.associativity = assoc;
  c.line_bytes = 32;
  c.latency_cycles = 1;
  return c;
}

TEST(CacheTest, MissThenHit) {
  Cache c(small_cache(2));
  EXPECT_FALSE(c.access(0x100));
  EXPECT_EQ(c.misses(), 1u);
  c.fill(0x100, LineState::kShared);
  EXPECT_TRUE(c.access(0x100));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_TRUE(c.access(0x11f));  // same 32-byte line
  EXPECT_FALSE(c.access(0x120));  // next line
}

TEST(CacheTest, StateTracking) {
  Cache c(small_cache(2));
  c.fill(0x40, LineState::kExclusive);
  EXPECT_EQ(c.state(0x40), LineState::kExclusive);
  c.set_state(0x40, LineState::kModified);
  EXPECT_EQ(c.state(0x40), LineState::kModified);
  EXPECT_EQ(c.state(0x9999), LineState::kInvalid);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  // 2-way, 16 sets: lines 0, 512, 1024 map to set 0 (line 32B, 16 sets ->
  // set stride 512).
  Cache c(small_cache(2));
  c.fill(0, LineState::kShared);
  c.fill(512, LineState::kShared);
  c.access(0);  // 0 is now MRU; 512 is LRU
  const auto victim = c.fill(1024, LineState::kShared);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line_addr, 512u);
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(512));
  EXPECT_TRUE(c.probe(1024));
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(CacheTest, VictimCarriesDirtyState) {
  Cache c(small_cache(1));  // direct-mapped
  c.fill(0, LineState::kModified);
  const auto victim = c.fill(1024, LineState::kShared);  // same set
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->state, LineState::kModified);
}

TEST(CacheTest, InvalidateReturnsPriorState) {
  Cache c(small_cache(2));
  c.fill(0x40, LineState::kModified);
  EXPECT_EQ(c.invalidate(0x40), LineState::kModified);
  EXPECT_FALSE(c.probe(0x40));
  EXPECT_EQ(c.invalidate(0x40), LineState::kInvalid);  // second time: absent
  EXPECT_EQ(c.invalidations_received(), 1u);
}

TEST(CacheTest, DowngradeOnlyWeakensExclusivity) {
  Cache c(small_cache(2));
  c.fill(0x40, LineState::kModified);
  EXPECT_EQ(c.downgrade(0x40), LineState::kModified);
  EXPECT_EQ(c.state(0x40), LineState::kShared);
  EXPECT_EQ(c.downgrade(0x40), LineState::kShared);  // S stays S
  EXPECT_EQ(c.state(0x40), LineState::kShared);
}

TEST(CacheTest, FlushDropsEverything) {
  Cache c(small_cache(2));
  c.fill(0, LineState::kShared);
  c.fill(64, LineState::kModified);
  c.flush();
  EXPECT_FALSE(c.probe(0));
  EXPECT_FALSE(c.probe(64));
  EXPECT_TRUE(c.resident_lines().empty());
}

TEST(CacheTest, HitRate) {
  Cache c(small_cache(2));
  c.fill(0, LineState::kShared);
  c.access(0);
  c.access(0);
  c.access(64);  // miss
  EXPECT_NEAR(c.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(CacheDeathTest, DoubleFillAborts) {
  Cache c(small_cache(2));
  c.fill(0x40, LineState::kShared);
  EXPECT_DEATH(c.fill(0x40, LineState::kShared), "already-present");
}

TEST(CacheDeathTest, SetStateOnAbsentLineAborts) {
  Cache c(small_cache(2));
  EXPECT_DEATH(c.set_state(0x40, LineState::kShared), "absent");
}

// ---- property sweep over geometries ----

using CacheParam = std::tuple<unsigned, unsigned, unsigned>;  // size-kB, assoc, line

class CacheGeometryTest : public ::testing::TestWithParam<CacheParam> {
 protected:
  CacheConfig make() const {
    const auto [kb, assoc, line] = GetParam();
    CacheConfig c;
    c.size_bytes = kb * 1024ull;
    c.associativity = assoc;
    c.line_bytes = line;
    return c;
  }
};

TEST_P(CacheGeometryTest, CapacityIsRespected) {
  const CacheConfig cfg = make();
  Cache c(cfg);
  const std::uint64_t lines = cfg.size_bytes / cfg.line_bytes;
  // Fill exactly capacity distinct lines: no evictions.
  for (std::uint64_t i = 0; i < lines; ++i)
    c.fill(i * cfg.line_bytes, LineState::kShared);
  EXPECT_EQ(c.evictions(), 0u);
  EXPECT_EQ(c.resident_lines().size(), lines);
  // One more line in any set must evict.
  c.fill(lines * cfg.line_bytes, LineState::kShared);
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_EQ(c.resident_lines().size(), lines);
}

TEST_P(CacheGeometryTest, SequentialRefillAllHits) {
  const CacheConfig cfg = make();
  Cache c(cfg);
  const std::uint64_t lines = cfg.size_bytes / cfg.line_bytes;
  for (std::uint64_t i = 0; i < lines; ++i) {
    c.access(i * cfg.line_bytes);
    c.fill(i * cfg.line_bytes, LineState::kShared);
  }
  for (std::uint64_t i = 0; i < lines; ++i)
    EXPECT_TRUE(c.access(i * cfg.line_bytes)) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(CacheParam{1, 1, 32},    // tiny direct-mapped
                      CacheParam{1, 2, 32},
                      CacheParam{16, 1, 32},   // Table I L1
                      CacheParam{16, 4, 64},
                      CacheParam{64, 8, 32},   // L2-like, shrunk
                      CacheParam{4, 16, 32})); // high associativity

// ---- combined lookup() equivalence with the address-based sequences ----

TEST(CacheLookupTest, HandleMirrorsAddressApi) {
  Cache c(small_cache(2));
  // Absent line: falsy handle, kInvalid state, miss counting matches
  // a missing access().
  EXPECT_FALSE(c.lookup(0x100));
  EXPECT_EQ(c.state_of(c.lookup(0x100)), LineState::kInvalid);
  c.record_miss();
  EXPECT_EQ(c.misses(), 1u);
  // Present line: truthy handle, state/touch/set_state agree with the
  // address forms.
  c.fill(0x100, LineState::kShared);
  const auto h = c.lookup(0x11f);  // same 32-byte line
  ASSERT_TRUE(h);
  EXPECT_EQ(c.state_of(h), c.state(0x100));
  c.touch(h);
  EXPECT_EQ(c.hits(), 1u);
  c.set_state(h, LineState::kModified);
  EXPECT_EQ(c.state(0x100), LineState::kModified);
  EXPECT_EQ(c.invalidate(c.lookup(0x100)), LineState::kModified);
  EXPECT_FALSE(c.probe(0x100));
}

// LineRef is an index into the SoA lanes, so it follows the slot, not a
// pointer: handles — including handles to OTHER lines in the same set —
// must survive any number of touch()/set_state()/downgrade() calls
// (cache.hpp documents the invalidation rules: only fill(), invalidate(),
// and flush() may repurpose or empty a slot).
TEST(CacheLookupTest, HandlesStayValidAcrossTouchAndSetState) {
  Cache c(small_cache(2));
  // Two lines in the same set (2-way, 16 sets, set stride 512).
  c.fill(0, LineState::kShared);
  c.fill(512, LineState::kExclusive);
  const auto ha = c.lookup(0);
  const auto hb = c.lookup(512);
  ASSERT_TRUE(ha);
  ASSERT_TRUE(hb);
  // Interleave LRU movement and state writes through both handles; each
  // must keep denoting its own line.
  c.touch(ha);
  c.set_state(hb, LineState::kModified);
  EXPECT_EQ(c.state_of(ha), LineState::kShared);
  EXPECT_EQ(c.state_of(hb), LineState::kModified);
  c.touch(hb);
  c.set_state(ha, LineState::kModified);
  c.downgrade(hb);
  EXPECT_EQ(c.state_of(ha), LineState::kModified);
  EXPECT_EQ(c.state_of(hb), LineState::kShared);
  EXPECT_EQ(c.state(0), LineState::kModified);
  EXPECT_EQ(c.state(512), LineState::kShared);
  // The handles were touched twice each on top of the two fills.
  EXPECT_EQ(c.hits(), 2u);
}

TEST(CacheTest, ResidentLinesAreSetMajorDeterministic) {
  // 2-way, 16 sets, 32 B lines: set(line) = (line/32) % 16. Fill sets in
  // scrambled order; resident_lines() must come back ascending by set,
  // ways in fill order within a set — regardless of fill or LRU order.
  Cache c(small_cache(2));
  const Addr set3 = 3 * 32, set1 = 1 * 32, set0 = 0;
  c.fill(set3, LineState::kShared);
  c.fill(set1 + 512, LineState::kShared);   // set 1, first-filled way
  c.fill(set0 + 1024, LineState::kShared);
  c.fill(set1, LineState::kShared);         // set 1, second way
  c.access(set3);                      // LRU movement must not reorder
  const std::vector<Addr> want = {set0 + 1024, set1 + 512, set1, set3};
  EXPECT_EQ(c.resident_lines(), want);
}

TEST(CacheLookupTest, RandomizedLockstepAgainstOldSequences) {
  // Drive two identical caches with the same operation stream — one
  // through the old probe()/state()/access()/set_state(Addr) calls, one
  // through a single lookup() plus the handle forms — and require
  // identical hits/misses/evictions/LRU behavior and contents throughout.
  const CacheConfig cfg = small_cache(4);
  Cache old_api(cfg);
  Cache new_api(cfg);
  std::uint64_t x = 0x2545F4914F6CDD1Dull;  // xorshift64
  auto rnd = [&x]() {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    return x;
  };
  for (int i = 0; i < 20000; ++i) {
    const Addr a = (rnd() % 128) * cfg.line_bytes;
    const unsigned op = rnd() % 5;
    if (op == 0) {
      // Old: state + access (+ set_state on a hit) — the L1 hit pattern.
      const LineState so = old_api.state(a);
      const bool write = rnd() & 1;
      const auto h = new_api.lookup(a);
      ASSERT_EQ(new_api.state_of(h), so);
      if (so != LineState::kInvalid) {
        old_api.access(a);
        new_api.touch(h);
        if (write) {
          old_api.set_state(a, LineState::kModified);
          new_api.set_state(h, LineState::kModified);
        }
      } else {
        old_api.access(a);
        new_api.record_miss();
      }
    } else if (op == 1) {
      if (!old_api.probe(a)) {
        old_api.fill(a, LineState::kExclusive);
        new_api.fill(a, LineState::kExclusive);
      }
    } else if (op == 2) {
      ASSERT_EQ(old_api.invalidate(a), new_api.invalidate(new_api.lookup(a)));
    } else if (op == 3) {
      ASSERT_EQ(old_api.downgrade(a), new_api.downgrade(new_api.lookup(a)));
    } else {
      ASSERT_EQ(old_api.probe(a), static_cast<bool>(new_api.lookup(a)));
    }
    ASSERT_EQ(old_api.hits(), new_api.hits());
    ASSERT_EQ(old_api.misses(), new_api.misses());
    ASSERT_EQ(old_api.evictions(), new_api.evictions());
    ASSERT_EQ(old_api.invalidations_received(),
              new_api.invalidations_received());
  }
  // Same resident lines and states at the end (LRU stayed in lockstep).
  const auto ra = old_api.resident_lines();
  const auto rb = new_api.resident_lines();
  ASSERT_EQ(ra.size(), rb.size());
  for (const Addr line : ra) EXPECT_EQ(old_api.state(line),
                                       new_api.state(line));
}

}  // namespace
}  // namespace dsm::mem
