#include "memory/cache.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace dsm::mem {
namespace {

CacheConfig small_cache(unsigned assoc) {
  CacheConfig c;
  c.size_bytes = 1024;
  c.associativity = assoc;
  c.line_bytes = 32;
  c.latency_cycles = 1;
  return c;
}

TEST(CacheTest, MissThenHit) {
  Cache c(small_cache(2));
  EXPECT_FALSE(c.access(0x100));
  EXPECT_EQ(c.misses(), 1u);
  c.fill(0x100, Mesi::kShared);
  EXPECT_TRUE(c.access(0x100));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_TRUE(c.access(0x11f));  // same 32-byte line
  EXPECT_FALSE(c.access(0x120));  // next line
}

TEST(CacheTest, StateTracking) {
  Cache c(small_cache(2));
  c.fill(0x40, Mesi::kExclusive);
  EXPECT_EQ(c.state(0x40), Mesi::kExclusive);
  c.set_state(0x40, Mesi::kModified);
  EXPECT_EQ(c.state(0x40), Mesi::kModified);
  EXPECT_EQ(c.state(0x9999), Mesi::kInvalid);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  // 2-way, 16 sets: lines 0, 512, 1024 map to set 0 (line 32B, 16 sets ->
  // set stride 512).
  Cache c(small_cache(2));
  c.fill(0, Mesi::kShared);
  c.fill(512, Mesi::kShared);
  c.access(0);  // 0 is now MRU; 512 is LRU
  const auto victim = c.fill(1024, Mesi::kShared);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line_addr, 512u);
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(512));
  EXPECT_TRUE(c.probe(1024));
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(CacheTest, VictimCarriesDirtyState) {
  Cache c(small_cache(1));  // direct-mapped
  c.fill(0, Mesi::kModified);
  const auto victim = c.fill(1024, Mesi::kShared);  // same set
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->state, Mesi::kModified);
}

TEST(CacheTest, InvalidateReturnsPriorState) {
  Cache c(small_cache(2));
  c.fill(0x40, Mesi::kModified);
  EXPECT_EQ(c.invalidate(0x40), Mesi::kModified);
  EXPECT_FALSE(c.probe(0x40));
  EXPECT_EQ(c.invalidate(0x40), Mesi::kInvalid);  // second time: absent
  EXPECT_EQ(c.invalidations_received(), 1u);
}

TEST(CacheTest, DowngradeOnlyWeakensExclusivity) {
  Cache c(small_cache(2));
  c.fill(0x40, Mesi::kModified);
  EXPECT_EQ(c.downgrade(0x40), Mesi::kModified);
  EXPECT_EQ(c.state(0x40), Mesi::kShared);
  EXPECT_EQ(c.downgrade(0x40), Mesi::kShared);  // S stays S
  EXPECT_EQ(c.state(0x40), Mesi::kShared);
}

TEST(CacheTest, FlushDropsEverything) {
  Cache c(small_cache(2));
  c.fill(0, Mesi::kShared);
  c.fill(64, Mesi::kModified);
  c.flush();
  EXPECT_FALSE(c.probe(0));
  EXPECT_FALSE(c.probe(64));
  EXPECT_TRUE(c.resident_lines().empty());
}

TEST(CacheTest, HitRate) {
  Cache c(small_cache(2));
  c.fill(0, Mesi::kShared);
  c.access(0);
  c.access(0);
  c.access(64);  // miss
  EXPECT_NEAR(c.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(CacheDeathTest, DoubleFillAborts) {
  Cache c(small_cache(2));
  c.fill(0x40, Mesi::kShared);
  EXPECT_DEATH(c.fill(0x40, Mesi::kShared), "already-present");
}

TEST(CacheDeathTest, SetStateOnAbsentLineAborts) {
  Cache c(small_cache(2));
  EXPECT_DEATH(c.set_state(0x40, Mesi::kShared), "absent");
}

// ---- property sweep over geometries ----

using CacheParam = std::tuple<unsigned, unsigned, unsigned>;  // size-kB, assoc, line

class CacheGeometryTest : public ::testing::TestWithParam<CacheParam> {
 protected:
  CacheConfig make() const {
    const auto [kb, assoc, line] = GetParam();
    CacheConfig c;
    c.size_bytes = kb * 1024ull;
    c.associativity = assoc;
    c.line_bytes = line;
    return c;
  }
};

TEST_P(CacheGeometryTest, CapacityIsRespected) {
  const CacheConfig cfg = make();
  Cache c(cfg);
  const std::uint64_t lines = cfg.size_bytes / cfg.line_bytes;
  // Fill exactly capacity distinct lines: no evictions.
  for (std::uint64_t i = 0; i < lines; ++i)
    c.fill(i * cfg.line_bytes, Mesi::kShared);
  EXPECT_EQ(c.evictions(), 0u);
  EXPECT_EQ(c.resident_lines().size(), lines);
  // One more line in any set must evict.
  c.fill(lines * cfg.line_bytes, Mesi::kShared);
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_EQ(c.resident_lines().size(), lines);
}

TEST_P(CacheGeometryTest, SequentialRefillAllHits) {
  const CacheConfig cfg = make();
  Cache c(cfg);
  const std::uint64_t lines = cfg.size_bytes / cfg.line_bytes;
  for (std::uint64_t i = 0; i < lines; ++i) {
    c.access(i * cfg.line_bytes);
    c.fill(i * cfg.line_bytes, Mesi::kShared);
  }
  for (std::uint64_t i = 0; i < lines; ++i)
    EXPECT_TRUE(c.access(i * cfg.line_bytes)) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(CacheParam{1, 1, 32},    // tiny direct-mapped
                      CacheParam{1, 2, 32},
                      CacheParam{16, 1, 32},   // Table I L1
                      CacheParam{16, 4, 64},
                      CacheParam{64, 8, 32},   // L2-like, shrunk
                      CacheParam{4, 16, 32})); // high associativity

}  // namespace
}  // namespace dsm::mem
