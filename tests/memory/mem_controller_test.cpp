#include "memory/mem_controller.hpp"

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "memory/dram.hpp"

namespace dsm::mem {
namespace {

MachineConfig cfg() { return default_config(8); }

TEST(DramTest, DeviceLatencyMatchesTable1) {
  Dram d(cfg());
  // 75 ns @ 2 GHz = 150 cycles; 32 B @ 2.6 GB/s = ceil(24.6) = 25 cycles.
  EXPECT_EQ(d.access_latency(32), 150u + 25u);
  EXPECT_EQ(d.channel_occupancy(32), 25u);
  EXPECT_EQ(d.channel_occupancy(8), 7u);
}

TEST(DramTest, BankInterleavingByLine) {
  Dram d(cfg());
  EXPECT_EQ(d.banks(), 8u);
  EXPECT_EQ(d.bank_of(0), 0u);
  EXPECT_EQ(d.bank_of(32), 1u);
  EXPECT_EQ(d.bank_of(32 * 8), 0u);
}

TEST(MemControllerTest, UnloadedLatencyIsDeviceOnly) {
  MemController mc(cfg(), 0);
  const Cycle lat = mc.request(0x1000, 0, 32, 1);
  EXPECT_EQ(lat, 175u);  // no queueing on the first epoch
  EXPECT_EQ(mc.requests(), 1u);
  EXPECT_EQ(mc.requests_from(1), 1u);
  EXPECT_EQ(mc.requests_from(2), 0u);
}

TEST(MemControllerTest, SustainedLoadAddsQueueingNextEpoch) {
  auto c = cfg();
  MemController mc(c, 0);
  const Cycle epoch = c.network.contention_epoch_cycles;
  // Load epoch 0 to ~76% utilization (250 requests * 25 cycles / 8192).
  for (int i = 0; i < 250; ++i) mc.request(0x1000 + 32 * i, 100, 32, 1);
  EXPECT_GT(mc.utilization(epoch + 1), 0.5);
  const Cycle loaded = mc.request(0x9000, epoch + 1, 32, 2);
  EXPECT_GT(loaded, 175u);
}

TEST(MemControllerTest, QueueingDecaysAfterIdleEpoch) {
  auto c = cfg();
  MemController mc(c, 0);
  const Cycle epoch = c.network.contention_epoch_cycles;
  for (int i = 0; i < 250; ++i) mc.request(0x1000 + 32 * i, 100, 32, 1);
  // Two epochs later the backlog is gone.
  EXPECT_EQ(mc.request(0x9000, 3 * epoch + 1, 32, 2), 175u);
}

TEST(MemControllerTest, SkewImmunity) {
  // The motivating regression: requests arriving with bounded clock skew
  // (cooperative-scheduler quantum) must not observe phantom queueing.
  auto c = cfg();
  MemController mc(c, 0);
  // A "leader" thread at cycle 20000 and a "laggard" at cycle 100 issue
  // interleaved requests in the same epoch (epoch = 8192 spans both? No:
  // use within-epoch skew of 2000 cycles).
  Cycle lat_sum_leader = 0, lat_sum_laggard = 0;
  for (int i = 0; i < 20; ++i) {
    lat_sum_leader += mc.request(0x1000 + 64 * i, 4000, 32, 0);
    lat_sum_laggard += mc.request(0x8000 + 64 * i, 2000, 32, 1);
  }
  // Identical epoch -> identical (zero, first-epoch) queueing for both.
  EXPECT_EQ(lat_sum_leader, lat_sum_laggard);
}

TEST(MemControllerTest, UtilizationCapBoundsQueueing) {
  auto c = cfg();
  MemController mc(c, 0);
  const Cycle epoch = c.network.contention_epoch_cycles;
  for (int i = 0; i < 100'000; ++i) mc.request(0x0, 100, 32, 1);
  // rho capped at 0.90: wait = 25 * 9 = 225.
  const Cycle lat = mc.request(0x9000, epoch + 1, 32, 2);
  EXPECT_EQ(lat, 175u + 225u);
}

TEST(MemControllerTest, PerRequestorAccounting) {
  MemController mc(cfg(), 3);
  mc.request(0, 0, 32, 0);
  mc.request(0, 0, 32, 0);
  mc.request(0, 0, 32, 5);
  EXPECT_EQ(mc.requests_from(0), 2u);
  EXPECT_EQ(mc.requests_from(5), 1u);
  EXPECT_EQ(mc.requests(), 3u);
  EXPECT_EQ(mc.node(), 3u);
}

}  // namespace
}  // namespace dsm::mem
