// obs_determinism_test.cpp — the observability layer's central promise,
// regression-tested at the Machine level: the deterministic metrics
// snapshot AND the per-node trace event sequences are bit-identical
// across the batch axis and sensible across every protocol, because both
// are recorded only at simulated-event sites (misses, directory
// transitions, evictions, phase boundaries) that execute in the same
// order regardless of how the host schedules the work. The harness-level
// --threads/--shards axes are covered by the bench/obs_equivalence ctest,
// which byte-compares whole NDJSON streams.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "common/config.hpp"
#include "obs/trace.hpp"

namespace dsm {
namespace {

struct ObsRun {
  std::string snapshot;      ///< RunSummary::obs_json
  obs::TraceFileData trace;  ///< parsed post-run dump
};

ObsRun run_with_obs(const char* app, Protocol protocol, unsigned batch,
                    const std::string& trace_path) {
  ObsConfig obs;
  obs.stats = true;
  obs.trace = true;
  obs.trace_path = trace_path;

  sim::RunSummary run =
      bench::run_workload(apps::app_by_name(app), apps::Scale::kTest,
                          /*nodes=*/4, /*verbose=*/false, /*seed=*/0x0b5u,
                          protocol, batch, obs);

  ObsRun r;
  r.snapshot = std::move(run.obs_json);
  std::string err;
  EXPECT_TRUE(obs::read_trace_file(trace_path, &r.trace, &err)) << err;
  std::remove(trace_path.c_str());
  return r;
}

void expect_identical_traces(const obs::TraceFileData& a,
                             const obs::TraceFileData& b) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t n = 0; n < a.nodes.size(); ++n) {
    EXPECT_EQ(a.nodes[n].dropped, b.nodes[n].dropped) << "node " << n;
    ASSERT_EQ(a.nodes[n].events.size(), b.nodes[n].events.size())
        << "node " << n;
    for (std::size_t i = 0; i < a.nodes[n].events.size(); ++i) {
      ASSERT_EQ(std::memcmp(&a.nodes[n].events[i], &b.nodes[n].events[i],
                            sizeof(obs::TraceEvent)),
                0)
          << "node " << n << " event " << i << " ("
          << obs::trace_kind_name(a.nodes[n].events[i].kind) << " vs "
          << obs::trace_kind_name(b.nodes[n].events[i].kind) << ")";
    }
  }
}

class ObsDeterminismTest : public ::testing::TestWithParam<Protocol> {};

// Batching regroups the host-side work (stage-1 walks, prefetch, staged
// hints) but must not move a single simulated event: snapshot and traces
// from --batch=1 and --batch=4 are bit-identical.
TEST_P(ObsDeterminismTest, SnapshotAndTraceIdenticalAcrossBatchSizes) {
  const Protocol protocol = GetParam();
  const std::string dir = ::testing::TempDir();
  const ObsRun serial =
      run_with_obs("LU", protocol, /*batch=*/1, dir + "obs_det_b1.trace");
  const ObsRun batched =
      run_with_obs("LU", protocol, /*batch=*/4, dir + "obs_det_b4.trace");

  ASSERT_FALSE(serial.snapshot.empty());
  EXPECT_EQ(serial.snapshot, batched.snapshot);
  // The deterministic snapshot carries the coherence and network lanes
  // but never the "host." diagnostics batching legitimately perturbs.
  EXPECT_NE(serial.snapshot.find("coh.trans."), std::string::npos);
  EXPECT_NE(serial.snapshot.find("net.link"), std::string::npos);
  EXPECT_NE(serial.snapshot.find("dir.probe_len"), std::string::npos);
  EXPECT_EQ(serial.snapshot.find("host."), std::string::npos);

  expect_identical_traces(serial.trace, batched.trace);
}

// Re-running the same configuration must reproduce the same snapshot and
// trace byte-for-byte — the property that lets CI compare runs at all.
TEST_P(ObsDeterminismTest, RepeatRunsAreBitIdentical) {
  const Protocol protocol = GetParam();
  const std::string dir = ::testing::TempDir();
  const ObsRun one =
      run_with_obs("LU", protocol, /*batch=*/2, dir + "obs_det_r1.trace");
  const ObsRun two =
      run_with_obs("LU", protocol, /*batch=*/2, dir + "obs_det_r2.trace");
  EXPECT_EQ(one.snapshot, two.snapshot);
  expect_identical_traces(one.trace, two.trace);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ObsDeterminismTest,
                         ::testing::Values(Protocol::kMsi, Protocol::kMesi,
                                           Protocol::kMoesi),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kMsi: return "msi";
                             case Protocol::kMesi: return "mesi";
                             case Protocol::kMoesi: return "moesi";
                           }
                           return "unknown";
                         });

// Simulated results must not move when observability is switched on: the
// layer observes the machine, it never feeds back into it.
TEST(ObsDeterminismTest2, EnablingObservabilityDoesNotPerturbSimulation) {
  const auto run_sum = [](const ObsConfig& obs) {
    sim::RunSummary run = bench::run_workload(
        apps::app_by_name("LU"), apps::Scale::kTest, /*nodes=*/4,
        /*verbose=*/false, /*seed=*/0x0b5u, Protocol::kMesi, /*batch=*/1,
        obs);
    std::uint64_t instrs = 0, cycles = 0;
    for (unsigned p = 0; p < 4; ++p) {
      instrs += run.instructions[p];
      cycles += run.final_cycles[p];
    }
    return std::make_pair(instrs, cycles);
  };

  ObsConfig off;
  ObsConfig on;
  on.stats = true;
  on.trace = true;
  on.trace_path = ::testing::TempDir() + "obs_det_perturb.trace";
  const auto plain = run_sum(off);
  const auto observed = run_sum(on);
  std::remove(on.trace_path.c_str());
  EXPECT_EQ(plain, observed);
}

}  // namespace
}  // namespace dsm
