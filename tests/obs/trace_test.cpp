// trace_test.cpp — the per-node event ring's contracts: fixed capacity
// with oldest-first reads, overflow overwrites the oldest event and
// counts it in `dropped` (never grows, never throws away the count), and
// the binary dump format round-trips exactly while rejecting files that
// are not (complete) traces.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace dsm::obs {
namespace {

TraceEvent make_event(std::uint8_t node, std::uint64_t ts) {
  TraceEvent ev;
  ev.ts = ts;
  ev.addr = 0x1000 + ts * 64;
  ev.arg = ts * 3;
  ev.kind = TraceEvent::kMissStart;
  ev.node = node;
  ev.flags = static_cast<std::uint8_t>(ts & 1);
  ev.aux = static_cast<std::uint32_t>(ts % 7);
  return ev;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(TraceTest, DisabledBufferIsInertAndAllocationlessToUse) {
  TraceBuffer tb;
  EXPECT_FALSE(tb.enabled());
  EXPECT_EQ(tb.num_nodes(), 0u);
  tb.record(make_event(0, 1));  // must be a no-op, not a crash
}

TEST(TraceTest, EventsComeBackOldestFirst) {
  TraceBuffer tb(/*num_nodes=*/2, /*capacity_per_node=*/8);
  EXPECT_TRUE(tb.enabled());
  for (std::uint64_t t = 0; t < 5; ++t) tb.record(make_event(0, t));
  tb.record(make_event(1, 99));

  EXPECT_EQ(tb.recorded(0), 5u);
  EXPECT_EQ(tb.dropped(0), 0u);
  const auto evs = tb.events(0);
  ASSERT_EQ(evs.size(), 5u);
  for (std::uint64_t t = 0; t < 5; ++t) EXPECT_EQ(evs[t].ts, t);

  ASSERT_EQ(tb.events(1).size(), 1u);
  EXPECT_EQ(tb.events(1)[0].ts, 99u);
}

TEST(TraceTest, OverflowDropsOldestAndCounts) {
  constexpr std::uint32_t kCap = 4;
  TraceBuffer tb(/*num_nodes=*/1, kCap);
  for (std::uint64_t t = 0; t < 10; ++t) tb.record(make_event(0, t));

  EXPECT_EQ(tb.recorded(0), kCap);
  EXPECT_EQ(tb.dropped(0), 10u - kCap);
  // Survivors are the newest kCap events, still oldest-first.
  const auto evs = tb.events(0);
  ASSERT_EQ(evs.size(), kCap);
  for (std::uint32_t i = 0; i < kCap; ++i) EXPECT_EQ(evs[i].ts, 6u + i);
}

TEST(TraceTest, DumpRoundTripsExactly) {
  TraceBuffer tb(/*num_nodes=*/3, /*capacity_per_node=*/4);
  for (std::uint64_t t = 0; t < 9; ++t) tb.record(make_event(0, t));  // wraps
  for (std::uint64_t t = 0; t < 3; ++t) tb.record(make_event(2, t));
  // Node 1 intentionally empty.

  const std::string path = temp_path("trace_roundtrip.bin");
  std::string err;
  ASSERT_TRUE(tb.dump(path, &err)) << err;

  TraceFileData data;
  ASSERT_TRUE(read_trace_file(path, &data, &err)) << err;
  EXPECT_EQ(data.capacity_per_node, 4u);
  ASSERT_EQ(data.nodes.size(), 3u);
  EXPECT_EQ(data.nodes[0].dropped, 5u);
  EXPECT_EQ(data.nodes[1].events.size(), 0u);
  EXPECT_EQ(data.nodes[2].dropped, 0u);

  for (unsigned n : {0u, 1u, 2u}) {
    const auto live = tb.events(n);
    const auto& file = data.nodes[n].events;
    ASSERT_EQ(file.size(), live.size()) << "node " << n;
    for (std::size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(std::memcmp(&file[i], &live[i], sizeof(TraceEvent)), 0)
          << "node " << n << " event " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(TraceTest, ReaderRejectsBadMagic) {
  const std::string path = temp_path("trace_bad_magic.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTATRACEFILE___________________";
  }
  TraceFileData data;
  std::string err;
  EXPECT_FALSE(read_trace_file(path, &data, &err));
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());
}

TEST(TraceTest, ReaderRejectsTruncatedBody) {
  TraceBuffer tb(/*num_nodes=*/2, /*capacity_per_node=*/8);
  for (std::uint64_t t = 0; t < 6; ++t) tb.record(make_event(1, t));

  const std::string path = temp_path("trace_truncated.bin");
  std::string err;
  ASSERT_TRUE(tb.dump(path, &err)) << err;

  // Chop the tail off the last node's event payload.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);
  bytes.resize(bytes.size() - 16);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  TraceFileData data;
  EXPECT_FALSE(read_trace_file(path, &data, &err));
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());
}

TEST(TraceTest, ReaderRejectsMissingFile) {
  TraceFileData data;
  std::string err;
  EXPECT_FALSE(
      read_trace_file(temp_path("no_such_trace.bin"), &data, &err));
  EXPECT_FALSE(err.empty());
}

TEST(TraceTest, KindNamesCoverEveryKind) {
  for (std::uint16_t k = TraceEvent::kMissStart;
       k <= TraceEvent::kPhaseBoundary; ++k) {
    EXPECT_STRNE(trace_kind_name(k), "?") << "kind " << k;
  }
  EXPECT_STREQ(trace_kind_name(0), "?");
  EXPECT_STREQ(trace_kind_name(999), "?");
}

}  // namespace
}  // namespace dsm::obs
