// metrics_test.cpp — the deterministic metrics registry's contracts:
// registration order defines snapshot order, re-registration by name
// dedups to the same slot, null handles are no-ops, "host." metrics stay
// out of the deterministic snapshot, and the JSON rendering is byte-
// stable (the property the NDJSON determinism comparisons rest on).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "obs/observability.hpp"

namespace dsm::obs {
namespace {

TEST(MetricsTest, CounterRegistrationAndIncrement) {
  MetricsRegistry reg;
  CounterHandle a = reg.counter("coh.fill.no_victim");
  CounterHandle b = reg.counter("coh.fill.with_victim");
  EXPECT_TRUE(static_cast<bool>(a));
  EXPECT_EQ(reg.num_counters(), 2u);

  a.inc();
  a.inc();
  b.add(5);
  EXPECT_EQ(reg.value("coh.fill.no_victim"), 2u);
  EXPECT_EQ(reg.value("coh.fill.with_victim"), 5u);
  EXPECT_EQ(reg.value("never.registered"), 0u);
}

TEST(MetricsTest, ReRegistrationDedupsToTheSameSlot) {
  MetricsRegistry reg;
  CounterHandle a = reg.counter("net.link0.msgs");
  CounterHandle b = reg.counter("net.link0.msgs");
  a.inc();
  b.inc();
  EXPECT_EQ(reg.num_counters(), 1u);
  EXPECT_EQ(reg.value("net.link0.msgs"), 2u);
}

TEST(MetricsTest, NullHandlesAreNoOps) {
  CounterHandle c;
  HistogramHandle h;
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(h));
  // Must not crash; must not touch anything.
  c.inc();
  c.add(100);
  h.record(3);
}

TEST(MetricsTest, HistogramClampsIntoLastBucket) {
  MetricsRegistry reg;
  HistogramHandle h = reg.histogram("dir.probe_len", 4);
  h.record(0);
  h.record(1);
  h.record(3);    // last bucket exactly
  h.record(100);  // clamps into last bucket
  const std::vector<std::uint64_t> want{1, 1, 0, 2};
  EXPECT_EQ(reg.histogram_values("dir.probe_len"), want);
  EXPECT_TRUE(reg.histogram_values("no.such.hist").empty());
}

TEST(MetricsTest, HostMetricsAreExcludedFromTheDeterministicSnapshot) {
  EXPECT_TRUE(is_host_metric("host.batch.groups"));
  EXPECT_FALSE(is_host_metric("coh.fill.no_victim"));
  EXPECT_FALSE(is_host_metric("net.host.msgs"));  // prefix, not substring

  MetricsRegistry reg;
  CounterHandle sim = reg.counter("coh.evict.clean");
  CounterHandle host = reg.counter("host.batch.groups");
  sim.inc();
  host.add(7);

  const std::string snap = reg.snapshot_json();
  EXPECT_NE(snap.find("coh.evict.clean"), std::string::npos);
  EXPECT_EQ(snap.find("host.batch.groups"), std::string::npos);

  const std::string host_json = reg.host_json();
  EXPECT_EQ(host_json.find("coh.evict.clean"), std::string::npos);
  EXPECT_NE(host_json.find("host.batch.groups"), std::string::npos);
  // The host view still reads the live slot.
  EXPECT_EQ(reg.value("host.batch.groups"), 7u);
}

// The snapshot is a byte-level artifact (it is spliced into NDJSON
// records that get byte-compared across run modes), so its exact
// rendering is part of the contract, not an implementation detail.
TEST(MetricsTest, SnapshotJsonIsByteStable) {
  const auto build = [] {
    MetricsRegistry reg;
    CounterHandle a = reg.counter("coh.trans.uncached_read");
    CounterHandle b = reg.counter("coh.trans.shared_write");
    HistogramHandle h = reg.histogram("dir.probe_len", 3);
    a.add(3);
    b.inc();
    h.record(0);
    h.record(9);
    return reg.snapshot_json();
  };
  const std::string one = build();
  const std::string two = build();
  EXPECT_EQ(one, two);
  EXPECT_EQ(one,
            "{\"counters\":{\"coh.trans.uncached_read\":3,"
            "\"coh.trans.shared_write\":1},"
            "\"histograms\":{\"dir.probe_len\":[1,0,1]}}");
}

TEST(MetricsTest, ObservabilityOffHandsOutNullHandlesOnly) {
  ObsConfig cfg;  // stats and trace both default off
  Observability obs(cfg, /*num_nodes=*/4);
  EXPECT_FALSE(obs.stats_enabled());
  EXPECT_FALSE(obs.trace_enabled());
  EXPECT_FALSE(static_cast<bool>(obs.counter("coh.fill.no_victim")));
  EXPECT_FALSE(static_cast<bool>(obs.histogram("dir.probe_len", 16)));
  EXPECT_EQ(obs.trace(), nullptr);
  EXPECT_EQ(obs.snapshot_json(), "");
}

TEST(MetricsTest, ObservabilityOnHandsOutLiveHandles) {
  ObsConfig cfg;
  cfg.stats = true;
  Observability obs(cfg, /*num_nodes=*/4);
  CounterHandle c = obs.counter("coh.evict.writeback");
  ASSERT_TRUE(static_cast<bool>(c));
  c.inc();
  EXPECT_EQ(obs.metrics().value("coh.evict.writeback"), 1u);
  EXPECT_NE(obs.snapshot_json().find("coh.evict.writeback"),
            std::string::npos);
}

}  // namespace
}  // namespace dsm::obs
