// interval_snapshot_test.cpp — the interval-scoped snapshot mechanism
// (obs/metrics.hpp enable_intervals/end_interval) at two levels: the bare
// registry ring (delta capture, re-baselining, overwrite-oldest wrap,
// tail), and the Machine-level contract that the phase-attributed
// timeline rides the same determinism guarantee as the end-of-run
// snapshot — byte-identical across the batch axis for every protocol,
// and exactly reconcilable against the snapshot when nothing dropped.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "common/config.hpp"
#include "obs/metrics.hpp"
#include "report/json_value.hpp"

namespace dsm {
namespace {

obs::IntervalMeta meta_at(std::uint64_t cycle, std::uint64_t seq,
                          std::int32_t phase) {
  obs::IntervalMeta m;
  m.end_cycle = cycle;
  m.seq = seq;
  m.node = 0;
  m.phase = phase;
  return m;
}

TEST(IntervalRingTest, CapturesDeltasAndRebaselines) {
  obs::MetricsRegistry reg;
  obs::CounterHandle a = reg.counter("coh.a");
  obs::CounterHandle b = reg.counter("coh.b");
  reg.counter("host.noise");  // host metrics are never tracked

  a.add(5);
  reg.enable_intervals(8);
  ASSERT_TRUE(reg.intervals_enabled());
  ASSERT_EQ(reg.interval_slot_names(),
            (std::vector<std::string>{"coh.a", "coh.b"}));

  // enable_intervals() baselines at the current values: the pre-enable
  // increment must not leak into the first captured interval.
  a.add(3);
  b.inc();
  reg.end_interval(meta_at(100, 0, 2));
  a.add(10);
  reg.end_interval(meta_at(200, 1, -1));
  b.add(7);  // open tail

  EXPECT_EQ(reg.intervals_captured(), 2u);
  EXPECT_EQ(reg.intervals_dropped(), 0u);
  const std::vector<obs::CapturedInterval> rows = reg.captured_intervals();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].meta.end_cycle, 100u);
  EXPECT_EQ(rows[0].meta.phase, 2);
  EXPECT_EQ(rows[0].deltas, (std::vector<std::uint64_t>{3, 1}));
  EXPECT_EQ(rows[1].meta.phase, -1);
  EXPECT_EQ(rows[1].deltas, (std::vector<std::uint64_t>{10, 0}));
  EXPECT_EQ(reg.interval_tail(), (std::vector<std::uint64_t>{0, 7}));
}

TEST(IntervalRingTest, FullRingOverwritesOldestAndCountsDropped) {
  obs::MetricsRegistry reg;
  obs::CounterHandle a = reg.counter("coh.a");
  reg.enable_intervals(2);

  for (std::uint64_t i = 1; i <= 5; ++i) {
    a.add(i);
    reg.end_interval(meta_at(i * 10, i - 1, static_cast<std::int32_t>(i)));
  }

  EXPECT_EQ(reg.intervals_captured(), 5u);
  EXPECT_EQ(reg.intervals_dropped(), 3u);
  EXPECT_EQ(reg.interval_capacity(), 2u);
  // Survivors are the two newest rows, oldest first.
  const std::vector<obs::CapturedInterval> rows = reg.captured_intervals();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].meta.end_cycle, 40u);
  EXPECT_EQ(rows[0].deltas, (std::vector<std::uint64_t>{4}));
  EXPECT_EQ(rows[1].meta.end_cycle, 50u);
  EXPECT_EQ(rows[1].deltas, (std::vector<std::uint64_t>{5}));
}

TEST(IntervalRingTest, JsonEmptyBeforeEnableAndWellFormedAfter) {
  obs::MetricsRegistry reg;
  obs::CounterHandle a = reg.counter("net.x");
  EXPECT_EQ(reg.intervals_json(), "");

  reg.enable_intervals(4);
  a.add(2);
  reg.end_interval(meta_at(7, 0, 0));
  a.add(9);  // tail

  report::JsonValue v;
  std::string err;
  ASSERT_TRUE(report::parse_json(reg.intervals_json(), &v, &err)) << err;
  EXPECT_EQ(v.at("capacity").unsigned_int(), 4u);
  EXPECT_EQ(v.at("captured").unsigned_int(), 1u);
  EXPECT_EQ(v.at("dropped").unsigned_int(), 0u);
  ASSERT_EQ(v.at("slots").items().size(), 1u);
  EXPECT_EQ(v.at("slots").item(0).string(), "net.x");
  // Row layout: [node, seq, phase, end_cycle, d0, ...].
  ASSERT_EQ(v.at("intervals").items().size(), 1u);
  const report::JsonValue& row = v.at("intervals").item(0);
  ASSERT_EQ(row.items().size(), 5u);
  EXPECT_EQ(row.item(3).unsigned_int(), 7u);
  EXPECT_EQ(row.item(4).unsigned_int(), 2u);
  ASSERT_EQ(v.at("tail").items().size(), 1u);
  EXPECT_EQ(v.at("tail").item(0).unsigned_int(), 9u);
}

// ---- Machine-level contract ----

sim::RunSummary run_with_intervals(Protocol protocol, unsigned batch) {
  ObsConfig obs;
  obs.intervals = true;  // implies stats: the record carries both fields
  return bench::run_workload(apps::app_by_name("LU"), apps::Scale::kTest,
                             /*nodes=*/4, /*verbose=*/false, /*seed=*/0x0b5u,
                             protocol, batch, obs);
}

class IntervalDeterminismTest : public ::testing::TestWithParam<Protocol> {};

// Batching regroups host-side work but must not move a simulated event,
// and the interval boundaries themselves are simulated events — the
// whole timeline is bit-identical between --batch=1 and --batch=4.
TEST_P(IntervalDeterminismTest, TimelineIdenticalAcrossBatchSizes) {
  const sim::RunSummary serial = run_with_intervals(GetParam(), 1);
  const sim::RunSummary batched = run_with_intervals(GetParam(), 4);
  ASSERT_FALSE(serial.obs_intervals_json.empty());
  EXPECT_EQ(serial.obs_intervals_json, batched.obs_intervals_json);
  EXPECT_EQ(serial.obs_json, batched.obs_json);
}

// Summed ring rows plus the open tail must equal the end-of-run snapshot
// exactly for every tracked counter when nothing dropped — the property
// `dsm_report timeline` re-checks offline on every record.
TEST_P(IntervalDeterminismTest, RowsPlusTailReconcileWithSnapshot) {
  const sim::RunSummary run = run_with_intervals(GetParam(), 1);

  report::JsonValue iv, snap;
  std::string err;
  ASSERT_TRUE(report::parse_json(run.obs_intervals_json, &iv, &err)) << err;
  ASSERT_TRUE(report::parse_json(run.obs_json, &snap, &err)) << err;
  ASSERT_EQ(iv.at("dropped").unsigned_int(), 0u)
      << "test workload overflows the default ring; widen interval_capacity";

  const auto& slots = iv.at("slots").items();
  ASSERT_FALSE(slots.empty());
  std::vector<std::uint64_t> sums(slots.size(), 0);
  for (const report::JsonValue& row : iv.at("intervals").items()) {
    ASSERT_EQ(row.items().size(), 4 + slots.size());
    for (std::size_t s = 0; s < slots.size(); ++s)
      sums[s] += row.item(4 + s).unsigned_int();
  }
  const auto& tail = iv.at("tail").items();
  ASSERT_EQ(tail.size(), slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s)
    sums[s] += tail[s].unsigned_int();

  const report::JsonValue& counters = snap.at("counters");
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const report::JsonValue* c = counters.find(slots[s].string());
    ASSERT_NE(c, nullptr) << slots[s].string();
    EXPECT_EQ(sums[s], c->unsigned_int()) << slots[s].string();
  }
}

// The online detector attributes intervals to phases: a multi-phase app
// must yield more than one distinct phase id in the timeline.
TEST_P(IntervalDeterminismTest, TimelineCarriesDetectedPhases) {
  const sim::RunSummary run = run_with_intervals(GetParam(), 1);
  report::JsonValue iv;
  std::string err;
  ASSERT_TRUE(report::parse_json(run.obs_intervals_json, &iv, &err)) << err;

  std::map<std::int64_t, unsigned> phases;
  for (const report::JsonValue& row : iv.at("intervals").items()) {
    const std::string& raw = row.item(2).raw_number();
    ++phases[std::stoll(raw)];
  }
  EXPECT_GT(phases.size(), 1u);
  for (const auto& [phase, n] : phases) EXPECT_GE(phase, 0) << "unclassified";
}

INSTANTIATE_TEST_SUITE_P(Protocols, IntervalDeterminismTest,
                         ::testing::Values(Protocol::kMsi, Protocol::kMesi,
                                           Protocol::kMoesi),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kMsi: return "msi";
                             case Protocol::kMesi: return "mesi";
                             case Protocol::kMoesi: return "moesi";
                           }
                           return "unknown";
                         });

// Interval capture must not move simulated results: same guarantee the
// rest of the observability layer makes, re-checked for the new hook.
TEST(IntervalPerturbationTest, EnablingIntervalsDoesNotPerturbSimulation) {
  const auto totals = [](bool intervals) {
    ObsConfig obs;
    obs.intervals = intervals;
    sim::RunSummary run = bench::run_workload(
        apps::app_by_name("FMM"), apps::Scale::kTest, /*nodes=*/4,
        /*verbose=*/false, /*seed=*/0x0b5u, Protocol::kMesi, /*batch=*/1,
        obs);
    std::uint64_t instrs = 0, cycles = 0;
    for (unsigned p = 0; p < 4; ++p) {
      instrs += run.instructions[p];
      cycles += run.final_cycles[p];
    }
    return std::make_pair(instrs, cycles);
  };
  EXPECT_EQ(totals(false), totals(true));
}

}  // namespace
}  // namespace dsm
