// resume_test.cpp — the store scanner a restarted fleet trusts: complete
// records recovered verbatim, truncated final lines recoverable with a
// distinct diagnostic, mid-file corruption a hard error, duplicates
// first-wins, and gap computation for the lease table.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "shard/resume.hpp"
#include "shard/stream_sink.hpp"

namespace dsm::shard {
namespace {

std::string record_line(std::size_t index) {
  StreamRecord r;
  r.spec_index = index;
  r.key = "LU/8p";
  r.seed = 0xabcdef;
  r.metrics = "{}";
  return format_record("fig2_bbv_baseline", r);
}

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "resume_test_store.ndjson";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_store(const std::string& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }

  std::string path_;
};

TEST_F(ResumeTest, MissingFileIsAnEmptyFreshRun) {
  const StoreScan scan = scan_store(path_);
  EXPECT_TRUE(scan.ok);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_EQ(store_gaps(scan, 3),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST_F(ResumeTest, RecoversCompleteRecordsVerbatim) {
  const std::string l0 = record_line(0);
  const std::string l2 = record_line(2);
  write_store(l0 + "\n" + l2 + "\n");
  const StoreScan scan = scan_store(path_);
  ASSERT_TRUE(scan.ok) << scan.error;
  EXPECT_EQ(scan.bench, "fig2_bbv_baseline");
  ASSERT_EQ(scan.records.size(), 2u);
  // Verbatim bytes: the resumed fleet re-emits these lines unchanged,
  // which is what keeps a resumed store byte-identical to a fresh run.
  EXPECT_EQ(scan.records.at(0), l0);
  EXPECT_EQ(scan.records.at(2), l2);
  EXPECT_EQ(store_gaps(scan, 4), (std::vector<std::size_t>{1, 3}));
}

TEST_F(ResumeTest, TruncatedFinalLineIsRecoverableNotCorruption) {
  const std::string whole = record_line(0);
  const std::string half = record_line(1).substr(0, 20);
  write_store(whole + "\n" + half);  // no terminator: crash mid-write
  const StoreScan scan = scan_store(path_);
  ASSERT_TRUE(scan.ok) << scan.error;
  EXPECT_TRUE(scan.truncated_tail);
  EXPECT_EQ(scan.tail, half);
  ASSERT_EQ(scan.records.size(), 1u);
  // The half-written index is simply a gap to re-run.
  EXPECT_EQ(store_gaps(scan, 2), (std::vector<std::size_t>{1}));
}

TEST_F(ResumeTest, TerminatedGarbageFinalLineIsStillRecoverable) {
  // A '\n' made it out but the line is unparsable — same crash window
  // (buffered writes flush in chunks), same recoverable verdict.
  write_store(record_line(0) + "\n{\"v\":2,\"bench\":\"fi\n");
  const StoreScan scan = scan_store(path_);
  ASSERT_TRUE(scan.ok) << scan.error;
  EXPECT_TRUE(scan.truncated_tail);
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST_F(ResumeTest, MidFileCorruptionIsAHardError) {
  write_store("not json at all\n" + record_line(0) + "\n");
  const StoreScan scan = scan_store(path_);
  EXPECT_FALSE(scan.ok);
  EXPECT_NE(scan.error.find("line 1"), std::string::npos) << scan.error;
}

TEST_F(ResumeTest, MixedBenchesAreAHardError) {
  StreamRecord r;
  r.spec_index = 1;
  r.metrics = "{}";
  write_store(record_line(0) + "\n" + format_record("other_bench", r) + "\n");
  const StoreScan scan = scan_store(path_);
  EXPECT_FALSE(scan.ok);
  EXPECT_NE(scan.error.find("bench"), std::string::npos) << scan.error;
}

TEST_F(ResumeTest, DuplicateIndicesKeepTheFirstOccurrence) {
  StreamRecord r;
  r.spec_index = 0;
  r.key = "first";
  r.metrics = "{}";
  const std::string first = format_record("fig2_bbv_baseline", r);
  r.key = "second";
  const std::string second = format_record("fig2_bbv_baseline", r);
  write_store(first + "\n" + second + "\n");
  const StoreScan scan = scan_store(path_);
  ASSERT_TRUE(scan.ok) << scan.error;
  EXPECT_EQ(scan.duplicates, 1u);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records.at(0), first);  // first-complete-wins
}

TEST_F(ResumeTest, GapsIgnoreIndicesBeyondTotal) {
  write_store(record_line(0) + "\n" + record_line(7) + "\n");
  const StoreScan scan = scan_store(path_);
  ASSERT_TRUE(scan.ok) << scan.error;
  // The caller (coordinator) treats an out-of-range index as a hard
  // error before this point; store_gaps itself just scans [0, total).
  EXPECT_EQ(store_gaps(scan, 3), (std::vector<std::size_t>{1, 2}));
}

TEST_F(ResumeTest, EmptyFileIsAnEmptyScan) {
  write_store("");
  const StoreScan scan = scan_store(path_);
  EXPECT_TRUE(scan.ok);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.truncated_tail);
}

}  // namespace
}  // namespace dsm::shard
