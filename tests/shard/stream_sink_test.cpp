// stream_sink_test.cpp — the NDJSON wire format: records format
// deterministically, parse back losslessly, and the sink enforces spec
// order while flushing one self-describing line per record.
#include "shard/stream_sink.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace dsm::shard {
namespace {

TEST(JsonObjectTest, PreservesInsertionOrderAndEscapes) {
  const std::string s = JsonObject()
                            .add("name", std::string("a\"b\\c"))
                            .add("pi", 0.5)
                            .add("n", std::uint64_t{42})
                            .add_raw("nested", "{\"x\":1}")
                            .str();
  EXPECT_EQ(s, "{\"name\":\"a\\\"b\\\\c\",\"pi\":0.5,\"n\":42,"
               "\"nested\":{\"x\":1}}");
}

TEST(JsonObjectTest, DoublesAreShortestRoundTrip) {
  // No %.17g noise: 0.2 serializes as "0.2", and a value with no short
  // form keeps every significant digit.
  EXPECT_EQ(JsonObject().add("x", 0.2).str(), "{\"x\":0.2}");
  const std::string s = JsonObject().add("x", 1.0 / 3.0).str();
  EXPECT_EQ(s, "{\"x\":0.3333333333333333}");
}

TEST(StreamRecordTest, FormatParsesBackLosslessly) {
  StreamRecord r;
  r.spec_index = 17;
  r.key = "LU/8p";
  r.seed = 0x7282ca7fbd6f6445ull;
  r.metrics = JsonObject().add("cov", 0.25).add("n", std::uint64_t{3}).str();

  const std::string line = format_record("fig2_bbv_baseline", r);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const auto parsed = parse_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->bench, "fig2_bbv_baseline");
  EXPECT_EQ(parsed->record.spec_index, 17u);
  EXPECT_EQ(parsed->record.key, "LU/8p");
  EXPECT_EQ(parsed->record.seed, 0x7282ca7fbd6f6445ull);
  EXPECT_EQ(parsed->record.metrics, r.metrics);
}

TEST(StreamRecordTest, SchemaIsPinned) {
  // The self-describing layout is a contract with external consumers
  // (CI artifacts, downstream aggregation): byte-for-byte golden.
  StreamRecord r;
  r.spec_index = 0;
  r.key = "run";
  r.seed = 0x1;
  r.metrics = "{}";
  EXPECT_EQ(format_record("t", r),
            "{\"v\":2,\"bench\":\"t\",\"spec_index\":0,\"key\":\"run\","
            "\"seed\":\"0x0000000000000001\",\"metrics\":{}}");
}

TEST(StreamRecordTest, ParseRejectsCorruptLines) {
  StreamRecord r;
  r.key = "k";
  const std::string good = format_record("b", r);
  EXPECT_TRUE(parse_record(good).has_value());
  EXPECT_FALSE(parse_record("").has_value());
  EXPECT_FALSE(parse_record("not json").has_value());
  EXPECT_FALSE(parse_record(good + "x").has_value());  // trailing junk
  EXPECT_FALSE(parse_record(good.substr(0, good.size() - 2)).has_value());
  EXPECT_FALSE(parse_record("{\"v\":1" + good.substr(6)).has_value());
}

TEST(StreamSinkTest, WritesSpecOrderedFlushedLines) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  {
    StreamSink sink(f, "bench_x");
    StreamRecord r;
    r.key = "a";
    r.spec_index = 0;
    sink.emit(r);
    r.key = "b";
    r.spec_index = 2;  // gaps are fine: this shard owns 0,2,...
    sink.emit(r);
    EXPECT_EQ(sink.emitted(), 2u);
  }
  std::rewind(f);
  char buf[512];
  std::string text;
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  const auto nl = text.find('\n');
  const auto first = parse_record(text.substr(0, nl));
  const auto second =
      parse_record(text.substr(nl + 1, text.size() - nl - 2));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->record.spec_index, 0u);
  EXPECT_EQ(second->record.spec_index, 2u);
  EXPECT_EQ(second->record.key, "b");
}

TEST(StreamSinkDeathTest, AbortsOnOutOfOrderEmission) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        StreamSink sink(stdout, "b");
        StreamRecord r;
        r.spec_index = 2;
        sink.emit(r);
        r.spec_index = 1;
        sink.emit(r);
      },
      "increasing spec order");
}

}  // namespace
}  // namespace dsm::shard
