// fleet_msg_test.cpp — the fleet control protocol's wire format:
// format/parse round trips for every message type, first-key
// discrimination against the heartbeat and record streams, fault-spec
// parsing, strictness against mangled lines, and the lease-ledger
// events.
#include <gtest/gtest.h>

#include "shard/fleet_msg.hpp"

namespace dsm::shard {
namespace {

TEST(FaultKindTest, NamesRoundTrip) {
  for (const FaultKind k :
       {FaultKind::kWorkerExit, FaultKind::kWorkerHang,
        FaultKind::kTruncatedRecord, FaultKind::kDroppedHeartbeat}) {
    const auto back = fault_from_name(fault_name(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(fault_from_name("segfault").has_value());
  EXPECT_FALSE(fault_from_name("").has_value());
}

TEST(FaultSpecTest, ParsesKindAtIndex) {
  FaultKind kind = FaultKind::kNone;
  std::size_t spec = 0;
  ASSERT_TRUE(parse_fault_spec("worker-exit@3", &kind, &spec));
  EXPECT_EQ(kind, FaultKind::kWorkerExit);
  EXPECT_EQ(spec, 3u);
  ASSERT_TRUE(parse_fault_spec("dropped-heartbeat@0", &kind, &spec));
  EXPECT_EQ(kind, FaultKind::kDroppedHeartbeat);
  EXPECT_EQ(spec, 0u);

  EXPECT_FALSE(parse_fault_spec("worker-exit", &kind, &spec));
  EXPECT_FALSE(parse_fault_spec("worker-exit@", &kind, &spec));
  EXPECT_FALSE(parse_fault_spec("worker-exit@x", &kind, &spec));
  EXPECT_FALSE(parse_fault_spec("@3", &kind, &spec));
  EXPECT_FALSE(parse_fault_spec("rm-rf@3", &kind, &spec));
}

TEST(FleetMsgTest, HelloRoundTrips) {
  const std::string line = format_hello("fig2_bbv_baseline", 48);
  ASSERT_TRUE(is_fleet_msg(line));
  const auto msg = parse_fleet_msg(line);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, FleetMsg::Type::kHello);
  EXPECT_EQ(msg->bench, "fig2_bbv_baseline");
  EXPECT_EQ(msg->total, 48u);
}

TEST(FleetMsgTest, PullWelcomeFinRoundTrip) {
  const auto pull = parse_fleet_msg(format_pull());
  ASSERT_TRUE(pull.has_value());
  EXPECT_EQ(pull->type, FleetMsg::Type::kPull);

  const auto welcome = parse_fleet_msg(format_welcome(7, 250));
  ASSERT_TRUE(welcome.has_value());
  EXPECT_EQ(welcome->type, FleetMsg::Type::kWelcome);
  EXPECT_EQ(welcome->worker, 7u);
  EXPECT_EQ(welcome->hb_ms, 250u);

  const auto fin = parse_fleet_msg(format_fin());
  ASSERT_TRUE(fin.has_value());
  EXPECT_EQ(fin->type, FleetMsg::Type::kFin);
}

TEST(FleetMsgTest, LeaseRoundTripsWithAndWithoutFault) {
  const auto plain = parse_fleet_msg(format_lease(4, 8));
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->type, FleetMsg::Type::kLease);
  EXPECT_EQ(plain->lo, 4u);
  EXPECT_EQ(plain->hi, 8u);
  EXPECT_EQ(plain->fault, FaultKind::kNone);

  const auto armed = parse_fleet_msg(
      format_lease(0, 6, FaultKind::kTruncatedRecord, 5));
  ASSERT_TRUE(armed.has_value());
  EXPECT_EQ(armed->fault, FaultKind::kTruncatedRecord);
  EXPECT_EQ(armed->fault_spec, 5u);
}

TEST(FleetMsgTest, DiscriminatesAgainstOtherStreams) {
  // The wire carries three line kinds; only "fleet" lines are control.
  EXPECT_TRUE(is_fleet_msg("{\"fleet\":\"pull\"}"));
  EXPECT_FALSE(is_fleet_msg("{\"hb\":1,\"bench\":\"x\"}"));
  EXPECT_FALSE(is_fleet_msg("{\"v\":2,\"bench\":\"x\"}"));
  EXPECT_FALSE(is_fleet_msg(""));
}

TEST(FleetMsgTest, RejectsMangledLines) {
  EXPECT_FALSE(parse_fleet_msg("{\"fleet\":\"nonsense\"}").has_value());
  EXPECT_FALSE(parse_fleet_msg("{\"fleet\":\"lease\",\"lo\":1}").has_value());
  EXPECT_FALSE(parse_fleet_msg("{\"fleet\":\"pull\"").has_value());
  EXPECT_FALSE(parse_fleet_msg("{\"fleet\":\"pull\"} trailing").has_value());
  EXPECT_FALSE(
      parse_fleet_msg("{\"fleet\":\"lease\",\"lo\":-1,\"hi\":2}").has_value());
}

TEST(LeaseEventTest, RoundTripsEveryField) {
  LeaseEvent ev;
  ev.worker = 3;
  ev.state = "leased";
  ev.lo = 10;
  ev.hi = 14;
  ev.retries = 2;
  ev.wall_ms = 12345;
  const std::string line = format_lease_event(ev);
  LeaseEvent back;
  ASSERT_TRUE(parse_lease_event(line, &back));
  EXPECT_EQ(back.worker, 3u);
  EXPECT_EQ(back.state, "leased");
  EXPECT_EQ(back.lo, 10u);
  EXPECT_EQ(back.hi, 14u);
  EXPECT_EQ(back.retries, 2u);
  EXPECT_EQ(back.wall_ms, 12345u);
}

TEST(LeaseEventTest, RejectsNonLedgerLines) {
  LeaseEvent ev;
  EXPECT_FALSE(parse_lease_event("{\"hb\":1}", &ev));
  EXPECT_FALSE(parse_lease_event("", &ev));
  EXPECT_FALSE(parse_lease_event("{\"ls\":1,\"worker\":0}", &ev));
}

}  // namespace
}  // namespace dsm::shard
