// shard_plan_test.cpp — determinism contracts of the shard partition:
// "--shard=i/N" parses strictly, every spec index lands in exactly one
// shard, and a configuration carries the identical content (and therefore
// the identical content-hashed RNG seed) whether it is selected into
// shard i/N or runs in the unsharded sweep.
#include "shard/shard_plan.hpp"

#include <gtest/gtest.h>

#include "driver/sweep_spec.hpp"

namespace dsm::shard {
namespace {

TEST(ParseShardTest, AcceptsWellFormedPlans) {
  const auto p = parse_shard("0/1");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->index, 0u);
  EXPECT_EQ(p->count, 1u);

  const auto q = parse_shard("3/8");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->index, 3u);
  EXPECT_EQ(q->count, 8u);
  EXPECT_EQ(q->label(), "3/8");
}

TEST(ParseShardTest, RejectsMalformedPlans) {
  EXPECT_FALSE(parse_shard("").has_value());
  EXPECT_FALSE(parse_shard("3").has_value());
  EXPECT_FALSE(parse_shard("/").has_value());
  EXPECT_FALSE(parse_shard("a/b").has_value());
  EXPECT_FALSE(parse_shard("1/").has_value());
  EXPECT_FALSE(parse_shard("/2").has_value());
  EXPECT_FALSE(parse_shard("2/2").has_value());   // index out of range
  EXPECT_FALSE(parse_shard("0/0").has_value());   // empty plan
  EXPECT_FALSE(parse_shard("-1/2").has_value());  // no signs
  EXPECT_FALSE(parse_shard("1/99999").has_value());  // past kMaxShards
}

TEST(ShardPlanTest, EveryIndexOwnedByExactlyOneShard) {
  for (const unsigned n : {1u, 2u, 3u, 7u, 16u}) {
    EXPECT_TRUE(covers_exactly_once(n, 23)) << n << " shards";
    EXPECT_TRUE(covers_exactly_once(n, 1));
    EXPECT_TRUE(covers_exactly_once(n, 0));  // empty sweep: vacuous
  }
}

TEST(ShardPlanTest, SelectKeepsGlobalIndicesAndSpecOrder) {
  driver::SweepSpec spec;
  spec.apps = {"LU", "FMM"};
  spec.node_counts = {2, 8, 32};
  const auto points = spec.expand();  // 6 points

  const ShardPlan s0{0, 2}, s1{1, 2};
  const auto a = s0.select(points);
  const auto b = s1.select(points);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(a[0].index, 0u);
  EXPECT_EQ(a[1].index, 2u);
  EXPECT_EQ(a[2].index, 4u);
  EXPECT_EQ(b[0].index, 1u);
  EXPECT_EQ(b[1].index, 3u);
  EXPECT_EQ(b[2].index, 5u);
  // Round-robin balances the node axis: both shards see a 32-node point.
  EXPECT_EQ(a[1].nodes, 32u);
  EXPECT_EQ(b[2].nodes, 32u);
}

TEST(ShardPlanTest, SeedsIdenticalShardedAndUnsharded) {
  driver::SweepSpec spec;
  spec.apps = {"LU", "FMM", "Art"};
  spec.node_counts = {2, 8};
  spec.thresholds = {0.5, 1.0};
  const auto points = spec.expand();  // 12 points

  for (const unsigned n : {2u, 3u, 5u}) {
    std::size_t covered = 0;
    for (unsigned i = 0; i < n; ++i) {
      for (const auto& pt : ShardPlan{i, n}.select(points)) {
        // The selected point is the unsharded point, verbatim: content
        // (and therefore spec_seed) does not depend on the shard plan.
        const auto& orig = points[pt.index];
        EXPECT_EQ(pt.app, orig.app);
        EXPECT_EQ(pt.nodes, orig.nodes);
        EXPECT_EQ(pt.threshold, orig.threshold);
        EXPECT_EQ(driver::spec_seed(pt), driver::spec_seed(orig));
        ++covered;
      }
    }
    EXPECT_EQ(covered, points.size()) << n << " shards";
  }
}

}  // namespace
}  // namespace dsm::shard
