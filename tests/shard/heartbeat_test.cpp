// heartbeat_test.cpp — the worker-progress side channel: format/parse
// round-trip strictness (the same discipline parse_record applies to the
// result stream) and HeartbeatEmitter's file behavior — initial record at
// construction, one appended line per completed spec, truncation of stale
// files, and silent no-op on an unopenable path (telemetry must never
// kill a worker).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "shard/heartbeat.hpp"

namespace dsm::shard {
namespace {

std::vector<std::string> lines_of(const std::string& path) {
  std::vector<std::string> lines;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return lines;
  std::string cur;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(static_cast<char>(c));
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  std::fclose(f);
  return lines;
}

TEST(HeartbeatFormatTest, RoundTripsEveryField) {
  Heartbeat hb;
  hb.bench = "fig2_bbv_baseline";
  hb.shard = "3/8";
  hb.done = 12;
  hb.total = 25;
  hb.last_spec = 99;
  hb.wall_ms = 4321;
  hb.maxrss_kb = 65536;

  const std::string line = format_heartbeat(hb);
  EXPECT_EQ(line.rfind("{\"hb\":1,", 0), 0u);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  Heartbeat back;
  ASSERT_TRUE(parse_heartbeat(line, &back));
  EXPECT_EQ(back.bench, hb.bench);
  EXPECT_EQ(back.shard, hb.shard);
  EXPECT_EQ(back.done, hb.done);
  EXPECT_EQ(back.total, hb.total);
  EXPECT_EQ(back.last_spec, hb.last_spec);
  EXPECT_EQ(back.wall_ms, hb.wall_ms);
  EXPECT_EQ(back.maxrss_kb, hb.maxrss_kb);
}

TEST(HeartbeatFormatTest, RoundTripsInitialState) {
  Heartbeat hb;
  hb.bench = "b";
  hb.shard = "0/1";
  hb.total = 4;  // done=0, last_spec=-1: the construction-time record
  const std::string line = format_heartbeat(hb);
  Heartbeat back;
  ASSERT_TRUE(parse_heartbeat(line, &back));
  EXPECT_EQ(back.done, 0u);
  EXPECT_EQ(back.last_spec, -1);
}

TEST(HeartbeatFormatTest, ParserIsStrict) {
  Heartbeat hb;
  EXPECT_FALSE(parse_heartbeat("", &hb));
  EXPECT_FALSE(parse_heartbeat("{}", &hb));
  EXPECT_FALSE(parse_heartbeat("not json", &hb));
  // A result-stream record is not a heartbeat.
  EXPECT_FALSE(parse_heartbeat(R"({"v":2,"bench":"x","spec_index":0})", &hb));
  // Right shape, wrong magic.
  EXPECT_FALSE(parse_heartbeat(
      R"({"hb":2,"bench":"b","shard":"0/1","done":0,"total":1,)"
      R"("last_spec":-1,"wall_ms":0,"maxrss_kb":0})",
      &hb));
  // Trailing garbage after a valid record.
  const std::string good = format_heartbeat(Heartbeat{"b", "0/1", 0, 1});
  EXPECT_TRUE(parse_heartbeat(good, &hb));
  EXPECT_FALSE(parse_heartbeat(good + "x", &hb));
}

TEST(HeartbeatEmitterTest, WritesInitialRecordThenOnePerProgress) {
  const std::string path = ::testing::TempDir() + "hb_emitter_test.ndjson";
  {
    HeartbeatEmitter em(path, "bench_x", "1/4", /*total=*/3);
    ASSERT_TRUE(em.ok());
    em.progress(7);
    em.progress(11);
  }
  const std::vector<std::string> lines = lines_of(path);
  ASSERT_EQ(lines.size(), 3u);

  Heartbeat hb;
  ASSERT_TRUE(parse_heartbeat(lines[0], &hb));
  EXPECT_EQ(hb.done, 0u);
  EXPECT_EQ(hb.last_spec, -1);
  EXPECT_EQ(hb.total, 3u);
  EXPECT_EQ(hb.bench, "bench_x");
  EXPECT_EQ(hb.shard, "1/4");
  ASSERT_TRUE(parse_heartbeat(lines[1], &hb));
  EXPECT_EQ(hb.done, 1u);
  EXPECT_EQ(hb.last_spec, 7);
  ASSERT_TRUE(parse_heartbeat(lines[2], &hb));
  EXPECT_EQ(hb.done, 2u);
  EXPECT_EQ(hb.last_spec, 11);
  std::remove(path.c_str());
}

TEST(HeartbeatEmitterTest, TruncatesStaleFile) {
  const std::string path = ::testing::TempDir() + "hb_stale_test.ndjson";
  {
    HeartbeatEmitter em(path, "old_run", "0/2", 100);
    for (int i = 0; i < 5; ++i) em.progress(i);
  }
  ASSERT_EQ(lines_of(path).size(), 6u);
  {
    HeartbeatEmitter em(path, "new_run", "0/2", 2);
  }
  const std::vector<std::string> lines = lines_of(path);
  ASSERT_EQ(lines.size(), 1u);
  Heartbeat hb;
  ASSERT_TRUE(parse_heartbeat(lines[0], &hb));
  EXPECT_EQ(hb.bench, "new_run");
  EXPECT_EQ(hb.done, 0u);
  std::remove(path.c_str());
}

TEST(HeartbeatEmitterTest, UnopenablePathDisablesQuietly) {
  HeartbeatEmitter em("/nonexistent-dir-xyzzy/hb.ndjson", "b", "0/1", 1);
  EXPECT_FALSE(em.ok());
  em.progress(0);  // must not crash
}

}  // namespace
}  // namespace dsm::shard
