// orchestrator_test.cpp — the k-way spec-order merge that turns N worker
// streams into the single stream a serial run would have produced, and
// the validation it performs along the way: contiguous indices (every
// configuration in exactly one shard), matching bench names, parseable
// records.
#include "shard/orchestrator.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "shard/stream_sink.hpp"

namespace dsm::shard {
namespace {

class VectorSource : public LineSource {
 public:
  explicit VectorSource(std::vector<std::string> lines)
      : lines_(std::move(lines)) {}
  bool next(std::string& line) override {
    if (pos_ >= lines_.size()) return false;
    line = lines_[pos_++];
    return true;
  }

 private:
  std::vector<std::string> lines_;
  std::size_t pos_ = 0;
};

std::string line_for(std::size_t index, const std::string& bench = "b") {
  StreamRecord r;
  r.spec_index = index;
  r.key = "k" + std::to_string(index);
  return format_record(bench, r);
}

struct MergeResult {
  bool ok = false;
  std::vector<std::string> lines;
  std::string error;
};

MergeResult merge(std::vector<std::vector<std::string>> streams) {
  std::vector<VectorSource> sources;
  sources.reserve(streams.size());
  for (auto& s : streams) sources.emplace_back(std::move(s));
  std::vector<LineSource*> ptrs;
  for (auto& s : sources) ptrs.push_back(&s);
  MergeResult out;
  out.ok = merge_streams(
      ptrs, [&](const std::string& line) { out.lines.push_back(line); },
      &out.error);
  return out;
}

TEST(MergeStreamsTest, InterleavesRoundRobinShardsInSpecOrder) {
  const auto r = merge({{line_for(0), line_for(2), line_for(4)},
                        {line_for(1), line_for(3)}});
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.lines.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(r.lines[i], line_for(i));
}

TEST(MergeStreamsTest, ForwardsLinesVerbatim) {
  // Byte-identity with the serial stream depends on the merge never
  // re-serializing; compare the whole line, not parsed fields.
  StreamRecord r;
  r.spec_index = 0;
  r.key = "LU/32p";
  r.seed = 0xdeadbeef;
  r.metrics = JsonObject().add("x", 0.1).str();
  const std::string line = format_record("fig4_bbv_ddv", r);
  const auto m = merge({{line}});
  ASSERT_TRUE(m.ok) << m.error;
  ASSERT_EQ(m.lines.size(), 1u);
  EXPECT_EQ(m.lines[0], line);
}

TEST(MergeStreamsTest, EmptyStreamsMergeToEmpty) {
  const auto r = merge({{}, {}});
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.lines.empty());
}

TEST(MergeStreamsTest, DuplicateIndexFails) {
  const auto r = merge({{line_for(0), line_for(1)}, {line_for(1)}});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("skipped or repeated"), std::string::npos);
}

TEST(MergeStreamsTest, MissingIndexFails) {
  // Shard 1 never produced index 1: the stream cannot be completed.
  const auto r = merge({{line_for(0), line_for(2)}, {}});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("where 1 was expected"), std::string::npos);
}

TEST(MergeStreamsTest, UnparsableLineFails) {
  const auto r = merge({{line_for(0), "garbage"}});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unparsable"), std::string::npos);
}

TEST(MergeStreamsTest, BenchNameMismatchFails) {
  const auto r = merge({{line_for(0, "fig2")}, {line_for(1, "fig4")}});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("different bench names"), std::string::npos);
}

TEST(SelfExeTest, ResolvesToARunnableBinary) {
  const std::string path = self_exe("fallback");
  // Under Linux /proc/self/exe resolves to this test binary.
  EXPECT_NE(path.find("orchestrator_test"), std::string::npos);
}

// Process-level paths (fork/exec/pipe/waitpid) against tiny system
// binaries: a worker that exits cleanly with an empty stream, a failing
// worker whose status must propagate, and a worker whose output is not a
// record stream.
TEST(RunShardedTest, EmptyWorkerStreamsSucceed) {
  OrchestratorOptions o;
  o.binary = "/bin/true";
  o.shards = 2;
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(run_sharded(o, out), 0);
  EXPECT_EQ(std::ftell(out), 0L);  // nothing merged
  std::fclose(out);
}

TEST(RunShardedTest, FailingWorkerExitCodePropagates) {
  OrchestratorOptions o;
  o.binary = "/bin/false";
  o.shards = 2;
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(run_sharded(o, out), 1);
  std::fclose(out);
}

TEST(RunShardedTest, MissingBinaryFails) {
  OrchestratorOptions o;
  o.binary = "/nonexistent/binary";
  o.shards = 1;
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(run_sharded(o, out), 127);  // execv failure convention
  std::fclose(out);
}

TEST(RunShardedTest, NonRecordWorkerOutputFails) {
  OrchestratorOptions o;
  o.binary = "/bin/echo";  // echoes "--shard=0/1": not a stream record
  o.shards = 1;
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  EXPECT_NE(run_sharded(o, out), 0);
  std::fclose(out);
}

}  // namespace
}  // namespace dsm::shard
