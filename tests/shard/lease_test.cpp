// lease_test.cpp — the coordinator's work ledger and failure-detection
// math, all against an injected millisecond clock: deadline boundaries,
// lease expiry and release, respawn backoff, chunk sizing, resume
// seeding, and first-complete-wins dedup. No test sleeps — a fake clock
// is the whole point of the LeaseTable design.
#include <gtest/gtest.h>

#include "shard/lease.hpp"

namespace dsm::shard {
namespace {

FleetTuning tuning_with(std::uint64_t deadline_ms, std::size_t chunk = 0) {
  FleetTuning t;
  t.heartbeat_deadline_ms = deadline_ms;
  t.lease_chunk = chunk;
  return t;
}

TEST(RespawnBackoffTest, DoublesFromBaseAndSaturatesAtMax) {
  FleetTuning t;
  t.backoff_base_ms = 250;
  t.backoff_max_ms = 8000;
  EXPECT_EQ(respawn_backoff_ms(t, 1), 250u);
  EXPECT_EQ(respawn_backoff_ms(t, 2), 500u);
  EXPECT_EQ(respawn_backoff_ms(t, 3), 1000u);
  EXPECT_EQ(respawn_backoff_ms(t, 6), 8000u);    // 250<<5 = 8000 exactly
  EXPECT_EQ(respawn_backoff_ms(t, 7), 8000u);    // saturated
  EXPECT_EQ(respawn_backoff_ms(t, 100), 8000u);  // huge shift must not UB
}

TEST(RespawnBackoffTest, AttemptZeroBehavesLikeOne) {
  FleetTuning t;
  t.backoff_base_ms = 100;
  t.backoff_max_ms = 1000;
  EXPECT_EQ(respawn_backoff_ms(t, 0), respawn_backoff_ms(t, 1));
}

TEST(LeaseTableTest, GrantsLowestPendingRunAndMarksOutstanding) {
  LeaseTable table(10, tuning_with(1000, 4));
  const auto lease = table.grant(0, 0, 1);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->lo, 0u);
  EXPECT_EQ(lease->hi, 4u);
  EXPECT_TRUE(table.worker_leased(0));
  EXPECT_EQ(table.outstanding(0), 4u);
  EXPECT_EQ(table.pending_count(), 6u);
}

TEST(LeaseTableTest, AutoChunkShrinksAsSweepDrains) {
  // auto = clamp(pending / (2 * live), 1, 16): 100 pending, 2 live -> 16
  // (clamped); then as pending shrinks the chunks shrink with it.
  LeaseTable table(100, tuning_with(1000, 0));
  const auto first = table.grant(0, 0, 2);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), 16u);  // 100/(2*2)=25, clamped to 16
  // Complete everything but a 6-index tail.
  for (std::size_t i = first->hi; i < 94; ++i) table.mark_done(i);
  const auto tail = table.grant(1, 0, 2);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->size(), 1u);  // 6/(2*2)=1: small leases near the end
}

TEST(LeaseTableTest, ParksWhenNothingPending) {
  LeaseTable table(2, tuning_with(1000, 4));
  ASSERT_TRUE(table.grant(0, 0, 2).has_value());  // takes both indices
  EXPECT_FALSE(table.grant(1, 0, 2).has_value());
  EXPECT_FALSE(table.all_done());  // leased, not done
}

TEST(LeaseTableTest, CompleteIsFirstWinsAndDrivesAllDone) {
  LeaseTable table(2, tuning_with(1000, 4));
  ASSERT_TRUE(table.grant(0, 0, 1).has_value());
  EXPECT_TRUE(table.complete(0));
  EXPECT_FALSE(table.complete(0));  // duplicate: caller discards
  EXPECT_TRUE(table.complete(1));
  EXPECT_TRUE(table.all_done());
  EXPECT_EQ(table.done_count(), 2u);
}

TEST(LeaseTableTest, ReleaseReturnsOutstandingNotDoneIndices) {
  LeaseTable table(8, tuning_with(1000, 4));
  ASSERT_TRUE(table.grant(0, 0, 1).has_value());  // [0,4)
  EXPECT_TRUE(table.complete(1));                 // done mid-lease
  const auto released = table.release(0);
  EXPECT_EQ(released, (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_FALSE(table.worker_leased(0));
  // Released work goes to whoever pulls next, lowest index first.
  const auto next = table.grant(1, 0, 1);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->lo, 0u);
}

TEST(LeaseTableTest, ReleasedIndexCompletedByOriginalWorkerStaysDone) {
  // The death race: worker 0's lease expires, its index is re-leased to
  // worker 1, but worker 0's record was already in flight and lands
  // first. First-complete-wins — worker 1's copy is the duplicate.
  LeaseTable table(4, tuning_with(1000, 2));
  ASSERT_TRUE(table.grant(0, 0, 2).has_value());  // [0,2)
  table.release(0);
  ASSERT_TRUE(table.grant(1, 0, 2).has_value());  // re-leased [0,2)
  EXPECT_TRUE(table.complete(0));    // worker 0's in-flight record
  EXPECT_FALSE(table.complete(0));   // worker 1's re-run arrives: dup
  EXPECT_EQ(table.outstanding(1), 1u);  // index 1 still owed
}

TEST(LeaseTableTest, ExpiryIsExactlyAtDeadline) {
  LeaseTable table(4, tuning_with(100, 2));
  ASSERT_TRUE(table.grant(0, 1000, 1).has_value());  // heartbeat at 1000
  EXPECT_TRUE(table.expired(1099).empty());          // 99 ms: alive
  const auto at_deadline = table.expired(1100);      // exactly 100 ms
  ASSERT_EQ(at_deadline.size(), 1u);
  EXPECT_EQ(at_deadline[0], 0u);
}

TEST(LeaseTableTest, HeartbeatRestartsTheClock) {
  LeaseTable table(4, tuning_with(100, 2));
  ASSERT_TRUE(table.grant(0, 1000, 1).has_value());
  table.heartbeat(0, 1090);
  EXPECT_TRUE(table.expired(1100).empty());   // clock restarted at 1090
  EXPECT_FALSE(table.expired(1190).empty());  // 1090 + 100
}

TEST(LeaseTableTest, ParkedWorkerIsExemptFromDeadlines) {
  LeaseTable table(1, tuning_with(100, 2));
  ASSERT_TRUE(table.grant(0, 0, 2).has_value());
  EXPECT_FALSE(table.grant(1, 0, 2).has_value());  // worker 1 parks
  // Far past any deadline: only the leased worker expires.
  EXPECT_EQ(table.expired(10000), std::vector<unsigned>{0});
}

TEST(LeaseTableTest, NextDeadlineTracksOldestLeasedHeartbeat) {
  LeaseTable table(8, tuning_with(100, 2));
  EXPECT_FALSE(table.next_deadline_ms().has_value());  // nothing leased
  ASSERT_TRUE(table.grant(0, 1000, 2).has_value());
  ASSERT_TRUE(table.grant(1, 1050, 2).has_value());
  ASSERT_EQ(table.next_deadline_ms().value_or(0), 1100u);  // worker 0 first
  table.heartbeat(0, 1080);
  EXPECT_EQ(table.next_deadline_ms().value_or(0), 1150u);  // now worker 1
}

TEST(LeaseTableTest, ResumeSeedingLeasesOnlyTheGaps) {
  LeaseTable table(6, tuning_with(1000, 16));
  table.mark_done(0);
  table.mark_done(1);
  table.mark_done(4);
  EXPECT_EQ(table.done_count(), 3u);
  EXPECT_TRUE(table.is_done(4));
  EXPECT_FALSE(table.is_done(2));
  // First grant: the contiguous gap run [2,4) — index 4 is done, so the
  // run stops there even though the chunk allows more.
  const auto first = table.grant(0, 0, 1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->lo, 2u);
  EXPECT_EQ(first->hi, 4u);
  const auto second = table.grant(0, 0, 1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->lo, 5u);
  EXPECT_EQ(second->hi, 6u);
  EXPECT_FALSE(table.grant(0, 0, 1).has_value());  // drained
}

TEST(LeaseTableTest, EmptySweepIsBornDone) {
  LeaseTable table(0, tuning_with(1000));
  EXPECT_TRUE(table.all_done());
  EXPECT_FALSE(table.grant(0, 0, 1).has_value());
}

}  // namespace
}  // namespace dsm::shard
