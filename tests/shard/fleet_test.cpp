// fleet_test.cpp — run_fleet() end to end over the preconnected-fd seam,
// with scripted in-process "workers" speaking the pull protocol over real
// socketpairs: happy-path merge, worker death mid-sweep (byte-identical
// recovery — the acceptance bar), duplicate-record discard, truncated
// frames, resume-from-store leasing only the gaps, the lease ledger, and
// the empty sweep. No forks, no sleeps: deaths are socket closes, and
// the default 30 s heartbeat deadline never fires in a sub-second test.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "shard/coordinator.hpp"
#include "shard/fleet_msg.hpp"
#include "shard/resume.hpp"
#include "shard/stream_sink.hpp"
#include "shard/transport.hpp"

namespace dsm::shard {
namespace {

constexpr char kBench[] = "fleet_test_bench";

/// The content-derived record for one spec index — every scripted worker
/// produces identical bytes for the same index, mirroring the real
/// harness's content-hashed seeds (what makes re-leases byte-safe).
std::string record_line(std::size_t index) {
  StreamRecord r;
  r.spec_index = index;
  r.key = "cfg/" + std::to_string(index);
  r.seed = 0x1000 + index;
  r.metrics = "{}";
  return format_record(kBench, r);
}

/// The expected merged output for a `total`-point sweep.
std::string expected_output(std::size_t total) {
  std::string out;
  for (std::size_t i = 0; i < total; ++i) out += record_line(i) + "\n";
  return out;
}

struct WorkerScript {
  /// Die (close the socket) once this many records were emitted.
  std::size_t die_after = ~std::size_t{0};
  /// When dying, first send half a record with no terminator.
  bool truncate_on_death = false;
  /// Send the first record of the first lease twice (a re-lease race).
  bool duplicate_first = false;
};

/// One scripted pull worker over an already-connected fd. Records every
/// lease range it was granted into `leases` (under `mu`).
void run_worker(int fd, std::size_t total, const WorkerScript& script,
                std::vector<Lease>* leases = nullptr,
                std::mutex* mu = nullptr) {
  FdTransport t(fd);
  if (!t.send_line(format_hello(kBench, total))) return;
  std::string line;
  if (!t.recv_line(&line)) return;  // welcome
  std::size_t emitted = 0;
  bool first_record = true;
  for (;;) {
    if (!t.send_line(format_pull())) return;
    if (!t.recv_line(&line)) return;
    const auto msg = parse_fleet_msg(line);
    if (!msg || msg->type != FleetMsg::Type::kLease) return;  // fin
    if (leases != nullptr) {
      std::lock_guard<std::mutex> lock(*mu);
      leases->push_back({static_cast<std::size_t>(msg->lo),
                         static_cast<std::size_t>(msg->hi)});
    }
    for (std::size_t idx = msg->lo; idx < msg->hi; ++idx) {
      if (emitted >= script.die_after) {
        if (script.truncate_on_death)
          t.send_raw(record_line(idx).substr(0, 10));
        return;  // ~FdTransport closes the fd: EOF at the coordinator
      }
      if (!t.send_line(record_line(idx))) return;
      if (first_record && script.duplicate_first)
        if (!t.send_line(record_line(idx))) return;
      first_record = false;
      ++emitted;
    }
  }
}

/// Spawns `scripts.size()` scripted workers, runs the fleet against
/// them, and returns {exit code, merged stdout bytes}.
struct FleetRun {
  int rc = -1;
  std::string output;
};

FleetRun run_scripted_fleet(std::size_t total,
                            const std::vector<WorkerScript>& scripts,
                            FleetOptions opt = {}) {
  std::vector<std::thread> threads;
  opt.workers = static_cast<unsigned>(scripts.size());
  for (const auto& script : scripts) {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    opt.preconnected_fds.push_back(sv[0]);
    threads.emplace_back(
        [fd = sv[1], total, script] { run_worker(fd, total, script); });
  }
  FleetRun result;
  std::FILE* out = std::tmpfile();
  EXPECT_NE(out, nullptr);
  result.rc = run_fleet(opt, out);
  for (auto& th : threads) th.join();
  std::rewind(out);
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, out)) > 0)
    result.output.append(buf, n);
  std::fclose(out);
  return result;
}

TEST(FleetTest, MergesSpecOrderedOutputFromConcurrentWorkers) {
  const auto run = run_scripted_fleet(12, {{}, {}, {}});
  EXPECT_EQ(run.rc, 0);
  EXPECT_EQ(run.output, expected_output(12));
}

TEST(FleetTest, SingleWorkerFleetMatches) {
  const auto run = run_scripted_fleet(5, {{}});
  EXPECT_EQ(run.rc, 0);
  EXPECT_EQ(run.output, expected_output(5));
}

TEST(FleetTest, WorkerDeathMidSweepRecoversByteIdentical) {
  // The acceptance bar: one worker dies mid-stream; the survivor drains
  // the released lease and the merged bytes are exactly the undisturbed
  // run's.
  WorkerScript dies;
  dies.die_after = 2;
  const auto run = run_scripted_fleet(10, {dies, {}});
  EXPECT_EQ(run.rc, 0);
  EXPECT_EQ(run.output, expected_output(10));
}

TEST(FleetTest, AllButOneWorkerDyingStillCompletes) {
  WorkerScript dies_now;
  dies_now.die_after = 0;  // dies on its first lease, emitting nothing
  const auto run = run_scripted_fleet(8, {dies_now, dies_now, {}});
  EXPECT_EQ(run.rc, 0);
  EXPECT_EQ(run.output, expected_output(8));
}

TEST(FleetTest, EveryWorkerDyingFailsTheRun) {
  WorkerScript dies;
  dies.die_after = 1;
  const auto run = run_scripted_fleet(10, {dies, dies});
  EXPECT_NE(run.rc, 0);  // preconnected mode has no respawn: fleet fails
}

TEST(FleetTest, DuplicateRecordsAreDiscardedFirstCompleteWins) {
  WorkerScript dup;
  dup.duplicate_first = true;
  const auto run = run_scripted_fleet(6, {dup, {}});
  EXPECT_EQ(run.rc, 0);
  EXPECT_EQ(run.output, expected_output(6));  // the dup never reaches out
}

TEST(FleetTest, TruncatedDeathFrameIsDiscardedNotMerged) {
  WorkerScript truncates;
  truncates.die_after = 1;
  truncates.truncate_on_death = true;
  const auto run = run_scripted_fleet(8, {truncates, {}});
  EXPECT_EQ(run.rc, 0);
  EXPECT_EQ(run.output, expected_output(8));
}

TEST(FleetTest, EmptySweepFinsEveryoneAndSucceeds) {
  const auto run = run_scripted_fleet(0, {{}, {}});
  EXPECT_EQ(run.rc, 0);
  EXPECT_TRUE(run.output.empty());
}

TEST(FleetTest, LeaseLogRecordsLeasedAndDoneEvents) {
  const std::string log_path = ::testing::TempDir() + "fleet_test_lease.log";
  std::remove(log_path.c_str());
  FleetOptions opt;
  opt.lease_log = log_path;
  const auto run = run_scripted_fleet(6, {{}, {}}, opt);
  EXPECT_EQ(run.rc, 0);

  std::FILE* f = std::fopen(log_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::size_t leased = 0, done = 0;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    std::string s(line);
    if (!s.empty() && s.back() == '\n') s.pop_back();
    LeaseEvent ev;
    ASSERT_TRUE(parse_lease_event(s, &ev)) << s;
    if (ev.state == "leased") ++leased;
    if (ev.state == "done") ++done;
  }
  std::fclose(f);
  EXPECT_GT(leased, 0u);
  EXPECT_EQ(done, 2u);  // one per worker at teardown
  std::remove(log_path.c_str());
}

TEST(FleetTest, ResumeLeasesOnlyTheGapsAndCompletesTheStore) {
  // Store holds indices 0,1,4 of a 6-point sweep (plus a truncated tail
  // — a previous fleet died mid-write). The resumed fleet must re-emit
  // the recovered records, lease only {2,3,5}, and produce bytes
  // identical to an undisturbed complete run.
  const std::string store = ::testing::TempDir() + "fleet_test_resume.ndjson";
  {
    std::FILE* f = std::fopen(store.c_str(), "w");
    ASSERT_NE(f, nullptr);
    for (const std::size_t idx : {0, 1, 4}) {
      const std::string l = record_line(idx);
      std::fwrite(l.data(), 1, l.size(), f);
      std::fputc('\n', f);
    }
    const std::string half = record_line(5).substr(0, 25);
    std::fwrite(half.data(), 1, half.size(), f);  // no terminator
    std::fclose(f);
  }

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::vector<Lease> leases;
  std::mutex mu;
  std::thread worker([&, fd = sv[1]] {
    run_worker(fd, 6, WorkerScript{}, &leases, &mu);
  });

  FleetOptions opt;
  opt.workers = 1;
  opt.preconnected_fds.push_back(sv[0]);
  opt.resume_store = store;
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  const int rc = run_fleet(opt, out);
  worker.join();
  EXPECT_EQ(rc, 0);

  std::rewind(out);
  std::string merged;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, out)) > 0) merged.append(buf, n);
  std::fclose(out);
  EXPECT_EQ(merged, expected_output(6));

  // The worker must never have been leased a recovered index.
  for (const auto& l : leases)
    for (std::size_t idx = l.lo; idx < l.hi; ++idx)
      EXPECT_TRUE(idx == 2 || idx == 3 || idx == 5)
          << "re-leased recovered index " << idx;
  std::remove(store.c_str());
}

TEST(FleetTest, MismatchedResumeStoreFailsTheRun) {
  // A store whose indices exceed the sweep is the wrong store — resuming
  // over it silently would bless a mismatched merge.
  const std::string store = ::testing::TempDir() + "fleet_test_wrong.ndjson";
  {
    std::FILE* f = std::fopen(store.c_str(), "w");
    ASSERT_NE(f, nullptr);
    const std::string l = record_line(9);  // sweep below has 4 points
    std::fwrite(l.data(), 1, l.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  FleetOptions opt;
  opt.resume_store = store;
  const auto run = run_scripted_fleet(4, {{}}, opt);
  EXPECT_NE(run.rc, 0);
  std::remove(store.c_str());
}

}  // namespace
}  // namespace dsm::shard
