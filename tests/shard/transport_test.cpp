// transport_test.cpp — the fleet's byte layer: FrameSplitter reassembly
// across arbitrary chunk boundaries, FdTransport round trips over a real
// socketpair, truncated-EOF detection (peer died mid-line), endpoint
// parsing, and a TCP loopback connect/accept cycle.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "shard/transport.hpp"

namespace dsm::shard {
namespace {

TEST(FrameSplitterTest, YieldsLinesAcrossArbitraryChunks) {
  FrameSplitter s;
  const std::string data = "alpha\nbeta\ngamma\n";
  // Feed one byte at a time — the worst fragmentation a socket can do.
  for (const char c : data) s.feed(&c, 1);
  EXPECT_EQ(s.next().value_or(""), "alpha");
  EXPECT_EQ(s.next().value_or(""), "beta");
  EXPECT_EQ(s.next().value_or(""), "gamma");
  EXPECT_FALSE(s.next().has_value());
  EXPECT_FALSE(s.has_partial());
}

TEST(FrameSplitterTest, HoldsPartialUntilTerminated) {
  FrameSplitter s;
  s.feed("half-a-li", 9);
  EXPECT_FALSE(s.next().has_value());
  EXPECT_TRUE(s.has_partial());
  EXPECT_EQ(s.partial(), "half-a-li");
  s.feed("ne\n", 3);
  EXPECT_EQ(s.next().value_or(""), "half-a-line");
  EXPECT_FALSE(s.has_partial());
}

TEST(FrameSplitterTest, EmptyLinesAreRealLines) {
  FrameSplitter s;
  s.feed("\n\nx\n", 4);
  EXPECT_EQ(s.next().value_or("?"), "");
  EXPECT_EQ(s.next().value_or("?"), "");
  EXPECT_EQ(s.next().value_or(""), "x");
}

TEST(FdTransportTest, RoundTripsLinesOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  FdTransport a(sv[0]);
  FdTransport b(sv[1]);
  ASSERT_TRUE(a.send_line("{\"fleet\":\"pull\"}"));
  ASSERT_TRUE(a.send_line("second"));
  std::string line;
  ASSERT_TRUE(b.recv_line(&line));
  EXPECT_EQ(line, "{\"fleet\":\"pull\"}");
  ASSERT_TRUE(b.recv_line(&line));
  EXPECT_EQ(line, "second");
}

TEST(FdTransportTest, CleanEofIsNotTruncation) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  {
    FdTransport a(sv[0]);
    ASSERT_TRUE(a.send_line("whole"));
  }  // a's destructor closes the fd: clean EOF after a complete line
  FdTransport b(sv[1]);
  std::string line;
  ASSERT_TRUE(b.recv_line(&line));
  EXPECT_EQ(line, "whole");
  EXPECT_FALSE(b.recv_line(&line));
  EXPECT_FALSE(b.eof_truncated());
}

TEST(FdTransportTest, DyingMidLineReadsAsTruncatedEof) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  {
    FdTransport a(sv[0]);
    // Half a record, no terminator — the crash-mid-write wire shape.
    ASSERT_TRUE(a.send_raw("{\"v\":2,\"bench\":\"x\",\"spec"));
  }
  FdTransport b(sv[1]);
  std::string line;
  EXPECT_FALSE(b.recv_line(&line));
  EXPECT_TRUE(b.eof_truncated());
}

TEST(FdTransportTest, SendToClosedPeerFailsWithoutSignal) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);
  FdTransport a(sv[0]);
  // Would raise SIGPIPE (killing the test) without MSG_NOSIGNAL. The
  // first send may land in the kernel buffer; keep pushing until the
  // RST surfaces.
  bool failed = false;
  for (int i = 0; i < 16 && !failed; ++i) failed = !a.send_line("x");
  EXPECT_TRUE(failed);
}

TEST(EndpointTest, ParsesFdAndHostPortSpellings) {
  const auto fd = parse_endpoint("fd:3");
  ASSERT_TRUE(fd.has_value());
  EXPECT_TRUE(fd->is_fd);
  EXPECT_EQ(fd->fd, 3);

  const auto tcp = parse_endpoint("localhost:9000");
  ASSERT_TRUE(tcp.has_value());
  EXPECT_FALSE(tcp->is_fd);
  EXPECT_EQ(tcp->host, "localhost");
  EXPECT_EQ(tcp->port, 9000u);

  EXPECT_FALSE(parse_endpoint("").has_value());
  EXPECT_FALSE(parse_endpoint("fd:").has_value());
  EXPECT_FALSE(parse_endpoint("fd:x").has_value());
  EXPECT_FALSE(parse_endpoint("noport").has_value());
  EXPECT_FALSE(parse_endpoint("host:0").has_value());
  EXPECT_FALSE(parse_endpoint("host:99999").has_value());
}

TEST(TcpTest, LoopbackConnectAcceptRoundTrip) {
  const int listen_fd = tcp_listen(0);  // ephemeral port
  ASSERT_GE(listen_fd, 0);
  const unsigned port = tcp_local_port(listen_fd);
  ASSERT_GT(port, 0u);

  std::thread client([port] {
    const int fd = tcp_connect("127.0.0.1", port);
    ASSERT_GE(fd, 0);
    FdTransport t(fd);
    EXPECT_TRUE(t.send_line("over tcp"));
    std::string echo;
    ASSERT_TRUE(t.recv_line(&echo));
    EXPECT_EQ(echo, "echo: over tcp");
  });

  const int conn = tcp_accept(listen_fd);
  ASSERT_GE(conn, 0);
  {
    FdTransport t(conn);
    std::string line;
    ASSERT_TRUE(t.recv_line(&line));
    EXPECT_EQ(line, "over tcp");
    EXPECT_TRUE(t.send_line("echo: " + line));
  }
  client.join();
  ::close(listen_fd);
}

}  // namespace
}  // namespace dsm::shard
