// json_value_test.cpp — the strict JSON reader under the offline result
// store: exact round-trips of what JsonObject/JsonArray serialize, and
// loud rejection of everything else.
#include "report/json_value.hpp"

#include <gtest/gtest.h>

#include "shard/stream_sink.hpp"

namespace dsm::report {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(parse_json(text, &v, &err)) << text << ": " << err;
  return v;
}

std::string parse_err(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(parse_json(text, &v, &err)) << text;
  return err;
}

TEST(JsonValueTest, ParsesScalars) {
  EXPECT_EQ(parse_ok("\"hi\"").string(), "hi");
  EXPECT_EQ(parse_ok("42").unsigned_int(), 42u);
  EXPECT_DOUBLE_EQ(parse_ok("-1.5e3").number(), -1500.0);
  EXPECT_TRUE(parse_ok("true").boolean());
  EXPECT_FALSE(parse_ok("false").boolean());
  EXPECT_EQ(parse_ok("null").kind(), JsonValue::Kind::kNull);
}

TEST(JsonValueTest, ObjectKeepsInsertionOrder) {
  const auto v = parse_ok(R"({"b":1,"a":2,"c":{"x":[1,2]}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.at("a").unsigned_int(), 2u);
  EXPECT_EQ(v.at("c").at("x").item(1).unsigned_int(), 2u);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValueTest, RoundTripsJsonObjectOutput) {
  // What the producers serialize must parse back to identical values —
  // including the shortest-round-trip doubles.
  const double tricky = 0.1 + 0.2;  // 0.30000000000000004
  const std::string text = shard::JsonObject()
                               .add("s", std::string("a\"b\\c\nd"))
                               .add("d", tricky)
                               .add("u", std::uint64_t{1} << 63)
                               .add_raw("arr", shard::JsonArray()
                                                   .add(1.25)
                                                   .add(std::uint64_t{7})
                                                   .add("x")
                                                   .str())
                               .str();
  const auto v = parse_ok(text);
  EXPECT_EQ(v.at("s").string(), "a\"b\\c\nd");
  EXPECT_EQ(v.at("d").number(), tricky);  // bit-exact, not approximate
  EXPECT_EQ(v.at("u").unsigned_int(), std::uint64_t{1} << 63);
  EXPECT_DOUBLE_EQ(v.at("arr").item(0).number(), 1.25);
  EXPECT_EQ(v.at("arr").item(2).string(), "x");
}

TEST(JsonValueTest, RejectsMalformedInput) {
  EXPECT_NE(parse_err("").find("unexpected end"), std::string::npos);
  EXPECT_NE(parse_err("{\"a\":1").find("unterminated object"),
            std::string::npos);
  EXPECT_NE(parse_err("[1,2").find("unterminated array"), std::string::npos);
  EXPECT_NE(parse_err("{\"a\" 1}").find("expected ':'"), std::string::npos);
  EXPECT_NE(parse_err("{}x").find("trailing bytes"), std::string::npos);
  EXPECT_NE(parse_err("\"\\u0041\"").find("unsupported escape"),
            std::string::npos);
  EXPECT_NE(parse_err("nul").find("bad literal"), std::string::npos);
  EXPECT_NE(parse_err("1.2.3").find("malformed number"), std::string::npos);
}

TEST(JsonValueTest, RejectsPathologicalNestingWithoutOverflowing) {
  // A corrupt/adversarial line of 100k '[' must produce a diagnostic,
  // not recurse the stack away.
  const std::string deep(100'000, '[');
  EXPECT_NE(parse_err(deep).find("nesting deeper"), std::string::npos);
  // Realistic nesting stays fine.
  std::string ok = "1";
  for (int i = 0; i < 20; ++i) ok = "[" + ok + "]";
  parse_ok(ok);
}

TEST(JsonValueTest, AccessorsThrowOnKindMismatch) {
  const auto v = parse_ok(R"({"n":1,"s":"x"})");
  EXPECT_THROW(v.at("n").string(), std::runtime_error);
  EXPECT_THROW(v.at("s").number(), std::runtime_error);
  EXPECT_THROW(v.at("missing"), std::runtime_error);
  EXPECT_THROW(v.items(), std::runtime_error);
  EXPECT_THROW(parse_ok("1.5").unsigned_int(), std::runtime_error);
}

}  // namespace
}  // namespace dsm::report
