// record_reader_test.cpp — the strict record reader must reject every
// malformed or mis-ordered input with a *distinct* diagnostic: the result
// store is the only artifact a fleet run leaves behind, and "fail loudly,
// never guess" is its contract. Table-driven over the failure modes the
// offline pipeline can meet in practice (truncated files, version skew,
// shard files merged in the wrong way, files from different harnesses).
#include "report/record_reader.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "shard/stream_sink.hpp"

namespace dsm::report {
namespace {

/// In-memory line stream.
class VectorLineSource : public shard::LineSource {
 public:
  explicit VectorLineSource(std::vector<std::string> lines)
      : lines_(std::move(lines)) {}
  bool next(std::string& line) override {
    if (pos_ >= lines_.size()) return false;
    line = lines_[pos_++];
    return true;
  }

 private:
  std::vector<std::string> lines_;
  std::size_t pos_ = 0;
};

/// A well-formed record line with the context envelope bench_util wraps
/// around harness metrics.
std::string make_line(const std::string& bench, std::size_t index,
                      const std::string& app = "LU", unsigned nodes = 8) {
  shard::StreamRecord rec;
  rec.spec_index = index;
  rec.key = app + "/" + std::to_string(nodes) + "p";
  rec.seed = 0x1234abcd + index;
  rec.metrics = shard::JsonObject()
                    .add("app", app)
                    .add("nodes", std::uint64_t{nodes})
                    .add("variant", std::string())
                    .add("param", 0.0)
                    .add("scale", std::string("test"))
                    .add_raw("m", shard::JsonObject()
                                      .add("value", 1.5)
                                      .add("count", std::uint64_t{7})
                                      .str())
                    .str();
  return format_record(bench, rec);
}

std::string reader_error(std::vector<std::string> lines, StreamKind kind) {
  VectorLineSource src(std::move(lines));
  RecordReader reader(src, kind);
  RecordView rec;
  while (reader.next(&rec)) {
  }
  EXPECT_FALSE(reader.ok());
  return reader.error();
}

TEST(ReadRecordTest, RoundTripsAllFields) {
  RecordView rec;
  std::string err;
  ASSERT_TRUE(read_record(make_line("fig2_bbv_baseline", 3), &rec, &err))
      << err;
  EXPECT_EQ(rec.bench, "fig2_bbv_baseline");
  EXPECT_EQ(rec.spec_index, 3u);
  EXPECT_EQ(rec.key, "LU/8p");
  EXPECT_EQ(rec.seed, 0x1234abcdu + 3);
  EXPECT_EQ(rec.app, "LU");
  EXPECT_EQ(rec.nodes, 8u);
  EXPECT_EQ(rec.variant, "");
  EXPECT_DOUBLE_EQ(rec.param, 0.0);
  EXPECT_EQ(rec.scale, "test");
  EXPECT_DOUBLE_EQ(rec.m().at("value").number(), 1.5);
  EXPECT_EQ(rec.m().at("count").unsigned_int(), 7u);
}

// Each malformed input is rejected with a diagnostic naming ITS failure —
// not a generic "bad record".
TEST(ReadRecordTest, DistinctDiagnosticsPerFailureMode) {
  const std::string good = make_line("b", 0);
  struct Case {
    const char* what;
    std::string line;
    const char* expect;
  };
  const std::vector<Case> cases = {
      {"truncated line", good.substr(0, good.size() / 2),
       "malformed record line"},
      {"trailing junk", good + "}", "malformed record line"},
      {"empty line", "", "empty line"},
      {"not JSON", "accesses: 12", "malformed record line"},
      {"not an object", "[1,2,3]", "not a JSON object"},
      {"bad version (pre-envelope store)", "{\"v\":1" + good.substr(6),
       "unsupported schema version 1"},
      {"missing bench",
       R"({"v":2,"spec_index":0,"key":"k","seed":"0x1","metrics":{}})",
       "missing field 'bench'"},
      {"bad seed",
       R"({"v":2,"bench":"b","spec_index":0,"key":"k","seed":"17",)"
       R"("metrics":{}})",
       "field 'seed' must be a \"0x...\" hex string"},
      {"metrics not object",
       R"({"v":2,"bench":"b","spec_index":0,"key":"k","seed":"0x1",)"
       R"("metrics":7})",
       "field 'metrics' must be an object"},
      {"missing context",
       R"({"v":2,"bench":"b","spec_index":0,"key":"k","seed":"0x1",)"
       R"("metrics":{"m":{}}})",
       "missing string field 'app'"},
      {"missing m",
       R"({"v":2,"bench":"b","spec_index":0,"key":"k","seed":"0x1",)"
       R"("metrics":{"app":"LU","nodes":8,"variant":"","param":0,)"
       R"("scale":"test"}})",
       "missing object field 'm'"},
  };
  for (const auto& c : cases) {
    RecordView rec;
    std::string err;
    EXPECT_FALSE(read_record(c.line, &rec, &err)) << c.what;
    EXPECT_NE(err.find(c.expect), std::string::npos)
        << c.what << ": got diagnostic '" << err << "'";
  }
}

TEST(RecordReaderTest, AcceptsContiguousMergedStream) {
  VectorLineSource src({make_line("b", 0), make_line("b", 1),
                        make_line("b", 2)});
  RecordReader reader(src, StreamKind::kMergedStream);
  RecordView rec;
  while (reader.next(&rec)) {
  }
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.records(), 3u);
  EXPECT_EQ(reader.bench(), "b");
}

TEST(RecordReaderTest, ShardSliceAllowsGapsButNotDisorder) {
  // A worker's own file is a round-robin slice: 0, 2, 4 is fine...
  VectorLineSource src({make_line("b", 0), make_line("b", 2),
                        make_line("b", 4)});
  RecordReader reader(src, StreamKind::kShardSlice);
  RecordView rec;
  while (reader.next(&rec)) {
  }
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.records(), 3u);
}

TEST(RecordReaderTest, RejectsDuplicateIndex) {
  const auto err = reader_error({make_line("b", 0), make_line("b", 0)},
                                StreamKind::kShardSlice);
  EXPECT_NE(err.find("duplicate spec index 0"), std::string::npos) << err;
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(RecordReaderTest, RejectsOutOfOrderIndex) {
  const auto err = reader_error({make_line("b", 3), make_line("b", 1)},
                                StreamKind::kShardSlice);
  EXPECT_NE(err.find("records out of order"), std::string::npos) << err;
}

TEST(RecordReaderTest, RejectsGapInMergedStream) {
  // A merged file with a hole means a shard file was not collected: the
  // non-contiguous merge must fail, not render a partial table.
  const auto err = reader_error({make_line("b", 0), make_line("b", 2)},
                                StreamKind::kMergedStream);
  EXPECT_NE(err.find("gap in spec indices"), std::string::npos) << err;
  EXPECT_NE(err.find("expected 1, got 2"), std::string::npos) << err;
}

TEST(RecordReaderTest, RejectsMergedStreamNotStartingAtZero) {
  const auto err =
      reader_error({make_line("b", 1)}, StreamKind::kMergedStream);
  EXPECT_NE(err.find("expected 0, got 1"), std::string::npos) << err;
}

TEST(RecordReaderTest, RejectsMixedBenchNames) {
  const auto err =
      reader_error({make_line("fig2_bbv_baseline", 0),
                    make_line("fig4_bbv_ddv", 1)},
                   StreamKind::kMergedStream);
  EXPECT_NE(err.find("bench name changed mid-stream"), std::string::npos)
      << err;
  EXPECT_NE(err.find("fig2_bbv_baseline"), std::string::npos) << err;
  EXPECT_NE(err.find("fig4_bbv_ddv"), std::string::npos) << err;
}

TEST(RecordReaderTest, StopsAtFirstErrorAndNamesTheLine) {
  const auto err = reader_error(
      {make_line("b", 0), "garbage", make_line("b", 2)},
      StreamKind::kMergedStream);
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

}  // namespace
}  // namespace dsm::report
