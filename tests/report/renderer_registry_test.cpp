// renderer_registry_test.cpp — every harness must have a registered
// renderer (the live human-output path refuses to run without one), and
// render_stream must fail loudly on unknown benches and broken streams.
#include "report/renderer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "shard/stream_sink.hpp"

namespace dsm::report {
namespace {

class VectorLineSource : public shard::LineSource {
 public:
  explicit VectorLineSource(std::vector<std::string> lines)
      : lines_(std::move(lines)) {}
  bool next(std::string& line) override {
    if (pos_ >= lines_.size()) return false;
    line = lines_[pos_++];
    return true;
  }

 private:
  std::vector<std::string> lines_;
  std::size_t pos_ = 0;
};

std::string micro_line(std::size_t index, const char* kernel,
                       const char* size) {
  shard::StreamRecord rec;
  rec.spec_index = index;
  rec.key = std::string(kernel) + "/" + size;
  rec.seed = 0;
  rec.metrics = shard::JsonObject()
                    .add("app", std::string(kernel))
                    .add("nodes", std::uint64_t{0})
                    .add("variant", std::string(size))
                    .add("param", 32.0)
                    .add("scale", std::string("test"))
                    .add_raw("m", shard::JsonObject()
                                      .add("base_iters", std::uint64_t{1000})
                                      .add("iters", std::uint64_t{1000})
                                      .add("checksum", std::uint64_t{42})
                                      .str())
                    .str();
  return format_record("micro_detector", rec);
}

TEST(RendererRegistryTest, EveryHarnessHasARenderer) {
  const std::vector<std::string> expected = {
      "fig2_bbv_baseline", "fig4_bbv_ddv",       "table1_architecture",
      "table2_applications", "ablation_ddv_terms", "ablation_footprint",
      "ablation_intervals", "ablation_topology",  "ablation_protocol",
      "overhead_bandwidth", "predictors_eval",    "micro_detector",
      "perf_hotpath",       "perf_sim",
  };
  const auto names = renderer_names();
  EXPECT_EQ(names.size(), expected.size());
  for (const auto& bench : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), bench), names.end())
        << bench << " not in registry";
    EXPECT_NE(make_renderer(bench, RenderOptions{}), nullptr) << bench;
  }
  EXPECT_EQ(make_renderer("no_such_bench", RenderOptions{}), nullptr);
}

TEST(RenderStreamTest, RendersAValidStream) {
  VectorLineSource src({micro_line(0, "manhattan", "16"),
                        micro_line(1, "manhattan", "32")});
  testing::internal::CaptureStdout();
  std::string error;
  const int rc = render_stream(src, RenderOptions{}, &error);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << error;
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_NE(out.find("Detector hardware microbenchmarks"),
            std::string::npos);
  EXPECT_NE(out.find("manhattan"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);  // the checksum column
}

TEST(RenderStreamTest, FailsOnUnknownBench) {
  shard::StreamRecord rec;
  rec.key = "k";
  rec.metrics = shard::JsonObject()
                    .add("app", std::string("x"))
                    .add("nodes", std::uint64_t{0})
                    .add("variant", std::string())
                    .add("param", 0.0)
                    .add("scale", std::string("test"))
                    .add_raw("m", "{}")
                    .str();
  VectorLineSource src({format_record("mystery_bench", rec)});
  std::string error;
  EXPECT_EQ(render_stream(src, RenderOptions{}, &error), 1);
  EXPECT_NE(error.find("no renderer registered"), std::string::npos)
      << error;
  EXPECT_NE(error.find("mystery_bench"), std::string::npos) << error;
}

TEST(RenderStreamTest, FailsOnEmptyAndBrokenStreams) {
  VectorLineSource empty({});
  std::string error;
  EXPECT_EQ(render_stream(empty, RenderOptions{}, &error), 1);
  EXPECT_NE(error.find("no records"), std::string::npos) << error;

  testing::internal::CaptureStdout();
  VectorLineSource gap({micro_line(0, "manhattan", "16"),
                        micro_line(2, "manhattan", "64")});
  error.clear();
  EXPECT_EQ(render_stream(gap, RenderOptions{}, &error), 1);
  testing::internal::GetCapturedStdout();  // drop partial render output
  EXPECT_NE(error.find("gap in spec indices"), std::string::npos) << error;
}

}  // namespace
}  // namespace dsm::report
