#include "coherence/directory.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

namespace dsm::coh {
namespace {

TEST(DirectoryTest, AbsentEntryPeeksUncached) {
  Directory d(0);
  const DirEntry e = d.peek(0x1000);
  EXPECT_EQ(e.state, DirEntry::State::kUncached);
  EXPECT_EQ(e.sharers, 0u);
  EXPECT_EQ(d.tracked_lines(), 0u);
}

TEST(DirectoryTest, EntryCreatesAndPersists) {
  Directory d(3);
  DirEntry& e = d.entry(0x2000);
  e.state = DirEntry::State::kExclusive;
  e.add_sharer(5);
  e.owner = 5;
  EXPECT_EQ(d.tracked_lines(), 1u);
  const DirEntry p = d.peek(0x2000);
  EXPECT_EQ(p.state, DirEntry::State::kExclusive);
  EXPECT_EQ(p.owner, 5u);
  EXPECT_TRUE(p.is_sharer(5));
}

TEST(DirectoryTest, CompactDropsOnlyDeadEntries) {
  Directory d(0);
  for (Addr a = 0; a < 100; ++a) {
    DirEntry& e = d.entry(a * 32);
    if (a % 2 == 0) {
      e.state = DirEntry::State::kShared;
      e.add_sharer(1);
    }  // odd lines stay kUncached with no sharers: dead
  }
  EXPECT_EQ(d.tracked_lines(), 100u);
  d.compact();
  EXPECT_EQ(d.tracked_lines(), 50u);
  for (Addr a = 0; a < 100; ++a) {
    const DirEntry p = d.peek(a * 32);
    if (a % 2 == 0) {
      EXPECT_EQ(p.state, DirEntry::State::kShared);
      EXPECT_TRUE(p.is_sharer(1));
    } else {
      EXPECT_EQ(p.state, DirEntry::State::kUncached);
    }
  }
}

TEST(DirectoryTest, EraseRemovesEntryInPlace) {
  Directory d(0);
  d.entry(0x1000).state = DirEntry::State::kShared;
  d.entry(0x2000).state = DirEntry::State::kExclusive;
  EXPECT_EQ(d.tracked_lines(), 2u);
  d.erase(0x1000);
  EXPECT_EQ(d.tracked_lines(), 1u);
  EXPECT_EQ(d.peek(0x1000).state, DirEntry::State::kUncached);
  EXPECT_EQ(d.peek(0x2000).state, DirEntry::State::kExclusive);
  d.erase(0x1000);  // absent: no-op
  EXPECT_EQ(d.tracked_lines(), 1u);
}

// Backward-shift deletion must keep probe chains intact: erase entries
// from the middle of dense clusters (sequential lines collide into runs
// under any hash) and verify every survivor is still reachable.
TEST(DirectoryTest, EraseInsideClustersKeepsSurvivorsReachable) {
  Directory d(0);
  constexpr unsigned kLines = 3000;  // forces several growth rebuilds
  for (Addr a = 0; a < kLines; ++a) {
    DirEntry& e = d.entry(a * 32);
    e.state = DirEntry::State::kShared;
    e.sharers = a + 1;
  }
  // Erase every third line, scattered over the whole table.
  for (Addr a = 0; a < kLines; a += 3) d.erase(a * 32);
  for (Addr a = 0; a < kLines; ++a) {
    const DirEntry p = d.peek(a * 32);
    if (a % 3 == 0) {
      EXPECT_EQ(p.state, DirEntry::State::kUncached) << a;
      EXPECT_EQ(p.sharers, 0u) << a;
    } else {
      EXPECT_EQ(p.state, DirEntry::State::kShared) << a;
      EXPECT_EQ(p.sharers, a + 1) << a;
    }
  }
  EXPECT_EQ(d.tracked_lines(), kLines - (kLines + 2) / 3);
}

// check_invariants() is the structural self-audit the fabric_alloc suite
// runs after its access storms; this is its focused regression: the
// probe-length, load-factor, and findability checks must hold through
// every structural transition — growth rebuilds, backward-shift erasure
// inside dense clusters, and compaction — not just at rest.
TEST(DirectoryTest, CheckInvariantsHoldsThroughStructuralChurn) {
  Directory d(0);
  d.check_invariants();  // empty slice is already well-formed

  constexpr unsigned kLines = 2000;
  for (Addr a = 0; a < kLines; ++a) {
    DirEntry& e = d.entry(a * 32);  // sequential keys: dense probe runs
    e.state = DirEntry::State::kShared;
    e.sharers = 1;
    if (a % 256 == 255) d.check_invariants();  // across growth rebuilds
  }
  d.check_invariants();

  // Backward-shift erasure from the middle of clusters is exactly where a
  // probe-chain bug would leave an unreachable key or an over-long probe.
  for (Addr a = 0; a < kLines; a += 3) {
    d.erase(a * 32);
    if (a % 300 == 0) d.check_invariants();
  }
  d.check_invariants();

  for (Addr a = 1; a < kLines; a += 3)
    d.entry(a * 32).state = DirEntry::State::kUncached;
  for (Addr a = 1; a < kLines; a += 3) d.entry(a * 32).sharers = 0;
  d.compact();
  d.check_invariants();
}

// Randomized model check: the flat open-addressing slice must behave like
// a plain map through inserts, mutations, growth, in-place erasure, and
// compaction.
TEST(DirectoryTest, RandomizedLockstepAgainstMapModel) {
  Directory d(0);
  std::unordered_map<Addr, DirEntry> model;
  std::uint64_t x = 0xD1B54A32D192ED03ull;  // xorshift64
  auto rnd = [&x]() {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    return x;
  };
  for (int i = 0; i < 50000; ++i) {
    // Two dense regions plus a sparse tail to stress probe chains.
    const std::uint64_t sel = rnd() % 3;
    const Addr a = sel == 0 ? (rnd() % 4096) * 32
                 : sel == 1 ? (Addr{1} << 32) + (rnd() % 4096) * 32
                            : (rnd() % (Addr{1} << 40)) & ~Addr{31};
    const unsigned op = rnd() % 10;
    if (op < 5) {
      DirEntry& e = d.entry(a);
      DirEntry& m = model[a];
      const auto st = static_cast<DirEntry::State>(rnd() % 3);
      const std::uint64_t sharers = rnd();
      e.state = st; e.sharers = sharers;
      m.state = st; m.sharers = sharers;
    } else if (op < 8) {
      d.erase(a);
      model.erase(a);
      ASSERT_EQ(d.tracked_lines(), model.size());
    } else if (op < 9) {
      const DirEntry p = d.peek(a);
      const auto it = model.find(a);
      const DirEntry m = it == model.end() ? DirEntry{} : it->second;
      ASSERT_EQ(p.state, m.state);
      ASSERT_EQ(p.sharers, m.sharers);
    } else {
      d.compact();
      for (auto it = model.begin(); it != model.end();) {
        if (it->second.state == DirEntry::State::kUncached &&
            it->second.sharers == 0)
          it = model.erase(it);
        else
          ++it;
      }
      ASSERT_EQ(d.tracked_lines(), model.size());
    }
  }
  ASSERT_EQ(d.tracked_lines(), model.size());
  for (const auto& [addr, m] : model) {
    const DirEntry p = d.peek(addr);
    ASSERT_EQ(p.state, m.state) << addr;
    ASSERT_EQ(p.sharers, m.sharers) << addr;
  }
}

}  // namespace
}  // namespace dsm::coh
