// fabric_batch_diff_test.cpp — randomized lockstep differential test of
// CoherenceFabric::access_batch against the serial access() path, in the
// style of policy_ref_diff_test. Two fabrics own private Network /
// HomeMap / MemController state and consume the identical access stream —
// one op at a time on the serial side, kBatch ops at a time on the
// batched side, with the advance hook replaying the driver's `now += 7`
// clock between members. Batching is specified to be a host-side
// optimization with NO simulated effect, so every AccessOutcome field,
// every per-node counter, and the full cache/directory state must match
// at every step, for every batch size, under all three protocols.
//
// The conflict suites force the degenerate cases the staged stage-1 walk
// must survive: members of one batch hitting the same line (write-write
// included) and distinct lines of the same cache set, where a staged
// FillCursor's victim prediction is invalidated by an earlier member and
// stage 2 must fall back to a fresh walk.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "coherence/fabric.hpp"
#include "common/config.hpp"
#include "memory/home_map.hpp"
#include "network/network.hpp"

namespace dsm::coh {
namespace {

using mem::LineState;

// Small caches force the eviction/writeback paths constantly; the node
// count keeps the sharer fan-out and c2c traffic realistic.
MachineConfig diff_config(unsigned nodes, Protocol proto) {
  MachineConfig cfg = default_config(nodes);
  cfg.protocol = proto;
  cfg.l1.size_bytes = 1024;
  cfg.l2.size_bytes = 4096;
  cfg.l2.associativity = 2;
  EXPECT_EQ(cfg.validate(), "");
  return cfg;
}

struct StreamGen {
  std::uint64_t state;
  explicit StreamGen(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

// The batched side's clock hook: member i+1 runs 7 cycles after member i,
// exactly like the serial loop's `now += 7` per op.
struct Tick {
  Cycle now = 0;
};

Cycle tick_advance(void* ctx, std::size_t /*index*/,
                   const AccessOutcome& /*out*/) {
  auto* t = static_cast<Tick*>(ctx);
  t->now += 7;
  return t->now;
}

void compare_state(CoherenceFabric& serial, CoherenceFabric& batched,
                   mem::HomeMap& map_s, mem::HomeMap& map_b, unsigned nodes,
                   const char* what) {
  for (NodeId n = 0; n < nodes; ++n) {
    ASSERT_EQ(batched.l1(n).resident_lines(), serial.l1(n).resident_lines())
        << what << " node " << n;
    ASSERT_EQ(batched.l2(n).resident_lines(), serial.l2(n).resident_lines())
        << what << " node " << n;
    for (const Addr line : serial.l2(n).resident_lines()) {
      EXPECT_EQ(batched.l2(n).state(line), serial.l2(n).state(line))
          << what << " node " << n;
      const DirEntry eb = batched.directory(map_b.peek_home(line)).peek(line);
      const DirEntry es = serial.directory(map_s.peek_home(line)).peek(line);
      EXPECT_EQ(eb.state, es.state) << what;
      EXPECT_EQ(eb.sharers, es.sharers) << what;
      EXPECT_EQ(eb.owner, es.owner) << what;
    }
    for (const Addr line : serial.l1(n).resident_lines())
      EXPECT_EQ(batched.l1(n).state(line), serial.l1(n).state(line))
          << what << " node " << n;
    ASSERT_EQ(batched.l2(n).evictions(), serial.l2(n).evictions())
        << what << " node " << n;
    ASSERT_EQ(batched.l2(n).invalidations_received(),
              serial.l2(n).invalidations_received())
        << what << " node " << n;
    ASSERT_EQ(batched.directory(n).tracked_lines(),
              serial.directory(n).tracked_lines())
        << what << " node " << n;
  }
}

// Drives both fabrics over `ops` randomized accesses at batch size
// `batch`, checking outcomes per op and counters/invariants periodically.
// `next_addr` maps one random draw to an address, so the conflict suites
// can reuse the whole harness with a denser pool.
template <typename AddrFn>
void run_diff(Protocol proto, unsigned batch, std::uint64_t seed,
              std::uint64_t ops, AddrFn next_addr, unsigned l1_assoc = 0) {
  constexpr unsigned kNodes = 4;
  MachineConfig cfg = diff_config(kNodes, proto);
  if (l1_assoc != 0) cfg.l1.associativity = l1_assoc;
  ASSERT_EQ(cfg.validate(), "");

  net::Network net_s(cfg), net_b(cfg);
  mem::HomeMap map_s(kNodes, cfg.memory.page_bytes,
                     mem::Placement::kRoundRobin);
  mem::HomeMap map_b(kNodes, cfg.memory.page_bytes,
                     mem::Placement::kRoundRobin);
  CoherenceFabric serial(cfg, net_s, map_s);
  CoherenceFabric batched(cfg, net_b, map_b);

  StreamGen gen(seed);
  CoherenceFabric::AccessReq reqs[CoherenceFabric::kMaxBatch];
  AccessOutcome b_outs[CoherenceFabric::kMaxBatch];
  AccessOutcome s_outs[CoherenceFabric::kMaxBatch];

  Cycle now_s = 0;
  Tick tick;
  for (std::uint64_t op = 0; op < ops;) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(batch, ops - op));
    for (std::size_t k = 0; k < n; ++k) {
      reqs[k].node = static_cast<NodeId>(gen.next() % kNodes);
      reqs[k].write = (gen.next() % 100) < 40;
      reqs[k].addr = next_addr(gen.next());
    }
    // Serial side: one op at a time.
    for (std::size_t k = 0; k < n; ++k) {
      now_s += 7;
      s_outs[k] =
          serial.access(reqs[k].node, reqs[k].addr, reqs[k].write, now_s);
    }
    // Batched side: one call, the hook supplies the same clock sequence.
    // The hook also fires after the LAST member (its return value is
    // simply unused), so back its trailing +7 out to land on the serial
    // clock.
    tick.now += 7;
    const std::size_t done = batched.access_batch(
        std::span<const CoherenceFabric::AccessReq>(reqs, n),
        std::span<AccessOutcome>(b_outs, n), tick.now, &tick_advance, &tick);
    ASSERT_EQ(done, n) << "op " << op;
    tick.now -= 7;
    ASSERT_EQ(tick.now, now_s);

    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_EQ(b_outs[k].latency, s_outs[k].latency)
          << "op " << op + k << " batch " << batch;
      ASSERT_EQ(b_outs[k].source, s_outs[k].source)
          << "op " << op + k << " batch " << batch;
      ASSERT_EQ(b_outs[k].home, s_outs[k].home) << "op " << op + k;
      ASSERT_EQ(b_outs[k].l1_hit, s_outs[k].l1_hit) << "op " << op + k;
      ASSERT_EQ(b_outs[k].invalidations, s_outs[k].invalidations)
          << "op " << op + k;
      ASSERT_EQ(b_outs[k].write, s_outs[k].write) << "op " << op + k;
    }
    op += n;

    if (op % 10'000 < batch) {
      for (NodeId q = 0; q < kNodes; ++q) {
        const auto& ss = serial.stats(q);
        const auto& sb = batched.stats(q);
        ASSERT_EQ(sb.l1_hits, ss.l1_hits) << "op " << op << " node " << q;
        ASSERT_EQ(sb.l2_hits, ss.l2_hits) << "op " << op << " node " << q;
        ASSERT_EQ(sb.local_mem, ss.local_mem) << "op " << op << " node " << q;
        ASSERT_EQ(sb.remote_mem, ss.remote_mem)
            << "op " << op << " node " << q;
        ASSERT_EQ(sb.cache_to_cache, ss.cache_to_cache)
            << "op " << op << " node " << q;
        ASSERT_EQ(sb.upgrades, ss.upgrades) << "op " << op << " node " << q;
        ASSERT_EQ(sb.invalidations_sent, ss.invalidations_sent)
            << "op " << op << " node " << q;
        ASSERT_EQ(sb.writebacks, ss.writebacks)
            << "op " << op << " node " << q;
      }
      batched.check_invariants();
    }
  }

  compare_state(serial, batched, map_s, map_b, kNodes, "terminal");
  batched.check_invariants();
  serial.check_invariants();
}

// Mix: mostly a small contended pool (sharing, invalidations, upgrades,
// c2c), the rest a wider range (evictions, cold misses) — the
// policy_ref_diff_test stream.
Addr mixed_addr(std::uint64_t r) {
  return (r % 4 != 0) ? (r / 4 % 512) * 32 : (r / 4 % (1 << 14)) * 32;
}

// Dense pool: two distinct lines of L2 set 0 plus their set-0 aliases and
// one set-1 neighbor. Every 16-member batch carries same-line repeats
// (write-write included) and same-set conflicts whose staged victim
// prediction an earlier member overturns.
Addr conflict_addr(std::uint64_t r) {
  // 32B lines, 4096B/2-way L2 -> 64 sets; addr k*2048 all map to set 0.
  static constexpr Addr kPool[] = {0, 2048, 4096, 6144, 32, 2080};
  return kPool[r % (sizeof(kPool) / sizeof(kPool[0]))];
}

class FabricBatchDiffTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(FabricBatchDiffTest, BatchedPathMatchesSerialLockstep) {
  // 70k ops per batch size x {1,4,16} = 210k differential ops/protocol.
  for (const unsigned batch : {1u, 4u, 16u})
    run_diff(GetParam(), batch, 0xba7c4 + batch, 70'000, mixed_addr);
}

TEST_P(FabricBatchDiffTest, SameLineAndSameSetConflictBatchesMatchSerial) {
  for (const unsigned batch : {4u, 16u})
    run_diff(GetParam(), batch, 0xc0f11c7, 20'000, conflict_addr);
}

TEST_P(FabricBatchDiffTest, AssociativeL1VictimPredictionMatchesSerial) {
  // 2-way L1: the staged walk's victim choice is LRU-dependent in BOTH
  // levels, so stale-cursor fallbacks trigger in L1 sets too.
  for (const unsigned batch : {4u, 16u})
    run_diff(GetParam(), batch, 0xa550c, 40'000, mixed_addr,
             /*l1_assoc=*/2);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, FabricBatchDiffTest,
                         ::testing::Values(Protocol::kMsi, Protocol::kMesi,
                                           Protocol::kMoesi),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return std::string(protocol_name(info.param));
                         });

}  // namespace
}  // namespace dsm::coh
