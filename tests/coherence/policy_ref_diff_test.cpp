// policy_ref_diff_test.cpp — randomized lockstep differential test of the
// table-driven (CohPolicy) fabric against a retained reference
// implementation of the pre-seam inline MESI logic, in the style of
// cache_soa_diff_test. The reference below is the old
// CoherenceFabric::access/directory_request/fill_hierarchy/
// handle_l2_eviction code verbatim (modulo test-local naming): hard-coded
// E/M writability, the silent E->M store upgrade, E-grant to a sole
// reader, owner downgrade + sharing writeback on a dirty read probe, and
// the probe-free dirty-eviction erase. Both fabrics own private Network /
// HomeMap / MemController state and are driven with the identical access
// stream; every AccessOutcome field, every per-node counter, and the
// full cache/directory state must match at every step — any behavioral
// drift the MESI tables introduce fails here with the operation index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "coherence/fabric.hpp"
#include "common/config.hpp"
#include "memory/home_map.hpp"
#include "network/network.hpp"

namespace dsm::coh {
namespace {

using mem::LineState;
using net::TrafficClass;

// ---- reference: the pre-policy-seam MESI fabric, retained verbatim ----

class RefFabric {
 public:
  RefFabric(const MachineConfig& cfg, net::Network& network,
            mem::HomeMap& home_map)
      : cfg_(cfg), network_(network), home_map_(&home_map) {
    nodes_.reserve(cfg.num_nodes);
    for (NodeId n = 0; n < cfg.num_nodes; ++n) nodes_.emplace_back(cfg, n);
  }

  AccessOutcome access(NodeId node, Addr addr, bool is_write, Cycle now) {
    Node& me = nodes_[node];
    const Addr line = me.l2.line_of(addr);

    AccessOutcome out;
    out.write = is_write;
    out.home = home_map_->home_of(line, node);
    if (is_write) ++me.stats.stores; else ++me.stats.loads;

    const mem::Cache::LineRef w1 = me.l1.lookup(line);
    const LineState s1 = me.l1.state_of(w1);
    if (s1 != LineState::kInvalid) {
      const bool writable =
          (s1 == LineState::kModified || s1 == LineState::kExclusive);
      if (!is_write || writable) {
        me.l1.touch(w1);
        if (is_write && s1 == LineState::kExclusive) {
          me.l1.set_state(w1, LineState::kModified);
          const mem::Cache::LineRef w2 = me.l2.lookup(line);
          me.l2.set_state(w2, LineState::kModified);
        }
        ++me.stats.l1_hits;
        out.l1_hit = true;
        out.latency = cfg_.l1.latency_cycles;
        out.source = DataSource::kL1;
        return out;
      }
    } else {
      me.l1.record_miss();
    }

    Cycle lat = cfg_.l1.latency_cycles;

    const mem::Cache::LineRef w2 = me.l2.lookup(line);
    const LineState s2 = me.l2.state_of(w2);
    const bool l2_has_data = (s2 != LineState::kInvalid);
    const bool l2_writable =
        (s2 == LineState::kModified || s2 == LineState::kExclusive);
    lat += cfg_.l2.latency_cycles;
    if (l2_has_data && (!is_write || l2_writable)) {
      me.l2.touch(w2);
      ++me.stats.l2_hits;
      LineState grant = s2;
      if (is_write) {
        grant = LineState::kModified;
        me.l2.set_state(w2, LineState::kModified);
      }
      if (w1) {
        me.l1.touch(w1);
        me.l1.set_state(w1, grant);
      } else {
        const auto v1 = me.l1.fill(line, grant);
        if (v1 && v1->state == LineState::kModified)
          me.l2.set_state(me.l2.lookup(v1->line_addr), LineState::kModified);
      }
      out.latency = lat;
      out.source = DataSource::kL2;
      return out;
    }
    if (l2_has_data) me.l2.touch(w2);

    lat += directory_request(node, line, is_write, now + lat, out, w1, w2);
    out.latency = lat;
    return out;
  }

  const mem::Cache& l1(NodeId n) const { return nodes_[n].l1; }
  const mem::Cache& l2(NodeId n) const { return nodes_[n].l2; }
  const Directory& dir(NodeId n) const { return nodes_[n].dir; }
  const NodeCoherenceStats& stats(NodeId n) const { return nodes_[n].stats; }

 private:
  struct Node {
    mem::Cache l1;
    mem::Cache l2;
    Directory dir;
    mem::MemController ctrl;
    NodeCoherenceStats stats;
    Node(const MachineConfig& cfg, NodeId id)
        : l1(cfg.l1), l2(cfg.l2), dir(id), ctrl(cfg, id) {}
  };

  unsigned control_bytes() const { return 8; }
  unsigned data_bytes() const { return cfg_.l2.line_bytes; }

  Cycle directory_request(NodeId requestor, Addr line, bool is_write,
                          Cycle now, AccessOutcome& out,
                          mem::Cache::LineRef l1_ref,
                          mem::Cache::LineRef l2_ref) {
    Node& me = nodes_[requestor];
    const NodeId home = out.home;
    Node& h = nodes_[home];
    Cycle lat = 0;

    lat += network_.message_latency(requestor, home, control_bytes(), now,
                                    TrafficClass::kCoherence);
    lat += cfg_.memory.directory_latency_cycles;

    DirEntry& e = h.dir.entry(line);
    const bool requestor_had_data = static_cast<bool>(l2_ref);
    LineState grant = LineState::kInvalid;

    switch (e.state) {
      case DirEntry::State::kUncached: {
        lat += h.ctrl.request(line, now + lat, data_bytes(), requestor);
        lat += network_.message_latency(home, requestor, data_bytes(),
                                        now + lat, TrafficClass::kData);
        grant = is_write ? LineState::kModified : LineState::kExclusive;
        e.state = DirEntry::State::kExclusive;
        e.sharers = 0;
        e.add_sharer(requestor);
        e.owner = requestor;
        out.source = (home == requestor) ? DataSource::kLocalMem
                                         : DataSource::kRemoteMem;
        if (home == requestor) ++me.stats.local_mem;
        else ++me.stats.remote_mem;
        break;
      }
      case DirEntry::State::kShared: {
        if (is_write) {
          Cycle max_inval = 0;
          for (NodeId q = 0; q < nodes_.size(); ++q) {
            if (q == requestor || !e.is_sharer(q)) continue;
            Cycle t = network_.message_latency(home, q, control_bytes(),
                                               now + lat,
                                               TrafficClass::kCoherence);
            nodes_[q].l1.invalidate(line);
            nodes_[q].l2.invalidate(line);
            t += network_.message_latency(q, home, control_bytes(),
                                          now + lat + t,
                                          TrafficClass::kCoherence);
            max_inval = std::max(max_inval, t);
            ++me.stats.invalidations_sent;
            ++out.invalidations;
          }
          lat += max_inval;
          if (requestor_had_data) {
            lat += network_.message_latency(home, requestor, control_bytes(),
                                            now + lat,
                                            TrafficClass::kCoherence);
            out.source = DataSource::kUpgrade;
            ++me.stats.upgrades;
          } else {
            lat += h.ctrl.request(line, now + lat, data_bytes(), requestor);
            lat += network_.message_latency(home, requestor, data_bytes(),
                                            now + lat, TrafficClass::kData);
            out.source = (home == requestor) ? DataSource::kLocalMem
                                             : DataSource::kRemoteMem;
            if (home == requestor) ++me.stats.local_mem;
            else ++me.stats.remote_mem;
          }
          grant = LineState::kModified;
          e.state = DirEntry::State::kExclusive;
          e.sharers = 0;
          e.add_sharer(requestor);
          e.owner = requestor;
        } else {
          lat += h.ctrl.request(line, now + lat, data_bytes(), requestor);
          lat += network_.message_latency(home, requestor, data_bytes(),
                                          now + lat, TrafficClass::kData);
          grant = LineState::kShared;
          e.add_sharer(requestor);
          out.source = (home == requestor) ? DataSource::kLocalMem
                                           : DataSource::kRemoteMem;
          if (home == requestor) ++me.stats.local_mem;
          else ++me.stats.remote_mem;
        }
        break;
      }
      case DirEntry::State::kExclusive: {
        const NodeId q = e.owner;
        Node& owner = nodes_[q];
        lat += network_.message_latency(home, q, control_bytes(), now + lat,
                                        TrafficClass::kCoherence);
        const mem::Cache::LineRef ow1 = owner.l1.lookup(line);
        const mem::Cache::LineRef ow2 = owner.l2.lookup(line);
        const LineState owner_l1 = owner.l1.state_of(ow1);
        const LineState owner_l2 = owner.l2.state_of(ow2);
        const bool was_dirty = owner_l1 == LineState::kModified ||
                               owner_l2 == LineState::kModified;
        if (is_write) {
          owner.l1.invalidate(ow1);
          owner.l2.invalidate(ow2);
          ++me.stats.invalidations_sent;
          ++out.invalidations;
          e.sharers = 0;
          e.add_sharer(requestor);
          e.owner = requestor;
          grant = LineState::kModified;
        } else {
          owner.l1.downgrade(ow1);
          owner.l2.downgrade(ow2);
          if (was_dirty) {
            h.ctrl.request(line, now + lat, data_bytes(), q);
            network_.message_latency(q, home, data_bytes(), now + lat,
                                     TrafficClass::kData);
            ++owner.stats.writebacks;
          }
          e.state = DirEntry::State::kShared;
          e.add_sharer(requestor);
          e.owner = kNoNode;
          grant = LineState::kShared;
        }
        lat += network_.message_latency(q, requestor, data_bytes(), now + lat,
                                        TrafficClass::kData);
        out.source = DataSource::kRemoteCache;
        ++me.stats.cache_to_cache;
        break;
      }
      case DirEntry::State::kOwned:
        ADD_FAILURE() << "reference MESI directory reached kOwned";
        break;
    }

    if (out.source == DataSource::kUpgrade) {
      me.l2.set_state(l2_ref, LineState::kModified);
      if (l1_ref) {
        me.l1.set_state(l1_ref, LineState::kModified);
        me.l1.touch(l1_ref);
      } else {
        const auto v1 = me.l1.fill(line, LineState::kModified);
        if (v1 && v1->state == LineState::kModified)
          me.l2.set_state(me.l2.lookup(v1->line_addr), LineState::kModified);
      }
    } else {
      lat += fill_hierarchy(requestor, line, grant, now + lat);
    }
    return lat;
  }

  Cycle fill_hierarchy(NodeId requestor, Addr line, LineState st, Cycle now) {
    Node& me = nodes_[requestor];
    Cycle lat = 0;
    const auto v2 = me.l2.fill(line, st);
    if (v2) lat += handle_l2_eviction(requestor, *v2, now);
    const auto v1 = me.l1.fill(line, st);
    if (v1 && v1->state == LineState::kModified)
      me.l2.set_state(me.l2.lookup(v1->line_addr), LineState::kModified);
    return lat;
  }

  Cycle handle_l2_eviction(NodeId evictor, const mem::Victim& v, Cycle now) {
    Node& me = nodes_[evictor];
    const LineState l1_state = me.l1.invalidate(v.line_addr);
    const bool dirty = v.state == LineState::kModified ||
                       l1_state == LineState::kModified;

    const NodeId vhome = home_map_->home_of(v.line_addr, evictor);
    Node& h = nodes_[vhome];

    if (dirty) {
      ++me.stats.writebacks;
      const Cycle arrive =
          now + network_.message_latency(evictor, vhome, data_bytes(), now,
                                         TrafficClass::kData);
      h.ctrl.request(v.line_addr, arrive, data_bytes(), evictor);
      h.dir.erase(v.line_addr);
      return 0;
    }

    DirEntry& e = h.dir.entry(v.line_addr);
    e.remove_sharer(evictor);
    if (e.state == DirEntry::State::kExclusive && e.owner == evictor) {
      h.dir.erase(v.line_addr);
    } else if (e.sharer_count() == 0) {
      h.dir.erase(v.line_addr);
    }
    return 0;
  }

  const MachineConfig& cfg_;
  net::Network& network_;
  mem::HomeMap* home_map_;
  std::vector<Node> nodes_;
};

// ---- lockstep driver ----

// Small caches force the eviction/writeback paths constantly; the node
// count keeps the sharer fan-out and c2c traffic realistic.
MachineConfig diff_config(unsigned nodes) {
  MachineConfig cfg = default_config(nodes);
  cfg.l1.size_bytes = 1024;
  cfg.l2.size_bytes = 4096;
  cfg.l2.associativity = 2;
  EXPECT_EQ(cfg.validate(), "");
  return cfg;
}

struct StreamGen {
  std::uint64_t state;
  explicit StreamGen(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

TEST(PolicyRefDiffTest, MesiTablesMatchInlineReferenceLockstep) {
  constexpr unsigned kNodes = 4;
  constexpr int kOps = 200'000;
  const MachineConfig cfg = diff_config(kNodes);

  // Two private copies of every stateful component (network contention
  // epochs, controller occupancy, caches, directories): the only shared
  // input is the access stream.
  net::Network net_a(cfg), net_b(cfg);
  mem::HomeMap map_a(kNodes, cfg.memory.page_bytes,
                     mem::Placement::kRoundRobin);
  mem::HomeMap map_b(kNodes, cfg.memory.page_bytes,
                     mem::Placement::kRoundRobin);
  CoherenceFabric fabric(cfg, net_a, map_a);  // policy-driven, MESI tables
  RefFabric ref(cfg, net_b, map_b);           // inline MESI, pre-seam

  ASSERT_EQ(fabric.policy().protocol, Protocol::kMesi);

  StreamGen gen(0xd1ffu);
  Cycle now = 0;
  for (int op = 0; op < kOps; ++op) {
    const NodeId node = static_cast<NodeId>(gen.next() % kNodes);
    const bool write = (gen.next() % 100) < 40;
    // Mix: mostly a small contended pool (sharing, invalidations,
    // upgrades, c2c), the rest a wider range (evictions, cold misses).
    const std::uint64_t r = gen.next();
    const Addr addr = (r % 4 != 0)
                          ? (r / 4 % 512) * 32
                          : (r / 4 % (1 << 14)) * 32;
    now += 7;

    const AccessOutcome a = fabric.access(node, addr, write, now);
    const AccessOutcome b = ref.access(node, addr, write, now);
    ASSERT_EQ(a.latency, b.latency) << "op " << op;
    ASSERT_EQ(a.source, b.source) << "op " << op;
    ASSERT_EQ(a.home, b.home) << "op " << op;
    ASSERT_EQ(a.l1_hit, b.l1_hit) << "op " << op;
    ASSERT_EQ(a.invalidations, b.invalidations) << "op " << op;

    if (op % 10'000 == 0) {
      for (NodeId n = 0; n < kNodes; ++n) {
        const auto& sa = fabric.stats(n);
        const auto& sb = ref.stats(n);
        ASSERT_EQ(sa.l1_hits, sb.l1_hits) << "op " << op << " node " << n;
        ASSERT_EQ(sa.l2_hits, sb.l2_hits) << "op " << op << " node " << n;
        ASSERT_EQ(sa.local_mem, sb.local_mem) << "op " << op << " node " << n;
        ASSERT_EQ(sa.remote_mem, sb.remote_mem)
            << "op " << op << " node " << n;
        ASSERT_EQ(sa.cache_to_cache, sb.cache_to_cache)
            << "op " << op << " node " << n;
        ASSERT_EQ(sa.upgrades, sb.upgrades) << "op " << op << " node " << n;
        ASSERT_EQ(sa.invalidations_sent, sb.invalidations_sent)
            << "op " << op << " node " << n;
        ASSERT_EQ(sa.writebacks, sb.writebacks)
            << "op " << op << " node " << n;
      }
      fabric.check_invariants();
    }
  }

  // Terminal state equivalence: every resident line, state, and counter.
  for (NodeId n = 0; n < kNodes; ++n) {
    ASSERT_EQ(fabric.l1(n).resident_lines(), ref.l1(n).resident_lines());
    ASSERT_EQ(fabric.l2(n).resident_lines(), ref.l2(n).resident_lines());
    for (const Addr line : ref.l2(n).resident_lines()) {
      EXPECT_EQ(fabric.l2(n).state(line), ref.l2(n).state(line));
      const DirEntry ea = fabric.directory(map_a.peek_home(line)).peek(line);
      const DirEntry eb = ref.dir(map_b.peek_home(line)).peek(line);
      EXPECT_EQ(ea.state, eb.state);
      EXPECT_EQ(ea.sharers, eb.sharers);
      EXPECT_EQ(ea.owner, eb.owner);
    }
    for (const Addr line : ref.l1(n).resident_lines())
      EXPECT_EQ(fabric.l1(n).state(line), ref.l1(n).state(line));
    ASSERT_EQ(fabric.l2(n).evictions(), ref.l2(n).evictions());
    ASSERT_EQ(fabric.l2(n).invalidations_received(),
              ref.l2(n).invalidations_received());
    ASSERT_EQ(fabric.directory(n).tracked_lines(),
              ref.dir(n).tracked_lines());
  }
  fabric.check_invariants();
}

}  // namespace
}  // namespace dsm::coh
