#include "coherence/fabric.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/config.hpp"
#include "memory/home_map.hpp"
#include "network/network.hpp"

namespace dsm::coh {
namespace {

using mem::LineState;

/// Harness: a fabric over n nodes with round-robin page homes.
struct Rig {
  MachineConfig cfg;
  net::Network network;
  mem::HomeMap home_map;
  CoherenceFabric fabric;

  explicit Rig(unsigned nodes)
      : cfg(default_config(nodes)),
        network(cfg),
        home_map(nodes, cfg.memory.page_bytes, mem::Placement::kRoundRobin),
        fabric(cfg, network, home_map) {}
};

// Address homed at node `h` (page h of the round-robin map).
Addr homed_at(const Rig& r, NodeId h, Addr offset = 0) {
  return h * r.cfg.memory.page_bytes + offset;
}

TEST(FabricTest, ColdReadMissGrantsExclusive) {
  Rig r(4);
  const Addr a = homed_at(r, 0);
  const auto out = r.fabric.access(0, a, /*write=*/false, 0);
  EXPECT_FALSE(out.l1_hit);
  EXPECT_EQ(out.source, DataSource::kLocalMem);
  EXPECT_EQ(r.fabric.l1(0).state(a), LineState::kExclusive);
  EXPECT_EQ(r.fabric.l2(0).state(a), LineState::kExclusive);
  const auto e = r.fabric.directory(0).peek(a);
  EXPECT_EQ(e.state, DirEntry::State::kExclusive);
  EXPECT_EQ(e.owner, 0u);
  r.fabric.check_invariants();
}

TEST(FabricTest, ReadAfterFillHitsL1) {
  Rig r(4);
  const Addr a = homed_at(r, 1);
  r.fabric.access(0, a, false, 0);
  const auto out = r.fabric.access(0, a, false, 100);
  EXPECT_TRUE(out.l1_hit);
  EXPECT_EQ(out.latency, r.cfg.l1.latency_cycles);
  EXPECT_EQ(out.source, DataSource::kL1);
}

TEST(FabricTest, RemoteReadCostsMoreThanLocal) {
  Rig r(8);
  const auto local = r.fabric.access(0, homed_at(r, 0), false, 0);
  const auto remote = r.fabric.access(0, homed_at(r, 7), false, 0);
  EXPECT_EQ(local.source, DataSource::kLocalMem);
  EXPECT_EQ(remote.source, DataSource::kRemoteMem);
  EXPECT_GT(remote.latency, local.latency);
}

TEST(FabricTest, SilentExclusiveToModifiedUpgrade) {
  Rig r(4);
  const Addr a = homed_at(r, 0);
  r.fabric.access(0, a, false, 0);  // E
  const auto out = r.fabric.access(0, a, true, 10);  // silent E->M
  EXPECT_TRUE(out.l1_hit);
  EXPECT_EQ(out.latency, r.cfg.l1.latency_cycles);
  EXPECT_EQ(r.fabric.l1(0).state(a), LineState::kModified);
  EXPECT_EQ(r.fabric.l2(0).state(a), LineState::kModified);
  r.fabric.check_invariants();
}

TEST(FabricTest, SecondReaderDowngradesOwnerToShared) {
  Rig r(4);
  const Addr a = homed_at(r, 2);
  r.fabric.access(0, a, false, 0);   // node 0: E
  const auto out = r.fabric.access(1, a, false, 100);
  EXPECT_EQ(out.source, DataSource::kRemoteCache);
  EXPECT_EQ(r.fabric.l2(0).state(a), LineState::kShared);
  EXPECT_EQ(r.fabric.l2(1).state(a), LineState::kShared);
  const auto e = r.fabric.directory(2).peek(a);
  EXPECT_EQ(e.state, DirEntry::State::kShared);
  EXPECT_TRUE(e.is_sharer(0));
  EXPECT_TRUE(e.is_sharer(1));
  r.fabric.check_invariants();
}

TEST(FabricTest, DirtyOwnerWritesBackOnRemoteRead) {
  Rig r(4);
  const Addr a = homed_at(r, 2);
  r.fabric.access(0, a, true, 0);  // node 0: M
  const auto wb_before = r.fabric.stats(0).writebacks;
  r.fabric.access(1, a, false, 100);
  EXPECT_EQ(r.fabric.stats(0).writebacks, wb_before + 1);
  EXPECT_EQ(r.fabric.l2(0).state(a), LineState::kShared);
  r.fabric.check_invariants();
}

TEST(FabricTest, WriteInvalidatesAllSharers) {
  Rig r(8);
  const Addr a = homed_at(r, 0);
  for (NodeId n = 0; n < 4; ++n) r.fabric.access(n, a, false, n * 10);
  const auto out = r.fabric.access(5, a, true, 1000);
  EXPECT_EQ(out.invalidations, 4u);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_FALSE(r.fabric.l1(n).probe(a)) << n;
    EXPECT_FALSE(r.fabric.l2(n).probe(a)) << n;
  }
  EXPECT_EQ(r.fabric.l2(5).state(a), LineState::kModified);
  const auto e = r.fabric.directory(0).peek(a);
  EXPECT_EQ(e.state, DirEntry::State::kExclusive);
  EXPECT_EQ(e.owner, 5u);
  r.fabric.check_invariants();
}

TEST(FabricTest, SharedUpgradeTransfersNoData) {
  Rig r(4);
  const Addr a = homed_at(r, 0);
  r.fabric.access(0, a, false, 0);
  r.fabric.access(1, a, false, 10);  // both S now
  const auto out = r.fabric.access(0, a, true, 100);
  EXPECT_EQ(out.source, DataSource::kUpgrade);
  EXPECT_EQ(out.invalidations, 1u);
  EXPECT_EQ(r.fabric.l2(0).state(a), LineState::kModified);
  EXPECT_FALSE(r.fabric.l2(1).probe(a));
  EXPECT_EQ(r.fabric.stats(0).upgrades, 1u);
  r.fabric.check_invariants();
}

TEST(FabricTest, WriteMissStealsFromDirtyOwner) {
  Rig r(4);
  const Addr a = homed_at(r, 3);
  r.fabric.access(0, a, true, 0);  // node 0: M
  const auto out = r.fabric.access(1, a, true, 100);
  EXPECT_EQ(out.source, DataSource::kRemoteCache);
  EXPECT_FALSE(r.fabric.l2(0).probe(a));
  EXPECT_EQ(r.fabric.l2(1).state(a), LineState::kModified);
  const auto e = r.fabric.directory(3).peek(a);
  EXPECT_EQ(e.owner, 1u);
  r.fabric.check_invariants();
}

TEST(FabricTest, PingPongWritesAlternateOwnership) {
  Rig r(2);
  const Addr a = homed_at(r, 0);
  for (int i = 0; i < 6; ++i) {
    const NodeId w = i % 2;
    r.fabric.access(w, a, true, 100 * i);
    EXPECT_EQ(r.fabric.directory(0).peek(a).owner, w);
    r.fabric.check_invariants();
  }
  EXPECT_GE(r.fabric.stats(0).cache_to_cache +
                r.fabric.stats(1).cache_to_cache,
            5u);
}

TEST(FabricTest, L2EvictionUpdatesDirectoryPrecisely) {
  Rig r(2);
  // Fill node 0's L2 beyond one set: walk addresses mapping to set 0.
  // L2: 2MB, 8-way, 32B lines -> 8192 sets, set stride = 8192*32 = 256kB.
  const Addr stride = 8192 * 32;
  const Addr base = 0;  // page 0 -> home 0
  for (unsigned i = 0; i < 9; ++i)  // 9 lines into an 8-way set
    r.fabric.access(0, base + i * stride, false, i * 10);
  // The first line was evicted; the directory must no longer track node 0.
  const auto e = r.fabric.directory(0).peek(base);
  EXPECT_EQ(e.state, DirEntry::State::kUncached);
  EXPECT_FALSE(r.fabric.l2(0).probe(base));
  EXPECT_FALSE(r.fabric.l1(0).probe(base));  // inclusion
  r.fabric.check_invariants();
}

TEST(FabricTest, DirtyL2EvictionWritesBack) {
  Rig r(2);
  const Addr stride = 8192 * 32;
  r.fabric.access(0, 0, true, 0);  // M in node 0
  const auto wb_before = r.fabric.stats(0).writebacks;
  for (unsigned i = 1; i < 9; ++i)
    r.fabric.access(0, i * stride, false, i * 10);
  EXPECT_EQ(r.fabric.stats(0).writebacks, wb_before + 1);
  EXPECT_EQ(r.fabric.directory(0).peek(0).state, DirEntry::State::kUncached);
  r.fabric.check_invariants();
}

TEST(FabricTest, StatsCountsSourcesCorrectly) {
  Rig r(4);
  r.fabric.access(0, homed_at(r, 0), false, 0);    // local mem
  r.fabric.access(0, homed_at(r, 1), false, 10);   // remote mem
  r.fabric.access(0, homed_at(r, 0), false, 20);   // L1 hit
  r.fabric.access(1, homed_at(r, 0), false, 30);   // c2c from node 0
  const auto& s0 = r.fabric.stats(0);
  EXPECT_EQ(s0.loads, 3u);
  EXPECT_EQ(s0.local_mem, 1u);
  EXPECT_EQ(s0.remote_mem, 1u);
  EXPECT_EQ(s0.l1_hits, 1u);
  EXPECT_EQ(r.fabric.stats(1).cache_to_cache, 1u);
}

TEST(FabricTest, FlushAllEmptiesCaches) {
  Rig r(2);
  r.fabric.access(0, homed_at(r, 0), true, 0);
  r.fabric.access(1, homed_at(r, 1), false, 0);
  r.fabric.flush_all();
  EXPECT_TRUE(r.fabric.l2(0).resident_lines().empty());
  EXPECT_TRUE(r.fabric.l2(1).resident_lines().empty());
}

// Randomized protocol fuzz: many nodes, few lines, random ops; invariants
// must hold after every access.
TEST(FabricTest, RandomizedInvariantFuzz) {
  Rig r(8);
  std::uint64_t seed = 0x1234;
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  for (int i = 0; i < 3000; ++i) {
    const NodeId n = next() % 8;
    const Addr a = (next() % 16) * 32;  // 16 lines in page 0
    const bool w = next() % 3 == 0;
    r.fabric.access(n, a, w, i * 7);
    if (i % 250 == 0) r.fabric.check_invariants();
  }
  r.fabric.check_invariants();
}

// The fabric erases a directory entry in place the moment a line's last
// cached copy disappears, so a slice tracks exactly the lines some cache
// still holds — no dead-entry sawtooth, at any node count. A long
// streaming run (8x the L2 per node) must therefore keep total tracked
// lines bounded by total L2 capacity throughout, not grow with every
// distinct line ever touched.
TEST(FabricTest, StreamingKeepsTrackedLinesAtLiveLines) {
  const unsigned nodes = 4;
  MachineConfig cfg = default_config(nodes);
  cfg.l2.size_bytes = 64 * 1024;  // 2048 lines -> evictions come quickly
  net::Network network(cfg);
  mem::HomeMap home_map(nodes, cfg.memory.page_bytes,
                        mem::Placement::kRoundRobin);
  CoherenceFabric fabric(cfg, network, home_map);

  const unsigned live_lines =
      static_cast<unsigned>(cfg.l2.size_bytes / cfg.l2.line_bytes);
  const unsigned distinct = 8 * live_lines * nodes;
  const auto tracked_total = [&] {
    std::size_t sum = 0;
    for (NodeId h = 0; h < nodes; ++h)
      sum += fabric.directory(h).tracked_lines();
    return sum;
  };
  for (unsigned i = 0; i < distinct; ++i) {
    fabric.access(i % nodes, Addr{i} * cfg.l2.line_bytes, false, i * 4);
    ASSERT_LE(tracked_total(), std::size_t{live_lines} * nodes);
  }
  EXPECT_LT(tracked_total(), distinct / 2);
  EXPECT_GE(tracked_total(), live_lines);
  fabric.check_invariants();
}

// On a single node the correspondence is exact: every access is a read
// granted Exclusive to the sole cacher, every L2 eviction erases that
// line's entry, so tracked lines == lines resident in the L2 after every
// single access (the in-place erase has no small-machine gate — unlike
// the old periodic compaction walk, it does no work a small machine
// would have to amortize).
TEST(FabricTest, SingleNodeTracksExactlyResidentLines) {
  MachineConfig cfg = default_config(1);
  cfg.l2.size_bytes = 64 * 1024;
  net::Network network(cfg);
  mem::HomeMap home_map(1, cfg.memory.page_bytes, mem::Placement::kRoundRobin);
  CoherenceFabric fabric(cfg, network, home_map);

  const unsigned live_lines =
      static_cast<unsigned>(cfg.l2.size_bytes / cfg.l2.line_bytes);
  const unsigned distinct = 8 * live_lines;
  for (unsigned i = 0; i < distinct; ++i) {
    fabric.access(0, Addr{i} * cfg.l2.line_bytes, false, i * 4);
    ASSERT_EQ(fabric.directory(0).tracked_lines(),
              std::min<std::size_t>(i + 1, live_lines));
  }
  fabric.check_invariants();
}

}  // namespace
}  // namespace dsm::coh
