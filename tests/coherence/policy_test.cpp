// policy_test.cpp — unit tests for the CohPolicy tables and the MSI /
// MOESI fabric behavior they drive (the MESI tables are covered by
// policy_ref_diff_test's lockstep comparison against the retained inline
// reference, and by fabric_test's behavior suite).
#include "coherence/policy.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "coherence/fabric.hpp"
#include "common/config.hpp"
#include "driver/sweep_spec.hpp"
#include "memory/home_map.hpp"
#include "network/network.hpp"

namespace dsm::coh {
namespace {

using mem::LineState;

// ---- the tables themselves ----

TEST(PolicyTest, PolicyForSelectsTheMatchingTable) {
  for (const Protocol p :
       {Protocol::kMsi, Protocol::kMesi, Protocol::kMoesi}) {
    const CohPolicy& pol = policy_for(p);
    EXPECT_EQ(pol.protocol, p);
    EXPECT_STREQ(pol.name, protocol_name(p));
  }
  EXPECT_EQ(&policy_for(Protocol::kMesi), &kMesiPolicy);
}

TEST(PolicyTest, WritabilityPerProtocol) {
  // Only M satisfies a store under MSI; MESI/MOESI add E; O never does
  // (it is dirty but shared — a store must still invalidate the sharers).
  for (const CohPolicy* pol : {&kMsiPolicy, &kMesiPolicy, &kMoesiPolicy}) {
    EXPECT_TRUE(store_permitted(*pol, LineState::kModified));
    EXPECT_FALSE(store_permitted(*pol, LineState::kInvalid));
    EXPECT_FALSE(store_permitted(*pol, LineState::kShared));
    EXPECT_FALSE(store_permitted(*pol, LineState::kOwned));
  }
  EXPECT_FALSE(store_permitted(kMsiPolicy, LineState::kExclusive));
  EXPECT_TRUE(store_permitted(kMesiPolicy, LineState::kExclusive));
  EXPECT_TRUE(store_permitted(kMoesiPolicy, LineState::kExclusive));
}

TEST(PolicyTest, ReachableStatesPerProtocol) {
  EXPECT_FALSE(state_allowed(kMsiPolicy, LineState::kExclusive));
  EXPECT_FALSE(state_allowed(kMsiPolicy, LineState::kOwned));
  EXPECT_TRUE(state_allowed(kMesiPolicy, LineState::kExclusive));
  EXPECT_FALSE(state_allowed(kMesiPolicy, LineState::kOwned));
  EXPECT_TRUE(state_allowed(kMoesiPolicy, LineState::kOwned));
  for (const CohPolicy* pol : {&kMsiPolicy, &kMesiPolicy, &kMoesiPolicy}) {
    EXPECT_TRUE(state_allowed(*pol, LineState::kInvalid));
    EXPECT_TRUE(state_allowed(*pol, LineState::kShared));
    EXPECT_TRUE(state_allowed(*pol, LineState::kModified));
  }
}

TEST(PolicyTest, SoleReaderGrant) {
  EXPECT_EQ(kMsiPolicy.sole_read_grant, LineState::kShared);
  EXPECT_EQ(kMsiPolicy.sole_read_dir, DirEntry::State::kShared);
  EXPECT_EQ(kMesiPolicy.sole_read_grant, LineState::kExclusive);
  EXPECT_EQ(kMoesiPolicy.sole_read_grant, LineState::kExclusive);
  EXPECT_FALSE(kMsiPolicy.has_owned);
  EXPECT_FALSE(kMesiPolicy.has_owned);
  EXPECT_TRUE(kMoesiPolicy.has_owned);
}

// ---- fabric behavior under the non-default tables ----

/// Harness: a fabric over n nodes with round-robin page homes.
struct Rig {
  MachineConfig cfg;
  net::Network network;
  mem::HomeMap home_map;
  CoherenceFabric fabric;

  explicit Rig(unsigned nodes, Protocol protocol)
      : cfg(make_cfg(nodes, protocol)),
        network(cfg),
        home_map(nodes, cfg.memory.page_bytes, mem::Placement::kRoundRobin),
        fabric(cfg, network, home_map) {}

  static MachineConfig make_cfg(unsigned nodes, Protocol protocol) {
    MachineConfig cfg = default_config(nodes);
    cfg.protocol = protocol;
    return cfg;
  }
};

// Address homed at node `h` (page h of the round-robin map).
Addr homed_at(const Rig& r, NodeId h, Addr offset = 0) {
  return h * r.cfg.memory.page_bytes + offset;
}

TEST(MsiFabricTest, ColdReadGrantsSharedNotExclusive) {
  Rig r(4, Protocol::kMsi);
  const Addr a = homed_at(r, 0);
  const auto out = r.fabric.access(0, a, /*write=*/false, 0);
  EXPECT_EQ(out.source, DataSource::kLocalMem);
  EXPECT_EQ(r.fabric.l1(0).state(a), LineState::kShared);
  EXPECT_EQ(r.fabric.l2(0).state(a), LineState::kShared);
  const auto e = r.fabric.directory(0).peek(a);
  EXPECT_EQ(e.state, DirEntry::State::kShared);
  EXPECT_EQ(e.owner, kNoNode);
  r.fabric.check_invariants();
}

TEST(MsiFabricTest, WriteAfterOwnReadPaysAnUpgrade) {
  // Under MESI this is the silent E->M case: zero directory traffic. MSI
  // granted only S, so the same pattern is a full upgrade transaction.
  Rig r(4, Protocol::kMsi);
  const Addr a = homed_at(r, 0);
  r.fabric.access(0, a, false, 0);
  const auto out = r.fabric.access(0, a, true, 100);
  EXPECT_FALSE(out.l1_hit);
  EXPECT_EQ(out.source, DataSource::kUpgrade);
  EXPECT_EQ(out.invalidations, 0u);
  EXPECT_EQ(r.fabric.stats(0).upgrades, 1u);
  EXPECT_EQ(r.fabric.l2(0).state(a), LineState::kModified);
  const auto e = r.fabric.directory(0).peek(a);
  EXPECT_EQ(e.state, DirEntry::State::kExclusive);
  EXPECT_EQ(e.owner, 0u);
  r.fabric.check_invariants();
}

TEST(MoesiFabricTest, DirtyReadProbeLeavesOwnedWithoutWriteback) {
  Rig r(4, Protocol::kMoesi);
  const Addr a = homed_at(r, 2);
  r.fabric.access(0, a, true, 0);  // node 0 takes the line M
  const auto out = r.fabric.access(1, a, false, 100);
  EXPECT_EQ(out.source, DataSource::kRemoteCache);
  // The dirty owner kept its data as Owned — no sharing writeback.
  EXPECT_EQ(r.fabric.l2(0).state(a), LineState::kOwned);
  EXPECT_EQ(r.fabric.l1(1).state(a), LineState::kShared);
  EXPECT_EQ(r.fabric.stats(0).writebacks, 0u);
  EXPECT_EQ(r.fabric.stats(1).cache_to_cache, 1u);
  const auto e = r.fabric.directory(2).peek(a);
  EXPECT_EQ(e.state, DirEntry::State::kOwned);
  EXPECT_EQ(e.owner, 0u);
  EXPECT_TRUE(e.is_sharer(0));
  EXPECT_TRUE(e.is_sharer(1));
  r.fabric.check_invariants();
}

TEST(MoesiFabricTest, SecondReaderIsForwardedByTheOwner) {
  Rig r(4, Protocol::kMoesi);
  const Addr a = homed_at(r, 2);
  r.fabric.access(0, a, true, 0);
  r.fabric.access(1, a, false, 100);
  const auto out = r.fabric.access(3, a, false, 200);
  EXPECT_EQ(out.source, DataSource::kRemoteCache);
  EXPECT_EQ(r.fabric.stats(3).cache_to_cache, 1u);
  EXPECT_EQ(r.fabric.stats(0).writebacks, 0u);
  const auto e = r.fabric.directory(2).peek(a);
  EXPECT_EQ(e.state, DirEntry::State::kOwned);
  EXPECT_EQ(e.owner, 0u);
  EXPECT_EQ(e.sharer_count(), 3u);
  r.fabric.check_invariants();
}

TEST(MoesiFabricTest, WriteToOwnedLineFetchesFromOwnerNotMemory) {
  Rig r(4, Protocol::kMoesi);
  const Addr a = homed_at(r, 2);
  r.fabric.access(0, a, true, 0);    // 0: M
  r.fabric.access(1, a, false, 100); // 0: O, 1: S, dir kOwned
  const auto mem_before = r.fabric.stats(3).local_mem +
                          r.fabric.stats(3).remote_mem;
  const auto out = r.fabric.access(3, a, true, 200);
  // Memory is stale under kOwned: the data must come from the owner.
  EXPECT_EQ(out.source, DataSource::kRemoteCache);
  EXPECT_EQ(out.invalidations, 2u);  // owner 0 and sharer 1
  EXPECT_EQ(r.fabric.stats(3).local_mem + r.fabric.stats(3).remote_mem,
            mem_before);
  EXPECT_EQ(r.fabric.l2(0).state(a), LineState::kInvalid);
  EXPECT_EQ(r.fabric.l2(1).state(a), LineState::kInvalid);
  EXPECT_EQ(r.fabric.l2(3).state(a), LineState::kModified);
  const auto e = r.fabric.directory(2).peek(a);
  EXPECT_EQ(e.state, DirEntry::State::kExclusive);
  EXPECT_EQ(e.owner, 3u);
  EXPECT_EQ(e.sharer_count(), 1u);
  r.fabric.check_invariants();
}

TEST(MoesiFabricTest, OwnerUpgradesItsOwnOwnedLine) {
  Rig r(4, Protocol::kMoesi);
  const Addr a = homed_at(r, 2);
  r.fabric.access(0, a, true, 0);
  r.fabric.access(1, a, false, 100);  // 0: O, 1: S
  const auto out = r.fabric.access(0, a, true, 200);
  EXPECT_EQ(out.source, DataSource::kUpgrade);
  EXPECT_EQ(out.invalidations, 1u);  // sharer 1 only
  EXPECT_EQ(r.fabric.l2(0).state(a), LineState::kModified);
  EXPECT_EQ(r.fabric.l2(1).state(a), LineState::kInvalid);
  const auto e = r.fabric.directory(2).peek(a);
  EXPECT_EQ(e.state, DirEntry::State::kExclusive);
  EXPECT_EQ(e.owner, 0u);
  r.fabric.check_invariants();
}

// Randomized fuzz under small caches: constant evictions exercise the
// O-line writeback path (dirty eviction that must demote the directory
// entry to kShared, not erase it, while S copies survive) and the MSI
// upgrade-heavy flow; invariants are checked throughout. Mirrors
// fabric_test's RandomizedInvariantFuzz for the non-MESI tables.
class PolicyFuzzTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(PolicyFuzzTest, RandomizedInvariantFuzz) {
  MachineConfig cfg = default_config(4);
  cfg.protocol = GetParam();
  cfg.l1.size_bytes = 1024;
  cfg.l2.size_bytes = 4096;
  cfg.l2.associativity = 2;
  ASSERT_EQ(cfg.validate(), "");
  net::Network network(cfg);
  mem::HomeMap home_map(4, cfg.memory.page_bytes,
                        mem::Placement::kRoundRobin);
  CoherenceFabric fabric(cfg, network, home_map);

  std::uint64_t state = 0xf00du + static_cast<unsigned>(GetParam());
  auto next = [&state] {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };

  Cycle now = 0;
  for (int op = 0; op < 60'000; ++op) {
    const NodeId node = static_cast<NodeId>(next() % 4);
    const bool write = (next() % 100) < 40;
    const std::uint64_t r = next();
    const Addr addr = (r % 4 != 0) ? (r / 4 % 512) * 32
                                   : (r / 4 % (1 << 14)) * 32;
    now += 7;
    fabric.access(node, addr, write, now);
    if (op % 5'000 == 0) fabric.check_invariants();
  }
  fabric.check_invariants();

  // Protocol signatures over the same stream: MSI never creates E (every
  // private read-modify pays an upgrade); MOESI never pays a sharing
  // writeback on a read probe (only evicted dirty lines write back).
  std::uint64_t upgrades = 0;
  for (NodeId n = 0; n < 4; ++n) upgrades += fabric.stats(n).upgrades;
  if (GetParam() == Protocol::kMsi) {
    EXPECT_GT(upgrades, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PolicyFuzzTest,
                         ::testing::Values(Protocol::kMsi, Protocol::kMesi,
                                           Protocol::kMoesi));

// ---- the sweep axis ----

TEST(ProtocolSweepTest, SeedAndLabelIgnoreAnEmptyProtocol) {
  driver::SpecPoint pt;
  pt.app = "LU";
  pt.nodes = 8;
  pt.detector = "bbv";
  pt.threshold = 0.5;
  pt.scale = apps::Scale::kTest;
  const std::uint64_t base_seed = driver::spec_seed(pt);
  const std::string base_label = driver::spec_label(pt);

  driver::SpecPoint with = pt;
  with.protocol = "moesi";
  EXPECT_NE(driver::spec_seed(with), base_seed);
  EXPECT_EQ(driver::spec_label(with), base_label + "/moesi");

  // Distinct protocols must draw distinct streams when the axis is swept.
  driver::SpecPoint other = with;
  other.protocol = "msi";
  EXPECT_NE(driver::spec_seed(other), driver::spec_seed(with));
}

TEST(ProtocolSweepTest, ExpandPutsProtocolInnermost) {
  driver::SweepSpec spec;
  spec.apps = {"LU"};
  spec.node_counts = {2, 4};
  spec.protocols = {"msi", "moesi"};
  const auto pts = spec.expand();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].protocol, "msi");
  EXPECT_EQ(pts[1].protocol, "moesi");
  EXPECT_EQ(pts[0].nodes, 2u);
  EXPECT_EQ(pts[2].nodes, 4u);
  for (std::size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(pts[i].index, i);
}

TEST(ProtocolSweepTest, ProtocolNamesRoundTrip) {
  for (const Protocol p :
       {Protocol::kMsi, Protocol::kMesi, Protocol::kMoesi}) {
    Protocol back = Protocol::kMesi;
    EXPECT_TRUE(protocol_from_name(protocol_name(p), &back));
    EXPECT_EQ(back, p);
  }
  Protocol out;
  EXPECT_FALSE(protocol_from_name("mosi", &out));
  EXPECT_FALSE(protocol_from_name("MESI", &out));
  EXPECT_FALSE(protocol_from_name("", &out));
}

TEST(ProtocolSweepTest, ControlBytesAreValidated) {
  MachineConfig cfg = default_config(4);
  cfg.network.control_bytes = 0;
  EXPECT_NE(cfg.validate().find("control_bytes"), std::string::npos);
  cfg.network.control_bytes = cfg.l2.line_bytes + 1;
  EXPECT_NE(cfg.validate().find("control message"), std::string::npos);
  cfg.network.control_bytes = 8;
  EXPECT_EQ(cfg.validate(), "");
}

}  // namespace
}  // namespace dsm::coh
