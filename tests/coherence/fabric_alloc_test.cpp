// fabric_alloc_test.cpp — extends the PR 2 allocation-counting invariant
// from Network::message_latency to the FULL per-access path: after
// warm-up, CoherenceFabric::access must never touch the heap, across
// every protocol case the synthetic stream exercises (L1/L2 hits, cold
// and capacity misses, upgrades with invalidation fan-out, cache-to-cache
// transfers, dirty writebacks, directory insert/erase).
//
// Warm-up is excluded because growth is real work done once: directory
// slices rebuild to their high-water capacity while the stream's working
// set is being established. Steady state — the millions of accesses every
// figure's runtime is made of — must be allocation-free: cache lanes are
// fixed at construction, directory erasure is in-place backward-shift,
// rebuilds rehash into retained spare lanes, and the victim/writeback
// path works in values and handles only.
#include "coherence/fabric.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "memory/home_map.hpp"
#include "network/network.hpp"
#include "obs/observability.hpp"

// Global operator new/delete replacements that count allocations, so the
// zero-allocation property is a regression-tested invariant, not a
// code-review promise. (Same pattern as tests/network/network_test.cpp;
// each gtest binary is its own process, so the replacements are local to
// this suite.)
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t sz) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dsm::coh {
namespace {

// The perf_hotpath mix, shrunk: streaming private misses (fill + evict +
// directory insert/erase every access once warm), a read-mostly shared
// set (hits and shared fills), and a contended write set (upgrades and
// invalidation fan-out).
struct StreamGen {
  unsigned nodes;
  Addr line;
  std::uint64_t priv_lines;
  std::vector<std::uint64_t> priv_pos;
  Rng rng{0x5eed5eedull};

  struct Access {
    NodeId node;
    Addr addr;
    bool write;
  };

  Access next(std::uint64_t i) {
    const NodeId node = static_cast<NodeId>(i % nodes);
    const std::uint64_t r = rng.next_u64();
    const unsigned pick = static_cast<unsigned>(r % 100);
    constexpr Addr kSharedBase = Addr{1} << 32;
    constexpr Addr kPrivBase = Addr{1} << 36;
    if (pick < 50) {
      return {node,
              kPrivBase + (Addr{node} << 30) +
                  (priv_pos[node]++ % priv_lines) * line,
              ((r >> 32) & 3) == 0};
    }
    if (pick < 85) return {node, kSharedBase + ((r >> 8) % 256) * line, false};
    return {node, kSharedBase + ((r >> 8) % 16) * line, true};
  }
};

TEST(FabricAllocTest, SteadyStateAccessPathIsAllocationFree) {
  MachineConfig cfg = default_config(8);
  // Small L2 so the streaming set wraps (evictions + directory erase on
  // nearly every private access) within a fast test.
  cfg.l2.size_bytes = 64 * 1024;
  net::Network network(cfg);
  mem::HomeMap home_map(cfg.num_nodes, cfg.memory.page_bytes,
                        mem::Placement::kRoundRobin);
  CoherenceFabric fabric(cfg, network, home_map);

  StreamGen gen{cfg.num_nodes, cfg.l2.line_bytes,
                2 * cfg.l2.size_bytes / cfg.l2.line_bytes,
                std::vector<std::uint64_t>(cfg.num_nodes, 0)};

  // Warm-up: several full wraps of every node's private stream, so every
  // directory slice has grown to its high-water capacity and every cache
  // set has been filled and recycled.
  Cycle now = 0;
  for (std::uint64_t i = 0; i < 400'000; ++i) {
    const auto a = gen.next(i);
    now += 4 + (fabric.access(a.node, a.addr, a.write, now).latency >> 3);
  }

  // Steady state: not one heap allocation over 200k further accesses.
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::uint64_t i = 400'000; i < 600'000; ++i) {
    const auto a = gen.next(i);
    now += 4 + (fabric.access(a.node, a.addr, a.write, now).latency >> 3);
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before);

  fabric.check_invariants();
}

// Same invariant through access_batch: the staged stage-1 walk and the
// disturbance masks live entirely in stack arrays, so the batched steady
// state must be exactly as allocation-free as the serial one.
TEST(FabricAllocTest, SteadyStateBatchedAccessPathIsAllocationFree) {
  MachineConfig cfg = default_config(8);
  cfg.l2.size_bytes = 64 * 1024;
  net::Network network(cfg);
  mem::HomeMap home_map(cfg.num_nodes, cfg.memory.page_bytes,
                        mem::Placement::kRoundRobin);
  CoherenceFabric fabric(cfg, network, home_map);

  StreamGen gen{cfg.num_nodes, cfg.l2.line_bytes,
                2 * cfg.l2.size_bytes / cfg.l2.line_bytes,
                std::vector<std::uint64_t>(cfg.num_nodes, 0)};

  struct Tick {
    Cycle now = 0;
  };
  const auto advance = [](void* ctx, std::size_t,
                          const AccessOutcome& out) -> Cycle {
    auto* t = static_cast<Tick*>(ctx);
    t->now += 4 + (out.latency >> 3);
    return t->now;
  };

  constexpr std::size_t kBatch = 16;
  CoherenceFabric::AccessReq reqs[kBatch];
  AccessOutcome outs[kBatch];
  Tick tick;
  const auto run_batches = [&](std::uint64_t from, std::uint64_t to) {
    for (std::uint64_t i = from; i < to; i += kBatch) {
      for (std::size_t k = 0; k < kBatch; ++k) {
        const auto a = gen.next(i + k);
        reqs[k] = {a.addr, a.write, a.node};
      }
      const std::size_t done = fabric.access_batch(
          std::span<const CoherenceFabric::AccessReq>(reqs, kBatch),
          std::span<AccessOutcome>(outs, kBatch), tick.now, advance, &tick);
      ASSERT_EQ(done, kBatch);
    }
  };

  run_batches(0, 400'000);  // warm-up: directory slices reach high water

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  run_batches(400'000, 600'000);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before);

  fabric.check_invariants();
}

// The observability layer's zero-allocation contract: with metrics AND
// tracing enabled, the steady-state access path still never touches the
// heap. The registry preallocates every slot at construction; the trace
// rings are fixed at construction and overwrite-with-drop-count on
// overflow — which this stream forces (capacity 1024 against 200k traced
// misses), so the drop path itself is exercised allocation-free.
TEST(FabricAllocTest, SteadyStateIsAllocationFreeWithTracingOn) {
  MachineConfig cfg = default_config(8);
  cfg.l2.size_bytes = 64 * 1024;
  cfg.obs.stats = true;
  cfg.obs.trace = true;
  cfg.obs.trace_events_per_node = 1024;  // small, so the rings wrap
  obs::Observability obs(cfg.obs, cfg.num_nodes);
  net::Network network(cfg, &obs);
  mem::HomeMap home_map(cfg.num_nodes, cfg.memory.page_bytes,
                        mem::Placement::kRoundRobin);
  CoherenceFabric fabric(cfg, network, home_map, &obs);

  StreamGen gen{cfg.num_nodes, cfg.l2.line_bytes,
                2 * cfg.l2.size_bytes / cfg.l2.line_bytes,
                std::vector<std::uint64_t>(cfg.num_nodes, 0)};

  Cycle now = 0;
  for (std::uint64_t i = 0; i < 400'000; ++i) {
    const auto a = gen.next(i);
    now += 4 + (fabric.access(a.node, a.addr, a.write, now).latency >> 3);
  }

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::uint64_t i = 400'000; i < 600'000; ++i) {
    const auto a = gen.next(i);
    now += 4 + (fabric.access(a.node, a.addr, a.write, now).latency >> 3);
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before);

  // The instrumentation actually ran: counters moved and every ring
  // wrapped (drops counted, capacity held).
  EXPECT_GT(obs.metrics().value("coh.fill.with_victim"), 0u);
  const obs::TraceBuffer& tb = obs.trace_buffer();
  for (unsigned n = 0; n < cfg.num_nodes; ++n) {
    EXPECT_EQ(tb.recorded(n), 1024u) << "node " << n;
    EXPECT_GT(tb.dropped(n), 0u) << "node " << n;
  }

  fabric.check_invariants();
}

}  // namespace
}  // namespace dsm::coh
