// paper_properties_test.cpp — end-to-end assertions of the paper's
// headline claims on the full stack (simulator -> recording -> offline
// classification -> CoV curves). These are the tests that would catch a
// regression anywhere in the reproduction pipeline.
#include <gtest/gtest.h>

#include "analysis/classifier.hpp"
#include "analysis/cov.hpp"
#include "analysis/curve.hpp"
#include "apps/micro.hpp"
#include "apps/registry.hpp"
#include "sim/machine.hpp"

namespace dsm {
namespace {

sim::RunSummary run_micro(const sim::AppFn& fn, unsigned nodes,
                          InstrCount per_proc_interval) {
  MachineConfig cfg = default_config(nodes);
  cfg.phase.interval_instructions = per_proc_interval * nodes;
  sim::Machine m(cfg);
  return m.run(fn);
}

sim::RunSummary run_app(const std::string& name, unsigned nodes) {
  MachineConfig cfg = default_config(nodes);
  cfg.phase.interval_instructions =
      apps::scaled_interval(name, apps::Scale::kTest);
  sim::Machine m(cfg);
  return m.run(apps::app_by_name(name).factory(apps::Scale::kTest));
}

// Claim 1 (§III-B core idea): phases that differ only in data
// distribution are invisible to BBV but split cleanly by BBV+DDV.
TEST(PaperPropertiesTest, DdvSeparatesDistributionOnlyPhases) {
  apps::MicroParams p;
  p.repeats = 6;
  p.iters_per_segment = 16'000;  // ~8 intervals per segment half
  const auto run = run_micro(apps::make_hot_home(p), 8, 60'000);

  analysis::CurveParams cp;
  const auto bbv = analysis::bbv_cov_curve(run.procs, cp);
  const auto ddv = analysis::bbv_ddv_cov_curve(run.procs, cp);
  const double bbv_cov = analysis::cov_at_phases(bbv, 6.0);
  const double ddv_cov = analysis::cov_at_phases(ddv, 6.0);
  EXPECT_GT(bbv_cov, 0.25) << "BBV should NOT be able to separate these";
  EXPECT_LT(ddv_cov, 0.7 * bbv_cov) << "DDV must markedly improve CoV";
}

// Claim 2 (§III-A): the quality of per-node BBV classification degrades
// as the DSM grows.
TEST(PaperPropertiesTest, BbvQualityDegradesWithNodeCount) {
  apps::MicroParams p;
  p.repeats = 5;
  p.iters_per_segment = 6000;
  analysis::CurveParams cp;
  double prev = -1.0;
  for (const unsigned nodes : {2u, 8u}) {
    const auto run = run_micro(apps::make_hot_home(p), nodes, 40'000);
    const auto curve = analysis::bbv_cov_curve(run.procs, cp);
    const double cov = analysis::cov_at_phases(curve, 8.0);
    if (prev >= 0.0) {
      EXPECT_GT(cov, prev) << nodes << " nodes";
    }
    prev = cov;
  }
}

// Claim 3 (§IV): on a real workload, BBV+DDV's curve dominates BBV's.
TEST(PaperPropertiesTest, DdvCurveDominatesOnLu) {
  const auto run = run_app("LU", 8);
  analysis::CurveParams cp;
  const auto bbv = analysis::bbv_cov_curve(run.procs, cp);
  const auto ddv = analysis::bbv_ddv_cov_curve(run.procs, cp);
  for (const double phases : {5.0, 10.0, 25.0}) {
    EXPECT_LE(analysis::cov_at_phases(ddv, phases),
              analysis::cov_at_phases(bbv, phases) + 1e-9)
        << "at " << phases << " phases";
  }
}

// Claim 4 (§II): with every interval its own phase, CoV is trivially zero
// — the degenerate end of the trade-off the CoV curve quantifies.
TEST(PaperPropertiesTest, ZeroThresholdDegeneratesToZeroCov) {
  const auto run = run_app("Equake", 4);
  phase::Thresholds t{.bbv = 0, .dds = 0.0};
  // Footprint capacity >= interval count so ids never merge via LRU reuse.
  const auto c = analysis::classify_trace(
      run.procs[0].intervals, true, 4096, t);
  // Identical signatures may legitimately repeat; CoV must be tiny.
  EXPECT_LT(analysis::identifier_cov(run.procs[0].intervals, c.assignment),
            0.05);
}

// Claim 5 (§II): one giant phase inherits the program's whole CPI spread.
TEST(PaperPropertiesTest, InfiniteThresholdMergesToWholeProgramCov) {
  const auto run = run_app("LU", 4);
  phase::Thresholds t{.bbv = 1u << 30, .dds = 1e300};
  const auto& trace = run.procs[0].intervals;
  const auto c = analysis::classify_trace(trace, true, 32, t);
  EXPECT_EQ(c.distinct_phases, 1u);
  std::vector<double> cpis;
  for (const auto& r : trace) cpis.push_back(r.cpi);
  EXPECT_NEAR(analysis::identifier_cov(trace, c.assignment), cov_of(cpis),
              1e-9);
}

// Claim 6 (§III-B): the DDV exchange's traffic is negligible next to the
// coherence traffic the program generates anyway.
TEST(PaperPropertiesTest, DdvTrafficNegligible) {
  // Use a realistic interval length: the tiny kTest interval floor would
  // gather the DDV absurdly often (the paper's real-world interval is
  // 100M instructions; even its simulated one is 3M).
  MachineConfig cfg = default_config(8);
  cfg.phase.interval_instructions = 800'000;  // 100k per processor
  sim::Machine m(cfg);
  const auto run =
      m.run(apps::app_by_name("LU").factory(apps::Scale::kTest));
  ASSERT_GE(run.min_intervals(), 1u);
  const auto ddv_bytes = run.net_bytes[3];
  const auto payload_bytes = run.net_bytes[0] + run.net_bytes[1];
  EXPECT_LT(ddv_bytes, payload_bytes / 10);
}

// Paper Fig. 2 axis sanity: more phases never hurt the best achievable
// CoV (staircase reading of the curve).
TEST(PaperPropertiesTest, CovCurveStaircaseMonotone) {
  const auto run = run_app("FMM", 4);
  analysis::CurveParams cp;
  const auto curve = analysis::bbv_cov_curve(run.procs, cp);
  double prev = 1e300;
  for (double phases = 1.0; phases <= 30.0; phases += 1.0) {
    const double cov = analysis::cov_at_phases(curve, phases);
    EXPECT_LE(cov, prev + 1e-12);
    prev = cov;
  }
}

}  // namespace
}  // namespace dsm
