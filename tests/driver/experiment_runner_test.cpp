// experiment_runner_test.cpp — the three contracts the parallel sweep
// driver must honor: spec-order determinism under many threads, clean
// failure propagation out of the pool, and bit-identical results between
// a 1-thread driver run and the hand-rolled serial loop the bench mains
// used before the refactor (micro workload, test-sized input).
#include "driver/experiment_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "apps/micro.hpp"
#include "driver/result_sink.hpp"
#include "driver/sweep_spec.hpp"
#include "sim/machine.hpp"

namespace dsm::driver {
namespace {

TEST(SweepSpecTest, ExpandsAppMajorWithSequentialIndices) {
  SweepSpec spec;
  spec.apps = {"LU", "FMM"};
  spec.node_counts = {2, 8, 32};
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].app, "LU");
  EXPECT_EQ(points[0].nodes, 2u);
  EXPECT_EQ(points[2].app, "LU");
  EXPECT_EQ(points[2].nodes, 32u);
  EXPECT_EQ(points[3].app, "FMM");
  EXPECT_EQ(points[3].nodes, 2u);
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(points[i].index, i);
}

TEST(SweepSpecTest, EmptyAxesContributeOneDefaultElement) {
  SweepSpec spec;  // all axes empty
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].app, "");
  EXPECT_EQ(points[0].nodes, 0u);
}

TEST(SweepSpecTest, SeedDependsOnContentNotPosition) {
  SpecPoint a;
  a.app = "LU";
  a.nodes = 8;
  a.index = 0;
  SpecPoint b = a;
  b.index = 17;  // position must not matter
  EXPECT_EQ(spec_seed(a), spec_seed(b));

  SpecPoint c = a;
  c.nodes = 32;
  EXPECT_NE(spec_seed(a), spec_seed(c));
  SpecPoint d = a;
  d.app = "FMM";
  EXPECT_NE(spec_seed(a), spec_seed(d));
  SpecPoint e = a;
  e.threshold = 0.5;
  EXPECT_NE(spec_seed(a), spec_seed(e));
  SpecPoint f = a;
  f.scale = apps::Scale::kTest;
  EXPECT_NE(spec_seed(a), spec_seed(f));
  EXPECT_NE(spec_seed(a), 0u);
}

TEST(SweepSpecTest, SeedSchemeIsPinned) {
  // Golden values: every published bench table depends on these seeds.
  // If this test fails, the seed scheme changed and ALL figure/table
  // outputs silently shift — bump these constants only as a deliberate,
  // documented decision.
  SpecPoint p;
  p.app = "LU";
  p.nodes = 8;
  p.scale = apps::Scale::kBench;
  EXPECT_EQ(spec_seed(p), 0x7282ca7fbd6f6445ull);
  SpecPoint q;
  q.app = "FMM";
  q.nodes = 32;
  q.detector = "torus2d";
  q.threshold = 0.5;
  q.scale = apps::Scale::kTest;
  EXPECT_EQ(spec_seed(q), 0x57b3abad0f9c8867ull);
}

TEST(ExperimentRunnerTest, ResultsArriveInSpecOrderUnderEightThreads) {
  SweepSpec spec;
  spec.node_counts = {0};
  for (int i = 0; i < 64; ++i) spec.thresholds.push_back(i);
  const auto points = spec.expand();

  const ExperimentRunner runner(8);
  // Stagger completion: later items finish *earlier* than earlier ones.
  const auto results = runner.map<int>(points, [](const SpecPoint& pt) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(500 - 5 * static_cast<int>(pt.threshold)));
    return static_cast<int>(pt.threshold) * 3 + 1;
  });
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * 3 + 1);
}

TEST(ExperimentRunnerTest, ThrowingConfigurationPropagatesWithoutDeadlock) {
  SweepSpec spec;
  for (int i = 0; i < 32; ++i) spec.thresholds.push_back(i);
  const auto points = spec.expand();

  const ExperimentRunner runner(8);
  EXPECT_THROW(
      runner.map<int>(points,
                      [](const SpecPoint& pt) -> int {
                        if (static_cast<int>(pt.threshold) == 11)
                          throw std::runtime_error("config 11 exploded");
                        return 0;
                      }),
      std::runtime_error);
}

TEST(ExperimentRunnerTest, SerialPathAlsoPropagatesExceptions) {
  const ExperimentRunner runner(1);
  EXPECT_THROW(runner.run_indexed(
                   3, [](std::size_t i) {
                     if (i == 1) throw std::logic_error("boom");
                   }),
               std::logic_error);
}

TEST(ExperimentRunnerTest, ZeroThreadsResolvesToHardware) {
  EXPECT_GE(ExperimentRunner::resolve_threads(0), 1u);
  EXPECT_EQ(ExperimentRunner::resolve_threads(3), 3u);
}

TEST(ResultSinkTest, TakeReturnsSpecOrderRegardlessOfPutOrder) {
  ResultSink<int> sink(4);
  sink.put(2, 20);
  sink.put(0, 0);
  sink.put(3, 30);
  sink.put(1, 10);
  const auto out = sink.take();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 10);
  EXPECT_EQ(out[2], 20);
  EXPECT_EQ(out[3], 30);
}

TEST(ResultSinkTest, TakeIsConsumingAndSecondCallThrows) {
  // A second take() would hand back a same-length vector of moved-from
  // values — silent table corruption. It must refuse instead.
  ResultSink<std::string> sink(2);
  sink.put(0, "a");
  sink.put(1, "b");
  const auto out = sink.take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_THROW(sink.take(), std::logic_error);
}

TEST(OrderedEmitterTest, EmitsInIndexOrderRegardlessOfPutOrder) {
  std::vector<std::pair<std::size_t, int>> emitted;
  OrderedEmitter<int> sink(5, [&](std::size_t i, int&& v) {
    emitted.emplace_back(i, v);
  });
  sink.put(2, 20);
  sink.put(1, 10);
  EXPECT_TRUE(emitted.empty());  // 0 still outstanding
  sink.put(0, 0);
  ASSERT_EQ(emitted.size(), 3u);  // 0 released the buffered 1 and 2
  sink.put(4, 40);
  EXPECT_EQ(emitted.size(), 3u);
  EXPECT_FALSE(sink.drained());
  sink.put(3, 30);
  ASSERT_EQ(emitted.size(), 5u);
  EXPECT_TRUE(sink.drained());
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    EXPECT_EQ(emitted[i].first, i);
    EXPECT_EQ(emitted[i].second, static_cast<int>(i) * 10);
  }
}

// The memory contract behind map_reduce: the raw result is reduced and
// destroyed on the worker that produced it — no raw result ever waits
// for spec order (only reduced values do), so at no instant can more
// raws be alive than there are workers.
struct CountedRaw {
  static std::atomic<int> live;
  static std::atomic<int> max_live;
  CountedRaw() { bump(); }
  CountedRaw(const CountedRaw&) { bump(); }
  CountedRaw(CountedRaw&&) { bump(); }
  ~CountedRaw() { --live; }
  static void bump() {
    const int now = ++live;
    int prev = max_live.load();
    while (now > prev && !max_live.compare_exchange_weak(prev, now)) {
    }
  }
};
std::atomic<int> CountedRaw::live{0};
std::atomic<int> CountedRaw::max_live{0};

TEST(ExperimentRunnerTest, MapReduceDropsRawResultsInWorkers) {
  SweepSpec spec;
  for (int i = 0; i < 48; ++i) spec.thresholds.push_back(i);
  const auto points = spec.expand();

  constexpr unsigned kThreads = 4;
  CountedRaw::live = 0;
  CountedRaw::max_live = 0;
  const ExperimentRunner runner(kThreads);
  std::vector<double> emitted;
  runner.map_reduce<CountedRaw, double>(
      points,
      [](const SpecPoint&) {
        // Stagger completions so emission genuinely runs behind.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return CountedRaw{};
      },
      [](const SpecPoint& pt, CountedRaw&&) { return pt.threshold; },
      [&](const SpecPoint& pt, double&& v) {
        EXPECT_EQ(v, pt.threshold);
        emitted.push_back(v);
      });

  ASSERT_EQ(emitted.size(), points.size());
  for (std::size_t i = 0; i < emitted.size(); ++i)
    EXPECT_EQ(emitted[i], static_cast<double>(i));  // spec order
  EXPECT_EQ(CountedRaw::live.load(), 0);
  // Transients during move-from-run-into-reduce allow a couple of copies
  // per worker, but never anything proportional to the sweep size.
  EXPECT_LE(CountedRaw::max_live.load(), static_cast<int>(3 * kThreads));
}

TEST(ExperimentRunnerTest, MapReduceWorksOnShardSubsetsWithGlobalIndices) {
  SweepSpec spec;
  for (int i = 0; i < 10; ++i) spec.thresholds.push_back(i);
  auto points = spec.expand();
  // Keep only the odd global indices, as ShardPlan{1,2} would.
  std::vector<SpecPoint> local;
  for (const auto& pt : points)
    if (pt.index % 2 == 1) local.push_back(pt);

  const ExperimentRunner runner(4);
  std::vector<std::size_t> seen;
  runner.map_reduce<int, int>(
      local, [](const SpecPoint& pt) { return static_cast<int>(pt.index); },
      [](const SpecPoint&, int&& v) { return v; },
      [&](const SpecPoint& pt, int&& v) {
        EXPECT_EQ(static_cast<std::size_t>(v), pt.index);
        seen.push_back(pt.index);
      });
  ASSERT_EQ(seen.size(), 5u);
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], 2 * i + 1);  // global indices, ascending
}

// The workhorse equivalence check: the driver with 1 thread must produce
// exactly what a plain serial for-loop over the same per-point run body
// produces (the shape the pre-refactor bench mains had), and the driver
// with 8 threads must match the driver with 1 thread bit-for-bit. Note
// the *numbers* intentionally differ from the seed=1 pre-refactor
// baseline — configurations are now seeded by spec_seed(point); the
// SeedSchemeIsPinned golden below guards that scheme against silent
// drift. Runs the micro two-phase workload at a test-sized input on 4
// nodes across a small parameter sweep.
sim::RunSummary run_micro(const SpecPoint& pt) {
  MachineConfig cfg = default_config(4);
  cfg.seed = spec_seed(pt);
  apps::MicroParams p;
  p.repeats = 2;
  p.iters_per_segment = 300 + static_cast<unsigned>(pt.threshold);
  cfg.phase.interval_instructions = 80'000;
  sim::Machine machine(cfg);
  return machine.run(apps::make_two_phase(p));
}

void expect_identical(const sim::RunSummary& a, const sim::RunSummary& b) {
  ASSERT_EQ(a.procs.size(), b.procs.size());
  ASSERT_EQ(a.final_cycles, b.final_cycles);
  ASSERT_EQ(a.instructions, b.instructions);
  ASSERT_EQ(a.barrier_episodes, b.barrier_episodes);
  for (std::size_t p = 0; p < a.procs.size(); ++p) {
    const auto& ia = a.procs[p].intervals;
    const auto& ib = b.procs[p].intervals;
    ASSERT_EQ(ia.size(), ib.size());
    for (std::size_t k = 0; k < ia.size(); ++k) {
      EXPECT_EQ(ia[k].bbv, ib[k].bbv);
      EXPECT_EQ(ia[k].f, ib[k].f);
      EXPECT_EQ(ia[k].c, ib[k].c);
      EXPECT_EQ(ia[k].cycles, ib[k].cycles);
      EXPECT_EQ(ia[k].instructions, ib[k].instructions);
      // Bit-level equality, deliberately: determinism is the contract.
      EXPECT_EQ(ia[k].dds, ib[k].dds);
      EXPECT_EQ(ia[k].cpi, ib[k].cpi);
    }
  }
}

TEST(ExperimentRunnerTest, OneThreadMatchesSerialLoopOnMicroAtTestScale) {
  SweepSpec spec;
  spec.thresholds = {0.0, 100.0, 200.0};
  const auto points = spec.expand();

  // Pre-refactor shape: a plain serial loop over the configurations.
  std::vector<sim::RunSummary> serial;
  for (const auto& pt : points) serial.push_back(run_micro(pt));

  const ExperimentRunner one(1);
  const auto driven =
      one.map<sim::RunSummary>(points, [](const SpecPoint& pt) {
        return run_micro(pt);
      });

  ASSERT_EQ(driven.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    expect_identical(serial[i], driven[i]);
}

TEST(ExperimentRunnerTest, EightThreadsMatchesOneThreadOnMicro) {
  SweepSpec spec;
  spec.thresholds = {0.0, 100.0, 200.0, 300.0};
  const auto points = spec.expand();

  const ExperimentRunner one(1);
  const ExperimentRunner eight(8);
  const auto a = one.map<sim::RunSummary>(
      points, [](const SpecPoint& pt) { return run_micro(pt); });
  const auto b = eight.map<sim::RunSummary>(
      points, [](const SpecPoint& pt) { return run_micro(pt); });

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_identical(a[i], b[i]);
}

}  // namespace
}  // namespace dsm::driver
