#include "cpu/core_model.hpp"

#include <gtest/gtest.h>

#include "common/config.hpp"

namespace dsm::cpu {
namespace {

CoreModel table1_core() {
  return CoreModel(CoreConfig{}, PredictorConfig{});
}

TEST(CoreModelTest, IssueWidthBoundsIntCode) {
  auto core = table1_core();
  // 6000 integer instructions on a 6-wide machine: 1000 cycles.
  EXPECT_EQ(core.compute_cycles(6000, 0.0), 1000u);
}

TEST(CoreModelTest, FpuThroughputBindsFpHeavyCode) {
  auto core = table1_core();
  // 4000 instructions, all FP, 4 FPUs: 1000 cycles (not 4000/6 = 667).
  EXPECT_EQ(core.compute_cycles(4000, 1.0), 1000u);
}

TEST(CoreModelTest, MixedCodeTakesTheMaxBound) {
  auto core = table1_core();
  // 1200 instr, 50% FP: issue 200, ALU 100, FPU 150 -> 200 cycles.
  EXPECT_EQ(core.compute_cycles(1200, 0.5), 200u);
  // 1200 instr, 90% FP: FPU bound 270 > issue 200.
  EXPECT_EQ(core.compute_cycles(1200, 0.9), 270u);
}

TEST(CoreModelTest, ResidueAccumulatesExactly) {
  auto core = table1_core();
  // 1 instruction = 1/6 cycle; 600 calls of 1 must total 100 cycles up
  // to one unit of floating-point drift in the residue accumulator.
  Cycle total = 0;
  for (int i = 0; i < 600; ++i) total += core.compute_cycles(1, 0.0);
  EXPECT_NEAR(static_cast<double>(total), 100.0, 1.0);
}

TEST(CoreModelTest, ZeroInstructionsCostNothing) {
  auto core = table1_core();
  EXPECT_EQ(core.compute_cycles(0, 0.5), 0u);
}

TEST(CoreModelTest, BranchPenaltyOnlyOnMisprediction) {
  auto core = table1_core();
  // Train a branch to taken.
  for (int i = 0; i < 64; ++i) core.branch_cycles(0x400100, true);
  EXPECT_EQ(core.branch_cycles(0x400100, true), 0u);
  // A surprise not-taken pays the front-end refill.
  EXPECT_EQ(core.branch_cycles(0x400100, false),
            CoreConfig{}.mispredict_penalty);
}

TEST(CoreModelTest, ExposedStallPassesL1Hits) {
  auto core = table1_core();
  EXPECT_EQ(core.exposed_memory_stall(1, 1), 1u);
}

TEST(CoreModelTest, ExposedStallAppliesMlpOverlap) {
  auto core = table1_core();
  // latency 401, L1 1: exposed = 1 + 400 * (1 - 0.25) = 301.
  EXPECT_EQ(core.exposed_memory_stall(401, 1), 301u);
}

TEST(CoreModelTest, ExposedStallMonotonicInLatency) {
  auto core = table1_core();
  Cycle prev = 0;
  for (Cycle lat = 1; lat < 1000; lat += 37) {
    const Cycle e = core.exposed_memory_stall(lat, 1);
    EXPECT_GE(e, prev);
    EXPECT_LE(e, lat);
    prev = e;
  }
}

TEST(CoreModelTest, ResetClearsPredictorAndResidue) {
  auto core = table1_core();
  core.compute_cycles(3, 0.0);  // leaves residue 0.5
  for (int i = 0; i < 10; ++i) core.branch_cycles(0x400, true);
  core.reset();
  EXPECT_EQ(core.predictor().predictions(), 0u);
  EXPECT_EQ(core.compute_cycles(6, 0.0), 1u);  // exact, no leftover residue
}

// Property sweep: cycles scale linearly with instruction count for any mix.
class CoreModelMixTest : public ::testing::TestWithParam<double> {};

TEST_P(CoreModelMixTest, LinearScaling) {
  const double fp = GetParam();
  auto core = table1_core();
  const Cycle c1 = core.compute_cycles(60'000, fp);
  auto core2 = table1_core();
  const Cycle c2 = core2.compute_cycles(120'000, fp);
  EXPECT_NEAR(static_cast<double>(c2), 2.0 * static_cast<double>(c1), 2.0);
}

INSTANTIATE_TEST_SUITE_P(FpMixes, CoreModelMixTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace dsm::cpu
