#include "cpu/gshare.hpp"

#include <gtest/gtest.h>

#include "common/config.hpp"

namespace dsm::cpu {
namespace {

PredictorConfig table1() { return PredictorConfig{}; }  // 2048-entry

TEST(GshareTest, LearnsAlwaysTaken) {
  GsharePredictor p(table1());
  for (int i = 0; i < 100; ++i) p.update(0x400100, true);
  EXPECT_TRUE(p.predict(0x400100));
  // After warmup, mispredictions stop.
  const auto before = p.mispredictions();
  for (int i = 0; i < 100; ++i) p.update(0x400100, true);
  EXPECT_EQ(p.mispredictions(), before);
}

TEST(GshareTest, LearnsAlwaysNotTaken) {
  GsharePredictor p(table1());
  for (int i = 0; i < 100; ++i) p.update(0x400200, false);
  EXPECT_FALSE(p.predict(0x400200));
}

TEST(GshareTest, LearnsAlternatingPatternViaHistory) {
  GsharePredictor p(table1());
  // T,N,T,N...: with global history, gshare learns this perfectly.
  for (int i = 0; i < 400; ++i) p.update(0x400300, i % 2 == 0);
  const auto before = p.mispredictions();
  for (int i = 0; i < 200; ++i) p.update(0x400300, i % 2 == 0);
  EXPECT_EQ(p.mispredictions(), before);
}

TEST(GshareTest, LearnsLoopExitPattern) {
  GsharePredictor p(table1());
  // 7 taken, 1 not-taken (an 8-iteration loop): history disambiguates.
  for (int rep = 0; rep < 100; ++rep)
    for (int i = 0; i < 8; ++i) p.update(0x400400, i != 7);
  const auto before = p.mispredictions();
  for (int rep = 0; rep < 50; ++rep)
    for (int i = 0; i < 8; ++i) p.update(0x400400, i != 7);
  EXPECT_EQ(p.mispredictions(), before);
}

TEST(GshareTest, MispredictionRateBounded) {
  GsharePredictor p(table1());
  // Random-ish but deterministic outcomes: the rate must be ~50%, not 0
  // or 100 (sanity of the accounting).
  std::uint64_t x = 99;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1;
    p.update(0x400500 + (x % 64) * 4, (x >> 40) & 1);
  }
  EXPECT_GT(p.misprediction_rate(), 0.25);
  EXPECT_LT(p.misprediction_rate(), 0.75);
  EXPECT_EQ(p.predictions(), 5000u);
}

TEST(GshareTest, UpdateReturnsCorrectness) {
  GsharePredictor p(table1());
  // Counters initialize weakly-taken: first taken-update is "correct".
  EXPECT_TRUE(p.update(0x400600, true));
}

TEST(GshareTest, ResetClearsState) {
  GsharePredictor p(table1());
  for (int i = 0; i < 64; ++i) p.update(0x400700, false);
  p.reset();
  EXPECT_EQ(p.predictions(), 0u);
  EXPECT_EQ(p.mispredictions(), 0u);
  EXPECT_TRUE(p.predict(0x400700));  // back to weakly taken
}

TEST(GshareTest, DistinctBranchesUseDistinctCounters) {
  GsharePredictor p(table1());
  for (int i = 0; i < 50; ++i) {
    p.update(0x400800, true);
    p.update(0x404800, false);
  }
  // Both patterns learned despite opposite directions (no destructive
  // aliasing for this pair).
  const auto before = p.mispredictions();
  for (int i = 0; i < 50; ++i) {
    p.update(0x400800, true);
    p.update(0x404800, false);
  }
  EXPECT_LE(p.mispredictions() - before, 10u);
}

}  // namespace
}  // namespace dsm::cpu
