// fmm_test.cpp — FMM-model-specific structure: costzone load balance,
// cluster drift moving the partition, phase anatomy (distinct BBVs for
// M2L vs direct), and conservation of particles across rebinning.
#include <gtest/gtest.h>

#include "apps/fmm.hpp"
#include "sim/machine.hpp"

namespace dsm::apps {
namespace {

FmmParams tiny() {
  FmmParams p;
  p.particles = 2048;
  p.leaf_log2 = 4;
  p.min_level = 1;
  p.steps = 3;
  return p;
}

sim::RunSummary run_fmm(const FmmParams& p, unsigned nodes,
                        InstrCount per_proc_interval = 40'000) {
  MachineConfig cfg = default_config(nodes);
  cfg.phase.interval_instructions = per_proc_interval * nodes;
  sim::Machine m(cfg);
  return m.run(make_fmm(p));
}

TEST(FmmTest, CostzonesBalanceInstructionCounts) {
  const auto run = run_fmm(tiny(), 4);
  InstrCount lo = ~0ull, hi = 0;
  for (unsigned q = 0; q < 4; ++q) {
    lo = std::min(lo, run.instructions[q]);
    hi = std::max(hi, run.instructions[q]);
  }
  // Clustered particles on a static partition would be several-fold off;
  // costzones keep the spread tight.
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 1.8);
}

TEST(FmmTest, PhaseTypesHaveDistinctBbvSignatures) {
  // M2L-dominated and direct-dominated intervals must be distinguishable
  // by the BBV (they run different kernels).
  const auto run = run_fmm(tiny(), 2, 60'000);
  const auto& iv = run.procs[0].intervals;
  ASSERT_GE(iv.size(), 4u);
  std::uint64_t max_dist = 0;
  for (std::size_t i = 0; i < iv.size(); ++i)
    for (std::size_t j = i + 1; j < iv.size(); ++j)
      max_dist = std::max(max_dist, phase::manhattan(iv[i].bbv, iv[j].bbv));
  EXPECT_GT(max_dist, 40'000u);
}

TEST(FmmTest, ClusterDriftShiftsRemoteMix) {
  // Between the first and last step, the costzone<->particle-home overlap
  // changes; per-interval F vectors must not be static.
  const auto run = run_fmm(tiny(), 4, 30'000);
  const auto& iv = run.procs[2].intervals;
  ASSERT_GE(iv.size(), 4u);
  // Compare normalized home distributions of an early and a late interval.
  auto norm_f = [](const phase::IntervalRecord& r) {
    std::vector<double> v(r.f.size());
    double total = 1e-9;
    for (const auto x : r.f) total += static_cast<double>(x);
    for (std::size_t j = 0; j < r.f.size(); ++j)
      v[j] = static_cast<double>(r.f[j]) / total;
    return v;
  };
  const auto a = norm_f(iv[1]);
  const auto b = norm_f(iv[iv.size() - 2]);
  double l1 = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) l1 += std::abs(a[j] - b[j]);
  EXPECT_GT(l1, 0.05) << "access mix never moved";
}

TEST(FmmTest, MoreStepsMoreWork) {
  FmmParams p3 = tiny();
  FmmParams p1 = tiny();
  p1.steps = 1;
  const auto r3 = run_fmm(p3, 2);
  const auto r1 = run_fmm(p1, 2);
  EXPECT_GT(r3.instructions[0], 2 * r1.instructions[0]);
}

TEST(FmmTest, TerminatesWithEmptyRegions) {
  // Highly clustered particles leave most leaves empty; everything must
  // still terminate and balance.
  FmmParams p = tiny();
  p.clusters = 1;
  p.cluster_spread = 0.02;  // very tight cluster
  const auto run = run_fmm(p, 4);
  for (unsigned q = 0; q < 4; ++q) EXPECT_GT(run.instructions[q], 0u);
}

TEST(FmmDeathTest, RejectsBadLevels) {
  FmmParams p = tiny();
  p.min_level = p.leaf_log2;  // no room for a hierarchy
  EXPECT_DEATH(make_fmm(p), "");
}

}  // namespace
}  // namespace dsm::apps
