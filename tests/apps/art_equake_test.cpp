// art_equake_test.cpp — model-specific structure of the two SPEC-OMP
// analogues: Art's data-dependent resonance behaviour and read-shared
// weights; Equake's time-windowed source term and partitioned streaming.
#include <gtest/gtest.h>

#include "apps/art.hpp"
#include "apps/equake.hpp"
#include "sim/machine.hpp"

namespace dsm::apps {
namespace {

ArtParams tiny_art() {
  ArtParams p;
  p.image_w = p.image_h = 96;
  p.stride = 4;
  p.train_epochs = 4;
  return p;
}

EquakeParams tiny_equake() {
  EquakeParams p;
  p.grid = 48;
  p.timesteps = 24;
  p.quake_start = 6;
  p.quake_end = 14;
  return p;
}

template <typename Params, typename Factory>
sim::RunSummary run_app(const Params& p, Factory make, unsigned nodes,
                        InstrCount per_proc_interval) {
  MachineConfig cfg = default_config(nodes);
  cfg.phase.interval_instructions = per_proc_interval * nodes;
  sim::Machine m(cfg);
  return m.run(make(p));
}

TEST(ArtTest, ScanStageDominatesInstructions) {
  const auto run = run_app(tiny_art(), make_art, 2, 50'000);
  // Train is a short prologue; the scanfield is the program (as in SPEC).
  EXPECT_GT(run.instructions[0], 500'000u);
}

TEST(ArtTest, BranchBehaviourIsDataDependent) {
  // The recognition branch's direction depends on the window's content
  // (resonance near targets, mismatch elsewhere), so gshare must actually
  // mispredict somewhere — unlike on pure loop nests.
  const auto run = run_app(tiny_art(), make_art, 2, 50'000);
  EXPECT_GT(run.mispredict_rate[0], 0.0001);
}

TEST(ArtTest, WeightsStayReadSharedDuringScan) {
  // Scan performs no weight updates, so invalidation traffic should be a
  // tiny share of coherence activity after training.
  const auto run = run_app(tiny_art(), make_art, 4, 50'000);
  std::uint64_t invals = 0, loads = 0;
  for (const auto& c : run.coherence) {
    invals += c.invalidations_sent;
    loads += c.loads;
  }
  EXPECT_LT(static_cast<double>(invals), 0.05 * static_cast<double>(loads));
}

TEST(ArtTest, DeterministicMatchesAcrossNodeCountsInScan) {
  // The scan stage classifies from host weights fixed after training, so
  // found-counts per image are machine-size independent in structure: the
  // run must at least complete identically twice at the same node count.
  const auto a = run_app(tiny_art(), make_art, 4, 50'000);
  const auto b = run_app(tiny_art(), make_art, 4, 50'000);
  EXPECT_EQ(a.instructions, b.instructions);
}

TEST(EquakeTest, SourceWindowRaisesEpicenterOwnersShare) {
  const auto run = run_app(tiny_equake(), make_equake, 4, 60'000);
  // The epicenter rows live in the middle: procs 1/2 own them and commit
  // more instructions than the edge procs.
  const auto mid = run.instructions[1] + run.instructions[2];
  const auto edge = run.instructions[0] + run.instructions[3];
  EXPECT_GT(mid, edge);
}

TEST(EquakeTest, QuakeWindowAddsMeasurableWork) {
  // With the source window active the run must commit more instructions
  // and burn more cycles than the identical mesh with the event disabled.
  EquakeParams with = tiny_equake();
  EquakeParams without = tiny_equake();
  without.quake_start = without.quake_end = 0;  // empty window
  const auto a = run_app(with, make_equake, 2, 80'000);
  const auto b = run_app(without, make_equake, 2, 80'000);
  EXPECT_GT(a.instructions[0] + a.instructions[1],
            b.instructions[0] + b.instructions[1]);
  EXPECT_GT(a.final_cycles[0], b.final_cycles[0]);
}

TEST(EquakeTest, StreamingPhasesAlternateBbv) {
  // smvp vs vector-update kernels have different bb sites: interval BBVs
  // are mixtures, but not all identical.
  const auto run = run_app(tiny_equake(), make_equake, 2, 40'000);
  const auto& iv = run.procs[0].intervals;
  ASSERT_GE(iv.size(), 3u);
  std::uint64_t max_dist = 0;
  for (std::size_t i = 1; i < iv.size(); ++i)
    max_dist = std::max(max_dist, phase::manhattan(iv[0].bbv, iv[i].bbv));
  EXPECT_GT(max_dist, 1000u);
}

TEST(EquakeTest, RowPartitionCachesTheOwnedWorkingSet) {
  const auto run = run_app(tiny_equake(), make_equake, 4, 60'000);
  // Owner-computes over contiguous rows: the owned CSR slice and vectors
  // stay cache-resident, so the overwhelming share of accesses hit in
  // L1/L2 — only the boundary/far x-vector gathers go off-chip (and those
  // are dominated by cache-to-cache transfers of just-written lines).
  for (unsigned q = 0; q < 4; ++q) {
    const auto& c = run.coherence[q];
    const double total = static_cast<double>(c.loads + c.stores);
    const double hits = static_cast<double>(c.l1_hits + c.l2_hits);
    EXPECT_GT(hits / total, 0.8) << q;
  }
}

}  // namespace
}  // namespace dsm::apps
