// lu_test.cpp — LU-model-specific structure: 2-D scatter ownership,
// owner-local block placement, the shrinking-parallelism phase anatomy,
// and the instruction-volume accounting the interval math relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/lu.hpp"
#include "sim/machine.hpp"
#include "sim/thread_ctx.hpp"

namespace dsm::apps {
namespace {

sim::RunSummary run_lu(const LuParams& p, unsigned nodes,
                       InstrCount per_proc_interval = 50'000) {
  MachineConfig cfg = default_config(nodes);
  cfg.phase.interval_instructions = per_proc_interval * nodes;
  sim::Machine m(cfg);
  return m.run(make_lu(p));
}

LuParams tiny() {
  LuParams p;
  p.n = 64;
  p.block = 8;
  return p;
}

TEST(LuTest, InstructionVolumeMatchesFlopModel) {
  // Total modeled instructions ~= instr_per_flop * (2/3) n^3 for the
  // factorization (+ init overhead). Check within 30%.
  const LuParams p = tiny();
  const auto run = run_lu(p, 2);
  std::uint64_t total = 0;
  for (unsigned q = 0; q < 2; ++q) total += run.instructions[q];
  const double flops = 2.0 / 3.0 * std::pow(p.n, 3);
  EXPECT_NEAR(static_cast<double>(total), p.instr_per_flop * flops,
              0.35 * p.instr_per_flop * flops);
}

TEST(LuTest, WorkSharesFollowScatterOwnership) {
  // With a 1x2 processor grid on a 8x8 block matrix, columns alternate
  // owners; total instructions must split nearly evenly.
  const auto run = run_lu(tiny(), 2);
  const double ratio = static_cast<double>(run.instructions[0]) /
                       static_cast<double>(run.instructions[1]);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(LuTest, CpiRisesAsParallelismShrinks) {
  // Late factorization steps idle most processors: the tail intervals'
  // CPI must exceed the early (interior-dominated) ones at 4+ nodes.
  LuParams p;
  p.n = 128;
  p.block = 8;
  const auto run = run_lu(p, 4, 60'000);
  const auto& iv = run.procs[0].intervals;
  ASSERT_GE(iv.size(), 6u);
  double early = 0.0, late = 0.0;
  const std::size_t k = iv.size() / 3;
  for (std::size_t i = 1; i <= k; ++i) early += iv[i].cpi;         // skip init
  for (std::size_t i = iv.size() - k; i < iv.size(); ++i) late += iv[i].cpi;
  EXPECT_GT(late / k, early / k);
}

TEST(LuTest, BlocksAreHomedAtTheirOwners) {
  // Owner-compute => the dominant home in each proc's F vector is itself.
  const auto run = run_lu(tiny(), 4, 20'000);
  for (unsigned q = 0; q < 4; ++q) {
    std::vector<std::uint64_t> f(4, 0);
    for (const auto& rec : run.procs[q].intervals)
      for (unsigned j = 0; j < 4; ++j) f[j] += rec.f[j];
    std::uint64_t own = f[q], max_other = 0;
    for (unsigned j = 0; j < 4; ++j)
      if (j != q) max_other = std::max(max_other, f[j]);
    EXPECT_GT(own, max_other) << "proc " << q;
  }
}

TEST(LuTest, DdsDeclinesWithFactorizationProgress) {
  // The active window shrinks => fewer accesses per interval to remote
  // perimeter homes => DDS trends down over the run.
  LuParams p;
  p.n = 128;
  p.block = 8;
  const auto run = run_lu(p, 4, 60'000);
  const auto& iv = run.procs[1].intervals;
  ASSERT_GE(iv.size(), 6u);
  const std::size_t k = iv.size() / 3;
  double early = 0.0, late = 0.0;
  for (std::size_t i = 1; i <= k; ++i) early += iv[i].dds;
  for (std::size_t i = iv.size() - k; i < iv.size(); ++i) late += iv[i].dds;
  EXPECT_GT(early, late);
}

TEST(LuDeathTest, RejectsIndivisibleBlocking) {
  LuParams p;
  p.n = 100;
  p.block = 16;
  EXPECT_DEATH(make_lu(p), "");
}

}  // namespace
}  // namespace dsm::apps
