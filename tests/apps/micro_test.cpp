// micro_test.cpp — the synthetic micro-workloads have *provable* phase
// structure; these tests pin the detector-facing properties the
// integration suite builds on.
#include <gtest/gtest.h>

#include "apps/micro.hpp"
#include "sim/machine.hpp"

namespace dsm::apps {
namespace {

MicroParams small() {
  MicroParams p;
  p.repeats = 4;
  p.iters_per_segment = 4000;
  return p;
}

sim::RunSummary run(const sim::AppFn& fn, unsigned nodes,
                    InstrCount per_proc_interval = 20'000) {
  MachineConfig cfg = default_config(nodes);
  cfg.phase.interval_instructions = per_proc_interval * nodes;
  sim::Machine m(cfg);
  return m.run(fn);
}

TEST(MicroTest, UniformHasFlatProfile) {
  const auto r = run(make_uniform(small()), 4);
  const auto& iv = r.procs[0].intervals;
  ASSERT_GE(iv.size(), 4u);
  double lo = 1e300, hi = 0.0;
  // Skip the first interval: cold caches inflate it in any workload.
  for (std::size_t i = 1; i < iv.size(); ++i) {
    lo = std::min(lo, iv[i].cpi);
    hi = std::max(hi, iv[i].cpi);
  }
  EXPECT_LT(hi / lo, 1.8) << "uniform workload should be nearly flat";
}

TEST(MicroTest, TwoPhaseHasTwoRecurringBbvSignatures) {
  const auto r = run(make_two_phase(small()), 2);
  const auto& iv = r.procs[0].intervals;
  ASSERT_GE(iv.size(), 6u);
  // The trace must contain two *recurring* BBV clusters: pick the first
  // interval as one anchor, find a distant interval as the other anchor,
  // and verify every interval is close to one of them (mixed boundary
  // intervals may fall between; require 70%).
  const auto& anchor_a = iv.front().bbv;
  const phase::BbvVector* anchor_b = nullptr;
  for (const auto& rec : iv) {
    if (phase::manhattan(anchor_a, rec.bbv) > 60'000) {
      anchor_b = &rec.bbv;
      break;
    }
  }
  ASSERT_NE(anchor_b, nullptr) << "never saw a second BBV signature";
  unsigned close = 0;
  for (const auto& rec : iv) {
    const auto da = phase::manhattan(anchor_a, rec.bbv);
    const auto db = phase::manhattan(*anchor_b, rec.bbv);
    close += (std::min(da, db) < 20'000);
  }
  EXPECT_GT(close * 10, iv.size() * 7);
}

TEST(MicroTest, HotHomeSegmentsShareBbvButNotDds) {
  // The paper's premise in its purest form.
  const auto r = run(make_hot_home(small()), 4, 30'000);
  const auto& iv = r.procs[2].intervals;  // a remote processor
  ASSERT_GE(iv.size(), 4u);
  // Halves alternate with the barrier; locate intervals by their dominant
  // home: hot intervals put most F-weight on home 0.
  std::vector<double> hot_dds, local_dds;
  for (const auto& rec : iv) {
    std::uint64_t total = 0;
    for (const auto f : rec.f) total += f;
    if (total == 0) continue;
    if (rec.f[0] > total / 2) hot_dds.push_back(rec.dds);
    else local_dds.push_back(rec.dds);
  }
  ASSERT_GE(hot_dds.size(), 2u);
  ASSERT_GE(local_dds.size(), 2u);
  // Identical BBVs across all intervals...
  for (std::size_t i = 1; i < iv.size(); ++i)
    EXPECT_LT(phase::manhattan(iv[0].bbv, iv[i].bbv), 3000u);
  // ...but DDS separates the segments: every hot interval's DDS exceeds
  // every local interval's (the gap scales with the contention on home 0).
  double hot_min = 1e300, local_max = 0.0;
  for (const double d : hot_dds) hot_min = std::min(hot_min, d);
  for (const double d : local_dds) local_max = std::max(local_max, d);
  EXPECT_GT(hot_min, 1.2 * local_max);
}

TEST(MicroTest, HotHomeRemoteProcsPayMoreInHotSegments) {
  const auto r = run(make_hot_home(small()), 4, 30'000);
  const auto& iv = r.procs[3].intervals;
  double hot_cpi = 0, local_cpi = 0;
  unsigned hot_n = 0, local_n = 0;
  for (const auto& rec : iv) {
    std::uint64_t total = 0;
    for (const auto f : rec.f) total += f;
    if (total == 0) continue;
    if (rec.f[0] > total / 2) {
      hot_cpi += rec.cpi;
      ++hot_n;
    } else {
      local_cpi += rec.cpi;
      ++local_n;
    }
  }
  ASSERT_GT(hot_n, 0u);
  ASSERT_GT(local_n, 0u);
  EXPECT_GT(hot_cpi / hot_n, 1.2 * (local_cpi / local_n));
}

TEST(MicroTest, ImbalanceRotatesSlowProcessors) {
  const auto r = run(make_imbalance(small()), 4, 50'000);
  // Everyone ends at the same barrier-released cycle.
  for (unsigned p = 1; p < 4; ++p)
    EXPECT_EQ(r.final_cycles[p], r.final_cycles[0]);
  // But per-round sync waits are nonzero (the heavy third rotates).
  EXPECT_GT(r.barrier_wait_mean, 0.0);
}

}  // namespace
}  // namespace dsm::apps
