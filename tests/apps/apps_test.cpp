// apps_test.cpp — behavioural checks of the four workload models: each
// must exhibit the properties its substitution is required to preserve
// (DESIGN.md §2): realistic structure, growing remote traffic with node
// count, deterministic re-execution, and the phase-bearing time variation
// the paper's detectors feed on.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "sim/machine.hpp"

namespace dsm::apps {
namespace {

sim::RunSummary run(const std::string& name, unsigned nodes) {
  MachineConfig cfg = default_config(nodes);
  cfg.phase.interval_instructions = scaled_interval(name, Scale::kTest);
  sim::Machine m(cfg);
  return m.run(app_by_name(name).factory(Scale::kTest));
}

class AppBehaviourTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AppBehaviourTest, RunsToCompletionAndRecordsIntervals) {
  const auto r = run(GetParam(), 4);
  EXPECT_GE(r.min_intervals(), 3u) << "too few intervals to analyze";
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_GT(r.instructions[p], 0u);
    EXPECT_GT(r.cpi(p), 0.0);
    EXPECT_LT(r.cpi(p), 1000.0);
  }
}

TEST_P(AppBehaviourTest, AllProcessorsDoComparableWork) {
  const auto r = run(GetParam(), 4);
  InstrCount lo = r.instructions[0], hi = r.instructions[0];
  for (unsigned p = 1; p < 4; ++p) {
    lo = std::min(lo, r.instructions[p]);
    hi = std::max(hi, r.instructions[p]);
  }
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 4.0);
}

TEST_P(AppBehaviourTest, CpiVariesAcrossIntervals) {
  // Phase detection is pointless on a flat CPI profile; every workload
  // must show time variation.
  const auto r = run(GetParam(), 4);
  double lo = 1e300, hi = 0.0;
  for (const auto& rec : r.procs[0].intervals) {
    lo = std::min(lo, rec.cpi);
    hi = std::max(hi, rec.cpi);
  }
  EXPECT_GT(hi / lo, 1.05) << "CPI profile too flat";
}

TEST_P(AppBehaviourTest, DeterministicAcrossRuns) {
  const auto a = run(GetParam(), 2);
  const auto b = run(GetParam(), 2);
  EXPECT_EQ(a.final_cycles[0], b.final_cycles[0]);
  EXPECT_EQ(a.instructions[0], b.instructions[0]);
  EXPECT_EQ(a.net_messages[1], b.net_messages[1]);
}

TEST_P(AppBehaviourTest, DdvVectorsPopulated) {
  const auto r = run(GetParam(), 4);
  bool any_remote_f = false;
  for (const auto& rec : r.procs[1].intervals) {
    ASSERT_EQ(rec.f.size(), 4u);
    for (NodeId j = 0; j < 4; ++j) {
      if (j != 1 && rec.f[j] > 0) any_remote_f = true;
      EXPECT_GE(rec.c[j], rec.f[j]);  // C aggregates everyone
    }
  }
  EXPECT_TRUE(any_remote_f) << "workload never touches remote homes";
}

INSTANTIATE_TEST_SUITE_P(PaperApps, AppBehaviourTest,
                         ::testing::Values("LU", "FMM", "Art", "Equake"));

TEST(AppScalingTest, RemoteShareOfMissesGrowsWithNodes) {
  // The DSM effect the paper's §III-A analysis rests on: with more nodes,
  // a larger share of off-chip traffic is remote.
  for (const char* name : {"LU", "Equake"}) {
    const auto r2 = run(name, 2);
    const auto r8 = run(name, 8);
    auto remote_share = [](const sim::RunSummary& r) {
      double rem = 0, tot = 0;
      for (unsigned p = 0; p < r.coherence.size(); ++p) {
        const auto& c = r.coherence[p];
        rem += static_cast<double>(c.remote_mem + c.cache_to_cache);
        tot += static_cast<double>(c.remote_mem + c.cache_to_cache +
                                   c.local_mem);
      }
      return tot == 0 ? 0.0 : rem / tot;
    };
    EXPECT_GT(remote_share(r8), remote_share(r2)) << name;
  }
}

TEST(AppRegistryTest, LookupByNameCaseInsensitive) {
  EXPECT_EQ(app_by_name("lu").name, "LU");
  EXPECT_EQ(app_by_name("EQUAKE").name, "Equake");
  EXPECT_EQ(paper_apps().size(), 4u);
}

TEST(AppRegistryTest, ScaledIntervalShrinksWithScale) {
  for (const auto& app : paper_apps()) {
    const auto paper = scaled_interval(app.name, Scale::kPaper);
    const auto bench = scaled_interval(app.name, Scale::kBench);
    const auto test = scaled_interval(app.name, Scale::kTest);
    EXPECT_EQ(paper, 3'000'000u) << app.name;
    EXPECT_LT(bench, paper) << app.name;
    EXPECT_LE(test, bench) << app.name;
    EXPECT_GE(test, 20'000u) << app.name;  // floor
  }
}

TEST(AppRegistryTest, Table2InputStringsMatchPaper) {
  EXPECT_EQ(app_by_name("LU").input_paper, "512x512 matrix, 16x16 block");
  EXPECT_EQ(app_by_name("FMM").input_paper, "65,536 particles");
  EXPECT_NE(app_by_name("Art").input_paper.find("MinneSPEC-Large"),
            std::string::npos);
  EXPECT_NE(app_by_name("Equake").input_paper.find("MinneSPEC-Large"),
            std::string::npos);
}

}  // namespace
}  // namespace dsm::apps
