#include "phase/detector.hpp"

#include <gtest/gtest.h>

namespace dsm::phase {
namespace {

IntervalRecord make_interval(unsigned hot_bucket, double dds,
                             double cpi = 1.0) {
  IntervalRecord r;
  r.bbv.assign(32, 0);
  r.bbv[hot_bucket] = 65536;
  r.dds = dds;
  r.cpi = cpi;
  r.instructions = 100'000;
  r.cycles = static_cast<Cycle>(cpi * 100'000);
  return r;
}

TEST(DetectorTest, BbvDetectorIgnoresDds) {
  BbvDetector d(32, Thresholds{.bbv = 1000, .dds = 0.0});
  const auto a = d.classify(make_interval(0, 100.0));
  const auto b = d.classify(make_interval(0, 1e9));
  EXPECT_EQ(a.phase, b.phase);
}

TEST(DetectorTest, BbvDdvDetectorSplitsOnDds) {
  BbvDdvDetector d(32, Thresholds{.bbv = 1000, .dds = 50.0});
  const auto a = d.classify(make_interval(0, 100.0));
  const auto b = d.classify(make_interval(0, 1e9));
  EXPECT_NE(a.phase, b.phase);
  // Back near the first DDS: rejoins phase a.
  const auto c = d.classify(make_interval(0, 120.0));
  EXPECT_EQ(c.phase, a.phase);
}

TEST(DetectorTest, BothSplitOnBbv) {
  BbvDetector bbv(32, Thresholds{.bbv = 1000});
  BbvDdvDetector ddv(32, Thresholds{.bbv = 1000, .dds = 1e18});
  for (auto* base : {static_cast<PhaseDetector*>(&bbv),
                     static_cast<PhaseDetector*>(&ddv)}) {
    const auto a = base->classify(make_interval(0, 0.0));
    const auto b = base->classify(make_interval(7, 0.0));
    EXPECT_NE(a.phase, b.phase) << base->name();
  }
}

TEST(DetectorTest, ResetStartsOver) {
  BbvDdvDetector d(32, Thresholds{.bbv = 1000, .dds = 50.0});
  d.classify(make_interval(0, 0.0));
  d.classify(make_interval(1, 0.0));
  d.reset();
  const auto c = d.classify(make_interval(5, 0.0));
  EXPECT_EQ(c.phase, 0);
  EXPECT_TRUE(c.new_phase);
}

TEST(DetectorTest, Names) {
  BbvDetector a(4, {});
  BbvDdvDetector b(4, {});
  EXPECT_STREQ(a.name(), "BBV");
  EXPECT_STREQ(b.name(), "BBV+DDV");
}

}  // namespace
}  // namespace dsm::phase
