// traffic_model_test.cpp — checks the analytic DDV-overhead model against
// the numbers the paper states in §III-B.
#include "phase/traffic_model.hpp"

#include <gtest/gtest.h>

namespace dsm::phase {
namespace {

TEST(TrafficModelTest, PaperScenarioReproducesTheClaim) {
  DdvTrafficParams p;  // defaults = the paper's assumptions
  const auto r = ddv_traffic(p);
  // 2 GHz * IPC 1 / 100M instructions = 20 interval ends per second.
  EXPECT_DOUBLE_EQ(r.intervals_per_second, 20.0);
  // 31 peers x (8 + 32*4) bytes.
  EXPECT_EQ(r.bytes_per_gather, 31u * 136u);
  // "about 160kB/s": we land within 10%.
  EXPECT_NEAR(r.node_bytes_per_second, 160e3, 16e3);
  // "under 0.15% of the peak bandwidth" of 1.5 GB/s.
  EXPECT_LT(r.fraction_of_controller, 0.0015);
  EXPECT_GT(r.fraction_of_controller, 0.0);
}

TEST(TrafficModelTest, SingleNodeHasNoTraffic) {
  DdvTrafficParams p;
  p.nodes = 1;
  const auto r = ddv_traffic(p);
  EXPECT_EQ(r.bytes_per_gather, 0u);
  EXPECT_DOUBLE_EQ(r.node_bytes_per_second, 0.0);
}

TEST(TrafficModelTest, TrafficGrowsQuadraticallyWithNodes) {
  DdvTrafficParams p;
  p.nodes = 8;
  const auto r8 = ddv_traffic(p);
  p.nodes = 16;
  const auto r16 = ddv_traffic(p);
  // bytes/gather ~ (n-1)(8+4n): 8 -> 280, 16 -> 1080; ratio ~3.86.
  EXPECT_EQ(r8.bytes_per_gather, 7u * 40u);
  EXPECT_EQ(r16.bytes_per_gather, 15u * 72u);
  EXPECT_GT(r16.system_bytes_per_second / r8.system_bytes_per_second, 3.0);
}

TEST(TrafficModelTest, LongerIntervalsLowerTheRate) {
  DdvTrafficParams p;
  const auto base = ddv_traffic(p);
  p.interval_instructions *= 10;
  const auto slower = ddv_traffic(p);
  EXPECT_NEAR(slower.node_bytes_per_second,
              base.node_bytes_per_second / 10.0, 1.0);
}

TEST(TrafficModelTest, SimulationScaleIntervalStillCheap) {
  // At the paper's *simulated* interval (3M instructions), the mechanism
  // remains well under 1% of controller bandwidth.
  DdvTrafficParams p;
  p.interval_instructions = 3'000'000;
  const auto r = ddv_traffic(p);
  EXPECT_LT(r.fraction_of_controller, 0.01);
}

}  // namespace
}  // namespace dsm::phase
