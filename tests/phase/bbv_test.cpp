#include "phase/bbv.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace dsm::phase {
namespace {

TEST(ManhattanTest, BasicDistances) {
  const BbvVector a{1, 2, 3};
  const BbvVector b{3, 2, 1};
  EXPECT_EQ(manhattan(a, b), 4u);
  EXPECT_EQ(manhattan(a, a), 0u);
}

TEST(ManhattanTest, CappedEarlyExitAgreesUnderCap) {
  const BbvVector a{100, 0, 0, 50};
  const BbvVector b{0, 100, 0, 0};
  const auto full = manhattan(a, b);  // 250
  EXPECT_EQ(manhattan_capped(a, b, 1000), full);
  // Over the cap: any value > cap is acceptable; must be > cap.
  EXPECT_GT(manhattan_capped(a, b, 10), 10u);
}

TEST(ManhattanTest, SymmetryAndTriangle) {
  const BbvVector a{5, 1, 9, 0}, b{2, 2, 2, 2}, c{0, 0, 0, 10};
  EXPECT_EQ(manhattan(a, b), manhattan(b, a));
  EXPECT_LE(manhattan(a, c), manhattan(a, b) + manhattan(b, c));
}

TEST(BbvAccumulatorTest, RecordsInstructionsAtHashedIndex) {
  BbvAccumulator acc(32, 1u << 16);
  acc.record_branch(0x400100, 20);
  EXPECT_EQ(acc.total_weight(), 20u);
  const unsigned idx = acc.index_of(0x400100);
  EXPECT_EQ(acc.raw()[idx], 20u);
}

TEST(BbvAccumulatorTest, SnapshotNormalizesToNorm) {
  BbvAccumulator acc(8, 1000);
  acc.record_branch(0x100, 30);
  acc.record_branch(0x200, 10);
  const auto v = acc.snapshot();
  const auto sum = std::accumulate(v.begin(), v.end(), 0u);
  // Integer floor division loses at most (entries - 1).
  EXPECT_LE(sum, 1000u);
  EXPECT_GE(sum, 1000u - 8u);
}

TEST(BbvAccumulatorTest, SnapshotProportionsReflectWeights) {
  BbvAccumulator acc(32, 1u << 16);
  // Two distinct branch sites, 3:1 instruction weight.
  acc.record_branch(0x111000, 75);
  acc.record_branch(0x222000, 25);
  const auto v = acc.snapshot();
  const unsigned i1 = acc.index_of(0x111000);
  const unsigned i2 = acc.index_of(0x222000);
  ASSERT_NE(i1, i2);
  EXPECT_NEAR(static_cast<double>(v[i1]) / v[i2], 3.0, 0.01);
}

TEST(BbvAccumulatorTest, ScaleInvarianceOfSnapshots) {
  // The same behaviour at different interval lengths must produce nearly
  // identical normalized vectors — the property that makes one threshold
  // work across interval sizes.
  BbvAccumulator a(32, 1u << 16), b(32, 1u << 16);
  for (int i = 0; i < 10; ++i) {
    a.record_branch(0x100, 7);
    a.record_branch(0x200, 3);
  }
  for (int i = 0; i < 1000; ++i) {
    b.record_branch(0x100, 7);
    b.record_branch(0x200, 3);
  }
  EXPECT_LE(manhattan(a.snapshot(), b.snapshot()), 4u);
}

TEST(BbvAccumulatorTest, EmptySnapshotIsZero) {
  BbvAccumulator acc(16, 1000);
  const auto v = acc.snapshot();
  for (const auto x : v) EXPECT_EQ(x, 0u);
}

TEST(BbvAccumulatorTest, ResetClears) {
  BbvAccumulator acc(16, 1000);
  acc.record_branch(0x100, 42);
  acc.reset();
  EXPECT_EQ(acc.total_weight(), 0u);
  for (const auto x : acc.raw()) EXPECT_EQ(x, 0u);
}

TEST(BbvAccumulatorTest, DifferentMixesAreDistant) {
  BbvAccumulator a(32, 1u << 16), b(32, 1u << 16);
  a.record_branch(0x100, 100);
  b.record_branch(0x2000, 100);
  // Two pure single-site vectors at different indices: distance = 2*norm.
  ASSERT_NE(a.index_of(0x100), a.index_of(0x2000));
  EXPECT_EQ(manhattan(a.snapshot(), b.snapshot()), 2u * (1u << 16));
}

// Entry-count sweep: hashing must stay within bounds for any table size.
class BbvEntriesTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BbvEntriesTest, IndicesInRangeAndStable) {
  const unsigned entries = GetParam();
  BbvAccumulator acc(entries, 1u << 16);
  for (Addr pc = 0x400000; pc < 0x400000 + 4096; pc += 4) {
    const unsigned idx = acc.index_of(pc);
    EXPECT_LT(idx, entries);
    EXPECT_EQ(idx, acc.index_of(pc));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BbvEntriesTest,
                         ::testing::Values(1u, 8u, 32u, 33u, 64u, 128u));

}  // namespace
}  // namespace dsm::phase
