#include "phase/predictor.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dsm::phase {
namespace {

double run_sequence(PhasePredictor& p, const std::vector<PhaseId>& seq,
                    int repeats = 1) {
  for (int r = 0; r < repeats; ++r)
    for (const PhaseId ph : seq) p.observe(ph);
  return p.accuracy();
}

TEST(LastPhaseTest, PerfectOnConstantSequence) {
  LastPhasePredictor p;
  EXPECT_DOUBLE_EQ(run_sequence(p, std::vector<PhaseId>(50, 3)), 1.0);
}

TEST(LastPhaseTest, PoorOnAlternation) {
  LastPhasePredictor p;
  std::vector<PhaseId> seq;
  for (int i = 0; i < 100; ++i) seq.push_back(i % 2);
  EXPECT_LT(run_sequence(p, seq), 0.05);
}

TEST(MarkovTest, LearnsAlternation) {
  MarkovPhasePredictor p;
  std::vector<PhaseId> seq;
  for (int i = 0; i < 20; ++i) seq.push_back(i % 2);
  run_sequence(p, seq);  // warmup
  // After warmup, predictions are perfect.
  p.observe(0);
  EXPECT_EQ(p.predict(), 1);
  p.observe(1);
  EXPECT_EQ(p.predict(), 0);
}

TEST(MarkovTest, LearnsCycleOfThree) {
  MarkovPhasePredictor p;
  std::vector<PhaseId> seq;
  for (int i = 0; i < 30; ++i) seq.push_back(i % 3);
  run_sequence(p, seq);
  p.observe(2);
  EXPECT_EQ(p.predict(), 0);
}

TEST(MarkovTest, FallsBackToLastPhaseWhenUnseen) {
  MarkovPhasePredictor p;
  p.observe(7);
  EXPECT_EQ(p.predict(), 7);  // no transition data yet
}

TEST(RunLengthTest, AnticipatesPhaseEndings) {
  // Phase 1 always lasts exactly 3 intervals, then phase 2 for 1:
  // 1 1 1 2 1 1 1 2 ... A run-length predictor nails the switch; a
  // last-phase predictor misses twice per period.
  RunLengthPredictor rl;
  LastPhasePredictor last;
  std::vector<PhaseId> seq;
  for (int i = 0; i < 25; ++i) {
    seq.push_back(1);
    seq.push_back(1);
    seq.push_back(1);
    seq.push_back(2);
  }
  const double rl_acc = run_sequence(rl, seq);
  const double last_acc = run_sequence(last, seq);
  EXPECT_GT(rl_acc, 0.9);
  EXPECT_LT(last_acc, 0.6);
}

TEST(RunLengthTest, PerfectOnConstant) {
  RunLengthPredictor p;
  EXPECT_DOUBLE_EQ(run_sequence(p, std::vector<PhaseId>(40, 9)), 1.0);
}

TEST(PredictorTest, ResetsClearAccuracy) {
  for (PhasePredictor* p :
       std::initializer_list<PhasePredictor*>{new LastPhasePredictor,
                                              new MarkovPhasePredictor,
                                              new RunLengthPredictor}) {
    run_sequence(*p, {1, 2, 3, 1, 2, 3});
    p->reset();
    EXPECT_EQ(p->predictions(), 0u) << p->name();
    EXPECT_EQ(p->predict(), kNoPhase) << p->name();
    delete p;
  }
}

TEST(PredictorTest, AccuracyCountsOnlyScoredObservations) {
  LastPhasePredictor p;
  p.observe(1);  // first observation cannot be scored
  EXPECT_EQ(p.predictions(), 0u);
  p.observe(1);
  EXPECT_EQ(p.predictions(), 1u);
  EXPECT_EQ(p.correct(), 1u);
}

}  // namespace
}  // namespace dsm::phase
