// ddv_test.cpp — verifies the DdvFabric implements the paper's §III-B
// semantics exactly, including the equivalence of the O(1)-per-access
// cumulative-counter implementation with the paper's "increment all F_kj"
// formulation, and the per-processor interval alignment of the on-behalf
// counts.
#include "phase/ddv.hpp"

#include <gtest/gtest.h>

#include "network/topology.hpp"

namespace dsm::phase {
namespace {

std::vector<std::uint32_t> unit_distance(unsigned n) {
  // D[i][j] = 1 everywhere (legal: D[i][i] must be 1).
  return std::vector<std::uint32_t>(std::size_t{n} * n, 1);
}

TEST(DdvTest, FrequencyMatchesPaperDefinition) {
  // "F^p[k][j] counts loads/stores by p to home j since k's last gather."
  DdvFabric ddv(3, unit_distance(3));
  ddv.record_access(0, 2);
  ddv.record_access(0, 2);
  ddv.record_access(1, 0);
  // All rows k see p's accesses (no gather yet).
  for (NodeId k = 0; k < 3; ++k) {
    EXPECT_EQ(ddv.frequency(0, k, 2), 2u) << "k=" << k;
    EXPECT_EQ(ddv.frequency(1, k, 0), 1u) << "k=" << k;
    EXPECT_EQ(ddv.frequency(2, k, 1), 0u) << "k=" << k;
  }
}

TEST(DdvTest, GatherResetsOnlyTheGatherersRows) {
  DdvFabric ddv(3, unit_distance(3));
  ddv.record_access(0, 1);
  ddv.record_access(2, 1);
  ddv.gather(0);  // zeroes F^p[0][*] for all p
  for (NodeId p : {0u, 2u}) EXPECT_EQ(ddv.frequency(p, 0, 1), 0u) << p;
  // Processor 1's view is untouched.
  EXPECT_EQ(ddv.frequency(0, 1, 1), 1u);
  EXPECT_EQ(ddv.frequency(2, 1, 1), 1u);
}

TEST(DdvTest, IntervalsAlignPerGatherer) {
  // Accesses recorded between two processors' different interval
  // boundaries must appear in exactly the right windows.
  DdvFabric ddv(2, unit_distance(2));
  ddv.record_access(0, 0);  // before everyone's boundary
  ddv.gather(1);            // processor 1 starts a new interval
  ddv.record_access(0, 0);  // after 1's boundary, before 0's
  const auto g0 = ddv.gather(0);
  EXPECT_EQ(g0.own_f[0], 2u);  // 0 never gathered: sees both accesses
  const auto g1 = ddv.gather(1);
  EXPECT_EQ(g1.c[0], 1u);  // 1 sees only the access after its boundary
}

TEST(DdvTest, ContentionSumsAllProcessors) {
  DdvFabric ddv(3, unit_distance(3));
  ddv.record_access(0, 1);
  ddv.record_access(1, 1);
  ddv.record_access(2, 1);
  ddv.record_access(2, 0);
  const auto g = ddv.gather(0);
  EXPECT_EQ(g.c[1], 3u);  // everyone's accesses to home 1
  EXPECT_EQ(g.c[0], 1u);
  EXPECT_EQ(g.c[2], 0u);
}

TEST(DdvTest, DdsFormulaExact) {
  // 2 nodes, D = [[1, 3], [3, 1]].
  DdvFabric ddv(2, {1, 3, 3, 1});
  // Processor 0: 4 accesses home 0, 2 accesses home 1.
  for (int i = 0; i < 4; ++i) ddv.record_access(0, 0);
  for (int i = 0; i < 2; ++i) ddv.record_access(0, 1);
  // Processor 1: 5 accesses home 1.
  for (int i = 0; i < 5; ++i) ddv.record_access(1, 1);
  const auto g = ddv.gather(0);
  // C = {4, 7}; DDS_0 = F00*D00*C0 + F01*D01*C1 = 4*1*4 + 2*3*7 = 58.
  EXPECT_EQ(g.c[0], 4u);
  EXPECT_EQ(g.c[1], 7u);
  EXPECT_DOUBLE_EQ(g.dds, 58.0);
}

TEST(DdvTest, EquivalenceWithNaiveMatrixImplementation) {
  // Replay a random access/gather sequence against a literal n*n*n
  // implementation of the paper's text and compare everything.
  const unsigned n = 4;
  net::TopologyModel topo(Topology::kHypercube, n);
  DdvFabric ddv(n, topo.ddv_distance_matrix());

  std::vector<std::uint64_t> naive(n * n * n, 0);  // [p][k][j]
  auto idx = [n](unsigned p, unsigned k, unsigned j) {
    return (std::size_t{p} * n + k) * n + j;
  };

  std::uint64_t seed = 42;
  auto rnd = [&seed]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };

  for (int step = 0; step < 2000; ++step) {
    if (rnd() % 10 != 0) {
      const auto p = static_cast<NodeId>(rnd() % n);
      const auto j = static_cast<NodeId>(rnd() % n);
      ddv.record_access(p, j);
      // Paper: "increments all F_kj" at processor p.
      for (unsigned k = 0; k < n; ++k) ++naive[idx(p, k, j)];
    } else {
      const auto i = static_cast<NodeId>(rnd() % n);
      const auto g = ddv.gather(i);
      // Naive gather: C_j = sum_p F^p[i][j]; own = F^i[i][*]; reset row i.
      double dds = 0.0;
      for (unsigned j = 0; j < n; ++j) {
        std::uint64_t c = 0;
        for (unsigned p = 0; p < n; ++p) c += naive[idx(p, i, j)];
        EXPECT_EQ(g.c[j], c) << "step " << step;
        EXPECT_EQ(g.own_f[j], naive[idx(i, i, j)]) << "step " << step;
        dds += static_cast<double>(naive[idx(i, i, j)]) *
               topo.ddv_distance(i, j) * static_cast<double>(c);
      }
      EXPECT_DOUBLE_EQ(g.dds, dds) << "step " << step;
      for (unsigned p = 0; p < n; ++p)
        for (unsigned j = 0; j < n; ++j) naive[idx(p, i, j)] = 0;
    }
  }
}

TEST(DdvTest, GatherPayloadBytes) {
  DdvFabric ddv(32, unit_distance(32));
  // 31 peers x (8-byte request + 32 4-byte counters) = 31 * 136 = 4216.
  EXPECT_EQ(ddv.gather_payload_bytes(), 4216u);
  DdvFabric single(1, unit_distance(1));
  EXPECT_EQ(single.gather_payload_bytes(), 0u);
}

TEST(DdvTest, ResetZeroesState) {
  DdvFabric ddv(2, unit_distance(2));
  ddv.record_access(0, 1);
  ddv.reset();
  const auto g = ddv.gather(0);
  EXPECT_EQ(g.c[1], 0u);
  EXPECT_DOUBLE_EQ(g.dds, 0.0);
}

TEST(DdvDeathTest, RejectsNonUnitDiagonal) {
  std::vector<std::uint32_t> bad{2, 1, 1, 1};  // D[0][0] == 2
  EXPECT_DEATH(DdvFabric(2, bad), "D\\[i\\]\\[i\\]");
}

}  // namespace
}  // namespace dsm::phase
