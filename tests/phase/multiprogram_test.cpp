// multiprogram_test.cpp — the paper's §III-B multiprogramming options:
// carrying detector state in the thread context vs clearing it on every
// switch, and the tuning cost of the latter.
#include <gtest/gtest.h>

#include "phase/detector.hpp"

namespace dsm::phase {
namespace {

IntervalRecord interval_of(unsigned bucket, double dds) {
  IntervalRecord r;
  r.bbv.assign(32, 0);
  r.bbv[bucket] = 65536;
  r.dds = dds;
  r.instructions = 100'000;
  r.cycles = 100'000;
  r.cpi = 1.0;
  return r;
}

/// Two "applications" with disjoint behaviours time-share one detector.
struct Workloads {
  std::vector<IntervalRecord> app_a{interval_of(0, 100), interval_of(1, 200)};
  std::vector<IntervalRecord> app_b{interval_of(7, 9000),
                                    interval_of(8, 9500)};
};

Thresholds loose() { return Thresholds{.bbv = 2000, .dds = 50.0}; }

TEST(MultiprogramTest, SaveRestorePreservesPhaseIdentity) {
  Workloads w;
  BbvDdvDetector det(8, loose());

  // App A establishes its phases.
  const PhaseId a0 = det.classify(w.app_a[0]).phase;
  const PhaseId a1 = det.classify(w.app_a[1]).phase;
  FootprintTable ctx_a = det.save_context();

  // Context switch to app B on the same hardware (fresh state).
  det.reset();
  det.classify(w.app_b[0]);
  det.classify(w.app_b[1]);
  FootprintTable ctx_b = det.save_context();

  // Switch back to A: with its context restored, A's intervals rejoin
  // their old phases — no re-tuning.
  det.restore_context(std::move(ctx_a));
  auto c0 = det.classify(w.app_a[0]);
  auto c1 = det.classify(w.app_a[1]);
  EXPECT_FALSE(c0.new_phase);
  EXPECT_FALSE(c1.new_phase);
  EXPECT_EQ(c0.phase, a0);
  EXPECT_EQ(c1.phase, a1);

  // And B's context is equally intact.
  det.restore_context(std::move(ctx_b));
  EXPECT_FALSE(det.classify(w.app_b[0]).new_phase);
}

TEST(MultiprogramTest, ClearingCostsRetuningEveryQuantum) {
  // The paper's alternative: clear on switch "at the expense of more
  // tuning". Count new-phase allocations over repeated switching.
  Workloads w;
  BbvDdvDetector det(8, loose());

  unsigned new_phases_clearing = 0;
  for (int quantum = 0; quantum < 6; ++quantum) {
    det.reset();  // cleared on every switch
    const auto& app = (quantum % 2 == 0) ? w.app_a : w.app_b;
    for (const auto& rec : app)
      new_phases_clearing += det.classify(rec).new_phase;
  }

  BbvDdvDetector det2(8, loose());
  FootprintTable ctx_a = det2.save_context();  // empty initial contexts
  FootprintTable ctx_b = det2.save_context();
  unsigned new_phases_saving = 0;
  for (int quantum = 0; quantum < 6; ++quantum) {
    const bool is_a = quantum % 2 == 0;
    det2.restore_context(is_a ? std::move(ctx_a) : std::move(ctx_b));
    const auto& app = is_a ? w.app_a : w.app_b;
    for (const auto& rec : app)
      new_phases_saving += det2.classify(rec).new_phase;
    (is_a ? ctx_a : ctx_b) = det2.save_context();
  }

  // Clearing re-allocates every quantum (12 phases); saving allocates
  // each behaviour once (4 total).
  EXPECT_EQ(new_phases_saving, 4u);
  EXPECT_EQ(new_phases_clearing, 12u);
}

TEST(MultiprogramTest, SharedTableWithoutContextsCrossContaminates) {
  // Why per-thread state matters: without save/restore OR clearing, app
  // B's allocations evict app A's footprint entries in a small table.
  Workloads w;
  BbvDdvDetector det(2, loose());  // tiny table: 2 entries
  const PhaseId a0 = det.classify(w.app_a[0]).phase;
  const PhaseId a1 = det.classify(w.app_a[1]).phase;
  EXPECT_NE(a0, a1);
  det.classify(w.app_b[0]);  // evicts A's LRU entries
  det.classify(w.app_b[1]);
  const auto back = det.classify(w.app_a[0]);
  EXPECT_TRUE(back.new_phase) << "A's phase should have been evicted";
}

}  // namespace
}  // namespace dsm::phase
