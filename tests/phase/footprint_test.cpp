#include "phase/footprint.hpp"

#include <gtest/gtest.h>

namespace dsm::phase {
namespace {

BbvVector onehot(unsigned idx, std::uint32_t value = 1000, unsigned n = 8) {
  BbvVector v(n, 0);
  v[idx] = value;
  return v;
}

TEST(FootprintTest, FirstIntervalAllocatesPhaseZero) {
  FootprintTable t(4, false);
  const auto c = t.classify(onehot(0), 0, 100, 0);
  EXPECT_EQ(c.phase, 0);
  EXPECT_TRUE(c.new_phase);
  EXPECT_EQ(t.occupied(), 1u);
}

TEST(FootprintTest, CloseVectorMatchesExistingPhase) {
  FootprintTable t(4, false);
  t.classify(onehot(0, 1000), 0, 100, 0);
  auto v = onehot(0, 980);
  v[1] = 20;
  const auto c = t.classify(v, 0, 100, 0);
  EXPECT_EQ(c.phase, 0);
  EXPECT_FALSE(c.new_phase);
  EXPECT_EQ(c.bbv_distance, 40u);
}

TEST(FootprintTest, DistantVectorAllocatesNewPhase) {
  FootprintTable t(4, false);
  t.classify(onehot(0), 0, 100, 0);
  const auto c = t.classify(onehot(3), 0, 100, 0);
  EXPECT_EQ(c.phase, 1);
  EXPECT_TRUE(c.new_phase);
}

TEST(FootprintTest, ClosestOfMultipleCandidatesWins) {
  FootprintTable t(4, false);
  t.classify(onehot(0, 1000), 0, 5000, 0);  // phase 0
  auto far = onehot(0, 600);
  far[1] = 400;
  t.classify(far, 0, 100, 0);  // distinct: phase 1 (distance 800 > 100)
  // Query at distance 80 from phase 0 and 720 from phase 1, threshold
  // large enough for both: the closer (phase 0) must win.
  auto query = onehot(0, 960);
  query[1] = 40;
  const auto c = t.classify(query, 0, 5000, 0);
  EXPECT_EQ(c.phase, 0);
}

TEST(FootprintTest, DdsConstraintVetoesBbvMatch) {
  FootprintTable t(4, /*use_dds=*/true);
  t.classify(onehot(0), /*dds=*/100.0, 100, 50.0);
  // Same BBV, far DDS: must be a new phase.
  const auto c = t.classify(onehot(0), 400.0, 100, 50.0);
  EXPECT_TRUE(c.new_phase);
  EXPECT_EQ(c.phase, 1);
  // Same BBV, close DDS: matches the *DDS-compatible* entry.
  const auto c2 = t.classify(onehot(0), 390.0, 100, 50.0);
  EXPECT_EQ(c2.phase, 1);
  EXPECT_FALSE(c2.new_phase);
}

TEST(FootprintTest, DdsIgnoredWhenDisabled) {
  FootprintTable t(4, /*use_dds=*/false);
  t.classify(onehot(0), 100.0, 100, 0.0);
  const auto c = t.classify(onehot(0), 1e12, 100, 0.0);
  EXPECT_EQ(c.phase, 0);  // wildly different DDS, same phase
}

TEST(FootprintTest, LruReplacementWhenFull) {
  FootprintTable t(2, false);
  t.classify(onehot(0), 0, 10, 0);  // phase 0
  t.classify(onehot(1), 0, 10, 0);  // phase 1
  t.classify(onehot(0), 0, 10, 0);  // touch phase 0 -> 1 is LRU
  t.classify(onehot(2), 0, 10, 0);  // phase 2 replaces entry of phase 1
  EXPECT_EQ(t.replacements(), 1u);
  // Phase 0's entry survived; vector 1's entry did not.
  EXPECT_EQ(t.classify(onehot(0), 0, 10, 0).phase, 0);
  const auto c = t.classify(onehot(1), 0, 10, 0);
  EXPECT_TRUE(c.new_phase);  // had been evicted, so a *new* phase id
  EXPECT_EQ(c.phase, 3);
}

TEST(FootprintTest, PhaseIdsAreMonotonic) {
  FootprintTable t(8, false);
  for (unsigned i = 0; i < 8; ++i) {
    const auto c = t.classify(onehot(i), 0, 10, 0);
    EXPECT_EQ(c.phase, static_cast<PhaseId>(i));
  }
  EXPECT_EQ(t.phases_issued(), 8);
}

TEST(FootprintTest, ResetForgetsEverything) {
  FootprintTable t(4, false);
  t.classify(onehot(0), 0, 10, 0);
  t.reset();
  EXPECT_EQ(t.occupied(), 0u);
  const auto c = t.classify(onehot(0), 0, 10, 0);
  EXPECT_EQ(c.phase, 0);
  EXPECT_TRUE(c.new_phase);
}

TEST(FootprintTest, ZeroThresholdMakesEveryDistinctVectorAPhase) {
  FootprintTable t(32, false);
  unsigned phases = 0;
  for (unsigned i = 0; i < 8; ++i) {
    const auto c = t.classify(onehot(i), 0, 0, 0);
    phases += c.new_phase;
  }
  EXPECT_EQ(phases, 8u);
  // Exact repeats still match at threshold 0.
  EXPECT_FALSE(t.classify(onehot(3), 0, 0, 0).new_phase);
}

TEST(FootprintTest, HugeThresholdMergesEverything) {
  FootprintTable t(32, false);
  t.classify(onehot(0), 0, 1u << 30, 0);
  for (unsigned i = 1; i < 8; ++i)
    EXPECT_EQ(t.classify(onehot(i), 0, 1u << 30, 0).phase, 0);
}

}  // namespace
}  // namespace dsm::phase
