#include "shard/lease.hpp"

#include <algorithm>

namespace dsm::shard {

std::uint64_t respawn_backoff_ms(const FleetTuning& tuning, unsigned attempt) {
  if (attempt == 0) attempt = 1;
  // Shifting past 63 bits is UB; the cap would have kicked in long before.
  const unsigned shift = std::min(attempt - 1, 62u);
  const std::uint64_t raw = tuning.backoff_base_ms << shift;
  // Detect shift overflow (raw wrapped smaller than base) as "cap".
  if (raw < tuning.backoff_base_ms) return tuning.backoff_max_ms;
  return std::min(raw, tuning.backoff_max_ms);
}

LeaseTable::LeaseTable(std::size_t total, const FleetTuning& tuning)
    : tuning_(tuning), state_(total, State::kPending) {
  for (std::size_t i = 0; i < total; ++i) pending_.insert(pending_.end(), i);
}

void LeaseTable::mark_done(std::size_t index) {
  if (index >= state_.size() || state_[index] == State::kDone) return;
  if (state_[index] == State::kPending) pending_.erase(index);
  state_[index] = State::kDone;
  ++done_;
}

bool LeaseTable::is_done(std::size_t index) const {
  return index < state_.size() && state_[index] == State::kDone;
}

LeaseTable::WorkerState& LeaseTable::worker_state(unsigned worker) {
  if (worker >= workers_.size()) workers_.resize(worker + 1);
  return workers_[worker];
}

std::optional<Lease> LeaseTable::grant(unsigned worker, std::uint64_t now_ms,
                                       unsigned live_workers) {
  WorkerState& ws = worker_state(worker);
  ws.last_heartbeat_ms = now_ms;
  ws.seen = true;
  if (pending_.empty()) return std::nullopt;
  std::size_t chunk = tuning_.lease_chunk;
  if (chunk == 0) {
    const unsigned live = std::max(live_workers, 1u);
    chunk = std::clamp<std::size_t>(pending_.size() / (2 * live), 1, 16);
  }
  // First contiguous run of pending indices starting at the minimum —
  // contiguous leases keep the coordinator's reorder buffer small (the
  // next-to-emit index is usually inside the oldest lease).
  auto it = pending_.begin();
  const std::size_t lo = *it;
  std::size_t hi = lo;
  while (it != pending_.end() && *it == hi && hi - lo < chunk) {
    ws.outstanding.insert(*it);
    state_[*it] = State::kLeased;
    it = pending_.erase(it);
    ++hi;
  }
  return Lease{lo, hi};
}

void LeaseTable::heartbeat(unsigned worker, std::uint64_t now_ms) {
  WorkerState& ws = worker_state(worker);
  ws.last_heartbeat_ms = now_ms;
  ws.seen = true;
}

bool LeaseTable::complete(std::size_t index) {
  if (index >= state_.size() || state_[index] == State::kDone) return false;
  if (state_[index] == State::kPending) pending_.erase(index);
  state_[index] = State::kDone;
  ++done_;
  // Whoever held the lease (if anyone) no longer owes this index.
  for (auto& ws : workers_) ws.outstanding.erase(index);
  return true;
}

std::vector<std::size_t> LeaseTable::release(unsigned worker) {
  std::vector<std::size_t> freed;
  if (worker >= workers_.size()) return freed;
  WorkerState& ws = workers_[worker];
  for (const std::size_t idx : ws.outstanding) {
    state_[idx] = State::kPending;
    pending_.insert(idx);
    freed.push_back(idx);
  }
  ws.outstanding.clear();
  return freed;
}

bool LeaseTable::worker_leased(unsigned worker) const {
  return worker < workers_.size() && !workers_[worker].outstanding.empty();
}

std::size_t LeaseTable::outstanding(unsigned worker) const {
  return worker < workers_.size() ? workers_[worker].outstanding.size() : 0;
}

std::vector<unsigned> LeaseTable::expired(std::uint64_t now_ms) const {
  std::vector<unsigned> dead;
  for (unsigned w = 0; w < workers_.size(); ++w) {
    const WorkerState& ws = workers_[w];
    if (ws.outstanding.empty()) continue;  // parked workers never expire
    if (now_ms - ws.last_heartbeat_ms >= tuning_.heartbeat_deadline_ms)
      dead.push_back(w);
  }
  return dead;
}

std::optional<std::uint64_t> LeaseTable::next_deadline_ms() const {
  std::optional<std::uint64_t> next;
  for (const auto& ws : workers_) {
    if (ws.outstanding.empty()) continue;
    const std::uint64_t at = ws.last_heartbeat_ms +
                             tuning_.heartbeat_deadline_ms;
    if (!next || at < *next) next = at;
  }
  return next;
}

}  // namespace dsm::shard
