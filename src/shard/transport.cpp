#include "shard/transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/parse.hpp"

namespace dsm::shard {

void FrameSplitter::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

std::optional<std::string> FrameSplitter::next() {
  const std::size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  std::string line = buf_.substr(0, nl);
  buf_.erase(0, nl + 1);
  return line;
}

FdTransport::~FdTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool FdTransport::send_raw(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(send_mu_);
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a dead coordinator must surface as a return value,
    // not a SIGPIPE that kills the worker before it can report.
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool FdTransport::send_line(const std::string& line) {
  return send_raw(line + "\n");
}

bool FdTransport::recv_line(std::string* line) {
  for (;;) {
    if (auto got = splitter_.next()) {
      *line = std::move(*got);
      return true;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) return false;  // EOF; eof_truncated() reports a partial
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    splitter_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::optional<Endpoint> parse_endpoint(const std::string& text) {
  Endpoint ep;
  if (text.rfind("fd:", 0) == 0) {
    unsigned long fd = 0;
    if (!parse_unsigned(text.substr(3), 0, 65535, fd)) return std::nullopt;
    ep.is_fd = true;
    ep.fd = static_cast<int>(fd);
    return ep;
  }
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  unsigned long port = 0;
  if (!parse_unsigned(text.substr(colon + 1), 1, 65535, port))
    return std::nullopt;
  ep.host = text.substr(0, colon);
  ep.port = static_cast<unsigned>(port);
  return ep;
}

int connect_endpoint(const Endpoint& ep) {
  if (ep.is_fd) return ep.fd;
  const int fd = tcp_connect(ep.host, ep.port);
  if (fd < 0)
    std::fprintf(stderr, "pull worker: connect %s:%u: %s\n", ep.host.c_str(),
                 ep.port, std::strerror(errno));
  return fd;
}

int tcp_listen(unsigned port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int tcp_accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

int tcp_connect(const std::string& host, unsigned port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0)
    return -1;
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

unsigned tcp_local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

}  // namespace dsm::shard
