// lease.hpp — the coordinator's work-distribution and failure-detection
// state: which spec indices are pending, leased, or done, which worker
// holds each outstanding lease, and when a silent worker must be declared
// dead.
//
// All time is an injected millisecond counter (the coordinator feeds a
// steady clock, tests feed a fake one), so deadline math and
// expiry/backoff behavior are unit-testable without a single real sleep.
// The table knows nothing about processes or sockets — the coordinator
// owns those and asks the table three questions: "what should worker W
// run next?" (grant), "who missed their heartbeat deadline?" (expired),
// and "is the sweep drained?" (all_done).
//
// Leases are ranges of *global spec indices* over the expanded sweep.
// Because per-point seeds are content-hashed (driver/sweep_spec.hpp), a
// point produces bit-identical records no matter which worker runs it or
// how many times it is re-leased after a death — which is why re-issuing
// an expired lease to a survivor cannot change the merged bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

namespace dsm::shard {

/// Fleet timing/retry knobs, all overridable from the bench command line.
struct FleetTuning {
  /// A leased worker whose last heartbeat is at least this old is dead.
  std::uint64_t heartbeat_deadline_ms = 30000;
  /// Cadence workers are told to beat at (welcome message). Kept well
  /// under the deadline so one dropped beat is not a death sentence.
  std::uint64_t heartbeat_interval_ms = 1000;
  /// Times a dead worker slot is respawned before the fleet shrinks for
  /// good. Survivors still drain the released work either way.
  unsigned max_respawns = 3;
  /// Exponential backoff between respawns of the same slot:
  /// min(base << (attempt-1), max) — see respawn_backoff_ms().
  std::uint64_t backoff_base_ms = 250;
  std::uint64_t backoff_max_ms = 8000;
  /// Spec indices per lease; 0 = auto (remaining / (2 * live workers),
  /// clamped to [1, 16]) so leases shrink as the sweep drains and a late
  /// death never strands a large tail behind one worker.
  std::size_t lease_chunk = 0;
};

/// Backoff before respawn attempt `attempt` (1-based) of a worker slot:
/// min(base << (attempt-1), max). attempt 0 is treated as 1.
std::uint64_t respawn_backoff_ms(const FleetTuning& tuning, unsigned attempt);

/// One granted range of spec indices [lo, hi).
struct Lease {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t size() const { return hi - lo; }
};

/// Pull-mode work ledger: every spec index is Pending (never completed,
/// not currently leased), Leased (some live worker owns it), or Done (a
/// complete record arrived). First-complete-wins: a duplicate completion
/// — possible when a lease expires but the original worker's records are
/// still in flight — is reported back to the caller for discard.
class LeaseTable {
 public:
  LeaseTable(std::size_t total, const FleetTuning& tuning);

  std::size_t total() const { return state_.size(); }
  std::size_t done_count() const { return done_; }
  bool all_done() const { return done_ == state_.size(); }

  /// Resume seeding: marks `index` complete before any lease is granted
  /// (a restarted fleet scans the store and calls this per recovered
  /// record, so only the gaps are ever leased).
  void mark_done(std::size_t index);

  /// True when `index` has completed (resume-seeded or run).
  bool is_done(std::size_t index) const;

  /// Grants worker `worker` the first contiguous run of pending indices,
  /// up to the lease chunk for `live_workers` live pullers. Returns
  /// nullopt when nothing is pending (the worker parks: either other
  /// workers' leases are still outstanding, or the sweep is drained).
  /// Granting counts as a heartbeat — a fresh lease restarts the clock.
  std::optional<Lease> grant(unsigned worker, std::uint64_t now_ms,
                             unsigned live_workers);

  /// Records a heartbeat from `worker` at `now_ms`.
  void heartbeat(unsigned worker, std::uint64_t now_ms);

  /// Records a completed spec index. Returns true the first time (caller
  /// emits the record), false for a duplicate (caller discards it).
  /// Accepts completions for indices leased to *other* workers: a worker
  /// whose lease expired may still deliver records before the kill lands,
  /// and those records are valid (content-derived, byte-identical).
  bool complete(std::size_t index);

  /// Releases every outstanding (leased, not done) index owned by
  /// `worker` back to pending; returns them in increasing order. Called
  /// on worker death — the indices go to whoever pulls next.
  std::vector<std::size_t> release(unsigned worker);

  /// True when `worker` currently owns at least one outstanding index.
  bool worker_leased(unsigned worker) const;

  /// Outstanding (leased, not yet done) index count for `worker`.
  std::size_t outstanding(unsigned worker) const;

  /// Workers whose heartbeat deadline has passed at `now_ms` (leased
  /// workers only — a parked worker with no outstanding lease is waiting
  /// on the coordinator, not the other way around, and is exempt). A
  /// worker expires exactly when now - last_heartbeat >= deadline.
  std::vector<unsigned> expired(std::uint64_t now_ms) const;

  /// Earliest future instant at which some leased worker could expire,
  /// or nullopt when no lease is outstanding. The coordinator sleeps in
  /// poll() until min(next event, this).
  std::optional<std::uint64_t> next_deadline_ms() const;

  /// Pending (never-completed, unleased) index count.
  std::size_t pending_count() const { return pending_.size(); }

 private:
  enum class State : std::uint8_t { kPending, kLeased, kDone };

  struct WorkerState {
    std::set<std::size_t> outstanding;
    std::uint64_t last_heartbeat_ms = 0;
    bool seen = false;
  };

  WorkerState& worker_state(unsigned worker);

  FleetTuning tuning_;
  std::vector<State> state_;
  std::set<std::size_t> pending_;  // ordered: leases stay low-index-first
  std::size_t done_ = 0;
  std::vector<WorkerState> workers_;
};

}  // namespace dsm::shard
