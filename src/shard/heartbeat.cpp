#include "shard/heartbeat.hpp"

#include <sys/resource.h>

#include <charconv>
#include <chrono>
#include <cstring>

#include "shard/stream_sink.hpp"

namespace dsm::shard {
namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t max_rss_kb() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in KiB already.
  return static_cast<std::uint64_t>(ru.ru_maxrss);
}

// Heartbeats reuse stream_sink's strict-scanner idiom, but signed
// last_spec needs its own integer step.
struct HbScanner {
  const char* p;
  const char* end;

  bool lit(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end - p) < n || std::memcmp(p, s, n) != 0)
      return false;
    p += n;
    return true;
  }
  bool uint(std::uint64_t& out) {
    const auto [next, ec] = std::from_chars(p, end, out);
    if (ec != std::errc{} || next == p) return false;
    p = next;
    return true;
  }
  bool sint(std::int64_t& out) {
    const auto [next, ec] = std::from_chars(p, end, out);
    if (ec != std::errc{} || next == p) return false;
    p = next;
    return true;
  }
  bool quoted(std::string& out) {
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (end - p < 2) return false;
        switch (p[1]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default: return false;
        }
        p += 2;
      } else {
        out += *p++;
      }
    }
    return lit("\"");
  }
};

}  // namespace

std::string format_heartbeat(const Heartbeat& hb) {
  std::string line = "{\"hb\":1,\"bench\":\"";
  line += json_escape(hb.bench);
  line += "\",\"shard\":\"";
  line += json_escape(hb.shard);
  line += "\",\"done\":";
  line += std::to_string(hb.done);
  line += ",\"total\":";
  line += std::to_string(hb.total);
  line += ",\"last_spec\":";
  line += std::to_string(hb.last_spec);
  line += ",\"wall_ms\":";
  line += std::to_string(hb.wall_ms);
  line += ",\"maxrss_kb\":";
  line += std::to_string(hb.maxrss_kb);
  line += "}";
  return line;
}

bool parse_heartbeat(const std::string& line, Heartbeat* out) {
  HbScanner s{line.data(), line.data() + line.size()};
  Heartbeat hb;
  if (!s.lit("{\"hb\":1,\"bench\":\"")) return false;
  if (!s.quoted(hb.bench)) return false;
  if (!s.lit(",\"shard\":\"")) return false;
  if (!s.quoted(hb.shard)) return false;
  if (!s.lit(",\"done\":")) return false;
  if (!s.uint(hb.done)) return false;
  if (!s.lit(",\"total\":")) return false;
  if (!s.uint(hb.total)) return false;
  if (!s.lit(",\"last_spec\":")) return false;
  if (!s.sint(hb.last_spec)) return false;
  if (!s.lit(",\"wall_ms\":")) return false;
  if (!s.uint(hb.wall_ms)) return false;
  if (!s.lit(",\"maxrss_kb\":")) return false;
  if (!s.uint(hb.maxrss_kb)) return false;
  if (!s.lit("}") || s.p != s.end) return false;
  *out = std::move(hb);
  return true;
}

HeartbeatEmitter::HeartbeatEmitter(const std::string& path, std::string bench,
                                   std::string shard_label,
                                   std::uint64_t total) {
  if (path.empty()) return;
  out_ = std::fopen(path.c_str(), "w");
  if (out_ == nullptr) return;  // telemetry failure never kills a worker
  hb_.bench = std::move(bench);
  hb_.shard = std::move(shard_label);
  hb_.total = total;
  start_ms_ = steady_ms();
  emit();  // done=0: "alive, not yet progressing" beats "no file"
}

HeartbeatEmitter::~HeartbeatEmitter() {
  if (out_ != nullptr) std::fclose(out_);
}

void HeartbeatEmitter::progress(std::int64_t spec_index) {
  if (out_ == nullptr) return;
  ++hb_.done;
  hb_.last_spec = spec_index;
  emit();
}

void HeartbeatEmitter::emit() {
  hb_.wall_ms = steady_ms() - start_ms_;
  hb_.maxrss_kb = max_rss_kb();
  const std::string line = format_heartbeat(hb_);
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fputc('\n', out_);
  // Flush per record: the orchestrator and `dsm_report progress` read the
  // file while the worker runs.
  std::fflush(out_);
}

}  // namespace dsm::shard
