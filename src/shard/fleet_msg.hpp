// fleet_msg.hpp — the pull fleet's control protocol: a handful of
// single-line JSON messages exchanged over the transport seam, sharing
// the wire with the heartbeat and record streams (discriminated by first
// key: "fleet" here, "hb" for heartbeats, "v" for records).
//
//   worker -> coordinator
//     {"fleet":"hello","bench":"<harness>","total":T}
//         sent once after connecting; T = expanded sweep size, so the
//         coordinator learns the work count from the binary that owns
//         the spec instead of re-deriving it.
//     {"fleet":"pull"}
//         "give me work" — sent after hello and after finishing a lease.
//   coordinator -> worker
//     {"fleet":"welcome","worker":W,"hb_ms":H}
//         assigns the slot id and the heartbeat cadence.
//     {"fleet":"lease","lo":L,"hi":H}
//         run spec indices [L, H); optionally carries
//         ,"fault":"<kind>","fault_spec":S — the deterministic
//         fault-injection arming (fires exactly once per run: the
//         coordinator attaches it only to the first lease containing S).
//     {"fleet":"fin"}
//         sweep drained; disconnect and exit 0.
//
// Parsers follow the repo's strict-scanner idiom (heartbeat.cpp): these
// are private wire formats between one binary's coordinator and workers,
// not general JSON.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace dsm::shard {

/// Deterministic fault-injection kinds (--inject-fault=kind@spec_index).
/// Faults fire in the worker while processing the armed spec index:
///   kWorkerExit      — _exit before emitting the record (a crash)
///   kWorkerHang      — stop heartbeats and block forever (a wedge; the
///                      coordinator's deadline must reap it)
///   kTruncatedRecord — write half the record with no terminator, then
///                      _exit (a crash mid-write)
///   kDroppedHeartbeat— keep working but never beat again (telemetry
///                      loss; the coordinator kills and re-leases, and
///                      dedup discards any double-delivered records)
enum class FaultKind : std::uint8_t {
  kNone,
  kWorkerExit,
  kWorkerHang,
  kTruncatedRecord,
  kDroppedHeartbeat,
};

const char* fault_name(FaultKind kind);
std::optional<FaultKind> fault_from_name(const std::string& name);

/// Parses "kind@spec_index" (e.g. "worker-exit@3"). Returns false on an
/// unknown kind or malformed index.
bool parse_fault_spec(const std::string& text, FaultKind* kind,
                      std::size_t* spec_index);

/// One parsed fleet control message (see the header comment for fields).
struct FleetMsg {
  enum class Type : std::uint8_t { kHello, kPull, kWelcome, kLease, kFin };
  Type type = Type::kPull;
  // hello
  std::string bench;
  std::uint64_t total = 0;
  // welcome
  std::uint64_t worker = 0;
  std::uint64_t hb_ms = 0;
  // lease
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  FaultKind fault = FaultKind::kNone;
  std::uint64_t fault_spec = 0;
};

std::string format_hello(const std::string& bench, std::uint64_t total);
std::string format_pull();
std::string format_welcome(std::uint64_t worker, std::uint64_t hb_ms);
std::string format_lease(std::uint64_t lo, std::uint64_t hi,
                         FaultKind fault = FaultKind::kNone,
                         std::uint64_t fault_spec = 0);
std::string format_fin();

/// True when `line` is a fleet control message (starts with the "fleet"
/// key) — cheap wire-side discrimination before the strict parse.
bool is_fleet_msg(const std::string& line);

/// Strict parse of any fleet control message; nullopt on anything else.
std::optional<FleetMsg> parse_fleet_msg(const std::string& line);

/// One lease-ledger event, appended by the coordinator to --lease-log as
/// NDJSON so a stalled fleet is diagnosable offline (`dsm_report
/// progress --lease=FILE`):
///   {"ls":1,"worker":W,"state":"leased|retrying|dead|done",
///    "lo":L,"hi":H,"retries":R,"wall_ms":T}
/// `lo`/`hi` are the lease range for "leased" (0/0 otherwise), `retries`
/// the slot's respawn count so far, `wall_ms` coordinator wall clock.
struct LeaseEvent {
  std::uint64_t worker = 0;
  std::string state;  ///< "leased" | "retrying" | "dead" | "done"
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t retries = 0;
  std::uint64_t wall_ms = 0;
};

std::string format_lease_event(const LeaseEvent& ev);
bool parse_lease_event(const std::string& line, LeaseEvent* out);

}  // namespace dsm::shard
