#include "shard/stream_sink.hpp"

#include <charconv>
#include <cinttypes>
#include <cstring>

#include "common/assert.hpp"

namespace dsm::shard {
namespace {

// ---- minimal strict scanner over the format_record layout ----

struct Scanner {
  const char* p;
  const char* end;

  bool lit(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end - p) < n || std::memcmp(p, s, n) != 0)
      return false;
    p += n;
    return true;
  }

  bool uint(std::uint64_t& out, int base = 10) {
    const auto [next, ec] = std::from_chars(p, end, out, base);
    if (ec != std::errc{} || next == p) return false;
    p = next;
    return true;
  }

  // A JSON string body up to the closing quote; handles the escapes
  // json_escape produces.
  bool quoted(std::string& out) {
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (end - p < 2) return false;
        switch (p[1]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: return false;  // \uXXXX etc.: not produced by us
        }
        p += 2;
      } else {
        out += *p++;
      }
    }
    return lit("\"");
  }

  // The metrics object, verbatim, by brace counting (json_escape never
  // leaves an unescaped quote inside strings, so a quote toggle suffices).
  bool object(std::string& out) {
    if (p >= end || *p != '{') return false;
    const char* start = p;
    int depth = 0;
    bool in_string = false;
    while (p < end) {
      const char c = *p++;
      if (in_string) {
        if (c == '\\' && p < end) ++p;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          out.assign(start, p);
          return true;
        }
      }
    }
    return false;
  }
};

}  // namespace

// ---- JsonObject ----

void JsonObject::key(const std::string& k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonObject& JsonObject::add(const std::string& k, const std::string& value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, double value) {
  key(k);
  char buf[64];
  // Shortest round-trip form: deterministic across workers (same libc++
  // in the same binary) and re-parses to the identical double.
  const auto [next, ec] = std::to_chars(buf, buf + sizeof buf, value);
  DSM_ASSERT(ec == std::errc{});
  body_.append(buf, next);
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::add_raw(const std::string& k,
                                const std::string& json) {
  key(k);
  body_ += json;
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

// ---- JsonArray ----

void JsonArray::sep() {
  if (!body_.empty()) body_ += ',';
}

JsonArray& JsonArray::add(const std::string& value) {
  sep();
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonArray& JsonArray::add(double value) {
  sep();
  char buf[64];
  const auto [next, ec] = std::to_chars(buf, buf + sizeof buf, value);
  DSM_ASSERT(ec == std::errc{});
  body_.append(buf, next);
  return *this;
}

JsonArray& JsonArray::add(std::uint64_t value) {
  sep();
  body_ += std::to_string(value);
  return *this;
}

JsonArray& JsonArray::add_raw(const std::string& json) {
  sep();
  body_ += json;
  return *this;
}

std::string JsonArray::str() const { return "[" + body_ + "]"; }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        // Config keys and metric names are printable ASCII; anything
        // else would break the strict reader, so keep it out of records.
        DSM_ASSERT_MSG(static_cast<unsigned char>(c) >= 0x20,
                       "control character in stream record string");
        out += c;
    }
  }
  return out;
}

// ---- record format ----

std::string format_record(const std::string& bench, const StreamRecord& r) {
  char seed_hex[32];
  std::snprintf(seed_hex, sizeof seed_hex, "0x%016" PRIx64, r.seed);
  std::string line = "{\"v\":2,\"bench\":\"";
  line += json_escape(bench);
  line += "\",\"spec_index\":";
  line += std::to_string(r.spec_index);
  line += ",\"key\":\"";
  line += json_escape(r.key);
  line += "\",\"seed\":\"";
  line += seed_hex;
  line += "\",\"metrics\":";
  line += r.metrics;
  line += "}";
  return line;
}

std::optional<ParsedRecord> parse_record(const std::string& line) {
  Scanner s{line.data(), line.data() + line.size()};
  ParsedRecord out;
  std::uint64_t index = 0, seed = 0;
  std::string seed_text;
  if (!s.lit("{\"v\":2,\"bench\":\"")) return std::nullopt;
  if (!s.quoted(out.bench)) return std::nullopt;
  if (!s.lit(",\"spec_index\":")) return std::nullopt;
  if (!s.uint(index)) return std::nullopt;
  if (!s.lit(",\"key\":\"")) return std::nullopt;
  if (!s.quoted(out.record.key)) return std::nullopt;
  if (!s.lit(",\"seed\":\"0x")) return std::nullopt;
  if (!s.uint(seed, 16)) return std::nullopt;
  if (!s.lit("\",\"metrics\":")) return std::nullopt;
  if (!s.object(out.record.metrics)) return std::nullopt;
  if (!s.lit("}") || s.p != s.end) return std::nullopt;
  out.record.spec_index = static_cast<std::size_t>(index);
  out.record.seed = seed;
  return out;
}

// ---- StreamSink ----

StreamSink::StreamSink(std::FILE* out, std::string bench)
    : out_(out), bench_(std::move(bench)) {
  DSM_ASSERT(out_ != nullptr);
}

void StreamSink::emit(const StreamRecord& r) {
  DSM_ASSERT_MSG(static_cast<long long>(r.spec_index) > last_index_,
                 "stream records must arrive in increasing spec order");
  last_index_ = static_cast<long long>(r.spec_index);
  const std::string line = format_record(bench_, r);
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fputc('\n', out_);
  // Per-record flush: workers write into a pipe; the orchestrator merges
  // while the sweep is still running.
  std::fflush(out_);
  ++emitted_;
}

}  // namespace dsm::shard
