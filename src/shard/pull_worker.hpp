// pull_worker.hpp — the worker half of the pull fleet: connect to the
// coordinator, announce the sweep size, then loop "pull a lease, run it,
// stream the records back" until the coordinator says fin.
//
// The worker stays dumb on purpose (the HPX-style split: the coordinator
// owns distribution, workers own execution): it never knows the fleet
// size, the lease policy, or whether it is a respawn replacing a dead
// sibling. Records go over the same socket as the control messages,
// formatted by exactly the same code path as `--shard=i/N` workers —
// verbatim bytes, so the coordinator's merged stdout stays byte-identical
// to `--shards=1`.
//
// A background thread beats at the cadence the welcome message dictates,
// so the coordinator can tell "slow config" from "dead worker" even while
// a single configuration runs for minutes. The fault-injection hooks
// (armed per-lease by the coordinator, deterministic by spec index) live
// here too: they model the worker dying in specific ugly ways so tests
// can prove the coordinator's recovery path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "shard/fleet_msg.hpp"
#include "shard/lease.hpp"
#include "shard/transport.hpp"

namespace dsm::shard {

/// Exit code a worker uses when an injected fault terminates it — makes
/// chaos-run worker deaths distinguishable from real failures in logs.
constexpr int kFaultExitCode = 43;

class PullWorker {
 public:
  /// Connects to `endpoint`, sends hello (bench + expanded sweep size),
  /// and blocks for the welcome. ok() is false on connect/handshake
  /// failure (diagnostic on stderr).
  PullWorker(const Endpoint& endpoint, std::string bench, std::size_t total);
  ~PullWorker();
  PullWorker(const PullWorker&) = delete;
  PullWorker& operator=(const PullWorker&) = delete;

  bool ok() const { return ok_; }
  unsigned worker_id() const { return worker_id_; }

  /// Sends pull and blocks for the answer. Returns the next lease, or
  /// nullopt on fin (normal drain) — transport_lost() distinguishes a
  /// dead coordinator from a completed sweep. Arms any fault the lease
  /// carries (fault()/fault_spec()).
  std::optional<Lease> next_lease();

  /// True after next_lease()/emit_record() hit a closed connection.
  bool transport_lost() const { return lost_; }

  /// The fault armed by the current lease (kNone when none).
  FaultKind fault() const { return fault_; }
  std::size_t fault_spec() const { return fault_spec_; }

  /// Streams one completed record (verbatim line, no '\n') and an
  /// in-band progress heartbeat. Returns false when the coordinator is
  /// gone.
  bool emit_record(const std::string& line, std::size_t spec_index);

  // --- deterministic fault actions (see FaultKind) ---

  /// worker-exit: die instantly, record unsent.
  [[noreturn]] void fault_exit();

  /// worker-hang: stop heartbeats and block forever; only the
  /// coordinator's deadline kill ends this process.
  [[noreturn]] void fault_hang();

  /// truncated-record: send the first half of `line` with no terminator,
  /// then die — the coordinator must discard the partial frame.
  [[noreturn]] void fault_truncate(const std::string& line);

  /// dropped-heartbeat: keep working, never beat again (per-record and
  /// periodic heartbeats both stop).
  void drop_heartbeats();

 private:
  void beat();         // one heartbeat line over the transport
  void stop_beater();  // join the periodic thread

  std::unique_ptr<FdTransport> transport_;
  std::string bench_;
  std::size_t total_ = 0;
  unsigned worker_id_ = 0;
  std::uint64_t hb_interval_ms_ = 1000;
  bool ok_ = false;
  bool lost_ = false;
  FaultKind fault_ = FaultKind::kNone;
  std::size_t fault_spec_ = 0;

  std::mutex mu_;  // guards progress counters + muted_
  std::uint64_t done_ = 0;
  std::int64_t last_spec_ = -1;
  std::uint64_t start_ms_ = 0;
  bool muted_ = false;  // dropped-heartbeat armed

  std::thread beater_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
};

}  // namespace dsm::shard
