#include "shard/coordinator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <optional>

#include "shard/heartbeat.hpp"
#include "shard/resume.hpp"
#include "shard/shard_plan.hpp"
#include "shard/stream_sink.hpp"
#include "shard/transport.hpp"

namespace dsm::shard {
namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool send_line_fd(int fd, const std::string& line) {
  const std::string data = line + "\n";
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

struct Slot {
  pid_t pid = -1;
  int fd = -1;
  FrameSplitter frames;
  bool hello_seen = false;
  bool parked = false;        ///< pulled, waiting for work to free up
  bool fin_sent = false;
  bool down = false;          ///< permanently out: no fd, no respawn
  unsigned respawns = 0;
  std::uint64_t respawn_at_ms = 0;  ///< nonzero: respawn scheduled
  std::uint64_t spawned_ms = 0;     ///< for the pre-hello deadline
  std::FILE* hb_file = nullptr;
  std::uint64_t last_done = ~0ull;  ///< progress-display deduplication
};

class Fleet {
 public:
  Fleet(const FleetOptions& opt, std::FILE* out) : opt_(opt), out_(out) {}

  ~Fleet() {
    for (auto& s : slots_) {
      if (s.fd >= 0) ::close(s.fd);
      if (s.hb_file != nullptr) std::fclose(s.hb_file);
    }
    if (lease_log_ != nullptr) std::fclose(lease_log_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  int run() {
    start_ms_ = steady_ms();
    if (!opt_.resume_store.empty()) {
      scan_ = scan_store(opt_.resume_store);
      if (!scan_.ok) {
        std::fprintf(stderr, "fleet: resume scan failed: %s\n",
                     scan_.error.c_str());
        return 1;
      }
      if (scan_.truncated_tail)
        std::fprintf(stderr,
                     "fleet: store has a truncated final record (%zu bytes) "
                     "— discarded, its index will be re-run\n",
                     scan_.tail.size());
    }
    if (!opt_.lease_log.empty()) {
      lease_log_ = std::fopen(opt_.lease_log.c_str(), "w");
      if (lease_log_ == nullptr)
        std::fprintf(stderr, "fleet: cannot open lease log %s (continuing)\n",
                     opt_.lease_log.c_str());
    }
    if (!start_workers()) return 1;
    loop();
    return teardown();
  }

 private:
  // --- worker lifecycle -------------------------------------------------

  bool start_workers() {
    slots_.resize(opt_.workers);
    const std::uint64_t now = steady_ms();
    if (!opt_.preconnected_fds.empty()) {
      if (opt_.preconnected_fds.size() != opt_.workers) {
        std::fprintf(stderr, "fleet: %zu preconnected fds for %u workers\n",
                     opt_.preconnected_fds.size(), opt_.workers);
        return false;
      }
      for (unsigned i = 0; i < opt_.workers; ++i) {
        slots_[i].fd = opt_.preconnected_fds[i];
        slots_[i].spawned_ms = now;
      }
      return true;
    }
    if (opt_.listen_port != 0) {
      listen_fd_ = tcp_listen(opt_.listen_port);
      if (listen_fd_ < 0) {
        std::fprintf(stderr, "fleet: listen on port %u: %s\n",
                     opt_.listen_port, std::strerror(errno));
        return false;
      }
      std::fprintf(stderr, "fleet: waiting for %u workers on port %u\n",
                   opt_.workers, tcp_local_port(listen_fd_));
      for (unsigned i = 0; i < opt_.workers; ++i) {
        const int fd = tcp_accept(listen_fd_);
        if (fd < 0) {
          std::fprintf(stderr, "fleet: accept: %s\n", std::strerror(errno));
          return false;
        }
        slots_[i].fd = fd;
        slots_[i].spawned_ms = steady_ms();
      }
      return true;
    }
    for (unsigned i = 0; i < opt_.workers; ++i)
      if (!spawn(i)) mark_down(i);
    return live_or_pending() > 0;
  }

  bool spawn(unsigned i) {
    Slot& s = slots_[i];
    int sv[2];
    // CLOEXEC on both ends: a forked sibling must not hold another
    // worker's socket open, or its death would never read as EOF. The
    // child's own end survives exec via dup2 (which clears the flag).
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
      std::fprintf(stderr, "fleet: socketpair: %s\n", std::strerror(errno));
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fleet: fork: %s\n", std::strerror(errno));
      ::close(sv[0]);
      ::close(sv[1]);
      return false;
    }
    if (pid == 0) {
      // Child: the transport end becomes fd 3, then exec the worker.
      ::dup2(sv[1], 3);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(opt_.binary.c_str()));
      for (const auto& a : opt_.args)
        argv.push_back(const_cast<char*>(a.c_str()));
      static const char kPull[] = "--pull=fd:3";
      argv.push_back(const_cast<char*>(kPull));
      argv.push_back(nullptr);
      ::execvp(opt_.binary.c_str(), argv.data());
      std::fprintf(stderr, "fleet: execvp: %s\n", std::strerror(errno));
      ::_exit(127);
    }
    ::close(sv[1]);
    s.pid = pid;
    s.fd = sv[0];
    s.hello_seen = false;
    s.parked = false;
    s.fin_sent = false;
    s.respawn_at_ms = 0;
    s.spawned_ms = steady_ms();
    return true;
  }

  void mark_down(unsigned i) {
    slots_[i].down = true;
    slots_[i].respawn_at_ms = 0;
  }

  /// Slots that can still produce work: connected, or respawn-scheduled.
  unsigned live_or_pending() const {
    unsigned n = 0;
    for (const auto& s : slots_)
      if (s.fd >= 0 || s.respawn_at_ms != 0) ++n;
    return n;
  }

  unsigned live_pullers() const {
    unsigned n = 0;
    for (const auto& s : slots_)
      if (!s.down) ++n;
    return std::max(n, 1u);
  }

  /// Worker death or normal exit: reap, release, maybe respawn.
  void disconnect(unsigned i, const char* why) {
    Slot& s = slots_[i];
    if (s.fd < 0) return;
    ::close(s.fd);
    s.fd = -1;
    s.parked = false;
    if (s.frames.has_partial()) {
      ++truncated_frames_;
      std::fprintf(stderr,
                   "fleet: worker %u died mid-record — discarding a "
                   "truncated %zu-byte frame (the index will be re-run)\n",
                   i, s.frames.partial().size());
      s.frames = FrameSplitter{};
    }
    if (s.pid > 0) {
      int status = 0;
      ::waitpid(s.pid, &status, 0);
      if (WIFEXITED(status) && WEXITSTATUS(status) != 0 &&
          first_fail_code_ == 0)
        first_fail_code_ = WEXITSTATUS(status);
      s.pid = -1;
    }
    if (s.fin_sent) {  // normal drain
      mark_down(i);
      return;
    }
    ++deaths_;
    std::size_t freed = 0;
    if (table_) {
      const auto released = table_->release(i);
      freed = released.size();
    }
    std::fprintf(stderr,
                 "fleet: worker %u is dead (%s); released %zu leased "
                 "indices to survivors\n",
                 i, why, freed);
    log_event(i, "dead", 0, 0);
    // Respawn only in fork mode — the coordinator cannot restart a
    // remote or preconnected worker.
    const bool fork_mode =
        opt_.listen_port == 0 && opt_.preconnected_fds.empty();
    if (fork_mode && s.respawns < opt_.tuning.max_respawns) {
      ++s.respawns;
      const std::uint64_t backoff =
          respawn_backoff_ms(opt_.tuning, s.respawns);
      s.respawn_at_ms = steady_ms() + backoff;
      std::fprintf(stderr,
                   "fleet: respawning worker %u in %llu ms (attempt %u/%u)\n",
                   i, static_cast<unsigned long long>(backoff), s.respawns,
                   opt_.tuning.max_respawns);
      log_event(i, "retrying", 0, 0);
    } else {
      mark_down(i);
    }
  }

  /// SIGKILL a worker that missed its deadline, salvaging any complete
  /// records already in flight on the socket.
  void reap(unsigned i, const char* why) {
    Slot& s = slots_[i];
    if (s.fd < 0) return;
    if (s.pid > 0) ::kill(s.pid, SIGKILL);
    // Drain what already arrived: records completed before the death are
    // valid (content-derived) and keeping them shrinks the re-run.
    for (;;) {
      char buf[65536];
      const ssize_t n = ::recv(s.fd, buf, sizeof buf, MSG_DONTWAIT);
      if (n <= 0) break;
      s.frames.feed(buf, static_cast<std::size_t>(n));
    }
    while (auto line = s.frames.next()) handle_line(i, *line, false);
    disconnect(i, why);
  }

  // --- protocol ---------------------------------------------------------

  void fail(const std::string& msg) {
    if (!failed_) {
      failed_ = true;
      fail_msg_ = msg;
    }
  }

  void log_event(unsigned worker, const char* state, std::uint64_t lo,
                 std::uint64_t hi) {
    if (lease_log_ == nullptr) return;
    LeaseEvent ev;
    ev.worker = worker;
    ev.state = state;
    ev.lo = lo;
    ev.hi = hi;
    ev.retries = slots_[worker].respawns;
    ev.wall_ms = steady_ms() - start_ms_;
    const std::string line = format_lease_event(ev);
    std::fwrite(line.data(), 1, line.size(), lease_log_);
    std::fputc('\n', lease_log_);
    std::fflush(lease_log_);
  }

  void on_hello(unsigned i, const FleetMsg& msg, std::uint64_t now) {
    Slot& s = slots_[i];
    if (!table_) {
      bench_ = msg.bench;
      table_.emplace(static_cast<std::size_t>(msg.total), opt_.tuning);
      if (!seed_from_store()) return;
      if (opt_.fault != FaultKind::kNone &&
          opt_.fault_spec >= table_->total())
        std::fprintf(stderr,
                     "fleet: --inject-fault spec %zu is outside the %zu-"
                     "point sweep; the fault will never fire\n",
                     opt_.fault_spec, table_->total());
    } else if (msg.bench != bench_ || msg.total != table_->total()) {
      fail("workers disagree on the sweep: '" + bench_ + "' (" +
           std::to_string(table_->total()) + " points) vs '" + msg.bench +
           "' (" + std::to_string(msg.total) + ")");
      return;
    }
    s.hello_seen = true;
    table_->heartbeat(i, now);
    if (!send_line_fd(s.fd, format_welcome(i, opt_.tuning.heartbeat_interval_ms)))
      disconnect(i, "closed during welcome");
  }

  bool seed_from_store() {
    for (const auto& [idx, line] : scan_.records) {
      if (idx >= table_->total()) {
        fail("resume store holds spec index " + std::to_string(idx) +
             " but the sweep has only " + std::to_string(table_->total()) +
             " points — wrong store for this run");
        return false;
      }
      table_->mark_done(idx);
      ready_.emplace(idx, line);
    }
    if (!scan_.records.empty()) {
      if (!scan_.bench.empty() && scan_.bench != bench_) {
        fail("resume store is for bench '" + scan_.bench +
             "', this run is '" + bench_ + "'");
        return false;
      }
      std::fprintf(stderr,
                   "fleet: resume: %zu/%zu records recovered from store, "
                   "%zu gaps to run\n",
                   scan_.records.size(), table_->total(),
                   table_->total() - scan_.records.size());
    }
    drain_ready();
    return true;
  }

  void try_grant(unsigned i, std::uint64_t now) {
    Slot& s = slots_[i];
    if (!table_ || !s.hello_seen) {
      reap(i, "pulled before hello");
      return;
    }
    const auto lease = table_->grant(i, now, live_pullers());
    if (!lease) {
      s.parked = true;  // answered later: a release frees work, or fin
      return;
    }
    s.parked = false;
    FaultKind fault = FaultKind::kNone;
    std::uint64_t fault_spec = 0;
    if (opt_.fault != FaultKind::kNone && !fault_armed_ &&
        opt_.fault_spec >= lease->lo && opt_.fault_spec < lease->hi) {
      fault_armed_ = true;
      fault = opt_.fault;
      fault_spec = opt_.fault_spec;
      std::fprintf(stderr, "fleet: arming %s@%zu on worker %u\n",
                   fault_name(fault), opt_.fault_spec, i);
    }
    log_event(i, "leased", lease->lo, lease->hi);
    if (!send_line_fd(s.fd, format_lease(lease->lo, lease->hi, fault,
                                         fault_spec)))
      disconnect(i, "closed during lease grant");
  }

  void on_record(unsigned i, const std::string& line) {
    const auto parsed = parse_record(line);
    if (!parsed) {
      reap(i, "sent an unparsable record");
      return;
    }
    if (!table_ || parsed->bench != bench_ ||
        parsed->record.spec_index >= table_->total()) {
      reap(i, "sent a record outside the sweep");
      return;
    }
    if (!table_->complete(parsed->record.spec_index)) {
      ++duplicates_;  // first-complete-wins: a re-leased index came twice
      return;
    }
    ready_.emplace(parsed->record.spec_index, line);
    drain_ready();
  }

  void drain_ready() {
    auto it = ready_.begin();
    while (it != ready_.end() && it->first == next_emit_) {
      std::fwrite(it->second.data(), 1, it->second.size(), out_);
      std::fputc('\n', out_);
      it = ready_.erase(it);
      ++next_emit_;
    }
  }

  void on_heartbeat(unsigned i, const std::string& line,
                    std::uint64_t now) {
    Heartbeat hb;
    if (!parse_heartbeat(line, &hb)) return;  // telemetry is best-effort
    Slot& s = slots_[i];
    if (s.hello_seen && table_) table_->heartbeat(i, now);
    if (!opt_.heartbeat_path.empty()) {
      if (s.hb_file == nullptr) {
        const std::string path =
            opt_.heartbeat_path + "." + std::to_string(i);
        s.hb_file = std::fopen(path.c_str(), "w");
      }
      if (s.hb_file != nullptr) {
        std::fwrite(line.data(), 1, line.size(), s.hb_file);
        std::fputc('\n', s.hb_file);
        std::fflush(s.hb_file);
      }
    }
    if (hb.done != s.last_done) {
      s.last_done = hb.done;
      std::fprintf(stderr,
                   "fleet: worker %u %llu/%llu done (last spec %lld, "
                   "%llu ms, rss %llu KB)\n",
                   i, static_cast<unsigned long long>(hb.done),
                   static_cast<unsigned long long>(hb.total),
                   static_cast<long long>(hb.last_spec),
                   static_cast<unsigned long long>(hb.wall_ms),
                   static_cast<unsigned long long>(hb.maxrss_kb));
    }
  }

  /// One line off a worker's stream. `allow_control` is false while
  /// salvaging a killed worker's backlog — records still count, but it
  /// gets no new lease.
  void handle_line(unsigned i, const std::string& line, bool allow_control) {
    const std::uint64_t now = steady_ms();
    if (is_fleet_msg(line)) {
      if (!allow_control) return;
      const auto msg = parse_fleet_msg(line);
      if (!msg) {
        reap(i, "sent an unparsable fleet message");
        return;
      }
      switch (msg->type) {
        case FleetMsg::Type::kHello: on_hello(i, *msg, now); break;
        case FleetMsg::Type::kPull: try_grant(i, now); break;
        default: reap(i, "sent a coordinator-only message"); break;
      }
      return;
    }
    if (line.rfind("{\"hb\":1,", 0) == 0) {
      on_heartbeat(i, line, now);
      return;
    }
    on_record(i, line);
  }

  void read_slot(unsigned i) {
    Slot& s = slots_[i];
    char buf[65536];
    const ssize_t n = ::recv(s.fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) return;
    if (n <= 0) {
      disconnect(i, "closed its connection");
      return;
    }
    s.frames.feed(buf, static_cast<std::size_t>(n));
    while (s.fd >= 0) {
      const auto line = s.frames.next();
      if (!line) break;
      handle_line(i, *line, true);
    }
  }

  // --- event loop -------------------------------------------------------

  void handle_timers(std::uint64_t now) {
    // Respawns that came due.
    for (unsigned i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (s.respawn_at_ms != 0 && now >= s.respawn_at_ms) {
        s.respawn_at_ms = 0;
        ++respawned_;
        if (!spawn(i)) mark_down(i);
      }
    }
    // Leased workers past their heartbeat deadline.
    if (table_)
      for (const unsigned w : table_->expired(now))
        if (slots_[w].fd >= 0) reap(w, "missed its heartbeat deadline");
    // Workers that never said hello within a deadline are equally dead.
    for (unsigned i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (s.fd >= 0 && !s.hello_seen &&
          now - s.spawned_ms >= opt_.tuning.heartbeat_deadline_ms)
        reap(i, "never completed the handshake");
    }
  }

  void serve_parked(std::uint64_t now) {
    if (!table_ || table_->pending_count() == 0) return;
    for (unsigned i = 0; i < slots_.size(); ++i)
      if (slots_[i].fd >= 0 && slots_[i].parked) try_grant(i, now);
  }

  int poll_timeout(std::uint64_t now) const {
    std::optional<std::uint64_t> at;
    if (table_) at = table_->next_deadline_ms();
    for (const auto& s : slots_) {
      if (s.respawn_at_ms != 0 && (!at || s.respawn_at_ms < *at))
        at = s.respawn_at_ms;
      if (s.fd >= 0 && !s.hello_seen) {
        const std::uint64_t d =
            s.spawned_ms + opt_.tuning.heartbeat_deadline_ms;
        if (!at || d < *at) at = d;
      }
    }
    if (!at) return 1000;
    if (*at <= now) return 0;
    return static_cast<int>(std::min<std::uint64_t>(*at - now, 1000));
  }

  void loop() {
    for (;;) {
      const std::uint64_t now = steady_ms();
      handle_timers(now);
      serve_parked(now);
      if (failed_) return;
      if (table_ && table_->all_done()) return;
      if (live_or_pending() == 0) {
        if (!table_)
          fail("no worker completed the handshake");
        else
          fail("all workers lost with " +
               std::to_string(table_->total() - table_->done_count()) +
               " spec indices incomplete and no respawns left");
        return;
      }
      std::vector<pollfd> pfds;
      std::vector<unsigned> owners;
      for (unsigned i = 0; i < slots_.size(); ++i)
        if (slots_[i].fd >= 0) {
          pfds.push_back({slots_[i].fd, POLLIN, 0});
          owners.push_back(i);
        }
      const int rc = ::poll(pfds.data(),
                            static_cast<nfds_t>(pfds.size()),
                            poll_timeout(now));
      if (rc < 0) {
        if (errno == EINTR) continue;
        fail(std::string("poll: ") + std::strerror(errno));
        return;
      }
      for (std::size_t k = 0; k < pfds.size(); ++k)
        if (pfds[k].revents != 0 && slots_[owners[k]].fd == pfds[k].fd)
          read_slot(owners[k]);
    }
  }

  int teardown() {
    const bool complete = table_ && table_->all_done() && !failed_;
    if (complete) {
      // fin everyone — parked workers are blocked in recv; busy workers
      // read it after their current (re-leased, duplicate) work drains.
      for (unsigned i = 0; i < slots_.size(); ++i) {
        Slot& s = slots_[i];
        if (s.fd < 0) continue;
        s.fin_sent = true;
        send_line_fd(s.fd, format_fin());
      }
      // Drain each socket to EOF, discarding stragglers (they can only
      // be duplicates — every index is done). Workers are independent,
      // so a sequential blocking drain cannot deadlock.
      for (unsigned i = 0; i < slots_.size(); ++i) {
        Slot& s = slots_[i];
        while (s.fd >= 0) {
          char buf[65536];
          const ssize_t n = ::recv(s.fd, buf, sizeof buf, 0);
          if (n < 0 && errno == EINTR) continue;
          if (n <= 0) {
            s.frames = FrameSplitter{};  // stragglers are not truncation
            disconnect(i, "drained");
            break;
          }
        }
        log_event(i, "done", 0, 0);
      }
      std::fflush(out_);
      if (deaths_ > 0 || duplicates_ > 0 || truncated_frames_ > 0)
        std::fprintf(stderr,
                     "fleet: recovered — %u worker deaths, %u respawns, "
                     "%zu duplicate records discarded, %zu truncated "
                     "frames discarded; merged output is complete\n",
                     deaths_, respawned_, duplicates_, truncated_frames_);
      std::fprintf(stderr, "fleet: %zu/%zu specs merged\n",
                   table_->done_count(), table_->total());
      return 0;
    }
    // Failure: kill whatever is left, reap, report.
    for (unsigned i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (s.pid > 0) ::kill(s.pid, SIGKILL);
      if (s.fd >= 0) {
        ::close(s.fd);
        s.fd = -1;
      }
      if (s.pid > 0) {
        int status = 0;
        ::waitpid(s.pid, &status, 0);
        s.pid = -1;
      }
    }
    std::fflush(out_);
    std::fprintf(stderr, "fleet: failed: %s\n",
                 failed_ ? fail_msg_.c_str() : "incomplete sweep");
    return first_fail_code_ != 0 ? first_fail_code_ : 1;
  }

  const FleetOptions& opt_;
  std::FILE* out_;
  std::vector<Slot> slots_;
  std::optional<LeaseTable> table_;
  std::string bench_;
  StoreScan scan_;
  std::map<std::size_t, std::string> ready_;  ///< reorder buffer
  std::size_t next_emit_ = 0;
  std::FILE* lease_log_ = nullptr;
  int listen_fd_ = -1;
  std::uint64_t start_ms_ = 0;
  bool fault_armed_ = false;
  bool failed_ = false;
  std::string fail_msg_;
  int first_fail_code_ = 0;
  unsigned deaths_ = 0;
  unsigned respawned_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t truncated_frames_ = 0;
};

}  // namespace

int run_fleet(const FleetOptions& opt, std::FILE* out) {
  if (opt.workers < 1 || opt.workers > kMaxShards) {
    std::fprintf(stderr, "fleet: bad worker count %u\n", opt.workers);
    return 1;
  }
  Fleet fleet(opt, out);
  return fleet.run();
}

}  // namespace dsm::shard
