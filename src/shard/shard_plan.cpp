#include "shard/shard_plan.hpp"

#include <vector>

#include "common/assert.hpp"
#include "common/parse.hpp"

namespace dsm::shard {

std::vector<driver::SpecPoint> ShardPlan::select(
    const std::vector<driver::SpecPoint>& points) const {
  DSM_ASSERT(count >= 1 && index < count);
  std::vector<driver::SpecPoint> out;
  out.reserve(points.size() / count + 1);
  for (const auto& pt : points) {
    // Partition by the point's own spec index, not its position: select()
    // composes (a shard of a shard stays consistent) and survives callers
    // that pre-filtered the list.
    if (owns(pt.index)) out.push_back(pt);
  }
  return out;
}

std::string ShardPlan::label() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

std::optional<ShardPlan> parse_shard(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  unsigned long i = 0, n = 0;
  if (!parse_unsigned(text.substr(0, slash), 0, kMaxShards - 1, i))
    return std::nullopt;
  if (!parse_unsigned(text.substr(slash + 1), 1, kMaxShards, n))
    return std::nullopt;
  if (i >= n) return std::nullopt;
  ShardPlan plan;
  plan.index = static_cast<unsigned>(i);
  plan.count = static_cast<unsigned>(n);
  return plan;
}

bool covers_exactly_once(unsigned shard_count, std::size_t total) {
  if (shard_count < 1) return false;
  std::vector<unsigned> owners(total, 0);
  for (unsigned s = 0; s < shard_count; ++s) {
    ShardPlan plan{s, shard_count};
    for (std::size_t i = 0; i < total; ++i)
      if (plan.owns(i)) ++owners[i];
  }
  for (const unsigned n : owners)
    if (n != 1) return false;
  return true;
}

}  // namespace dsm::shard
