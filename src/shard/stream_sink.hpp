// stream_sink.hpp — one self-describing NDJSON record per completed
// configuration, instead of a buffered result vector.
//
// A shard worker's entire stdout in stream mode is a sequence of these
// lines, emitted in spec order (the driver's OrderedEmitter serializes
// them) and flushed per record so the orchestrator can merge streams
// while workers are still running. Record content is derived only from
// the configuration's *content* (spec index, config key, seed, reduced
// metrics — never wall-clock or worker identity), so the same point
// produces byte-identical records in shard i/N and in an unsharded run;
// that is what makes merged multi-process output byte-comparable against
// `--shards=1`.
//
// Schema (one JSON object per line, keys always in this order):
//   {"v":2,"bench":"<harness>","spec_index":<n>,"key":"<label>",
//    "seed":"0x<hex>","metrics":{...}}
// v2 = v1 plus the mandatory context envelope bench_util wraps inside
// `metrics` (the bump makes pre-envelope stores fail with version skew,
// not a missing-field diagnostic). The envelope later grew an OPTIONAL
// `protocol` field (present only when the coherence-protocol axis is
// swept; readers default it to "mesi") — optional precisely so every
// pre-protocol v2 store still parses and byte-compares, no v3 needed.
// Same precedent for the optional `batch` field (batch-size axis), the
// optional `obs` object (the machine's deterministic observability
// snapshot, present only under --obs-stats; see src/obs/metrics.hpp),
// and the optional `obs_intervals` object (the phase-attributed interval
// timeline, present only under --obs-intervals; rendered by
// `dsm_report timeline`).
// The normative schema description lives in README.md, "NDJSON record
// schema"; the strict offline validator is report/record_reader.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

namespace dsm::shard {

/// What the worker knows about one completed configuration after the
/// in-worker reducer ran. `metrics` is pre-serialized JSON-object text
/// (use JsonObject) — the sink never re-encodes it, and the orchestrator
/// forwards whole lines verbatim, so there is exactly one formatting
/// point per record.
struct StreamRecord {
  std::size_t spec_index = 0;  ///< global spec-order index
  std::string key;             ///< config key, e.g. "LU/8p" (spec_label)
  std::uint64_t seed = 0;      ///< RNG seed the configuration ran with
  std::string metrics = "{}";  ///< reduced metrics as a JSON object
};

/// Deterministic builder for the `metrics` object: keys stay in insertion
/// order, strings are escaped, doubles are rendered shortest-round-trip
/// (std::to_chars), so two workers serialize identical values to
/// identical bytes.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& value);
  JsonObject& add(const std::string& key, double value);
  JsonObject& add(const std::string& key, std::uint64_t value);
  /// Splices pre-serialized JSON (a nested object/array) verbatim.
  JsonObject& add_raw(const std::string& key, const std::string& json);
  std::string str() const;  ///< "{...}"

 private:
  void key(const std::string& k);
  std::string body_;
};

/// JsonObject's array sibling, with the same deterministic rendering.
/// Used for the serialized curves/row-lists the offline renderers rebuild
/// tables from.
class JsonArray {
 public:
  JsonArray& add(const std::string& value);
  JsonArray& add(double value);
  JsonArray& add(std::uint64_t value);
  /// Splices pre-serialized JSON (a nested object/array) verbatim.
  JsonArray& add_raw(const std::string& json);
  std::string str() const;  ///< "[...]"

 private:
  void sep();
  std::string body_;
};

std::string json_escape(const std::string& s);

/// The full NDJSON line for a record (no trailing newline).
std::string format_record(const std::string& bench, const StreamRecord& r);

/// Parses a line produced by format_record. Strict — this is a private
/// wire format between one binary's worker and orchestrator, not a
/// general JSON reader. Returns nullopt (never throws) on anything else,
/// which the orchestrator reports as a corrupt worker stream.
struct ParsedRecord {
  std::string bench;
  StreamRecord record;
};
std::optional<ParsedRecord> parse_record(const std::string& line);

/// Writes records as NDJSON lines in spec order, flushing each one so a
/// pipe reader sees records as configurations complete. Enforces the
/// spec-order contract: emit() aborts on a non-increasing spec index.
class StreamSink {
 public:
  /// Does not own `out` (typically stdout).
  StreamSink(std::FILE* out, std::string bench);

  void emit(const StreamRecord& r);

  std::size_t emitted() const { return emitted_; }

 private:
  std::FILE* out_;
  std::string bench_;
  std::size_t emitted_ = 0;
  long long last_index_ = -1;
};

}  // namespace dsm::shard
