// transport.hpp — the byte transport under the pull fleet: line-framed
// JSON over a stream socket (a socketpair for same-host `--shards=N`
// workers, TCP for multi-host fleets).
//
// Everything the fleet exchanges — work leases, heartbeats, and the
// NDJSON record stream itself — is one JSON object per '\n'-terminated
// line, discriminated by its first key ("fleet", "hb", or "v"). Records
// travel verbatim: the worker's formatted bytes are the bytes the
// coordinator emits, so the single-formatting-point property that makes
// merged output byte-identical to `--shards=1` survives the socket hop.
//
// FrameSplitter is the coordinator-side half: it is fed raw read() chunks
// (the coordinator's poll loop never blocks on one worker) and yields
// complete lines. A connection that dies mid-line leaves a partial frame
// behind, which the coordinator reports as a *truncated* record — the
// same recoverable diagnostic a crashed worker's file store gets — and
// discards rather than merging.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>

namespace dsm::shard {

/// Incremental splitter of a byte stream into '\n'-terminated lines.
class FrameSplitter {
 public:
  /// Appends raw bytes from the connection.
  void feed(const char* data, std::size_t n);

  /// Pops the next complete line (without its '\n'), or nullopt when no
  /// full line is buffered yet.
  std::optional<std::string> next();

  /// True when bytes of an unterminated line remain — after EOF this
  /// means the peer died mid-record (a truncated frame).
  bool has_partial() const { return !buf_.empty(); }

  /// The unterminated tail (diagnostic use; valid when has_partial()).
  const std::string& partial() const { return buf_; }

 private:
  std::string buf_;
};

/// Blocking line transport over a connected stream fd. Worker-side: the
/// sweep threads and the heartbeat thread both write, so sends are
/// serialized by an internal mutex; receives are single-reader (the
/// worker's pull loop). Owns the fd.
class FdTransport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport();
  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends `line` plus a trailing '\n'. Returns false when the peer is
  /// gone (EPIPE/ECONNRESET — never raises SIGPIPE).
  bool send_line(const std::string& line);

  /// Sends raw bytes with no framing — only the fault-injection harness
  /// uses this, to model a worker crashing mid-record (half a line, no
  /// terminator).
  bool send_raw(const std::string& bytes);

  /// Blocks for the next complete line. Returns false on EOF or error;
  /// eof_truncated() then tells whether the stream died mid-line.
  bool recv_line(std::string* line);

  /// After recv_line returned false: true when unterminated bytes were
  /// pending (the peer died mid-record).
  bool eof_truncated() const { return splitter_.has_partial(); }

 private:
  int fd_;
  std::mutex send_mu_;
  FrameSplitter splitter_;
};

/// Endpoint spellings the --pull flag accepts:
///   "fd:K"       — an already-connected stream fd (the fork path: the
///                  coordinator passes its child one socketpair end)
///   "host:port"  — TCP connect (the multi-host path)
struct Endpoint {
  bool is_fd = false;
  int fd = -1;
  std::string host;
  unsigned port = 0;
};
std::optional<Endpoint> parse_endpoint(const std::string& text);

/// Connects per the endpoint; returns -1 with a stderr diagnostic on
/// failure.
int connect_endpoint(const Endpoint& ep);

/// TCP plumbing for the multi-host coordinator. tcp_listen binds
/// 0.0.0.0:port (port 0 = ephemeral; tcp_local_port recovers the chosen
/// one) and listens; both return -1 on failure with errno intact.
int tcp_listen(unsigned port);
int tcp_accept(int listen_fd);
int tcp_connect(const std::string& host, unsigned port);
unsigned tcp_local_port(int fd);

}  // namespace dsm::shard
