#include "shard/fleet_msg.hpp"

#include <charconv>
#include <cstring>

#include "common/parse.hpp"
#include "shard/stream_sink.hpp"

namespace dsm::shard {
namespace {

// Same strict-scanner idiom as heartbeat.cpp: private wire format, exact
// key order, no general JSON.
struct Scanner {
  const char* p;
  const char* end;

  bool lit(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end - p) < n || std::memcmp(p, s, n) != 0)
      return false;
    p += n;
    return true;
  }
  bool uint(std::uint64_t& out) {
    const auto [next, ec] = std::from_chars(p, end, out);
    if (ec != std::errc{} || next == p) return false;
    p = next;
    return true;
  }
  bool quoted(std::string& out) {
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (end - p < 2) return false;
        switch (p[1]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default: return false;
        }
        p += 2;
      } else {
        out += *p++;
      }
    }
    return lit("\"");
  }
  bool done() const { return p == end; }
};

}  // namespace

const char* fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kWorkerExit: return "worker-exit";
    case FaultKind::kWorkerHang: return "worker-hang";
    case FaultKind::kTruncatedRecord: return "truncated-record";
    case FaultKind::kDroppedHeartbeat: return "dropped-heartbeat";
  }
  return "none";
}

std::optional<FaultKind> fault_from_name(const std::string& name) {
  if (name == "worker-exit") return FaultKind::kWorkerExit;
  if (name == "worker-hang") return FaultKind::kWorkerHang;
  if (name == "truncated-record") return FaultKind::kTruncatedRecord;
  if (name == "dropped-heartbeat") return FaultKind::kDroppedHeartbeat;
  return std::nullopt;
}

bool parse_fault_spec(const std::string& text, FaultKind* kind,
                      std::size_t* spec_index) {
  const std::size_t at = text.find('@');
  if (at == std::string::npos) return false;
  const auto k = fault_from_name(text.substr(0, at));
  if (!k) return false;
  unsigned long idx = 0;
  if (!parse_unsigned(text.substr(at + 1), 0,
                      static_cast<unsigned long>(-1) >> 1, idx))
    return false;
  *kind = *k;
  *spec_index = static_cast<std::size_t>(idx);
  return true;
}

std::string format_hello(const std::string& bench, std::uint64_t total) {
  return "{\"fleet\":\"hello\",\"bench\":\"" + json_escape(bench) +
         "\",\"total\":" + std::to_string(total) + "}";
}

std::string format_pull() { return "{\"fleet\":\"pull\"}"; }

std::string format_welcome(std::uint64_t worker, std::uint64_t hb_ms) {
  return "{\"fleet\":\"welcome\",\"worker\":" + std::to_string(worker) +
         ",\"hb_ms\":" + std::to_string(hb_ms) + "}";
}

std::string format_lease(std::uint64_t lo, std::uint64_t hi, FaultKind fault,
                         std::uint64_t fault_spec) {
  std::string line = "{\"fleet\":\"lease\",\"lo\":" + std::to_string(lo) +
                     ",\"hi\":" + std::to_string(hi);
  if (fault != FaultKind::kNone) {
    line += ",\"fault\":\"";
    line += fault_name(fault);
    line += "\",\"fault_spec\":" + std::to_string(fault_spec);
  }
  line += "}";
  return line;
}

std::string format_fin() { return "{\"fleet\":\"fin\"}"; }

bool is_fleet_msg(const std::string& line) {
  return line.rfind("{\"fleet\":\"", 0) == 0;
}

std::optional<FleetMsg> parse_fleet_msg(const std::string& line) {
  Scanner s{line.data(), line.data() + line.size()};
  if (!s.lit("{\"fleet\":\"")) return std::nullopt;
  FleetMsg msg;
  if (s.lit("hello\",\"bench\":\"")) {
    msg.type = FleetMsg::Type::kHello;
    if (!s.quoted(msg.bench)) return std::nullopt;
    if (!s.lit(",\"total\":") || !s.uint(msg.total)) return std::nullopt;
  } else if (s.lit("pull\"")) {
    msg.type = FleetMsg::Type::kPull;
  } else if (s.lit("welcome\",\"worker\":")) {
    msg.type = FleetMsg::Type::kWelcome;
    if (!s.uint(msg.worker)) return std::nullopt;
    if (!s.lit(",\"hb_ms\":") || !s.uint(msg.hb_ms)) return std::nullopt;
  } else if (s.lit("lease\",\"lo\":")) {
    msg.type = FleetMsg::Type::kLease;
    if (!s.uint(msg.lo)) return std::nullopt;
    if (!s.lit(",\"hi\":") || !s.uint(msg.hi)) return std::nullopt;
    if (s.lit(",\"fault\":\"")) {
      std::string name;
      if (!s.quoted(name)) return std::nullopt;
      const auto k = fault_from_name(name);
      if (!k) return std::nullopt;
      msg.fault = *k;
      if (!s.lit(",\"fault_spec\":") || !s.uint(msg.fault_spec))
        return std::nullopt;
    }
  } else if (s.lit("fin\"")) {
    msg.type = FleetMsg::Type::kFin;
  } else {
    return std::nullopt;
  }
  if (!s.lit("}") || !s.done()) return std::nullopt;
  return msg;
}

std::string format_lease_event(const LeaseEvent& ev) {
  return "{\"ls\":1,\"worker\":" + std::to_string(ev.worker) +
         ",\"state\":\"" + json_escape(ev.state) +
         "\",\"lo\":" + std::to_string(ev.lo) +
         ",\"hi\":" + std::to_string(ev.hi) +
         ",\"retries\":" + std::to_string(ev.retries) +
         ",\"wall_ms\":" + std::to_string(ev.wall_ms) + "}";
}

bool parse_lease_event(const std::string& line, LeaseEvent* out) {
  Scanner s{line.data(), line.data() + line.size()};
  LeaseEvent ev;
  if (!s.lit("{\"ls\":1,\"worker\":") || !s.uint(ev.worker)) return false;
  if (!s.lit(",\"state\":\"") || !s.quoted(ev.state)) return false;
  if (!s.lit(",\"lo\":") || !s.uint(ev.lo)) return false;
  if (!s.lit(",\"hi\":") || !s.uint(ev.hi)) return false;
  if (!s.lit(",\"retries\":") || !s.uint(ev.retries)) return false;
  if (!s.lit(",\"wall_ms\":") || !s.uint(ev.wall_ms)) return false;
  if (!s.lit("}") || !s.done()) return false;
  *out = std::move(ev);
  return true;
}

}  // namespace dsm::shard
