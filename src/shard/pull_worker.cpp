#include "shard/pull_worker.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "shard/heartbeat.hpp"

namespace dsm::shard {
namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t max_rss_kb() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss);
}

}  // namespace

PullWorker::PullWorker(const Endpoint& endpoint, std::string bench,
                       std::size_t total)
    : bench_(std::move(bench)), total_(total) {
  const int fd = connect_endpoint(endpoint);
  if (fd < 0) return;
  transport_ = std::make_unique<FdTransport>(fd);
  start_ms_ = steady_ms();
  if (!transport_->send_line(
          format_hello(bench_, static_cast<std::uint64_t>(total_)))) {
    std::fprintf(stderr, "pull worker: coordinator rejected hello\n");
    return;
  }
  std::string line;
  if (!transport_->recv_line(&line)) {
    std::fprintf(stderr, "pull worker: connection closed before welcome\n");
    return;
  }
  const auto msg = parse_fleet_msg(line);
  if (!msg || msg->type != FleetMsg::Type::kWelcome) {
    std::fprintf(stderr, "pull worker: expected welcome, got: %s\n",
                 line.c_str());
    return;
  }
  worker_id_ = static_cast<unsigned>(msg->worker);
  if (msg->hb_ms > 0) hb_interval_ms_ = msg->hb_ms;
  ok_ = true;
  beater_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(stop_mu_);
    while (!stop_) {
      stop_cv_.wait_for(lock, std::chrono::milliseconds(hb_interval_ms_));
      if (stop_) break;
      lock.unlock();
      beat();
      lock.lock();
    }
  });
}

PullWorker::~PullWorker() { stop_beater(); }

void PullWorker::stop_beater() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (beater_.joinable()) beater_.join();
}

void PullWorker::beat() {
  Heartbeat hb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (muted_) return;
    hb.done = done_;
    hb.last_spec = last_spec_;
  }
  hb.bench = bench_;
  hb.shard = "w" + std::to_string(worker_id_);
  hb.total = total_;
  hb.wall_ms = steady_ms() - start_ms_;
  hb.maxrss_kb = max_rss_kb();
  transport_->send_line(format_heartbeat(hb));
}

std::optional<Lease> PullWorker::next_lease() {
  fault_ = FaultKind::kNone;
  fault_spec_ = 0;
  if (!ok_ || lost_) return std::nullopt;
  if (!transport_->send_line(format_pull())) {
    lost_ = true;
    return std::nullopt;
  }
  std::string line;
  if (!transport_->recv_line(&line)) {
    lost_ = true;
    return std::nullopt;
  }
  const auto msg = parse_fleet_msg(line);
  if (!msg) {
    std::fprintf(stderr, "pull worker: bad coordinator message: %s\n",
                 line.c_str());
    lost_ = true;
    return std::nullopt;
  }
  if (msg->type == FleetMsg::Type::kFin) return std::nullopt;
  if (msg->type != FleetMsg::Type::kLease || msg->hi < msg->lo) {
    std::fprintf(stderr, "pull worker: expected lease/fin, got: %s\n",
                 line.c_str());
    lost_ = true;
    return std::nullopt;
  }
  fault_ = msg->fault;
  fault_spec_ = static_cast<std::size_t>(msg->fault_spec);
  return Lease{static_cast<std::size_t>(msg->lo),
               static_cast<std::size_t>(msg->hi)};
}

bool PullWorker::emit_record(const std::string& line,
                             std::size_t spec_index) {
  if (!transport_->send_line(line)) {
    lost_ = true;
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++done_;
    last_spec_ = static_cast<std::int64_t>(spec_index);
  }
  beat();  // per-record progress beat; the timer covers long configs
  return true;
}

void PullWorker::fault_exit() {
  // No teardown on purpose: a crash does not join threads first.
  ::_exit(kFaultExitCode);
}

void PullWorker::fault_hang() {
  // A wedged process beats no heartbeats — that is precisely what makes
  // the coordinator's deadline the only way out.
  stop_beater();
  for (;;) ::pause();
}

void PullWorker::fault_truncate(const std::string& line) {
  transport_->send_raw(line.substr(0, line.size() / 2));
  ::_exit(kFaultExitCode);
}

void PullWorker::drop_heartbeats() {
  std::lock_guard<std::mutex> lock(mu_);
  muted_ = true;
}

}  // namespace dsm::shard
