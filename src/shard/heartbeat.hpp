// heartbeat.hpp — worker progress telemetry on a side channel separate
// from the result stream.
//
// A shard worker's stdout is the merged result stream and must stay
// byte-identical across every execution mode, so progress can never ride
// there. Instead each worker appends heartbeat records to its own NDJSON
// file (one file per worker — no cross-process locking), flushed per
// record so the orchestrator (or a human with `dsm_report progress`) can
// watch a fleet drain while it runs. Heartbeats are host-side telemetry:
// they carry wall-clock and rusage and are *expected* to differ between
// runs — which is exactly why they live outside the deterministic stream.
//
// Format (one JSON object per line, keys always in this order):
//   {"hb":1,"bench":"<harness>","shard":"i/N","done":D,"total":T,
//    "last_spec":S,"wall_ms":W,"maxrss_kb":R}
// `last_spec` is the global spec index of the most recently completed
// point, -1 before any completes. A file's last line is the worker's
// current state; earlier lines are its history.
//
// This file channel is the transport seam of the ROADMAP's elastic-fleet
// item: a future TCP transport replaces "append to a file" with "write to
// a socket" and everything upstream (parse_heartbeat, dsm_report
// progress, the orchestrator's live display) is already in place.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace dsm::shard {

/// One progress record from one worker.
struct Heartbeat {
  std::string bench;
  std::string shard;             ///< "i/N" (ShardPlan::label)
  std::uint64_t done = 0;        ///< specs completed so far
  std::uint64_t total = 0;       ///< specs this worker owns
  std::int64_t last_spec = -1;   ///< global spec index last completed
  std::uint64_t wall_ms = 0;     ///< since the worker's sweep started
  std::uint64_t maxrss_kb = 0;   ///< getrusage peak RSS
};

/// The full NDJSON line for a heartbeat (no trailing newline).
std::string format_heartbeat(const Heartbeat& hb);

/// Parses a line produced by format_heartbeat. Strict, like
/// parse_record: returns false on anything else.
bool parse_heartbeat(const std::string& line, Heartbeat* out);

/// Appends heartbeats to `path`, one per progress() call plus an initial
/// done=0 record at construction (so a stuck worker is visible as "file
/// exists, no progress" rather than "no file"). Truncates any stale file
/// from a previous run. A path that cannot be opened disables the
/// emitter (ok() false, calls no-op) — telemetry must never kill a
/// worker.
class HeartbeatEmitter {
 public:
  HeartbeatEmitter(const std::string& path, std::string bench,
                   std::string shard_label, std::uint64_t total);
  ~HeartbeatEmitter();
  HeartbeatEmitter(const HeartbeatEmitter&) = delete;
  HeartbeatEmitter& operator=(const HeartbeatEmitter&) = delete;

  bool ok() const { return out_ != nullptr; }

  /// Records one completed spec and appends + flushes a heartbeat.
  void progress(std::int64_t spec_index);

 private:
  void emit();

  std::FILE* out_ = nullptr;
  Heartbeat hb_;
  std::uint64_t start_ms_ = 0;  ///< steady_clock at construction
};

}  // namespace dsm::shard
