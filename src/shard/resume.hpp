// resume.hpp — machine-consumable scan of an NDJSON record store, so a
// restarted fleet can mark complete spec indices done and lease only the
// gaps (what `dsm_report validate` diagnoses for humans, as data).
//
// A store written by a fleet that was killed mid-run has three flavors of
// damage this scanner must distinguish:
//   * missing indices (gaps) — the work that still needs leasing;
//   * a truncated final line — the writing process died mid-record; the
//     partial record is unusable but *recoverable* (its index is simply
//     re-run), so it is reported separately, never a hard error;
//   * a malformed line anywhere else — real corruption; hard error,
//     because silently resuming over it could bless a damaged store.
// Duplicate indices keep the first occurrence (first-complete-wins, the
// same rule the live coordinator applies) and are counted.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace dsm::shard {

/// Result of scanning one store file.
struct StoreScan {
  bool ok = false;          ///< false: `error` holds a hard diagnostic
  std::string error;
  std::string bench;        ///< from the first record ("" when empty)
  /// Complete records by spec index, verbatim lines, first-wins.
  std::map<std::size_t, std::string> records;
  std::size_t duplicates = 0;    ///< later same-index records discarded
  bool truncated_tail = false;   ///< final line had no terminator / failed
                                 ///< to parse (crash mid-write)
  std::string tail;              ///< the truncated bytes (diagnostic)
};

/// Scans `path`. A missing file is ok (empty scan: resuming from nothing
/// is a fresh run). Records from a different bench than the first are a
/// hard error — one store holds one harness's sweep.
StoreScan scan_store(const std::string& path);

/// Spec indices in [0, total) with no record in `scan` — what a resumed
/// fleet must lease.
std::vector<std::size_t> store_gaps(const StoreScan& scan, std::size_t total);

}  // namespace dsm::shard
