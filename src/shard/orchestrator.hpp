// orchestrator.hpp — multi-process sharded sweeps: fork N workers of the
// same binary with --shard=i/N, merge their NDJSON streams in spec order.
//
// The orchestrator never expands the spec itself — it relies on the
// worker contract instead: each worker emits records for exactly its
// congruence class of spec indices, in increasing order. The k-way merge
// then must see the contiguous sequence 0,1,2,... of global spec indices;
// a duplicate, gap, or out-of-order index means a worker violated the
// shard plan and the merge fails loudly rather than emitting a stream
// that silently differs from `--shards=1`. Merged lines are forwarded
// verbatim (workers are the only formatting point), so a successful merge
// is byte-identical to the single-process streamed run.
//
// Pipes are drained incrementally: the merge blocks only on the worker
// that owns the next spec index, while the others run ahead at most a
// pipe buffer of reduced records — workers never buffer whole sweeps.
#pragma once

#include <cstddef>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace dsm::shard {

/// One ordered stream of NDJSON record lines. next() returns false on end
/// of stream. The process-backed implementation blocks until the worker
/// produces its next record.
class LineSource {
 public:
  virtual ~LineSource() = default;
  virtual bool next(std::string& line) = 0;
  /// True when the most recent line had no terminator — the stream's
  /// writer died mid-record. Readers use it for a *distinct* diagnostic:
  /// a truncated final line is recoverable (resume re-runs its index),
  /// unlike corruption anywhere else.
  virtual bool truncated() const { return false; }
};

/// Blocking line reader over a FILE* (a worker pipe, a collected shard
/// file, or stdin). Does not own the stream. Shared by the in-process
/// orchestrator and the offline `dsm_report` merge/render/validate paths —
/// multi-host merging is the same k-way merge over file-backed sources.
class FileLineSource : public LineSource {
 public:
  explicit FileLineSource(std::FILE* f) : f_(f) {}
  ~FileLineSource() override;

  // buf_ is a raw getline() buffer: movable (vector storage), never
  // copyable (a copy would double-free it).
  FileLineSource(FileLineSource&& other) noexcept
      : f_(other.f_), buf_(other.buf_), cap_(other.cap_),
        truncated_(other.truncated_) {
    other.buf_ = nullptr;
    other.cap_ = 0;
  }
  FileLineSource(const FileLineSource&) = delete;
  FileLineSource& operator=(const FileLineSource&) = delete;
  FileLineSource& operator=(FileLineSource&&) = delete;

  bool next(std::string& line) override;
  bool truncated() const override { return truncated_; }

 private:
  std::FILE* f_;
  char* buf_ = nullptr;
  std::size_t cap_ = 0;
  bool truncated_ = false;
};

/// K-way merges per-worker record streams (each already in increasing
/// spec order) into the single spec-ordered stream, calling `sink` with
/// each verbatim line. Enforces the contiguity contract above; on
/// violation or an unparsable line returns false with a diagnostic in
/// *error. Exposed separately from the process plumbing so tests can
/// drive it with in-memory streams.
bool merge_streams(std::vector<LineSource*> sources,
                   const std::function<void(const std::string&)>& sink,
                   std::string* error);

struct OrchestratorOptions {
  std::string binary;              ///< executable to re-invoke (self_exe())
  std::vector<std::string> args;   ///< forwarded flags, minus --shards
  unsigned shards = 1;             ///< workers to fork, in [1, kMaxShards]
  /// Per-worker heartbeat file paths (heartbeat.hpp), one per shard, or
  /// empty for no progress telemetry. The orchestrator appends
  /// --heartbeat=<file i> to worker i's argv and, while merging, polls
  /// the files and surfaces per-worker progress lines on stderr whenever
  /// a worker's completed-spec count advances. Telemetry only — the
  /// merged stdout stream is byte-identical with or without this.
  std::vector<std::string> heartbeat_files;
};

/// Absolute path of the running executable (/proc/self/exe), falling back
/// to argv0 — the orchestrator re-invokes itself, so plain "fig2" from
/// PATH must still resolve.
std::string self_exe(const char* argv0);

/// Forks the workers, merges their streams onto `out`, reaps every child.
/// Returns 0 on success; the first failing worker's exit code, or 1 on a
/// merge/stream error, otherwise (diagnostics on stderr).
int run_sharded(const OrchestratorOptions& opt, std::FILE* out);

}  // namespace dsm::shard
