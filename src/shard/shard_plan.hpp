// shard_plan.hpp — deterministic partitioning of an expanded sweep across
// worker processes.
//
// A SweepSpec expands to the same spec-ordered point list in every process
// (expansion is pure), so a shard can be named by nothing more than
// "--shard=i/N": worker i owns every point whose spec index is congruent
// to i mod N (round-robin over spec order, which balances the axes — the
// expensive 32-node configurations of an app×nodes product land on
// different shards instead of all on the last one). Because per-point RNG
// seeds are content-hashed (driver/sweep_spec.hpp), a configuration
// produces bit-identical results whether it runs in shard i/N or in an
// unsharded run — sharding changes only *where* a point executes.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "driver/sweep_spec.hpp"

namespace dsm::shard {

/// Processes forked per orchestrator invocation; anything past this is a
/// typo, not a cluster.
constexpr unsigned kMaxShards = 256;

struct ShardPlan {
  unsigned index = 0;  ///< this worker's shard id, in [0, count)
  unsigned count = 1;  ///< total shards; 1 = the whole sweep

  /// True when spec-order position `spec_index` belongs to this shard.
  bool owns(std::size_t spec_index) const {
    return spec_index % count == index;
  }

  /// The subsequence of `points` owned by this shard, in spec order.
  /// Points keep their *global* spec indices (SpecPoint::index), so
  /// seeds, labels, and stream records are identical to an unsharded run.
  std::vector<driver::SpecPoint> select(
      const std::vector<driver::SpecPoint>& points) const;

  /// "i/N" — the command-line spelling.
  std::string label() const;
};

/// Parses "i/N" (0-based shard index, 1 <= N <= kMaxShards, i < N).
/// Returns nullopt on malformed input.
std::optional<ShardPlan> parse_shard(const std::string& text);

/// Validates the partition property the orchestrator relies on: across
/// the N shards of a `total`-point sweep, every spec index is selected by
/// exactly one shard. Returns false (never aborts) so tests can probe it;
/// structurally true for round-robin, but this is the checked contract a
/// future non-round-robin plan must also satisfy.
bool covers_exactly_once(unsigned shard_count, std::size_t total);

}  // namespace dsm::shard
