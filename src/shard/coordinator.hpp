// coordinator.hpp — the fleet's brain: owns the lease table, the worker
// connections, failure detection, respawn, resume, and the spec-ordered
// merged output stream.
//
// `--shards=N` routes here (replacing the static round-robin
// orchestrator for fork-mode runs): the coordinator forks N pull workers
// connected over socketpairs (`--pull=fd:3`), learns the sweep size from
// the first hello, and grants contiguous spec-index leases to whichever
// worker pulls next — heterogeneous config costs self-balance instead of
// landing on whoever round-robin happened to pick. Records arrive on the
// same sockets, out of global order (leases are dynamic), so the
// coordinator reorders them through a buffer keyed by spec index and
// emits the contiguous prefix — byte-identical to `--shards=1`, because
// workers remain the only formatting point and content-hashed seeds make
// records placement-independent.
//
// Failure model: liveness is heartbeats, nothing else — records do not
// count (so a worker that still computes but lost its telemetry is
// indistinguishable from a wedge, and is reaped the same way). A closed
// connection or a missed deadline kills the worker, releases its
// outstanding lease back to pending, and (fork mode) schedules a bounded
// exponential-backoff respawn; survivors drain the released work either
// way. Duplicate records — a reaped worker's last deliveries racing the
// re-lease — are discarded first-complete-wins; a connection that dies
// mid-line leaves a truncated frame that is discarded with its own
// diagnostic, never merged.
//
// Resume: with a store file, the coordinator scans it (shard/resume.hpp),
// re-emits the recovered records, seeds the lease table, and leases only
// the gaps — a killed-then-restarted fleet completes the store instead of
// recomputing it.
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "shard/fleet_msg.hpp"
#include "shard/lease.hpp"

namespace dsm::shard {

struct FleetOptions {
  std::string binary;             ///< executable to re-invoke (self_exe())
  std::vector<std::string> args;  ///< forwarded worker flags (minus the
                                  ///< coordinator-only ones)
  unsigned workers = 1;           ///< fleet size, in [1, kMaxShards]
  FleetTuning tuning;
  /// Per-worker heartbeat files: PATH.<slot>, written by the coordinator
  /// from the in-band beats (so `dsm_report progress` keeps working) —
  /// empty disables.
  std::string heartbeat_path;
  /// Lease-ledger NDJSON (format_lease_event) — empty disables.
  std::string lease_log;
  /// Existing NDJSON store to resume: recovered records are re-emitted
  /// verbatim and only the gaps are leased. Empty = fresh run.
  std::string resume_store;
  /// Deterministic fault injection: armed on the first lease containing
  /// fault_spec, exactly once per run. kNone disables.
  FaultKind fault = FaultKind::kNone;
  std::size_t fault_spec = 0;
  /// Test seam: already-connected worker fds (one per slot) instead of
  /// forking. No respawn in this mode; the coordinator closes the fds.
  std::vector<int> preconnected_fds;
  /// TCP mode: listen on this port and accept `workers` connections
  /// instead of forking (multi-host fleets; workers run --pull=host:port).
  /// No respawn in this mode. 0 = fork mode.
  unsigned listen_port = 0;
};

/// Runs the fleet to completion, merged records onto `out`. Returns 0
/// when every spec index completed (even if workers died and were
/// recovered along the way — a recovery summary goes to stderr);
/// otherwise the first failing worker's exit code, or 1.
int run_fleet(const FleetOptions& opt, std::FILE* out);

}  // namespace dsm::shard
