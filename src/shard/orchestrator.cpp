#include "shard/orchestrator.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "shard/heartbeat.hpp"
#include "shard/shard_plan.hpp"
#include "shard/stream_sink.hpp"

namespace dsm::shard {

FileLineSource::~FileLineSource() { std::free(buf_); }

bool FileLineSource::next(std::string& line) {
  const ssize_t n = ::getline(&buf_, &cap_, f_);
  if (n < 0) return false;  // EOF (or read error; caller checks status)
  line.assign(buf_, static_cast<std::size_t>(n));
  // A final line with no terminator means the writer died mid-record —
  // remember it so readers can report truncation, not corruption.
  truncated_ = line.empty() || line.back() != '\n';
  if (!truncated_) line.pop_back();
  return true;
}

namespace {

struct Head {
  LineSource* source;
  std::string line;
  std::size_t index = 0;
  std::string bench;
  bool active = false;
};

bool advance(Head& h, std::string* error) {
  h.active = h.source->next(h.line);
  if (!h.active) return true;
  const auto parsed = parse_record(h.line);
  if (!parsed) {
    if (h.source->truncated()) {
      // Distinct from corruption: the writer crashed mid-record. The
      // partial record's index is still a gap — recoverable via
      // `--resume` / `dsm_report resume` — but a *merge* must refuse:
      // its output claims to be the complete stream.
      *error = "stream ends with a truncated record (worker crashed "
               "mid-write; re-run the missing index or resume): " +
               h.line;
    } else {
      *error = "unparsable stream record: " + h.line;
    }
    return false;
  }
  h.index = parsed->record.spec_index;
  h.bench = parsed->bench;
  return true;
}

struct Worker {
  pid_t pid = -1;
  std::FILE* out = nullptr;
};

void report(const char* what) {
  std::fprintf(stderr, "orchestrator: %s: %s\n", what, std::strerror(errno));
}

/// Live fleet progress from the workers' heartbeat files: the merge sink
/// polls after every merged record (cheap — heartbeat files are a line
/// per completed spec) and prints a stderr line whenever some worker's
/// completed count advanced. stderr only, never stdout: the merged
/// result stream must stay byte-identical with heartbeats on.
class ProgressPoll {
 public:
  explicit ProgressPoll(std::vector<std::string> files)
      : files_(std::move(files)), last_done_(files_.size(), ~0ull) {}

  bool enabled() const { return !files_.empty(); }

  void poll() {
    for (std::size_t i = 0; i < files_.size(); ++i) {
      std::FILE* f = std::fopen(files_[i].c_str(), "r");
      if (f == nullptr) continue;  // worker has not opened it yet
      // Last line = the worker's current state.
      std::string last;
      {
        FileLineSource src(f);
        for (std::string line; src.next(line);) last = std::move(line);
      }
      std::fclose(f);
      Heartbeat hb;
      if (last.empty() || !parse_heartbeat(last, &hb)) continue;
      if (hb.done == last_done_[i]) continue;
      last_done_[i] = hb.done;
      std::fprintf(stderr,
                   "orchestrator: shard %s %llu/%llu done (last spec %lld, "
                   "%llu ms, rss %llu KB)\n",
                   hb.shard.c_str(),
                   static_cast<unsigned long long>(hb.done),
                   static_cast<unsigned long long>(hb.total),
                   static_cast<long long>(hb.last_spec),
                   static_cast<unsigned long long>(hb.wall_ms),
                   static_cast<unsigned long long>(hb.maxrss_kb));
    }
  }

 private:
  std::vector<std::string> files_;
  std::vector<std::uint64_t> last_done_;
};

}  // namespace

bool merge_streams(std::vector<LineSource*> sources,
                   const std::function<void(const std::string&)>& sink,
                   std::string* error) {
  std::vector<Head> heads(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    heads[i].source = sources[i];
    if (!advance(heads[i], error)) return false;
  }
  std::size_t expected = 0;
  std::string bench;  // all workers run the same binary: one bench name
  for (;;) {
    Head* min = nullptr;
    for (auto& h : heads)
      if (h.active && (min == nullptr || h.index < min->index)) min = &h;
    if (min == nullptr) return true;  // all streams drained
    if (min->index != expected) {
      *error = "spec index " + std::to_string(min->index) +
               " where " + std::to_string(expected) +
               " was expected: a shard skipped or repeated a configuration";
      return false;
    }
    if (expected == 0) {
      bench = min->bench;
    } else if (min->bench != bench) {
      *error = "workers report different bench names: '" + bench +
               "' vs '" + min->bench + "'";
      return false;
    }
    sink(min->line);
    ++expected;
    if (!advance(*min, error)) return false;
  }
}

std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
  return argv0 ? argv0 : "";
}

int run_sharded(const OrchestratorOptions& opt, std::FILE* out) {
  if (opt.shards < 1 || opt.shards > kMaxShards) {
    std::fprintf(stderr, "orchestrator: bad shard count %u\n", opt.shards);
    return 1;
  }
  if (!opt.heartbeat_files.empty() &&
      opt.heartbeat_files.size() != opt.shards) {
    std::fprintf(stderr,
                 "orchestrator: %zu heartbeat files for %u shards\n",
                 opt.heartbeat_files.size(), opt.shards);
    return 1;
  }

  std::vector<Worker> workers(opt.shards);
  for (unsigned i = 0; i < opt.shards; ++i) {
    int fds[2];
    // O_CLOEXEC: later-forked workers must not inherit earlier workers'
    // pipe ends, or a worker blocked writing a full pipe would never see
    // EPIPE/SIGPIPE when the orchestrator tears down after a merge error
    // (the stray read ends would keep its pipe alive). The child's own
    // write end survives exec because dup2 onto STDOUT clears the flag.
    if (::pipe2(fds, O_CLOEXEC) != 0) {
      report("pipe");
      // Abandon cleanly: close the already-forked workers' pipes and reap.
      for (auto& w : workers)
        if (w.out) std::fclose(w.out);
      for (auto& w : workers)
        if (w.pid > 0) ::waitpid(w.pid, nullptr, 0);
      return 1;
    }
    const ShardPlan plan{i, opt.shards};
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: stdout -> pipe, then become the shard worker. The argv
      // strings live until execv; no allocation between fork and exec
      // beyond the vector below (single-threaded child, safe).
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(opt.binary.c_str()));
      for (const auto& a : opt.args)
        argv.push_back(const_cast<char*>(a.c_str()));
      const std::string shard_flag = "--shard=" + plan.label();
      argv.push_back(const_cast<char*>(shard_flag.c_str()));
      std::string hb_flag;
      if (!opt.heartbeat_files.empty()) {
        hb_flag = "--heartbeat=" + opt.heartbeat_files[i];
        argv.push_back(const_cast<char*>(hb_flag.c_str()));
      }
      argv.push_back(nullptr);
      // execvp, not execv: when /proc/self/exe was unreadable the binary
      // falls back to a bare argv[0], which only a PATH search resolves.
      ::execvp(opt.binary.c_str(), argv.data());
      report("execvp");
      ::_exit(127);
    }
    ::close(fds[1]);
    if (pid < 0) {
      report("fork");
      ::close(fds[0]);
      for (auto& w : workers)
        if (w.out) std::fclose(w.out);
      for (auto& w : workers)
        if (w.pid > 0) ::waitpid(w.pid, nullptr, 0);
      return 1;
    }
    workers[i].pid = pid;
    workers[i].out = ::fdopen(fds[0], "r");
    if (workers[i].out == nullptr) {
      report("fdopen");
      ::close(fds[0]);
      for (auto& w : workers)
        if (w.out) std::fclose(w.out);
      for (auto& w : workers)
        if (w.pid > 0) ::waitpid(w.pid, nullptr, 0);
      return 1;
    }
  }

  std::vector<FileLineSource> file_sources;
  file_sources.reserve(workers.size());
  for (auto& w : workers) file_sources.emplace_back(w.out);
  std::vector<LineSource*> sources;
  for (auto& s : file_sources) sources.push_back(&s);

  std::string error;
  ProgressPoll progress(opt.heartbeat_files);
  const bool merged = merge_streams(
      sources,
      [&](const std::string& line) {
        std::fwrite(line.data(), 1, line.size(), out);
        std::fputc('\n', out);
        if (progress.enabled()) progress.poll();
      },
      &error);
  if (progress.enabled()) progress.poll();  // final state after drain
  std::fflush(out);

  // Closing the pipes first makes a still-writing worker take SIGPIPE
  // instead of blocking forever if the merge bailed early.
  for (auto& w : workers) std::fclose(w.out);

  int rc = 0;
  for (unsigned i = 0; i < workers.size(); ++i) {
    int status = 0;
    ::waitpid(workers[i].pid, &status, 0);
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "orchestrator: shard %u/%u exited with %d\n", i,
                   opt.shards, WEXITSTATUS(status));
      if (rc == 0) rc = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status) && !merged) {
      // Expected teardown path after a merge error; keep the first
      // diagnostic authoritative.
    } else if (WIFSIGNALED(status)) {
      std::fprintf(stderr, "orchestrator: shard %u/%u killed by signal %d\n",
                   i, opt.shards, WTERMSIG(status));
      if (rc == 0) rc = 1;
    }
  }
  if (!merged) {
    std::fprintf(stderr, "orchestrator: merge failed: %s\n", error.c_str());
    if (rc == 0) rc = 1;
  }
  return rc;
}

}  // namespace dsm::shard
