#include "shard/resume.hpp"

#include <cstdio>
#include <cstdlib>

#include "shard/stream_sink.hpp"

namespace dsm::shard {

StoreScan scan_store(const std::string& path) {
  StoreScan scan;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    scan.ok = true;  // no store yet: resuming from nothing is a fresh run
    return scan;
  }
  char* buf = nullptr;
  std::size_t cap = 0;
  std::string line;
  bool pending = false;  // a not-yet-absorbed line is buffered in `line`
  std::size_t line_no = 0;

  auto absorb = [&](bool is_final) -> bool {
    const auto parsed = parse_record(line);
    if (!parsed) {
      if (is_final) {
        // The writer died mid-record: unusable but recoverable — the
        // index is simply still a gap. (A terminated-but-unparsable final
        // line gets the same treatment: a crash can land after the '\n'
        // of the previous record and before this one finished.)
        scan.truncated_tail = true;
        scan.tail = line;
        return true;
      }
      scan.error = "store line " + std::to_string(line_no) +
                   " is unparsable (not a truncated tail — the store is "
                   "corrupt): " +
                   line;
      return false;
    }
    if (scan.records.empty() && scan.duplicates == 0) {
      scan.bench = parsed->bench;
    } else if (parsed->bench != scan.bench) {
      scan.error = "store mixes bench '" + scan.bench + "' with '" +
                   parsed->bench + "' (line " + std::to_string(line_no) + ")";
      return false;
    }
    const std::size_t idx = parsed->record.spec_index;
    if (!scan.records.emplace(idx, line).second) ++scan.duplicates;
    return true;
  };

  bool ok = true;
  for (;;) {
    const ssize_t n = ::getline(&buf, &cap, f);
    if (n < 0) break;
    if (pending && !(ok = absorb(false))) break;
    line.assign(buf, static_cast<std::size_t>(n));
    if (!line.empty() && line.back() == '\n') line.pop_back();
    pending = true;
    ++line_no;
  }
  if (ok && pending) ok = absorb(true);
  std::free(buf);
  std::fclose(f);
  scan.ok = ok;
  return scan;
}

std::vector<std::size_t> store_gaps(const StoreScan& scan, std::size_t total) {
  std::vector<std::size_t> gaps;
  auto it = scan.records.begin();
  for (std::size_t i = 0; i < total; ++i) {
    while (it != scan.records.end() && it->first < i) ++it;
    if (it == scan.records.end() || it->first != i) gaps.push_back(i);
  }
  return gaps;
}

}  // namespace dsm::shard
