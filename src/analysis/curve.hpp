// curve.hpp — CoV-curve construction, the paper's §II "new tool ... that
// helps quantify the quality of phase detection of a particular mechanism
// across multiple operating points".
//
// One point = one threshold setting, evaluated on every processor's trace
// with the offline classifier; per-processor identifier CoVs and phase
// counts are then *averaged across processors* ("we compute identifier CoV
// curves for each processor, and then average them together to obtain the
// overall system-wide CoV curve", §III-A).
//
// BBV baseline: 200 threshold values (paper §III-A) swept quadratically
// over the normalized-Manhattan range. BBV+DDV: a (bbv x dds) threshold
// grid; the published curve is the lower envelope over phase counts, since
// the paper plots a single curve from a two-parameter sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "phase/detector.hpp"
#include "phase/interval_record.hpp"

namespace dsm::analysis {

struct CurvePoint {
  double mean_phases = 0.0;      ///< x axis (averaged over processors)
  double mean_cov = 0.0;         ///< y axis: identifier CoV of CPI
  double tuning_fraction = 0.0;  ///< (phases * trials) / intervals
  phase::Thresholds thresholds;  ///< the setting that produced this point
};

struct CurveParams {
  unsigned footprint_capacity = 32;  ///< paper: 32-vector footprint table
  unsigned bbv_steps = 200;          ///< paper: two hundred threshold values
  unsigned dds_steps = 12;           ///< grid resolution for the DDS axis
  /// Intervals spent trial-tuning each newly seen phase (the §II
  /// reconfiguration model); only affects the tuning_fraction axis.
  unsigned tuning_trials = 4;
  std::uint32_t bbv_norm = 1u << 16;
};

/// BBV-only curve over all processors' traces.
std::vector<CurvePoint> bbv_cov_curve(
    const std::vector<phase::ProcessorTrace>& procs, const CurveParams& p);

/// BBV+DDV curve: full grid; use lower_envelope() for the plotted series.
std::vector<CurvePoint> bbv_ddv_cov_points(
    const std::vector<phase::ProcessorTrace>& procs, const CurveParams& p);

/// Keeps, for each integer-rounded phase count, the point with minimal
/// CoV; output sorted by mean_phases. This is what gets plotted.
std::vector<CurvePoint> lower_envelope(std::vector<CurvePoint> points);

/// Convenience: bbv_ddv_cov_points + lower_envelope.
std::vector<CurvePoint> bbv_ddv_cov_curve(
    const std::vector<phase::ProcessorTrace>& procs, const CurveParams& p);

/// Interpolates the curve's CoV at a given phase count (linear between
/// bracketing points; clamped at the ends). Used by benches to report
/// "CoV at N phases" comparisons like the paper's FMM numbers.
double cov_at_phases(const std::vector<CurvePoint>& curve, double phases);

/// Smallest mean phase count on the curve achieving CoV <= target
/// (+inf-like sentinel 1e9 when never reached).
double phases_for_cov(const std::vector<CurvePoint>& curve, double target_cov);

}  // namespace dsm::analysis
