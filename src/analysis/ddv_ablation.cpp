#include "analysis/ddv_ablation.hpp"

#include "common/assert.hpp"

namespace dsm::analysis {

const char* dds_variant_name(DdsVariant v) {
  switch (v) {
    case DdsVariant::kFull: return "F*D*C (paper)";
    case DdsVariant::kNoContention: return "F*D (no contention)";
    case DdsVariant::kNoDistance: return "F*C (no distance)";
    case DdsVariant::kFrequencyOnly: return "F (frequency only)";
  }
  return "?";
}

std::vector<phase::ProcessorTrace> with_dds_variant(
    const std::vector<phase::ProcessorTrace>& procs,
    const net::TopologyModel& topo, DdsVariant variant) {
  std::vector<phase::ProcessorTrace> out = procs;
  for (auto& proc : out) {
    for (auto& rec : proc.intervals) {
      DSM_ASSERT(rec.f.size() == rec.c.size());
      double dds = 0.0;
      for (NodeId j = 0; j < rec.f.size(); ++j) {
        const auto f = static_cast<double>(rec.f[j]);
        const auto c = static_cast<double>(rec.c[j]);
        const auto d =
            static_cast<double>(topo.ddv_distance(proc.node, j));
        switch (variant) {
          case DdsVariant::kFull: dds += f * d * c; break;
          case DdsVariant::kNoContention: dds += f * d; break;
          case DdsVariant::kNoDistance: dds += f * c; break;
          case DdsVariant::kFrequencyOnly: dds += f; break;
        }
      }
      rec.dds = dds;
    }
  }
  return out;
}

}  // namespace dsm::analysis
