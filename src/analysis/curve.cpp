#include "analysis/curve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "analysis/classifier.hpp"
#include "analysis/cov.hpp"
#include "common/assert.hpp"

namespace dsm::analysis {
namespace {

/// Per-processor DDS scale anchors for the threshold sweep. The *noise
/// floor* (median absolute consecutive difference) is where thresholds
/// stop fragmenting stationary behaviour; the *range* (max - min) is where
/// the DDS constraint stops mattering. Sweeping geometrically between the
/// two covers every useful operating point regardless of each node's DDS
/// magnitude (which depends on its distance profile).
struct DdsScale {
  double noise = 0.0;
  double range = 0.0;
};

DdsScale dds_scale(const std::vector<phase::IntervalRecord>& trace) {
  DdsScale s;
  if (trace.empty()) return s;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::vector<double> diffs;
  diffs.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    lo = std::min(lo, trace[i].dds);
    hi = std::max(hi, trace[i].dds);
    if (i > 0) diffs.push_back(std::abs(trace[i].dds - trace[i - 1].dds));
  }
  s.range = hi - lo;
  if (!diffs.empty()) {
    std::nth_element(diffs.begin(), diffs.begin() + diffs.size() / 2,
                     diffs.end());
    s.noise = diffs[diffs.size() / 2];
  }
  if (s.noise <= 0.0) s.noise = s.range > 0.0 ? s.range * 1e-3 : 1.0;
  return s;
}

/// Threshold for sweep position `frac` in [0, 1]: geometric from half the
/// noise floor to the full range (frac == 1 disables the DDS constraint).
double dds_threshold_at(const DdsScale& s, double frac) {
  if (frac >= 1.0) return s.range;
  const double lo = 0.5 * s.noise;
  const double hi = std::max(s.range, lo * 2.0);
  return lo * std::pow(hi / lo, frac);
}

/// Quadratic sweep position: dense resolution at small thresholds, where
/// phase counts change fastest.
double sweep_frac(unsigned k, unsigned steps) {
  if (steps <= 1) return 1.0;
  const double f = static_cast<double>(k) / (steps - 1);
  return f * f;
}

CurvePoint evaluate(const std::vector<phase::ProcessorTrace>& procs,
                    bool use_dds, std::uint64_t bbv_thr, double dds_frac,
                    const CurveParams& p) {
  CurvePoint pt;
  pt.thresholds.bbv = bbv_thr;
  double sum_cov = 0.0, sum_phases = 0.0, sum_tuning = 0.0;
  unsigned counted = 0;
  for (const auto& proc : procs) {
    if (proc.intervals.empty()) continue;
    phase::Thresholds t;
    t.bbv = bbv_thr;
    t.dds = use_dds ? dds_threshold_at(dds_scale(proc.intervals), dds_frac)
                    : 0.0;
    const auto cls = classify_trace(proc.intervals, use_dds,
                                    p.footprint_capacity, t);
    sum_cov += identifier_cov(proc.intervals, cls.assignment);
    sum_phases += cls.distinct_phases;
    sum_tuning +=
        std::min(1.0, static_cast<double>(cls.distinct_phases) *
                          p.tuning_trials / proc.intervals.size());
    ++counted;
  }
  if (counted > 0) {
    pt.mean_cov = sum_cov / counted;
    pt.mean_phases = sum_phases / counted;
    pt.tuning_fraction = sum_tuning / counted;
  }
  return pt;
}

}  // namespace

std::vector<CurvePoint> bbv_cov_curve(
    const std::vector<phase::ProcessorTrace>& procs, const CurveParams& p) {
  std::vector<CurvePoint> out;
  out.reserve(p.bbv_steps);
  const double max_dist = 2.0 * p.bbv_norm;
  for (unsigned k = 0; k < p.bbv_steps; ++k) {
    const auto thr =
        static_cast<std::uint64_t>(sweep_frac(k, p.bbv_steps) * max_dist);
    out.push_back(evaluate(procs, /*use_dds=*/false, thr, 0.0, p));
  }
  return out;
}

std::vector<CurvePoint> bbv_ddv_cov_points(
    const std::vector<phase::ProcessorTrace>& procs, const CurveParams& p) {
  std::vector<CurvePoint> out;
  // Full bbv resolution on one axis and the dds sweep on the other. The
  // dds sweep includes frac == 1.0 (threshold = the full observed DDS
  // range), which degenerates to the BBV baseline — so the lower envelope
  // of this grid can never lie above the baseline curve.
  const unsigned bbv_steps = p.bbv_steps;
  out.reserve(static_cast<std::size_t>(bbv_steps) * p.dds_steps);
  const double max_dist = 2.0 * p.bbv_norm;
  for (unsigned i = 0; i < bbv_steps; ++i) {
    const auto bbv_thr =
        static_cast<std::uint64_t>(sweep_frac(i, bbv_steps) * max_dist);
    for (unsigned j = 0; j < p.dds_steps; ++j) {
      const double dds_frac =
          p.dds_steps <= 1 ? 1.0
                           : static_cast<double>(j) / (p.dds_steps - 1);
      auto pt = evaluate(procs, /*use_dds=*/true, bbv_thr, dds_frac, p);
      pt.thresholds.dds = dds_frac;  // stored as the relative setting
      out.push_back(pt);
    }
  }
  return out;
}

std::vector<CurvePoint> lower_envelope(std::vector<CurvePoint> points) {
  // Bucket phase counts at 0.5 resolution; keep the min-CoV point of each.
  std::map<long, CurvePoint> best;
  for (const auto& pt : points) {
    const long bucket = std::lround(pt.mean_phases * 2.0);
    const auto it = best.find(bucket);
    if (it == best.end() || pt.mean_cov < it->second.mean_cov)
      best[bucket] = pt;
  }
  std::vector<CurvePoint> out;
  out.reserve(best.size());
  for (const auto& [bucket, pt] : best) out.push_back(pt);
  std::sort(out.begin(), out.end(),
            [](const CurvePoint& a, const CurvePoint& b) {
              return a.mean_phases < b.mean_phases;
            });
  return out;
}

std::vector<CurvePoint> bbv_ddv_cov_curve(
    const std::vector<phase::ProcessorTrace>& procs, const CurveParams& p) {
  return lower_envelope(bbv_ddv_cov_points(procs, p));
}

double cov_at_phases(const std::vector<CurvePoint>& curve, double phases) {
  DSM_ASSERT(!curve.empty());
  // Staircase reading: the best CoV the detector delivers within a budget
  // of `phases` phases. Robust to gaps in the swept phase counts (the
  // threshold->phases map is steppy for near-degenerate BBVs).
  double best = std::numeric_limits<double>::infinity();
  double smallest_phases = std::numeric_limits<double>::infinity();
  double cov_at_smallest = 0.0;
  for (const auto& pt : curve) {
    if (pt.mean_phases <= phases) best = std::min(best, pt.mean_cov);
    if (pt.mean_phases < smallest_phases) {
      smallest_phases = pt.mean_phases;
      cov_at_smallest = pt.mean_cov;
    }
  }
  // Budget below every achievable operating point: report the coarsest one.
  return std::isinf(best) ? cov_at_smallest : best;
}

double phases_for_cov(const std::vector<CurvePoint>& curve,
                      double target_cov) {
  double best = 1e9;
  for (const auto& pt : curve) {
    if (pt.mean_cov <= target_cov) best = std::min(best, pt.mean_phases);
  }
  return best;
}

}  // namespace dsm::analysis
