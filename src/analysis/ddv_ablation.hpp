// ddv_ablation.hpp — recomputes per-interval DDS values with parts of the
// paper's formula removed, from the raw F and C vectors the simulator
// records. Quantifies what each DDV term (distance matrix D, contention
// vector C) contributes to detection quality — the ablation DESIGN.md
// calls out for the key design choices.
//
//   kFull          DDS = sum_j F[j] * D[i][j] * C[j]   (the paper)
//   kNoContention  DDS = sum_j F[j] * D[i][j]          (drop C)
//   kNoDistance    DDS = sum_j F[j] * C[j]             (drop D)
//   kFrequencyOnly DDS = sum_j F[j]                    (raw access count)
#pragma once

#include <vector>

#include "network/topology.hpp"
#include "phase/interval_record.hpp"

namespace dsm::analysis {

enum class DdsVariant {
  kFull,
  kNoContention,
  kNoDistance,
  kFrequencyOnly,
};

const char* dds_variant_name(DdsVariant v);

/// Copy of `procs` with every interval's dds recomputed under `variant`
/// using the topology's distance matrix.
std::vector<phase::ProcessorTrace> with_dds_variant(
    const std::vector<phase::ProcessorTrace>& procs,
    const net::TopologyModel& topo, DdsVariant variant);

}  // namespace dsm::analysis
