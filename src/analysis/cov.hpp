// cov.hpp — the paper's evaluation metric (§II): for each phase, the CoV
// of the per-interval CPI values in it; the *identifier CoV* is the
// average of the per-phase CoVs weighted by how many intervals belong to
// each phase. Perfectly homogeneous phases give 0.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "phase/interval_record.hpp"

namespace dsm::analysis {

/// Per-phase statistics underlying the identifier CoV.
struct PhaseStat {
  PhaseId phase = kNoPhase;
  std::size_t intervals = 0;
  double mean_cpi = 0.0;
  double cov_cpi = 0.0;
};

/// Per-phase breakdown for a classified trace.
std::vector<PhaseStat> per_phase_stats(
    const std::vector<phase::IntervalRecord>& trace,
    std::span<const PhaseId> assignment);

/// Identifier CoV of CPI: interval-weighted mean of per-phase CoVs.
double identifier_cov(const std::vector<phase::IntervalRecord>& trace,
                      std::span<const PhaseId> assignment);

}  // namespace dsm::analysis
