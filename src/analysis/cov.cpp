#include "analysis/cov.hpp"

#include <map>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace dsm::analysis {

std::vector<PhaseStat> per_phase_stats(
    const std::vector<phase::IntervalRecord>& trace,
    std::span<const PhaseId> assignment) {
  DSM_ASSERT(trace.size() == assignment.size());
  std::map<PhaseId, RunningStat> groups;
  for (std::size_t i = 0; i < trace.size(); ++i)
    groups[assignment[i]].add(trace[i].cpi);

  std::vector<PhaseStat> out;
  out.reserve(groups.size());
  for (const auto& [phase, stat] : groups) {
    PhaseStat ps;
    ps.phase = phase;
    ps.intervals = static_cast<std::size_t>(stat.count());
    ps.mean_cpi = stat.mean();
    ps.cov_cpi = stat.cov();
    out.push_back(ps);
  }
  return out;
}

double identifier_cov(const std::vector<phase::IntervalRecord>& trace,
                      std::span<const PhaseId> assignment) {
  if (trace.empty()) return 0.0;
  const auto stats = per_phase_stats(trace, assignment);
  double weighted = 0.0;
  std::size_t total = 0;
  for (const auto& ps : stats) {
    weighted += ps.cov_cpi * static_cast<double>(ps.intervals);
    total += ps.intervals;
  }
  return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

}  // namespace dsm::analysis
