#include "analysis/classifier.hpp"

#include <unordered_set>

namespace dsm::analysis {

ClassifiedTrace classify_trace(const std::vector<phase::IntervalRecord>& trace,
                               bool use_dds, unsigned footprint_capacity,
                               phase::Thresholds thresholds) {
  phase::FootprintTable table(footprint_capacity, use_dds);
  ClassifiedTrace out;
  out.assignment.reserve(trace.size());
  std::unordered_set<PhaseId> seen;
  for (const auto& rec : trace) {
    const auto c = table.classify(rec.bbv, rec.dds, thresholds.bbv,
                                  use_dds ? thresholds.dds : 0.0);
    out.assignment.push_back(c.phase);
    seen.insert(c.phase);
  }
  out.distinct_phases = static_cast<unsigned>(seen.size());
  out.footprint_replacements = table.replacements();
  return out;
}

}  // namespace dsm::analysis
