// classifier.hpp — offline replay of the footprint-table classification
// over a recorded interval trace.
//
// The paper examines two hundred threshold values per configuration; re-
// simulating per threshold would be wasteful and is unnecessary, because
// classification is a pure function of the recorded per-interval
// signatures. This replays the *exact* online algorithm (LRU footprint
// table included), so an online detector with the same thresholds produces
// the identical assignment — a property tests/classifier_test.cpp checks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "phase/detector.hpp"
#include "phase/interval_record.hpp"

namespace dsm::analysis {

struct ClassifiedTrace {
  std::vector<PhaseId> assignment;  ///< phase id per interval, in order
  unsigned distinct_phases = 0;     ///< phases with >= 1 interval
  std::uint64_t footprint_replacements = 0;
};

/// Classifies one processor's trace with a BBV-only (use_dds=false) or
/// BBV+DDV (use_dds=true) detector at the given thresholds.
ClassifiedTrace classify_trace(const std::vector<phase::IntervalRecord>& trace,
                               bool use_dds, unsigned footprint_capacity,
                               phase::Thresholds thresholds);

}  // namespace dsm::analysis
