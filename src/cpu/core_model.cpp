#include "cpu/core_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dsm::cpu {

CoreModel::CoreModel(const CoreConfig& core, const PredictorConfig& pred)
    : core_(core), predictor_(pred) {}

Cycle CoreModel::compute_cycles(InstrCount n, double fp_frac) {
  DSM_ASSERT(fp_frac >= 0.0 && fp_frac <= 1.0);
  if (n == 0) return 0;
  const auto dn = static_cast<double>(n);
  const double issue_bound = dn / core_.issue_width;
  const double alu_bound = dn * (1.0 - fp_frac) / core_.num_alu;
  const double fpu_bound = dn * fp_frac / core_.num_fpu;
  const double cycles = std::max({issue_bound, alu_bound, fpu_bound});

  residue_ += cycles;
  const auto whole = static_cast<Cycle>(residue_);
  residue_ -= static_cast<double>(whole);
  return whole;
}

Cycle CoreModel::branch_cycles(Addr pc, bool taken) {
  const bool correct = predictor_.update(pc, taken);
  return correct ? 0 : core_.mispredict_penalty;
}

Cycle CoreModel::exposed_memory_stall(Cycle latency, Cycle l1_latency) const {
  if (latency <= l1_latency) return latency;
  const double beyond =
      static_cast<double>(latency - l1_latency) * (1.0 - core_.mlp_overlap);
  return l1_latency + static_cast<Cycle>(std::llround(beyond));
}

void CoreModel::reset() {
  predictor_.reset();
  residue_ = 0.0;
}

}  // namespace dsm::cpu
