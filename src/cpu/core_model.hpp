// core_model.hpp — approximate timing model of the Table I superscalar
// core (6-wide fetch/issue/commit, 6 ALU + 4 FPU, 128/128 registers,
// gshare front end).
//
// We do not simulate an out-of-order window instruction by instruction;
// instead each basic block is charged the maximum of its structural
// bounds (issue width, ALU throughput, FPU throughput), branches pay a
// front-end refill penalty on gshare mispredictions, and long-latency
// memory stalls are partially hidden by a calibrated memory-level-
// parallelism overlap factor. This reproduces the CPI *variation* that
// phase detection feeds on, which is what the paper's evaluation measures.
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"
#include "cpu/gshare.hpp"

namespace dsm::cpu {

class CoreModel {
 public:
  CoreModel(const CoreConfig& core, const PredictorConfig& pred);

  /// Cycles to execute `n` non-memory instructions of which `fp_frac`
  /// (0..1) occupy the FPUs. Fractional cycles accumulate in a residue so
  /// long runs are exact.
  Cycle compute_cycles(InstrCount n, double fp_frac);

  /// Resolves a branch at `pc` with direction `taken`; returns the
  /// front-end penalty (0 when predicted correctly).
  Cycle branch_cycles(Addr pc, bool taken);

  /// Exposed stall for a memory access whose full latency is `latency`:
  /// hits at L1 speed pass through; longer latencies are shortened by the
  /// MLP overlap factor.
  Cycle exposed_memory_stall(Cycle latency, Cycle l1_latency) const;

  const GsharePredictor& predictor() const { return predictor_; }
  std::uint64_t branches() const { return predictor_.predictions(); }

  void reset();

 private:
  CoreConfig core_;
  GsharePredictor predictor_;
  double residue_ = 0.0;  ///< sub-cycle carry for compute_cycles
};

}  // namespace dsm::cpu
