// gshare.hpp — the 2,048-entry gshare branch predictor of Table I.
//
// Index = (pc >> 2) XOR global-history, into a table of 2-bit saturating
// counters; the global history shift register records actual outcomes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace dsm::cpu {

class GsharePredictor {
 public:
  explicit GsharePredictor(const PredictorConfig& cfg);

  /// Predicted direction for the branch at `pc`.
  bool predict(Addr pc) const;

  /// Records the actual outcome, updating counter and history; returns
  /// true when the earlier prediction would have been correct.
  bool update(Addr pc, bool taken);

  std::uint64_t predictions() const { return predictions_; }
  std::uint64_t mispredictions() const { return mispredictions_; }
  double misprediction_rate() const;

  void reset();

 private:
  std::uint64_t index(Addr pc) const;

  unsigned history_bits_;
  std::uint64_t mask_;
  std::uint64_t history_ = 0;
  std::vector<std::uint8_t> counters_;  ///< 2-bit saturating, init weakly-taken
  std::uint64_t predictions_ = 0;
  std::uint64_t mispredictions_ = 0;
};

}  // namespace dsm::cpu
