#include "cpu/gshare.hpp"

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm::cpu {

GsharePredictor::GsharePredictor(const PredictorConfig& cfg)
    : history_bits_(cfg.history_bits),
      mask_(cfg.table_entries - 1),
      counters_(cfg.table_entries, 2) {  // 2 = weakly taken
  DSM_ASSERT(is_pow2(cfg.table_entries));
  DSM_ASSERT(cfg.history_bits <= 32);
}

std::uint64_t GsharePredictor::index(Addr pc) const {
  return ((pc >> 2) ^ history_) & mask_;
}

bool GsharePredictor::predict(Addr pc) const {
  return counters_[index(pc)] >= 2;
}

bool GsharePredictor::update(Addr pc, bool taken) {
  const std::uint64_t idx = index(pc);
  const bool predicted_taken = counters_[idx] >= 2;
  const bool correct = (predicted_taken == taken);
  ++predictions_;
  if (!correct) ++mispredictions_;

  std::uint8_t& c = counters_[idx];
  if (taken) {
    if (c < 3) ++c;
  } else {
    if (c > 0) --c;
  }
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) &
             ((1ull << history_bits_) - 1);
  return correct;
}

double GsharePredictor::misprediction_rate() const {
  return predictions_ == 0
             ? 0.0
             : static_cast<double>(mispredictions_) / predictions_;
}

void GsharePredictor::reset() {
  history_ = 0;
  predictions_ = mispredictions_ = 0;
  for (auto& c : counters_) c = 2;
}

}  // namespace dsm::cpu
