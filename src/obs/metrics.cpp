#include "obs/metrics.hpp"

#include "common/assert.hpp"

namespace dsm::obs {

namespace {
/// Fixed lane capacities. Handles are raw pointers into the lanes, so the
/// lanes must never reallocate: reserve once, assert on overflow. 4096
/// padded counters = 256 KB, 64 Ki histogram buckets = 512 KB — trivial
/// next to one simulated L2, and far above any current registrant (the
/// largest is the per-link network lane: 6 links/node * 64 nodes * 2).
constexpr std::size_t kMaxCounters = 4096;
constexpr std::size_t kMaxHistSlots = 1 << 16;
}  // namespace

bool is_host_metric(const std::string& name) {
  return name.rfind("host.", 0) == 0;
}

MetricsRegistry::MetricsRegistry() {
  slots_.reserve(kMaxCounters);
  hist_slots_.reserve(kMaxHistSlots);
}

CounterHandle MetricsRegistry::counter(const std::string& name) {
  DSM_ASSERT_MSG(!name.empty(), "counter needs a name");
  for (const auto& c : counters_)
    if (c.name == name) return CounterHandle(&slots_[c.slot].v);
  DSM_ASSERT_MSG(slots_.size() < kMaxCounters,
                 "metrics registry counter lane exhausted");
  slots_.emplace_back();
  counters_.push_back(CounterInfo{name, slots_.size() - 1});
  if (!is_host_metric(name)) {
    // Deterministic registrants must all exist before the interval ring
    // snapshots the tracked-slot set — a late one would silently fall
    // out of the timeline (end_interval asserts on the count).
    DSM_ASSERT_MSG(interval_cap_ == 0,
                   "deterministic counter registered after enable_intervals");
    ++nonhost_counters_;
  }
  return CounterHandle(&slots_.back().v);
}

HistogramHandle MetricsRegistry::histogram(const std::string& name,
                                           std::uint32_t buckets) {
  DSM_ASSERT_MSG(!name.empty() && buckets >= 1, "bad histogram registration");
  for (const auto& h : hists_) {
    if (h.name != name) continue;
    DSM_ASSERT_MSG(h.buckets == buckets,
                   "histogram re-registered with a different width");
    return HistogramHandle(&hist_slots_[h.base], h.buckets);
  }
  DSM_ASSERT_MSG(hist_slots_.size() + buckets <= kMaxHistSlots,
                 "metrics registry histogram lane exhausted");
  const std::size_t base = hist_slots_.size();
  hist_slots_.resize(base + buckets, 0);
  hists_.push_back(HistInfo{name, base, buckets});
  return HistogramHandle(&hist_slots_[base], buckets);
}

void MetricsRegistry::enable_intervals(std::uint32_t capacity) {
  DSM_ASSERT_MSG(interval_cap_ == 0, "enable_intervals called twice");
  DSM_ASSERT_MSG(capacity >= 1, "interval ring needs capacity >= 1");
  interval_cap_ = capacity;
  tracked_.reserve(nonhost_counters_);
  for (const auto& c : counters_)
    if (!is_host_metric(c.name)) tracked_.push_back(c.slot);
  baseline_.resize(tracked_.size(), 0);
  ring_deltas_.resize(static_cast<std::size_t>(capacity) * tracked_.size(), 0);
  ring_meta_.resize(capacity);
  begin_interval();
}

void MetricsRegistry::begin_interval() {
  for (std::size_t i = 0; i < tracked_.size(); ++i)
    baseline_[i] = slots_[tracked_[i]].v;
}

void MetricsRegistry::end_interval(const IntervalMeta& meta) {
  DSM_ASSERT_MSG(interval_cap_ != 0, "end_interval before enable_intervals");
  DSM_ASSERT_MSG(nonhost_counters_ == tracked_.size(),
                 "deterministic counter registered after enable_intervals");
  const std::size_t row =
      static_cast<std::size_t>(ring_next_) * tracked_.size();
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    const std::uint64_t v = slots_[tracked_[i]].v;
    ring_deltas_[row + i] = v - baseline_[i];
    baseline_[i] = v;
  }
  ring_meta_[ring_next_] = meta;
  ring_next_ = (ring_next_ + 1 == interval_cap_) ? 0 : ring_next_ + 1;
  if (ring_count_ < interval_cap_)
    ++ring_count_;
  else
    ++interval_dropped_;  // overwrote the oldest surviving row
  ++interval_captured_;
}

std::vector<std::string> MetricsRegistry::interval_slot_names() const {
  std::vector<std::string> names;
  names.reserve(tracked_.size());
  for (const auto& c : counters_)
    if (!is_host_metric(c.name)) names.push_back(c.name);
  return names;
}

std::vector<CapturedInterval> MetricsRegistry::captured_intervals() const {
  std::vector<CapturedInterval> out;
  out.reserve(ring_count_);
  // Oldest surviving row: ring_next_ when full (it is about to be
  // overwritten), 0 while still filling.
  const std::uint32_t start = ring_count_ == interval_cap_ ? ring_next_ : 0;
  for (std::uint32_t k = 0; k < ring_count_; ++k) {
    const std::uint32_t idx = (start + k) % interval_cap_;
    CapturedInterval ci;
    ci.meta = ring_meta_[idx];
    const std::size_t row = static_cast<std::size_t>(idx) * tracked_.size();
    ci.deltas.assign(ring_deltas_.begin() + static_cast<std::ptrdiff_t>(row),
                     ring_deltas_.begin() +
                         static_cast<std::ptrdiff_t>(row + tracked_.size()));
    out.push_back(std::move(ci));
  }
  return out;
}

std::vector<std::uint64_t> MetricsRegistry::interval_tail() const {
  std::vector<std::uint64_t> out(tracked_.size(), 0);
  for (std::size_t i = 0; i < tracked_.size(); ++i)
    out[i] = slots_[tracked_[i]].v - baseline_[i];
  return out;
}

std::string MetricsRegistry::intervals_json() const {
  if (interval_cap_ == 0) return "";
  std::string out = "{\"slots\":[";
  bool first = true;
  for (const auto& c : counters_) {
    if (is_host_metric(c.name)) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += c.name;
    out += '"';
  }
  out += "],\"capacity\":";
  out += std::to_string(interval_cap_);
  out += ",\"captured\":";
  out += std::to_string(interval_captured_);
  out += ",\"dropped\":";
  out += std::to_string(interval_dropped_);
  out += ",\"intervals\":[";
  const std::uint32_t start = ring_count_ == interval_cap_ ? ring_next_ : 0;
  for (std::uint32_t k = 0; k < ring_count_; ++k) {
    const std::uint32_t idx = (start + k) % interval_cap_;
    if (k != 0) out += ',';
    const IntervalMeta& m = ring_meta_[idx];
    out += '[';
    out += std::to_string(m.node);
    out += ',';
    out += std::to_string(m.seq);
    out += ',';
    out += std::to_string(m.phase);
    out += ',';
    out += std::to_string(m.end_cycle);
    const std::size_t row = static_cast<std::size_t>(idx) * tracked_.size();
    for (std::size_t i = 0; i < tracked_.size(); ++i) {
      out += ',';
      out += std::to_string(ring_deltas_[row + i]);
    }
    out += ']';
  }
  out += "],\"tail\":[";
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(slots_[tracked_[i]].v - baseline_[i]);
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::render_json(bool host) const {
  // Hand-rolled for byte-stability: names contain no characters needing
  // escape (registrants use [a-z0-9._] by convention) and values are
  // plain uint64 — the exact bytes must match across every execution
  // mode, so no locale- or double-formatting is allowed near here.
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters_) {
    if (is_host_metric(c.name) != host) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += c.name;
    out += "\":";
    out += std::to_string(slots_[c.slot].v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : hists_) {
    if (is_host_metric(h.name) != host) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += h.name;
    out += "\":[";
    for (std::uint32_t b = 0; b < h.buckets; ++b) {
      if (b != 0) out += ',';
      out += std::to_string(hist_slots_[h.base + b]);
    }
    out += ']';
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  return render_json(/*host=*/false);
}

std::string MetricsRegistry::host_json() const {
  return render_json(/*host=*/true);
}

std::uint64_t MetricsRegistry::value(const std::string& name) const {
  for (const auto& c : counters_)
    if (c.name == name) return slots_[c.slot].v;
  return 0;
}

std::vector<std::uint64_t> MetricsRegistry::histogram_values(
    const std::string& name) const {
  for (const auto& h : hists_) {
    if (h.name != name) continue;
    return std::vector<std::uint64_t>(
        hist_slots_.begin() + static_cast<std::ptrdiff_t>(h.base),
        hist_slots_.begin() + static_cast<std::ptrdiff_t>(h.base + h.buckets));
  }
  return {};
}

}  // namespace dsm::obs
