#include "obs/metrics.hpp"

#include "common/assert.hpp"

namespace dsm::obs {

namespace {
/// Fixed lane capacities. Handles are raw pointers into the lanes, so the
/// lanes must never reallocate: reserve once, assert on overflow. 4096
/// padded counters = 256 KB, 64 Ki histogram buckets = 512 KB — trivial
/// next to one simulated L2, and far above any current registrant (the
/// largest is the per-link network lane: 6 links/node * 64 nodes * 2).
constexpr std::size_t kMaxCounters = 4096;
constexpr std::size_t kMaxHistSlots = 1 << 16;
}  // namespace

bool is_host_metric(const std::string& name) {
  return name.rfind("host.", 0) == 0;
}

MetricsRegistry::MetricsRegistry() {
  slots_.reserve(kMaxCounters);
  hist_slots_.reserve(kMaxHistSlots);
}

CounterHandle MetricsRegistry::counter(const std::string& name) {
  DSM_ASSERT_MSG(!name.empty(), "counter needs a name");
  for (const auto& c : counters_)
    if (c.name == name) return CounterHandle(&slots_[c.slot].v);
  DSM_ASSERT_MSG(slots_.size() < kMaxCounters,
                 "metrics registry counter lane exhausted");
  slots_.emplace_back();
  counters_.push_back(CounterInfo{name, slots_.size() - 1});
  return CounterHandle(&slots_.back().v);
}

HistogramHandle MetricsRegistry::histogram(const std::string& name,
                                           std::uint32_t buckets) {
  DSM_ASSERT_MSG(!name.empty() && buckets >= 1, "bad histogram registration");
  for (const auto& h : hists_) {
    if (h.name != name) continue;
    DSM_ASSERT_MSG(h.buckets == buckets,
                   "histogram re-registered with a different width");
    return HistogramHandle(&hist_slots_[h.base], h.buckets);
  }
  DSM_ASSERT_MSG(hist_slots_.size() + buckets <= kMaxHistSlots,
                 "metrics registry histogram lane exhausted");
  const std::size_t base = hist_slots_.size();
  hist_slots_.resize(base + buckets, 0);
  hists_.push_back(HistInfo{name, base, buckets});
  return HistogramHandle(&hist_slots_[base], buckets);
}

std::string MetricsRegistry::render_json(bool host) const {
  // Hand-rolled for byte-stability: names contain no characters needing
  // escape (registrants use [a-z0-9._] by convention) and values are
  // plain uint64 — the exact bytes must match across every execution
  // mode, so no locale- or double-formatting is allowed near here.
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters_) {
    if (is_host_metric(c.name) != host) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += c.name;
    out += "\":";
    out += std::to_string(slots_[c.slot].v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : hists_) {
    if (is_host_metric(h.name) != host) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += h.name;
    out += "\":[";
    for (std::uint32_t b = 0; b < h.buckets; ++b) {
      if (b != 0) out += ',';
      out += std::to_string(hist_slots_[h.base + b]);
    }
    out += ']';
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  return render_json(/*host=*/false);
}

std::string MetricsRegistry::host_json() const {
  return render_json(/*host=*/true);
}

std::uint64_t MetricsRegistry::value(const std::string& name) const {
  for (const auto& c : counters_)
    if (c.name == name) return slots_[c.slot].v;
  return 0;
}

std::vector<std::uint64_t> MetricsRegistry::histogram_values(
    const std::string& name) const {
  for (const auto& h : hists_) {
    if (h.name != name) continue;
    return std::vector<std::uint64_t>(
        hist_slots_.begin() + static_cast<std::ptrdiff_t>(h.base),
        hist_slots_.begin() + static_cast<std::ptrdiff_t>(h.base + h.buckets));
  }
  return {};
}

}  // namespace dsm::obs
