#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/assert.hpp"

namespace dsm::obs {

const char* trace_kind_name(std::uint16_t kind) {
  switch (kind) {
    case TraceEvent::kMissStart: return "miss_start";
    case TraceEvent::kMissFill: return "miss";
    case TraceEvent::kDirRequest: return "dir_request";
    case TraceEvent::kDirForward: return "dir_forward";
    case TraceEvent::kWriteback: return "writeback";
    case TraceEvent::kPhaseBoundary: return "phase_boundary";
  }
  return "?";
}

TraceBuffer::TraceBuffer(unsigned num_nodes, std::uint32_t capacity_per_node)
    : cap_(capacity_per_node) {
  DSM_ASSERT_MSG(num_nodes >= 1 && capacity_per_node >= 1,
                 "trace buffer needs nodes and capacity");
  rings_.resize(num_nodes);
  for (auto& r : rings_) r.ev.resize(cap_);
}

std::vector<TraceEvent> TraceBuffer::events(unsigned node) const {
  const Ring& r = rings_.at(node);
  std::vector<TraceEvent> out;
  out.reserve(r.count);
  // When the ring has wrapped the oldest surviving event sits at `next`;
  // before that, at 0.
  const std::uint32_t start = r.count == cap_ ? r.next : 0;
  for (std::uint32_t i = 0; i < r.count; ++i)
    out.push_back(r.ev[(start + i) % cap_]);
  return out;
}

namespace {
struct NodeHeader {
  std::uint32_t node = 0;
  std::uint32_t count = 0;
  std::uint64_t dropped = 0;
};
static_assert(sizeof(NodeHeader) == 16);

struct FileHeader {
  char magic[8] = {};
  std::uint32_t num_nodes = 0;
  std::uint32_t capacity = 0;
};
static_assert(sizeof(FileHeader) == 16);

bool fail(std::string* err, std::string msg) {
  if (err != nullptr) *err = std::move(msg);
  return false;
}
}  // namespace

bool TraceBuffer::dump(const std::string& path, std::string* err) const {
  DSM_ASSERT_MSG(enabled(), "dump of a disabled trace buffer");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return fail(err, "cannot open " + path + " for writing");
  bool ok = true;
  FileHeader fh;
  std::memcpy(fh.magic, kTraceMagic, sizeof(kTraceMagic));
  fh.num_nodes = static_cast<std::uint32_t>(rings_.size());
  fh.capacity = cap_;
  ok = ok && std::fwrite(&fh, sizeof(fh), 1, f) == 1;
  for (std::uint32_t n = 0; ok && n < rings_.size(); ++n) {
    const Ring& r = rings_[n];
    NodeHeader nh{n, r.count, r.dropped};
    ok = ok && std::fwrite(&nh, sizeof(nh), 1, f) == 1;
    // Emit oldest-first: the wrapped tail first, then the head segment.
    const std::uint32_t start = r.count == cap_ ? r.next : 0;
    const std::uint32_t first_run =
        r.count == 0 ? 0 : std::min(r.count, cap_ - start);
    if (first_run > 0)
      ok = ok && std::fwrite(r.ev.data() + start, sizeof(TraceEvent),
                             first_run, f) == first_run;
    const std::uint32_t rest = r.count - first_run;
    if (ok && rest > 0)
      ok = ok &&
           std::fwrite(r.ev.data(), sizeof(TraceEvent), rest, f) == rest;
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return fail(err, "short write to " + path);
  return true;
}

bool read_trace_file(const std::string& path, TraceFileData* out,
                     std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail(err, "cannot open " + path);
  FileHeader fh;
  if (std::fread(&fh, sizeof(fh), 1, f) != 1) {
    std::fclose(f);
    return fail(err, path + ": truncated header");
  }
  if (std::memcmp(fh.magic, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    std::fclose(f);
    return fail(err, path + ": not a DSMTRC01 trace file");
  }
  if (fh.num_nodes == 0 || fh.num_nodes > 4096 || fh.capacity == 0) {
    std::fclose(f);
    return fail(err, path + ": implausible header");
  }
  out->capacity_per_node = fh.capacity;
  out->nodes.assign(fh.num_nodes, TraceFileNode{});
  for (std::uint32_t n = 0; n < fh.num_nodes; ++n) {
    NodeHeader nh;
    if (std::fread(&nh, sizeof(nh), 1, f) != 1) {
      std::fclose(f);
      return fail(err, path + ": truncated node header");
    }
    if (nh.node != n || nh.count > fh.capacity) {
      std::fclose(f);
      return fail(err, path + ": corrupt node header");
    }
    TraceFileNode& tn = out->nodes[n];
    tn.dropped = nh.dropped;
    tn.events.resize(nh.count);
    if (nh.count > 0 &&
        std::fread(tn.events.data(), sizeof(TraceEvent), nh.count, f) !=
            nh.count) {
      std::fclose(f);
      return fail(err, path + ": truncated event body");
    }
  }
  // A well-formed file ends exactly here.
  const bool trailing = std::fgetc(f) != EOF;
  std::fclose(f);
  if (trailing) return fail(err, path + ": trailing bytes after last node");
  return true;
}

}  // namespace dsm::obs
