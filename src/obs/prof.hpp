// prof.hpp — the compile-time-gated hot-path self-profiler: rdtsc-
// bracketed RAII stage timers over the access path, answering "where does
// the time go" from inside the binary instead of an external profiler.
//
// Gated by the DSM_OBS_PROF CMake option (default OFF). When OFF the
// DSM_PROF_SCOPE macro expands to nothing — zero code, zero data — and
// the report functions compile to constants, so harnesses call them
// unconditionally. When ON, every scope accumulates (tsc delta, call
// count) into relaxed atomics: the numbers are a host-side diagnostic
// and deliberately have no effect on simulated state, so simulated
// output stays bit-identical with the profiler compiled in.
#pragma once

#include <cstdint>
#include <ctime>
#include <string>

namespace dsm::obs {

enum class ProfStage : unsigned {
  kBatchStage1,  ///< access_batch stage-1 walk + prefetch issue
  kBatchResolve, ///< access_batch stage-2/3 in-order resolution loop
  kDoAccess,     ///< do_access, whole body (L1/L2/miss path)
  kDirRequest,   ///< directory_request, whole body
  kDirProbe,     ///< Directory::entry probe (inside kDirRequest)
  kFill,         ///< fill_hierarchy (inside kDirRequest)
  kCount,
};
inline constexpr unsigned kProfStages =
    static_cast<unsigned>(ProfStage::kCount);

const char* prof_stage_name(ProfStage s);

/// True when the binary was built with -DDSM_OBS_PROF=ON.
bool prof_enabled();

/// Zeroes the accumulators (between measured configs, if wanted).
void prof_reset();

/// Human table of per-stage tsc totals / calls / share, one line per
/// stage, for stderr. Empty string when compiled out.
std::string prof_report_text();

/// Machine-readable section for BENCH_*.json:
///   {"unit":"tsc","stages":{"name":{"calls":N,"ticks":N},...}}
/// Empty object "{}" when compiled out.
std::string prof_report_json();

#if defined(DSM_OBS_PROF)

namespace detail {
/// Relaxed-atomic accumulation: sweep workers may race on these; the
/// totals are diagnostics, not simulated state.
void prof_add(ProfStage s, std::uint64_t ticks);

inline std::uint64_t prof_now() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  // Portable fallback: nanoseconds. Slower to read than a tsc but the
  // profiler is an opt-in diagnostic build.
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#endif
}
}  // namespace detail

/// RAII bracket: accumulates the enclosed tsc interval into its stage.
class ProfScope {
 public:
  explicit ProfScope(ProfStage s) : s_(s), t0_(detail::prof_now()) {}
  ~ProfScope() { detail::prof_add(s_, detail::prof_now() - t0_); }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfStage s_;
  std::uint64_t t0_;
};

#define DSM_PROF_CAT2(a, b) a##b
#define DSM_PROF_CAT(a, b) DSM_PROF_CAT2(a, b)
#define DSM_PROF_SCOPE(stage)        \
  ::dsm::obs::ProfScope DSM_PROF_CAT( \
      dsm_prof_scope_, __LINE__)(::dsm::obs::ProfStage::stage)

#else

#define DSM_PROF_SCOPE(stage) \
  do {                        \
  } while (false)

#endif  // DSM_OBS_PROF

}  // namespace dsm::obs
