#include "obs/prof.hpp"

#include <atomic>
#include <cstdio>

namespace dsm::obs {

const char* prof_stage_name(ProfStage s) {
  switch (s) {
    case ProfStage::kBatchStage1: return "batch_stage1";
    case ProfStage::kBatchResolve: return "batch_resolve";
    case ProfStage::kDoAccess: return "do_access";
    case ProfStage::kDirRequest: return "dir_request";
    case ProfStage::kDirProbe: return "dir_probe";
    case ProfStage::kFill: return "fill_hierarchy";
    case ProfStage::kCount: break;
  }
  return "?";
}

#if defined(DSM_OBS_PROF)

namespace {
std::atomic<std::uint64_t> g_ticks[kProfStages];
std::atomic<std::uint64_t> g_calls[kProfStages];
}  // namespace

namespace detail {
void prof_add(ProfStage s, std::uint64_t ticks) {
  const auto i = static_cast<unsigned>(s);
  g_ticks[i].fetch_add(ticks, std::memory_order_relaxed);
  g_calls[i].fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

bool prof_enabled() { return true; }

void prof_reset() {
  for (unsigned i = 0; i < kProfStages; ++i) {
    g_ticks[i].store(0, std::memory_order_relaxed);
    g_calls[i].store(0, std::memory_order_relaxed);
  }
}

std::string prof_report_text() {
  // Scopes nest (dir_probe and fill_hierarchy run inside dir_request,
  // which runs inside do_access), so ticks are INCLUSIVE; the share
  // column is each stage's fraction of the widest bracket it nests in —
  // do_access for the serial path, the batch stages for batched drivers.
  std::uint64_t ticks[kProfStages];
  std::uint64_t calls[kProfStages];
  std::uint64_t top = 0;
  for (unsigned i = 0; i < kProfStages; ++i) {
    ticks[i] = g_ticks[i].load(std::memory_order_relaxed);
    calls[i] = g_calls[i].load(std::memory_order_relaxed);
    if (ticks[i] > top) top = ticks[i];
  }
  std::string out =
      "self-profiler (DSM_OBS_PROF, inclusive tsc ticks per stage):\n";
  char line[160];
  for (unsigned i = 0; i < kProfStages; ++i) {
    const auto s = static_cast<ProfStage>(i);
    const double share =
        top == 0 ? 0.0 : 100.0 * static_cast<double>(ticks[i]) /
                             static_cast<double>(top);
    std::snprintf(line, sizeof(line),
                  "  %-14s %14llu ticks %12llu calls  %5.1f%%\n",
                  prof_stage_name(s),
                  static_cast<unsigned long long>(ticks[i]),
                  static_cast<unsigned long long>(calls[i]), share);
    out += line;
  }
  return out;
}

std::string prof_report_json() {
  std::string out = "{\"unit\":\"tsc\",\"stages\":{";
  for (unsigned i = 0; i < kProfStages; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += prof_stage_name(static_cast<ProfStage>(i));
    out += "\":{\"calls\":";
    out += std::to_string(g_calls[i].load(std::memory_order_relaxed));
    out += ",\"ticks\":";
    out += std::to_string(g_ticks[i].load(std::memory_order_relaxed));
    out += '}';
  }
  out += "}}";
  return out;
}

#else  // !DSM_OBS_PROF

bool prof_enabled() { return false; }
void prof_reset() {}
std::string prof_report_text() { return std::string(); }
std::string prof_report_json() { return "{}"; }

#endif

}  // namespace dsm::obs
