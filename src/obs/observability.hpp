// observability.hpp — the per-machine aggregate the instrumented layers
// share: one deterministic metrics registry + one per-node trace buffer,
// configured by ObsConfig (common/config.hpp) and owned by sim::Machine
// (or constructed standalone by fabric-level drivers like perf_hotpath).
//
// Components take an optional `obs::Observability*` (default nullptr) at
// construction and register their counters there; with a null pointer —
// or stats disabled — every handle stays null and the hot path pays one
// predicted-not-taken branch per site. Nothing here ever feeds back into
// simulated state, so enabling observability cannot change simulated
// output.
#pragma once

#include <string>

#include "common/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dsm::obs {

class Observability {
 public:
  Observability(const ObsConfig& cfg, unsigned num_nodes)
      : stats_(cfg.stats || cfg.intervals),  // intervals need live counters
        trace_(cfg.trace ? TraceBuffer(num_nodes, cfg.trace_events_per_node)
                         : TraceBuffer()) {}

  bool stats_enabled() const { return stats_; }
  bool trace_enabled() const { return trace_.enabled(); }
  bool intervals_enabled() const { return metrics_.intervals_enabled(); }

  /// Registration handle for components; returns a null (no-op) handle
  /// when stats are off, so registrants never branch on the mode.
  CounterHandle counter(const std::string& name) {
    return stats_ ? metrics_.counter(name) : CounterHandle();
  }
  HistogramHandle histogram(const std::string& name, std::uint32_t buckets) {
    return stats_ ? metrics_.histogram(name, buckets) : HistogramHandle();
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The trace buffer to record into, or nullptr when tracing is off —
  /// hot paths keep the pointer and guard each record() with it.
  TraceBuffer* trace() { return trace_.enabled() ? &trace_ : nullptr; }
  const TraceBuffer& trace_buffer() const { return trace_; }

  /// Deterministic snapshot for the record envelope ("" when stats off).
  std::string snapshot_json() const {
    return stats_ ? metrics_.snapshot_json() : std::string();
  }

  /// Deterministic interval timeline for the record envelope ("" when
  /// interval capture was never enabled).
  std::string intervals_json() const { return metrics_.intervals_json(); }

 private:
  bool stats_ = false;
  MetricsRegistry metrics_;
  TraceBuffer trace_;
};

}  // namespace dsm::obs
