// metrics.hpp — the deterministic metrics registry: named uint64 counter
// and histogram slots, preallocated and cache-line padded at construction,
// incremented on the hot path through nullable always-inline handles.
//
// Zero-cost-when-off contract: a default-constructed handle holds a null
// pointer and every operation is `if (p) ...` — one predictable branch,
// no call, no allocation. Instrumented code never checks a global flag;
// it simply holds a null handle when observability is disabled.
//
// Determinism contract: counters are incremented only at *simulated-event*
// sites (directory transitions, fills, evictions, link traversals), which
// the fabric executes in the same order regardless of --threads/--shards/
// --batch — so snapshot_json() is byte-identical across all of them.
// Host-side diagnostics (batch restages, trace drops) register under the
// reserved "host." prefix and are EXCLUDED from the deterministic
// snapshot; read them with value() / host_json() instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if defined(__GNUC__) || defined(__clang__)
#define DSM_OBS_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define DSM_OBS_ALWAYS_INLINE inline
#endif

namespace dsm::obs {

class MetricsRegistry;

/// Hot-path increment handle for one named counter. Copyable, 8 bytes,
/// null (no-op) by default.
class CounterHandle {
 public:
  CounterHandle() = default;
  DSM_OBS_ALWAYS_INLINE void inc() {
    if (p_ != nullptr) ++*p_;
  }
  DSM_OBS_ALWAYS_INLINE void add(std::uint64_t n) {
    if (p_ != nullptr) *p_ += n;
  }
  explicit operator bool() const { return p_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit CounterHandle(std::uint64_t* p) : p_(p) {}
  std::uint64_t* p_ = nullptr;
};

/// Hot-path record handle for one named histogram: `buckets` consecutive
/// uint64 slots; values clamp into the last bucket. Null (no-op) by
/// default.
class HistogramHandle {
 public:
  HistogramHandle() = default;
  DSM_OBS_ALWAYS_INLINE void record(std::uint64_t v) {
    if (base_ == nullptr) return;
    ++base_[v < buckets_ - 1 ? v : buckets_ - 1];
  }
  explicit operator bool() const { return base_ != nullptr; }

 private:
  friend class MetricsRegistry;
  HistogramHandle(std::uint64_t* base, std::uint32_t buckets)
      : base_(base), buckets_(buckets) {}
  std::uint64_t* base_ = nullptr;
  std::uint32_t buckets_ = 0;
};

/// Metadata of one captured interval: which detector boundary closed it.
/// Plain data so the capture site (sim::Machine's phase-boundary hook)
/// fills it without touching registry internals.
struct IntervalMeta {
  std::uint64_t end_cycle = 0;  ///< simulated cycle the boundary closed at
  std::uint64_t seq = 0;        ///< node-local interval index just closed
  std::uint32_t node = 0;       ///< processor whose detector closed it
  std::int32_t phase = -1;      ///< detected phase id (kNoPhase when none)
};

/// One captured interval, copied out of the ring (tests / offline use —
/// allocates, never on the hot path).
struct CapturedInterval {
  IntervalMeta meta;
  std::vector<std::uint64_t> deltas;  ///< per tracked slot, snapshot order
};

class MetricsRegistry {
 public:
  /// Preallocates every slot up front: registration hands out pointers
  /// into these lanes, so they must never move. Construction is the only
  /// allocation this class ever performs — the steady state (increments,
  /// even further registrations) is allocation-free.
  MetricsRegistry();

  /// Registers (or finds, by exact name) a counter and returns its
  /// handle. Registration order is the snapshot order, so components must
  /// register in construction order — which is deterministic.
  CounterHandle counter(const std::string& name);

  /// Registers (or finds) a histogram of `buckets` slots (>= 1; the last
  /// bucket absorbs overflow). Re-registration must agree on the width.
  HistogramHandle histogram(const std::string& name, std::uint32_t buckets);

  /// Deterministic JSON snapshot of every non-"host." metric, in
  /// registration order:
  ///   {"counters":{...},"histograms":{"name":[b0,...],...}}
  /// Identical across --threads/--shards/--batch by the determinism
  /// contract above.
  std::string snapshot_json() const;

  /// Host-side diagnostics ("host." prefix) as the same JSON shape.
  /// NOT deterministic across batch; never merged into records.
  std::string host_json() const;

  /// Current value of a counter by name (0 if unregistered). Tests.
  std::uint64_t value(const std::string& name) const;

  /// Bucket values of a histogram by name (empty if unregistered). Tests.
  std::vector<std::uint64_t> histogram_values(const std::string& name) const;

  std::size_t num_counters() const { return counters_.size(); }
  std::size_t num_histograms() const { return hists_.size(); }

  // ---- interval-scoped snapshots (the cheap epoch mechanism) ----
  //
  // enable_intervals() is called ONCE, after every deterministic
  // registrant has registered (for sim::Machine: at the end of its
  // constructor): it snapshots the set of non-"host." counters as the
  // tracked slots and preallocates a ring of `capacity` interval rows,
  // each one delta per tracked slot. From then on end_interval() captures
  // the per-slot deltas since the previous boundary into the next ring
  // row and re-baselines — zero allocation, O(tracked slots), executed
  // only at phase-detector interval boundaries (simulated-event sites),
  // so the captured timeline is byte-identical across
  // --threads/--shards/--batch exactly like the end-of-run snapshot.
  // A full ring overwrites the oldest row and counts it as dropped
  // (trace-ring semantics). Histograms are cumulative-only: the interval
  // timeline tracks counters, the end-of-run snapshot keeps the
  // histograms.

  /// Fixes the tracked slot set and preallocates the ring. Must be called
  /// at most once, with capacity >= 1; implies begin_interval().
  void enable_intervals(std::uint32_t capacity);
  bool intervals_enabled() const { return interval_cap_ != 0; }

  /// Re-baselines the epoch: the next end_interval() captures deltas from
  /// this point. enable_intervals() calls it; explicit calls discard the
  /// accumulation since the last boundary (rarely wanted).
  void begin_interval();

  /// Captures the per-slot deltas since the last boundary into the ring
  /// (overwriting the oldest row when full) and re-baselines.
  void end_interval(const IntervalMeta& meta);

  std::uint64_t intervals_captured() const { return interval_captured_; }
  std::uint64_t intervals_dropped() const { return interval_dropped_; }
  std::uint32_t interval_capacity() const { return interval_cap_; }

  /// Names of the tracked slots, in snapshot order (empty before
  /// enable_intervals()).
  std::vector<std::string> interval_slot_names() const;

  /// Surviving ring rows, oldest first (allocates — tests/offline only).
  std::vector<CapturedInterval> captured_intervals() const;

  /// Deltas accumulated since the last boundary (the open tail interval).
  std::vector<std::uint64_t> interval_tail() const;

  /// Deterministic JSON of the interval timeline (the record envelope's
  /// optional `obs_intervals` field):
  ///   {"slots":[names...],"capacity":C,"captured":N,"dropped":D,
  ///    "intervals":[[node,seq,phase,end_cycle,d0,d1,...],...],
  ///    "tail":[d0,d1,...]}
  /// Rows oldest first; "tail" is computed at serialization time, so
  /// summed row deltas plus the tail reconcile exactly with the
  /// end-of-run snapshot whenever dropped == 0. "" before
  /// enable_intervals().
  std::string intervals_json() const;

 private:
  /// One counter per host cache line so adjacent counters never
  /// false-share (and a hot counter stays resident while its neighbors
  /// churn). Histograms use dense slots — their buckets are accessed
  /// together anyway.
  struct alignas(64) Slot {
    std::uint64_t v = 0;
  };

  struct CounterInfo {
    std::string name;
    std::size_t slot;
  };
  struct HistInfo {
    std::string name;
    std::size_t base;
    std::uint32_t buckets;
  };

  std::string render_json(bool host) const;

  std::vector<Slot> slots_;                 ///< capacity fixed at ctor
  std::vector<std::uint64_t> hist_slots_;   ///< capacity fixed at ctor
  std::vector<CounterInfo> counters_;
  std::vector<HistInfo> hists_;

  // Interval ring (enable_intervals). tracked_ holds the slot index of
  // every non-host counter at enable time; registrations after that are
  // a contract violation end_interval() asserts against.
  std::uint32_t interval_cap_ = 0;
  std::vector<std::size_t> tracked_;          ///< slot index per tracked
  std::vector<std::uint64_t> baseline_;       ///< value at last boundary
  std::vector<std::uint64_t> ring_deltas_;    ///< cap × tracked_.size()
  std::vector<IntervalMeta> ring_meta_;       ///< cap entries
  std::uint32_t ring_next_ = 0;
  std::uint32_t ring_count_ = 0;
  std::uint64_t interval_captured_ = 0;
  std::uint64_t interval_dropped_ = 0;
  std::size_t nonhost_counters_ = 0;  ///< maintained by counter()
};

/// True when `name` is a host-side diagnostic (excluded from the
/// deterministic snapshot).
bool is_host_metric(const std::string& name);

}  // namespace dsm::obs
