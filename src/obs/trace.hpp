// trace.hpp — per-node binary event tracing: fixed-size preallocated ring
// buffers of 32-byte POD events, recorded at simulated-event sites only
// (so the sequence is identical across --threads/--shards/--batch),
// dumped post-run to a "DSMTRC01" binary file that `dsm_report trace`
// converts to Chrome trace-event JSON.
//
// Zero-allocation contract: the rings are sized at construction and never
// grow; record() on a full ring overwrites the oldest event and counts
// the overwrite in `dropped` — tracing ON keeps fabric_alloc_test green.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dsm::obs {

/// One trace event. Exactly 32 bytes, trivially copyable — the dump
/// writer emits the raw ring memory.
struct TraceEvent {
  enum Kind : std::uint16_t {
    kMissStart = 1,      ///< access fell through L1+L2 to the directory
    kMissFill = 2,       ///< directory served it; arg = total latency
    kDirRequest = 3,     ///< request arrived at the home directory
    kDirForward = 4,     ///< home forwarded to the current owner (aux)
    kWriteback = 5,      ///< dirty L2 victim written back toward home (aux)
    kPhaseBoundary = 6,  ///< detector interval boundary; arg = interval #
  };

  /// DataSource of a kMissFill, packed into flags bits 1..3 by the
  /// fabric (bit 0 is the write flag). Mirrors coh::DataSource — kept as
  /// raw values here so dsm_obs does not depend on dsm_coherence.
  static constexpr std::uint8_t kWriteBit = 1;
  static constexpr unsigned kSourceShift = 1;

  std::uint64_t ts = 0;    ///< simulated cycle the event refers to
  std::uint64_t addr = 0;  ///< line address (0 when not line-scoped)
  std::uint64_t arg = 0;   ///< kind-specific (latency, interval index)
  std::uint16_t kind = 0;
  std::uint8_t node = 0;   ///< acting node (also selects the ring)
  std::uint8_t flags = 0;  ///< bit 0 write; bits 1..3 fill source
  std::uint32_t aux = 0;   ///< kind-specific peer (home/owner) node
};
static_assert(sizeof(TraceEvent) == 32, "trace events are 32-byte records");

const char* trace_kind_name(std::uint16_t kind);

/// Magic leading a trace file; the trailing digits version the format.
inline constexpr char kTraceMagic[8] = {'D', 'S', 'M', 'T', 'R', 'C', '0', '1'};

class TraceBuffer {
 public:
  /// Disabled buffer: record() is a no-op, enabled() is false.
  TraceBuffer() = default;

  /// One ring of `capacity_per_node` events per node, fully preallocated.
  TraceBuffer(unsigned num_nodes, std::uint32_t capacity_per_node);

  bool enabled() const { return !rings_.empty(); }
  std::uint32_t capacity() const { return cap_; }
  unsigned num_nodes() const { return static_cast<unsigned>(rings_.size()); }

  /// Appends to ev.node's ring; overwrites the oldest event (counting it
  /// as dropped) when full. No allocation, ever.
  void record(const TraceEvent& ev) {
    if (rings_.empty()) return;
    Ring& r = rings_[ev.node];
    r.ev[r.next] = ev;
    r.next = (r.next + 1 == cap_) ? 0 : r.next + 1;
    if (r.count < cap_) ++r.count;
    else ++r.dropped;
  }

  std::uint64_t dropped(unsigned node) const { return rings_.at(node).dropped; }
  std::uint32_t recorded(unsigned node) const { return rings_.at(node).count; }

  /// Node's surviving events, oldest first (tests, determinism compares).
  std::vector<TraceEvent> events(unsigned node) const;

  /// Writes the binary dump: magic, node count, capacity, then per node
  /// its surviving events oldest-first plus the drop count. Returns false
  /// (with *err set) on I/O failure.
  bool dump(const std::string& path, std::string* err) const;

 private:
  struct Ring {
    std::vector<TraceEvent> ev;
    std::uint32_t next = 0;   ///< slot the next event lands in
    std::uint32_t count = 0;  ///< events held (<= cap_)
    std::uint64_t dropped = 0;
  };
  std::uint32_t cap_ = 0;
  std::vector<Ring> rings_;
};

/// Parsed contents of one trace file.
struct TraceFileNode {
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;  ///< oldest first
};
struct TraceFileData {
  std::uint32_t capacity_per_node = 0;
  std::vector<TraceFileNode> nodes;
};

/// Reads a dump() file back. Returns false (with *err set) on a missing
/// file, bad magic, or a structurally truncated body.
bool read_trace_file(const std::string& path, TraceFileData* out,
                     std::string* err);

}  // namespace dsm::obs
