// timeline.hpp — phase-attributed rendering of the `obs_intervals`
// envelope field (`dsm_report timeline`).
//
// A record's interval timeline (obs/metrics.hpp intervals_json: one row
// of counter deltas per phase-detector interval boundary, each tagged
// with the online-detected phase id of the processor that closed it) is
// rendered four ways per record:
//   * the interval × metric series itself (the top-k metrics by total
//     delta — a 64-node machine tracks hundreds of per-link counters,
//     so the full matrix is CSV/Chrome territory, not a terminal table),
//   * per-phase aggregation: interval count and per-metric means for
//     every detected phase id,
//   * the phase-transition matrix over successive boundaries,
//   * the top-k metric-mean deltas between the phases of the most
//     frequent transition — "what actually changes when the program
//     moves between its two dominant behaviors".
// When the record also carries the end-of-run `obs` snapshot and no ring
// rows were dropped, the summed row deltas plus the open tail are
// reconciled against the snapshot exactly — a failed reconciliation is
// an exit-1 diagnostic, because it means the capture mechanism lost
// counts somewhere.
//
// With `chrome_path` set, the timeline is additionally emitted as Chrome
// trace counter ("C") events — one counter track per rendered metric
// plus a "phase" track, pid = spec_index — so it overlays the event
// traces `dsm_report trace` converts (same 1 cycle = 1 µs time base).
#pragma once

#include <cstdio>
#include <string>

#include "shard/orchestrator.hpp"

namespace dsm::report {

struct TimelineOptions {
  unsigned top_k = 8;        ///< metrics rendered, by total delta
  unsigned max_rows = 40;    ///< interval rows printed per record
  std::string chrome_path;   ///< when set, also write counter events here
};

/// Renders the timeline of every record in `source` carrying an
/// `obs_intervals` field to `out`. Returns the process exit code: 0 on
/// success, 1 when the stream is invalid, no record carries a timeline,
/// or a timeline fails reconciliation (diagnostics on stderr).
int render_timeline(shard::LineSource& source, const TimelineOptions& opt,
                    std::FILE* out);

}  // namespace dsm::report
