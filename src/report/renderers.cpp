// renderers.cpp — the renderer registry and the 14 per-harness
// record→text renderers. Each renderer is the ONLY formatting point for
// its harness's human output: bench mains reduce configurations to
// metrics records and both the live sweep and `dsm_report render` replay
// those records through the renderer registered here. Formats reproduce
// the pre-refactor mains byte-for-byte (modulo wall-clock columns, which
// moved to stderr in the two timing harnesses — wall-clock is not
// reproducible from records and records carry deterministic values only).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "common/config.hpp"
#include "common/table_writer.hpp"
#include "network/network.hpp"
#include "phase/traffic_model.hpp"
#include "report/record_reader.hpp"
#include "report/render_util.hpp"
#include "report/renderer.hpp"

namespace dsm::report {
namespace {

using dsm::TableWriter;

// ---- fig2_bbv_baseline ----

class Fig2Renderer : public Renderer {
 public:
  explicit Fig2Renderer(const RenderOptions& opt) : opt_(opt) {}

  void record(const RecordView& rec) override {
    if (!header_) {
      std::printf("== Figure 2: baseline BBV CoV curves (scale: %s) ==\n\n",
                  rec.scale.c_str());
      header_ = true;
    }
    const JsonValue& m = rec.m();
    const auto curve = parse_curve(m.at("curve"));
    char title[128];
    std::snprintf(title, sizeof title, "-- %s CoV curve, BBV, %uP --",
                  rec.app.c_str(), rec.nodes);
    print_curve(title, curve);
    write_curve_csv(opt_,
                    "fig2_" + rec.app + "_" + std::to_string(rec.nodes) + "p",
                    curve);
    headline_.add_row(
        {rec.app, std::to_string(rec.nodes),
         TableWriter::fmt(m.at("cov_at_7").number(), 3),
         TableWriter::fmt(m.at("cov_at_25").number(), 3),
         TableWriter::fmt(m.at("phases_for_cov20").number(), 3)});
  }

  int finish() override {
    std::printf("== Figure 2 headline (paper shape: CoV at fixed phases "
                "rises with node count) ==\n%s\n",
                headline_.to_text().c_str());
    return 0;
  }

 private:
  RenderOptions opt_;
  bool header_ = false;
  TableWriter headline_{{"app", "nodes", "CoV@7 phases", "CoV@25 phases",
                         "min phases for CoV<=20%"}};
};

// ---- fig4_bbv_ddv ----

class Fig4Renderer : public Renderer {
 public:
  explicit Fig4Renderer(const RenderOptions& opt) : opt_(opt) {}

  void record(const RecordView& rec) override {
    if (!header_) {
      std::printf(
          "== Figure 4: BBV vs BBV+DDV CoV curves (scale: %s) ==\n\n",
          rec.scale.c_str());
      header_ = true;
    }
    const JsonValue& m = rec.m();
    const auto bbv = parse_curve(m.at("bbv_curve"));
    const auto ddv = parse_curve(m.at("ddv_curve"));
    char title[160];
    std::snprintf(title, sizeof title, "-- %s, %uP: BBV --", rec.app.c_str(),
                  rec.nodes);
    print_curve(title, bbv, 10);
    std::snprintf(title, sizeof title, "-- %s, %uP: BBV+DDV --",
                  rec.app.c_str(), rec.nodes);
    print_curve(title, ddv, 10);
    const std::string stem =
        "fig4_" + rec.app + "_" + std::to_string(rec.nodes) + "p";
    write_curve_csv(opt_, stem + "_bbv", bbv);
    write_curve_csv(opt_, stem + "_ddv", ddv);

    const double bbv25 = m.at("bbv_cov_at_25").number();
    const double ddv25 = m.at("ddv_cov_at_25").number();
    headline_.add_row(
        {rec.app, std::to_string(rec.nodes), TableWriter::fmt(bbv25, 3),
         TableWriter::fmt(ddv25, 3),
         TableWriter::fmt(ddv25 / std::max(bbv25, 1e-9), 3),
         TableWriter::fmt(m.at("bbv_phases_at_cov").number(), 3),
         TableWriter::fmt(m.at("ddv_phases_at_cov").number(), 3)});
  }

  int finish() override {
    std::printf("== Figure 4 headline (paper shape: DDV at/below BBV, gap "
                "widening with nodes) ==\n%s\n",
                headline_.to_text().c_str());
    return 0;
  }

 private:
  RenderOptions opt_;
  bool header_ = false;
  TableWriter headline_{{"app", "nodes", "BBV CoV@25", "DDV CoV@25",
                         "CoV ratio", "BBV phases@CoV", "DDV phases@CoV"}};
};

// ---- table1_architecture ----

class Table1Renderer : public Renderer {
 public:
  explicit Table1Renderer(const RenderOptions&) {}

  void record(const RecordView&) override {
    // Everything Table I prints is a pure function of the default
    // configuration; the record's derived-quantity metrics exist for
    // machine consumers. One record, one full printout.
    const MachineConfig cfg = default_config(32);
    err_ = cfg.validate();

    std::printf("== Table I: summary of simulated architecture ==\n\n%s\n",
                format_table1(cfg).c_str());

    std::printf("derived quantities (consumed by the timing models):\n");
    std::printf("  core cycles per ns        : %.1f\n", cfg.cycles_per_ns());
    std::printf("  DRAM access latency       : %llu cycles (75 ns)\n",
                static_cast<unsigned long long>(
                    cfg.ns_to_cycles(cfg.memory.access_ns)));
    std::printf("  line transfer @2.6 GB/s   : %.1f cycles (32 B)\n",
                32.0 / cfg.memory.bandwidth_gbps * cfg.cycles_per_ns());
    std::printf("  network pin-to-pin        : %llu cycles (16 ns)\n",
                static_cast<unsigned long long>(
                    cfg.ns_to_cycles(cfg.network.pin_to_pin_ns)));
    std::printf("  core cycles / router cycle: %.1f (2 GHz / 400 MHz)\n",
                static_cast<double>(cfg.core.frequency_hz) /
                    cfg.network.router_frequency_hz);

    std::printf("\nhypercube geometry (Table I network row):\n");
    std::printf(
        "  nodes  diameter  mean-hops  zero-load line fetch (cycles)\n");
    for (const unsigned n : {2u, 8u, 32u}) {
      MachineConfig c = default_config(n);
      net::Network net(c);
      const auto& topo = net.topology();
      std::printf("  %-5u  %-8u  %-9.2f  %llu\n", n, topo.diameter(),
                  topo.mean_hops(),
                  static_cast<unsigned long long>(net.zero_load_latency(
                      0, n - 1, c.l2.line_bytes)));
    }

    std::printf("\nconfig validation: %s\n",
                err_.empty() ? "OK" : err_.c_str());
  }

  int finish() override { return err_.empty() ? 0 : 1; }

 private:
  std::string err_;
};

// ---- table2_applications ----

class Table2Renderer : public Renderer {
 public:
  explicit Table2Renderer(const RenderOptions&) {}

  void record(const RecordView& rec) override {
    if (!header_) {
      std::printf("== Table II: applications and input sets ==\n\n");
      TableWriter t2({"Application", "Input Set (paper)"});
      for (const auto& app : apps::paper_apps())
        t2.add_row({app.name, app.input_paper});
      std::printf("%s\n", t2.to_text().c_str());
      std::printf("measured characteristics (%s scale, 8 processors):\n\n",
                  rec.scale.c_str());
      header_ = true;
    }
    const JsonValue& m = rec.m();
    measured_.add_row(
        {rec.app, TableWriter::fmt(m.at("instr_m").number(), 3),
         std::to_string(m.at("intervals").unsigned_int()),
         TableWriter::fmt(m.at("cpi").number(), 3),
         TableWriter::fmt(m.at("mem_instr_pct").number(), 3),
         TableWriter::fmt(m.at("remote_frac").number(), 3),
         TableWriter::fmt(m.at("mispredict_pct").number(), 3)});
  }

  int finish() override {
    std::printf("%s\n", measured_.to_text().c_str());
    return 0;
  }

 private:
  bool header_ = false;
  TableWriter measured_{{"app", "instr/proc (M)", "intervals/proc", "CPI",
                         "mem instr %", "remote frac", "gshare mispred %"}};
};

// ---- ablation_ddv_terms ----

class DdvTermsRenderer : public Renderer {
 public:
  explicit DdvTermsRenderer(const RenderOptions& opt) : opt_(opt) {}

  void record(const RecordView& rec) override {
    if (!header_) {
      std::printf("== Ablation: DDS term contributions (scale: %s) ==\n\n",
                  rec.scale.c_str());
      header_ = true;
    }
    const JsonValue& m = rec.m();
    TableWriter t({"DDS variant", "CoV@10 phases", "CoV@25 phases",
                   "phases for CoV<=20%"});
    const JsonValue& bbv = m.at("bbv");
    t.add_row({"(BBV baseline)",
               TableWriter::fmt(bbv.at("cov10").number(), 3),
               TableWriter::fmt(bbv.at("cov25").number(), 3),
               TableWriter::fmt(bbv.at("phases20").number(), 3)});
    for (const JsonValue& v : m.at("variants").items()) {
      t.add_row({v.at("name").string(),
                 TableWriter::fmt(v.at("cov10").number(), 3),
                 TableWriter::fmt(v.at("cov25").number(), 3),
                 TableWriter::fmt(v.at("phases20").number(), 3)});
      // The curves are the record's largest payload; only deserialize
      // them when a CSV file will actually be written.
      if (!opt_.csv_dir.empty())
        write_curve_csv(
            opt_,
            "ablation_dds_" + rec.app + "_" + std::to_string(rec.nodes) +
                "p_" + std::to_string(v.at("id").unsigned_int()),
            parse_curve(v.at("curve")));
    }
    std::printf("-- %s, %uP --\n%s\n", rec.app.c_str(), rec.nodes,
                t.to_text().c_str());
  }

  int finish() override { return 0; }

 private:
  RenderOptions opt_;
  bool header_ = false;
};

// ---- ablation_footprint ----

class FootprintRenderer : public Renderer {
 public:
  explicit FootprintRenderer(const RenderOptions&) {}

  void record(const RecordView& rec) override {
    if (!header_) {
      std::printf(
          "== Ablation: footprint-table capacity (scale: %s) ==\n\n",
          rec.scale.c_str());
      header_ = true;
    }
    TableWriter t({"footprint vectors", "BBV CoV@10", "DDV CoV@10",
                   "BBV CoV@25", "DDV CoV@25"});
    for (const JsonValue& r : rec.m().at("rows").items()) {
      t.add_row({std::to_string(r.at("capacity").unsigned_int()),
                 TableWriter::fmt(r.at("bbv10").number(), 3),
                 TableWriter::fmt(r.at("ddv10").number(), 3),
                 TableWriter::fmt(r.at("bbv25").number(), 3),
                 TableWriter::fmt(r.at("ddv25").number(), 3)});
    }
    std::printf("-- %s, %uP --\n%s\n", rec.app.c_str(), rec.nodes,
                t.to_text().c_str());
  }

  int finish() override { return 0; }

 private:
  bool header_ = false;
};

// ---- ablation_intervals ----

class IntervalsRenderer : public Renderer {
 public:
  explicit IntervalsRenderer(const RenderOptions&) {}

  void record(const RecordView& rec) override {
    if (!header_) {
      std::printf(
          "== Ablation: sampling-interval length (scale: %s) ==\n\n",
          rec.scale.c_str());
      header_ = true;
    }
    // One table per (app, nodes): the factor axis is innermost in spec
    // order, so a group ends exactly when the pair changes (or at EOF).
    if (grouped_ && (rec.app != group_app_ || rec.nodes != group_nodes_))
      flush();
    group_app_ = rec.app;
    group_nodes_ = rec.nodes;
    grouped_ = true;
    const JsonValue& m = rec.m();
    table_.add_row({TableWriter::fmt(m.at("interval").number(), 4),
                    std::to_string(m.at("intervals_per_proc").unsigned_int()),
                    TableWriter::fmt(m.at("bbv_cov10").number(), 3),
                    TableWriter::fmt(m.at("ddv_cov10").number(), 3),
                    TableWriter::fmt(m.at("bbv_cov25").number(), 3),
                    TableWriter::fmt(m.at("ddv_cov25").number(), 3)});
  }

  int finish() override {
    if (grouped_) flush();
    return 0;
  }

 private:
  static TableWriter make_table() {
    return TableWriter({"interval (1P basis)", "intervals/proc",
                        "BBV CoV@10", "DDV CoV@10", "BBV CoV@25",
                        "DDV CoV@25"});
  }

  void flush() {
    std::printf("-- %s, %uP --\n%s\n", group_app_.c_str(), group_nodes_,
                table_.to_text().c_str());
    table_ = make_table();
  }

  bool header_ = false;
  bool grouped_ = false;
  std::string group_app_;
  unsigned group_nodes_ = 0;
  TableWriter table_ = make_table();
};

// ---- ablation_topology ----

class TopologyRenderer : public Renderer {
 public:
  explicit TopologyRenderer(const RenderOptions&) {}

  void record(const RecordView& rec) override {
    if (!header_) {
      std::printf("== Ablation: interconnect topology (16 nodes, scale: "
                  "%s) ==\n\n",
                  rec.scale.c_str());
      header_ = true;
    }
    // One table per app: the topology axis is innermost in spec order.
    if (grouped_ && rec.app != group_app_) flush();
    group_app_ = rec.app;
    grouped_ = true;
    const JsonValue& m = rec.m();
    const double bbv15 = m.at("bbv_cov15").number();
    const double ddv15 = m.at("ddv_cov15").number();
    table_.add_row({rec.variant,
                    std::to_string(m.at("diameter").unsigned_int()),
                    TableWriter::fmt(m.at("mean_cpi").number(), 3),
                    TableWriter::fmt(bbv15, 3), TableWriter::fmt(ddv15, 3),
                    TableWriter::fmt(ddv15 / std::max(bbv15, 1e-9), 3)});
  }

  int finish() override {
    if (grouped_) flush();
    return 0;
  }

 private:
  static TableWriter make_table() {
    return TableWriter({"topology", "diameter", "mean CPI", "BBV CoV@15",
                        "DDV CoV@15", "ratio"});
  }

  void flush() {
    std::printf("-- %s --\n%s\n", group_app_.c_str(),
                table_.to_text().c_str());
    table_ = make_table();
  }

  bool header_ = false;
  bool grouped_ = false;
  std::string group_app_;
  TableWriter table_ = make_table();
};

// ---- ablation_protocol ----

class ProtocolRenderer : public Renderer {
 public:
  explicit ProtocolRenderer(const RenderOptions&) {}

  void record(const RecordView& rec) override {
    if (!header_) {
      std::printf("== Ablation: coherence protocol x topology x nodes "
                  "(scale: %s) ==\n\n",
                  rec.scale.c_str());
      header_ = true;
    }
    // One table per app x node count; the topology (variant) and protocol
    // axes are innermost in spec order and become the table's rows.
    if (grouped_ && (rec.app != group_app_ || rec.nodes != group_nodes_))
      flush();
    group_app_ = rec.app;
    group_nodes_ = rec.nodes;
    grouped_ = true;
    const JsonValue& m = rec.m();
    table_.add_row({rec.variant, rec.protocol,
                    TableWriter::fmt(m.at("mean_cpi").number(), 3),
                    std::to_string(m.at("cache_to_cache").unsigned_int()),
                    std::to_string(m.at("upgrades").unsigned_int()),
                    std::to_string(m.at("invalidations").unsigned_int()),
                    std::to_string(m.at("writebacks").unsigned_int()),
                    std::to_string(m.at("remote_mem").unsigned_int())});
  }

  int finish() override {
    if (grouped_) flush();
    return 0;
  }

 private:
  static TableWriter make_table() {
    return TableWriter({"topology", "protocol", "mean CPI", "c2c",
                        "upgrades", "invals", "writebacks", "remote mem"});
  }

  void flush() {
    std::printf("-- %s @ %up --\n%s\n", group_app_.c_str(), group_nodes_,
                table_.to_text().c_str());
    table_ = make_table();
  }

  bool header_ = false;
  bool grouped_ = false;
  std::string group_app_;
  unsigned group_nodes_ = 0;
  TableWriter table_ = make_table();
};

// ---- overhead_bandwidth ----

class OverheadRenderer : public Renderer {
 public:
  explicit OverheadRenderer(const RenderOptions&) {}

  void record(const RecordView& rec) override {
    if (!header_) {
      std::printf("== DDV bandwidth overhead (paper §III-B) ==\n\n");
      // (a) Analytic, with the paper's assumptions — a pure function,
      // recomputed identically in live and offline rendering.
      phase::DdvTrafficParams pp;
      const auto r = ddv_traffic(pp);
      analytic_ok_ = r.fraction_of_controller < 0.0015;
      std::printf("analytic (paper assumptions):\n");
      std::printf("  interval ends per second per proc: %.1f\n",
                  r.intervals_per_second);
      std::printf("  bytes exchanged per interval end : %llu\n",
                  static_cast<unsigned long long>(r.bytes_per_gather));
      std::printf("  per-processor traffic            : %.1f kB/s  "
                  "(paper: ~160 kB/s for the mechanism)\n",
                  r.node_bytes_per_second / 1e3);
      std::printf("  system-wide traffic              : %.2f MB/s\n",
                  r.system_bytes_per_second / 1e6);
      std::printf("  fraction of a 1.5 GB/s controller: %.4f%%  "
                  "(paper: under 0.15%%)\n\n",
                  100.0 * r.fraction_of_controller);
      header_ = true;
    }
    const JsonValue& m = rec.m();
    const double node_rate = m.at("node_rate_bytes_per_s").number();
    std::printf("simulated (LU, %u nodes; %llu-instr intervals rescaled "
                "to the paper's 100M):\n",
                rec.nodes,
                static_cast<unsigned long long>(
                    m.at("sim_interval").unsigned_int()));
    std::printf("  DDV messages recorded            : %llu (%llu "
                "bytes)\n",
                static_cast<unsigned long long>(
                    m.at("ddv_messages").unsigned_int()),
                static_cast<unsigned long long>(
                    m.at("ddv_bytes").unsigned_int()));
    std::printf("  bytes per gather                 : %.0f\n",
                m.at("bytes_per_gather").number());
    std::printf("  per-processor traffic            : %.1f kB/s\n",
                node_rate / 1e3);
    std::printf("  fraction of a 1.5 GB/s controller: %.4f%%\n",
                100.0 * node_rate / 1.5e9);
    measured_ok_ = m.at("claim_holds").unsigned_int() != 0;
    measured_ = true;
  }

  int finish() override {
    if (!measured_) return 0;
    const bool ok = analytic_ok_ && measured_ok_;
    std::printf("\npaper claim (<0.15%% of controller bandwidth): %s\n",
                ok ? "HOLDS" : "VIOLATED");
    return ok ? 0 : 1;
  }

 private:
  bool header_ = false;
  bool measured_ = false;
  bool analytic_ok_ = false;
  bool measured_ok_ = false;
};

// ---- predictors_eval ----

class PredictorsRenderer : public Renderer {
 public:
  explicit PredictorsRenderer(const RenderOptions&) {}

  void record(const RecordView& rec) override {
    if (!header_) {
      std::printf("== Phase predictors over detected phase sequences "
                  "(scale: %s) ==\n\n",
                  rec.scale.c_str());
      header_ = true;
    }
    const JsonValue& m = rec.m();
    for (const char* det : {"bbv", "ddv"}) {
      const JsonValue& row = m.at(det);
      table_.add_row({rec.app, std::to_string(rec.nodes),
                      det == std::string("bbv") ? "BBV" : "BBV+DDV",
                      TableWriter::fmt(row.at("phases").number(), 3),
                      TableWriter::fmt(row.at("last_pct").number(), 3),
                      TableWriter::fmt(row.at("markov_pct").number(), 3),
                      TableWriter::fmt(row.at("run_length_pct").number(), 3)});
    }
  }

  int finish() override {
    std::printf("%s\n(accuracies in %%; phases = mean phase ids issued per "
                "processor)\n",
                table_.to_text().c_str());
    return 0;
  }

 private:
  bool header_ = false;
  TableWriter table_{{"app", "nodes", "detector", "phases", "last-phase",
                      "markov", "run-length"}};
};

// ---- micro_detector ----

class MicroDetectorRenderer : public Renderer {
 public:
  explicit MicroDetectorRenderer(const RenderOptions&) {}

  void record(const RecordView& rec) override {
    const JsonValue& m = rec.m();
    if (!header_) {
      std::printf("== Detector hardware microbenchmarks (%s scale, base "
                  "%llu iters) ==\n\n",
                  rec.scale.c_str(),
                  static_cast<unsigned long long>(
                      m.at("base_iters").unsigned_int()));
      header_ = true;
    }
    table_.add_row({rec.app, rec.variant.empty() ? "-" : rec.variant,
                    std::to_string(m.at("iters").unsigned_int()),
                    std::to_string(m.at("checksum").unsigned_int())});
  }

  int finish() override {
    std::printf("%s\n(checksums are deterministic; live runs print "
                "wall-clock timings to stderr)\n",
                table_.to_text().c_str());
    return 0;
  }

 private:
  bool header_ = false;
  TableWriter table_{{"kernel", "size", "iters", "checksum"}};
};

// ---- perf_hotpath ----

class PerfHotpathRenderer : public Renderer {
 public:
  explicit PerfHotpathRenderer(const RenderOptions&) {}

  void record(const RecordView& rec) override {
    const JsonValue& m = rec.m();
    if (!header_) {
      std::printf("perf_hotpath (%s scale, %llu accesses/config)\n",
                  rec.scale.c_str(),
                  static_cast<unsigned long long>(
                      m.at("accesses").unsigned_int()));
      header_ = true;
    }
    table_.add_row({rec.variant, std::to_string(rec.nodes),
                    std::to_string(m.at("accesses").unsigned_int()),
                    std::to_string(m.at("total_latency").unsigned_int()),
                    std::to_string(m.at("net_messages").unsigned_int()),
                    std::to_string(m.at("net_bytes").unsigned_int())});
  }

  int finish() override {
    std::printf("%s\n", table_.to_text().c_str());
    return 0;
  }

 private:
  bool header_ = false;
  TableWriter table_{{"topology", "nodes", "accesses", "total_latency",
                      "messages", "bytes"}};
};

// ---- perf_sim ----

class PerfSimRenderer : public Renderer {
 public:
  explicit PerfSimRenderer(const RenderOptions&) {}

  void record(const RecordView& rec) override {
    const JsonValue& m = rec.m();
    if (!header_) {
      std::printf("perf_sim (%s scale, full Machine loop)\n",
                  rec.scale.c_str());
      header_ = true;
    }
    table_.add_row({rec.app, std::to_string(rec.nodes),
                    std::to_string(m.at("instructions").unsigned_int()),
                    std::to_string(m.at("cycles").unsigned_int()),
                    std::to_string(m.at("intervals").unsigned_int()),
                    std::to_string(m.at("net_messages").unsigned_int()),
                    std::to_string(m.at("net_bytes").unsigned_int())});
  }

  int finish() override {
    std::printf("%s\n", table_.to_text().c_str());
    return 0;
  }

 private:
  bool header_ = false;
  TableWriter table_{{"app", "nodes", "instructions", "cycles", "intervals",
                      "messages", "bytes"}};
};

// ---- registry ----

struct Registration {
  const char* bench;
  std::function<std::unique_ptr<Renderer>(const RenderOptions&)> make;
};

template <typename T>
Registration reg(const char* bench) {
  return {bench, [](const RenderOptions& opt) {
            return std::unique_ptr<Renderer>(new T(opt));
          }};
}

const std::vector<Registration>& registry() {
  static const std::vector<Registration> kRegistry = {
      reg<Fig2Renderer>("fig2_bbv_baseline"),
      reg<Fig4Renderer>("fig4_bbv_ddv"),
      reg<Table1Renderer>("table1_architecture"),
      reg<Table2Renderer>("table2_applications"),
      reg<DdvTermsRenderer>("ablation_ddv_terms"),
      reg<FootprintRenderer>("ablation_footprint"),
      reg<IntervalsRenderer>("ablation_intervals"),
      reg<TopologyRenderer>("ablation_topology"),
      reg<ProtocolRenderer>("ablation_protocol"),
      reg<OverheadRenderer>("overhead_bandwidth"),
      reg<PredictorsRenderer>("predictors_eval"),
      reg<MicroDetectorRenderer>("micro_detector"),
      reg<PerfHotpathRenderer>("perf_hotpath"),
      reg<PerfSimRenderer>("perf_sim"),
  };
  return kRegistry;
}

}  // namespace

std::unique_ptr<Renderer> make_renderer(const std::string& bench,
                                        const RenderOptions& opt) {
  for (const auto& r : registry())
    if (bench == r.bench) return r.make(opt);
  return nullptr;
}

std::vector<std::string> renderer_names() {
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const auto& r : registry()) out.push_back(r.bench);
  return out;
}

int render_stream(shard::LineSource& source, const RenderOptions& opt,
                  std::string* error) {
  RecordReader reader(source, StreamKind::kMergedStream);
  std::unique_ptr<Renderer> renderer;
  RecordView rec;
  std::size_t line = 0;
  // Renderer bodies read typed fields out of metrics["m"] and throw on a
  // missing or mis-typed one (a record from a different harness build):
  // that must surface as a line-numbered diagnostic, not std::terminate.
  try {
    while (reader.next(&rec)) {
      ++line;
      if (!renderer) {
        renderer = make_renderer(rec.bench, opt);
        if (!renderer) {
          std::string names;
          for (const auto& n : renderer_names())
            names += (names.empty() ? "" : ", ") + n;
          if (error)
            *error = "no renderer registered for bench '" + rec.bench +
                     "' (known: " + names + ")";
          return 1;
        }
      }
      renderer->record(rec);
    }
    if (!reader.ok()) {
      if (error) *error = reader.error();
      return 1;
    }
    if (!renderer) {
      if (error) *error = "stream contains no records";
      return 1;
    }
    return renderer->finish();
  } catch (const std::exception& e) {
    if (error)
      *error = "line " + std::to_string(line) +
               ": record does not match this renderer's schema: " + e.what();
    return 1;
  }
}

}  // namespace dsm::report
