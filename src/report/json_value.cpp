#include "report/json_value.hpp"

#include <charconv>
#include <stdexcept>

namespace dsm::report {
namespace {

const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kObject: return "object";
    case JsonValue::Kind::kArray: return "array";
  }
  return "?";
}

[[noreturn]] void kind_error(const char* want, JsonValue::Kind got) {
  throw std::runtime_error(std::string("JSON value is ") + kind_name(got) +
                           ", not " + want);
}

}  // namespace

bool JsonValue::boolean() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  double v = 0.0;
  const auto [p, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), v);
  if (ec != std::errc{} || p != scalar_.data() + scalar_.size())
    throw std::runtime_error("unparsable number token: " + scalar_);
  return v;
}

std::uint64_t JsonValue::unsigned_int() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  std::uint64_t v = 0;
  const auto [p, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), v);
  if (ec != std::errc{} || p != scalar_.data() + scalar_.size())
    throw std::runtime_error("number is not an unsigned integer: " + scalar_);
  return v;
}

const std::string& JsonValue::string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return scalar_;
}

const std::string& JsonValue::raw_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return scalar_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return members_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return items_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (const JsonValue* v = find(key)) return *v;
  throw std::runtime_error("JSON object has no member '" + key + "'");
}

const JsonValue& JsonValue::item(std::size_t i) const {
  const auto& a = items();
  if (i >= a.size())
    throw std::runtime_error("JSON array index " + std::to_string(i) +
                             " out of range (size " +
                             std::to_string(a.size()) + ")");
  return a[i];
}

// ---- parser ----

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    if (!value(*out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing bytes after JSON value");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_) *error_ = "byte " + std::to_string(pos_) + ": " + msg;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool lit(const char* s, std::size_t n) {
    if (text_.size() - pos_ < n || text_.compare(pos_, n, s) != 0)
      return false;
    pos_ += n;
    return true;
  }

  bool string_body(std::string& out) {
    // pos_ is just past the opening quote.
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("truncated escape");
        switch (text_[pos_ + 1]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default:
            // \uXXXX and the rest: never produced by json_escape; a
            // strict reader has no business guessing at them.
            return fail("unsupported escape in string");
        }
        pos_ += 2;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out += c;
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool number_token(std::string& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9')) {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return fail("malformed number");
    out.assign(text_.substr(start, pos_ - start));
    // Validate the shape now so accessors cannot be surprised later.
    double v = 0.0;
    const auto [p, ec] = std::from_chars(out.data(), out.data() + out.size(), v);
    if (ec != std::errc{} || p != out.data() + out.size())
      return fail("malformed number");
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        ++pos_;
        out.kind_ = JsonValue::Kind::kString;
        return string_body(out.scalar_);
      case 't':
        if (!lit("true", 4)) return fail("bad literal");
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return true;
      case 'f':
        if (!lit("false", 5)) return fail("bad literal");
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return true;
      case 'n':
        if (!lit("null", 4)) return fail("bad literal");
        out.kind_ = JsonValue::Kind::kNull;
        return true;
      default:
        out.kind_ = JsonValue::Kind::kNumber;
        return number_token(out.scalar_);
    }
  }

  // Real records nest a handful of levels (metrics -> m -> curve rows);
  // the cap turns a corrupt or adversarial deeply-nested line into a
  // positioned diagnostic instead of recursing the stack away.
  static constexpr int kMaxDepth = 64;

  bool object(JsonValue& out) {
    if (++depth_ > kMaxDepth) return fail("nesting deeper than 64 levels");
    ++pos_;  // '{'
    out.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      ++pos_;
      std::string key;
      if (!string_body(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':' after object key");
      ++pos_;
      JsonValue v;
      if (!value(v)) return false;
      out.members_.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size())
        return fail("unterminated object (no closing '}')");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue& out) {
    if (++depth_ > kMaxDepth) return fail("nesting deeper than 64 levels");
    ++pos_;  // '['
    out.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!value(v)) return false;
      out.items_.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size())
        return fail("unterminated array (no closing ']')");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  return JsonParser(text, error).parse(out);
}

}  // namespace dsm::report
