#include "report/record_reader.hpp"

#include <charconv>

namespace dsm::report {
namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

/// Required member of `obj`, with the member name in the diagnostic.
const JsonValue* require(const JsonValue& obj, const char* key,
                         std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    fail(error, std::string("record is missing field '") + key + "'");
    return nullptr;
  }
  return v;
}

}  // namespace

bool read_record(const std::string& line, RecordView* out,
                 std::string* error) {
  if (line.empty()) return fail(error, "empty line where a record was expected");
  JsonValue root;
  std::string perr;
  if (!parse_json(line, &root, &perr))
    return fail(error, "malformed record line (" + perr + ")");
  if (!root.is_object())
    return fail(error, "record line is not a JSON object");

  const JsonValue* v = require(root, "v", error);
  if (v == nullptr) return false;
  if (!v->is_number() || v->raw_number() != "2")
    return fail(error, "unsupported schema version " +
                           (v->is_number() ? v->raw_number() : "(non-number)") +
                           " (this reader speaks v2; v1 predates the "
                           "metrics context envelope)");

  const JsonValue* bench = require(root, "bench", error);
  const JsonValue* index = require(root, "spec_index", error);
  const JsonValue* key = require(root, "key", error);
  const JsonValue* seed = require(root, "seed", error);
  const JsonValue* metrics = require(root, "metrics", error);
  if (!bench || !index || !key || !seed || !metrics) return false;

  if (!bench->is_string() || bench->string().empty())
    return fail(error, "field 'bench' must be a non-empty string");
  if (!index->is_number())
    return fail(error, "field 'spec_index' must be a number");
  std::uint64_t idx = 0;
  {
    const std::string& raw = index->raw_number();
    const auto [p, ec] =
        std::from_chars(raw.data(), raw.data() + raw.size(), idx);
    if (ec != std::errc{} || p != raw.data() + raw.size())
      return fail(error, "field 'spec_index' must be an unsigned integer");
  }
  if (!key->is_string())
    return fail(error, "field 'key' must be a string");
  if (!seed->is_string() || seed->string().rfind("0x", 0) != 0)
    return fail(error, "field 'seed' must be a \"0x...\" hex string");
  std::uint64_t seed_v = 0;
  {
    const std::string& s = seed->string();
    const auto [p, ec] =
        std::from_chars(s.data() + 2, s.data() + s.size(), seed_v, 16);
    if (ec != std::errc{} || p != s.data() + s.size() || s.size() == 2)
      return fail(error, "field 'seed' must be a \"0x...\" hex string");
  }
  if (!metrics->is_object())
    return fail(error, "field 'metrics' must be an object");

  // Context envelope: every sweep record carries the spec point's content
  // alongside the harness metrics, so the offline consumer never has to
  // reverse-engineer the key string.
  const JsonValue* app = metrics->find("app");
  const JsonValue* nodes = metrics->find("nodes");
  const JsonValue* variant = metrics->find("variant");
  const JsonValue* param = metrics->find("param");
  const JsonValue* scale = metrics->find("scale");
  const JsonValue* protocol = metrics->find("protocol");
  const JsonValue* batch = metrics->find("batch");
  const JsonValue* m = metrics->find("m");
  if (!app || !app->is_string())
    return fail(error, "metrics context is missing string field 'app'");
  if (!nodes || !nodes->is_number())
    return fail(error, "metrics context is missing numeric field 'nodes'");
  if (!variant || !variant->is_string())
    return fail(error, "metrics context is missing string field 'variant'");
  if (!param || !param->is_number())
    return fail(error, "metrics context is missing numeric field 'param'");
  if (!scale || !scale->is_string())
    return fail(error, "metrics context is missing string field 'scale'");
  // Optional: present only when the sweep varies the coherence protocol.
  if (protocol && (!protocol->is_string() || protocol->string().empty()))
    return fail(error,
                "metrics context field 'protocol' must be a non-empty string");
  // Optional: present only when the sweep varies the batch size.
  if (batch && (!batch->is_number() || batch->unsigned_int() == 0))
    return fail(error,
                "metrics context field 'batch' must be a positive integer");
  // Optional: the machine's deterministic metrics snapshot (--obs-stats).
  const JsonValue* obs = metrics->find("obs");
  if (obs && !obs->is_object())
    return fail(error, "metrics context field 'obs' must be an object");
  // Optional: the phase-attributed interval timeline (--obs-intervals).
  const JsonValue* obs_intervals = metrics->find("obs_intervals");
  if (obs_intervals && !obs_intervals->is_object())
    return fail(error,
                "metrics context field 'obs_intervals' must be an object");
  if (!m || !m->is_object())
    return fail(error, "metrics context is missing object field 'm'");

  out->bench = bench->string();
  out->spec_index = static_cast<std::size_t>(idx);
  out->key = key->string();
  out->seed = seed_v;
  out->app = app->string();
  out->nodes = static_cast<unsigned>(nodes->unsigned_int());
  out->variant = variant->string();
  out->param = param->number();
  out->scale = scale->string();
  out->protocol = protocol ? protocol->string() : "mesi";
  out->batch = batch ? static_cast<unsigned>(batch->unsigned_int()) : 1;
  // Move the metrics subtree out of the parsed root, which dies with this
  // call (cheap: the vectors inside move).
  out->metrics = std::move(*const_cast<JsonValue*>(metrics));
  return true;
}

bool RecordReader::next(RecordView* out) {
  if (!error_.empty()) return false;
  std::string line;
  if (!source_->next(line)) return false;  // end of stream
  ++line_no_;

  std::string why;
  if (!read_record(line, out, &why)) {
    if (source_->truncated()) {
      // The file's writer died mid-record: a *recoverable* defect (the
      // index is simply missing; `dsm_report resume` / a resumed fleet
      // re-runs it), reported distinctly from real corruption.
      error_ = "line " + std::to_string(line_no_) +
               ": truncated final record (the writing worker crashed "
               "mid-write; recoverable — resume re-runs its index)";
    } else {
      error_ = "line " + std::to_string(line_no_) + ": " + why;
    }
    return false;
  }

  if (records_ == 0) {
    bench_ = out->bench;
  } else if (out->bench != bench_) {
    error_ = "line " + std::to_string(line_no_) +
             ": bench name changed mid-stream: '" + bench_ + "' vs '" +
             out->bench + "' (records from different harnesses?)";
    return false;
  }

  const long long idx = static_cast<long long>(out->spec_index);
  if (idx == last_index_) {
    error_ = "line " + std::to_string(line_no_) + ": duplicate spec index " +
             std::to_string(out->spec_index);
    return false;
  }
  if (idx < last_index_) {
    error_ = "line " + std::to_string(line_no_) + ": spec index " +
             std::to_string(out->spec_index) + " after " +
             std::to_string(last_index_) + ": records out of order";
    return false;
  }
  if (kind_ == StreamKind::kMergedStream && idx != last_index_ + 1) {
    error_ = "line " + std::to_string(line_no_) +
             ": gap in spec indices: expected " +
             std::to_string(last_index_ + 1) + ", got " +
             std::to_string(out->spec_index) +
             " (merged stream must be contiguous — missing shard file?)";
    return false;
  }
  last_index_ = idx;
  ++records_;
  return true;
}

}  // namespace dsm::report
