// render_util.hpp — shared record→text formatting helpers for the
// per-harness renderers: the serialized CoV-curve layout, the
// gnuplot-friendly curve table, and the full-resolution CSV export.
// These reproduce the pre-refactor bench_util::print_curve /
// maybe_write_csv bytes exactly; every curve-bearing harness formats
// through here in both the live and the offline path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "report/json_value.hpp"
#include "report/renderer.hpp"

namespace dsm::report {

/// One deserialized CoV-curve point. The wire layout is a 5-element array
/// [mean_phases, mean_cov, tuning_fraction, bbv_threshold, dds_threshold]
/// (bench_util::curve_json is the producer).
struct CurveRow {
  double phases = 0.0;
  double cov = 0.0;
  double tuning = 0.0;
  std::uint64_t bbv_threshold = 0;
  double dds_threshold = 0.0;
};

/// Deserializes a "curve" metrics array; throws std::runtime_error on a
/// row that is not a 5-element array.
std::vector<CurveRow> parse_curve(const JsonValue& array);

/// Prints a CoV curve as "phases cov tuning%" rows, subsampled to at most
/// `max_rows` (the full resolution goes to CSV when enabled).
void print_curve(const std::string& title, const std::vector<CurveRow>& curve,
                 std::size_t max_rows = 16);

/// Writes the full-resolution curve to `<csv_dir>/<name>.csv`; no-op when
/// opt.csv_dir is empty.
void write_curve_csv(const RenderOptions& opt, const std::string& name,
                     const std::vector<CurveRow>& curve);

}  // namespace dsm::report
