// json_value.hpp — a strict, minimal JSON reader for the offline result
// store. It parses exactly the dialect StreamSink/JsonObject produce
// (objects with string keys in a deterministic order, arrays, strings
// with the escapes json_escape emits, numbers, booleans, null) and
// rejects everything else with a positioned diagnostic.
//
// Numbers keep their raw source text: shortest-round-trip serialization
// (std::to_chars in JsonObject) plus std::from_chars here recovers the
// identical double, which is what lets an offline renderer reproduce the
// live table bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsm::report {

/// One parsed JSON value. Object members keep insertion order (the wire
/// order), matching JsonObject's deterministic serialization.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Accessors throw std::runtime_error (naming the expected kind) on a
  /// kind mismatch — a renderer reading a field the harness did not
  /// serialize is a schema bug and must fail loudly, never render junk.
  bool boolean() const;
  double number() const;            ///< from_chars over the raw text
  std::uint64_t unsigned_int() const;
  const std::string& string() const;
  const std::string& raw_number() const;  ///< verbatim source token

  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  const std::vector<JsonValue>& items() const;

  /// Object lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object lookup that throws std::runtime_error naming the missing key.
  const JsonValue& at(const std::string& key) const;
  /// Array element that throws on out-of-range.
  const JsonValue& item(std::size_t i) const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< string body or raw number token
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> items_;
};

/// Parses `text` as one complete JSON value (no trailing bytes). Returns
/// false with a "byte N: ..." diagnostic in *error on malformed input.
bool parse_json(std::string_view text, JsonValue* out, std::string* error);

}  // namespace dsm::report
