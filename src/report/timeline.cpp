#include "report/timeline.hpp"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <map>
#include <vector>

#include "report/record_reader.hpp"

namespace dsm::report {
namespace {

struct TimelineRow {
  std::uint32_t node = 0;
  std::uint64_t seq = 0;
  std::int64_t phase = -1;
  std::uint64_t end_cycle = 0;
  std::vector<std::uint64_t> deltas;  ///< one per slot
};

struct Timeline {
  std::vector<std::string> slots;
  std::uint64_t capacity = 0;
  std::uint64_t captured = 0;
  std::uint64_t dropped = 0;
  std::vector<TimelineRow> rows;           ///< oldest first
  std::vector<std::uint64_t> tail;         ///< open interval, one per slot
};

bool fail(std::string* err, const std::string& msg) {
  if (err) *err = msg;
  return false;
}

bool signed_of(const JsonValue& v, std::int64_t* out) {
  if (!v.is_number()) return false;
  const std::string& raw = v.raw_number();
  const auto [p, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), *out);
  return ec == std::errc{} && p == raw.data() + raw.size();
}

/// The intervals_json schema, strictly (see obs/metrics.hpp): slots,
/// capacity, captured, dropped, intervals rows [node,seq,phase,end_cycle,
/// d0..], tail.
bool parse_timeline(const JsonValue& iv, Timeline* out, std::string* err) {
  const JsonValue* slots = iv.find("slots");
  const JsonValue* capacity = iv.find("capacity");
  const JsonValue* captured = iv.find("captured");
  const JsonValue* dropped = iv.find("dropped");
  const JsonValue* intervals = iv.find("intervals");
  const JsonValue* tail = iv.find("tail");
  if (!slots || !slots->is_array())
    return fail(err, "'obs_intervals' is missing array field 'slots'");
  if (!capacity || !capacity->is_number() || !captured ||
      !captured->is_number() || !dropped || !dropped->is_number())
    return fail(err, "'obs_intervals' is missing capacity/captured/dropped");
  if (!intervals || !intervals->is_array())
    return fail(err, "'obs_intervals' is missing array field 'intervals'");
  if (!tail || !tail->is_array())
    return fail(err, "'obs_intervals' is missing array field 'tail'");

  for (const auto& s : slots->items()) {
    if (!s.is_string())
      return fail(err, "'obs_intervals' slot names must be strings");
    out->slots.push_back(s.string());
  }
  out->capacity = capacity->unsigned_int();
  out->captured = captured->unsigned_int();
  out->dropped = dropped->unsigned_int();

  const std::size_t width = out->slots.size();
  for (const auto& row : intervals->items()) {
    if (!row.is_array() || row.items().size() != 4 + width)
      return fail(err, "'obs_intervals' row width does not match slots");
    TimelineRow r;
    std::int64_t node = 0, seq = 0, cycle = 0;
    if (!signed_of(row.item(0), &node) || !signed_of(row.item(1), &seq) ||
        !signed_of(row.item(2), &r.phase) || !signed_of(row.item(3), &cycle))
      return fail(err, "'obs_intervals' row header must be numeric");
    r.node = static_cast<std::uint32_t>(node);
    r.seq = static_cast<std::uint64_t>(seq);
    r.end_cycle = static_cast<std::uint64_t>(cycle);
    r.deltas.reserve(width);
    for (std::size_t i = 0; i < width; ++i)
      r.deltas.push_back(row.item(4 + i).unsigned_int());
    out->rows.push_back(std::move(r));
  }
  if (tail->items().size() != width)
    return fail(err, "'obs_intervals' tail width does not match slots");
  for (const auto& t : tail->items()) out->tail.push_back(t.unsigned_int());
  return true;
}

/// Slot indices of the `top_k` metrics by total delta across all rows +
/// tail, largest first; ties break toward snapshot order so the
/// selection is deterministic.
std::vector<std::size_t> top_slots(const Timeline& tl, unsigned top_k) {
  std::vector<std::uint64_t> total(tl.slots.size(), 0);
  for (const auto& r : tl.rows)
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += r.deltas[i];
  for (std::size_t i = 0; i < total.size(); ++i) total[i] += tl.tail[i];
  std::vector<std::size_t> order(total.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return total[a] > total[b];
                   });
  if (order.size() > top_k) order.resize(top_k);
  return order;
}

/// Sum + mean of each selected slot over the rows of one phase.
struct PhaseProfile {
  std::uint64_t count = 0;                 ///< intervals in this phase
  std::vector<double> mean;                ///< per slot (full width)
};

void render_one(const RecordView& rec, const Timeline& tl,
                const TimelineOptions& opt, std::FILE* out) {
  const auto sel = top_slots(tl, opt.top_k);
  std::fprintf(out, "%s: %" PRIu64 " intervals (%" PRIu64
               " dropped, ring capacity %" PRIu64 "), %zu metrics\n",
               rec.key.c_str(), tl.captured, tl.dropped, tl.capacity,
               tl.slots.size());

  // ---- interval × metric series (top-k columns, head+tail rows) ----
  std::fprintf(out, "  %-5s %-4s %-5s %-6s %12s", "#", "node", "seq",
               "phase", "end_cycle");
  for (const auto s : sel) std::fprintf(out, " %14s", tl.slots[s].c_str());
  std::fprintf(out, "\n");
  const std::size_t n = tl.rows.size();
  const std::size_t head = std::min<std::size_t>(n, opt.max_rows);
  for (std::size_t i = 0; i < head; ++i) {
    const auto& r = tl.rows[i];
    std::fprintf(out, "  %-5zu %-4u %-5" PRIu64 " %-6lld %12" PRIu64, i,
                 r.node, r.seq, static_cast<long long>(r.phase),
                 r.end_cycle);
    for (const auto s : sel)
      std::fprintf(out, " %14" PRIu64, r.deltas[s]);
    std::fprintf(out, "\n");
  }
  if (head < n)
    std::fprintf(out, "  ... %zu more rows (--rows=N to widen)\n", n - head);

  // ---- per-phase aggregation ----
  std::map<std::int64_t, PhaseProfile> phases;
  for (const auto& r : tl.rows) {
    auto& p = phases[r.phase];
    if (p.mean.empty()) p.mean.assign(tl.slots.size(), 0.0);
    ++p.count;
    for (std::size_t i = 0; i < r.deltas.size(); ++i)
      p.mean[i] += static_cast<double>(r.deltas[i]);
  }
  for (auto& [id, p] : phases)
    for (auto& m : p.mean) m /= static_cast<double>(p.count);
  std::fprintf(out, "  per-phase means (%zu phases):\n", phases.size());
  std::fprintf(out, "  %-6s %-9s", "phase", "intervals");
  for (const auto s : sel) std::fprintf(out, " %14s", tl.slots[s].c_str());
  std::fprintf(out, "\n");
  for (const auto& [id, p] : phases) {
    std::fprintf(out, "  %-6lld %-9" PRIu64, static_cast<long long>(id),
                 p.count);
    for (const auto s : sel) std::fprintf(out, " %14.1f", p.mean[s]);
    std::fprintf(out, "\n");
  }

  // ---- phase-transition matrix over successive boundaries ----
  std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t> trans;
  for (std::size_t i = 1; i < tl.rows.size(); ++i)
    ++trans[{tl.rows[i - 1].phase, tl.rows[i].phase}];
  std::fprintf(out, "  phase transitions (from -> to: count):\n");
  std::pair<std::int64_t, std::int64_t> hottest{0, 0};
  std::uint64_t hottest_n = 0;
  for (const auto& [ft, c] : trans) {
    std::fprintf(out, "    %lld -> %lld: %" PRIu64 "\n",
                 static_cast<long long>(ft.first),
                 static_cast<long long>(ft.second), c);
    if (ft.first != ft.second && c > hottest_n) {
      hottest = ft;
      hottest_n = c;
    }
  }

  // ---- top metric deltas across the dominant transition ----
  if (hottest_n > 0) {
    const auto& a = phases[hottest.first];
    const auto& b = phases[hottest.second];
    std::vector<std::size_t> order(tl.slots.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    auto gap = [&](std::size_t i) {
      const double d = b.mean[i] - a.mean[i];
      return d < 0 ? -d : d;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return gap(x) > gap(y);
                     });
    if (order.size() > opt.top_k) order.resize(opt.top_k);
    std::fprintf(out,
                 "  top metric deltas across dominant transition "
                 "%lld -> %lld (mean per interval):\n",
                 static_cast<long long>(hottest.first),
                 static_cast<long long>(hottest.second));
    for (const auto i : order)
      std::fprintf(out, "    %-36s %14.1f -> %14.1f\n", tl.slots[i].c_str(),
                   a.mean[i], b.mean[i]);
  }
}

/// Chrome counter ("C") events for one record's timeline: one track per
/// selected metric plus the detected phase id, pid = spec_index so a
/// multi-record file coexists with (and record 0 overlays) the event
/// trace conversion, which emits everything under pid 0. Same time base:
/// 1 simulated cycle = 1 µs.
void chrome_one(const RecordView& rec, const Timeline& tl,
                const TimelineOptions& opt, std::FILE* f, const char** sep) {
  const auto sel = top_slots(tl, opt.top_k);
  std::fprintf(f,
               "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,"
               "\"args\":{\"name\":\"%s\"}}",
               *sep, rec.spec_index, rec.key.c_str());
  *sep = ",\n";
  for (const auto& r : tl.rows) {
    std::fprintf(f,
                 "%s{\"name\":\"phase\",\"ph\":\"C\",\"ts\":%" PRIu64
                 ",\"pid\":%zu,\"tid\":0,\"args\":{\"id\":%lld}}",
                 *sep, r.end_cycle, rec.spec_index,
                 static_cast<long long>(r.phase));
    for (const auto s : sel)
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%" PRIu64
                   ",\"pid\":%zu,\"tid\":0,\"args\":{\"delta\":%" PRIu64
                   "}}",
                   *sep, tl.slots[s].c_str(), r.end_cycle, rec.spec_index,
                   r.deltas[s]);
  }
}

/// sum(rows) + tail must equal the end-of-run snapshot exactly when no
/// ring row was dropped — the capture mechanism loses nothing. Returns
/// false (with a named counter) on mismatch.
bool reconcile(const RecordView& rec, const Timeline& tl, std::string* err) {
  const JsonValue* obs = rec.metrics.find("obs");
  if (obs == nullptr || tl.dropped != 0) return true;  // nothing to check
  const JsonValue* counters = obs->find("counters");
  if (counters == nullptr || !counters->is_object()) return true;
  for (std::size_t i = 0; i < tl.slots.size(); ++i) {
    std::uint64_t sum = tl.tail[i];
    for (const auto& r : tl.rows) sum += r.deltas[i];
    const JsonValue* snap = counters->find(tl.slots[i]);
    if (snap == nullptr)
      return fail(err, "snapshot is missing counter '" + tl.slots[i] + "'");
    if (snap->unsigned_int() != sum)
      return fail(err, "counter '" + tl.slots[i] +
                           "': interval sum + tail = " + std::to_string(sum) +
                           " but snapshot holds " +
                           std::to_string(snap->unsigned_int()));
  }
  return true;
}

}  // namespace

int render_timeline(shard::LineSource& source, const TimelineOptions& opt,
                    std::FILE* out) {
  std::FILE* chrome = nullptr;
  const char* chrome_sep = "\n";
  if (!opt.chrome_path.empty()) {
    chrome = std::fopen(opt.chrome_path.c_str(), "w");
    if (chrome == nullptr) {
      std::fprintf(stderr, "dsm_report timeline: cannot write %s\n",
                   opt.chrome_path.c_str());
      return 1;
    }
    std::fprintf(chrome, "{\"traceEvents\":[");
  }

  RecordReader reader(source, StreamKind::kShardSlice);
  RecordView rec;
  std::size_t with_timeline = 0;
  int rc = 0;
  while (reader.next(&rec)) {
    const JsonValue* iv = rec.metrics.find("obs_intervals");
    if (iv == nullptr) continue;
    Timeline tl;
    std::string err;
    if (!parse_timeline(*iv, &tl, &err)) {
      std::fprintf(stderr, "dsm_report timeline: %s: %s\n", rec.key.c_str(),
                   err.c_str());
      rc = 1;
      continue;
    }
    ++with_timeline;
    render_one(rec, tl, opt, out);
    if (!reconcile(rec, tl, &err)) {
      std::fprintf(stderr,
                   "dsm_report timeline: %s: RECONCILIATION FAILED: %s\n",
                   rec.key.c_str(), err.c_str());
      rc = 1;
    } else if (rec.metrics.find("obs") != nullptr && tl.dropped == 0) {
      std::fprintf(out,
                   "  reconciled: interval sums + tail match the "
                   "end-of-run snapshot on all %zu metrics\n",
                   tl.slots.size());
    }
    if (chrome != nullptr) chrome_one(rec, tl, opt, chrome, &chrome_sep);
  }
  if (chrome != nullptr) {
    std::fprintf(chrome, "\n]}\n");
    std::fclose(chrome);
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "dsm_report timeline: %s\n", reader.error().c_str());
    return 1;
  }
  if (with_timeline == 0) {
    std::fprintf(stderr,
                 "dsm_report timeline: no record carries an 'obs_intervals' "
                 "timeline (run the harness with --obs-intervals)\n");
    return 1;
  }
  return rc;
}

}  // namespace dsm::report
