#include "report/render_util.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/table_writer.hpp"

namespace dsm::report {

std::vector<CurveRow> parse_curve(const JsonValue& array) {
  std::vector<CurveRow> out;
  out.reserve(array.items().size());
  for (const JsonValue& pt : array.items()) {
    if (!pt.is_array() || pt.items().size() != 5)
      throw std::runtime_error(
          "curve row is not a 5-element [phases, cov, tuning, bbv, dds] "
          "array");
    CurveRow r;
    r.phases = pt.item(0).number();
    r.cov = pt.item(1).number();
    r.tuning = pt.item(2).number();
    r.bbv_threshold = pt.item(3).unsigned_int();
    r.dds_threshold = pt.item(4).number();
    out.push_back(r);
  }
  return out;
}

void print_curve(const std::string& title, const std::vector<CurveRow>& curve,
                 std::size_t max_rows) {
  TableWriter t({"#phases", "identifier CoV", "tuning frac"});
  const std::size_t stride =
      curve.size() <= max_rows ? 1 : curve.size() / max_rows;
  for (std::size_t i = 0; i < curve.size(); i += stride) {
    t.add_row({TableWriter::fmt(curve[i].phases, 3),
               TableWriter::fmt(curve[i].cov, 3),
               TableWriter::fmt(curve[i].tuning, 2)});
  }
  std::printf("%s\n%s\n", title.c_str(), t.to_text().c_str());
}

void write_curve_csv(const RenderOptions& opt, const std::string& name,
                     const std::vector<CurveRow>& curve) {
  if (opt.csv_dir.empty()) return;
  TableWriter t({"phases", "cov", "tuning_fraction", "bbv_threshold",
                 "dds_rel_threshold"});
  for (const auto& pt : curve) {
    t.add_row({TableWriter::fmt(pt.phases, 6), TableWriter::fmt(pt.cov, 6),
               TableWriter::fmt(pt.tuning, 6),
               std::to_string(pt.bbv_threshold),
               TableWriter::fmt(pt.dds_threshold, 6)});
  }
  t.write_csv_file(opt.csv_dir + "/" + name + ".csv");
}

}  // namespace dsm::report
