// record_reader.hpp — the strict reader/validator for the NDJSON result
// store (stream_sink.hpp schema v2: the v1 envelope plus the mandatory
// context bench_util wraps around every harness's metrics).
//
// "Strict" means the reader never guesses: a truncated line, an unknown
// schema version, a record whose metrics lack the context fields, a spec
// index that repeats or runs backwards, or a bench name that changes
// mid-stream each fail with a *distinct* diagnostic naming the line. The
// offline store is the only artifact a fleet run leaves behind — silently
// skipping a malformed record would silently drop a configuration from
// the paper's tables.
//
// Two stream shapes are validated:
//   * kMergedStream  — a merged file (or single-process `--shard=0/1`
//                      output): global spec indices must be the contiguous
//                      sequence 0,1,2,...
//   * kShardSlice    — one worker's file: indices must be strictly
//                      increasing (the round-robin slice leaves gaps).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "report/json_value.hpp"
#include "shard/orchestrator.hpp"

namespace dsm::report {

/// One validated record, context fields lifted out of the envelope.
struct RecordView {
  std::string bench;        ///< harness name
  std::size_t spec_index = 0;
  std::string key;          ///< config key, e.g. "LU/8p"
  std::uint64_t seed = 0;

  // Context the sweep wrapped around the harness metrics (bench_util).
  std::string app;          ///< SpecPoint::app (kernel name, "run", ...)
  unsigned nodes = 0;       ///< SpecPoint::nodes (0 when not swept)
  std::string variant;      ///< SpecPoint::detector (topology, size, ...)
  double param = 0.0;       ///< SpecPoint::threshold (factor, ...)
  std::string scale;        ///< "paper" | "bench" | "test"
  /// SpecPoint::protocol. Optional in the envelope: sweeps that don't
  /// vary the protocol omit the field (keeping their records byte-stable
  /// across the protocol seam), and the reader fills in the machine
  /// default, "mesi".
  std::string protocol = "mesi";
  /// SpecPoint::batch. Optional like protocol: present only when the
  /// sweep varies the Machine→fabric batch size; absent means the serial
  /// default, 1.
  unsigned batch = 1;

  JsonValue metrics;        ///< the full metrics object (context + "m")

  /// The harness-specific metrics object (metrics["m"]).
  const JsonValue& m() const { return metrics.at("m"); }
};

/// Parses and validates one record line (schema + context envelope).
/// Returns false with a field-naming diagnostic in *error on anything
/// that is not a well-formed v2 record.
bool read_record(const std::string& line, RecordView* out,
                 std::string* error);

enum class StreamKind { kMergedStream, kShardSlice };

/// Validating reader over a stream of record lines. next() returns false
/// at end of stream *and* on error — check ok() to tell them apart.
class RecordReader {
 public:
  RecordReader(shard::LineSource& source, StreamKind kind)
      : source_(&source), kind_(kind) {}

  bool next(RecordView* out);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  std::size_t records() const { return records_; }
  /// Bench name of the stream (set after the first record).
  const std::string& bench() const { return bench_; }

 private:
  shard::LineSource* source_;
  StreamKind kind_;
  std::string error_;
  std::string bench_;
  std::size_t records_ = 0;
  std::size_t line_no_ = 0;
  long long last_index_ = -1;
};

}  // namespace dsm::report
