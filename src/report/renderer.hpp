// renderer.hpp — record→text renderers: the single formatting point for
// every harness's human tables, curves, and CSV exports.
//
// A renderer consumes validated stream records (record_reader.hpp) in
// spec order and prints the harness's human output to stdout. The live
// path (bench_util::sharded_sweep's default mode) feeds it the records it
// would have streamed; the offline path (`dsm_report render` over a
// merged NDJSON file) feeds it the collected records. Both paths run the
// SAME renderer on the SAME bytes, which is what makes offline `render`
// output byte-identical to the live run — the acceptance contract the
// report pipeline tests enforce for all 12 harnesses.
//
// Renderers print headers lazily on the first record (an offline stream
// knows its bench/scale only once a record arrives) and accumulate
// headline tables until finish(), which also returns the process exit
// code (e.g. overhead_bandwidth's paper-claim verdict).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "report/record_reader.hpp"

namespace dsm::report {

struct RenderOptions {
  /// When set, renderers also export their full-resolution CSV files
  /// there (the live `--csv=DIR` flag and `dsm_report render --csv=DIR`
  /// route through the same code).
  std::string csv_dir;
};

class Renderer {
 public:
  virtual ~Renderer() = default;

  /// One validated record, in spec order.
  virtual void record(const RecordView& rec) = 0;

  /// Prints accumulated footers/headline tables; returns the exit code
  /// the harness's main would have returned (0 unless the harness checks
  /// a paper claim or validates configuration).
  virtual int finish() = 0;
};

/// Renderer registry: one named factory per harness. Returns nullptr for
/// an unknown bench name (callers print renderer_names()).
std::unique_ptr<Renderer> make_renderer(const std::string& bench,
                                        const RenderOptions& opt);

/// The registered bench names, in registration order.
std::vector<std::string> renderer_names();

/// Drives a validated merged stream through its bench's renderer:
/// validates with RecordReader(kMergedStream), looks the renderer up from
/// the first record, and returns the renderer's exit code. On a
/// validation error or unknown bench returns 1 with the diagnostic in
/// *error.
int render_stream(shard::LineSource& source, const RenderOptions& opt,
                  std::string* error);

}  // namespace dsm::report
