#include "phase/bbv.hpp"

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm::phase {

std::uint64_t manhattan(std::span<const std::uint32_t> a,
                        std::span<const std::uint32_t> b) {
  DSM_ASSERT(a.size() == b.size());
  std::uint64_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
  }
  return d;
}

std::uint64_t manhattan_capped(std::span<const std::uint32_t> a,
                               std::span<const std::uint32_t> b,
                               std::uint64_t cap) {
  DSM_ASSERT(a.size() == b.size());
  std::uint64_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (d > cap) return d;
  }
  return d;
}

BbvAccumulator::BbvAccumulator(unsigned entries, std::uint32_t norm)
    : raw_(entries, 0), norm_(norm) {
  DSM_ASSERT(entries > 0);
  DSM_ASSERT(norm > 0);
}

unsigned BbvAccumulator::index_of(Addr branch_addr) const {
  return static_cast<unsigned>(fnv1a64(branch_addr) % raw_.size());
}

void BbvAccumulator::record_branch(Addr branch_addr,
                                   InstrCount instrs_since_last_branch) {
  raw_[index_of(branch_addr)] += instrs_since_last_branch;
  total_ += instrs_since_last_branch;
}

BbvVector BbvAccumulator::snapshot() const {
  BbvVector out(raw_.size(), 0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(
        (raw_[i] * static_cast<std::uint64_t>(norm_)) / total_);
  }
  return out;
}

void BbvAccumulator::reset() {
  for (auto& c : raw_) c = 0;
  total_ = 0;
}

}  // namespace dsm::phase
