#include "phase/bbv.hpp"

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm::phase {

namespace {

inline std::uint64_t absdiff(std::uint32_t x, std::uint32_t y) {
  return x > y ? x - y : y - x;
}

}  // namespace

// Both kernels run once per footprint-table entry at every interval
// boundary of every processor, so they are 4-way unrolled: four
// independent accumulators break the add dependency chain (and let the
// compiler vectorize), with the remainder handled scalar. Integer sums
// are associative, so the result is exactly the single-accumulator loop.
std::uint64_t manhattan(std::span<const std::uint32_t> a,
                        std::span<const std::uint32_t> b) {
  DSM_ASSERT(a.size() == b.size());
  std::uint64_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
  const std::size_t n = a.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    d0 += absdiff(a[i], b[i]);
    d1 += absdiff(a[i + 1], b[i + 1]);
    d2 += absdiff(a[i + 2], b[i + 2]);
    d3 += absdiff(a[i + 3], b[i + 3]);
  }
  std::uint64_t d = (d0 + d1) + (d2 + d3);
  for (; i < n; ++i) d += absdiff(a[i], b[i]);
  return d;
}

std::uint64_t manhattan_capped(std::span<const std::uint32_t> a,
                               std::span<const std::uint32_t> b,
                               std::uint64_t cap) {
  DSM_ASSERT(a.size() == b.size());
  // The early exit only promises "any value > cap once the running sum
  // exceeds cap", so checking once per 4-wide block preserves the
  // contract: the exact distance is still returned whenever it is <= cap
  // (the only case footprint classification reads the value).
  std::uint64_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
  const std::size_t n = a.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    d0 += absdiff(a[i], b[i]);
    d1 += absdiff(a[i + 1], b[i + 1]);
    d2 += absdiff(a[i + 2], b[i + 2]);
    d3 += absdiff(a[i + 3], b[i + 3]);
    if ((d0 + d1) + (d2 + d3) > cap) return (d0 + d1) + (d2 + d3);
  }
  std::uint64_t d = (d0 + d1) + (d2 + d3);
  for (; i < n; ++i) {
    d += absdiff(a[i], b[i]);
    if (d > cap) return d;
  }
  return d;
}

BbvAccumulator::BbvAccumulator(unsigned entries, std::uint32_t norm)
    : raw_(entries, 0), norm_(norm) {
  DSM_ASSERT(entries > 0);
  DSM_ASSERT(norm > 0);
}

unsigned BbvAccumulator::index_of(Addr branch_addr) const {
  return static_cast<unsigned>(fnv1a64(branch_addr) % raw_.size());
}

void BbvAccumulator::record_branch(Addr branch_addr,
                                   InstrCount instrs_since_last_branch) {
  raw_[index_of(branch_addr)] += instrs_since_last_branch;
  total_ += instrs_since_last_branch;
}

BbvVector BbvAccumulator::snapshot() const {
  BbvVector out(raw_.size(), 0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(
        (raw_[i] * static_cast<std::uint64_t>(norm_)) / total_);
  }
  return out;
}

void BbvAccumulator::reset() {
  for (auto& c : raw_) c = 0;
  total_ = 0;
}

}  // namespace dsm::phase
