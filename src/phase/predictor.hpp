// predictor.hpp — phase predictors. The paper's conclusion calls for
// "combining the insights derived from our study with appropriate phase
// prediction mechanisms"; we implement the two standard ones so the
// reconfiguration loop (§II) can be studied end-to-end.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"

namespace dsm::phase {

/// Common interface: observe the phase of the interval that just ended and
/// predict the next interval's phase.
class PhasePredictor {
 public:
  virtual ~PhasePredictor() = default;
  virtual PhaseId predict() const = 0;
  virtual void observe(PhaseId actual) = 0;
  virtual const char* name() const = 0;

  /// Clears both the predictor's state and the accuracy counters.
  void reset() {
    predictions_ = 0;
    correct_ = 0;
    reset_state();
  }

  std::uint64_t predictions() const { return predictions_; }
  std::uint64_t correct() const { return correct_; }
  double accuracy() const {
    return predictions_ == 0
               ? 0.0
               : static_cast<double>(correct_) / predictions_;
  }

 protected:
  virtual void reset_state() = 0;

  void score(PhaseId predicted, PhaseId actual) {
    ++predictions_;
    if (predicted == actual) ++correct_;
  }

 private:
  std::uint64_t predictions_ = 0;
  std::uint64_t correct_ = 0;
};

/// Predicts the next interval repeats the current phase — the strongest
/// simple baseline when phases are long.
class LastPhasePredictor final : public PhasePredictor {
 public:
  PhaseId predict() const override { return last_; }
  void observe(PhaseId actual) override;
  const char* name() const override { return "last-phase"; }

 protected:
  void reset_state() override { last_ = kNoPhase; }

 private:
  PhaseId last_ = kNoPhase;
};

/// First-order Markov predictor: from each phase, predict the most
/// frequently observed successor (falling back to last-phase until a
/// transition has been seen).
class MarkovPhasePredictor final : public PhasePredictor {
 public:
  PhaseId predict() const override;
  void observe(PhaseId actual) override;
  const char* name() const override { return "markov"; }

 protected:
  void reset_state() override;

 private:
  struct Row {
    std::unordered_map<PhaseId, std::uint32_t> next_counts;
    PhaseId best = kNoPhase;
    std::uint32_t best_count = 0;
  };

  std::unordered_map<PhaseId, Row> rows_;
  PhaseId last_ = kNoPhase;
};

/// Run-length Markov predictor (Sherwood et al.'s phase-tracking style):
/// keys on (phase, observed run length) so it can anticipate the *end* of
/// a long phase instead of always predicting "same again".
class RunLengthPredictor final : public PhasePredictor {
 public:
  PhaseId predict() const override;
  void observe(PhaseId actual) override;
  const char* name() const override { return "run-length-markov"; }

 protected:
  void reset_state() override;

 private:
  struct Key {
    PhaseId phase;
    std::uint32_t run;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.phase))
           << 32) |
          k.run);
    }
  };

  std::unordered_map<Key, std::unordered_map<PhaseId, std::uint32_t>, KeyHash>
      table_;
  PhaseId last_ = kNoPhase;
  std::uint32_t run_ = 0;
};

}  // namespace dsm::phase
