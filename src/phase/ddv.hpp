// ddv.hpp — the paper's data distribution vector (§III-B): per-processor
// frequency matrix F, pre-programmed distance matrix D, contention vector
// C, and the scalar data distribution score
//
//     DDS_i = sum_j  F[i][j] * D[i][j] * C[j]
//
// where F[i][j] counts processor i's committed loads/stores to lines with
// home node j during i's current interval, and C[j] is the system-wide
// access count to home j over the same window.
//
// Hardware semantics (paper): each processor p keeps one n-entry frequency
// vector per processor k in the system (F^p[k][*]), incremented on every
// commit and zeroed when k gathers it, so counts line up with *k's*
// interval boundaries even though intervals are local to each processor.
//
// Implementation note: "increment all F^p[k][j] for every k" is realized
// in O(1) per access by keeping one cumulative counter A^p[j] plus an
// epoch snapshot per (p, k); F^p[k][j] == A^p[j] - S^p[k][j]. The tests
// (`ddv_test.cpp`) verify this is arithmetically identical to the paper's
// formulation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace dsm::phase {

class DdvFabric {
 public:
  /// `distance_matrix`: row-major n*n, the paper's D (D[i][i] == 1).
  DdvFabric(unsigned nodes, std::vector<std::uint32_t> distance_matrix);

  unsigned nodes() const { return nodes_; }

  /// Processor `p` committed a load/store to a line homed at `home`.
  void record_access(NodeId p, NodeId home);

  /// Flattened form of record_access for per-access inner loops: p's row
  /// of the cumulative counter matrix; `row[home]++` is exactly
  /// record_access(p, home). Stable for the fabric's lifetime.
  std::uint64_t* observe_row(NodeId p) {
    DSM_ASSERT(p < nodes_);
    return &cumulative_[idx(p, 0)];
  }

  /// F^p[k][j] as the paper defines it (for tests and diagnostics).
  std::uint64_t frequency(NodeId p, NodeId k, NodeId j) const;

  std::uint32_t distance(NodeId i, NodeId j) const;

  /// Result of processor i's end-of-interval gather.
  struct GatherResult {
    std::vector<std::uint64_t> own_f;  ///< F[i][*]: i's accesses per home
    std::vector<std::uint64_t> c;      ///< system-wide accesses per home
    double dds = 0.0;
  };

  /// Executes the end-of-interval exchange for processor i: collects every
  /// F^p[i][*] vector, sums them into C, computes DDS from i's own vector,
  /// and zeroes all on-behalf-of-i counts (starting i's next interval).
  GatherResult gather(NodeId i);

  /// Payload bytes processor i moves per gather: (n-1) requests plus
  /// (n-1) n-entry count vectors — the traffic of the paper's §III-B
  /// overhead estimate.
  std::uint64_t gather_payload_bytes(unsigned counter_bytes = 4,
                                     unsigned request_bytes = 8) const;

  void reset();

 private:
  std::size_t idx(NodeId a, NodeId b) const { return std::size_t{a} * nodes_ + b; }

  unsigned nodes_;
  std::vector<std::uint32_t> dist_;        ///< n*n row-major
  std::vector<std::uint64_t> cumulative_;  ///< A^p[j], n*n row-major
  /// S^p[k][j]: snapshot of A^p[j] at k's last gather; n*n*n,
  /// indexed [p][k][j].
  std::vector<std::uint64_t> snapshot_;
};

}  // namespace dsm::phase
