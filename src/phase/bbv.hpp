// bbv.hpp — the basic-block-vector accumulator of Sherwood et al. (paper
// Fig. 1): an array of hardware counters hashed by branch instruction
// address, each incremented by the number of instructions committed since
// the last branch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace dsm::phase {

/// A normalized BBV snapshot: entries rescaled to sum to `norm` so that
/// Manhattan distances are comparable across intervals regardless of the
/// exact committed-instruction count.
using BbvVector = std::vector<std::uint32_t>;

/// Manhattan (L1) distance between two equal-length vectors.
std::uint64_t manhattan(std::span<const std::uint32_t> a,
                        std::span<const std::uint32_t> b);

/// Manhattan distance with an early exit: returns any value > cap as soon
/// as the running sum exceeds `cap` (the footprint search only cares
/// whether the distance is under the threshold); the exact distance is
/// returned whenever it is <= cap. The exit is checked once per 4-wide
/// unrolled block, so the over-cap return value may differ from the
/// scalar loop's — callers must only compare it against cap.
std::uint64_t manhattan_capped(std::span<const std::uint32_t> a,
                               std::span<const std::uint32_t> b,
                               std::uint64_t cap);

class BbvAccumulator {
 public:
  /// `entries` hardware counters (paper: 32). `norm` is the fixed total
  /// weight snapshots are rescaled to (config: 1<<16).
  BbvAccumulator(unsigned entries, std::uint32_t norm);

  /// Commits a branch at address `branch_addr` that retired with
  /// `instrs_since_last_branch` instructions since the previous branch
  /// (including itself): accumulator[hash(addr)] += count.
  void record_branch(Addr branch_addr, InstrCount instrs_since_last_branch);

  /// Normalized snapshot of the accumulator (does not reset).
  BbvVector snapshot() const;

  /// Clears all counters for the next interval.
  void reset();

  unsigned entries() const { return static_cast<unsigned>(raw_.size()); }
  std::uint64_t total_weight() const { return total_; }
  std::span<const std::uint64_t> raw() const { return raw_; }

  /// The accumulator's hash: FNV-1a of the branch address folded into the
  /// table size (a power of two is not required).
  unsigned index_of(Addr branch_addr) const;

 private:
  std::vector<std::uint64_t> raw_;
  std::uint64_t total_ = 0;
  std::uint32_t norm_;
};

}  // namespace dsm::phase
