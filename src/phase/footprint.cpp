#include "phase/footprint.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace dsm::phase {

FootprintTable::FootprintTable(unsigned capacity, bool use_dds)
    : capacity_(capacity), use_dds_(use_dds) {
  DSM_ASSERT(capacity_ > 0);
  entries_.reserve(capacity_);
}

Classification FootprintTable::classify(const BbvVector& bbv, double dds,
                                        std::uint64_t bbv_threshold,
                                        double dds_threshold) {
  Classification out;

  Entry* best = nullptr;
  std::uint64_t best_dist = std::numeric_limits<std::uint64_t>::max();
  for (auto& e : entries_) {
    const std::uint64_t d = manhattan_capped(bbv, e.bbv, bbv_threshold);
    if (d > bbv_threshold) continue;
    if (use_dds_ && std::abs(dds - e.dds) > dds_threshold) continue;
    if (d < best_dist) {
      best_dist = d;
      best = &e;
    }
  }

  if (best != nullptr) {
    best->lru = ++tick_;
    out.phase = best->phase;
    out.bbv_distance = best_dist;
    out.dds_difference = std::abs(dds - best->dds);
    return out;
  }

  // No match: allocate (replacing LRU when full) and issue a new phase id.
  Entry* slot;
  if (entries_.size() < capacity_) {
    slot = &entries_.emplace_back();
  } else {
    slot = &entries_.front();
    for (auto& e : entries_)
      if (e.lru < slot->lru) slot = &e;
    ++replacements_;
  }
  slot->bbv = bbv;
  slot->dds = dds;
  slot->phase = next_phase_++;
  slot->lru = ++tick_;

  out.phase = slot->phase;
  out.new_phase = true;
  return out;
}

void FootprintTable::reset() {
  entries_.clear();
  tick_ = 0;
  next_phase_ = 0;
  replacements_ = 0;
}

}  // namespace dsm::phase
