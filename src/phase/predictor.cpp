#include "phase/predictor.hpp"

namespace dsm::phase {

void LastPhasePredictor::observe(PhaseId actual) {
  if (last_ != kNoPhase) score(last_, actual);
  last_ = actual;
}

PhaseId MarkovPhasePredictor::predict() const {
  const auto it = rows_.find(last_);
  if (it != rows_.end() && it->second.best != kNoPhase)
    return it->second.best;
  return last_;
}

void MarkovPhasePredictor::observe(PhaseId actual) {
  if (last_ != kNoPhase) {
    score(predict(), actual);
    Row& row = rows_[last_];
    const std::uint32_t c = ++row.next_counts[actual];
    if (c > row.best_count) {
      row.best_count = c;
      row.best = actual;
    }
  }
  last_ = actual;
}

void MarkovPhasePredictor::reset_state() {
  rows_.clear();
  last_ = kNoPhase;
}

PhaseId RunLengthPredictor::predict() const {
  const auto it = table_.find(Key{last_, run_});
  if (it != table_.end() && !it->second.empty()) {
    PhaseId best = kNoPhase;
    std::uint32_t best_count = 0;
    for (const auto& [phase, count] : it->second) {
      if (count > best_count) {
        best_count = count;
        best = phase;
      }
    }
    return best;
  }
  return last_;  // fall back to last-phase
}

void RunLengthPredictor::observe(PhaseId actual) {
  if (last_ != kNoPhase) {
    score(predict(), actual);
    ++table_[Key{last_, run_}][actual];
  }
  if (actual == last_) {
    ++run_;
  } else {
    run_ = 1;
  }
  last_ = actual;
}

void RunLengthPredictor::reset_state() {
  table_.clear();
  last_ = kNoPhase;
  run_ = 0;
}

}  // namespace dsm::phase
