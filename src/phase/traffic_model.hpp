// traffic_model.hpp — analytic model of the DDV mechanism's communication
// cost, reproducing the paper's §III-B estimate: "Assuming 32 2GHz
// processors, IPC = 1, and a 'real-world' interval length of 100M
// instructions, the overall sustained bandwidth requirement of this
// mechanism is about 160kB/s ... under 0.15% of the peak bandwidth" of a
// 1.5 GB/s memory controller.
#pragma once

#include <cstdint>

namespace dsm::phase {

struct DdvTrafficParams {
  unsigned nodes = 32;
  double frequency_hz = 2e9;
  double ipc = 1.0;
  std::uint64_t interval_instructions = 100'000'000;  ///< "real-world" length
  unsigned counter_bytes = 4;   ///< one frequency counter on the wire
  unsigned request_bytes = 8;   ///< the query message
  double controller_bandwidth_gbps = 1.5;  ///< "modern memory controllers"
};

struct DdvTrafficResult {
  double intervals_per_second = 0.0;
  std::uint64_t bytes_per_gather = 0;   ///< per processor, per interval end
  double node_bytes_per_second = 0.0;   ///< traffic one processor generates
  double system_bytes_per_second = 0.0; ///< all processors combined
  double fraction_of_controller = 0.0;  ///< node traffic / controller BW
};

/// First-principles evaluation of the paper's overhead claim.
DdvTrafficResult ddv_traffic(const DdvTrafficParams& p);

}  // namespace dsm::phase
