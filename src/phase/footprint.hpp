// footprint.hpp — the footprint table of the paper's detectors (Figs. 1
// and 3): a small, LRU-managed table of previously seen BBV signatures,
// each optionally paired with a DDS value in the BBV+DDV configuration.
//
// Classification (paper §III-B): among entries whose BBV Manhattan
// distance AND DDS difference are both under their thresholds, the entry
// with the smallest Manhattan distance wins; otherwise a new entry is
// allocated (possibly replacing the LRU victim) and a fresh phase id is
// issued.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "phase/bbv.hpp"

namespace dsm::phase {

/// Result of classifying one interval.
struct Classification {
  PhaseId phase = kNoPhase;
  bool new_phase = false;       ///< a new footprint entry was allocated
  std::uint64_t bbv_distance = 0;  ///< to the matched entry (0 for new)
  double dds_difference = 0.0;     ///< to the matched entry (0 for new)
};

class FootprintTable {
 public:
  /// `capacity` footprint vectors (paper: 32). When `use_dds` is false the
  /// DDS threshold is ignored (pure-BBV baseline of §III-A).
  FootprintTable(unsigned capacity, bool use_dds);

  /// Classifies an interval signature. `dds` is ignored unless the table
  /// was built with use_dds. Thresholds: `bbv_threshold` in normalized
  /// Manhattan units; `dds_threshold` in absolute DDS units.
  Classification classify(const BbvVector& bbv, double dds,
                          std::uint64_t bbv_threshold, double dds_threshold);

  void reset();

  unsigned capacity() const { return capacity_; }
  std::size_t occupied() const { return entries_.size(); }
  /// Total distinct phase ids ever issued (monotonic).
  PhaseId phases_issued() const { return next_phase_; }
  std::uint64_t replacements() const { return replacements_; }

 private:
  struct Entry {
    BbvVector bbv;
    double dds = 0.0;
    PhaseId phase = kNoPhase;
    std::uint64_t lru = 0;
  };

  unsigned capacity_;
  bool use_dds_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  PhaseId next_phase_ = 0;
  std::uint64_t replacements_ = 0;
};

}  // namespace dsm::phase
