#include "phase/ddv.hpp"

#include "common/assert.hpp"

namespace dsm::phase {

DdvFabric::DdvFabric(unsigned nodes, std::vector<std::uint32_t> distance_matrix)
    : nodes_(nodes),
      dist_(std::move(distance_matrix)),
      cumulative_(std::size_t{nodes} * nodes, 0),
      snapshot_(std::size_t{nodes} * nodes * nodes, 0) {
  DSM_ASSERT(nodes_ > 0);
  DSM_ASSERT(dist_.size() == std::size_t{nodes_} * nodes_);
  for (NodeId i = 0; i < nodes_; ++i)
    DSM_ASSERT_MSG(dist_[idx(i, i)] == 1, "paper requires D[i][i] == 1");
}

void DdvFabric::record_access(NodeId p, NodeId home) {
  DSM_ASSERT(p < nodes_ && home < nodes_);
  // Equivalent to incrementing F^p[k][home] for every k.
  ++cumulative_[idx(p, home)];
}

std::uint64_t DdvFabric::frequency(NodeId p, NodeId k, NodeId j) const {
  DSM_ASSERT(p < nodes_ && k < nodes_ && j < nodes_);
  const std::size_t s = (std::size_t{p} * nodes_ + k) * nodes_ + j;
  return cumulative_[idx(p, j)] - snapshot_[s];
}

std::uint32_t DdvFabric::distance(NodeId i, NodeId j) const {
  DSM_ASSERT(i < nodes_ && j < nodes_);
  return dist_[idx(i, j)];
}

DdvFabric::GatherResult DdvFabric::gather(NodeId i) {
  DSM_ASSERT(i < nodes_);
  GatherResult out;
  out.own_f.assign(nodes_, 0);
  out.c.assign(nodes_, 0);

  for (NodeId p = 0; p < nodes_; ++p) {
    for (NodeId j = 0; j < nodes_; ++j) {
      const std::size_t s = (std::size_t{p} * nodes_ + i) * nodes_ + j;
      const std::uint64_t f = cumulative_[idx(p, j)] - snapshot_[s];
      out.c[j] += f;
      if (p == i) out.own_f[j] = f;
      snapshot_[s] = cumulative_[idx(p, j)];  // zero the on-behalf count
    }
  }

  double dds = 0.0;
  for (NodeId j = 0; j < nodes_; ++j) {
    dds += static_cast<double>(out.own_f[j]) *
           static_cast<double>(dist_[idx(i, j)]) *
           static_cast<double>(out.c[j]);
  }
  out.dds = dds;
  return out;
}

std::uint64_t DdvFabric::gather_payload_bytes(unsigned counter_bytes,
                                              unsigned request_bytes) const {
  if (nodes_ <= 1) return 0;
  const std::uint64_t peers = nodes_ - 1;
  return peers * (request_bytes +
                  static_cast<std::uint64_t>(nodes_) * counter_bytes);
}

void DdvFabric::reset() {
  std::fill(cumulative_.begin(), cumulative_.end(), 0);
  std::fill(snapshot_.begin(), snapshot_.end(), 0);
}

}  // namespace dsm::phase
