// interval_record.hpp — everything a detector could want to know about one
// sampling interval of one processor. The simulator records these; the
// analysis module replays classification over them for 200 threshold
// values without re-simulating (methodologically identical to the paper,
// which evaluates many thresholds on the same execution).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "phase/bbv.hpp"

namespace dsm::phase {

struct IntervalRecord {
  /// Normalized BBV snapshot at interval end.
  BbvVector bbv;
  /// F[i][*]: this processor's committed loads/stores per home node.
  std::vector<std::uint64_t> f;
  /// C[*]: system-wide accesses per home node over this interval.
  std::vector<std::uint64_t> c;
  /// DDS under the machine's distance matrix (analysis can recompute under
  /// ablated D/C from the raw vectors above).
  double dds = 0.0;
  /// Committed non-synchronization instructions (the interval length).
  InstrCount instructions = 0;
  /// Core cycles the interval took, including synchronization stalls.
  Cycle cycles = 0;
  /// cycles / instructions — the statistic whose per-phase CoV the paper's
  /// evaluation plots.
  double cpi = 0.0;
};

/// The full per-processor trace of a run.
struct ProcessorTrace {
  NodeId node = 0;
  std::vector<IntervalRecord> intervals;
};

}  // namespace dsm::phase
