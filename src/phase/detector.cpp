#include "phase/detector.hpp"

namespace dsm::phase {

BbvDetector::BbvDetector(unsigned footprint_capacity, Thresholds t)
    : table_(footprint_capacity, /*use_dds=*/false), thresholds_(t) {}

Classification BbvDetector::classify(const IntervalRecord& rec) {
  return table_.classify(rec.bbv, /*dds=*/0.0, thresholds_.bbv,
                         /*dds_threshold=*/0.0);
}

void BbvDetector::reset() { table_.reset(); }

BbvDdvDetector::BbvDdvDetector(unsigned footprint_capacity, Thresholds t)
    : table_(footprint_capacity, /*use_dds=*/true), thresholds_(t) {}

Classification BbvDdvDetector::classify(const IntervalRecord& rec) {
  return table_.classify(rec.bbv, rec.dds, thresholds_.bbv, thresholds_.dds);
}

void BbvDdvDetector::reset() { table_.reset(); }

}  // namespace dsm::phase
