#include "phase/traffic_model.hpp"

#include "common/assert.hpp"

namespace dsm::phase {

DdvTrafficResult ddv_traffic(const DdvTrafficParams& p) {
  DSM_ASSERT(p.nodes >= 1);
  DSM_ASSERT(p.interval_instructions > 0);
  DdvTrafficResult r;
  r.intervals_per_second =
      p.frequency_hz * p.ipc / static_cast<double>(p.interval_instructions);
  // Each interval end: n-1 queries out, n-1 vector replies back. A reply
  // carries the peer's n-entry on-behalf frequency vector.
  const std::uint64_t peers = p.nodes - 1;
  r.bytes_per_gather =
      peers * (p.request_bytes +
               static_cast<std::uint64_t>(p.nodes) * p.counter_bytes);
  // A node's interface carries the same volume again in its responder
  // role (it answers every peer's gather), so sustained per-node traffic
  // is twice the gather payload per interval — this is how the paper's
  // "about 160 kB/s" figure arises.
  r.node_bytes_per_second =
      2.0 * r.intervals_per_second * static_cast<double>(r.bytes_per_gather);
  r.system_bytes_per_second =
      r.node_bytes_per_second * p.nodes / 2.0;  // each byte counted once
  r.fraction_of_controller =
      r.node_bytes_per_second / (p.controller_bandwidth_gbps * 1e9);
  return r;
}

}  // namespace dsm::phase
