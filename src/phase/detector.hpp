// detector.hpp — online phase detectors: the BBV uniprocessor baseline
// (§III-A) and the proposed BBV+DDV detector (§III-B), each a thin policy
// over the shared footprint table.
//
// These run *online* inside the simulator when an experiment fixes its
// thresholds up front; the offline sweep in analysis/classifier.hpp replays
// the identical algorithm over recorded intervals.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "phase/footprint.hpp"
#include "phase/interval_record.hpp"

namespace dsm::phase {

/// Detector thresholds. `bbv` is in normalized-Manhattan units (0 ..
/// 2*bbv_norm); `dds` in absolute DDS units (ignored by the baseline).
struct Thresholds {
  std::uint64_t bbv = 0;
  double dds = 0.0;
};

/// Common interface so experiments can swap detectors.
///
/// Multiprogramming (paper §III-B): "the phase identification information
/// can be incorporated into the thread's state on a context switch.
/// Alternatively, phase information associated with threads can be
/// cleared at the expense of more tuning." Both options are supported:
/// save_context()/restore_context() swap the architectural state (the
/// footprint table and phase-id counter) in and out, and reset() is the
/// clearing alternative. tests/phase/multiprogram_test.cpp quantifies the
/// extra tuning that clearing costs.
class PhaseDetector {
 public:
  virtual ~PhaseDetector() = default;

  /// Classifies one finished interval; returns its phase id.
  virtual Classification classify(const IntervalRecord& rec) = 0;

  virtual void reset() = 0;
  virtual const char* name() const = 0;

  /// The detector's architectural state, as saved on a context switch.
  virtual FootprintTable save_context() const = 0;
  virtual void restore_context(FootprintTable state) = 0;
};

/// §III-A baseline: BBV distance only.
class BbvDetector final : public PhaseDetector {
 public:
  BbvDetector(unsigned footprint_capacity, Thresholds t);

  Classification classify(const IntervalRecord& rec) override;
  void reset() override;
  const char* name() const override { return "BBV"; }
  FootprintTable save_context() const override { return table_; }
  void restore_context(FootprintTable state) override {
    table_ = std::move(state);
  }

  const FootprintTable& table() const { return table_; }

 private:
  FootprintTable table_;
  Thresholds thresholds_;
};

/// §III-B proposal: BBV distance AND DDS difference must both match.
class BbvDdvDetector final : public PhaseDetector {
 public:
  BbvDdvDetector(unsigned footprint_capacity, Thresholds t);

  Classification classify(const IntervalRecord& rec) override;
  void reset() override;
  const char* name() const override { return "BBV+DDV"; }
  FootprintTable save_context() const override { return table_; }
  void restore_context(FootprintTable state) override {
    table_ = std::move(state);
  }

  const FootprintTable& table() const { return table_; }

 private:
  FootprintTable table_;
  Thresholds thresholds_;
};

}  // namespace dsm::phase
