#include "coherence/fabric.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bitops.hpp"
#include "obs/prof.hpp"

namespace dsm::coh {

using mem::LineState;
using net::TrafficClass;

const char* data_source_name(DataSource s) {
  switch (s) {
    case DataSource::kL1: return "L1";
    case DataSource::kL2: return "L2";
    case DataSource::kLocalMem: return "LocalMem";
    case DataSource::kRemoteMem: return "RemoteMem";
    case DataSource::kRemoteCache: return "RemoteCache";
    case DataSource::kUpgrade: return "Upgrade";
  }
  return "?";
}

CoherenceFabric::Node::Node(const MachineConfig& cfg, NodeId id)
    : l1(cfg.l1),
      l2(cfg.l2),
      // Pre-size the directory slice for its steady-state share: under
      // round-robin page homing each slice tracks about one node's worth
      // of cached (L1 ⊆ L2) lines. 2x headroom absorbs homing imbalance,
      // so the growth rebuilds that used to dominate warm-up never run.
      dir(id, (cfg.l2.size_bytes / cfg.l2.line_bytes) * 2),
      ctrl(cfg, id) {}

CoherenceFabric::CoherenceFabric(const MachineConfig& cfg,
                                 net::Network& network,
                                 mem::HomeMap& home_map,
                                 obs::Observability* obs)
    : cfg_(cfg),
      pol_(&policy_for(cfg.protocol)),
      network_(network),
      home_map_(&home_map) {
  DSM_ASSERT_MSG(cfg.num_nodes <= 64,
                 "full-map directory uses a 64-bit sharer bitset");
  nodes_.reserve(cfg.num_nodes);
  for (NodeId n = 0; n < cfg.num_nodes; ++n) nodes_.emplace_back(cfg, n);
  if (obs != nullptr) {
    trace_ = obs->trace();
    if (obs->stats_enabled()) {
      obs_.trans_uncached_read = obs->counter("coh.trans.uncached_read");
      obs_.trans_uncached_write = obs->counter("coh.trans.uncached_write");
      obs_.trans_shared_read = obs->counter("coh.trans.shared_read");
      obs_.trans_shared_write = obs->counter("coh.trans.shared_write");
      obs_.trans_exclusive_read = obs->counter("coh.trans.exclusive_read");
      obs_.trans_exclusive_write = obs->counter("coh.trans.exclusive_write");
      obs_.trans_owned_read = obs->counter("coh.trans.owned_read");
      obs_.trans_owned_write = obs->counter("coh.trans.owned_write");
      obs_.fill_with_victim = obs->counter("coh.fill.with_victim");
      obs_.fill_no_victim = obs->counter("coh.fill.no_victim");
      obs_.evict_writeback = obs->counter("coh.evict.writeback");
      obs_.evict_clean = obs->counter("coh.evict.clean");
      obs_.batch_groups = obs->counter("host.batch.groups");
      obs_.batch_members = obs->counter("host.batch.members");
      obs_.batch_staged_miss = obs->counter("host.batch.staged_miss");
      obs_.batch_degrade = obs->counter("host.batch.degrade_to_serial");
      // One histogram shared by every slice: probe lengths are a
      // property of the table algorithm, and per-home increments happen
      // in the same simulated order regardless of execution mode, so
      // the merged distribution stays deterministic.
      const obs::HistogramHandle probes = obs->histogram("dir.probe_len", 16);
      for (auto& node : nodes_) node.dir.set_probe_histogram(probes);
    }
  }
}

mem::Cache& CoherenceFabric::l1(NodeId n) { return nodes_.at(n).l1; }
mem::Cache& CoherenceFabric::l2(NodeId n) { return nodes_.at(n).l2; }
const mem::Cache& CoherenceFabric::l1(NodeId n) const {
  return nodes_.at(n).l1;
}
const mem::Cache& CoherenceFabric::l2(NodeId n) const {
  return nodes_.at(n).l2;
}
Directory& CoherenceFabric::directory(NodeId home) {
  return nodes_.at(home).dir;
}
mem::MemController& CoherenceFabric::controller(NodeId home) {
  return nodes_.at(home).ctrl;
}
const NodeCoherenceStats& CoherenceFabric::stats(NodeId n) const {
  return nodes_.at(n).stats;
}

AccessOutcome CoherenceFabric::access(NodeId node, Addr addr, bool is_write,
                                      Cycle now) {
  DSM_ASSERT(node < nodes_.size());
  Node& me = nodes_[node];
  const Addr line = me.l2.line_of(addr);

  // Overlap the host-memory misses this access is about to take: the L2
  // set lanes and the home directory's probe slot are independent lines,
  // so putting them in flight now turns the walk below from a chain of
  // serialized misses into parallel ones. Hints only — no simulated
  // state or timing changes. (peek_home keeps first-touch assignment
  // where it always happened, inside do_access; an unassigned page has
  // no directory slot to warm anyway.)
  me.l2.prefetch_set(line);
  const NodeId ph = home_map_->peek_home(line);
  if (ph != kNoNode) nodes_[ph].dir.prefetch(line);

  AccessOutcome out;
  do_access(node, line, is_write, now, out, me.l1.lookup(line), nullptr,
            nullptr);
  return out;
}

bool CoherenceFabric::access_l1_fast(NodeId node, Addr addr, bool is_write,
                                     AccessOutcome& out) {
  DSM_ASSERT(node < nodes_.size());
  Node& me = nodes_[node];
  const Addr line = me.l2.line_of(addr);
  const mem::Cache::LineRef w1 = me.l1.lookup(line);
  const LineState s1 = me.l1.state_of(w1);
  if (s1 == LineState::kInvalid ||
      (is_write && !store_permitted(*pol_, s1)))
    return false;
  // access()'s L1-hit arm, verbatim. The up-front prefetch hints are
  // host-side only and useless on a hit, so they are skipped; a resident
  // line's page is always already assigned, so home_of cannot first-touch
  // here and reads the same answer the serial path would.
  out = AccessOutcome{};
  out.write = is_write;
  out.home = home_map_->home_of(line, node);
  if (is_write) ++me.stats.stores; else ++me.stats.loads;
  me.l1.touch(w1);
  if (is_write) {
    const LineState next = pol_->store_hit[static_cast<unsigned>(s1)];
    if (next != s1) {
      me.l1.set_state(w1, next);
      const mem::Cache::LineRef w2 = me.l2.lookup(line);
      DSM_ASSERT(w2);
      me.l2.set_state(w2, next);
    }
  }
  ++me.stats.l1_hits;
  out.l1_hit = true;
  out.latency = cfg_.l1.latency_cycles;
  out.source = DataSource::kL1;
  return true;
}

std::size_t CoherenceFabric::access_batch(std::span<const AccessReq> reqs,
                                          std::span<AccessOutcome> outs,
                                          Cycle now, BatchAdvanceFn advance,
                                          void* ctx) {
  const std::size_t n = reqs.size();
  DSM_ASSERT_MSG(n <= kMaxBatch, "batch exceeds kMaxBatch");
  DSM_ASSERT(outs.size() >= n);
  if (n == 0) return 0;

  // ---- Stage 1: walk every member's tag lanes and put the host-DRAM
  // lines stage 2/3 will need in flight — the L2 set lanes, the home
  // directory slot, and each predicted miss's predicted-victim home
  // slot. Everything here is const (no LRU movement, no counters, no
  // first-touch assignment), so the resolution stage below replays the
  // exact serial sequence. Stack arrays only: the steady state stays
  // allocation-free.
  Addr lines[kMaxBatch];
  mem::Cache::LineRef w1s[kMaxBatch];
  mem::Cache::FillCursor c2s[kMaxBatch];
  bool staged_c2[kMaxBatch];
  obs_.batch_groups.inc();
  obs_.batch_members.add(n);
  {
    DSM_PROF_SCOPE(kBatchStage1);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId node = reqs[i].node;
      DSM_ASSERT(node < nodes_.size());
      Node& me = nodes_[node];
      const Addr line = me.l2.line_of(reqs[i].addr);
      lines[i] = line;
      me.l2.prefetch_set(line);
      const NodeId ph = home_map_->peek_home(line);
      if (ph != kNoNode) nodes_[ph].dir.prefetch(line);
      w1s[i] = me.l1.lookup(line);
      const LineState s1 = me.l1.state_of(w1s[i]);
      const bool l1_serves =
          s1 != LineState::kInvalid &&
          (!reqs[i].write || store_permitted(*pol_, s1));
      staged_c2[i] = !l1_serves;
      if (!l1_serves) {
        obs_.batch_staged_miss.inc();
        c2s[i] = me.l2.lookup_for_fill(line);
        if (!c2s[i].ref &&
            c2s[i].victim_line != mem::Cache::FillCursor::kNoLine) {
          const NodeId vh = home_map_->peek_home(c2s[i].victim_line);
          if (vh != kNoNode) nodes_[vh].dir.prefetch(c2s[i].victim_line);
        }
      }
    }
  }

  // ---- Stage 2/3: resolve strictly in order through the same code the
  // serial path runs, reusing each staged walk unless an earlier member
  // disturbed its set (then re-walk — same-line/same-set conflicts
  // degrade to ordered singles). States behind a handle are always
  // re-read live in do_access; the masks only guard the *structural*
  // validity of handles and the LRU-dependent victim choice.
  // A single-member batch (common when a sync point flushes a partial
  // gather) has no earlier members to disturb it and no later members to
  // inform: skip the disturbance bookkeeping entirely.
  DSM_PROF_SCOPE(kBatchResolve);
  BatchScope scope;
  BatchScope* const sp = n > 1 ? &scope : nullptr;
  Cycle t = now;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = reqs[i].node;
    Node& me = nodes_[node];
    const Addr line = lines[i];
    mem::Cache::LineRef w1 = w1s[i];
    if (sp && sp->l1_stale(node, me.l1.set_of(line))) w1 = me.l1.lookup(line);
    const mem::Cache::FillCursor* hint = nullptr;
    if (staged_c2[i]) {
      const bool stale =
          sp != nullptr &&
          (c2s[i].ref ? sp->l2_ref_stale(node, me.l2.set_of(line))
                      : sp->l2_cursor_stale(node, me.l2.set_of(line)));
      if (!stale) hint = &c2s[i];
      else obs_.batch_degrade.inc();
    }
    outs[i] = AccessOutcome{};
    do_access(node, line, reqs[i].write, t, outs[i], w1, hint, sp);
    if (advance) {
      const Cycle next = advance(ctx, i, outs[i]);
      if (next == kBatchStop) return i + 1;
      t = next;
    }
  }
  return n;
}

void CoherenceFabric::do_access(NodeId node, Addr line, bool is_write,
                                Cycle now, AccessOutcome& out,
                                mem::Cache::LineRef w1,
                                const mem::Cache::FillCursor* l2_cursor,
                                BatchScope* scope) {
  DSM_PROF_SCOPE(kDoAccess);
  Node& me = nodes_[node];
  out.write = is_write;
  out.home = home_map_->home_of(line, node);
  if (is_write) ++me.stats.stores; else ++me.stats.loads;

  // ---- L1: one tag walk (done by the caller), reused below ----
  const LineState s1 = me.l1.state_of(w1);
  if (s1 != LineState::kInvalid) {
    if (!is_write || store_permitted(*pol_, s1)) {
      me.l1.touch(w1);
      const LineState next = pol_->store_hit[static_cast<unsigned>(s1)];
      if (is_write && next != s1) {
        // Silent store-hit upgrade (E->M under MESI/MOESI), mirrored in
        // the (inclusive) L2.
        me.l1.set_state(w1, next);
        const mem::Cache::LineRef w2 = me.l2.lookup(line);
        DSM_ASSERT(w2);
        me.l2.set_state(w2, next);
      }
      ++me.stats.l1_hits;
      out.l1_hit = true;
      out.latency = cfg_.l1.latency_cycles;
      out.source = DataSource::kL1;
      return;
    }
    // L1 hit in S but we need write permission: fall through to the
    // directory upgrade path. Count the tag probe, not a hit.
  } else {
    me.l1.record_miss();
  }

  Cycle lat = cfg_.l1.latency_cycles;

  // ---- L2: ONE fused walk answers presence, fill way, and predicted
  // victim (lookup_for_fill) — the refill path below never re-walks the
  // set. A batch caller may hand the walk in pre-staged.
  const mem::Cache::FillCursor c2 =
      l2_cursor ? *l2_cursor : me.l2.lookup_for_fill(line);
  const mem::Cache::LineRef w2 = c2.ref;
  const LineState s2 = me.l2.state_of(w2);
  const bool l2_has_data = (s2 != LineState::kInvalid);
  const bool l2_writable = store_permitted(*pol_, s2);
  lat += cfg_.l2.latency_cycles;
  if (l2_has_data && (!is_write || l2_writable)) {
    me.l2.touch(w2);
    if (scope) scope->note_l2_moved(node, me.l2.set_of(line));
    ++me.stats.l2_hits;
    LineState grant = s2;
    if (is_write) {
      grant = pol_->store_hit[static_cast<unsigned>(s2)];
      me.l2.set_state(w2, grant);
    }
    // Refill L1 from L2 (w1 may be a resident S way on a read after an L1
    // conflict miss).
    if (w1) {
      me.l1.touch(w1);
      me.l1.set_state(w1, grant);
    } else {
      const auto v1 = me.l1.fill(line, grant);
      if (scope) scope->note_l1(node, me.l1.set_of(line));
      if (v1 && v1->state == LineState::kModified) {
        const mem::Cache::LineRef wv = me.l2.lookup(v1->line_addr);
        DSM_ASSERT_MSG(wv, "L1/L2 inclusion broken");
        me.l2.set_state(wv, LineState::kModified);
      }
    }
    out.latency = lat;
    out.source = DataSource::kL2;
    return;
  }
  if (l2_has_data) {
    me.l2.touch(w2);  // S-upgrade: data present, touch LRU
    if (scope) scope->note_l2_moved(node, me.l2.set_of(line));
  } else if (!scope && c2.victim_line != mem::Cache::FillCursor::kNoLine) {
    // True miss: the fill below will displace the predicted victim, whose
    // home-directory slot the up-front prefetch did not cover. Warm it
    // now, while the directory round-trip below hides the host latency.
    // (Batch stage 1 already issued this hint for staged misses.)
    const NodeId vh = home_map_->peek_home(c2.victim_line);
    if (vh != kNoNode) nodes_[vh].dir.prefetch(c2.victim_line);
  }

  // ---- Directory ----
  // Trace only the miss path: L1/L2 hit arms stay event-free so serial,
  // fast-path, and batched executions record identical sequences.
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.ts = now;
    ev.addr = line;
    ev.kind = obs::TraceEvent::kMissStart;
    ev.node = static_cast<std::uint8_t>(node);
    ev.flags = is_write ? obs::TraceEvent::kWriteBit : 0;
    ev.aux = out.home;
    trace_->record(ev);
  }
  lat += directory_request(node, line, is_write, now + lat, out, w1, c2,
                           scope);
  out.latency = lat;
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.ts = now;
    ev.addr = line;
    ev.arg = out.latency;
    ev.kind = obs::TraceEvent::kMissFill;
    ev.node = static_cast<std::uint8_t>(node);
    ev.flags = static_cast<std::uint8_t>(
        (is_write ? obs::TraceEvent::kWriteBit : 0) |
        (static_cast<unsigned>(out.source) << obs::TraceEvent::kSourceShift));
    ev.aux = out.home;
    trace_->record(ev);
  }
}

Cycle CoherenceFabric::directory_request(NodeId requestor, Addr line,
                                         bool is_write, Cycle now,
                                         AccessOutcome& out,
                                         mem::Cache::LineRef l1_ref,
                                         const mem::Cache::FillCursor& l2_cursor,
                                         BatchScope* scope) {
  DSM_PROF_SCOPE(kDirRequest);
  Node& me = nodes_[requestor];
  const mem::Cache::LineRef l2_ref = l2_cursor.ref;
  const NodeId home = out.home;
  Node& h = nodes_[home];
  Cycle lat = 0;

  // Request travels to the home node's directory.
  lat += network_.message_latency(requestor, home, control_bytes(), now,
                                  TrafficClass::kCoherence);
  lat += cfg_.memory.directory_latency_cycles;

  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.ts = now + lat;
    ev.addr = line;
    ev.kind = obs::TraceEvent::kDirRequest;
    ev.node = static_cast<std::uint8_t>(requestor);
    ev.flags = is_write ? obs::TraceEvent::kWriteBit : 0;
    ev.aux = home;
    trace_->record(ev);
  }

  DirEntry& e = h.dir.entry(line);
  const bool requestor_had_data = static_cast<bool>(l2_ref);
  // Every switch arm assigns grant; kInvalid would trip fill_hierarchy's
  // assert if one ever stopped doing so.
  LineState grant = LineState::kInvalid;

  switch (e.state) {
    case DirEntry::State::kUncached: {
      (is_write ? obs_.trans_uncached_write : obs_.trans_uncached_read).inc();
      // Fetch from home memory. A write is granted M everywhere; what a
      // sole READER gets is the policy's call — E under MESI/MOESI (so a
      // later store upgrades silently), plain S under MSI.
      lat += h.ctrl.request(line, now + lat, data_bytes(), requestor);
      lat += network_.message_latency(home, requestor, data_bytes(),
                                      now + lat, TrafficClass::kData);
      if (is_write) {
        grant = LineState::kModified;
        e.state = DirEntry::State::kExclusive;
        e.owner = requestor;
      } else {
        grant = pol_->sole_read_grant;
        e.state = pol_->sole_read_dir;
        e.owner = (e.state == DirEntry::State::kExclusive) ? requestor
                                                           : kNoNode;
      }
      e.sharers = 0;
      e.add_sharer(requestor);
      out.source = (home == requestor) ? DataSource::kLocalMem
                                       : DataSource::kRemoteMem;
      if (home == requestor) ++me.stats.local_mem; else ++me.stats.remote_mem;
      break;
    }
    case DirEntry::State::kShared: {
      (is_write ? obs_.trans_shared_write : obs_.trans_shared_read).inc();
      if (is_write) {
        // Invalidate every other sharer; acks return in parallel, so the
        // cost is the slowest round trip. Bit-scanning the sharer set
        // visits the same nodes in the same ascending order as a full
        // 0..nodes scan, in O(popcount).
        Cycle max_inval = 0;
        for_each_set_bit(
            e.sharers & ~(std::uint64_t{1} << requestor), [&](unsigned qb) {
              const NodeId q = static_cast<NodeId>(qb);
              Cycle t = network_.message_latency(home, q, control_bytes(),
                                                 now + lat,
                                                 TrafficClass::kCoherence);
              nodes_[q].l1.invalidate(line);
              nodes_[q].l2.invalidate(line);
              if (scope) {
                scope->note_l1(q, nodes_[q].l1.set_of(line));
                scope->note_l2(q, nodes_[q].l2.set_of(line));
              }
              t += network_.message_latency(q, home, control_bytes(),
                                            now + lat + t,
                                            TrafficClass::kCoherence);
              max_inval = std::max(max_inval, t);
              ++me.stats.invalidations_sent;
              ++out.invalidations;
            });
        lat += max_inval;
        if (requestor_had_data) {
          // Upgrade: permission only, no data transfer.
          lat += network_.message_latency(home, requestor, control_bytes(),
                                          now + lat, TrafficClass::kCoherence);
          out.source = DataSource::kUpgrade;
          ++me.stats.upgrades;
        } else {
          lat += h.ctrl.request(line, now + lat, data_bytes(), requestor);
          lat += network_.message_latency(home, requestor, data_bytes(),
                                          now + lat, TrafficClass::kData);
          out.source = (home == requestor) ? DataSource::kLocalMem
                                           : DataSource::kRemoteMem;
          if (home == requestor) ++me.stats.local_mem;
          else ++me.stats.remote_mem;
        }
        grant = LineState::kModified;
        e.state = DirEntry::State::kExclusive;
        e.sharers = 0;
        e.add_sharer(requestor);
        e.owner = requestor;
      } else {
        // Memory holds a clean copy in Shared.
        lat += h.ctrl.request(line, now + lat, data_bytes(), requestor);
        lat += network_.message_latency(home, requestor, data_bytes(),
                                        now + lat, TrafficClass::kData);
        grant = LineState::kShared;
        e.add_sharer(requestor);
        out.source = (home == requestor) ? DataSource::kLocalMem
                                         : DataSource::kRemoteMem;
        if (home == requestor) ++me.stats.local_mem;
        else ++me.stats.remote_mem;
      }
      break;
    }
    case DirEntry::State::kExclusive: {
      (is_write ? obs_.trans_exclusive_write : obs_.trans_exclusive_read)
          .inc();
      const NodeId q = e.owner;
      DSM_ASSERT_MSG(q != requestor,
                     "requestor cannot be the registered owner on a miss");
      Node& owner = nodes_[q];
      // Forward the request to the current owner.
      lat += network_.message_latency(home, q, control_bytes(), now + lat,
                                      TrafficClass::kCoherence);
      if (trace_ != nullptr) {
        obs::TraceEvent ev;
        ev.ts = now + lat;
        ev.addr = line;
        ev.kind = obs::TraceEvent::kDirForward;
        ev.node = static_cast<std::uint8_t>(requestor);
        ev.flags = is_write ? obs::TraceEvent::kWriteBit : 0;
        ev.aux = q;
        trace_->record(ev);
      }
      const mem::Cache::LineRef ow1 = owner.l1.lookup(line);
      const mem::Cache::LineRef ow2 = owner.l2.lookup(line);
      const LineState owner_l1 = owner.l1.state_of(ow1);
      const LineState owner_l2 = owner.l2.state_of(ow2);
      DSM_ASSERT_MSG(owner_l2 == LineState::kExclusive ||
                         owner_l2 == LineState::kModified,
                     "directory owner must hold the line E or M");
      const bool was_dirty =
          owner_l1 == LineState::kModified || owner_l2 == LineState::kModified;
      if (is_write) {
        owner.l1.invalidate(ow1);
        owner.l2.invalidate(ow2);
        if (scope) {
          scope->note_l1(q, owner.l1.set_of(line));
          scope->note_l2(q, owner.l2.set_of(line));
        }
        ++me.stats.invalidations_sent;
        ++out.invalidations;
        e.sharers = 0;
        e.add_sharer(requestor);
        e.owner = requestor;
        grant = LineState::kModified;
      } else {
        owner.l1.downgrade(ow1);
        if (pol_->has_owned && was_dirty) {
          // MOESI: the dirty owner keeps its data as Owned and forwards
          // it cache-to-cache below — no memory writeback; home memory
          // stays stale until the O copy is evicted. The owner stays
          // registered (and a sharer) so later requests forward to it.
          owner.l2.set_state(ow2, LineState::kOwned);
          e.state = DirEntry::State::kOwned;
          e.add_sharer(requestor);
        } else {
          owner.l2.downgrade(ow2);
          if (was_dirty) {
            // Sharing writeback: the home's memory is refreshed off the
            // requestor's critical path, but the controller is occupied.
            h.ctrl.request(line, now + lat, data_bytes(), q);
            network_.message_latency(q, home, data_bytes(), now + lat,
                                     TrafficClass::kData);
            ++owner.stats.writebacks;
          }
          e.state = DirEntry::State::kShared;
          e.add_sharer(requestor);
          e.owner = kNoNode;
        }
        grant = LineState::kShared;
      }
      // Cache-to-cache transfer, owner -> requestor.
      lat += network_.message_latency(q, requestor, data_bytes(), now + lat,
                                      TrafficClass::kData);
      out.source = DataSource::kRemoteCache;
      ++me.stats.cache_to_cache;
      break;
    }
    case DirEntry::State::kOwned: {
      (is_write ? obs_.trans_owned_write : obs_.trans_owned_read).inc();
      // MOESI only: a dirty Owned copy exists at e.owner; home memory is
      // stale, so data always comes from the owner, never from h.ctrl.
      DSM_ASSERT_MSG(pol_->has_owned, "kOwned entry under a non-MOESI policy");
      const NodeId q = e.owner;
      DSM_ASSERT(q != kNoNode);
      if (is_write) {
        // Invalidate every sharer but the requestor (the owner included,
        // unless the requestor IS the owner upgrading its O copy); acks
        // return in parallel, so the cost is the slowest round trip.
        Cycle max_inval = 0;
        for_each_set_bit(
            e.sharers & ~(std::uint64_t{1} << requestor), [&](unsigned qb) {
              const NodeId s = static_cast<NodeId>(qb);
              Cycle t = network_.message_latency(home, s, control_bytes(),
                                                 now + lat,
                                                 TrafficClass::kCoherence);
              nodes_[s].l1.invalidate(line);
              nodes_[s].l2.invalidate(line);
              if (scope) {
                scope->note_l1(s, nodes_[s].l1.set_of(line));
                scope->note_l2(s, nodes_[s].l2.set_of(line));
              }
              t += network_.message_latency(s, home, control_bytes(),
                                            now + lat + t,
                                            TrafficClass::kCoherence);
              max_inval = std::max(max_inval, t);
              ++me.stats.invalidations_sent;
              ++out.invalidations;
            });
        lat += max_inval;
        if (requestor_had_data) {
          // The requestor already holds the data (S, or O when it is the
          // owner): permission only.
          lat += network_.message_latency(home, requestor, control_bytes(),
                                          now + lat, TrafficClass::kCoherence);
          out.source = DataSource::kUpgrade;
          ++me.stats.upgrades;
        } else {
          // Memory is stale: forward the request to the (just
          // invalidated) owner, which supplies the only valid data.
          DSM_ASSERT_MSG(q != requestor, "ownerless O-line write");
          lat += network_.message_latency(home, q, control_bytes(), now + lat,
                                          TrafficClass::kCoherence);
          if (trace_ != nullptr) {
            obs::TraceEvent ev;
            ev.ts = now + lat;
            ev.addr = line;
            ev.kind = obs::TraceEvent::kDirForward;
            ev.node = static_cast<std::uint8_t>(requestor);
            ev.flags = obs::TraceEvent::kWriteBit;
            ev.aux = q;
            trace_->record(ev);
          }
          lat += network_.message_latency(q, requestor, data_bytes(),
                                          now + lat, TrafficClass::kData);
          out.source = DataSource::kRemoteCache;
          ++me.stats.cache_to_cache;
        }
        grant = LineState::kModified;
        e.state = DirEntry::State::kExclusive;
        e.sharers = 0;
        e.add_sharer(requestor);
        e.owner = requestor;
      } else {
        // Read: forward from the owner, cache-to-cache; the owner keeps
        // O and the directory entry is untouched except for the new
        // sharer. (The owner itself never read-misses an O line — its L2
        // serves it — so q != requestor here.)
        DSM_ASSERT_MSG(q != requestor, "owner read-missed its own O line");
        lat += network_.message_latency(home, q, control_bytes(), now + lat,
                                        TrafficClass::kCoherence);
        if (trace_ != nullptr) {
          obs::TraceEvent ev;
          ev.ts = now + lat;
          ev.addr = line;
          ev.kind = obs::TraceEvent::kDirForward;
          ev.node = static_cast<std::uint8_t>(requestor);
          ev.aux = q;
          trace_->record(ev);
        }
        lat += network_.message_latency(q, requestor, data_bytes(), now + lat,
                                        TrafficClass::kData);
        e.add_sharer(requestor);
        grant = LineState::kShared;
        out.source = DataSource::kRemoteCache;
        ++me.stats.cache_to_cache;
      }
      break;
    }
  }

  // Install / upgrade locally. The cached tag-walk handles are still valid:
  // everything above only touched other nodes' caches.
  if (out.source == DataSource::kUpgrade) {
    DSM_ASSERT(l2_ref);
    me.l2.set_state(l2_ref, LineState::kModified);
    if (l1_ref) {
      me.l1.set_state(l1_ref, LineState::kModified);
      me.l1.touch(l1_ref);
    } else {
      const auto v1 = me.l1.fill(line, LineState::kModified);
      if (scope) scope->note_l1(requestor, me.l1.set_of(line));
      if (v1 && v1->state == LineState::kModified) {
        const mem::Cache::LineRef wv = me.l2.lookup(v1->line_addr);
        DSM_ASSERT(wv);
        me.l2.set_state(wv, LineState::kModified);
      }
    }
  } else {
    lat += fill_hierarchy(requestor, line, grant, now + lat, l2_cursor, scope);
  }
  return lat;
}

Cycle CoherenceFabric::fill_hierarchy(NodeId requestor, Addr line, LineState st,
                                      Cycle now,
                                      const mem::Cache::FillCursor& l2_cursor,
                                      BatchScope* scope) {
  DSM_PROF_SCOPE(kFill);
  Node& me = nodes_[requestor];
  Cycle lat = 0;
  // The L2 allocation reuses the miss cursor from do_access's fused walk
  // (fill_at asserts its freshness), so the whole refill path pays ONE
  // associative search of the L2 set — the directory path in between
  // never mutates the requestor's caches. The L1 fill still walks its
  // (direct-mapped: walk-free) set.
  const auto v2 = me.l2.fill_at(l2_cursor, line, st);
  (v2 ? obs_.fill_with_victim : obs_.fill_no_victim).inc();
  if (scope) scope->note_l2(requestor, me.l2.set_of(line));
  if (v2) lat += handle_l2_eviction(requestor, *v2, now, scope);
  const auto v1 = me.l1.fill(line, st);
  if (scope) scope->note_l1(requestor, me.l1.set_of(line));
  if (v1 && v1->state == LineState::kModified) {
    const mem::Cache::LineRef wv = me.l2.lookup(v1->line_addr);
    DSM_ASSERT_MSG(wv, "L1/L2 inclusion broken");
    me.l2.set_state(wv, LineState::kModified);
  }
  return lat;
}

Cycle CoherenceFabric::handle_l2_eviction(NodeId evictor, const mem::Victim& v,
                                          Cycle now, BatchScope* scope) {
  Node& me = nodes_[evictor];
  // Inclusion: purge the L1 copy; it may carry the dirty bit.
  const LineState l1_state = me.l1.invalidate(v.line_addr);
  if (scope) scope->note_l1(evictor, me.l1.set_of(v.line_addr));
  const bool dirty = v.state == LineState::kModified ||
                     v.state == LineState::kOwned ||
                     l1_state == LineState::kModified;

  const NodeId vhome = home_map_->home_of(v.line_addr, evictor);
  Node& h = nodes_[vhome];

  if (dirty) {
    // Dirty writeback: buffered off the critical path; the traffic and the
    // home controller occupancy are still real.
    ++me.stats.writebacks;
    obs_.evict_writeback.inc();
    if (trace_ != nullptr) {
      obs::TraceEvent ev;
      ev.ts = now;
      ev.addr = v.line_addr;
      ev.kind = obs::TraceEvent::kWriteback;
      ev.node = static_cast<std::uint8_t>(evictor);
      ev.aux = vhome;
      trace_->record(ev);
    }
    const Cycle arrive =
        now + network_.message_latency(evictor, vhome, data_bytes(), now,
                                       TrafficClass::kData);
    h.ctrl.request(v.line_addr, arrive, data_bytes(), evictor);
    if (!pol_->has_owned) {
      // MSI/MESI: a dirty line is the only copy, so it returns to
      // kUncached and its entry is erased in place — no entry() probe
      // first: this path never reads the state it is about to drop.
      h.dir.erase(v.line_addr);
      return 0;
    }
    // MOESI: an evicted O line may leave S copies behind. The writeback
    // just refreshed home memory, so the survivors' entry is a plain
    // kShared; the line is erased only when the evictor held the sole
    // copy (M, or O with no other sharer).
    DirEntry& e = h.dir.entry(v.line_addr);
    e.remove_sharer(evictor);
    if (e.sharer_count() == 0) {
      h.dir.erase(v.line_addr);
    } else {
      e.state = DirEntry::State::kShared;
      e.owner = kNoNode;
    }
    return 0;
  }

  // Clean eviction: silent on the wire; directory stays precise. When the
  // last copy leaves, the entry returns to kUncached and is erased in
  // place (erase() invalidates `e` — it is the last use).
  obs_.evict_clean.inc();
  DirEntry& e = h.dir.entry(v.line_addr);
  e.remove_sharer(evictor);
  if (e.state == DirEntry::State::kExclusive && e.owner == evictor) {
    h.dir.erase(v.line_addr);
  } else if (e.sharer_count() == 0) {
    h.dir.erase(v.line_addr);
  }
  return 0;
}

void CoherenceFabric::flush_all() {
  for (auto& n : nodes_) {
    n.l1.flush();
    n.l2.flush();
  }
}

void CoherenceFabric::check_invariants() const {
  const unsigned n = static_cast<unsigned>(nodes_.size());
  // 1) L1 subset of L2 with compatible states, and no state the policy
  //    cannot install (no E under MSI, no O outside MOESI).
  for (unsigned p = 0; p < n; ++p) {
    for (const Addr line : nodes_[p].l1.resident_lines()) {
      DSM_ASSERT_MSG(nodes_[p].l2.probe(line), "L1 line missing from L2");
      const LineState s1 = nodes_[p].l1.state(line);
      const LineState s2 = nodes_[p].l2.state(line);
      DSM_ASSERT_MSG(state_allowed(*pol_, s1),
                     "L1 state unreachable under this protocol");
      if (s1 == LineState::kModified)
        DSM_ASSERT_MSG(s2 == LineState::kModified, "dirty L1 over non-M L2");
      if (s1 == LineState::kExclusive)
        DSM_ASSERT_MSG(s2 == LineState::kExclusive || s2 == LineState::kModified,
                       "E in L1 over weaker L2");
      if (s1 == LineState::kOwned)
        DSM_ASSERT_MSG(s2 == LineState::kOwned, "O in L1 over non-O L2");
    }
  }
  // 2) Directory agrees with the caches. Under MOESI this also enforces
  //    the single-Owner rule: two O copies of one line would each demand
  //    e.owner == themselves.
  for (unsigned home = 0; home < n; ++home) {
    // Walk every line any L2 holds whose home is this node.
    for (unsigned p = 0; p < n; ++p) {
      for (const Addr line : nodes_[p].l2.resident_lines()) {
        if (home_map_->peek_home(line) != static_cast<NodeId>(home)) continue;
        const DirEntry e = nodes_[home].dir.peek(line);
        DSM_ASSERT_MSG(e.is_sharer(static_cast<NodeId>(p)),
                       "cache holds line the directory does not attribute");
        const LineState s = nodes_[p].l2.state(line);
        DSM_ASSERT_MSG(state_allowed(*pol_, s),
                       "L2 state unreachable under this protocol");
        if (s == LineState::kExclusive || s == LineState::kModified) {
          DSM_ASSERT_MSG(e.state == DirEntry::State::kExclusive &&
                             e.owner == static_cast<NodeId>(p),
                         "E/M copy without directory ownership");
          DSM_ASSERT_MSG(e.sharer_count() == 1, "owner plus extra sharers");
        } else if (s == LineState::kOwned) {
          DSM_ASSERT_MSG(e.state == DirEntry::State::kOwned &&
                             e.owner == static_cast<NodeId>(p),
                         "O copy without directory kOwned ownership");
        } else {
          DSM_ASSERT_MSG(e.state == DirEntry::State::kShared ||
                             e.state == DirEntry::State::kOwned,
                         "S copy but directory not in Shared/Owned");
          if (e.state == DirEntry::State::kOwned)
            DSM_ASSERT_MSG(e.owner != static_cast<NodeId>(p),
                           "registered owner holds S, not O");
        }
      }
    }
  }
}

}  // namespace dsm::coh
