#include "coherence/policy.hpp"

#include "common/assert.hpp"

namespace dsm::coh {

const CohPolicy& policy_for(Protocol p) {
  switch (p) {
    case Protocol::kMsi: return kMsiPolicy;
    case Protocol::kMesi: return kMesiPolicy;
    case Protocol::kMoesi: return kMoesiPolicy;
  }
  DSM_ASSERT_MSG(false, "unknown protocol");
  return kMesiPolicy;
}

}  // namespace dsm::coh
