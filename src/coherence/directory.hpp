// directory.hpp — per-home-node full-map directory state for the MESI
// protocol (one directory slice per node of the DSM, as in DASH/Origin-
// style machines the paper's simulated architecture follows).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"

namespace dsm::coh {

/// Directory's view of one memory line.
struct DirEntry {
  enum class State : std::uint8_t {
    kUncached,   ///< no cache holds the line
    kShared,     ///< one or more caches hold it read-only
    kExclusive,  ///< exactly one cache holds it E or M
  };

  State state = State::kUncached;
  std::uint64_t sharers = 0;   ///< bitset over nodes (full-map)
  NodeId owner = kNoNode;      ///< valid when state == kExclusive

  bool is_sharer(NodeId n) const { return (sharers >> n) & 1u; }
  void add_sharer(NodeId n) { sharers |= (1ull << n); }
  void remove_sharer(NodeId n) { sharers &= ~(1ull << n); }
  unsigned sharer_count() const;
};

/// The directory slice held by one home node. Entries are created lazily;
/// an absent entry means kUncached.
class Directory {
 public:
  explicit Directory(NodeId home) : home_(home) {}

  NodeId home() const { return home_; }

  /// Mutable entry (creating an Uncached one on demand).
  DirEntry& entry(Addr line_addr) { return entries_[line_addr]; }

  /// Read-only lookup; returns a value copy (Uncached default if absent).
  DirEntry peek(Addr line_addr) const;

  /// Drops entries that returned to kUncached (bounds memory in long runs).
  void compact();

  std::size_t tracked_lines() const { return entries_.size(); }

 private:
  NodeId home_;
  std::unordered_map<Addr, DirEntry> entries_;
};

}  // namespace dsm::coh
