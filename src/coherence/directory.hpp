// directory.hpp — per-home-node full-map directory state for the MESI
// protocol (one directory slice per node of the DSM, as in DASH/Origin-
// style machines the paper's simulated architecture follows).
//
// The slice is a flat open-addressing hash table (linear probing,
// power-of-two capacity, multiplicative hashing): the directory lookup sits
// on the miss path of every simulated access, and profiling showed the old
// node-based std::unordered_map — hash-bucket pointer chasing plus one
// malloc/free per tracked line — dominating the whole simulator.
//
// Layout: structure-of-arrays. Keys live in their own dense lane (one
// 64-byte host cache line covers 8 keys) with kEmptyKey marking unused
// slots, so a probe chain touches nothing but the key lane until it
// lands; the DirEntry payloads sit in a parallel lane read only at the
// matched slot. With the old {key, used, DirEntry} records a slice's
// probe working set was 4x larger and every probe step dragged the
// payload through the host caches.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace dsm::coh {

/// Directory's view of one memory line.
struct DirEntry {
  enum class State : std::uint8_t {
    kUncached,   ///< no cache holds the line
    kShared,     ///< one or more caches hold it read-only; memory is fresh
    kExclusive,  ///< exactly one cache holds it E or M
    kOwned,      ///< MOESI only: `owner` holds it O (dirty), the other
                 ///< sharers hold S, and home memory is stale — reads are
                 ///< forwarded from the owner instead of memory
  };

  State state = State::kUncached;
  std::uint64_t sharers = 0;   ///< bitset over nodes (full-map)
  NodeId owner = kNoNode;      ///< valid when state == kExclusive/kOwned

  bool is_sharer(NodeId n) const { return (sharers >> n) & 1u; }
  void add_sharer(NodeId n) { sharers |= (1ull << n); }
  void remove_sharer(NodeId n) { sharers &= ~(1ull << n); }
  unsigned sharer_count() const;
};

/// The directory slice held by one home node. Entries are created lazily;
/// an absent entry means kUncached.
class Directory {
 public:
  /// `expected_lines` pre-sizes the slice: under uniform (round-robin
  /// page) homing a slice tracks about one node's worth of L2 lines, so
  /// the fabric passes cfg.l2 capacity in lines and the table starts at
  /// its steady-state size — the warm-up growth rebuilds that used to
  /// cost ~14% of the hot profile never happen. 0 keeps the small
  /// default (tests, standalone slices). Growth past the pre-size (a
  /// skewed homing distribution) rebuilds at 4x, not 2x, so even then
  /// the rebuild count stays logarithmically small.
  explicit Directory(NodeId home, std::size_t expected_lines = 0);

  NodeId home() const { return home_; }

  /// Mutable entry (creating an Uncached one on demand). The reference is
  /// invalidated by the next entry(), erase(), or compact() on this slice
  /// (the table may resize/rebuild or shift entries) — don't hold it
  /// across any of them.
  DirEntry& entry(Addr line_addr);

  /// Read-only lookup; returns a value copy (Uncached default if absent).
  DirEntry peek(Addr line_addr) const;

  /// Hints the host to pull `line_addr`'s first probe slot (key and entry
  /// lanes) into its caches. Pure latency hint — no simulated effect; the
  /// fabric issues it at the top of access() so a later entry()/erase()
  /// for the line finds its slot already in flight.
  void prefetch(Addr line_addr) const {
    const std::size_t i = slot_of(line_addr);
    __builtin_prefetch(&keys_[i]);
    __builtin_prefetch(&entries_[i]);
  }

  /// Removes the entry for `line_addr` in place (no-op when absent).
  /// Backward-shift deletion closes the probe-chain gap, so the table
  /// never holds tombstones or dead entries: O(1) amortized at the
  /// <= 1/2 load entry() maintains, allocation-free, and probe chains
  /// stay as short as a freshly built table. The fabric calls this the
  /// moment a line's last cached copy disappears, which bounds slice
  /// memory to the lines actually cached — the periodic compact() walk
  /// the fabric used to amortize (and its small-machine gating) is gone
  /// from the access path entirely.
  /// Invalidates references returned by entry().
  void erase(Addr line_addr);

  /// Drops entries that returned to kUncached and shrinks a hugely
  /// sparse table. O(capacity): rebuilds the table around the survivors,
  /// rehashing into spare lanes retained from the previous rebuild
  /// (allocation-free at steady capacity). Bulk form of erase() for
  /// callers that mark entries dead without erasing (tests, offline
  /// consumers); the fabric no longer needs it.
  void compact();

  std::size_t tracked_lines() const { return size_; }

  std::size_t capacity() const { return keys_.size(); }

  /// Observability hook: every entry()/erase() records its probe length
  /// (slots walked past the home slot) into `h`. A null handle — the
  /// default — costs one predicted branch per probe.
  void set_probe_histogram(obs::HistogramHandle h) { probe_hist_ = h; }

  /// Verifies the slice's open-addressing invariants and aborts on
  /// violation: load stays at or below the 1/2 entry() maintains (a full
  /// table would spin the probe loops forever), every stored key is
  /// reachable from its home slot through occupied slots only (backward-
  /// shift erase() must never break a probe chain), probe length never
  /// exceeds the live-entry count (hence never the slice capacity), and
  /// size_ matches the occupied slots. O(capacity + total probe length);
  /// for tests.
  void check_invariants() const;

 private:
  /// Key-lane value of an unused slot. Real keys are line addresses with
  /// their low (line-offset) bits clear, so all-ones can never collide.
  static constexpr Addr kEmptyKey = ~Addr{0};

  std::size_t slot_of(Addr key) const {
    // Fibonacci hash: line addresses share their low (offset) zeros, so
    // spread via the top bits of key * golden-ratio. Locality-preserving
    // variants (sequential lines -> sequential slots) were tried and lose:
    // dense per-page runs collide into long linear-probe chains.
    return static_cast<std::size_t>(
               (key * 0x9e3779b97f4a7c15ull) >>
               (64 - static_cast<unsigned>(
                         std::countr_zero(keys_.size()))));
  }
  void rebuild(std::size_t new_cap);

  NodeId home_;
  std::size_t size_ = 0;  ///< used slots
  obs::HistogramHandle probe_hist_;  ///< null unless observability is on
  // SoA lanes, same capacity: keys_[i] == kEmptyKey marks slot i unused;
  // entries_[i] is meaningful only when keys_[i] holds a line address.
  std::vector<Addr> keys_;
  std::vector<DirEntry> entries_;
  /// Rebuild targets, swapped with the live lanes after every rehash and
  /// kept at the table's high-water capacity, so only a growth rebuild —
  /// the table reaching a new high-water mark, which warm-up exhausts —
  /// ever allocates. Costs at most 2x directory memory, which in-place
  /// erasure itself bounds to the lines actually cached.
  std::vector<Addr> spare_keys_;
  std::vector<DirEntry> spare_entries_;
};

}  // namespace dsm::coh
