// directory.hpp — per-home-node full-map directory state for the MESI
// protocol (one directory slice per node of the DSM, as in DASH/Origin-
// style machines the paper's simulated architecture follows).
//
// The slice is a flat open-addressing hash table (linear probing,
// power-of-two capacity, multiplicative hashing): the directory lookup sits
// on the miss path of every simulated access, and profiling showed the old
// node-based std::unordered_map — hash-bucket pointer chasing plus one
// malloc/free per tracked line — dominating the whole simulator.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dsm::coh {

/// Directory's view of one memory line.
struct DirEntry {
  enum class State : std::uint8_t {
    kUncached,   ///< no cache holds the line
    kShared,     ///< one or more caches hold it read-only
    kExclusive,  ///< exactly one cache holds it E or M
  };

  State state = State::kUncached;
  std::uint64_t sharers = 0;   ///< bitset over nodes (full-map)
  NodeId owner = kNoNode;      ///< valid when state == kExclusive

  bool is_sharer(NodeId n) const { return (sharers >> n) & 1u; }
  void add_sharer(NodeId n) { sharers |= (1ull << n); }
  void remove_sharer(NodeId n) { sharers &= ~(1ull << n); }
  unsigned sharer_count() const;
};

/// The directory slice held by one home node. Entries are created lazily;
/// an absent entry means kUncached.
class Directory {
 public:
  explicit Directory(NodeId home);

  NodeId home() const { return home_; }

  /// Mutable entry (creating an Uncached one on demand). The reference is
  /// invalidated by the next entry() or compact() on this slice (the table
  /// may resize/rebuild) — don't hold it across either.
  DirEntry& entry(Addr line_addr);

  /// Read-only lookup; returns a value copy (Uncached default if absent).
  DirEntry peek(Addr line_addr) const;

  /// Drops entries that returned to kUncached (bounds memory in long
  /// runs). O(capacity): rebuilds the table around the survivors.
  void compact();

  std::size_t tracked_lines() const { return size_; }

 private:
  struct Slot {
    Addr key = 0;
    bool used = false;
    DirEntry e;
  };

  std::size_t slot_of(Addr key) const {
    // Fibonacci hash: line addresses share their low (offset) zeros, so
    // spread via the top bits of key * golden-ratio. Locality-preserving
    // variants (sequential lines -> sequential slots) were tried and lose:
    // dense per-page runs collide into long linear-probe chains.
    return static_cast<std::size_t>(
               (key * 0x9e3779b97f4a7c15ull) >>
               (64 - static_cast<unsigned>(
                         std::countr_zero(slots_.size()))));
  }
  void rebuild(std::size_t new_cap);

  NodeId home_;
  std::size_t size_ = 0;  ///< used slots (live + not-yet-compacted)
  std::vector<Slot> slots_;
};

}  // namespace dsm::coh
