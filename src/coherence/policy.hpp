// policy.hpp — the coherence-protocol seam of the fabric: everything that
// distinguishes MSI from MESI from MOESI, folded into one table-driven
// value type (CohPolicy) the fabric consults instead of hard-coding MESI
// decisions inline.
//
// Dispatch discipline: the three protocol tables are constexpr objects;
// the fabric selects `const CohPolicy*` ONCE at construction from
// MachineConfig::protocol and every per-access decision is a table load
// or boolean test off that pointer — no virtual calls, no allocation, no
// branching on the Protocol enum anywhere on the access path. The MESI
// table reproduces the fabric's previous inline logic decision-for-
// decision, so --protocol=mesi (the default) is bit-identical to the
// pre-seam simulator.
//
// What actually varies between the protocols of this family:
//  * write permission of a cached state      -> `writable[]`
//  * the silent store-hit transition         -> `store_hit[]` (E->M)
//  * what a sole reader is granted           -> `sole_read_grant`,
//    and how the directory records it        -> `sole_read_dir`
//    (MESI/MOESI grant E speculatively; MSI grants S)
//  * what a dirty owner does on a read probe -> `has_owned`
//    (MOESI keeps the dirty line as Owned and forwards cache-to-cache
//    with NO memory writeback; MSI/MESI downgrade to S and refresh the
//    home memory with a sharing writeback)
// Everything else — the directory walk, invalidation fan-out, upgrade
// vs. fetch, eviction bookkeeping — is protocol-independent and stays in
// fabric.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "coherence/directory.hpp"
#include "common/config.hpp"
#include "memory/cache.hpp"

namespace dsm::coh {

/// Per-protocol transition/metadata tables. Per-state arrays are indexed
/// by static_cast<unsigned>(mem::LineState).
struct CohPolicy {
  Protocol protocol;
  const char* name;

  /// Which cached states satisfy a store without a directory transaction.
  std::array<bool, mem::kNumLineStates> writable;
  /// Next state on a store hit to a writable state (the silent E->M
  /// upgrade under MESI/MOESI; identity elsewhere). Only consulted for
  /// states `writable` admits.
  std::array<mem::LineState, mem::kNumLineStates> store_hit;
  /// Which cached states the protocol can ever install (invariant checks).
  std::array<bool, mem::kNumLineStates> reachable;

  /// State granted to the sole cacher on a read of an uncached line, and
  /// the directory state recording it. MESI/MOESI: E / kExclusive (a
  /// later store upgrades silently); MSI: S / kShared.
  mem::LineState sole_read_grant;
  DirEntry::State sole_read_dir;

  /// True when the protocol has an Owned state: a dirty owner answering a
  /// read probe keeps its data as O (directory -> kOwned, owner retained)
  /// and forwards cache-to-cache instead of downgrading to S behind a
  /// sharing writeback. Memory stays stale until the O copy is evicted.
  bool has_owned;
};

// clang-format off
// Table rows are per LineState:              I      S      E      M      O
inline constexpr CohPolicy kMsiPolicy{
    Protocol::kMsi, "msi",
    /*writable*/  {false, false, false, true,  false},
    /*store_hit*/ {mem::LineState::kInvalid, mem::LineState::kShared,
                   mem::LineState::kExclusive, mem::LineState::kModified,
                   mem::LineState::kOwned},
    /*reachable*/ {true,  true,  false, true,  false},
    mem::LineState::kShared, DirEntry::State::kShared,
    /*has_owned*/ false,
};

inline constexpr CohPolicy kMesiPolicy{
    Protocol::kMesi, "mesi",
    /*writable*/  {false, false, true,  true,  false},
    /*store_hit*/ {mem::LineState::kInvalid, mem::LineState::kShared,
                   mem::LineState::kModified, mem::LineState::kModified,
                   mem::LineState::kOwned},
    /*reachable*/ {true,  true,  true,  true,  false},
    mem::LineState::kExclusive, DirEntry::State::kExclusive,
    /*has_owned*/ false,
};

inline constexpr CohPolicy kMoesiPolicy{
    Protocol::kMoesi, "moesi",
    /*writable*/  {false, false, true,  true,  false},
    /*store_hit*/ {mem::LineState::kInvalid, mem::LineState::kShared,
                   mem::LineState::kModified, mem::LineState::kModified,
                   mem::LineState::kOwned},
    /*reachable*/ {true,  true,  true,  true,  true},
    mem::LineState::kExclusive, DirEntry::State::kExclusive,
    /*has_owned*/ true,
};
// clang-format on

/// The table for `p`; a reference to one of the constexpr objects above.
const CohPolicy& policy_for(Protocol p);

/// True when `s` is a state `pol` can install in a cache (I always is).
inline bool state_allowed(const CohPolicy& pol, mem::LineState s) {
  return pol.reachable[static_cast<unsigned>(s)];
}

/// True when a store to a line cached in `s` needs no directory work.
inline bool store_permitted(const CohPolicy& pol, mem::LineState s) {
  return pol.writable[static_cast<unsigned>(s)];
}

}  // namespace dsm::coh
