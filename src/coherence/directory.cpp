#include "coherence/directory.hpp"

#include <bit>

namespace dsm::coh {

unsigned DirEntry::sharer_count() const {
  return static_cast<unsigned>(std::popcount(sharers));
}

DirEntry Directory::peek(Addr line_addr) const {
  const auto it = entries_.find(line_addr);
  return it == entries_.end() ? DirEntry{} : it->second;
}

void Directory::compact() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.state == DirEntry::State::kUncached && !it->second.sharers)
      it = entries_.erase(it);
    else
      ++it;
  }
}

}  // namespace dsm::coh
