#include "coherence/directory.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm::coh {

namespace {
/// Initial slot count per slice: small enough to be free at 64 nodes,
/// large enough that short runs never rebuild.
constexpr std::size_t kInitialSlots = 1024;
}  // namespace

unsigned DirEntry::sharer_count() const {
  return static_cast<unsigned>(std::popcount(sharers));
}

Directory::Directory(NodeId home)
    : home_(home),
      slots_(kInitialSlots) {}

DirEntry& Directory::entry(Addr line_addr) {
  // Keep load below 1/2 before probing so the returned reference is not
  // invalidated by this call's own insert.
  if ((size_ + 1) * 2 > slots_.size()) rebuild(slots_.size() * 2);
  std::size_t i = slot_of(line_addr);
  const std::size_t mask = slots_.size() - 1;
  while (slots_[i].used) {
    if (slots_[i].key == line_addr) return slots_[i].e;
    i = (i + 1) & mask;
  }
  Slot& s = slots_[i];
  s.used = true;
  s.key = line_addr;
  s.e = DirEntry{};
  ++size_;
  return s.e;
}

DirEntry Directory::peek(Addr line_addr) const {
  std::size_t i = slot_of(line_addr);
  const std::size_t mask = slots_.size() - 1;
  while (slots_[i].used) {
    if (slots_[i].key == line_addr) return slots_[i].e;
    i = (i + 1) & mask;
  }
  return DirEntry{};
}

void Directory::rebuild(std::size_t new_cap) {
  DSM_ASSERT(is_pow2(new_cap) && new_cap >= size_ * 2);
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_cap, Slot{});
  const std::size_t mask = new_cap - 1;
  for (const Slot& s : old) {
    if (!s.used) continue;
    std::size_t i = slot_of(s.key);
    while (slots_[i].used) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

void Directory::compact() {
  // Drop dead (Uncached, no sharers) entries, then rebuild: open
  // addressing cannot erase in place without breaking probe chains.
  std::size_t live = 0;
  for (Slot& s : slots_) {
    if (!s.used) continue;
    if (s.e.state == DirEntry::State::kUncached && s.e.sharers == 0) {
      s.used = false;
      --size_;
    } else {
      ++live;
    }
  }
  // Shrink only when hugely sparse (target ≤ 25% load with another 2x of
  // insert headroom) so a compact near the grow threshold cannot thrash
  // between halving and immediately re-doubling.
  std::size_t cap = slots_.size();
  while (cap > kInitialSlots && live * 8 <= cap) cap /= 2;
  rebuild(cap);
}

}  // namespace dsm::coh
