#include "coherence/directory.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/bitops.hpp"
#include "obs/prof.hpp"

namespace dsm::coh {

namespace {
/// Initial slot count per slice: small enough to be free at 64 nodes,
/// large enough that short runs never rebuild.
constexpr std::size_t kInitialSlots = 1024;

/// Pre-size ceiling: 2^20 slots keeps a deliberately oversized hint from
/// committing more than ~24 MB of lanes per slice up front; a genuinely
/// larger working set still grows normally from there.
constexpr std::size_t kMaxPresizeSlots = std::size_t{1} << 20;

/// Capacity for `expected_lines` entries at the <= 1/2 load entry()
/// maintains: next power of two at or above 2x the expectation.
std::size_t presize_slots(std::size_t expected_lines) {
  if (expected_lines == 0) return kInitialSlots;
  std::size_t cap = std::bit_ceil(expected_lines * 2);
  if (cap < kInitialSlots) cap = kInitialSlots;
  if (cap > kMaxPresizeSlots) cap = kMaxPresizeSlots;
  return cap;
}
}  // namespace

unsigned DirEntry::sharer_count() const {
  return static_cast<unsigned>(std::popcount(sharers));
}

Directory::Directory(NodeId home, std::size_t expected_lines)
    : home_(home),
      keys_(presize_slots(expected_lines), kEmptyKey),
      entries_(keys_.size()) {}

DirEntry& Directory::entry(Addr line_addr) {
  DSM_ASSERT(line_addr != kEmptyKey);
  DSM_PROF_SCOPE(kDirProbe);
  // Keep load below 1/2 before probing so the returned reference is not
  // invalidated by this call's own insert. Growth jumps 4x: a slice that
  // outruns its pre-size is mid-warm-up, and quartering the rebuild count
  // costs at most one doubling of the final table.
  if ((size_ + 1) * 2 > keys_.size()) rebuild(keys_.size() * 4);
  const std::size_t start = slot_of(line_addr);
  const std::size_t mask = keys_.size() - 1;
  std::size_t i = start;
  while (keys_[i] != kEmptyKey) {
    if (keys_[i] == line_addr) {
      probe_hist_.record((i - start) & mask);
      return entries_[i];
    }
    i = (i + 1) & mask;
  }
  probe_hist_.record((i - start) & mask);
  keys_[i] = line_addr;
  entries_[i] = DirEntry{};
  ++size_;
  return entries_[i];
}

DirEntry Directory::peek(Addr line_addr) const {
  std::size_t i = slot_of(line_addr);
  const std::size_t mask = keys_.size() - 1;
  while (keys_[i] != kEmptyKey) {
    if (keys_[i] == line_addr) return entries_[i];
    i = (i + 1) & mask;
  }
  return DirEntry{};
}

void Directory::erase(Addr line_addr) {
  const std::size_t mask = keys_.size() - 1;
  const std::size_t start = slot_of(line_addr);
  std::size_t i = start;
  while (keys_[i] != kEmptyKey && keys_[i] != line_addr) i = (i + 1) & mask;
  probe_hist_.record((i - start) & mask);
  if (keys_[i] == kEmptyKey) return;  // absent
  // Backward-shift deletion (Knuth 6.4 R): walk the cluster after the
  // hole; an element whose home slot lies cyclically outside (hole, j]
  // probed through the hole to reach j, so it must slide back into it.
  std::size_t hole = i;
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    if (keys_[j] == kEmptyKey) break;
    const std::size_t h = slot_of(keys_[j]);
    const bool passes_hole =
        hole <= j ? (h <= hole || h > j) : (h <= hole && h > j);
    if (passes_hole) {
      keys_[hole] = keys_[j];
      entries_[hole] = entries_[j];
      hole = j;
    }
  }
  keys_[hole] = kEmptyKey;
  --size_;
}

void Directory::rebuild(std::size_t new_cap) {
  DSM_ASSERT(is_pow2(new_cap) && new_cap >= size_ * 2);
  // Rehash into the spare lanes, then swap: allocation-free unless
  // new_cap exceeds the high-water capacity (growth — a warm-up event).
  if (spare_keys_.capacity() < new_cap) spare_keys_.reserve(new_cap);
  if (spare_entries_.capacity() < new_cap) spare_entries_.reserve(new_cap);
  spare_keys_.assign(new_cap, kEmptyKey);
  spare_entries_.assign(new_cap, DirEntry{});
  spare_keys_.swap(keys_);
  spare_entries_.swap(entries_);
  const std::size_t mask = new_cap - 1;
  for (std::size_t s = 0; s < spare_keys_.size(); ++s) {
    if (spare_keys_[s] == kEmptyKey) continue;
    std::size_t i = slot_of(spare_keys_[s]);
    while (keys_[i] != kEmptyKey) i = (i + 1) & mask;
    keys_[i] = spare_keys_[s];
    entries_[i] = spare_entries_[s];
  }
}

void Directory::check_invariants() const {
  const std::size_t cap = keys_.size();
  DSM_ASSERT_MSG(is_pow2(cap), "slice capacity must be a power of two");
  // A table at or past half load would let entry()'s insert walk
  // arbitrarily far — and a FULL table would spin the probe loops
  // forever. entry() grows before this can happen; erase() only shrinks
  // the load. (size_ == number of live keys, checked below.)
  DSM_ASSERT_MSG(size_ * 2 <= cap, "slice load exceeds 1/2");
  const std::size_t mask = cap - 1;
  std::size_t used = 0;
  for (std::size_t i = 0; i < cap; ++i) {
    if (keys_[i] == kEmptyKey) continue;
    ++used;
    // The probe length of keys_[i] — its cyclic distance from its home
    // slot — can never exceed the live-entry count (a linear-probe chain
    // is a run of occupied slots), let alone the slice capacity.
    const std::size_t home = slot_of(keys_[i]);
    const std::size_t dist = (i - home) & mask;
    DSM_ASSERT_MSG(dist <= size_, "probe length exceeds live entries");
    DSM_ASSERT_MSG(dist < cap, "probe length exceeds slice capacity");
    // Findability: the chain from the home slot must reach slot i
    // without crossing an empty slot, or entry()/peek()/erase() would
    // miss a stored key — the failure a buggy backward-shift causes.
    for (std::size_t j = home; j != i; j = (j + 1) & mask)
      DSM_ASSERT_MSG(keys_[j] != kEmptyKey,
                     "probe chain to a live key crosses an empty slot");
  }
  DSM_ASSERT_MSG(used == size_, "size_ disagrees with occupied slots");
}

void Directory::compact() {
  // Drop dead (Uncached, no sharers) entries, then rebuild: open
  // addressing cannot bulk-erase in place without breaking probe chains.
  std::size_t live = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == kEmptyKey) continue;
    if (entries_[i].state == DirEntry::State::kUncached &&
        entries_[i].sharers == 0) {
      keys_[i] = kEmptyKey;
      --size_;
    } else {
      ++live;
    }
  }
  // Shrink only when hugely sparse (target ≤ 25% load with another 2x of
  // insert headroom) so a compact near the grow threshold cannot thrash
  // between halving and immediately re-doubling.
  std::size_t cap = keys_.size();
  while (cap > kInitialSlots && live * 8 <= cap) cap /= 2;
  rebuild(cap);
}

}  // namespace dsm::coh
