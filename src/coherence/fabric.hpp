// fabric.hpp — the coherence fabric: per-node L1/L2 cache hierarchies, the
// distributed full-map directory, home memory controllers, and the
// interconnect, composed into a single `access()` entry point used by the
// core model for every committed load/store.
//
// The protocol the fabric runs (MSI, MESI — the paper's baseline — or
// MOESI) is a CohPolicy table (coherence/policy.hpp) selected once at
// construction from MachineConfig::protocol; the access path reads the
// table through one pointer and never branches on the Protocol enum.
//
// Timing approximation: remote caches are mutated functionally at request
// time while all latency is charged to the requestor — the standard
// approximation in deterministic, cooperatively scheduled DSM simulators.
// Clean (S/E) evictions update the directory precisely without a message;
// dirty (M, and MOESI's O) evictions pay the full writeback path.
#pragma once

#include <cstdint>
#include <vector>

#include "coherence/directory.hpp"
#include "coherence/policy.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "memory/cache.hpp"
#include "memory/home_map.hpp"
#include "memory/mem_controller.hpp"
#include "network/network.hpp"

namespace dsm::coh {

/// Where the data for an access finally came from.
enum class DataSource : std::uint8_t {
  kL1,           ///< L1 hit with sufficient permission
  kL2,           ///< L2 hit with sufficient permission
  kLocalMem,     ///< home == requestor, served by local DRAM
  kRemoteMem,    ///< home != requestor, served by remote DRAM
  kRemoteCache,  ///< cache-to-cache transfer from the previous owner
  kUpgrade,      ///< data was present; only write permission was acquired
};

const char* data_source_name(DataSource s);

/// Result of one committed load/store.
struct AccessOutcome {
  Cycle latency = 0;         ///< total cycles, before MLP overlap
  DataSource source = DataSource::kL1;
  NodeId home = 0;           ///< home node of the accessed line
  bool l1_hit = false;
  bool write = false;
  unsigned invalidations = 0;  ///< remote copies invalidated
};

/// Per-node protocol statistics.
struct NodeCoherenceStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t local_mem = 0;
  std::uint64_t remote_mem = 0;
  std::uint64_t cache_to_cache = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t writebacks = 0;
};

class CoherenceFabric {
 public:
  CoherenceFabric(const MachineConfig& cfg, net::Network& network,
                  mem::HomeMap& home_map);

  /// Performs one committed load (is_write=false) or store (is_write=true)
  /// by `node` at local time `now`.
  AccessOutcome access(NodeId node, Addr addr, bool is_write, Cycle now);

  mem::Cache& l1(NodeId n);
  mem::Cache& l2(NodeId n);
  const mem::Cache& l1(NodeId n) const;
  const mem::Cache& l2(NodeId n) const;
  Directory& directory(NodeId home);
  mem::MemController& controller(NodeId home);
  const NodeCoherenceStats& stats(NodeId n) const;
  mem::HomeMap& home_map() { return *home_map_; }

  unsigned nodes() const { return cfg_.num_nodes; }
  unsigned line_bytes() const { return cfg_.l2.line_bytes; }

  /// The protocol tables this fabric was constructed with.
  const CohPolicy& policy() const { return *pol_; }

  /// Drops all cached state (between benchmark runs).
  void flush_all();

  /// Verifies global coherence invariants (single owner, inclusive
  /// hierarchy, directory/cache agreement), including the per-protocol
  /// ones: no state the policy cannot install (no E under MSI, no O
  /// outside MOESI), and every Owned line registered to exactly one
  /// owner whose directory entry is kOwned. Aborts on violation. For
  /// tests.
  void check_invariants() const;

 private:
  struct Node {
    mem::Cache l1;
    mem::Cache l2;
    Directory dir;
    mem::MemController ctrl;
    NodeCoherenceStats stats;
    Node(const MachineConfig& cfg, NodeId id);
  };

  /// Serves a miss/upgrade at the directory; returns added latency.
  /// `l1_ref`/`l2_ref` are the requestor's cached tag-walk results from
  /// access() (l2_ref valid ⇔ the L2 holds the line, i.e. an upgrade);
  /// they stay valid here because the directory path only mutates *other*
  /// nodes' caches before the local install.
  Cycle directory_request(NodeId requestor, Addr line, bool is_write,
                          Cycle now, AccessOutcome& out,
                          mem::Cache::LineRef l1_ref,
                          mem::Cache::LineRef l2_ref);

  /// Installs `line` into requestor's L2+L1 with state `st`, handling
  /// inclusion victims and dirty writebacks. Returns added latency.
  Cycle fill_hierarchy(NodeId requestor, Addr line, mem::LineState st, Cycle now);

  /// Handles an L2 victim: directory update + writeback if dirty.
  Cycle handle_l2_eviction(NodeId evictor, const mem::Victim& v, Cycle now);

  unsigned control_bytes() const { return cfg_.network.control_bytes; }
  unsigned data_bytes() const { return cfg_.l2.line_bytes; }

  const MachineConfig& cfg_;
  /// Protocol tables, selected once in the constructor — the only
  /// protocol dispatch the fabric ever performs.
  const CohPolicy* pol_;
  net::Network& network_;
  mem::HomeMap* home_map_;
  /// Node state by value: the per-access path indexes straight into the
  /// vector with no per-node pointer chase (nodes are emplaced once at
  /// construction and never move).
  std::vector<Node> nodes_;
};

}  // namespace dsm::coh
