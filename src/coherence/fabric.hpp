// fabric.hpp — the coherence fabric: per-node L1/L2 cache hierarchies, the
// distributed full-map directory, home memory controllers, and the
// interconnect, composed into a single `access()` entry point used by the
// core model for every committed load/store.
//
// The protocol the fabric runs (MSI, MESI — the paper's baseline — or
// MOESI) is a CohPolicy table (coherence/policy.hpp) selected once at
// construction from MachineConfig::protocol; the access path reads the
// table through one pointer and never branches on the Protocol enum.
//
// Timing approximation: remote caches are mutated functionally at request
// time while all latency is charged to the requestor — the standard
// approximation in deterministic, cooperatively scheduled DSM simulators.
// Clean (S/E) evictions update the directory precisely without a message;
// dirty (M, and MOESI's O) evictions pay the full writeback path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "coherence/directory.hpp"
#include "coherence/policy.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "memory/cache.hpp"
#include "memory/home_map.hpp"
#include "memory/mem_controller.hpp"
#include "network/network.hpp"
#include "obs/observability.hpp"

namespace dsm::coh {

/// Where the data for an access finally came from.
enum class DataSource : std::uint8_t {
  kL1,           ///< L1 hit with sufficient permission
  kL2,           ///< L2 hit with sufficient permission
  kLocalMem,     ///< home == requestor, served by local DRAM
  kRemoteMem,    ///< home != requestor, served by remote DRAM
  kRemoteCache,  ///< cache-to-cache transfer from the previous owner
  kUpgrade,      ///< data was present; only write permission was acquired
};

const char* data_source_name(DataSource s);

/// Result of one committed load/store.
struct AccessOutcome {
  Cycle latency = 0;         ///< total cycles, before MLP overlap
  DataSource source = DataSource::kL1;
  NodeId home = 0;           ///< home node of the accessed line
  bool l1_hit = false;
  bool write = false;
  unsigned invalidations = 0;  ///< remote copies invalidated
};

/// Per-node protocol statistics.
struct NodeCoherenceStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t local_mem = 0;
  std::uint64_t remote_mem = 0;
  std::uint64_t cache_to_cache = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t writebacks = 0;
};

class CoherenceFabric {
 public:
  /// `obs` (optional) attaches the observability layer: protocol-
  /// transition / fill / eviction counters, the directory probe-length
  /// histogram, batch staging diagnostics (host-class), and the event
  /// trace. Null — the default — leaves every handle null: the hot path
  /// pays one predicted branch per site and nothing else. Counters and
  /// trace events fire only at simulated-event sites, so their values
  /// are identical across --threads/--shards/--batch.
  CoherenceFabric(const MachineConfig& cfg, net::Network& network,
                  mem::HomeMap& home_map, obs::Observability* obs = nullptr);

  /// Performs one committed load (is_write=false) or store (is_write=true)
  /// by `node` at local time `now`.
  AccessOutcome access(NodeId node, Addr addr, bool is_write, Cycle now);

  /// Serial fast path for batching callers: if the access L1-hits with
  /// sufficient permission, completes it exactly as access() would
  /// (stats, LRU touch, silent store-hit upgrade, outcome) and returns
  /// true; otherwise returns false with NO simulated side effects. Lets
  /// a gatherer serve hit runs inline — where batching buys nothing,
  /// since the stage-1 prefetch overlap only pays on misses — and defer
  /// only miss-adjacent runs into access_batch().
  bool access_l1_fast(NodeId node, Addr addr, bool is_write,
                      AccessOutcome& out);

  /// One member of an access_batch() group.
  struct AccessReq {
    Addr addr = 0;
    bool write = false;
    NodeId node = 0;
  };

  /// Upper bound on one access_batch() group (all staging lives in stack
  /// arrays of this size, preserving the zero-allocation steady state).
  static constexpr std::size_t kMaxBatch = 64;

  /// Sentinel an advance callback returns to stop the batch after the
  /// member it was called for (e.g. the simulated thread must yield).
  static constexpr Cycle kBatchStop = ~Cycle{0};

  /// Called after each batch member completes, with its index and
  /// outcome; returns the local time of the NEXT member, or kBatchStop to
  /// end the batch early. This is how sim::Machine threads its per-access
  /// clock/stall bookkeeping through a batch while keeping the simulated
  /// sequence bit-identical to serial access() calls.
  using BatchAdvanceFn = Cycle (*)(void* ctx, std::size_t index,
                                   const AccessOutcome& out);

  /// Batched, software-pipelined form of access(): processes up to
  /// kMaxBatch requests in SoA stages. Stage 1 walks every member's
  /// L1/L2 tag lanes (const — no LRU movement, no counters) and puts the
  /// host-DRAM lines the resolution will need in flight: the L2 set
  /// lanes, the home directory slot, and — for each predicted miss — the
  /// predicted victim's home-directory slot. Stage 2/3 then resolve the
  /// members strictly in order through the same directory/protocol/fill
  /// code the serial path runs, reusing the staged walks when still
  /// fresh (a per-set disturbance mask re-walks any set an earlier
  /// member mutated, so same-line and same-set conflicts degrade to
  /// ordered singles instead of going wrong). Simulated output —
  /// outcomes, stats, LRU/tick order, directory state — is bit-identical
  /// to issuing the same requests serially at the times the advance
  /// callback reports. Without a callback all members run at `now`,
  /// matching serial calls at a fixed clock. Returns how many members
  /// completed (== reqs.size() unless the callback stopped early);
  /// outs[i] is valid for exactly the completed members.
  std::size_t access_batch(std::span<const AccessReq> reqs,
                           std::span<AccessOutcome> outs, Cycle now,
                           BatchAdvanceFn advance = nullptr,
                           void* ctx = nullptr);

  mem::Cache& l1(NodeId n);
  mem::Cache& l2(NodeId n);
  const mem::Cache& l1(NodeId n) const;
  const mem::Cache& l2(NodeId n) const;
  Directory& directory(NodeId home);
  mem::MemController& controller(NodeId home);
  const NodeCoherenceStats& stats(NodeId n) const;
  mem::HomeMap& home_map() { return *home_map_; }

  unsigned nodes() const { return cfg_.num_nodes; }
  unsigned line_bytes() const { return cfg_.l2.line_bytes; }

  /// The protocol tables this fabric was constructed with.
  const CohPolicy& policy() const { return *pol_; }

  /// Drops all cached state (between benchmark runs).
  void flush_all();

  /// Verifies global coherence invariants (single owner, inclusive
  /// hierarchy, directory/cache agreement), including the per-protocol
  /// ones: no state the policy cannot install (no E under MSI, no O
  /// outside MOESI), and every Owned line registered to exactly one
  /// owner whose directory entry is kOwned. Aborts on violation. For
  /// tests.
  void check_invariants() const;

 private:
  struct Node {
    mem::Cache l1;
    mem::Cache l2;
    Directory dir;
    mem::MemController ctrl;
    NodeCoherenceStats stats;
    Node(const MachineConfig& cfg, NodeId id);
  };

  /// Host-side set-disturbance masks for one access_batch() group: which
  /// cache sets the members processed so far have mutated, per node, at
  /// bit `set & 63` (aliasing is conservative — a false positive only
  /// costs a re-walk). `l1`/`l2` record structural changes
  /// (fill/invalidate), which stale any staged handle into the set;
  /// `l2_moved` records pure LRU movement (touch), which stales only a
  /// staged miss cursor's victim choice. Serial access() passes nullptr
  /// and skips all bookkeeping.
  ///
  /// The per-node mask lanes are cleared LAZILY (the `*_nodes` bitmaps
  /// say which lanes are live): most batches disturb nothing, and a
  /// flush-forced short batch must not pay a 1.5KB memset up front —
  /// construction touches three words, every operation is O(1).
  struct BatchScope {
    std::uint64_t l1[64];        ///< valid only where l1_nodes has the bit
    std::uint64_t l2[64];        ///< valid only where l2_nodes has the bit
    std::uint64_t l2_moved[64];  ///< valid only where l2_moved_nodes has it
    std::uint64_t l1_nodes = 0;
    std::uint64_t l2_nodes = 0;
    std::uint64_t l2_moved_nodes = 0;
    static std::uint64_t bit(std::uint64_t set) {
      return std::uint64_t{1} << (set & 63);
    }
    static bool live(std::uint64_t nodes, NodeId n) {
      return ((nodes >> n) & 1) != 0;
    }
    void note_l1(NodeId n, std::uint64_t set) {
      if (!live(l1_nodes, n)) { l1_nodes |= std::uint64_t{1} << n; l1[n] = 0; }
      l1[n] |= bit(set);
    }
    void note_l2(NodeId n, std::uint64_t set) {
      if (!live(l2_nodes, n)) { l2_nodes |= std::uint64_t{1} << n; l2[n] = 0; }
      l2[n] |= bit(set);
    }
    void note_l2_moved(NodeId n, std::uint64_t set) {
      if (!live(l2_moved_nodes, n)) {
        l2_moved_nodes |= std::uint64_t{1} << n;
        l2_moved[n] = 0;
      }
      l2_moved[n] |= bit(set);
    }
    bool l1_stale(NodeId n, std::uint64_t set) const {
      return live(l1_nodes, n) && (l1[n] & bit(set)) != 0;
    }
    bool l2_ref_stale(NodeId n, std::uint64_t set) const {
      return live(l2_nodes, n) && (l2[n] & bit(set)) != 0;
    }
    bool l2_cursor_stale(NodeId n, std::uint64_t set) const {
      const std::uint64_t m = (live(l2_nodes, n) ? l2[n] : 0) |
                              (live(l2_moved_nodes, n) ? l2_moved[n] : 0);
      return (m & bit(set)) != 0;
    }
  };

  /// The access path shared by access() and access_batch(): everything
  /// after the line computation and the up-front prefetch hints.
  /// `l1_ref` is a fresh (or freshness-checked) L1 tag walk; `l2_cursor`
  /// is an optional staged L2 fused walk (nullptr → walk here); `scope`
  /// is the batch's disturbance mask, nullptr on the serial path.
  void do_access(NodeId node, Addr line, bool is_write, Cycle now,
                 AccessOutcome& out, mem::Cache::LineRef l1_ref,
                 const mem::Cache::FillCursor* l2_cursor, BatchScope* scope);

  /// Serves a miss/upgrade at the directory; returns added latency.
  /// `l1_ref`/`l2_cursor` are the requestor's cached tag-walk results
  /// from do_access() (l2_cursor.ref valid ⇔ the L2 holds the line, i.e.
  /// an upgrade; otherwise it carries the fill slot + predicted victim);
  /// they stay valid here because the directory path only mutates *other*
  /// nodes' caches before the local install.
  Cycle directory_request(NodeId requestor, Addr line, bool is_write,
                          Cycle now, AccessOutcome& out,
                          mem::Cache::LineRef l1_ref,
                          const mem::Cache::FillCursor& l2_cursor,
                          BatchScope* scope);

  /// Installs `line` into requestor's L2+L1 with state `st`, handling
  /// inclusion victims and dirty writebacks. The L2 allocation reuses the
  /// miss cursor's fused victim scan — no second set walk. Returns added
  /// latency.
  Cycle fill_hierarchy(NodeId requestor, Addr line, mem::LineState st,
                       Cycle now, const mem::Cache::FillCursor& l2_cursor,
                       BatchScope* scope);

  /// Handles an L2 victim: directory update + writeback if dirty.
  Cycle handle_l2_eviction(NodeId evictor, const mem::Victim& v, Cycle now,
                           BatchScope* scope);

  unsigned control_bytes() const { return cfg_.network.control_bytes; }
  unsigned data_bytes() const { return cfg_.l2.line_bytes; }

  /// Observability handles, all null when the layer is off. Grouped so
  /// the instrumented sites read as plain field accesses.
  struct ObsHooks {
    // Coherence transitions, one per directory-state × op switch arm.
    obs::CounterHandle trans_uncached_read, trans_uncached_write;
    obs::CounterHandle trans_shared_read, trans_shared_write;
    obs::CounterHandle trans_exclusive_read, trans_exclusive_write;
    obs::CounterHandle trans_owned_read, trans_owned_write;
    // Cache victim/refill classes.
    obs::CounterHandle fill_with_victim, fill_no_victim;
    obs::CounterHandle evict_writeback, evict_clean;
    // Host-class batch diagnostics ("host." prefix: excluded from the
    // deterministic snapshot — their values depend on --batch).
    obs::CounterHandle batch_groups, batch_members;
    obs::CounterHandle batch_staged_miss, batch_degrade;
  };

  const MachineConfig& cfg_;
  /// Protocol tables, selected once in the constructor — the only
  /// protocol dispatch the fabric ever performs.
  const CohPolicy* pol_;
  net::Network& network_;
  mem::HomeMap* home_map_;
  ObsHooks obs_;
  obs::TraceBuffer* trace_ = nullptr;  ///< null when tracing is off
  /// Node state by value: the per-access path indexes straight into the
  /// vector with no per-node pointer chase (nodes are emplaced once at
  /// construction and never move).
  std::vector<Node> nodes_;
};

}  // namespace dsm::coh
