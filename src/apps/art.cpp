#include "apps/art.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/thread_ctx.hpp"

namespace dsm::apps {
namespace {

constexpr BlockId kBbTrainAct = sim::bb_id("art.train.activation");
constexpr BlockId kBbTrainUpd = sim::bb_id("art.train.update");
constexpr BlockId kBbScanAct = sim::bb_id("art.scan.activation");
constexpr BlockId kBbScanReset = sim::bb_id("art.scan.reset");
constexpr BlockId kBbScanUpd = sim::bb_id("art.scan.update");
constexpr BlockId kBbScanMiss = sim::bb_id("art.scan.miss");
constexpr BlockId kBbScanHitBr = sim::bb_id("art.scan.hit_branch");

constexpr unsigned kWeightLock = 7;

struct ArtShared {
  // Host-side network + image (real arithmetic drives control flow).
  std::vector<double> image;           ///< image_h * image_w
  std::vector<double> bu;              ///< f2 * f1 bottom-up weights
  std::vector<double> td;              ///< f2 * f1 top-down weights
  std::vector<bool> committed;         ///< category committed?

  // Simulated layout.
  Addr image_addr = 0;
  Addr bu_addr = 0;
  Addr td_addr = 0;
  Addr found_addr = 0;  ///< per-processor hit counters (one line each)
};

/// Host-side ART resonance search over window features; returns the
/// winning category and how many reset iterations it took (0 resets means
/// first winner resonated), or f2 resets when nothing matched.
struct MatchResult {
  unsigned winner = 0;
  unsigned resets = 0;
  bool matched = false;
};

MatchResult art_match(const ArtShared& s, const ArtParams& p,
                      const std::vector<double>& feat) {
  double norm = 1e-9;
  for (const double f : feat) norm += f;
  std::vector<bool> masked(p.f2, false);
  MatchResult r;
  for (unsigned attempt = 0; attempt < p.f2; ++attempt) {
    // Bottom-up activation; pick the strongest unmasked category.
    double best = -1.0;
    unsigned win = 0;
    for (unsigned j = 0; j < p.f2; ++j) {
      if (masked[j]) continue;
      double a = 0.0;
      for (unsigned i = 0; i < p.f1; ++i) a += feat[i] * s.bu[j * p.f1 + i];
      if (a > best) {
        best = a;
        win = j;
      }
    }
    // Vigilance test against the top-down template: symmetric overlap,
    // so a dim (noise) window cannot trivially pass against a bright
    // template (sum-min over the input alone would).
    double match = 0.0, template_norm = 1e-9;
    for (unsigned i = 0; i < p.f1; ++i) {
      match += std::min(feat[i], s.td[win * p.f1 + i]);
      template_norm += s.td[win * p.f1 + i];
    }
    if (match / std::max(norm, template_norm) >= p.vigilance ||
        !s.committed[win]) {
      r.winner = win;
      r.resets = attempt;
      r.matched = s.committed[win];
      return r;
    }
    masked[win] = true;
    ++r.resets;
  }
  r.resets = p.f2;
  return r;
}

void host_learn(ArtShared& s, const ArtParams& p, unsigned winner,
                const std::vector<double>& feat) {
  const double beta = 0.4;
  for (unsigned i = 0; i < p.f1; ++i) {
    double& td = s.td[winner * p.f1 + i];
    double& bu = s.bu[winner * p.f1 + i];
    td = s.committed[winner] ? (1.0 - beta) * td + beta * feat[i] : feat[i];
    bu = td / (0.5 + static_cast<double>(p.f1) * 0.01);
  }
  s.committed[winner] = true;
}

}  // namespace

sim::AppFn make_art(const ArtParams& p) {
  auto shared = std::make_shared<ArtShared>();

  return [p, shared](sim::ThreadCtx& ctx) {
    ArtShared& s = *shared;
    const NodeId me = ctx.self();
    const unsigned nprocs = ctx.nprocs();
    const unsigned line = ctx.config().l2.line_bytes;
    auto instr = [&](double flops) {
      return static_cast<InstrCount>(std::max(1.0, flops * p.instr_per_flop));
    };
    const double act_flops = 2.0 * p.f1 * p.f2;  // matvec + winner search

    // ---- one-time setup ----
    if (me == 0) {
      Rng rng(0xa47ULL);
      s.image.assign(std::size_t{p.image_h} * p.image_w, 0.0);
      for (auto& px : s.image) px = 0.15 * rng.next_double();
      // Embed bright targets the training patterns are drawn from.
      std::vector<std::pair<unsigned, unsigned>> centers;
      for (unsigned t = 0; t < p.targets; ++t) {
        const unsigned cx = p.image_w / 4 + (t * p.image_w) / (2 * p.targets) +
                            p.image_w / 8;
        const unsigned cy = p.image_h / (p.targets + 1) * (t + 1);
        centers.emplace_back(cx, cy);
        for (unsigned dy = 0; dy < 24; ++dy)
          for (unsigned dx = 0; dx < 24; ++dx) {
            const unsigned x = (cx + dx) % p.image_w;
            const unsigned y = (cy + dy) % p.image_h;
            s.image[std::size_t{y} * p.image_w + x] =
                0.6 + 0.4 * std::sin(0.7 * dx) * std::cos(0.5 * dy);
          }
      }
      s.bu.assign(std::size_t{p.f2} * p.f1, 0.0);
      s.td.assign(std::size_t{p.f2} * p.f1, 0.0);
      s.committed.assign(p.f2, false);
      for (auto& w : s.bu) w = 0.1 + 0.05 * rng.next_double();
      for (auto& w : s.td) w = 0.2 + 0.05 * rng.next_double();

      const std::uint64_t image_bytes =
          8ull * p.image_w * p.image_h;
      s.image_addr = ctx.alloc_distributed(image_bytes);
      s.bu_addr = ctx.alloc(8ull * p.f2 * p.f1);
      s.td_addr = ctx.alloc(8ull * p.f2 * p.f1);
      s.found_addr = ctx.alloc_distributed(64ull * ctx.nprocs());
    }
    ctx.barrier();

    auto pixel_addr = [&](unsigned x, unsigned y) {
      return s.image_addr + 8ull * (std::size_t{y} * p.image_w + x);
    };
    /// Extract features of the window at (wx, wy): host values + simulated
    /// loads of the pixel lines.
    auto extract = [&](unsigned wx, unsigned wy, std::vector<double>& feat) {
      feat.resize(std::size_t{p.window} * p.window);
      for (unsigned dy = 0; dy < p.window; ++dy) {
        for (Addr a = pixel_addr(wx, wy + dy) & ~Addr{line - 1};
             a <= pixel_addr(wx + p.window - 1, wy + dy); a += line)
          ctx.load(a);
        for (unsigned dx = 0; dx < p.window; ++dx)
          feat[std::size_t{dy} * p.window + dx] =
              s.image[std::size_t{wy + dy} * p.image_w + (wx + dx)];
      }
    };
    /// Simulated cost of one activation + vigilance pass: stream the two
    /// weight matrices' rows.
    auto weight_pass_cost = [&](BlockId site) {
      const std::uint64_t row_bytes = 8ull * p.f1;
      for (unsigned j = 0; j < p.f2; ++j) {
        for (std::uint64_t off = 0; off < row_bytes; off += line) {
          ctx.load(s.bu_addr + j * row_bytes + off);
        }
      }
      ctx.bb(site, instr(act_flops), p.fp_frac);
    };
    /// Simulated cost of updating the winner's weight rows (exclusive).
    auto weight_update_cost = [&](unsigned winner, BlockId site) {
      const std::uint64_t row_bytes = 8ull * p.f1;
      ctx.lock(kWeightLock);
      for (std::uint64_t off = 0; off < row_bytes; off += line) {
        ctx.load(s.td_addr + winner * row_bytes + off);
        ctx.store(s.td_addr + winner * row_bytes + off);
        ctx.store(s.bu_addr + winner * row_bytes + off);
      }
      ctx.bb(site, instr(4.0 * p.f1), p.fp_frac);
      ctx.unlock(kWeightLock);
    };

    std::vector<double> feat;

    // ---- stage 1: training on patterns cut from the target regions ----
    for (unsigned epoch = 0; epoch < p.train_epochs; ++epoch) {
      for (unsigned pat = me; pat < p.train_patterns; pat += nprocs) {
        // Patterns tile the first target's neighbourhood deterministically.
        const unsigned wx =
            (p.image_w / 4 + p.image_w / 8 + (pat * 3) % 20) %
            (p.image_w - p.window);
        const unsigned wy =
            (p.image_h / (p.targets + 1) + (pat * 5) % 20) %
            (p.image_h - p.window);
        extract(wx, wy, feat);
        const auto m = art_match(s, p, feat);
        weight_pass_cost(kBbTrainAct);
        for (unsigned r = 0; r < m.resets; ++r)
          ctx.bb(kBbScanReset, instr(act_flops / p.f2), p.fp_frac);
        weight_update_cost(m.winner, kBbTrainUpd);
        // Host learning is serialized through the same lock the simulated
        // update used, so it is deterministic.
        ctx.lock(kWeightLock + 1);
        host_learn(s, p, m.winner, feat);
        ctx.unlock(kWeightLock + 1);
      }
      ctx.barrier();
    }

    // ---- stage 2: scanfield ----
    const unsigned wx_count = (p.image_w - p.window) / p.stride + 1;
    const unsigned wy_count = (p.image_h - p.window) / p.stride + 1;
    for (unsigned row = me; row < wy_count; row += nprocs) {
      const unsigned wy = row * p.stride;
      for (unsigned cxi = 0; cxi < wx_count; ++cxi) {
        const unsigned wx = cxi * p.stride;
        extract(wx, wy, feat);
        weight_pass_cost(kBbScanAct);
        const auto m = art_match(s, p, feat);
        for (unsigned r = 0; r < m.resets; ++r)
          ctx.bb(kBbScanReset, instr(act_flops / p.f2), p.fp_frac);
        // The recognition branch: taken when a committed category wins —
        // genuinely data-dependent direction, as in the real code's
        // vigilance test.
        ctx.branch(kBbScanHitBr, m.matched);
        if (m.matched && m.resets == 0) {
          // Resonance on a committed category: record the hit. The
          // scanfield stage is recognition-only (as in SPEC art) — weights
          // are not relearned, so the matrices stay read-shared.
          ctx.bb(kBbScanUpd, instr(2.0 * p.f1), p.fp_frac);
          ctx.store(s.found_addr + 64ull * ctx.self());
        } else {
          ctx.bb(kBbScanMiss, 8, 0.0);
        }
      }
    }
    ctx.barrier();
  };
}

}  // namespace dsm::apps
