#include "apps/micro.hpp"

#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "sim/thread_ctx.hpp"

namespace dsm::apps {
namespace {

constexpr BlockId kBbUniform = sim::bb_id("micro.uniform");
constexpr BlockId kBbCompute = sim::bb_id("micro.compute");
constexpr BlockId kBbMemory = sim::bb_id("micro.memory");
constexpr BlockId kBbShared = sim::bb_id("micro.shared_code");
constexpr BlockId kBbImbal = sim::bb_id("micro.imbalance");

}  // namespace

sim::AppFn make_uniform(const MicroParams& p) {
  auto local = std::make_shared<std::vector<Addr>>();
  return [p, local](sim::ThreadCtx& ctx) {
    if (ctx.self() == 0) {
      local->resize(ctx.nprocs());
      for (unsigned q = 0; q < ctx.nprocs(); ++q)
        (*local)[q] = ctx.alloc_on(p.array_bytes, q);
    }
    ctx.barrier();
    const Addr base = (*local)[ctx.self()];
    // Warm the working set so the steady state really is stationary
    // (random accesses alone would drip cold misses for many intervals).
    for (Addr a = base; a < base + p.array_bytes; a += 32) ctx.load(a);
    ctx.barrier();
    for (unsigned r = 0; r < p.repeats; ++r) {
      for (unsigned i = 0; i < p.iters_per_segment; ++i) {
        ctx.load(base + ctx.rng().next_below(p.array_bytes));
        ctx.bb(kBbUniform, 40, 0.3);
      }
      ctx.barrier();
    }
  };
}

sim::AppFn make_two_phase(const MicroParams& p) {
  auto local = std::make_shared<std::vector<Addr>>();
  return [p, local](sim::ThreadCtx& ctx) {
    if (ctx.self() == 0) {
      local->resize(ctx.nprocs());
      for (unsigned q = 0; q < ctx.nprocs(); ++q)
        (*local)[q] = ctx.alloc_on(p.array_bytes, q);
    }
    ctx.barrier();
    const Addr base = (*local)[ctx.self()];
    for (unsigned r = 0; r < p.repeats; ++r) {
      // Compute-heavy segment: long basic blocks, few accesses.
      for (unsigned i = 0; i < p.iters_per_segment; ++i)
        ctx.bb(kBbCompute, 120, 0.7);
      // Memory-heavy segment: streaming with short blocks.
      for (unsigned i = 0; i < p.iters_per_segment; ++i) {
        ctx.load(base + (std::uint64_t{i} * 32) % p.array_bytes);
        ctx.store(base + (std::uint64_t{i} * 32) % p.array_bytes);
        ctx.bb(kBbMemory, 6, 0.1);
      }
      ctx.barrier();
    }
  };
}

sim::AppFn make_hot_home(const MicroParams& p) {
  struct Shared {
    Addr hot = 0;
    std::vector<Addr> local;
  };
  auto s = std::make_shared<Shared>();
  return [p, s](sim::ThreadCtx& ctx) {
    if (ctx.self() == 0) {
      s->hot = ctx.alloc_on(p.array_bytes, 0);
      s->local.resize(ctx.nprocs());
      for (unsigned q = 0; q < ctx.nprocs(); ++q)
        s->local[q] = ctx.alloc_on(p.array_bytes, q);
    }
    ctx.barrier();
    const Addr mine = s->local[ctx.self()];
    for (unsigned r = 0; r < p.repeats; ++r) {
      // Segment A: everyone reads the node-0-homed array. Segment B:
      // everyone reads its own node-local array. Identical basic blocks,
      // identical instruction counts — only data distribution differs.
      for (unsigned half = 0; half < 2; ++half) {
        const Addr base = (half == 0) ? s->hot : mine;
        for (unsigned i = 0; i < p.iters_per_segment; ++i) {
          ctx.load(base + ctx.rng().next_below(p.array_bytes / 32) * 32);
          ctx.bb(kBbShared, 30, 0.3);
        }
        ctx.barrier();
      }
    }
  };
}

sim::AppFn make_imbalance(const MicroParams& p) {
  return [p](sim::ThreadCtx& ctx) {
    for (unsigned r = 0; r < p.repeats; ++r) {
      // A rotating third of the processors does triple work this round.
      const bool heavy =
          (ctx.self() + r) % 3 == 0 || ctx.nprocs() < 3;
      const unsigned iters = p.iters_per_segment * (heavy ? 3 : 1);
      for (unsigned i = 0; i < iters; ++i) ctx.bb(kBbImbal, 50, 0.4);
      ctx.barrier();
    }
  };
}

}  // namespace dsm::apps
