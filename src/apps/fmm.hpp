// fmm.hpp — SPLASH-2 FMM model: a 2-D fast multipole method over 65,536
// particles (the Table II input), time-stepped so the particle
// distribution — and with it the load balance and home-node access mix —
// drifts between steps.
//
// Structure per step: bin particles into the leaf grid; upward pass (P2M
// at the leaves, M2M up the quadtree); M2L across each cell's well-
// separated interaction list; downward pass (L2L, L2P); near-field direct
// interactions over a centralized task queue (dynamic load balancing, the
// execution model §III-B of the paper calls out); particle advance.
// Particles start sorted so each processor's chunk matches its cell
// region; cluster motion then erodes that locality — a time-varying
// remote-access pattern only the DDV can see.
#pragma once

#include "sim/machine.hpp"

namespace dsm::apps {

struct FmmParams {
  unsigned particles = 65536;  ///< paper input
  unsigned leaf_log2 = 7;      ///< leaf grid is 2^leaf_log2 per side
  unsigned min_level = 2;      ///< coarsest level carrying expansions
  unsigned steps = 4;          ///< simulated time steps
  unsigned terms = 4;          ///< multipole/local expansion terms
  unsigned clusters = 4;       ///< particle clusters (drive imbalance)
  double instr_per_flop = 2.0;
  double fp_frac = 0.7;
  double cluster_spread = 0.08;  ///< stddev of cluster offsets
  double orbit_per_step = 0.35;  ///< radians the clusters move per step
};

sim::AppFn make_fmm(const FmmParams& p);

}  // namespace dsm::apps
