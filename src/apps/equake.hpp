// equake.hpp — SPEC-OMP Equake model (Table II input "MinneSPEC-Large"):
// seismic wave propagation by explicit FEM time integration. The
// computational heart of Equake is smvp() — a sparse matrix-vector product
// over the stiffness matrix — followed by elementwise displacement/velocity
// vector updates each time step; an earthquake source term is active for a
// window of time steps around the event.
//
// We build the stiffness matrix as a 9-point-stencil CSR over a grid mesh
// (same row-sparsity regime as the unstructured tetrahedral mesh),
// partition rows contiguously per processor, and drive the source term at
// an epicenter owned by one node — so mid-run the load and the home-node
// traffic mix shift, then shift back: a temporal phase only visible to a
// detector that sees data distribution.
#pragma once

#include "sim/machine.hpp"

namespace dsm::apps {

struct EquakeParams {
  unsigned grid = 144;        ///< unknowns = grid^2
  unsigned timesteps = 120;
  unsigned quake_start = 25;  ///< first step with the source active
  unsigned quake_end = 65;    ///< last step with the source active
  double instr_per_flop = 3.0;
  double fp_frac = 0.6;
};

sim::AppFn make_equake(const EquakeParams& p);

}  // namespace dsm::apps
