// registry.hpp — name -> workload factory, with the Table II inputs as the
// paper scale and a proportionally reduced "bench" scale so the full
// figure sweeps finish in minutes. Benches and examples look apps up here.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace dsm::apps {

/// Workload scale presets.
enum class Scale {
  kPaper,  ///< Table II inputs (LU 512x512/16, FMM 65,536 particles, ...)
  kBench,  ///< ~1/4-size inputs for the shipped benchmark defaults
  kTest,   ///< small inputs for integration tests
};

struct AppInfo {
  std::string name;         ///< "LU", "FMM", "Art", "Equake"
  std::string input_paper;  ///< Table II description
  std::function<sim::AppFn(Scale)> factory;
};

/// The paper's four applications (Table II order).
const std::vector<AppInfo>& paper_apps();

/// Lookup by case-insensitive name; nullptr when unknown (for input
/// validation paths that must not abort).
const AppInfo* find_app(const std::string& name);

/// Lookup by case-insensitive name; aborts on unknown names.
const AppInfo& app_by_name(const std::string& name);

const char* scale_name(Scale s);

/// The sampling-interval length (1-processor basis) to pair with a scaled
/// run: the paper's 3M instructions shrunk by the workload's work ratio,
/// so every scale produces a comparable number of intervals per processor.
InstrCount scaled_interval(const std::string& app_name, Scale s,
                           InstrCount paper_interval = 3'000'000);

}  // namespace dsm::apps
