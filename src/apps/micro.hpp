// micro.hpp — small synthetic workloads with *known* phase structure, used
// by the test suite and the ablation benches to check detector properties
// the real apps can only suggest:
//
//  * uniform        — statistically stationary; a detector should settle
//                     on very few phases.
//  * two_phase      — alternates compute-heavy and memory-heavy segments
//                     with different basic blocks; BBV alone must separate
//                     them.
//  * hot_home       — alternates two segments executing the *identical*
//                     basic blocks and instruction counts, differing only
//                     in WHERE the data lives (node-0-homed array vs
//                     node-local array). Per the paper's core claim, BBV
//                     cannot tell these apart but BBV+DDV can.
//  * imbalance      — same code everywhere, but a rotating subset of
//                     processors does extra work between barriers.
#pragma once

#include "sim/machine.hpp"

namespace dsm::apps {

struct MicroParams {
  unsigned repeats = 6;            ///< phase alternations
  unsigned iters_per_segment = 3000;  ///< inner-loop iterations per segment
  std::uint64_t array_bytes = 1u << 18;
  std::uint64_t seed = 42;
};

sim::AppFn make_uniform(const MicroParams& p);
sim::AppFn make_two_phase(const MicroParams& p);
sim::AppFn make_hot_home(const MicroParams& p);
sim::AppFn make_imbalance(const MicroParams& p);

}  // namespace dsm::apps
