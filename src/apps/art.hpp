// art.hpp — SPEC-OMP Art model (Table II input "MinneSPEC-Large"):
// Adaptive Resonance Theory (ART-2) neural network scanning an image for
// learned objects.
//
// Two program stages: a short training stage that commits the object
// categories, then the dominant scanfield stage — a parallel sweep of a
// recognition window over the image. The ART match/reset loop is computed
// *for real* on host-side weights, so branch behaviour and weight-update
// (store + invalidation) activity genuinely depend on the image content:
// windows near embedded targets resonate and update shared weight pages,
// others mismatch quickly. Shared weight pages concentrate on a few home
// nodes — the access/contention signature the DDV is built to see.
#pragma once

#include "sim/machine.hpp"

namespace dsm::apps {

struct ArtParams {
  unsigned f1 = 100;          ///< input features (10x10 window)
  unsigned f2 = 12;           ///< category neurons
  unsigned train_epochs = 40;
  unsigned train_patterns = 16;
  unsigned image_w = 512;
  unsigned image_h = 512;
  unsigned window = 10;       ///< recognition window side
  unsigned stride = 2;        ///< scan stride
  unsigned targets = 2;       ///< objects embedded in the image
  double vigilance = 0.6;
  double instr_per_flop = 3.0;
  double fp_frac = 0.5;
};

sim::AppFn make_art(const ArtParams& p);

}  // namespace dsm::apps
