#include "apps/kernels.hpp"

#include "common/assert.hpp"

namespace dsm::apps {

void sweep_lines(sim::ThreadCtx& ctx, Addr base, std::uint64_t bytes,
                 bool write, BlockId site, InstrCount instr_per_line,
                 double fp_frac) {
  const unsigned line = ctx.config().l2.line_bytes;
  for (Addr a = base; a < base + bytes; a += line) {
    ctx.load(a);
    if (write) ctx.store(a);
    ctx.bb(site, instr_per_line, fp_frac);
  }
}

void stream_lines(sim::ThreadCtx& ctx, Addr src, Addr dst,
                  std::uint64_t bytes, BlockId site,
                  InstrCount instr_per_line, double fp_frac) {
  const unsigned line = ctx.config().l2.line_bytes;
  for (std::uint64_t off = 0; off < bytes; off += line) {
    ctx.load(src + off);
    ctx.store(dst + off);
    ctx.bb(site, instr_per_line, fp_frac);
  }
}

void block_update(sim::ThreadCtx& ctx, Addr dst, Addr a, Addr b,
                  std::uint64_t bytes, BlockId site,
                  InstrCount instr_per_line, double fp_frac) {
  const unsigned line = ctx.config().l2.line_bytes;
  for (std::uint64_t off = 0; off < bytes; off += line) {
    ctx.load(a + off);
    ctx.load(b + off);
    ctx.load(dst + off);
    ctx.store(dst + off);
    ctx.bb(site, instr_per_line, fp_frac);
  }
}

void block_update1(sim::ThreadCtx& ctx, Addr dst, Addr src,
                   std::uint64_t bytes, BlockId site,
                   InstrCount instr_per_line, double fp_frac) {
  const unsigned line = ctx.config().l2.line_bytes;
  for (std::uint64_t off = 0; off < bytes; off += line) {
    ctx.load(src + off);
    ctx.load(dst + off);
    ctx.store(dst + off);
    ctx.bb(site, instr_per_line, fp_frac);
  }
}

}  // namespace dsm::apps
