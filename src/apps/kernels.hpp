// kernels.hpp — building blocks shared by the application models.
//
// The apps simulate memory behaviour at cache-line granularity: every
// distinct line of a working set is really loaded/stored through the
// coherence fabric, while the arithmetic *between* lines is charged in
// bulk via compute(). This keeps paper-size inputs tractable without
// changing miss rates, sharing patterns, or home-node distributions
// (DESIGN.md §2 documents this substitution).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/thread_ctx.hpp"

namespace dsm::apps {

/// Touches every cache line of [base, base+bytes): a load per line (plus a
/// store when `write`), then `instr_per_line` arithmetic instructions
/// closed by a taken branch at `site` — i.e., one loop iteration per line.
void sweep_lines(sim::ThreadCtx& ctx, Addr base, std::uint64_t bytes,
                 bool write, BlockId site, InstrCount instr_per_line,
                 double fp_frac);

/// Reads every line of src, writes every line of dst (equal sizes),
/// charging `instr_per_line` per line — a copy/axpy-style streaming loop.
void stream_lines(sim::ThreadCtx& ctx, Addr src, Addr dst,
                  std::uint64_t bytes, BlockId site,
                  InstrCount instr_per_line, double fp_frac);

/// A two-operand block update: dst_line op= f(a_line, b_line) for each of
/// the `lines` lines — the inner shape of a blocked matrix kernel
/// (load a, load b, load dst, store dst per line).
void block_update(sim::ThreadCtx& ctx, Addr dst, Addr a, Addr b,
                  std::uint64_t bytes, BlockId site,
                  InstrCount instr_per_line, double fp_frac);

/// One-operand variant: dst_line op= f(src_line) per line
/// (load src, load dst, store dst).
void block_update1(sim::ThreadCtx& ctx, Addr dst, Addr src,
                   std::uint64_t bytes, BlockId site,
                   InstrCount instr_per_line, double fp_frac);

}  // namespace dsm::apps
