#include "apps/fmm.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/thread_ctx.hpp"

namespace dsm::apps {
namespace {

constexpr BlockId kBbBin = sim::bb_id("fmm.bin");
constexpr BlockId kBbP2m = sim::bb_id("fmm.p2m");
constexpr BlockId kBbM2m = sim::bb_id("fmm.m2m");
constexpr BlockId kBbM2l = sim::bb_id("fmm.m2l");
constexpr BlockId kBbL2l = sim::bb_id("fmm.l2l");
constexpr BlockId kBbL2p = sim::bb_id("fmm.l2p");
constexpr BlockId kBbDirect = sim::bb_id("fmm.direct");
constexpr BlockId kBbAdvance = sim::bb_id("fmm.advance");

constexpr std::uint64_t kParticleBytes = 32;  ///< pos + vel, one line
constexpr std::uint64_t kCellBytes = 160;     ///< multipole + local + meta

struct FmmShared {
  // Host-side physics (drives which simulated addresses get touched).
  std::vector<double> cx, cy;        ///< cluster-relative offsets
  std::vector<unsigned> cluster_of;  ///< particle -> cluster
  std::vector<double> px, py;        ///< absolute positions, in [0,1)
  std::vector<std::vector<std::uint32_t>> leaf_particles;

  // Simulated layout.
  std::vector<Addr> particle_addr;          ///< per particle
  std::vector<Addr> level_base;             ///< per level (index = level)
  std::vector<unsigned> first_particle;     ///< per proc, chunk start
  /// Costzones: per-step leaf partition (leaf_begin[p] .. leaf_begin[p+1])
  /// balancing the direct-interaction cost, as SPLASH-2 FMM repartitions
  /// every step. Ownership follows the clusters while the *homes* of cell
  /// and particle memory stay fixed — so each processor's home-access mix
  /// drifts step to step.
  std::vector<std::uint64_t> leaf_begin;        ///< direct-phase zones
  std::vector<std::uint64_t> leaf_begin_linear; ///< P2M/L2P zones
  std::vector<Addr> bin_buffer;  ///< per-proc node-local binning scratch
  /// Per-level M2L partition balanced by interaction-source count (edge
  /// cells have clipped lists, so uniform chunks stall the whole machine
  /// at the post-M2L barrier). Computed once: the cost is pure geometry.
  std::vector<std::vector<std::uint64_t>> m2l_begin;
  unsigned leaf_level = 0;
  unsigned min_level = 0;
};

Addr cell_addr(const FmmShared& s, unsigned level, unsigned x, unsigned y) {
  const unsigned side = 1u << level;
  return s.level_base[level] +
         kCellBytes * (static_cast<std::uint64_t>(y) * side + x);
}

unsigned leaf_index(const FmmShared& s, double x, double y) {
  const unsigned side = 1u << s.leaf_level;
  auto clampc = [&](double v) {
    auto c = static_cast<long>(v * side);
    return static_cast<unsigned>(std::clamp<long>(c, 0, side - 1));
  };
  return clampc(y) * side + clampc(x);
}

/// Absolute positions from cluster geometry at time-step `step`.
void update_positions(FmmShared& s, const FmmParams& p, unsigned step) {
  const double theta = p.orbit_per_step * step;
  for (std::size_t i = 0; i < s.px.size(); ++i) {
    const unsigned c = s.cluster_of[i];
    const double base = 2.0 * M_PI * c / p.clusters + theta;
    const double ccx = 0.5 + 0.3 * std::cos(base);
    const double ccy = 0.5 + 0.3 * std::sin(base);
    double x = ccx + s.cx[i];
    double y = ccy + s.cy[i];
    x -= std::floor(x);  // wrap into the unit box
    y -= std::floor(y);
    s.px[i] = x;
    s.py[i] = y;
  }
}

void rebuild_leaf_lists(FmmShared& s) {
  const unsigned side = 1u << s.leaf_level;
  s.leaf_particles.assign(std::size_t{side} * side, {});
  for (std::uint32_t i = 0; i < s.px.size(); ++i)
    s.leaf_particles[leaf_index(s, s.px[i], s.py[i])].push_back(i);
}


/// Number of well-separated same-level interaction sources of cell (x, y).
unsigned m2l_sources(unsigned level, int x, int y) {
  const int sd = 1 << level;
  const int px_ = x / 2, py_ = y / 2;
  unsigned n = 0;
  for (int ny = (py_ - 1) * 2; ny <= (py_ + 1) * 2 + 1; ++ny)
    for (int nx = (px_ - 1) * 2; nx <= (px_ + 1) * 2 + 1; ++nx) {
      if (nx < 0 || ny < 0 || nx >= sd || ny >= sd) continue;
      if (std::abs(nx - x) <= 1 && std::abs(ny - y) <= 1) continue;
      ++n;
    }
  return n;
}

/// Contiguous zones of approximately equal total M2L cost at one level.
std::vector<std::uint64_t> m2l_costzones(unsigned level, unsigned nprocs) {
  const unsigned sd = 1u << level;
  const std::uint64_t cells = std::uint64_t{sd} * sd;
  double total = 0.0;
  for (std::uint64_t c = 0; c < cells; ++c)
    total += 1.0 + m2l_sources(level, static_cast<int>(c % sd),
                               static_cast<int>(c / sd));
  std::vector<std::uint64_t> begin;
  begin.reserve(nprocs + 1);
  begin.push_back(0);
  double acc = 0.0;
  for (std::uint64_t c = 0; c < cells && begin.size() < nprocs; ++c) {
    acc += 1.0 + m2l_sources(level, static_cast<int>(c % sd),
                             static_cast<int>(c / sd));
    if (acc >= total * begin.size() / nprocs) begin.push_back(c + 1);
  }
  while (begin.size() <= nprocs) begin.push_back(cells);
  return begin;
}

/// Generic contiguous-zone split of the row-major leaf order by a
/// per-leaf cost function.
template <typename CostFn>
std::vector<std::uint64_t> leaf_zones(const FmmShared& s, unsigned nprocs,
                                      CostFn cost) {
  const std::size_t leaves = s.leaf_particles.size();
  double total = 0.0;
  for (std::size_t i = 0; i < leaves; ++i) total += cost(i);
  std::vector<std::uint64_t> begin;
  begin.reserve(nprocs + 1);
  begin.push_back(0);
  double acc = 0.0;
  for (std::size_t i = 0; i < leaves && begin.size() < nprocs; ++i) {
    acc += cost(i);
    if (acc >= total * begin.size() / nprocs) begin.push_back(i + 1);
  }
  while (begin.size() <= nprocs) begin.push_back(leaves);
  return begin;
}

/// SPLASH-2-style costzones, one partition per phase cost shape: the
/// direct phase pays per particle *pair* in the 3x3 neighbourhood, the
/// expansion phases pay per particle.
void compute_costzones(FmmShared& s, unsigned nprocs) {
  const unsigned side = 1u << s.leaf_level;
  auto count = [&](long x, long y) -> double {
    if (x < 0 || y < 0 || x >= long{side} || y >= long{side}) return 0.0;
    return static_cast<double>(
        s.leaf_particles[static_cast<std::size_t>(y) * side + x].size());
  };
  s.leaf_begin = leaf_zones(s, nprocs, [&](std::size_t i) {
    const long x = static_cast<long>(i % side);
    const long y = static_cast<long>(i / side);
    double nbr = 0.0;
    for (long dy = -1; dy <= 1; ++dy)
      for (long dx = -1; dx <= 1; ++dx) nbr += count(x + dx, y + dy);
    return 4.0 + 10.0 * count(x, y) * nbr;
  });
  // One partition serves P2M/L2P and direct: splitting them lowers
  // barrier waits slightly but doubles the cell/particle hand-offs between
  // phases, which costs more than it saves (measured).
  s.leaf_begin_linear = s.leaf_begin;
}

}  // namespace

sim::AppFn make_fmm(const FmmParams& p) {
  DSM_ASSERT(p.min_level >= 1 && p.min_level < p.leaf_log2);
  auto shared = std::make_shared<FmmShared>();

  return [p, shared](sim::ThreadCtx& ctx) {
    FmmShared& s = *shared;
    const unsigned nprocs = ctx.nprocs();
    const NodeId me = ctx.self();
    const double ipf = p.instr_per_flop;
    auto instr = [&](double flops) {
      return static_cast<InstrCount>(std::max(1.0, flops * ipf));
    };

    // ---- one-time setup (thread 0) ----
    if (me == 0) {
      s.leaf_level = p.leaf_log2;
      s.min_level = p.min_level;
      Rng rng(0xf33dULL);
      s.cx.resize(p.particles);
      s.cy.resize(p.particles);
      s.cluster_of.resize(p.particles);
      s.px.resize(p.particles);
      s.py.resize(p.particles);
      for (unsigned i = 0; i < p.particles; ++i) {
        s.cluster_of[i] = static_cast<unsigned>(rng.next_below(p.clusters));
        s.cx[i] = rng.normal(0.0, p.cluster_spread);
        s.cy[i] = rng.normal(0.0, p.cluster_spread);
      }
      update_positions(s, p, 0);

      // Sort particles by initial leaf so contiguous chunks are spatially
      // local, then hand chunk i to processor i (SPLASH-2-style ORB
      // stand-in).
      std::vector<std::uint32_t> order(p.particles);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return leaf_index(s, s.px[a], s.py[a]) <
                         leaf_index(s, s.px[b], s.py[b]);
                });
      auto permute = [&](auto& v) {
        auto tmp = v;
        for (std::size_t i = 0; i < order.size(); ++i) tmp[i] = v[order[i]];
        v = std::move(tmp);
      };
      permute(s.cx);
      permute(s.cy);
      permute(s.cluster_of);
      update_positions(s, p, 0);

      // Particle storage: one contiguous chunk in each owner's memory.
      s.particle_addr.resize(p.particles);
      s.first_particle.resize(nprocs + 1);
      for (unsigned q = 0; q <= nprocs; ++q)
        s.first_particle[q] =
            static_cast<unsigned>(std::uint64_t{p.particles} * q / nprocs);
      for (unsigned q = 0; q < nprocs; ++q) {
        const unsigned lo = s.first_particle[q], hi = s.first_particle[q + 1];
        if (lo == hi) continue;
        const Addr base = ctx.alloc_on(kParticleBytes * (hi - lo), q);
        for (unsigned i = lo; i < hi; ++i)
          s.particle_addr[i] = base + kParticleBytes * (i - lo);
      }

      // Cell storage per level, row-major chunks per owner.
      s.level_base.assign(s.leaf_level + 1, 0);
      for (unsigned lv = s.min_level; lv <= s.leaf_level; ++lv) {
        const unsigned side = 1u << lv;
        const std::uint64_t total = std::uint64_t{side} * side;
        const Addr base = ctx.alloc(kCellBytes * total);
        s.level_base[lv] = base;
        for (unsigned q = 0; q < nprocs; ++q) {
          const std::uint64_t lo = total * q / nprocs;
          const std::uint64_t hi = total * (q + 1) / nprocs;
          if (lo < hi)
            ctx.machine().home_map().place_range(
                base + kCellBytes * lo, kCellBytes * (hi - lo), q);
        }
      }
      s.bin_buffer.resize(nprocs);
      for (unsigned q = 0; q < nprocs; ++q) {
        const unsigned cnt = s.first_particle[q + 1] - s.first_particle[q];
        s.bin_buffer[q] = ctx.alloc_on(8ull * std::max(cnt, 1u), q);
      }
      rebuild_leaf_lists(s);
      compute_costzones(s, nprocs);
      s.m2l_begin.assign(s.leaf_level + 1, {});
      for (unsigned lv = s.min_level; lv <= s.leaf_level; ++lv)
        s.m2l_begin[lv] = m2l_costzones(lv, nprocs);
    }
    ctx.barrier();

    const unsigned side = 1u << s.leaf_level;
    auto owned_range = [&](unsigned level, std::uint64_t& lo,
                           std::uint64_t& hi) {
      const unsigned sd = 1u << level;
      const std::uint64_t total = std::uint64_t{sd} * sd;
      lo = total * me / nprocs;
      hi = total * (me + 1) / nprocs;
    };

    // ---- time steps ----
    for (unsigned step = 0; step < p.steps; ++step) {
      // (0) Host: refresh positions and leaf occupancy for this step.
      if (me == 0) {
        update_positions(s, p, step);
        rebuild_leaf_lists(s);
        compute_costzones(s, nprocs);
      }
      ctx.barrier();

      // (1) Binning: each processor scans its own particles and appends
      // to its node-local bin buffer (owner-local lists, as in SPLASH-2 —
      // the cross-processor communication happens in P2M/direct when the
      // costzone owner reads the particle data).
      for (unsigned i = s.first_particle[me]; i < s.first_particle[me + 1];
           ++i) {
        ctx.load(s.particle_addr[i]);
        ctx.store(s.bin_buffer[me] + 8ull * (i - s.first_particle[me]));
        ctx.bb(kBbBin, 12, 0.2);
      }
      ctx.barrier();

      // (2a) P2M at this step's costzone leaves.
      {
        const std::uint64_t lo = s.leaf_begin_linear[me];
        const std::uint64_t hi = s.leaf_begin_linear[me + 1];
        for (std::uint64_t c = lo; c < hi; ++c) {
          const Addr ca = s.level_base[s.leaf_level] + kCellBytes * c;
          for (const std::uint32_t i : s.leaf_particles[c]) {
            ctx.load(s.particle_addr[i]);
            ctx.bb(kBbP2m, instr(4.0 * p.terms), p.fp_frac);
          }
          ctx.store(ca);
          ctx.store(ca + 32);
        }
      }
      ctx.barrier();

      // (2b) M2M up the tree, one barrier per level (children first).
      for (unsigned lv = s.leaf_level; lv-- > s.min_level;) {
        std::uint64_t lo, hi;
        owned_range(lv, lo, hi);
        const unsigned sd = 1u << lv;
        for (std::uint64_t c = lo; c < hi; ++c) {
          const unsigned x = static_cast<unsigned>(c % sd);
          const unsigned y = static_cast<unsigned>(c / sd);
          for (unsigned dy = 0; dy < 2; ++dy)
            for (unsigned dx = 0; dx < 2; ++dx) {
              const Addr child =
                  cell_addr(s, lv + 1, 2 * x + dx, 2 * y + dy);
              ctx.load(child);
              ctx.load(child + 32);
            }
          ctx.bb(kBbM2m, instr(8.0 * p.terms * p.terms), p.fp_frac);
          const Addr ca = cell_addr(s, lv, x, y);
          ctx.store(ca);
          ctx.store(ca + 32);
        }
        ctx.barrier();
      }

      // (3) M2L over the well-separated interaction lists, partitioned by
      // interaction-count cost.
      for (unsigned lv = s.min_level; lv <= s.leaf_level; ++lv) {
        const std::uint64_t lo = s.m2l_begin[lv][me];
        const std::uint64_t hi = s.m2l_begin[lv][me + 1];
        const unsigned sd = 1u << lv;
        for (std::uint64_t c = lo; c < hi; ++c) {
          const int x = static_cast<int>(c % sd);
          const int y = static_cast<int>(c / sd);
          const int px_ = x / 2, py_ = y / 2;
          unsigned sources = 0;
          for (int ny = (py_ - 1) * 2; ny <= (py_ + 1) * 2 + 1; ++ny) {
            for (int nx = (px_ - 1) * 2; nx <= (px_ + 1) * 2 + 1; ++nx) {
              if (nx < 0 || ny < 0 || nx >= static_cast<int>(sd) ||
                  ny >= static_cast<int>(sd))
                continue;
              if (std::abs(nx - x) <= 1 && std::abs(ny - y) <= 1) continue;
              const Addr src = cell_addr(s, lv, static_cast<unsigned>(nx),
                                         static_cast<unsigned>(ny));
              ctx.load(src);
              ctx.load(src + 32);
              ctx.bb(kBbM2l, instr(4.0 * p.terms * p.terms), p.fp_frac);
              ++sources;
            }
          }
          if (sources > 0) {
            const Addr ca = cell_addr(s, lv, static_cast<unsigned>(x),
                                      static_cast<unsigned>(y));
            ctx.store(ca + 64);
            ctx.store(ca + 96);
          }
        }
      }
      ctx.barrier();

      // (4a) L2L down the tree, one barrier per level (parents first).
      for (unsigned lv = s.min_level + 1; lv <= s.leaf_level; ++lv) {
        std::uint64_t lo, hi;
        owned_range(lv, lo, hi);
        const unsigned sd = 1u << lv;
        for (std::uint64_t c = lo; c < hi; ++c) {
          const unsigned x = static_cast<unsigned>(c % sd);
          const unsigned y = static_cast<unsigned>(c / sd);
          const Addr parent = cell_addr(s, lv - 1, x / 2, y / 2);
          ctx.load(parent + 64);
          ctx.load(parent + 96);
          ctx.bb(kBbL2l, instr(2.0 * p.terms * p.terms), p.fp_frac);
          const Addr ca = cell_addr(s, lv, x, y);
          ctx.store(ca + 64);
          ctx.store(ca + 96);
        }
        ctx.barrier();
      }

      // (4b) L2P: evaluate local expansions at costzone leaves' particles.
      {
        const std::uint64_t lo = s.leaf_begin_linear[me];
        const std::uint64_t hi = s.leaf_begin_linear[me + 1];
        for (std::uint64_t c = lo; c < hi; ++c) {
          const Addr ca = s.level_base[s.leaf_level] + kCellBytes * c;
          ctx.load(ca + 64);
          ctx.load(ca + 96);
          for (const std::uint32_t i : s.leaf_particles[c]) {
            ctx.load(s.particle_addr[i]);
            ctx.store(s.particle_addr[i]);
            ctx.bb(kBbL2p, instr(6.0 * p.terms), p.fp_frac);
          }
        }
      }
      ctx.barrier();

      // (5) Near-field direct interactions over this step's costzones
      // (balanced load; the zone boundaries — and with them the remote
      // access mix — follow the clusters from step to step).
      {
        const std::uint64_t dlo = s.leaf_begin[me];
        const std::uint64_t dhi = s.leaf_begin[me + 1];
        for (std::uint64_t c = dlo; c < dhi; ++c) {
          const int x = static_cast<int>(c % side);
          const int y = static_cast<int>(c / side);
          const auto& own = s.leaf_particles[c];
          if (own.empty()) {
            ctx.bb(kBbDirect, 4, 0.0);
            continue;
          }
          for (const std::uint32_t i : own) ctx.load(s.particle_addr[i]);
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const int nx = x + dx, ny = y + dy;
              if (nx < 0 || ny < 0 || nx >= static_cast<int>(side) ||
                  ny >= static_cast<int>(side))
                continue;
              const auto& nbr =
                  s.leaf_particles[static_cast<std::uint64_t>(ny) * side +
                                   nx];
              if (nbr.empty()) continue;
              if (!(dx == 0 && dy == 0))
                for (const std::uint32_t j : nbr)
                  ctx.load(s.particle_addr[j]);
              ctx.bb(kBbDirect,
                     instr(10.0 * static_cast<double>(own.size()) *
                           static_cast<double>(nbr.size())),
                     p.fp_frac);
            }
          }
          for (const std::uint32_t i : own) ctx.store(s.particle_addr[i]);
        }
      }
      ctx.barrier();

      // (6) Advance owned particles.
      for (unsigned i = s.first_particle[me]; i < s.first_particle[me + 1];
           ++i) {
        ctx.load(s.particle_addr[i]);
        ctx.store(s.particle_addr[i]);
        ctx.bb(kBbAdvance, 20, 0.6);
      }
      ctx.barrier();
    }
  };
}

}  // namespace dsm::apps
