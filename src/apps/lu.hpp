// lu.hpp — SPLASH-2 LU (contiguous blocks): dense blocked LU factorization
// of an n x n matrix with B x B blocks, 2-D scatter block ownership, and
// each block allocated in its owner's local memory — the Table II workload
// "LU, 512x512 matrix, 16x16 block".
//
// Phase anatomy (per step k): factor diagonal block (k,k); divide the
// perimeter blocks of row/column k; rank-b update of the (B-k-1)^2
// interior blocks. As k advances the active window shrinks: fewer owners
// participate, barrier imbalance grows, and the home-node mix of the reads
// (diagonal + perimeter blocks of step k) shifts — CPI changes while each
// processor's basic-block profile stays nearly constant, which is exactly
// the failure mode of per-node BBV the paper demonstrates.
#pragma once

#include "sim/machine.hpp"

namespace dsm::apps {

struct LuParams {
  unsigned n = 512;          ///< matrix dimension (paper input)
  unsigned block = 16;       ///< block dimension (paper input)
  /// Modeled instructions per floating-point operation (indexing, loads
  /// folded into compute batches; SPLASH-2 LU retires ~3 instr/flop).
  double instr_per_flop = 3.0;
  double fp_frac = 0.55;     ///< FPU share of the instruction mix
};

/// SPMD entry point: every simulated processor runs this.
sim::AppFn make_lu(const LuParams& p);

}  // namespace dsm::apps
