#include "apps/registry.hpp"

#include <algorithm>
#include <cctype>

#include "apps/art.hpp"
#include "apps/equake.hpp"
#include "apps/fmm.hpp"
#include "apps/lu.hpp"
#include "common/assert.hpp"

namespace dsm::apps {
namespace {

sim::AppFn lu_factory(Scale s) {
  LuParams p;  // paper defaults: 512x512, 16x16 blocks
  switch (s) {
    case Scale::kPaper: break;
    case Scale::kBench:
      // Same 32x32 *block grid* as the paper (so the parallelism and
      // imbalance profile over the factorization steps is identical),
      // with smaller blocks.
      p.n = 256;
      p.block = 8;
      break;
    case Scale::kTest:
      p.n = 96;
      p.block = 8;
      break;
  }
  return make_lu(p);
}

sim::AppFn fmm_factory(Scale s) {
  FmmParams p;  // paper defaults: 65,536 particles
  switch (s) {
    case Scale::kPaper: break;
    case Scale::kBench:
      p.particles = 16384;
      p.leaf_log2 = 6;
      break;
    case Scale::kTest:
      p.particles = 2048;
      p.leaf_log2 = 4;
      p.min_level = 1;
      p.steps = 2;
      break;
  }
  return make_fmm(p);
}

sim::AppFn art_factory(Scale s) {
  ArtParams p;  // MinneSPEC-Large analogue: 512x512 scanfield
  switch (s) {
    case Scale::kPaper: break;
    case Scale::kBench:
      p.image_w = p.image_h = 256;
      p.train_epochs = 20;
      break;
    case Scale::kTest:
      p.image_w = p.image_h = 96;
      p.stride = 4;
      p.train_epochs = 4;
      break;
  }
  return make_art(p);
}

sim::AppFn equake_factory(Scale s) {
  EquakeParams p;  // MinneSPEC-Large analogue: 144^2 mesh, 120 steps
  switch (s) {
    case Scale::kPaper: break;
    case Scale::kBench:
      p.grid = 96;
      p.timesteps = 80;
      p.quake_start = 18;
      p.quake_end = 45;
      break;
    case Scale::kTest:
      p.grid = 48;
      p.timesteps = 24;
      p.quake_start = 6;
      p.quake_end = 14;
      break;
  }
  return make_equake(p);
}

/// Work of a scaled run relative to the paper input — used to shrink the
/// sampling interval proportionally so every scale yields a comparable
/// number of intervals per processor (the statistic CoV curves depend on).
double work_ratio(const std::string& name, Scale s) {
  if (s == Scale::kPaper) return 1.0;
  const bool test = (s == Scale::kTest);
  if (name == "LU") {
    const double r = test ? 96.0 / 512.0 : 256.0 / 512.0;
    return r * r * r;
  }
  if (name == "FMM") return test ? 0.02 : 0.25;
  if (name == "Art") return test ? 0.02 : 0.25;
  if (name == "Equake") {
    return test ? (48.0 * 48 * 24) / (144.0 * 144 * 120)
                : (96.0 * 96 * 80) / (144.0 * 144 * 120);
  }
  return 1.0;
}

}  // namespace

const std::vector<AppInfo>& paper_apps() {
  static const std::vector<AppInfo> apps = {
      {"LU", "512x512 matrix, 16x16 block", lu_factory},
      {"FMM", "65,536 particles", fmm_factory},
      {"Art", "MinneSPEC-Large (512x512 scanfield analogue)", art_factory},
      {"Equake", "MinneSPEC-Large (144^2 mesh, 120 steps analogue)",
       equake_factory},
  };
  return apps;
}

const AppInfo* find_app(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const auto& a : paper_apps()) {
    std::string al = a.name;
    std::transform(al.begin(), al.end(), al.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (al == lower) return &a;
  }
  return nullptr;
}

const AppInfo& app_by_name(const std::string& name) {
  const AppInfo* app = find_app(name);
  DSM_ASSERT_MSG(app != nullptr, "unknown application name");
  return *app;
}

const char* scale_name(Scale s) {
  switch (s) {
    case Scale::kPaper: return "paper";
    case Scale::kBench: return "bench";
    case Scale::kTest: return "test";
  }
  return "?";
}

InstrCount scaled_interval(const std::string& app_name, Scale s,
                           InstrCount paper_interval) {
  const double r = work_ratio(app_name, s);
  const auto scaled = static_cast<InstrCount>(
      static_cast<double>(paper_interval) * r);
  return std::max<InstrCount>(scaled, 20'000);
}

}  // namespace dsm::apps
