#include "apps/lu.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "apps/kernels.hpp"
#include "common/assert.hpp"
#include "sim/thread_ctx.hpp"

namespace dsm::apps {
namespace {

constexpr BlockId kBbInit = sim::bb_id("lu.init");
constexpr BlockId kBbStep = sim::bb_id("lu.step");
constexpr BlockId kBbDiag = sim::bb_id("lu.diag");
constexpr BlockId kBbPerimRow = sim::bb_id("lu.perim_row");
constexpr BlockId kBbPerimCol = sim::bb_id("lu.perim_col");
constexpr BlockId kBbInner = sim::bb_id("lu.inner");

struct LuShared {
  unsigned nb = 0;  ///< blocks per dimension
  unsigned pr = 0, pc = 0;  ///< processor grid
  std::vector<Addr> blocks;  ///< base address of block (I, J), row-major
};

/// 2-D scatter ownership, as in SPLASH-2 LU.
NodeId owner_of(const LuShared& s, unsigned bi, unsigned bj) {
  return static_cast<NodeId>((bi % s.pr) * s.pc + (bj % s.pc));
}

/// Near-square processor grid with pr * pc == p.
void proc_grid(unsigned p, unsigned& pr, unsigned& pc) {
  pr = static_cast<unsigned>(std::sqrt(static_cast<double>(p)));
  while (pr > 1 && p % pr != 0) --pr;
  pc = p / pr;
}

}  // namespace

sim::AppFn make_lu(const LuParams& p) {
  DSM_ASSERT(p.n % p.block == 0);
  auto shared = std::make_shared<LuShared>();

  return [p, shared](sim::ThreadCtx& ctx) {
    LuShared& s = *shared;
    const unsigned b = p.block;
    const std::uint64_t block_bytes = 8ull * b * b;  // doubles
    const std::uint64_t lines_per_block =
        block_bytes / ctx.config().l2.line_bytes;

    // Per-line instruction charges for each kernel, derived from the
    // standard blocked-LU flop counts.
    auto per_line = [&](double flops) {
      return static_cast<InstrCount>(
          flops * p.instr_per_flop / static_cast<double>(lines_per_block));
    };
    const InstrCount diag_ipl = per_line(std::pow(b, 3) / 3.0);
    const InstrCount perim_ipl = per_line(std::pow(b, 3) / 2.0);
    const InstrCount inner_ipl = per_line(2.0 * std::pow(b, 3));

    if (ctx.self() == 0) {
      s.nb = p.n / b;
      proc_grid(ctx.nprocs(), s.pr, s.pc);
      s.blocks.resize(std::size_t{s.nb} * s.nb);
      // Each block lives in its owner's local memory (SPLASH-2 LU's
      // "contiguous blocks" layout).
      for (unsigned bi = 0; bi < s.nb; ++bi)
        for (unsigned bj = 0; bj < s.nb; ++bj)
          s.blocks[std::size_t{bi} * s.nb + bj] =
              ctx.alloc_on(block_bytes, owner_of(s, bi, bj));
    }
    ctx.barrier();

    const NodeId me = ctx.self();
    auto blk = [&](unsigned bi, unsigned bj) {
      return s.blocks[std::size_t{bi} * s.nb + bj];
    };

    // Parallel matrix initialization, as in SPLASH-2 LU: every owner fills
    // its own blocks (also warms the caches, so factorization step 0 is
    // not dominated by cold misses the real program never sees).
    for (unsigned bi = 0; bi < s.nb; ++bi)
      for (unsigned bj = 0; bj < s.nb; ++bj)
        if (owner_of(s, bi, bj) == me)
          sweep_lines(ctx, blk(bi, bj), block_bytes, /*write=*/true, kBbInit,
                      8, 0.3);
    ctx.barrier();

    for (unsigned k = 0; k < s.nb; ++k) {
      ctx.bb(kBbStep, 20);

      // (1) Factor the diagonal block.
      if (owner_of(s, k, k) == me) {
        sweep_lines(ctx, blk(k, k), block_bytes, /*write=*/true, kBbDiag,
                    diag_ipl, p.fp_frac);
      }
      ctx.barrier();

      // (2) Divide perimeter row and column blocks by the diagonal.
      for (unsigned j = k + 1; j < s.nb; ++j) {
        if (owner_of(s, k, j) == me) {
          block_update1(ctx, blk(k, j), blk(k, k), block_bytes, kBbPerimRow,
                        perim_ipl, p.fp_frac);
        }
      }
      for (unsigned i = k + 1; i < s.nb; ++i) {
        if (owner_of(s, i, k) == me) {
          block_update1(ctx, blk(i, k), blk(k, k), block_bytes, kBbPerimCol,
                        perim_ipl, p.fp_frac);
        }
      }
      ctx.barrier();

      // (3) Rank-b update of the interior: A[i][j] -= L[i][k] * U[k][j].
      for (unsigned i = k + 1; i < s.nb; ++i) {
        for (unsigned j = k + 1; j < s.nb; ++j) {
          if (owner_of(s, i, j) == me) {
            block_update(ctx, blk(i, j), blk(i, k), blk(k, j), block_bytes,
                         kBbInner, inner_ipl, p.fp_frac);
          }
        }
      }
      ctx.barrier();
    }
  };
}

}  // namespace dsm::apps
