#include "apps/equake.hpp"

#include <memory>
#include <vector>

#include "apps/kernels.hpp"
#include "common/assert.hpp"
#include "common/bitops.hpp"
#include "sim/thread_ctx.hpp"

namespace dsm::apps {
namespace {

constexpr BlockId kBbSmvp = sim::bb_id("equake.smvp");
constexpr BlockId kBbDisp = sim::bb_id("equake.disp");
constexpr BlockId kBbVel = sim::bb_id("equake.vel");
constexpr BlockId kBbSource = sim::bb_id("equake.source");

struct EquakeShared {
  Addr k_vals = 0;    ///< CSR values, ~9 per row
  Addr k_cols = 0;    ///< CSR column indices
  Addr x = 0;         ///< input vector (previous displacement)
  Addr y = 0;         ///< smvp output
  Addr disp = 0;      ///< displacement
  Addr vel = 0;       ///< velocity
  std::vector<std::uint32_t> row_begin;  ///< per-proc row partition
};

}  // namespace

sim::AppFn make_equake(const EquakeParams& p) {
  auto shared = std::make_shared<EquakeShared>();

  return [p, shared](sim::ThreadCtx& ctx) {
    EquakeShared& s = *shared;
    const NodeId me = ctx.self();
    const unsigned nprocs = ctx.nprocs();
    const unsigned line = ctx.config().l2.line_bytes;
    const std::uint32_t n = p.grid * p.grid;
    auto instr = [&](double flops) {
      return static_cast<InstrCount>(std::max(1.0, flops * p.instr_per_flop));
    };

    if (me == 0) {
      s.row_begin.resize(nprocs + 1);
      for (unsigned q = 0; q <= nprocs; ++q)
        s.row_begin[q] = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(n) * q / nprocs);

      const std::uint64_t nnz = 9ull * n;
      // Allocate each processor's row slice of every array in its local
      // memory (the owner-computes layout an OpenMP first-touch gives).
      auto alloc_partitioned = [&](std::uint64_t bytes_per_row) {
        const Addr base = ctx.alloc(bytes_per_row * n);
        for (unsigned q = 0; q < nprocs; ++q) {
          const std::uint64_t lo = bytes_per_row * s.row_begin[q];
          const std::uint64_t hi = bytes_per_row * s.row_begin[q + 1];
          if (lo < hi)
            ctx.machine().home_map().place_range(base + lo, hi - lo, q);
        }
        return base;
      };
      s.k_vals = alloc_partitioned(8 * 9);
      s.k_cols = alloc_partitioned(4 * 9);
      s.x = alloc_partitioned(8);
      s.y = alloc_partitioned(8);
      s.disp = alloc_partitioned(8);
      s.vel = alloc_partitioned(8);
      (void)nnz;
    }
    ctx.barrier();

    const std::uint32_t row_lo = s.row_begin[me];
    const std::uint32_t row_hi = s.row_begin[me + 1];

    // Epicenter rows live in the middle of the mesh — owned by the middle
    // processor(s).
    const std::uint32_t epi_lo = n / 2 - 2 * p.grid;
    const std::uint32_t epi_hi = n / 2 + 2 * p.grid;

    // Rows of mine whose long-range coupling lands in the epicenter
    // region: while the source is active these get extra relaxation
    // passes (the wavefront needs more accurate integration), which pulls
    // every processor's access mix toward the epicenter's home nodes.
    std::vector<std::uint32_t> wavefront_rows;
    for (std::uint32_t r = row_lo; r < row_hi; ++r) {
      if (r % 8 != 0) continue;
      const auto far1 = static_cast<std::uint32_t>(fnv1a64(r) % n);
      if (far1 >= epi_lo && far1 < epi_hi) wavefront_rows.push_back(r);
    }

    auto vec_line = [&](Addr base, std::uint32_t row) {
      return (base + 8ull * row) & ~Addr{line - 1};
    };

    for (unsigned step = 0; step < p.timesteps; ++step) {
      // (1) smvp: y = K * x over owned rows. Per row: stream the row's
      // values + column indices, gather the 9-point-stencil segments of x
      // (three line touches: row above, own row, row below), write y.
      for (std::uint32_t r = row_lo; r < row_hi; ++r) {
        ctx.load(s.k_vals + 72ull * r);
        ctx.load((s.k_vals + 72ull * r + 71) & ~Addr{line - 1});
        ctx.load(s.k_cols + 36ull * r);
        if (r >= p.grid) ctx.load(vec_line(s.x, r - p.grid));
        ctx.load(vec_line(s.x, r));
        if (r + p.grid < n) ctx.load(vec_line(s.x, r + p.grid));
        // Long-range couplings of the unstructured mesh: every few rows
        // reach a deterministic far column (gathers scattered over the
        // whole x vector, as tetrahedral element connectivity produces).
        if (r % 8 == 0) {
          const std::uint32_t far1 =
              static_cast<std::uint32_t>(fnv1a64(r) % n);
          const std::uint32_t far2 =
              static_cast<std::uint32_t>(fnv1a64(r * 2654435761u) % n);
          ctx.load(vec_line(s.x, far1));
          ctx.load(vec_line(s.x, far2));
        }
        ctx.store(s.y + 8ull * r);
        ctx.bb(kBbSmvp, instr(18.0), p.fp_frac);
      }
      ctx.barrier();

      // (2) Earthquake source term while the event is active: extra work
      // concentrated on the epicenter's owners, plus wavefront relaxation
      // passes on every processor's epicenter-coupled rows (same smvp
      // code, so the per-node instruction profile barely moves — only the
      // data distribution does).
      if (step >= p.quake_start && step < p.quake_end) {
        for (std::uint32_t r = std::max(row_lo, epi_lo);
             r < std::min(row_hi, epi_hi); ++r) {
          ctx.load(s.k_vals + 72ull * r);
          ctx.load(vec_line(s.x, r));
          ctx.load(s.y + 8ull * r);
          ctx.store(s.y + 8ull * r);
          ctx.bb(kBbSource, instr(60.0), p.fp_frac);
        }
        for (unsigned pass = 0; pass < 8; ++pass) {
          for (const std::uint32_t r : wavefront_rows) {
            const auto far1 = static_cast<std::uint32_t>(fnv1a64(r) % n);
            ctx.load(vec_line(s.x, far1));
            ctx.load(vec_line(s.x, r));
            ctx.store(s.y + 8ull * r);
            ctx.bb(kBbSmvp, instr(18.0), p.fp_frac);
          }
        }
      }

      // (3) disp update: disp = f(disp, y), streaming over owned rows.
      block_update1(ctx, s.disp + 8ull * row_lo, s.y + 8ull * row_lo,
                    8ull * (row_hi - row_lo), kBbDisp,
                    instr(4.0 * 6.0),  // 4 doubles per line, ~6 flops each
                    p.fp_frac);

      // (4) velocity + time-flip: vel = g(vel, disp); x <- disp for the
      // next step (modeled as a second streaming pass that also writes x).
      for (std::uint64_t off = 0; off < 8ull * (row_hi - row_lo);
           off += line) {
        const Addr base = 8ull * row_lo + off;
        ctx.load(s.disp + base);
        ctx.load(s.vel + base);
        ctx.store(s.vel + base);
        ctx.store(s.x + base);
        ctx.bb(kBbVel, instr(4.0 * 5.0), p.fp_frac);
      }
      ctx.barrier();
    }
  };
}

}  // namespace dsm::apps
