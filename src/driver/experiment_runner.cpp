#include "driver/experiment_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace dsm::driver {

ExperimentRunner::ExperimentRunner(unsigned threads)
    : threads_(resolve_threads(threads)) {}

unsigned ExperimentRunner::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ExperimentRunner::run_indexed(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;

  if (threads_ <= 1 || count == 1) {
    // Inline serial path: exceptions propagate naturally.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    while (!failed.load(std::memory_order_acquire)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
    }
  };

  const unsigned n =
      static_cast<unsigned>(std::min<std::size_t>(threads_, count));
  std::vector<std::thread> pool;
  pool.reserve(n);
  try {
    for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  } catch (...) {
    // Thread spawn failed (e.g. EAGAIN at a high --threads): stop the
    // workers that did start, join them, and surface a catchable error
    // instead of letting ~thread() call std::terminate.
    failed.store(true, std::memory_order_release);
    for (auto& t : pool) t.join();
    throw;
  }
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dsm::driver
