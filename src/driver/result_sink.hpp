// result_sink.hpp — spec-order aggregation of per-configuration results.
//
// Worker threads complete configurations in arbitrary order; two sinks
// restore spec order:
//
//   * ResultSink buffers every result and hands the whole vector back via
//     take() — the original PR 1 shape, still right when the caller needs
//     all results at once (and the per-result payload is small).
//   * OrderedEmitter streams: put(i, r) releases results to an emit
//     callback in strictly increasing index order, buffering only the
//     out-of-order completions. This is the spec-order serializer under
//     ExperimentRunner::map_reduce — with in-worker reduction in front of
//     it, nothing ever buffers more than the reduced records still waiting
//     for their turn.
//
// Both are the piece that makes `--threads=N` output bit-identical to
// `--threads=1`.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace dsm::driver {

template <typename R>
class ResultSink {
 public:
  explicit ResultSink(std::size_t count) : slots_(count) {}

  /// Stores the result for spec-order position `index`. Thread-safe;
  /// each slot may be filled at most once, and only before take().
  void put(std::size_t index, R value) {
    std::lock_guard<std::mutex> lock(mu_);
    DSM_ASSERT(index < slots_.size());
    DSM_ASSERT(!taken_);
    DSM_ASSERT(!slots_[index].has_value());
    slots_[index].emplace(std::move(value));
  }

  /// Moves all results out in spec order. Every slot must be filled
  /// (the runner guarantees this on success; on failure it rethrows
  /// before any caller reaches take()). Consuming: callable exactly once —
  /// a second call would hand back a same-length vector of moved-from
  /// values that silently corrupts downstream tables, so it throws
  /// instead (always on, like DSM_ASSERT, but catchable in tests).
  std::vector<R> take() {
    std::lock_guard<std::mutex> lock(mu_);
    if (taken_)
      throw std::logic_error("ResultSink::take() called twice");
    taken_ = true;
    std::vector<R> out;
    out.reserve(slots_.size());
    for (auto& slot : slots_) {
      DSM_ASSERT(slot.has_value());
      out.push_back(std::move(*slot));
      slot.reset();
    }
    return out;
  }

 private:
  std::mutex mu_;
  std::vector<std::optional<R>> slots_;
  bool taken_ = false;
};

/// Streaming spec-order serializer: results arrive via put() in any order
/// from any thread; `emit` fires in strictly increasing index order, on
/// whichever worker completed the next-in-order result (under the sink
/// lock, so emissions never interleave). Only results that finished ahead
/// of a straggler are buffered — and with reduction applied before put(),
/// those are collapsed records, not raw RunSummaries.
template <typename R>
class OrderedEmitter {
 public:
  using Emit = std::function<void(std::size_t, R&&)>;

  OrderedEmitter(std::size_t count, Emit emit)
      : slots_(count), emit_(std::move(emit)) {}

  void put(std::size_t index, R value) {
    std::lock_guard<std::mutex> lock(mu_);
    DSM_ASSERT(index < slots_.size());
    DSM_ASSERT(index >= next_);
    DSM_ASSERT(!slots_[index].has_value());
    slots_[index].emplace(std::move(value));
    while (next_ < slots_.size() && slots_[next_].has_value()) {
      emit_(next_, std::move(*slots_[next_]));
      slots_[next_].reset();
      ++next_;
    }
  }

  /// True once every slot has been emitted.
  bool drained() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_ == slots_.size();
  }

 private:
  mutable std::mutex mu_;
  std::size_t next_ = 0;
  std::vector<std::optional<R>> slots_;
  Emit emit_;
};

}  // namespace dsm::driver
