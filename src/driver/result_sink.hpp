// result_sink.hpp — spec-order aggregation of per-configuration results.
//
// Worker threads complete configurations in arbitrary order; the sink
// stores each result in the slot of its spec-order index so take() hands
// back exactly the sequence a serial loop would have produced. This is the
// piece that makes `--threads=N` output bit-identical to `--threads=1`.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace dsm::driver {

template <typename R>
class ResultSink {
 public:
  explicit ResultSink(std::size_t count) : slots_(count) {}

  /// Stores the result for spec-order position `index`. Thread-safe;
  /// each slot may be filled at most once.
  void put(std::size_t index, R value) {
    std::lock_guard<std::mutex> lock(mu_);
    DSM_ASSERT(index < slots_.size());
    DSM_ASSERT(!slots_[index].has_value());
    slots_[index].emplace(std::move(value));
  }

  /// Moves all results out in spec order. Every slot must be filled
  /// (the runner guarantees this on success; on failure it rethrows
  /// before any caller reaches take()).
  std::vector<R> take() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<R> out;
    out.reserve(slots_.size());
    for (auto& slot : slots_) {
      DSM_ASSERT(slot.has_value());
      out.push_back(std::move(*slot));
      slot.reset();
    }
    return out;
  }

 private:
  std::mutex mu_;
  std::vector<std::optional<R>> slots_;
};

}  // namespace dsm::driver
