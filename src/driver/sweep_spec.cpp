#include "driver/sweep_spec.hpp"

#include <cstring>

namespace dsm::driver {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_str(std::uint64_t& h, const std::string& s) {
  // Length-prefix so ("ab","c") and ("a","bc") hash differently.
  const auto len = static_cast<std::uint64_t>(s.size());
  fnv_bytes(h, &len, sizeof len);
  fnv_bytes(h, s.data(), s.size());
}

}  // namespace

std::vector<SpecPoint> SweepSpec::expand() const {
  const std::vector<std::string> apps_axis =
      apps.empty() ? std::vector<std::string>{""} : apps;
  const std::vector<unsigned> nodes_axis =
      node_counts.empty() ? std::vector<unsigned>{0} : node_counts;
  const std::vector<std::string> det_axis =
      detectors.empty() ? std::vector<std::string>{""} : detectors;
  const std::vector<double> thr_axis =
      thresholds.empty() ? std::vector<double>{0.0} : thresholds;
  const std::vector<std::string> proto_axis =
      protocols.empty() ? std::vector<std::string>{""} : protocols;
  const std::vector<unsigned> batch_axis =
      batches.empty() ? std::vector<unsigned>{0} : batches;

  std::vector<SpecPoint> points;
  points.reserve(apps_axis.size() * nodes_axis.size() * det_axis.size() *
                 thr_axis.size() * proto_axis.size() * batch_axis.size());
  for (const auto& a : apps_axis)
    for (const unsigned n : nodes_axis)
      for (const auto& d : det_axis)
        for (const double t : thr_axis)
          for (const auto& pr : proto_axis)
            for (const unsigned b : batch_axis) {
              SpecPoint pt;
              pt.app = a;
              pt.nodes = n;
              pt.detector = d;
              pt.threshold = t;
              pt.protocol = pr;
              pt.batch = b;
              pt.scale = scale;
              pt.index = points.size();
              points.push_back(std::move(pt));
            }
  return points;
}

std::uint64_t spec_seed(const SpecPoint& pt) {
  std::uint64_t h = kFnvOffset;
  fnv_str(h, pt.app);
  const std::uint64_t nodes = pt.nodes;
  fnv_bytes(h, &nodes, sizeof nodes);
  fnv_str(h, pt.detector);
  std::uint64_t thr_bits;
  static_assert(sizeof thr_bits == sizeof pt.threshold);
  std::memcpy(&thr_bits, &pt.threshold, sizeof thr_bits);
  fnv_bytes(h, &thr_bits, sizeof thr_bits);
  // Hash the protocol/batch only when the sweep actually varies them, so
  // every pre-axis point keeps its historical seed bit-for-bit. (For the
  // batch axis this is also what makes the bit-identity demonstration
  // honest: a swept batch value changes the seed, so equality of swept
  // outputs is checked via batch_size as a plain flag knob instead.)
  if (!pt.protocol.empty()) fnv_str(h, pt.protocol);
  if (pt.batch != 0) {
    const std::uint64_t b = pt.batch;
    fnv_bytes(h, &b, sizeof b);
  }
  const std::uint64_t scale = static_cast<std::uint64_t>(pt.scale);
  fnv_bytes(h, &scale, sizeof scale);
  // The simulator multiplies the seed before splitting per-processor
  // streams; avoid handing it zero.
  return h == 0 ? kFnvOffset : h;
}

std::string spec_label(const SpecPoint& pt) {
  std::string label = pt.app.empty() ? std::string("run") : pt.app;
  if (pt.nodes != 0) label += "/" + std::to_string(pt.nodes) + "p";
  if (!pt.detector.empty()) label += "/" + pt.detector;
  if (!pt.protocol.empty()) label += "/" + pt.protocol;
  if (pt.batch != 0) label += "/b" + std::to_string(pt.batch);
  return label;
}

}  // namespace dsm::driver
