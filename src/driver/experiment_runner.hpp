// experiment_runner.hpp — a std::thread pool over independent experiment
// configurations.
//
// The sweeps in bench/ are embarrassingly parallel: every configuration
// builds its own Machine, owns its own RNG streams (seeded from the spec
// point, see sweep_spec.hpp), and shares nothing mutable. The runner fans
// the expanded spec out over N workers pulling from an atomic work queue
// and aggregates results in spec order via ResultSink, so output is
// bit-identical to a serial loop.
//
// Failure semantics: the first configuration to throw stops the pool from
// claiming further work; after all workers have parked, the exception is
// rethrown on the caller's thread. No deadlock, no std::terminate.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "driver/result_sink.hpp"
#include "driver/sweep_spec.hpp"

namespace dsm::driver {

class ExperimentRunner {
 public:
  /// `threads` = worker count; 0 means one per hardware thread. A runner
  /// with 1 thread executes everything inline on the caller's thread.
  explicit ExperimentRunner(unsigned threads = 1);

  /// 0 -> std::thread::hardware_concurrency() (at least 1).
  static unsigned resolve_threads(unsigned requested);

  unsigned threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, count), blocking until all claimed work
  /// has finished. Rethrows the first exception after the pool has
  /// stopped; work not yet claimed at that point is abandoned.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn) const;

  /// Maps fn over the points on the pool; results come back in spec order
  /// (points[i].index must equal i, as SweepSpec::expand() guarantees).
  template <typename R>
  std::vector<R> map(const std::vector<SpecPoint>& points,
                     const std::function<R(const SpecPoint&)>& fn) const {
    ResultSink<R> sink(points.size());
    run_indexed(points.size(),
                [&](std::size_t i) { sink.put(i, fn(points[i])); });
    return sink.take();
  }

 private:
  unsigned threads_;
};

}  // namespace dsm::driver
