// experiment_runner.hpp — a std::thread pool over independent experiment
// configurations.
//
// The sweeps in bench/ are embarrassingly parallel: every configuration
// builds its own Machine, owns its own RNG streams (seeded from the spec
// point, see sweep_spec.hpp), and shares nothing mutable. The runner fans
// the expanded spec out over N workers pulling from an atomic work queue
// and aggregates results in spec order via ResultSink, so output is
// bit-identical to a serial loop.
//
// Failure semantics: the first configuration to throw stops the pool from
// claiming further work; after all workers have parked, the exception is
// rethrown on the caller's thread. No deadlock, no std::terminate.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "driver/result_sink.hpp"
#include "driver/sweep_spec.hpp"

namespace dsm::driver {

class ExperimentRunner {
 public:
  /// `threads` = worker count; 0 means one per hardware thread. A runner
  /// with 1 thread executes everything inline on the caller's thread.
  explicit ExperimentRunner(unsigned threads = 1);

  /// 0 -> std::thread::hardware_concurrency() (at least 1).
  static unsigned resolve_threads(unsigned requested);

  unsigned threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, count), blocking until all claimed work
  /// has finished. Rethrows the first exception after the pool has
  /// stopped; work not yet claimed at that point is abandoned.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn) const;

  /// Maps fn over the points on the pool; results come back in spec order
  /// (points[i].index must equal i, as SweepSpec::expand() guarantees).
  template <typename R>
  std::vector<R> map(const std::vector<SpecPoint>& points,
                     const std::function<R(const SpecPoint&)>& fn) const {
    ResultSink<R> sink(points.size());
    run_indexed(points.size(),
                [&](std::size_t i) { sink.put(i, fn(points[i])); });
    return sink.take();
  }

  /// Streaming map with an in-worker reduction hook: `run` produces the
  /// raw per-configuration result (a RunSummary, typically) on a pool
  /// worker, `reduce` collapses it *on the same worker* — the raw result
  /// is destroyed right there, which is what bounds per-configuration
  /// memory on paper-scale sweeps — and `emit` receives the reduced
  /// results one at a time in position order (under a lock, so emissions
  /// never interleave). Nothing buffers more than the reduced records
  /// still waiting on a straggler.
  ///
  /// Unlike map(), `points` need not satisfy points[i].index == i: a
  /// shard of a larger sweep keeps its global spec indices in the points
  /// while this method orders by position within `points`.
  template <typename Raw, typename R>
  void map_reduce(
      const std::vector<SpecPoint>& points,
      const std::function<Raw(const SpecPoint&)>& run,
      const std::function<R(const SpecPoint&, Raw&&)>& reduce,
      const std::function<void(const SpecPoint&, R&&)>& emit) const {
    OrderedEmitter<R> sink(points.size(), [&](std::size_t i, R&& r) {
      emit(points[i], std::move(r));
    });
    run_indexed(points.size(), [&](std::size_t i) {
      Raw raw = run(points[i]);
      sink.put(i, reduce(points[i], std::move(raw)));
    });
  }

 private:
  unsigned threads_;
};

}  // namespace dsm::driver
