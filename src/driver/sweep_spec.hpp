// sweep_spec.hpp — declarative description of an experiment sweep.
//
// Every figure/table harness in bench/ walks some product of
// app × nodes × variant × numeric-parameter. SweepSpec captures that
// product once; expand() enumerates it in a fixed "spec order" that the
// ExperimentRunner preserves in its output regardless of how many worker
// threads execute the configurations, and spec_seed() derives a
// deterministic RNG seed from each point's *content* (never from execution
// order), so parallel and serial runs produce identical numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/registry.hpp"

namespace dsm::driver {

/// One point of a sweep: a single independent configuration.
struct SpecPoint {
  std::string app;       ///< application name; empty when not app-driven
  unsigned nodes = 0;    ///< processor count; 0 when not swept
  std::string detector;  ///< free-form variant label (detector, topology, ...)
  double threshold = 0.0;///< free-form numeric axis (threshold, factor, ...)
  /// Coherence protocol name ("msi" | "mesi" | "moesi"); empty when the
  /// sweep does not vary the protocol (the machine then runs its default,
  /// MESI). Kept out of the seed and label when empty so pre-existing
  /// sweeps keep their exact seeds and output.
  std::string protocol;
  /// Machine→fabric batch size (MachineConfig::batch_size); 0 when the
  /// sweep does not vary it. Like `protocol`, kept out of the seed and
  /// label when unswept — and since batching never changes simulated
  /// output, sweeping it demonstrates bit-identity, point by point.
  unsigned batch = 0;
  apps::Scale scale = apps::Scale::kBench;
  std::size_t index = 0; ///< position in spec order (set by expand())
};

/// Cartesian product over app × nodes × detector × threshold × protocol
/// × batch at one scale. An empty axis contributes a single default
/// element, so the product is never empty.
struct SweepSpec {
  std::vector<std::string> apps;
  std::vector<unsigned> node_counts;
  std::vector<std::string> detectors;
  std::vector<double> thresholds;
  std::vector<std::string> protocols;  ///< empty = protocol not swept
  std::vector<unsigned> batches;       ///< empty = batch size not swept
  apps::Scale scale = apps::Scale::kBench;

  /// Enumerates the product app-major (then nodes, detector, threshold,
  /// protocol, batch innermost), assigning each point its spec-order
  /// index.
  std::vector<SpecPoint> expand() const;
};

/// Deterministic per-configuration RNG seed: FNV-1a over the point's
/// content (app, nodes, detector, threshold, protocol, batch, scale).
/// Independent of the point's position in the sweep, so inserting
/// configurations never shifts the seeds of existing ones; a point with
/// an empty protocol (or unswept batch) hashes exactly as it did before
/// that axis existed.
std::uint64_t spec_seed(const SpecPoint& pt);

/// "LU/8p" style label for logs and error messages.
std::string spec_label(const SpecPoint& pt);

}  // namespace dsm::driver
