// machine.hpp — the simulated DSM multiprocessor: cores, cache hierarchies,
// directories, memory controllers, interconnect, the DDV hardware, and the
// per-processor interval recorder, driven by application kernels through
// ThreadCtx (thread_ctx.hpp).
//
// Per-interval recording (what the paper's detectors consume):
//   * BBV accumulator snapshot (normalized),
//   * own frequency vector F[i][*] and contention vector C from the DDV
//     gather at the interval boundary,
//   * DDS under the topology's distance matrix,
//   * CPI = cycles / committed non-synchronization instructions.
// Intervals are *local* to each processor (paper §III-B), 3M/n instructions
// by default.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/fabric.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "cpu/core_model.hpp"
#include "memory/home_map.hpp"
#include "network/network.hpp"
#include "obs/observability.hpp"
#include "phase/bbv.hpp"
#include "phase/ddv.hpp"
#include "phase/detector.hpp"
#include "phase/interval_record.hpp"
#include "sim/allocator.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"

namespace dsm::sim {

class ThreadCtx;
using AppFn = std::function<void(ThreadCtx&)>;

/// Everything an experiment wants back from one run.
struct RunSummary {
  MachineConfig cfg;
  std::vector<phase::ProcessorTrace> procs;       ///< per-proc intervals
  std::vector<coh::NodeCoherenceStats> coherence; ///< per-node protocol stats
  std::vector<Cycle> final_cycles;                ///< per-proc finish time
  std::vector<InstrCount> instructions;           ///< per-proc non-sync instrs
  std::vector<double> mispredict_rate;            ///< per-proc gshare
  std::uint64_t net_messages[net::kNumTrafficClasses] = {};
  std::uint64_t net_bytes[net::kNumTrafficClasses] = {};
  std::uint64_t barrier_episodes = 0;
  std::uint64_t context_switches = 0;
  double barrier_wait_mean = 0.0;  ///< cycles per participant per episode
  double barrier_wait_max = 0.0;
  /// Per-proc cycle breakdown: where the time went.
  std::vector<Cycle> mem_stall_cycles;
  std::vector<Cycle> compute_cycles;
  std::vector<Cycle> branch_cycles;
  std::vector<Cycle> sync_cycles;
  /// Deterministic metrics snapshot (obs/metrics.hpp JSON), "" when
  /// cfg.obs.stats was off. Identical across --threads/--shards/--batch.
  std::string obs_json;
  /// Phase-attributed interval timeline (obs/metrics.hpp intervals_json),
  /// "" when cfg.obs.intervals was off. Every phase-detector interval
  /// boundary captures the machine-wide counter deltas since the previous
  /// boundary, tagged with the online-detected phase id — identical
  /// across --threads/--shards/--batch like obs_json.
  std::string obs_intervals_json;

  /// Aggregate CPI of processor p (cycles / instructions).
  double cpi(unsigned p) const;
  /// Fraction of p's committed accesses that were homed remotely.
  double remote_access_fraction(unsigned p) const;
  /// Minimum interval count over all processors.
  std::size_t min_intervals() const;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);

  /// Runs the SPMD application (all processors execute `app`) and returns
  /// the recording. One run per Machine instance.
  RunSummary run(const AppFn& app);

  const MachineConfig& config() const { return cfg_; }
  obs::Observability& observability() { return obs_; }
  net::Network& network() { return network_; }
  coh::CoherenceFabric& fabric() { return fabric_; }
  mem::HomeMap& home_map() { return home_map_; }
  SimAllocator& allocator() { return alloc_; }
  phase::DdvFabric& ddv() { return ddv_; }
  Scheduler& scheduler() { return sched_; }
  cpu::CoreModel& core(unsigned tid) { return *cores_.at(tid); }

 private:
  friend class ThreadCtx;

  struct ProcState {
    phase::BbvAccumulator bbv;
    InstrCount instr_in_interval = 0;
    InstrCount instr_since_branch = 0;
    InstrCount total_instructions = 0;
    Cycle interval_start = 0;
    Cycle last_yield = 0;
    // Cycle breakdown (diagnostics + tests).
    Cycle mem_stall_cycles = 0;
    Cycle compute_cycles = 0;
    Cycle branch_cycles = 0;
    Cycle sync_cycles = 0;
    std::vector<phase::IntervalRecord> intervals;
    Rng rng;
    ProcState(const PhaseConfig& pc, std::uint64_t seed)
        : bbv(pc.bbv_entries, pc.bbv_norm), rng(seed) {}
  };

  /// Flattened per-processor hot lane: the pointers every committed
  /// instruction touches (proc state, core model, scheduler clock slot,
  /// DDV observe row), resolved once at construction so the op_* inner
  /// loops do no unique_ptr chase, no bounds-checked scheduler call, and
  /// no DDV index arithmetic per access. All four point into containers
  /// that never reallocate after the constructor.
  struct HotLane {
    ProcState* ps = nullptr;
    cpu::CoreModel* core = nullptr;
    Cycle* clock = nullptr;           ///< Scheduler::cycle_slot(tid)
    std::uint64_t* ddv_row = nullptr; ///< DdvFabric::observe_row(tid)
  };

  // ---- operations invoked via ThreadCtx ----
  void op_mem(unsigned tid, Addr addr, bool write);
  void op_compute(unsigned tid, InstrCount n, double fp_frac);
  void op_branch(unsigned tid, BlockId block, bool taken);
  void op_barrier(unsigned tid);
  SimLock& lock_by_id(unsigned id);

  void count_instr(unsigned tid, InstrCount n);
  void end_interval(unsigned tid);
  void maybe_yield(unsigned tid);

  /// Deferred accesses of one processor, gathered by op_mem when
  /// cfg_.batch_size > 1 and drained through fabric_.access_batch.
  /// Deferral is invisible to the simulation: load/store return nothing,
  /// every ThreadCtx operation that could observe machine state flushes
  /// first, and the batch's advance callback replays op_mem's clock/
  /// interval/yield bookkeeping per member at the exact serial times —
  /// so the simulated sequence is bit-identical to batch_size=1.
  struct PendingMem {
    std::array<coh::CoherenceFabric::AccessReq,
               coh::CoherenceFabric::kMaxBatch>
        reqs;
    std::size_t count = 0;
  };
  /// Drains tid's pending accesses (no-op when none). Called before any
  /// operation that must observe their effects.
  void flush_mem(unsigned tid) {
    if (pending_[tid].count != 0) drain_pending(tid);
  }
  void drain_pending(unsigned tid);
  /// access_batch advance callback: op_mem's post-access bookkeeping
  /// (DDV row, exposed stall, clock, interval accounting, cooperative
  /// yield) for one batch member. Returns the member-local clock, or
  /// kBatchStop after a yield (other threads ran — the rest of the
  /// batch restages from live cache state).
  static Cycle batch_advance(void* ctx, std::size_t i,
                             const coh::AccessOutcome& out);
  struct BatchCtx {
    Machine* m;
    unsigned tid;
  };

  MachineConfig cfg_;
  /// Constructed before network_/fabric_ so both can register their
  /// counters into it; registration order (links, then fabric hooks) is
  /// part of the deterministic snapshot schema.
  obs::Observability obs_;
  net::Network network_;
  mem::HomeMap home_map_;
  coh::CoherenceFabric fabric_;
  phase::DdvFabric ddv_;
  Scheduler sched_;
  SimAllocator alloc_;
  SimBarrier global_barrier_;
  TaskQueue tasks_;
  std::unordered_map<unsigned, std::unique_ptr<SimLock>> locks_;
  std::vector<std::unique_ptr<cpu::CoreModel>> cores_;
  std::vector<std::unique_ptr<ProcState>> procs_;
  std::vector<HotLane> lanes_;  ///< one per processor, see HotLane
  std::vector<PendingMem> pending_;  ///< one per processor, see PendingMem
  /// Per-processor online detectors for phase-attributed interval capture
  /// (cfg.obs.intervals). classify() is pure w.r.t. simulated state —
  /// phase ids only label captured intervals and trace events, so the
  /// observability non-perturbation contract holds.
  std::vector<std::unique_ptr<phase::PhaseDetector>> obs_detectors_;
  InstrCount interval_len_;
  unsigned batch_n_ = 1;  ///< cfg_.batch_size, hoisted for op_mem
  bool ran_ = false;
};

}  // namespace dsm::sim
