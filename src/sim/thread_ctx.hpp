// thread_ctx.hpp — the API application kernels program against. One
// ThreadCtx per simulated processor; all methods execute on that
// processor's behalf and advance its local clock.
//
// Conventions:
//  * load/store/compute/branch commit *instructions* (counted toward the
//    sampling interval); barrier/lock/task-queue operations cost cycles
//    but no instructions (the paper counts non-synchronization
//    instructions).
//  * bb(id, n, fp) is the basic-block helper: n instructions of straight-
//    line work terminated by a taken branch at a synthetic address derived
//    from `id` — this is what feeds the BBV accumulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/machine.hpp"

namespace dsm::sim {

/// Stable synthetic basic-block id from a source-site name; use distinct
/// names per loop/branch site in an app kernel.
constexpr BlockId bb_id(std::string_view site) {
  // FNV-1a over the site name.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

class ThreadCtx {
 public:
  ThreadCtx(Machine& m, unsigned tid) : m_(&m), tid_(tid) {}

  NodeId self() const { return tid_; }
  unsigned nprocs() const { return m_->config().num_nodes; }
  /// Local clock. Flushes deferred accesses first (batch_size > 1) so
  /// the observed time includes every committed load/store — deferral
  /// must never be visible to the app.
  Cycle now() const {
    m_->flush_mem(tid_);
    return m_->scheduler().cycle(tid_);
  }
  const MachineConfig& config() const { return m_->config(); }

  // ---- committed instructions ----
  void load(Addr a) { m_->op_mem(tid_, a, /*write=*/false); }
  void store(Addr a) { m_->op_mem(tid_, a, /*write=*/true); }
  /// `n` non-memory instructions, `fp_frac` of them floating-point.
  void compute(InstrCount n, double fp_frac = 0.0) {
    m_->op_compute(tid_, n, fp_frac);
  }
  /// A conditional branch at the synthetic address of `block`.
  void branch(BlockId block, bool taken = true) {
    m_->op_branch(tid_, block, taken);
  }
  /// Basic block: n straight-line instructions closed by a taken branch.
  void bb(BlockId block, InstrCount n, double fp_frac = 0.0) {
    if (n > 0) m_->op_compute(tid_, n, fp_frac);
    m_->op_branch(tid_, block, true);
  }

  // ---- synchronization (cycles, no instructions) ----
  // Each flushes deferred accesses first: synchronization order must see
  // (and be timed after) every load/store issued before it.
  void barrier() { m_->op_barrier(tid_); }
  void lock(unsigned id) {
    m_->flush_mem(tid_);
    m_->lock_by_id(id).acquire(tid_);
  }
  void unlock(unsigned id) {
    m_->flush_mem(tid_);
    m_->lock_by_id(id).release(tid_);
  }

  /// Centralized task queue (single global queue; refill between barriers
  /// from one thread).
  void refill_tasks(std::uint64_t total) {
    m_->flush_mem(tid_);
    m_->tasks_.refill(total);
  }
  std::optional<std::uint64_t> pop_task() {
    m_->flush_mem(tid_);
    return m_->tasks_.pop(tid_);
  }

  // ---- memory management ----
  Addr alloc(std::uint64_t bytes) {
    m_->flush_mem(tid_);
    return m_->allocator().alloc(bytes);
  }
  Addr alloc_on(std::uint64_t bytes, NodeId node) {
    m_->flush_mem(tid_);
    return m_->allocator().alloc_on(bytes, node);
  }
  Addr alloc_distributed(std::uint64_t bytes, NodeId first = 0) {
    m_->flush_mem(tid_);
    return m_->allocator().alloc_distributed(bytes, first);
  }

  /// Deterministic per-processor random stream (independent of machine
  /// state — no flush needed).
  Rng& rng() { return m_->procs_.at(tid_)->rng; }

  /// Escape hatch to the machine; flushes so direct pokes observe every
  /// access issued so far.
  Machine& machine() {
    m_->flush_mem(tid_);
    return *m_;
  }

 private:
  Machine* m_;
  unsigned tid_;
};

}  // namespace dsm::sim
