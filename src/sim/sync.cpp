#include "sim/sync.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"

namespace dsm::sim {

SimBarrier::SimBarrier(Scheduler& sched, unsigned participants,
                       const SyncConfig& cfg)
    : sched_(&sched), n_(participants), cfg_(cfg) {
  DSM_ASSERT(n_ >= 1);
  waiters_.reserve(n_);
}

Cycle SimBarrier::release_cost() const {
  const unsigned stages =
      n_ <= 1 ? 0 : std::bit_width(std::uint32_t{n_ - 1});  // ceil(log2 n)
  return cfg_.barrier_base_cycles + cfg_.barrier_per_stage_cycles * stages;
}

void SimBarrier::wait(unsigned tid) {
  const Cycle arrival = sched_->cycle(tid);
  max_arrival_ = std::max(max_arrival_, arrival);
  ++arrived_;

  if (arrived_ < n_) {
    waiters_.push_back(tid);
    sched_->block(tid);
    // Released: the last arriver already set our clock.
    return;
  }

  // Last arrival: release everyone at max arrival + cost.
  const Cycle release = max_arrival_ + release_cost();
  ++episodes_;
  static const bool debug = std::getenv("DSM_BARRIER_DEBUG") != nullptr;
  if (debug) {
    Cycle min_arr = arrival;
    for (const unsigned w : waiters_)
      min_arr = std::min(min_arr, sched_->cycle(w));
    if (max_arrival_ - min_arr > 500'000)
      std::fprintf(stderr,
                   "[barrier %llu] last=p%u span=%llu cycles\n",
                   static_cast<unsigned long long>(episodes_), tid,
                   static_cast<unsigned long long>(max_arrival_ - min_arr));
  }
  for (const unsigned w : waiters_) {
    wait_stat_.add(static_cast<double>(release - sched_->cycle(w)));
    sched_->set_cycle(w, release);
    sched_->unblock(w);
  }
  wait_stat_.add(static_cast<double>(release - arrival));
  waiters_.clear();
  arrived_ = 0;
  max_arrival_ = 0;
  sched_->set_cycle(tid, release);
}

SimLock::SimLock(Scheduler& sched, const SyncConfig& cfg)
    : sched_(&sched), cfg_(cfg) {}

void SimLock::acquire(unsigned tid) {
  ++acquisitions_;
  if (!held_) {
    held_ = true;
    owner_ = tid;
    // A thread whose local clock lags the lock's last release acquires at
    // the release time, not "in the past" — the cooperative scheduler lets
    // threads run skewed, but lock occupancy intervals must never overlap
    // in simulated time.
    if (sched_->cycle(tid) < release_cycle_)
      sched_->set_cycle(tid, release_cycle_);
    sched_->advance(tid, cfg_.lock_acquire_cycles);
    return;
  }
  ++contended_;
  waiters_.push_back(tid);
  sched_->block(tid);
  // Woken by release(): owner_ and clock already set by the releaser.
  DSM_ASSERT(owner_ == tid);
}

void SimLock::release(unsigned tid) {
  DSM_ASSERT_MSG(held_ && owner_ == tid, "release by non-owner");
  release_cycle_ = sched_->cycle(tid);
  if (waiters_.empty()) {
    held_ = false;
    return;
  }
  const unsigned next = waiters_.front();
  waiters_.pop_front();
  owner_ = next;
  const Cycle start = std::max(release_cycle_ + cfg_.lock_transfer_cycles,
                               sched_->cycle(next));
  sched_->set_cycle(next, start);
  sched_->unblock(next);
}

TaskQueue::TaskQueue(Scheduler& sched, const SyncConfig& cfg)
    : lock_(sched, cfg) {}

void TaskQueue::refill(std::uint64_t total) {
  DSM_ASSERT_MSG(next_ >= total_, "refill of a non-drained task queue");
  next_ = 0;
  total_ = total;
}

std::optional<std::uint64_t> TaskQueue::pop(unsigned tid) {
  lock_.acquire(tid);
  std::optional<std::uint64_t> out;
  if (next_ < total_) out = next_++;
  lock_.release(tid);
  return out;
}

}  // namespace dsm::sim
