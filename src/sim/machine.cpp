#include "sim/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <span>

#include "common/assert.hpp"
#include "common/bitops.hpp"
#include "sim/thread_ctx.hpp"

namespace dsm::sim {

double RunSummary::cpi(unsigned p) const {
  DSM_ASSERT(p < final_cycles.size());
  if (instructions[p] == 0) return 0.0;
  return static_cast<double>(final_cycles[p]) /
         static_cast<double>(instructions[p]);
}

double RunSummary::remote_access_fraction(unsigned p) const {
  DSM_ASSERT(p < coherence.size());
  const auto& s = coherence[p];
  const std::uint64_t mem = s.local_mem + s.remote_mem + s.cache_to_cache;
  if (mem == 0) return 0.0;
  return static_cast<double>(s.remote_mem + s.cache_to_cache) /
         static_cast<double>(mem);
}

std::size_t RunSummary::min_intervals() const {
  std::size_t m = procs.empty() ? 0 : procs.front().intervals.size();
  for (const auto& p : procs) m = std::min(m, p.intervals.size());
  return m;
}

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg),
      obs_(cfg_.obs, cfg_.num_nodes),
      network_(cfg_, &obs_),
      home_map_(cfg_.num_nodes, cfg_.memory.page_bytes,
                mem::Placement::kRoundRobin),
      fabric_(cfg_, network_, home_map_, &obs_),
      ddv_(cfg_.num_nodes, network_.topology().ddv_distance_matrix()),
      sched_(cfg_.num_nodes),
      alloc_(home_map_),
      global_barrier_(sched_, cfg_.num_nodes, cfg_.sync),
      tasks_(sched_, cfg_.sync),
      interval_len_(cfg_.interval_per_processor()) {
  const std::string err = cfg_.validate();
  DSM_ASSERT_MSG(err.empty(), err.c_str());
  cores_.reserve(cfg_.num_nodes);
  procs_.reserve(cfg_.num_nodes);
  for (unsigned i = 0; i < cfg_.num_nodes; ++i) {
    cores_.push_back(
        std::make_unique<cpu::CoreModel>(cfg_.core, cfg_.predictor));
    procs_.push_back(std::make_unique<ProcState>(
        cfg_.phase, cfg_.seed * 0x9e3779b9u + i + 1));
  }
  lanes_.reserve(cfg_.num_nodes);
  for (unsigned i = 0; i < cfg_.num_nodes; ++i)
    lanes_.push_back(HotLane{procs_[i].get(), cores_[i].get(),
                             sched_.cycle_slot(i), ddv_.observe_row(i)});
  pending_.resize(cfg_.num_nodes);
  batch_n_ = cfg_.batch_size;
  DSM_ASSERT(batch_n_ >= 1 && batch_n_ <= coh::CoherenceFabric::kMaxBatch);
  if (cfg_.obs.intervals) {
    phase::Thresholds t;
    t.bbv = cfg_.obs.interval_bbv_threshold != 0
                ? cfg_.obs.interval_bbv_threshold
                : cfg_.phase.bbv_norm / 8;
    t.dds = cfg_.obs.interval_dds_threshold;
    obs_detectors_.reserve(cfg_.num_nodes);
    for (unsigned i = 0; i < cfg_.num_nodes; ++i) {
      if (t.dds > 0.0)
        obs_detectors_.push_back(std::make_unique<phase::BbvDdvDetector>(
            cfg_.phase.footprint_vectors, t));
      else
        obs_detectors_.push_back(std::make_unique<phase::BbvDetector>(
            cfg_.phase.footprint_vectors, t));
    }
    // All deterministic registrants (network links, fabric hooks) ran in
    // the member initializers above, so the tracked-slot set is final.
    obs_.metrics().enable_intervals(cfg_.obs.interval_capacity);
  }
}

void Machine::maybe_yield(unsigned tid) {
  HotLane& ln = lanes_[tid];
  if (*ln.clock - ln.ps->last_yield >= cfg_.scheduler_quantum_cycles) {
    sched_.yield(tid);
    ln.ps->last_yield = *ln.clock;
  }
}

void Machine::count_instr(unsigned tid, InstrCount n) {
  ProcState& ps = *lanes_[tid].ps;
  ps.instr_in_interval += n;
  ps.instr_since_branch += n;
  ps.total_instructions += n;
  if (ps.instr_in_interval >= interval_len_) end_interval(tid);
}

void Machine::end_interval(unsigned tid) {
  ProcState& ps = *lanes_[tid].ps;
  const Cycle now = *lanes_[tid].clock;

  // The DDV gather: processor tid queries every peer for its on-behalf
  // frequency vector. The traffic is recorded (it is the subject of the
  // paper's §III-B overhead estimate); the latency is off the critical
  // path — the exchange overlaps execution in dedicated hardware.
  const auto gather = ddv_.gather(tid);
  const unsigned vec_bytes = 4 * cfg_.num_nodes;
  for (NodeId p = 0; p < cfg_.num_nodes; ++p) {
    if (p == tid) continue;
    network_.message_latency(tid, p, 8, now, net::TrafficClass::kDdv);
    network_.message_latency(p, tid, vec_bytes, now,
                             net::TrafficClass::kDdv);
  }

  phase::IntervalRecord rec;
  rec.bbv = ps.bbv.snapshot();
  rec.f = gather.own_f;
  rec.c = gather.c;
  rec.dds = gather.dds;
  rec.instructions = ps.instr_in_interval;
  rec.cycles = now - ps.interval_start;
  rec.cpi = rec.instructions == 0
                ? 0.0
                : static_cast<double>(rec.cycles) /
                      static_cast<double>(rec.instructions);
  // Online phase classification (cfg.obs.intervals): label the interval
  // before the record is moved into the trace. Pure observation — the
  // detected id feeds the metrics timeline and the trace event only.
  PhaseId det_phase = kNoPhase;
  if (!obs_detectors_.empty()) det_phase = obs_detectors_[tid]->classify(rec).phase;
  ps.intervals.push_back(std::move(rec));

  if (obs_.intervals_enabled()) {
    obs::IntervalMeta meta;
    meta.end_cycle = now;
    meta.seq = ps.intervals.size() - 1;
    meta.node = tid;
    meta.phase = det_phase;
    obs_.metrics().end_interval(meta);
  }

  if (obs::TraceBuffer* tb = obs_.trace()) {
    obs::TraceEvent ev;
    ev.ts = now;
    ev.arg = ps.intervals.size() - 1;  // interval index just closed
    ev.kind = obs::TraceEvent::kPhaseBoundary;
    ev.node = static_cast<std::uint8_t>(tid);
    // Detected phase id + 1 (0 = detection off / unclassified) so
    // timeline overlays can color boundaries by phase.
    ev.aux = static_cast<std::uint32_t>(det_phase + 1);
    tb->record(ev);
  }

  // Start the next interval. Instructions committed since the last branch
  // stay pending and will be credited by that branch when it commits —
  // exactly what the accumulator hardware does at an interval boundary.
  ps.bbv.reset();
  ps.instr_in_interval = 0;
  ps.interval_start = now;
}

void Machine::op_mem(unsigned tid, Addr addr, bool write) {
  if (batch_n_ > 1) {
    PendingMem& pd = pending_[tid];
    // Hit fast path: with nothing pending, an L1 hit runs serially right
    // now — order is trivially preserved, and batching buys a hit
    // nothing (stage-1 prefetch overlap only pays on misses). Only
    // miss-adjacent runs are deferred into access_batch().
    if (pd.count == 0) {
      coh::AccessOutcome out;
      if (fabric_.access_l1_fast(tid, addr, write, out)) {
        HotLane& ln = lanes_[tid];
        ++ln.ddv_row[out.home];
        const Cycle stall = ln.core->exposed_memory_stall(
            out.latency, cfg_.l1.latency_cycles);
        *ln.clock += stall;
        ln.ps->mem_stall_cycles += stall;
        count_instr(tid, 1);
        maybe_yield(tid);
        return;
      }
    }
    pd.reqs[pd.count++] = {addr, write, static_cast<NodeId>(tid)};
    if (pd.count >= batch_n_) drain_pending(tid);
    return;
  }
  HotLane& ln = lanes_[tid];
  const Cycle now = *ln.clock;
  const auto out = fabric_.access(tid, addr, write, now);
  ++ln.ddv_row[out.home];  // == ddv_.record_access(tid, out.home)
  const Cycle stall =
      ln.core->exposed_memory_stall(out.latency, cfg_.l1.latency_cycles);
  *ln.clock = now + stall;
  ln.ps->mem_stall_cycles += stall;
  count_instr(tid, 1);
  maybe_yield(tid);
}

Cycle Machine::batch_advance(void* ctx, std::size_t /*i*/,
                             const coh::AccessOutcome& out) {
  auto* bc = static_cast<BatchCtx*>(ctx);
  Machine& m = *bc->m;
  HotLane& ln = m.lanes_[bc->tid];
  // op_mem's serial post-access sequence, verbatim. The member ran at
  // *ln.clock (nothing else advances it mid-batch), so `now` is its
  // access time exactly as in the serial path.
  const Cycle now = *ln.clock;
  ++ln.ddv_row[out.home];
  const Cycle stall =
      ln.core->exposed_memory_stall(out.latency, m.cfg_.l1.latency_cycles);
  *ln.clock = now + stall;
  ln.ps->mem_stall_cycles += stall;
  m.count_instr(bc->tid, 1);
  // maybe_yield, inlined so a yield can stop the batch: once another
  // thread runs, staged tag walks for the remaining members may be
  // stale, so they restage from live state in the next access_batch.
  if (*ln.clock - ln.ps->last_yield >= m.cfg_.scheduler_quantum_cycles) {
    m.sched_.yield(bc->tid);
    ln.ps->last_yield = *ln.clock;
    return coh::CoherenceFabric::kBatchStop;
  }
  return *ln.clock;
}

void Machine::drain_pending(unsigned tid) {
  PendingMem& pd = pending_[tid];
  coh::AccessOutcome outs[coh::CoherenceFabric::kMaxBatch];
  while (pd.count != 0) {
    BatchCtx bc{this, tid};
    const std::size_t done = fabric_.access_batch(
        std::span<const coh::CoherenceFabric::AccessReq>(pd.reqs.data(),
                                                         pd.count),
        std::span<coh::AccessOutcome>(outs, pd.count), *lanes_[tid].clock,
        &Machine::batch_advance, &bc);
    DSM_ASSERT(done >= 1 && done <= pd.count);
    // A yield stopped the batch early: shift the rest down and restage.
    for (std::size_t i = done; i < pd.count; ++i) pd.reqs[i - done] = pd.reqs[i];
    pd.count -= done;
  }
}

void Machine::op_compute(unsigned tid, InstrCount n, double fp_frac) {
  if (n == 0) return;
  flush_mem(tid);
  HotLane& ln = lanes_[tid];
  const Cycle c = ln.core->compute_cycles(n, fp_frac);
  *ln.clock += c;
  ln.ps->compute_cycles += c;
  count_instr(tid, n);
  maybe_yield(tid);
}

void Machine::op_branch(unsigned tid, BlockId block, bool taken) {
  flush_mem(tid);
  HotLane& ln = lanes_[tid];
  const Addr pc = (fnv1a64(block) << 2) | 0x400000ull;
  const Cycle c = 1 + ln.core->branch_cycles(pc, taken);
  *ln.clock += c;
  ln.ps->branch_cycles += c;
  count_instr(tid, 1);
  // The BBV accumulator: entry[hash(branch pc)] += instructions since the
  // previous branch (including this one).
  ProcState& ps = *ln.ps;
  ps.bbv.record_branch(pc, ps.instr_since_branch);
  ps.instr_since_branch = 0;
  maybe_yield(tid);
}

void Machine::op_barrier(unsigned tid) {
  flush_mem(tid);
  HotLane& ln = lanes_[tid];
  const Cycle before = *ln.clock;
  global_barrier_.wait(tid);
  ln.ps->sync_cycles += *ln.clock - before;
  ln.ps->last_yield = *ln.clock;
}

SimLock& Machine::lock_by_id(unsigned id) {
  auto it = locks_.find(id);
  if (it == locks_.end()) {
    it = locks_.emplace(id, std::make_unique<SimLock>(sched_, cfg_.sync))
             .first;
  }
  return *it->second;
}

RunSummary Machine::run(const AppFn& app) {
  DSM_ASSERT_MSG(!ran_, "a Machine instance runs one application");
  ran_ = true;

  sched_.run([this, &app](unsigned tid) {
    ThreadCtx ctx(*this, tid);
    app(ctx);
    flush_mem(tid);  // an app may end on a deferred load/store
  });

  RunSummary sum;
  sum.cfg = cfg_;
  sum.procs.reserve(cfg_.num_nodes);
  for (unsigned p = 0; p < cfg_.num_nodes; ++p) {
    phase::ProcessorTrace t;
    t.node = p;
    t.intervals = std::move(procs_[p]->intervals);
    sum.procs.push_back(std::move(t));
    sum.coherence.push_back(fabric_.stats(p));
    sum.final_cycles.push_back(sched_.cycle(p));
    sum.instructions.push_back(procs_[p]->total_instructions);
    sum.mispredict_rate.push_back(
        cores_[p]->predictor().misprediction_rate());
    sum.mem_stall_cycles.push_back(procs_[p]->mem_stall_cycles);
    sum.compute_cycles.push_back(procs_[p]->compute_cycles);
    sum.branch_cycles.push_back(procs_[p]->branch_cycles);
    sum.sync_cycles.push_back(procs_[p]->sync_cycles);
  }
  for (unsigned c = 0; c < net::kNumTrafficClasses; ++c) {
    const auto cls = static_cast<net::TrafficClass>(c);
    sum.net_messages[c] = network_.messages_sent(cls);
    sum.net_bytes[c] = network_.bytes_sent(cls);
  }
  sum.barrier_episodes = global_barrier_.episodes();
  sum.context_switches = sched_.context_switches();
  sum.barrier_wait_mean = global_barrier_.wait_stat().mean();
  sum.barrier_wait_max = global_barrier_.wait_stat().max();
  sum.obs_json = obs_.snapshot_json();
  sum.obs_intervals_json = obs_.intervals_json();
  if (cfg_.obs.trace && !cfg_.obs.trace_path.empty()) {
    std::string err;
    if (!obs_.trace_buffer().dump(cfg_.obs.trace_path, &err))
      std::fprintf(stderr, "warning: trace dump failed: %s\n", err.c_str());
  }
  return sum;
}

}  // namespace dsm::sim
