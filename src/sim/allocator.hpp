// allocator.hpp — the simulated global address space. Apps allocate named
// regions and control their page placement, emulating SPLASH-2-style data
// distribution (the driver of the paper's local-vs-remote effects).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "memory/home_map.hpp"

namespace dsm::sim {

class SimAllocator {
 public:
  /// Allocations start at `base` and grow upward, page-aligned per region
  /// so placement is never split by a neighbor.
  SimAllocator(mem::HomeMap& home_map, Addr base = 1ull << 20);

  /// Allocates `bytes` with the machine's default placement policy.
  Addr alloc(std::uint64_t bytes);

  /// Allocates `bytes` with every page homed on `node`.
  Addr alloc_on(std::uint64_t bytes, NodeId node);

  /// Allocates `bytes` with pages distributed round-robin over all nodes,
  /// starting at `first_node`.
  Addr alloc_distributed(std::uint64_t bytes, NodeId first_node = 0);

  Addr top() const { return next_; }
  std::uint64_t allocated_bytes() const { return allocated_; }

 private:
  Addr carve(std::uint64_t bytes);

  mem::HomeMap* home_map_;
  Addr next_;
  std::uint64_t allocated_ = 0;
};

}  // namespace dsm::sim
