#include "sim/scheduler.hpp"

#include <memory>

#include "common/assert.hpp"

namespace dsm::sim {

Scheduler::Scheduler(unsigned num_threads)
    : n_(num_threads),
      cycles_(num_threads, 0),
      states_(num_threads, State::kRunnable) {
  DSM_ASSERT(n_ > 0);
  go_.reserve(n_);
  for (unsigned i = 0; i < n_; ++i)
    go_.push_back(std::make_unique<std::binary_semaphore>(0));
}

Scheduler::~Scheduler() {
  for (auto& t : threads_)
    if (t.joinable()) t.join();
}

void Scheduler::run(const ThreadFn& fn) {
  DSM_ASSERT_MSG(!ran_, "a Scheduler instance runs once");
  ran_ = true;

  threads_.reserve(n_);
  for (unsigned tid = 0; tid < n_; ++tid) {
    threads_.emplace_back([this, tid, &fn] {
      go_[tid]->acquire();  // wait for the first dispatch
      fn(tid);
      states_[tid] = State::kFinished;
      coordinator_.release();
    });
  }

  // Coordinator loop: hand the token to the min-cycle runnable thread.
  for (;;) {
    const int next = pick();
    if (next < 0) {
      bool all_finished = true;
      for (const State s : states_)
        if (s != State::kFinished) all_finished = false;
      DSM_ASSERT_MSG(all_finished,
                     "simulated deadlock: blocked threads but none runnable");
      break;
    }
    ++switches_;
    go_[static_cast<unsigned>(next)]->release();
    coordinator_.acquire();
  }

  for (auto& t : threads_) t.join();
  threads_.clear();
}

int Scheduler::pick() const {
  int best = -1;
  for (unsigned i = 0; i < n_; ++i) {
    if (states_[i] != State::kRunnable) continue;
    if (best < 0 || cycles_[i] < cycles_[static_cast<unsigned>(best)])
      best = static_cast<int>(i);
  }
  return best;
}

Cycle Scheduler::cycle(unsigned tid) const {
  DSM_ASSERT(tid < n_);
  return cycles_[tid];
}

void Scheduler::advance(unsigned tid, Cycle dc) {
  DSM_ASSERT(tid < n_);
  cycles_[tid] += dc;
}

void Scheduler::set_cycle(unsigned tid, Cycle c) {
  DSM_ASSERT(tid < n_);
  cycles_[tid] = c;
}

void Scheduler::yield(unsigned tid) {
  DSM_ASSERT(tid < n_);
  DSM_ASSERT(states_[tid] == State::kRunnable);
  coordinator_.release();
  go_[tid]->acquire();
}

void Scheduler::block(unsigned tid) {
  DSM_ASSERT(tid < n_);
  states_[tid] = State::kBlocked;
  coordinator_.release();
  go_[tid]->acquire();
  DSM_ASSERT(states_[tid] == State::kRunnable);
}

void Scheduler::unblock(unsigned tid) {
  DSM_ASSERT(tid < n_);
  DSM_ASSERT_MSG(states_[tid] == State::kBlocked,
                 "unblock of a non-blocked thread");
  states_[tid] = State::kRunnable;
}

bool Scheduler::only_runnable(unsigned tid) const {
  for (unsigned i = 0; i < n_; ++i) {
    if (i == tid) continue;
    if (states_[i] == State::kRunnable) return false;
  }
  return true;
}

}  // namespace dsm::sim
