// scheduler.hpp — deterministic cooperative scheduling of simulated
// processors.
//
// Each simulated processor runs as a real OS thread, but exactly one is
// ever executing: the coordinator hands the token to the runnable thread
// with the smallest local cycle count (ties by id), which runs until it
// yields, blocks, or finishes. Min-cycle-first keeps the per-processor
// clocks in near-lockstep, so the memory-controller and network contention
// models observe requests in approximately global time order — and every
// run is bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <semaphore>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace dsm::sim {

class Scheduler {
 public:
  using ThreadFn = std::function<void(unsigned tid)>;

  explicit Scheduler(unsigned num_threads);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Runs `fn(tid)` on every simulated processor to completion.
  /// May be called once per Scheduler instance.
  void run(const ThreadFn& fn);

  unsigned num_threads() const { return n_; }

  // ---- calls from inside simulated threads ----

  /// Local clock of thread `tid` (readable/advanceable by its own code and
  /// by releasers at sync points).
  Cycle cycle(unsigned tid) const;
  void advance(unsigned tid, Cycle dc);
  void set_cycle(unsigned tid, Cycle c);

  /// Stable pointer to `tid`'s clock slot, for flattened per-op loops
  /// (sim::Machine) that read/advance the clock millions of times per
  /// run: same memory every cycle()/advance() call touches, minus the
  /// bounds check and call per op. The slot lives as long as the
  /// Scheduler and is only ever written by the token holder (or by a
  /// releaser at a sync point, exactly like advance()).
  Cycle* cycle_slot(unsigned tid) {
    DSM_ASSERT(tid < n_);
    return &cycles_[tid];
  }

  /// Cooperatively hand the token back; the thread stays runnable and will
  /// resume when it again holds the minimum clock.
  void yield(unsigned tid);

  /// Mark self blocked and hand the token back; resumes only after another
  /// thread calls unblock(tid).
  void block(unsigned tid);

  /// Make a blocked thread runnable again (called by the thread performing
  /// the release while it holds the token).
  void unblock(unsigned tid);

  /// True when every other thread is blocked or finished (used by the
  /// deadlock detector and by tests).
  bool only_runnable(unsigned tid) const;

  std::uint64_t context_switches() const { return switches_; }

 private:
  enum class State : std::uint8_t { kRunnable, kBlocked, kFinished };

  /// Picks the runnable thread with the minimum (cycle, tid); -1 if none.
  int pick() const;

  unsigned n_;
  std::vector<Cycle> cycles_;
  std::vector<State> states_;
  std::vector<std::unique_ptr<std::binary_semaphore>> go_;
  std::binary_semaphore coordinator_{0};
  std::vector<std::thread> threads_;
  std::uint64_t switches_ = 0;
  bool ran_ = false;
};

}  // namespace dsm::sim
