// sync.hpp — synchronization primitives over the cooperative scheduler:
// sense-reversing barrier, FIFO ticket lock, and a centralized task queue
// (the execution model the paper's §III-B discussion mentions for dynamic
// load balancing).
//
// Timing: a barrier costs base + per-stage * ceil(log2(n)) cycles after the
// last arrival; a contended lock hands off with a transfer delay. These
// stalls are *cycles without instructions*, which is exactly how parallel
// imbalance shows up in per-interval CPI — the signal the paper's CoV
// metric quantifies.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/scheduler.hpp"

namespace dsm::sim {

class SimBarrier {
 public:
  SimBarrier(Scheduler& sched, unsigned participants, const SyncConfig& cfg);

  /// Blocks `tid` until all participants arrive; on release every waiter's
  /// clock advances to (max arrival + barrier cost).
  void wait(unsigned tid);

  std::uint64_t episodes() const { return episodes_; }
  /// Mean cycles a participant waits at the barrier (imbalance measure).
  const RunningStat& wait_stat() const { return wait_stat_; }

 private:
  Cycle release_cost() const;

  Scheduler* sched_;
  unsigned n_;
  SyncConfig cfg_;
  unsigned arrived_ = 0;
  Cycle max_arrival_ = 0;
  std::vector<unsigned> waiters_;
  std::uint64_t episodes_ = 0;
  RunningStat wait_stat_;
};

class SimLock {
 public:
  SimLock(Scheduler& sched, const SyncConfig& cfg);

  void acquire(unsigned tid);
  void release(unsigned tid);
  bool held() const { return held_; }

  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t contended() const { return contended_; }

 private:
  Scheduler* sched_;
  SyncConfig cfg_;
  bool held_ = false;
  unsigned owner_ = 0;
  Cycle release_cycle_ = 0;
  std::deque<unsigned> waiters_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
};

/// Centralized task queue: indices [0, total) handed out under a lock.
class TaskQueue {
 public:
  TaskQueue(Scheduler& sched, const SyncConfig& cfg);

  /// Refills the queue with `total` tasks (call between phases, from a
  /// single thread at a barrier).
  void refill(std::uint64_t total);

  /// Next task index, or nullopt when drained. Charges lock costs.
  std::optional<std::uint64_t> pop(unsigned tid);

  std::uint64_t total() const { return total_; }

 private:
  SimLock lock_;
  std::uint64_t next_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dsm::sim
