#include "sim/allocator.hpp"

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm::sim {

SimAllocator::SimAllocator(mem::HomeMap& home_map, Addr base)
    : home_map_(&home_map), next_(align_up(base, home_map.page_bytes())) {}

Addr SimAllocator::carve(std::uint64_t bytes) {
  DSM_ASSERT(bytes > 0);
  const Addr a = next_;
  next_ = align_up(next_ + bytes, home_map_->page_bytes());
  allocated_ += bytes;
  return a;
}

Addr SimAllocator::alloc(std::uint64_t bytes) { return carve(bytes); }

Addr SimAllocator::alloc_on(std::uint64_t bytes, NodeId node) {
  const Addr a = carve(bytes);
  home_map_->place_range(a, bytes, node);
  return a;
}

Addr SimAllocator::alloc_distributed(std::uint64_t bytes, NodeId first_node) {
  const Addr a = carve(bytes);
  home_map_->distribute_range(a, bytes, first_node);
  return a;
}

}  // namespace dsm::sim
