// table_writer.hpp — aligned-text and CSV emitters used by the bench
// harnesses to print the paper's tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dsm {

/// Collects rows of string cells and renders them as an aligned text table
/// (for terminal output) or CSV (for plotting).
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  /// Column-aligned, pipe-separated rendering.
  std::string to_text() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;
  void write_csv_file(const std::string& path) const;

  /// Formats a double with `digits` significant digits (trailing-zero
  /// trimmed) — shared cell formatter for all benches.
  static std::string fmt(double v, int digits = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsm
