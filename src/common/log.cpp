#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace dsm {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed))
    return;
  std::fprintf(stderr, "[dsm %s] ", level_tag(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace dsm
