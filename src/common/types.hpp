// types.hpp — fundamental vocabulary types shared by every dsm module.
//
// Part of the reproduction of Ipek et al., "Dynamic Program Phase Detection
// in Distributed Shared-Memory Multiprocessors" (IPDPS 2006).
#pragma once

#include <cstdint>
#include <limits>

namespace dsm {

/// Simulated physical address in the DSM global address space (bytes).
using Addr = std::uint64_t;

/// Simulated time in processor clock cycles (2 GHz by default, Table I).
using Cycle = std::uint64_t;

/// Identifier of a node (processor + its slice of distributed memory).
using NodeId = std::uint32_t;

/// Identifier of a basic block site inside an application kernel. The
/// framework derives a synthetic branch instruction address from it.
using BlockId = std::uint64_t;

/// Phase identifier assigned by a detector. kNoPhase means "unclassified".
using PhaseId = std::int32_t;

inline constexpr PhaseId kNoPhase = -1;

/// Sentinel for "no node" / broadcast in protocol messages.
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel address used by allocators before placement.
inline constexpr Addr kNullAddr = 0;

/// Count of dynamic instructions (committed, non-synchronization unless
/// stated otherwise).
using InstrCount = std::uint64_t;

}  // namespace dsm
