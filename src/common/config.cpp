#include "common/config.hpp"

#include <cmath>
#include <sstream>

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm {

Cycle MachineConfig::ns_to_cycles(double ns) const {
  return static_cast<Cycle>(std::ceil(ns * cycles_per_ns()));
}

InstrCount MachineConfig::interval_per_processor() const {
  DSM_ASSERT(num_nodes > 0);
  return phase.interval_instructions / num_nodes;
}

std::string MachineConfig::validate() const {
  std::ostringstream err;
  if (num_nodes == 0) err << "num_nodes must be > 0; ";
  if (network.topology == Topology::kHypercube && !is_pow2(num_nodes))
    err << "hypercube requires a power-of-two node count; ";
  if (!is_pow2(predictor.table_entries))
    err << "gshare table must be a power of two; ";
  for (const CacheConfig* c : {&l1, &l2}) {
    if (!is_pow2(c->line_bytes)) err << "cache line size must be pow2; ";
    if (!is_pow2(c->size_bytes)) err << "cache size must be pow2; ";
    if (c->associativity == 0) err << "associativity must be > 0; ";
    if (c->size_bytes % (static_cast<std::uint64_t>(c->line_bytes) *
                         c->associativity) != 0)
      err << "cache size not divisible by line*assoc; ";
  }
  if (l1.line_bytes != l2.line_bytes)
    err << "L1/L2 line sizes must match (no sub-blocking support); ";
  if (!is_pow2(memory.page_bytes)) err << "page size must be pow2; ";
  if (memory.page_bytes < l2.line_bytes)
    err << "page must be at least a cache line; ";
  if (phase.bbv_entries == 0) err << "bbv_entries must be > 0; ";
  if (phase.footprint_vectors == 0) err << "footprint_vectors must be > 0; ";
  if (phase.interval_instructions < num_nodes)
    err << "interval too small for node count; ";
  if (core.issue_width == 0 || core.commit_width == 0)
    err << "pipeline widths must be > 0; ";
  if (core.mlp_overlap < 0.0 || core.mlp_overlap >= 1.0)
    err << "mlp_overlap must be in [0,1); ";
  if (memory.bandwidth_gbps <= 0.0) err << "bandwidth must be positive; ";
  if (network.control_bytes == 0)
    err << "control_bytes must be > 0; ";
  if (network.control_bytes > l2.line_bytes)
    err << "control message larger than a data line; ";
  if (batch_size < 1 || batch_size > 64)
    err << "batch_size must be in [1,64]; ";
  return err.str();
}

MachineConfig default_config(unsigned nodes) {
  MachineConfig cfg;
  cfg.num_nodes = nodes;
  // L1 defaults already match Table I; fill in the L2 row.
  cfg.l2.size_bytes = 2 * 1024 * 1024;
  cfg.l2.associativity = 8;
  cfg.l2.line_bytes = 32;
  cfg.l2.latency_cycles = 12;
  cfg.l1.line_bytes = 32;  // match L2 line size (Table I lists 32 B lines)
  DSM_ASSERT_MSG(cfg.validate().empty(), "default config must validate");
  return cfg;
}

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kMsi: return "msi";
    case Protocol::kMesi: return "mesi";
    case Protocol::kMoesi: return "moesi";
  }
  return "?";
}

bool protocol_from_name(const std::string& name, Protocol* out) {
  for (const Protocol p :
       {Protocol::kMsi, Protocol::kMesi, Protocol::kMoesi}) {
    if (name == protocol_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::kHypercube: return "Hypercube";
    case Topology::kMesh2D: return "2-D Mesh";
    case Topology::kTorus2D: return "2-D Torus";
    case Topology::kRing: return "Ring";
  }
  return "?";
}

std::string format_table1(const MachineConfig& cfg) {
  std::ostringstream os;
  const auto ghz = static_cast<double>(cfg.core.frequency_hz) / 1e9;
  os << "Parameter            | Value\n";
  os << "---------------------+------------------------------------------\n";
  os << "Processor Frequency  | " << ghz << "GHz\n";
  os << "Functional Units     | " << cfg.core.num_alu << " ALU, "
     << cfg.core.num_fpu << " FPU\n";
  os << "Fetch/Issue/Commit   | " << cfg.core.fetch_width << "/"
     << cfg.core.issue_width << "/" << cfg.core.commit_width << "\n";
  os << "Register File        | " << cfg.core.int_regs << " Int, "
     << cfg.core.fp_regs << " FP\n";
  os << "Branch Predictor     | " << cfg.predictor.table_entries
     << "-entry gshare\n";
  os << "L1                   | " << cfg.l1.size_bytes / 1024 << "kB, "
     << (cfg.l1.associativity == 1
             ? std::string("direct-mapped")
             : std::to_string(cfg.l1.associativity) + "-way")
     << ", " << cfg.l1.latency_cycles << " cycle\n";
  os << "L2                   | " << cfg.l2.size_bytes / (1024 * 1024)
     << "MB, " << cfg.l2.associativity << "-way, " << cfg.l2.line_bytes
     << "B, " << cfg.l2.latency_cycles << " cycles\n";
  os << "Memory               | SDRAM interleaved, " << cfg.memory.access_ns
     << "ns, " << cfg.memory.bandwidth_gbps << "GB/s\n";
  os << "Network              | " << topology_name(cfg.network.topology)
     << ", wormhole, "
     << cfg.network.router_frequency_hz / 1e6 << "MHz pipelined router, "
     << cfg.network.pin_to_pin_ns << "ns pin-to-pin\n";
  return os.str();
}

}  // namespace dsm
