// assert.hpp — always-on invariant checking for the simulator.
//
// A timing simulator whose invariants silently break produces plausible-
// looking garbage, so DSM_ASSERT stays active in release builds. The cost is
// negligible next to cache/directory lookups.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dsm::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "DSM_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace dsm::detail

#define DSM_ASSERT(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::dsm::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define DSM_ASSERT_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) ::dsm::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)
