// rng.hpp — deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs and platforms, so we
// avoid std::mt19937's distribution objects (whose output is not guaranteed
// identical across standard libraries) and implement xoshiro256** plus our
// own integer/real distributions.
#pragma once

#include <cstdint>
#include <vector>

namespace dsm {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// reimplemented here. Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give
  /// uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire's rejection method
  /// (unbiased). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double next_double();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate parameter (lambda > 0).
  double exponential(double lambda);

  /// True with probability p.
  bool bernoulli(double p);

  /// Geometric-like bounded Zipf sample in [0, n) with exponent s,
  /// computed via inverse-CDF over a precomputable table-free loop.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Splits off an independent stream (jump-free: re-seeds from this
  /// stream's output, which is sufficient for workload generation).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace dsm
