// parse.hpp — strict bounded integer parsing for command-line surfaces
// (bench flags, shard plans). One shared implementation so the accepting
// grammar cannot drift between layers.
#pragma once

#include <string>

namespace dsm {

/// Digits-only bounded parse: no sign (so "-1" cannot wrap through an
/// unsigned conversion), no whitespace, no base prefixes; value in
/// [min, max]. The 19-digit cap keeps the accumulation below unsigned
/// long overflow on LP64.
inline bool parse_unsigned(const std::string& s, unsigned long min,
                           unsigned long max, unsigned long& out) {
  if (s.empty() || s.size() > 19) return false;
  out = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<unsigned long>(c - '0');
  }
  return out >= min && out <= max;
}

}  // namespace dsm
