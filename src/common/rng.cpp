#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace dsm {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DSM_ASSERT(bound != 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DSM_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  DSM_ASSERT(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller, first variate only (stateless).
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double lambda) {
  DSM_ASSERT(lambda > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) { return next_double() < p; }

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  DSM_ASSERT(n != 0);
  if (n == 1) return 0;
  // Inverse-CDF by bisection over the generalized harmonic partial sums,
  // approximated with the integral of x^-s. Accurate enough for workload
  // skew; exactness is not required, determinism is.
  const double u = next_double();
  if (s <= 0.0) return next_below(n);
  double total;
  if (std::abs(s - 1.0) < 1e-9) {
    total = std::log(static_cast<double>(n) + 1.0);
  } else {
    total = (std::pow(static_cast<double>(n) + 1.0, 1.0 - s) - 1.0) / (1.0 - s);
  }
  const double target = u * total;
  double x;
  if (std::abs(s - 1.0) < 1e-9) {
    x = std::exp(target) - 1.0;
  } else {
    x = std::pow(target * (1.0 - s) + 1.0, 1.0 / (1.0 - s)) - 1.0;
  }
  auto k = static_cast<std::uint64_t>(x);
  if (k >= n) k = n - 1;
  return k;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace dsm
