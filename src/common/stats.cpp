#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dsm {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  mean_ += delta * nb / nab;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::cov() const {
  if (n_ < 2 || mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  DSM_ASSERT(hi > lo);
  DSM_ASSERT(buckets > 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0.0) {
      const double frac = (target - cum) / c;
      return bucket_lo(i) + frac * width_;
    }
    cum += c;
  }
  return hi_;
}

void StatRegistry::inc(const std::string& name, std::uint64_t by) {
  counters_[name] += by;
}

void StatRegistry::set(const std::string& name, std::uint64_t value) {
  counters_[name] = value;
}

std::uint64_t StatRegistry::get(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

bool StatRegistry::has(const std::string& name) const {
  return counters_.contains(name);
}

void StatRegistry::reset() { counters_.clear(); }

void StatRegistry::merge(const StatRegistry& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double cov_of(std::span<const double> xs) {
  const double m = mean_of(xs);
  if (m == 0.0) return 0.0;
  return stddev_of(xs) / m;
}

}  // namespace dsm
