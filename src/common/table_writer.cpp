#include "common/table_writer.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace dsm {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  DSM_ASSERT(!header_.empty());
}

void TableWriter::add_row(std::vector<std::string> cells) {
  DSM_ASSERT_MSG(cells.size() == header_.size(),
                 "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string TableWriter::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 == row.size() ? "\n" : " | ");
    }
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c], '-')
       << (c + 1 == header_.size() ? "\n" : "-+-");
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TableWriter::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TableWriter::write_csv_file(const std::string& path) const {
  std::ofstream f(path);
  DSM_ASSERT_MSG(f.good(), "cannot open CSV output file");
  f << to_csv();
}

std::string TableWriter::fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

}  // namespace dsm
