// stats.hpp — statistics accumulators used by the simulator and by the
// CoV analysis of the paper's evaluation (Section II defines CoV of CPI).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace dsm {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);
  void reset();

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n), matching the paper's CoV use where
  /// every interval of a phase is observed, not sampled.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation: stddev / mean; 0 when mean is 0 or n < 2.
  double cov() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bucket. Used for latency and queueing-delay distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1);
  std::uint64_t total() const { return total_; }
  std::span<const std::uint64_t> buckets() const { return counts_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  /// Value below which `q` (0..1) of the mass lies (linear within bucket).
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Named counter registry: every module dumps its counters here so benches
/// and tests can introspect totals without plumbing ad-hoc getters.
class StatRegistry {
 public:
  void inc(const std::string& name, std::uint64_t by = 1);
  void set(const std::string& name, std::uint64_t value);
  std::uint64_t get(const std::string& name) const;
  bool has(const std::string& name) const;
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  void reset();
  /// Adds every counter of `other` into this registry.
  void merge(const StatRegistry& other);

 private:
  std::map<std::string, std::uint64_t> counters_;
};

/// Mean of a span (0 for empty), and population CoV helpers used by the
/// analysis module.
double mean_of(std::span<const double> xs);
double stddev_of(std::span<const double> xs);
double cov_of(std::span<const double> xs);

}  // namespace dsm
