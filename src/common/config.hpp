// config.hpp — architecture configuration, defaulted to Table I of the paper.
//
//   Processor Frequency   2 GHz
//   Functional Units      6 ALU, 4 FPU
//   Fetch/Issue/Commit    6/6/6
//   Register File         128 Int, 128 FP
//   Branch Predictor      2,048-entry gshare
//   L1                    16 kB, direct-mapped, 1 cycle
//   L2                    2 MB, 8-way, 32 B, 12 cycles
//   Memory                SDRAM interleaved, 75 ns, 2.6 GB/s
//   Network               Hypercube, wormhole, 400 MHz pipelined router,
//                         16 ns pin-to-pin
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace dsm {

/// Core pipeline parameters (Table I, processor rows).
struct CoreConfig {
  std::uint64_t frequency_hz = 2'000'000'000;  ///< 2 GHz
  unsigned fetch_width = 6;
  unsigned issue_width = 6;
  unsigned commit_width = 6;
  unsigned num_alu = 6;
  unsigned num_fpu = 4;
  unsigned int_regs = 128;
  unsigned fp_regs = 128;
  unsigned mispredict_penalty = 14;  ///< cycles to refill the front end
  /// Fraction of a long-latency memory stall hidden by out-of-order
  /// overlap (memory-level parallelism). 0 = fully exposed, 1 = fully
  /// hidden. Calibrated so local L2 misses cost ~full latency and the
  /// 128-entry window hides a modest share.
  double mlp_overlap = 0.25;
};

/// Branch-predictor parameters (Table I: 2,048-entry gshare).
struct PredictorConfig {
  unsigned table_entries = 2048;  ///< must be a power of two
  unsigned history_bits = 11;     ///< log2(table_entries)
};

/// One cache level. Table I: L1 16 kB direct-mapped 1 cycle;
/// L2 2 MB 8-way 32 B lines 12 cycles.
struct CacheConfig {
  std::uint64_t size_bytes = 16 * 1024;
  unsigned associativity = 1;
  unsigned line_bytes = 32;
  unsigned latency_cycles = 1;
};

/// Main-memory parameters (Table I: SDRAM interleaved, 75 ns, 2.6 GB/s).
struct MemoryConfig {
  double access_ns = 75.0;             ///< row access latency
  double bandwidth_gbps = 2.6;         ///< per-controller sustained GB/s
  unsigned banks = 8;                  ///< interleaved SDRAM banks per node
  std::uint64_t page_bytes = 4096;     ///< home-assignment granularity
  /// Memory-controller occupancy per request in controller cycles; derives
  /// queueing (the contention the paper's C vector observes).
  double controller_occupancy_ns = 12.0;
  /// Directory SRAM lookup latency at the home node, in core cycles.
  unsigned directory_latency_cycles = 10;
};

/// Network parameters (Table I: hypercube, wormhole, 400 MHz pipelined
/// router, 16 ns pin-to-pin).
enum class Topology : std::uint8_t { kHypercube, kMesh2D, kTorus2D, kRing };

/// Coherence protocol run by the directory fabric. MESI is the paper's
/// baseline; MSI and MOESI are table-driven variants of the same fabric
/// (src/coherence/policy.hpp) selected once at machine construction.
enum class Protocol : std::uint8_t { kMsi, kMesi, kMoesi };

struct NetworkConfig {
  Topology topology = Topology::kHypercube;
  double router_frequency_hz = 400e6;  ///< one flit per router cycle
  double pin_to_pin_ns = 16.0;         ///< per-hop wire + pipeline latency
  unsigned link_bytes_per_flit = 8;
  unsigned header_flits = 1;
  /// Payload bytes of a coherence control message (requests, invalidations,
  /// acks, upgrade grants) — everything on the wire that is not a data
  /// line. Previously a constant inline in the fabric.
  unsigned control_bytes = 8;
  /// Epoch length (in processor cycles) for link-utilization tracking used
  /// by the analytical contention model.
  Cycle contention_epoch_cycles = 8192;
  /// Queueing sensitivity: extra per-hop delay = alpha * utilization /
  /// (1 - utilization), in router cycles (M/M/1-style).
  double contention_alpha = 1.0;
};

/// Phase-detector parameters (Section III-A/III-B of the paper).
struct PhaseConfig {
  unsigned bbv_entries = 32;        ///< accumulator size
  unsigned footprint_vectors = 32;  ///< footprint-table capacity (LRU)
  /// Sampling interval in committed non-synchronization instructions for a
  /// 1-processor system; each processor uses interval_instructions / n.
  /// Paper: 3M.
  InstrCount interval_instructions = 3'000'000;
  /// Normalize BBV accumulators to this total weight before distance
  /// comparison so thresholds are scale-free.
  std::uint32_t bbv_norm = 1u << 16;
};

/// Observability switches (src/obs). Plain data here — not in dsm_obs —
/// so MachineConfig carries it without a common→obs dependency cycle.
/// Both default OFF; when OFF the instrumented layers hold null handles
/// and simulated output is bit-identical to a build without the layer.
struct ObsConfig {
  /// Register + increment the deterministic metrics registry; the
  /// snapshot flows into RunSummary::obs_json (and record envelopes).
  bool stats = false;
  /// Record typed events into per-node preallocated ring buffers.
  bool trace = false;
  /// Ring capacity in events per node (32 B each). Overflow overwrites
  /// the oldest event and counts it as dropped — never allocates.
  std::uint32_t trace_events_per_node = 1u << 15;
  /// When set (and trace is on), Machine::run dumps the binary trace
  /// here after the application finishes.
  std::string trace_path;
  /// Capture interval-scoped metric snapshots at the phase detector's
  /// interval boundaries (implies stats). Each boundary stores the
  /// machine-wide counter deltas since the previous one, attributed to
  /// the online-detected phase id of the processor that closed it; the
  /// timeline flows into RunSummary::obs_intervals_json.
  bool intervals = false;
  /// Interval ring capacity (rows of one delta per tracked counter).
  /// Overflow overwrites the oldest row and counts it as dropped.
  std::uint32_t interval_capacity = 4096;
  /// BBV Manhattan-distance threshold for the online detector; 0 means
  /// the scale-relative default phase.bbv_norm / 8.
  std::uint64_t interval_bbv_threshold = 0;
  /// DDS difference threshold for the online detector; <= 0 selects the
  /// BBV-only detector (no data-dependent phase splitting).
  double interval_dds_threshold = 0.0;
};

/// Synchronization-primitive costs (barrier tree, lock handoff). The
/// barrier pays its base plus one network diameter of hops per stage.
struct SyncConfig {
  Cycle barrier_base_cycles = 100;
  Cycle barrier_per_stage_cycles = 60;  ///< multiplied by log2(n) stages
  Cycle lock_acquire_cycles = 40;
  Cycle lock_transfer_cycles = 120;     ///< handoff to a waiting processor
};

/// Whole-machine configuration.
struct MachineConfig {
  unsigned num_nodes = 8;  ///< paper studies 2, 8, 32
  Protocol protocol = Protocol::kMesi;  ///< coherence protocol variant
  CoreConfig core;
  PredictorConfig predictor;
  CacheConfig l1;        ///< Table I defaults
  CacheConfig l2;        ///< overridden to L2 values in default_config()
  MemoryConfig memory;
  NetworkConfig network;
  PhaseConfig phase;
  SyncConfig sync;
  ObsConfig obs;  ///< observability switches (default: everything off)
  /// Cooperative-scheduler quantum: a simulated thread runs at most this
  /// many cycles past the others before yielding (keeps local clocks in
  /// approximate lockstep for the contention models).
  Cycle scheduler_quantum_cycles = 20'000;
  /// Host-side batching of the Machine→fabric boundary: consecutive
  /// memory accesses of one simulated processor are gathered into groups
  /// of up to this many and driven through CoherenceFabric::access_batch,
  /// software-pipelining the tag-lane walks and directory probes. Pure
  /// execution knob — simulated output is bit-identical for every value
  /// (1 = the serial path). Capped at coh::CoherenceFabric::kMaxBatch.
  unsigned batch_size = 1;
  std::uint64_t seed = 1;

  /// Cycles per nanosecond at the core clock.
  double cycles_per_ns() const {
    return static_cast<double>(core.frequency_hz) / 1e9;
  }
  /// Converts a wall-clock latency into core cycles (rounded up).
  Cycle ns_to_cycles(double ns) const;
  /// Per-processor sampling interval (paper: 3M / num_nodes).
  InstrCount interval_per_processor() const;
  /// Validates invariants (power-of-two structures, nonzero sizes...);
  /// returns an error description, or empty when valid.
  std::string validate() const;
};

/// Table I architecture with `nodes` processors.
MachineConfig default_config(unsigned nodes);

/// Human-readable rendering of the configuration in the shape of Table I.
std::string format_table1(const MachineConfig& cfg);

const char* topology_name(Topology t);

/// Lower-case sweepable name: "msi" | "mesi" | "moesi".
const char* protocol_name(Protocol p);

/// Inverse of protocol_name (case-sensitive); false on an unknown name.
bool protocol_from_name(const std::string& name, Protocol* out);

}  // namespace dsm
