// bitops.hpp — small bit-manipulation helpers used across the simulator.
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace dsm {

/// True when `v` is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// log2 of a power-of-two value.
constexpr unsigned log2_exact(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Smallest power of two >= v (v must be nonzero).
constexpr std::uint64_t ceil_pow2(std::uint64_t v) noexcept {
  return std::bit_ceil(v);
}

/// Number of set bits.
constexpr unsigned popcount64(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::popcount(v));
}

/// Calls fn(index) for every set bit of `bits` in ascending order — a
/// ctz loop, so iterating a sharer bitset costs O(popcount) instead of a
/// full O(nodes) scan.
template <typename Fn>
constexpr void for_each_set_bit(std::uint64_t bits, Fn&& fn) {
  while (bits != 0) {
    fn(static_cast<unsigned>(std::countr_zero(bits)));
    bits &= bits - 1;  // clear lowest set bit
  }
}

/// Hamming distance between two node ids — the hop count on a hypercube.
constexpr unsigned hamming(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<unsigned>(std::popcount(a ^ b));
}

/// Ceiling division for unsigned integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Round `v` up to the next multiple of `align` (align must be a power of 2).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align) noexcept {
  return (v + align - 1) & ~(align - 1);
}

/// Fowler–Noll–Vo 1a hash, 64-bit. Used for synthetic branch addresses and
/// the BBV accumulator index hash (Fig. 1 of the paper).
constexpr std::uint64_t fnv1a64(std::uint64_t x) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (i * 8)) & 0xffull;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Mix two 64-bit values into one hash (for composite keys).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return fnv1a64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

}  // namespace dsm
