// log.hpp — minimal leveled logging. The simulator is silent by default;
// benches raise the level for progress reporting.
#pragma once

#include <cstdarg>

namespace dsm {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold; messages above it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging to stderr with a level prefix.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace dsm

#define DSM_LOG_INFO(...) ::dsm::logf(::dsm::LogLevel::kInfo, __VA_ARGS__)
#define DSM_LOG_WARN(...) ::dsm::logf(::dsm::LogLevel::kWarn, __VA_ARGS__)
#define DSM_LOG_ERROR(...) ::dsm::logf(::dsm::LogLevel::kError, __VA_ARGS__)
#define DSM_LOG_DEBUG(...) ::dsm::logf(::dsm::LogLevel::kDebug, __VA_ARGS__)
