#include "memory/dram.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm::mem {

Dram::Dram(const MachineConfig& cfg)
    : banks_(cfg.memory.banks),
      line_shift_(log2_exact(cfg.l2.line_bytes)),
      access_cycles_(cfg.ns_to_cycles(cfg.memory.access_ns)),
      cycles_per_byte_(cfg.cycles_per_ns() /
                       cfg.memory.bandwidth_gbps) {  // GB/s == B/ns
  DSM_ASSERT(banks_ > 0);
}

Cycle Dram::access_latency(unsigned bytes) const {
  return access_cycles_ + channel_occupancy(bytes);
}

Cycle Dram::channel_occupancy(unsigned bytes) const {
  return static_cast<Cycle>(std::ceil(cycles_per_byte_ * bytes));
}

unsigned Dram::bank_of(Addr line_addr) const {
  return static_cast<unsigned>((line_addr >> line_shift_) % banks_);
}

}  // namespace dsm::mem
