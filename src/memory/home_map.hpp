// home_map.hpp — page-granular assignment of the global address space to
// home nodes. The paper's DDV counts "loads and stores ... that accessed
// data with home in node j"; this map is where "home" is defined.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"

namespace dsm::mem {

/// Default placement policy for pages not explicitly placed.
enum class Placement : std::uint8_t {
  kRoundRobin,   ///< page i -> node i mod n (classic DSM interleaving)
  kBlockCyclic,  ///< blocks of pages cycle over the nodes
  kFirstTouch,   ///< home = first accessor (SGI-style)
};

class HomeMap {
 public:
  HomeMap(unsigned nodes, std::uint64_t page_bytes, Placement policy,
          std::uint64_t block_pages = 8);

  unsigned nodes() const { return nodes_; }
  std::uint64_t page_bytes() const { return page_bytes_; }
  Placement policy() const { return policy_; }

  /// Home of the page containing `addr`, assigning it per policy on first
  /// use. `accessor` resolves first-touch; other policies ignore it.
  NodeId home_of(Addr addr, NodeId accessor);

  /// Home if already determined (explicit or policy-computable without an
  /// accessor); kNoNode for an untouched first-touch page.
  NodeId peek_home(Addr addr) const;

  /// Explicitly places every page overlapping [addr, addr+bytes) on `node`
  /// (overrides the policy; later calls override earlier ones).
  void place_range(Addr addr, std::uint64_t bytes, NodeId node);

  /// Distributes pages of [addr, addr+bytes) round-robin starting at
  /// `first_node` — how our apps emulate SPLASH-2-style data distribution.
  void distribute_range(Addr addr, std::uint64_t bytes, NodeId first_node = 0);

  /// Number of pages with an explicit or first-touch binding.
  std::size_t bound_pages() const { return explicit_.size(); }

 private:
  /// Called on every simulated access: shift when page_bytes is a power of
  /// two (the common case), divide otherwise.
  std::uint64_t page_of(Addr addr) const {
    return page_shift_ >= 0 ? addr >> page_shift_ : addr / page_bytes_;
  }
  NodeId policy_home(std::uint64_t page) const;

  unsigned nodes_;
  std::uint64_t page_bytes_;
  int page_shift_;  ///< log2(page_bytes) when a power of two, else -1
  Placement policy_;
  std::uint64_t block_pages_;
  std::unordered_map<std::uint64_t, NodeId> explicit_;
};

}  // namespace dsm::mem
