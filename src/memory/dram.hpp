// dram.hpp — interleaved-SDRAM timing for one node's local memory
// (Table I: SDRAM interleaved, 75 ns access, 2.6 GB/s).
//
// The device model is deliberately stateless in time: a request costs the
// row-access latency plus the channel transfer for its payload. Queueing
// ahead of the device is modeled by the MemController's utilization-based
// queue (mem_controller.hpp), which — unlike an absolute busy-until
// reservation — is immune to the bounded clock skew between cooperatively
// scheduled processors.
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"

namespace dsm::mem {

class Dram {
 public:
  explicit Dram(const MachineConfig& cfg);

  /// Device-only latency (no queueing) for a `bytes`-byte access.
  Cycle access_latency(unsigned bytes) const;

  /// Cycles the shared data channel is occupied by a `bytes` transfer —
  /// the service time the controller's queue model uses.
  Cycle channel_occupancy(unsigned bytes) const;

  /// Bank selected by a line address (consecutive lines hit consecutive
  /// banks: classic SDRAM interleaving). Exposed for tests/statistics.
  unsigned bank_of(Addr line_addr) const;

  unsigned banks() const { return banks_; }

 private:
  unsigned banks_;
  unsigned line_shift_;
  Cycle access_cycles_;     ///< 75 ns in core cycles
  double cycles_per_byte_;  ///< 1 / (2.6 GB/s) in core cycles
};

}  // namespace dsm::mem
