#include "memory/home_map.hpp"

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm::mem {

HomeMap::HomeMap(unsigned nodes, std::uint64_t page_bytes, Placement policy,
                 std::uint64_t block_pages)
    : nodes_(nodes), page_bytes_(page_bytes),
      page_shift_(is_pow2(page_bytes)
                      ? static_cast<int>(log2_exact(page_bytes))
                      : -1),
      policy_(policy), block_pages_(block_pages) {
  DSM_ASSERT(nodes_ > 0);
  DSM_ASSERT(page_bytes_ > 0);
  DSM_ASSERT(block_pages_ > 0);
}

NodeId HomeMap::policy_home(std::uint64_t page) const {
  switch (policy_) {
    case Placement::kRoundRobin:
      return static_cast<NodeId>(page % nodes_);
    case Placement::kBlockCyclic:
      return static_cast<NodeId>((page / block_pages_) % nodes_);
    case Placement::kFirstTouch:
      return kNoNode;  // resolved in home_of
  }
  return kNoNode;
}

NodeId HomeMap::home_of(Addr addr, NodeId accessor) {
  const std::uint64_t page = page_of(addr);
  // Skip the hash probe entirely while no page has an explicit binding —
  // on pure-policy runs this keeps the per-access path hash-free.
  if (!explicit_.empty()) {
    if (const auto it = explicit_.find(page); it != explicit_.end())
      return it->second;
  }
  const NodeId policy_node = policy_home(page);
  if (policy_node != kNoNode) return policy_node;
  // First touch: bind now.
  DSM_ASSERT(accessor < nodes_);
  explicit_.emplace(page, accessor);
  return accessor;
}

NodeId HomeMap::peek_home(Addr addr) const {
  const std::uint64_t page = page_of(addr);
  if (const auto it = explicit_.find(page); it != explicit_.end())
    return it->second;
  return policy_home(page);
}

void HomeMap::place_range(Addr addr, std::uint64_t bytes, NodeId node) {
  DSM_ASSERT(node < nodes_);
  if (bytes == 0) return;
  const std::uint64_t first = page_of(addr);
  const std::uint64_t last = page_of(addr + bytes - 1);
  for (std::uint64_t p = first; p <= last; ++p) explicit_[p] = node;
}

void HomeMap::distribute_range(Addr addr, std::uint64_t bytes,
                               NodeId first_node) {
  if (bytes == 0) return;
  const std::uint64_t first = page_of(addr);
  const std::uint64_t last = page_of(addr + bytes - 1);
  for (std::uint64_t p = first; p <= last; ++p)
    explicit_[p] = static_cast<NodeId>((first_node + (p - first)) % nodes_);
}

}  // namespace dsm::mem
