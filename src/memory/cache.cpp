#include "memory/cache.hpp"

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm::mem {

const char* mesi_name(Mesi s) {
  switch (s) {
    case Mesi::kInvalid: return "I";
    case Mesi::kShared: return "S";
    case Mesi::kExclusive: return "E";
    case Mesi::kModified: return "M";
  }
  return "?";
}

Cache::Cache(const CacheConfig& cfg)
    : cfg_(cfg),
      sets_(cfg.size_bytes /
            (static_cast<std::uint64_t>(cfg.line_bytes) * cfg.associativity)),
      line_shift_(log2_exact(cfg.line_bytes)),
      ways_(sets_ * cfg.associativity) {
  DSM_ASSERT(is_pow2(cfg.line_bytes));
  DSM_ASSERT(is_pow2(sets_));
  DSM_ASSERT(cfg.associativity >= 1);
}

std::uint64_t Cache::set_index(Addr line) const {
  return (line >> line_shift_) & (sets_ - 1);
}

Cache::Way* Cache::find(Addr addr) {
  const Addr line = line_of(addr);
  Way* base = &ways_[set_index(line) * cfg_.associativity];
  for (unsigned w = 0; w < cfg_.associativity; ++w) {
    if (base[w].state != Mesi::kInvalid && base[w].tag == line) return &base[w];
  }
  return nullptr;
}

const Cache::Way* Cache::find(Addr addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

Cache::LineRef Cache::lookup(Addr addr) { return LineRef(find(addr)); }

Mesi Cache::state_of(LineRef ref) const {
  return ref.way_ ? ref.way_->state : Mesi::kInvalid;
}

void Cache::touch(LineRef ref) {
  DSM_ASSERT_MSG(ref.way_ != nullptr, "touch of absent line");
  ref.way_->lru = ++tick_;
  ++hits_;
}

void Cache::record_miss() { ++misses_; }

void Cache::set_state(LineRef ref, Mesi s) {
  DSM_ASSERT_MSG(ref.way_ != nullptr, "set_state on absent line");
  DSM_ASSERT(s != Mesi::kInvalid);
  ref.way_->state = s;
}

bool Cache::probe(Addr addr) const { return find(addr) != nullptr; }

Mesi Cache::state(Addr addr) const {
  const Way* w = find(addr);
  return w ? w->state : Mesi::kInvalid;
}

void Cache::set_state(Addr addr, Mesi s) {
  Way* w = find(addr);
  DSM_ASSERT_MSG(w != nullptr, "set_state on absent line");
  DSM_ASSERT(s != Mesi::kInvalid);
  w->state = s;
}

bool Cache::access(Addr addr) {
  Way* w = find(addr);
  if (w == nullptr) {
    ++misses_;
    return false;
  }
  w->lru = ++tick_;
  ++hits_;
  return true;
}

std::optional<Victim> Cache::fill(Addr addr, Mesi s) {
  DSM_ASSERT(s != Mesi::kInvalid);
  const Addr line = line_of(addr);
  DSM_ASSERT_MSG(find(line) == nullptr, "fill of already-present line");
  Way* base = &ways_[set_index(line) * cfg_.associativity];
  Way* victim = nullptr;
  for (unsigned w = 0; w < cfg_.associativity; ++w) {
    if (base[w].state == Mesi::kInvalid) {
      victim = &base[w];
      break;
    }
    if (victim == nullptr || base[w].lru < victim->lru) victim = &base[w];
  }
  DSM_ASSERT(victim != nullptr);  // associativity >= 1 guarantees a way
  std::optional<Victim> out;
  if (victim->state != Mesi::kInvalid) {
    out = Victim{victim->tag, victim->state};
    ++evictions_;
  }
  victim->tag = line;
  victim->state = s;
  victim->lru = ++tick_;
  return out;
}

Mesi Cache::invalidate(Addr addr) { return invalidate(lookup(addr)); }

Mesi Cache::invalidate(LineRef ref) {
  Way* w = ref.way_;
  if (w == nullptr) return Mesi::kInvalid;
  const Mesi prior = w->state;
  w->state = Mesi::kInvalid;
  ++invals_;
  return prior;
}

Mesi Cache::downgrade(Addr addr) { return downgrade(lookup(addr)); }

Mesi Cache::downgrade(LineRef ref) {
  Way* w = ref.way_;
  if (w == nullptr) return Mesi::kInvalid;
  const Mesi prior = w->state;
  if (prior == Mesi::kExclusive || prior == Mesi::kModified)
    w->state = Mesi::kShared;
  return prior;
}

void Cache::flush() {
  for (auto& w : ways_) w.state = Mesi::kInvalid;
}

std::vector<Addr> Cache::resident_lines() const {
  std::vector<Addr> out;
  for (const auto& w : ways_)
    if (w.state != Mesi::kInvalid) out.push_back(w.tag);
  return out;
}

double Cache::hit_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
}

}  // namespace dsm::mem
