#include "memory/cache.hpp"

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm::mem {

const char* state_name(LineState s) {
  switch (s) {
    case LineState::kInvalid: return "I";
    case LineState::kShared: return "S";
    case LineState::kExclusive: return "E";
    case LineState::kModified: return "M";
    case LineState::kOwned: return "O";
  }
  return "?";
}

Cache::Cache(const CacheConfig& cfg)
    : cfg_(cfg),
      sets_(cfg.size_bytes /
            (static_cast<std::uint64_t>(cfg.line_bytes) * cfg.associativity)),
      line_shift_(log2_exact(cfg.line_bytes)),
      tags_(sets_ * cfg.associativity, kNoTag),
      states_(sets_ * cfg.associativity, LineState::kInvalid),
      lru_(sets_ * cfg.associativity, 0) {
  DSM_ASSERT(is_pow2(cfg.line_bytes));
  DSM_ASSERT(is_pow2(sets_));
  DSM_ASSERT(cfg.associativity >= 1);
}

std::uint64_t Cache::find(Addr addr) const {
  const Addr line = line_of(addr);
  const std::uint64_t set = set_index(line);
  if (cfg_.associativity == 1) {
    // Direct-mapped: the set IS the way. Branch-free hit test — a miss
    // ORs the index with all-ones, which is exactly LineRef::kAbsent.
    const auto hit = static_cast<std::uint64_t>(tags_[set] == line);
    return set | (hit - 1);
  }
  const std::uint64_t base = set * cfg_.associativity;
  for (unsigned w = 0; w < cfg_.associativity; ++w) {
    // Empty ways hold kNoTag, never equal to a line address, so the walk
    // reads only the tag lane.
    if (tags_[base + w] == line) return base + w;
  }
  return LineRef::kAbsent;
}

void Cache::touch(LineRef ref) {
  DSM_ASSERT_MSG(ref, "touch of absent line");
  lru_[ref.idx_] = ++tick_;
  ++hits_;
}

void Cache::set_state(LineRef ref, LineState s) {
  DSM_ASSERT_MSG(ref, "set_state on absent line");
  DSM_ASSERT(s != LineState::kInvalid);
  states_[ref.idx_] = s;
}

LineState Cache::state(Addr addr) const {
  const std::uint64_t i = find(addr);
  return i != LineRef::kAbsent ? states_[i] : LineState::kInvalid;
}

void Cache::set_state(Addr addr, LineState s) {
  const std::uint64_t i = find(addr);
  DSM_ASSERT_MSG(i != LineRef::kAbsent, "set_state on absent line");
  DSM_ASSERT(s != LineState::kInvalid);
  states_[i] = s;
}

bool Cache::access(Addr addr) {
  const std::uint64_t i = find(addr);
  if (i == LineRef::kAbsent) {
    ++misses_;
    return false;
  }
  lru_[i] = ++tick_;
  ++hits_;
  return true;
}

Cache::FillCursor Cache::lookup_for_fill(Addr addr) const {
  const Addr line = line_of(addr);
  const std::uint64_t set = set_index(line);
  FillCursor cur;
  if (cfg_.associativity == 1) {
    // Direct-mapped: the set IS the way — hit, victim, and fill slot all
    // name the same index, so no walk at all.
    if (tags_[set] == line) {
      cur.ref = LineRef(set);
      return cur;
    }
    cur.slot = set;
    if (states_[set] != LineState::kInvalid) cur.victim_line = tags_[set];
    return cur;
  }
  // One walk answers both questions fill() and find() used to walk for
  // separately. Victim policy must stay bit-identical to fill()'s: first
  // empty way, else strict min-LRU in way order (ties keep the earlier
  // way).
  const std::uint64_t base = set * cfg_.associativity;
  std::uint64_t victim = base;
  bool found_empty = false;
  bool have_victim = false;
  for (unsigned w = 0; w < cfg_.associativity; ++w) {
    const std::uint64_t i = base + w;
    if (tags_[i] == line) {
      cur.ref = LineRef(i);
      return cur;
    }
    if (found_empty) continue;
    if (tags_[i] == kNoTag) {
      victim = i;
      found_empty = true;
      continue;
    }
    if (!have_victim || lru_[i] < lru_[victim]) {
      victim = i;
      have_victim = true;
    }
  }
  cur.slot = victim;
  if (states_[victim] != LineState::kInvalid) cur.victim_line = tags_[victim];
  return cur;
}

std::optional<Victim> Cache::fill_at(const FillCursor& cur, Addr addr,
                                     LineState s) {
  DSM_ASSERT(s != LineState::kInvalid);
  DSM_ASSERT_MSG(!cur.ref, "fill_at with a hit cursor");
  const Addr line = line_of(addr);
  DSM_ASSERT_MSG(set_index(line) == cur.slot / cfg_.associativity,
                 "fill_at cursor from a different set");
  // Staleness tripwire: the slot must still hold exactly the victim the
  // walk saw (or still be empty). Structural changes to the set between
  // the walk and the fill would divert the victim choice; callers track
  // disturbed sets and re-walk instead of reaching here.
  DSM_ASSERT_MSG(
      tags_[cur.slot] ==
          (cur.victim_line == FillCursor::kNoLine ? kNoTag : cur.victim_line),
      "fill_at with a stale cursor");
  std::optional<Victim> out;
  if (states_[cur.slot] != LineState::kInvalid) {
    out = Victim{tags_[cur.slot], states_[cur.slot]};
    ++evictions_;
  }
  tags_[cur.slot] = line;
  states_[cur.slot] = s;
  lru_[cur.slot] = ++tick_;
  return out;
}

std::optional<Victim> Cache::fill(Addr addr, LineState s) {
  DSM_ASSERT(s != LineState::kInvalid);
  const Addr line = line_of(addr);
  const std::uint64_t base = set_index(line) * cfg_.associativity;
  // One walk serves both the absence check and the victim scan (the old
  // separate find() assert re-walked the set). Victim policy unchanged:
  // first empty way, else strict min-LRU in way order (ties keep the
  // earlier way).
  std::uint64_t victim = base;
  bool found_empty = false;
  bool have_victim = false;
  for (unsigned w = 0; w < cfg_.associativity; ++w) {
    const std::uint64_t i = base + w;
    DSM_ASSERT_MSG(tags_[i] != line, "fill of already-present line");
    if (found_empty) continue;
    if (tags_[i] == kNoTag) {
      victim = i;
      found_empty = true;
      continue;
    }
    if (!have_victim || lru_[i] < lru_[victim]) {
      victim = i;
      have_victim = true;
    }
  }
  std::optional<Victim> out;
  if (states_[victim] != LineState::kInvalid) {
    out = Victim{tags_[victim], states_[victim]};
    ++evictions_;
  }
  tags_[victim] = line;
  states_[victim] = s;
  lru_[victim] = ++tick_;
  return out;
}

LineState Cache::invalidate(Addr addr) { return invalidate(lookup(addr)); }

LineState Cache::invalidate(LineRef ref) {
  if (!ref) return LineState::kInvalid;
  const LineState prior = states_[ref.idx_];
  states_[ref.idx_] = LineState::kInvalid;
  tags_[ref.idx_] = kNoTag;
  ++invals_;
  return prior;
}

LineState Cache::downgrade(Addr addr) { return downgrade(lookup(addr)); }

LineState Cache::downgrade(LineRef ref) {
  if (!ref) return LineState::kInvalid;
  const LineState prior = states_[ref.idx_];
  if (prior == LineState::kExclusive || prior == LineState::kModified)
    states_[ref.idx_] = LineState::kShared;
  return prior;
}

void Cache::flush() {
  for (auto& s : states_) s = LineState::kInvalid;
  for (auto& t : tags_) t = kNoTag;
}

std::vector<Addr> Cache::resident_lines() const {
  std::vector<Addr> out;
  for (std::size_t i = 0; i < tags_.size(); ++i)
    if (states_[i] != LineState::kInvalid) out.push_back(tags_[i]);
  return out;
}

double Cache::hit_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
}

}  // namespace dsm::mem
