#include "memory/mem_controller.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dsm::mem {

MemController::MemController(const MachineConfig& cfg, NodeId node)
    : node_(node),
      occupancy_(cfg.ns_to_cycles(cfg.memory.controller_occupancy_ns)),
      epoch_cycles_(cfg.network.contention_epoch_cycles),
      dram_(cfg),
      per_requestor_(cfg.num_nodes, 0) {}

void MemController::roll(std::uint64_t epoch_now) const {
  if (epoch_ == epoch_now) return;
  busy_previous_ = (epoch_ + 1 == epoch_now) ? busy_current_ : 0.0;
  busy_current_ = 0.0;
  epoch_ = epoch_now;
}

double MemController::utilization(Cycle now) const {
  roll(now / epoch_cycles_);
  return std::min(busy_previous_ / static_cast<double>(epoch_cycles_), 1.0);
}

Cycle MemController::request(Addr line_addr, Cycle now, unsigned bytes,
                             NodeId requestor) {
  DSM_ASSERT(requestor < per_requestor_.size());
  (void)line_addr;
  ++requests_;
  ++per_requestor_[requestor];

  // Service time: the controller and the data channel pipeline, so the
  // bottleneck stage sets the rate.
  const Cycle service =
      std::max<Cycle>(occupancy_, dram_.channel_occupancy(bytes));

  roll(now / epoch_cycles_);
  const double rho = std::min(
      busy_previous_ / static_cast<double>(epoch_cycles_), 0.90);
  const auto queue_wait = static_cast<Cycle>(
      std::llround(static_cast<double>(service) * rho / (1.0 - rho)));
  busy_current_ += static_cast<double>(service);

  return queue_wait + dram_.access_latency(bytes);
}

std::uint64_t MemController::requests_from(NodeId n) const {
  DSM_ASSERT(n < per_requestor_.size());
  return per_requestor_[n];
}

}  // namespace dsm::mem
