// mem_controller.hpp — the home node's memory controller: an epoch-
// utilization queue in front of the DRAM.
//
// This queue is the physical source of the *contention* the paper's DDV
// contention vector C observes: when many processors hammer one home node,
// requests pile up here and every visitor's latency rises.
//
// Queueing is analytical (M/D/1-shaped over the previous epoch's
// utilization) rather than an absolute busy-until reservation, so the
// bounded clock skew between cooperatively scheduled processors cannot
// manufacture phantom waits — see tests/mem_controller_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "memory/dram.hpp"

namespace dsm::mem {

class MemController {
 public:
  MemController(const MachineConfig& cfg, NodeId node);

  NodeId node() const { return node_; }

  /// One request from `requestor` arriving at `now` for `bytes` at
  /// `line_addr`; returns queueing + device latency in cycles.
  Cycle request(Addr line_addr, Cycle now, unsigned bytes, NodeId requestor);

  /// Utilization (0..1) of the controller during the last completed epoch.
  double utilization(Cycle now) const;

  std::uint64_t requests() const { return requests_; }
  std::uint64_t requests_from(NodeId n) const;

 private:
  void roll(std::uint64_t epoch_now) const;

  NodeId node_;
  Cycle occupancy_;      ///< controller busy time per request
  Cycle epoch_cycles_;   ///< shares the network's contention epoch length
  Dram dram_;
  mutable std::uint64_t epoch_ = 0;
  mutable double busy_current_ = 0.0;   ///< service cycles booked this epoch
  mutable double busy_previous_ = 0.0;  ///< last epoch's booked cycles
  std::uint64_t requests_ = 0;
  std::vector<std::uint64_t> per_requestor_;
};

}  // namespace dsm::mem
