// cache.hpp — generic set-associative cache with true-LRU replacement and
// a per-line coherence state (LineState below), used for both the L1
// (16 kB direct-mapped) and the L2 (2 MB, 8-way, 32 B lines) of Table I.
//
// The cache is *functional*: it tracks tags, LRU order, and coherence
// state. Timing is composed by the node model (memory/mem_controller.hpp,
// coherence/directory.hpp) from the configured hit latencies.
//
// Data layout: structure-of-arrays. The tag, state, and LRU lanes are
// separate dense vectors indexed by set * associativity + way, so the
// associative search of lookup()/probe() streams through the tag lane
// only — one 64-byte cache line of host memory covers a whole 8-way set
// of 8-byte tags, where the old row-major Way{tag,state,lru} records
// spread the same search over three lines. Empty ways hold kNoTag (a
// value no line-aligned address can equal), which keeps the search a
// pure tag compare with no state-lane read. A direct-mapped cache
// (associativity == 1) skips the walk entirely: the set index *is* the
// way index and the hit test is branch-free.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace dsm::mem {

/// Protocol-agnostic coherence state of a cached line. Which states are
/// reachable depends on the protocol the fabric runs (coherence/policy.hpp):
/// MSI uses {I,S,M}, MESI adds kExclusive, MOESI adds kOwned — dirty but
/// shared, the cache-to-cache forwarding source that spares the memory
/// writeback. The cache itself is policy-free: it stores whatever state the
/// fabric installs.
enum class LineState : std::uint8_t {
  kInvalid,
  kShared,
  kExclusive,
  kModified,
  kOwned,
};

/// Number of LineState values (transition tables index by state).
inline constexpr unsigned kNumLineStates = 5;

const char* state_name(LineState s);

/// A line evicted to make room for an allocation.
struct Victim {
  Addr line_addr = 0;  ///< line-aligned byte address
  LineState state = LineState::kInvalid;
};

class Cache {
 public:
  /// Handle to a resident way, produced by one lookup() tag walk so callers
  /// can chain state reads, LRU touches, and state writes without paying
  /// the associative search again.
  ///
  /// The handle is a stable set/way index into the SoA lanes, not a
  /// pointer, so its validity follows the *slot*, not the container:
  ///  * touch(), set_state(), state_of(), and downgrade() never move
  ///    lines between ways — a handle (to this or any other line) stays
  ///    valid across any number of them (tested in cache_test.cpp);
  ///  * fill() of a DIFFERENT line may evict the handle's line from its
  ///    way and reuse the slot — the handle then silently denotes the
  ///    newly filled line, so drop handles across fill();
  ///  * invalidate() and flush() empty the slot — the handle becomes
  ///    falsy in meaning but not in value, so drop it there too.
  /// In short: a handle is good until the next fill()/invalidate()/
  /// flush() on this cache, and survives everything else.
  class LineRef {
   public:
    LineRef() = default;
    /// True when the line was resident (any valid state).
    explicit operator bool() const { return idx_ != kAbsent; }

   private:
    friend class Cache;
    static constexpr std::uint64_t kAbsent = ~std::uint64_t{0};
    explicit LineRef(std::uint64_t idx) : idx_(idx) {}
    std::uint64_t idx_ = kAbsent;  ///< set * associativity + way
  };

  explicit Cache(const CacheConfig& cfg);

  unsigned line_bytes() const { return cfg_.line_bytes; }
  unsigned associativity() const { return cfg_.associativity; }
  std::uint64_t num_sets() const { return sets_; }
  unsigned latency() const { return cfg_.latency_cycles; }

  /// Line-aligns a byte address.
  Addr line_of(Addr a) const { return a & ~static_cast<Addr>(cfg_.line_bytes - 1); }

  /// Hints the host to pull `addr`'s set into its caches: one line of the
  /// tag lane plus the set's state/LRU stripes. Pure latency hint — no
  /// simulated effect. The fabric issues this for the L2 set at the top
  /// of access() so the (host-)DRAM misses of the tag walk, the hit
  /// bookkeeping, and the directory probe overlap instead of serializing.
  void prefetch_set(Addr addr) const {
    const std::uint64_t base = set_index(line_of(addr)) * cfg_.associativity;
    __builtin_prefetch(&tags_[base]);
    __builtin_prefetch(&states_[base]);
    __builtin_prefetch(&lru_[base]);
  }

  /// Combined lookup: ONE tag walk, no LRU movement, no hit/miss counting.
  /// The returned handle is falsy when the line is absent. Pair with
  /// state_of()/touch()/set_state(LineRef)/record_miss() to express the
  /// old probe()/state()/access()/set_state(Addr) sequences with a single
  /// associative search.
  LineRef lookup(Addr addr) const { return LineRef(find(addr)); }

  /// Result of one lookup_for_fill() walk: either the line is resident
  /// (`ref` truthy) or the walk has already chosen the way fill() would
  /// allocate (`slot`) and the line that allocation would displace
  /// (`victim_line`, kNoLine when the chosen way is empty). The cursor
  /// follows the same LineRef slot rules, plus one more: the victim
  /// choice depends on the set's LRU order, so a touch() anywhere in the
  /// same set also stales `slot`/`victim_line` (fill_at asserts the tag
  /// lane still agrees, which catches structural staleness but not pure
  /// LRU movement — callers must re-walk after any same-set touch).
  struct FillCursor {
    static constexpr Addr kNoLine = ~Addr{0};
    LineRef ref;                 ///< truthy on hit
    std::uint64_t slot = 0;      ///< set*assoc+way fill would use (miss only)
    Addr victim_line = kNoLine;  ///< line fill would displace, kNoLine if none
  };

  /// Fused miss/refill walk: ONE tag+LRU pass that answers both "is the
  /// line resident?" and, when it is not, "which way will the fill take
  /// and what does it evict?" — where lookup() + fill() pay two cold-lane
  /// walks of the same set. The victim policy is bit-identical to
  /// fill()'s: first empty way, else strict min-LRU in way order (ties
  /// keep the earlier way).
  FillCursor lookup_for_fill(Addr addr) const;

  /// Allocates `addr`'s line in state `s` at the way a lookup_for_fill()
  /// miss cursor chose, returning the displaced victim exactly like
  /// fill() — without re-walking the set. Asserts the cursor is not
  /// stale (the slot still holds the victim the walk saw).
  std::optional<Victim> fill_at(const FillCursor& cur, Addr addr,
                                LineState s);

  /// Set index of `addr`'s line — the granularity at which fills,
  /// invalidations, and LRU touches invalidate outstanding LineRef /
  /// FillCursor handles (the batched access path tracks disturbed sets
  /// at exactly this granularity).
  std::uint64_t set_of(Addr addr) const { return set_index(line_of(addr)); }

  /// Present-line state via a handle (kInvalid for a falsy handle).
  LineState state_of(LineRef ref) const {
    return ref ? states_[ref.idx_] : LineState::kInvalid;
  }

  /// Marks a resident line most-recently-used and counts a hit — the
  /// handle form of a hitting access().
  void touch(LineRef ref);

  /// Counts a miss — the handle form of a missing access().
  void record_miss() { ++misses_; }

  /// Updates the state behind a valid handle (handle form of set_state).
  void set_state(LineRef ref, LineState s);

  /// True when the line is present in any valid state. Does not touch LRU.
  bool probe(Addr addr) const { return find(addr) != LineRef::kAbsent; }

  /// Present-line state (kInvalid when absent).
  LineState state(Addr addr) const;

  /// Updates the state of a present line; no-op -> assertion when absent.
  void set_state(Addr addr, LineState s);

  /// Marks the line most-recently-used and counts a hit. Returns false
  /// (and counts a miss) when absent.
  bool access(Addr addr);

  /// Allocates the line in state `s`, evicting the LRU way if the set is
  /// full. Returns the victim when one was displaced. The line must not
  /// already be present.
  std::optional<Victim> fill(Addr addr, LineState s);

  /// Removes the line (remote invalidation / inclusion victim). Returns
  /// its prior state (kInvalid when it was absent).
  LineState invalidate(Addr addr);

  /// Handle form: invalidates the way behind `ref` (falsy → kInvalid).
  LineState invalidate(LineRef ref);

  /// Downgrades Exclusive/Modified to Shared; returns prior state.
  LineState downgrade(Addr addr);

  /// Handle form: downgrades the way behind `ref` (falsy → kInvalid).
  LineState downgrade(LineRef ref);

  /// Drops every line (used between application runs).
  void flush();

  /// Enumerates all valid line addresses in deterministic set-major order:
  /// ascending set index, ways in way order within a set.
  std::vector<Addr> resident_lines() const;

  // Statistics.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t invalidations_received() const { return invals_; }
  double hit_rate() const;

 private:
  /// Tag-lane value of an empty way. line_of() clears the low line-offset
  /// bits of every real line address, so an all-ones value can never
  /// collide with one — which lets the tag walk skip the state lane.
  static constexpr Addr kNoTag = ~Addr{0};

  std::uint64_t set_index(Addr line) const {
    return (line >> line_shift_) & (sets_ - 1);
  }

  /// Index of the way holding `addr`'s line, or LineRef::kAbsent.
  std::uint64_t find(Addr addr) const;

  CacheConfig cfg_;
  std::uint64_t sets_;
  unsigned line_shift_;
  // SoA lanes, each sets_ * associativity, indexed set * assoc + way.
  std::vector<Addr> tags_;            ///< line address, or kNoTag if empty
  std::vector<LineState> states_;          ///< kInvalid iff tags_[] == kNoTag
  std::vector<std::uint64_t> lru_;    ///< larger = more recent
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invals_ = 0;
};

}  // namespace dsm::mem
