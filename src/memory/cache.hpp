// cache.hpp — generic set-associative cache with true-LRU replacement and
// per-line MESI state, used for both the L1 (16 kB direct-mapped) and the
// L2 (2 MB, 8-way, 32 B lines) of Table I.
//
// The cache is *functional*: it tracks tags, LRU order, and coherence
// state. Timing is composed by the node model (memory/mem_controller.hpp,
// coherence/directory.hpp) from the configured hit latencies.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace dsm::mem {

/// MESI coherence state of a cached line.
enum class Mesi : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

const char* mesi_name(Mesi s);

/// A line evicted to make room for an allocation.
struct Victim {
  Addr line_addr = 0;  ///< line-aligned byte address
  Mesi state = Mesi::kInvalid;
};

class Cache {
  struct Way;  // tag/state/LRU of one way; defined privately below

 public:
  /// Handle to a resident way, produced by one lookup() tag walk so callers
  /// can chain state reads, LRU touches, and state writes without paying
  /// the associative search again. Invalidated by any subsequent fill(),
  /// invalidate(), or flush() on this cache (those may reuse the way).
  class LineRef {
   public:
    LineRef() = default;
    /// True when the line was resident (any valid state).
    explicit operator bool() const { return way_ != nullptr; }

   private:
    friend class Cache;
    explicit LineRef(Way* way) : way_(way) {}
    Way* way_ = nullptr;
  };

  explicit Cache(const CacheConfig& cfg);

  unsigned line_bytes() const { return cfg_.line_bytes; }
  unsigned associativity() const { return cfg_.associativity; }
  std::uint64_t num_sets() const { return sets_; }
  unsigned latency() const { return cfg_.latency_cycles; }

  /// Line-aligns a byte address.
  Addr line_of(Addr a) const { return a & ~static_cast<Addr>(cfg_.line_bytes - 1); }

  /// Combined lookup: ONE tag walk, no LRU movement, no hit/miss counting.
  /// The returned handle is falsy when the line is absent. Pair with
  /// state_of()/touch()/set_state(LineRef)/record_miss() to express the
  /// old probe()/state()/access()/set_state(Addr) sequences with a single
  /// associative search.
  LineRef lookup(Addr addr);

  /// Present-line state via a handle (kInvalid for a falsy handle).
  Mesi state_of(LineRef ref) const;

  /// Marks a resident line most-recently-used and counts a hit — the
  /// handle form of a hitting access().
  void touch(LineRef ref);

  /// Counts a miss — the handle form of a missing access().
  void record_miss();

  /// Updates the state behind a valid handle (handle form of set_state).
  void set_state(LineRef ref, Mesi s);

  /// True when the line is present in any valid state. Does not touch LRU.
  bool probe(Addr addr) const;

  /// Present-line state (kInvalid when absent).
  Mesi state(Addr addr) const;

  /// Updates the state of a present line; no-op -> assertion when absent.
  void set_state(Addr addr, Mesi s);

  /// Marks the line most-recently-used and counts a hit. Returns false
  /// (and counts a miss) when absent.
  bool access(Addr addr);

  /// Allocates the line in state `s`, evicting the LRU way if the set is
  /// full. Returns the victim when one was displaced. The line must not
  /// already be present.
  std::optional<Victim> fill(Addr addr, Mesi s);

  /// Removes the line (remote invalidation / inclusion victim). Returns
  /// its prior state (kInvalid when it was absent).
  Mesi invalidate(Addr addr);

  /// Handle form: invalidates the way behind `ref` (falsy → kInvalid).
  Mesi invalidate(LineRef ref);

  /// Downgrades Exclusive/Modified to Shared; returns prior state.
  Mesi downgrade(Addr addr);

  /// Handle form: downgrades the way behind `ref` (falsy → kInvalid).
  Mesi downgrade(LineRef ref);

  /// Drops every line (used between application runs).
  void flush();

  /// Enumerates all valid line addresses (diagnostics/tests).
  std::vector<Addr> resident_lines() const;

  // Statistics.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t invalidations_received() const { return invals_; }
  double hit_rate() const;

 private:
  struct Way {
    Addr tag = 0;
    Mesi state = Mesi::kInvalid;
    std::uint64_t lru = 0;  ///< larger = more recent
  };

  std::uint64_t set_index(Addr line) const;
  Way* find(Addr addr);
  const Way* find(Addr addr) const;

  CacheConfig cfg_;
  std::uint64_t sets_;
  unsigned line_shift_;
  std::vector<Way> ways_;  ///< sets_ * associativity, row-major by set
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invals_ = 0;
};

}  // namespace dsm::mem
