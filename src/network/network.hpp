// network.hpp — the interconnect model: wormhole latency + contention +
// traffic accounting for a message-passing fabric between DSM nodes.
//
// Latency of a message of `payload_bytes` from src to dst at time `now`:
//
//   hops * (pin_to_pin + router pipeline) ... per-hop wire/switch delay
//   + (flits - 1) * flit_cycle             ... wormhole serialization
//   + sum over links of queueing_delay     ... analytical contention
//
// all converted into core cycles. Table I: 400 MHz pipelined router
// (1 flit / 2.5 ns per link), 16 ns pin-to-pin.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "network/contention.hpp"
#include "network/topology.hpp"
#include "obs/observability.hpp"

namespace dsm::net {

/// Categories of traffic, for accounting (protocol studies + the paper's
/// §III-B DDV-bandwidth-overhead claim).
enum class TrafficClass : std::uint8_t {
  kCoherence,   ///< directory protocol messages
  kData,        ///< cache-line fills / writebacks
  kSync,        ///< barrier / lock traffic
  kDdv,         ///< DDV frequency-vector exchanges (the paper's mechanism)
};

inline constexpr unsigned kNumTrafficClasses = 4;

class Network {
 public:
  /// `obs` (optional) registers one message + one byte counter per
  /// directed link ("net.linkK.msgs"/"net.linkK.bytes"); message_latency
  /// then counts every traversed link. Null — the default — keeps the
  /// walk compiled out of the hot path behind one bool.
  explicit Network(const MachineConfig& cfg,
                   obs::Observability* obs = nullptr);

  const TopologyModel& topology() const { return topo_; }

  /// Latency in core cycles for one message, including contention, and
  /// records the traffic on every traversed link. src == dst is legal and
  /// costs 0 (the paper's local accesses never enter the network).
  Cycle message_latency(NodeId src, NodeId dst, unsigned payload_bytes,
                        Cycle now, TrafficClass cls);

  /// Latency without recording traffic (for what-if probes).
  Cycle probe_latency(NodeId src, NodeId dst, unsigned payload_bytes,
                      Cycle now) const;

  /// Zero-load latency (no contention) — used by tests to check the
  /// analytical decomposition.
  Cycle zero_load_latency(NodeId src, NodeId dst,
                          unsigned payload_bytes) const;

  std::uint64_t messages_sent(TrafficClass cls) const;
  std::uint64_t bytes_sent(TrafficClass cls) const;
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;

  /// Flit-cycles capacity of one link per contention epoch.
  double link_capacity_flits_per_epoch() const { return capacity_flits_; }

 private:
  unsigned flits_for(unsigned payload_bytes) const;
  /// Queueing term along the route without recording traffic (const: for
  /// what-if probes; message_latency records inline on its own walk).
  double contention_cycles(NodeId src, NodeId dst, Cycle now) const;

  const MachineConfig& cfg_;
  TopologyModel topo_;
  double core_cycles_per_router_cycle_;
  double per_hop_cycles_;
  double capacity_flits_;
  LinkContentionTracker tracker_;
  std::uint64_t msg_count_[kNumTrafficClasses] = {};
  std::uint64_t byte_count_[kNumTrafficClasses] = {};
  /// Per-link observability lanes (indexed by LinkId); empty when off.
  /// link_obs_ gates the whole walk so the default path pays nothing.
  bool link_obs_ = false;
  std::vector<obs::CounterHandle> link_msgs_;
  std::vector<obs::CounterHandle> link_bytes_;
};

}  // namespace dsm::net
