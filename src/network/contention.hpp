// contention.hpp — epoch-based link-utilization tracking for the analytical
// wormhole contention model.
//
// A full flit-level wormhole simulation is far too slow for paper-scale
// runs; instead each directed link accumulates the flit-cycles it carried
// during the current epoch. The utilization of the *previous* epoch drives
// an M/M/1-style queueing term for messages crossing that link now. This
// captures the first-order effect the paper's DDV needs: traffic focused on
// one home node slows everyone routing toward it.
//
// Link ids are dense (from * nodes + to, see topology.hpp), so the state
// lives in one flat vector indexed by LinkId — no hashing on the per-hop
// path and no allocation after construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "network/topology.hpp"

namespace dsm::net {

class LinkContentionTracker {
 public:
  /// `num_links`: size of the dense LinkId space (nodes^2 for the
  /// TopologyModel keying). `epoch_cycles`: epoch length in core cycles.
  /// `capacity_flits`: flits a link can carry per epoch (router cycles in
  /// the epoch).
  LinkContentionTracker(std::size_t num_links, Cycle epoch_cycles,
                        double capacity_flits);

  /// Records that `flits` crossed `link` at time `now`.
  void record(LinkId link, Cycle now, double flits);

  /// Fused hot-path walk for one message: sums queueing_delay over `links`
  /// and records `flits` on each, rolling every link's epoch exactly once.
  /// Identical arithmetic to the queueing_delay-then-record sequence.
  double delay_and_record_path(std::span<const LinkId> links, Cycle now,
                               double alpha, double flits);

  /// Utilization (0..~1) of `link` during the last completed epoch.
  double utilization(LinkId link, Cycle now) const;

  /// Queueing delay in router cycles for one message crossing `link`:
  /// alpha * u / (1 - u), capped (u capped at 0.95 to bound the tail).
  double queueing_delay(LinkId link, Cycle now, double alpha) const;

  Cycle epoch_cycles() const { return epoch_cycles_; }

 private:
  struct LinkState {
    std::uint64_t epoch = 0;      ///< epoch index of `current`
    double current = 0.0;         ///< flits this epoch
    double previous = 0.0;        ///< flits last epoch
  };

  /// Rolls `s` forward so that `s.epoch` is the epoch containing `now`.
  void roll(LinkState& s, std::uint64_t epoch_now) const;

  Cycle epoch_cycles_;
  double capacity_flits_;
  /// Dense per-link state; `mutable` because reads at a later time roll the
  /// epoch window forward (same observable values either way).
  mutable std::vector<LinkState> links_;
};

}  // namespace dsm::net
