#include "network/contention.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dsm::net {

LinkContentionTracker::LinkContentionTracker(std::size_t num_links,
                                             Cycle epoch_cycles,
                                             double capacity_flits)
    : epoch_cycles_(epoch_cycles),
      capacity_flits_(capacity_flits),
      links_(num_links) {
  DSM_ASSERT(epoch_cycles_ > 0);
  DSM_ASSERT(capacity_flits_ > 0.0);
}

void LinkContentionTracker::roll(LinkState& s, std::uint64_t epoch_now) const {
  if (s.epoch == epoch_now) return;
  if (s.epoch + 1 == epoch_now) {
    s.previous = s.current;
  } else {
    s.previous = 0.0;  // link was idle for at least one full epoch
  }
  s.current = 0.0;
  s.epoch = epoch_now;
}

void LinkContentionTracker::record(LinkId link, Cycle now, double flits) {
  DSM_ASSERT(link < links_.size());
  LinkState& s = links_[link];
  roll(s, now / epoch_cycles_);
  s.current += flits;
}

double LinkContentionTracker::delay_and_record_path(
    std::span<const LinkId> links, Cycle now, double alpha, double flits) {
  const std::uint64_t epoch_now = now / epoch_cycles_;
  double total = 0.0;
  for (const LinkId link : links) {
    DSM_ASSERT(link < links_.size());
    LinkState& s = links_[link];
    roll(s, epoch_now);
    // min(min(u, 1.0), 0.90) == the utilization() + queueing_delay() caps.
    const double u =
        std::min(std::min(s.previous / capacity_flits_, 1.0), 0.90);
    total += alpha * u / (1.0 - u);
    s.current += flits;
  }
  return total;
}

double LinkContentionTracker::utilization(LinkId link, Cycle now) const {
  DSM_ASSERT(link < links_.size());
  LinkState& s = links_[link];
  roll(s, now / epoch_cycles_);
  return std::min(s.previous / capacity_flits_, 1.0);
}

double LinkContentionTracker::queueing_delay(LinkId link, Cycle now,
                                             double alpha) const {
  // M/M/1-style shape, with utilization capped so a saturated link costs
  // a bounded (9x alpha) per-hop penalty rather than a runaway tail.
  const double u = std::min(utilization(link, now), 0.90);
  return alpha * u / (1.0 - u);
}

}  // namespace dsm::net
