#include "network/contention.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dsm::net {

LinkContentionTracker::LinkContentionTracker(Cycle epoch_cycles,
                                             double capacity_flits)
    : epoch_cycles_(epoch_cycles), capacity_flits_(capacity_flits) {
  DSM_ASSERT(epoch_cycles_ > 0);
  DSM_ASSERT(capacity_flits_ > 0.0);
}

void LinkContentionTracker::roll(LinkState& s, std::uint64_t epoch_now) const {
  if (s.epoch == epoch_now) return;
  if (s.epoch + 1 == epoch_now) {
    s.previous = s.current;
  } else {
    s.previous = 0.0;  // link was idle for at least one full epoch
  }
  s.current = 0.0;
  s.epoch = epoch_now;
}

void LinkContentionTracker::record(LinkId link, Cycle now, double flits) {
  auto& s = links_[link];
  roll(s, now / epoch_cycles_);
  s.current += flits;
}

double LinkContentionTracker::utilization(LinkId link, Cycle now) const {
  const auto it = links_.find(link);
  if (it == links_.end()) return 0.0;
  auto& s = it->second;
  roll(s, now / epoch_cycles_);
  return std::min(s.previous / capacity_flits_, 1.0);
}

double LinkContentionTracker::queueing_delay(LinkId link, Cycle now,
                                             double alpha) const {
  // M/M/1-style shape, with utilization capped so a saturated link costs
  // a bounded (9x alpha) per-hop penalty rather than a runaway tail.
  const double u = std::min(utilization(link, now), 0.90);
  return alpha * u / (1.0 - u);
}

}  // namespace dsm::net
