// topology.hpp — interconnect topologies and deterministic routing.
//
// The paper's machine uses a hypercube (Table I); the DDV's distance matrix
// D is "a matrix of pre-programmed constants" derived from the topology.
// We also provide mesh/torus/ring so ablations can vary D's structure.
//
// Routing is fully deterministic, so routes are precomputed at construction
// into one flat arena (CSR layout: per-(src,dst) offsets into a shared link
// array) and `route()` hands out non-allocating views. At the fabric's
// 64-node ceiling that is at most 4096 routes × diameter links — a few
// hundred kB — and it removes the per-message heap allocation that used to
// sit on the simulator's hottest path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace dsm::net {

/// A directed link between adjacent routers, identified densely so the
/// contention model can keep per-link counters.
using LinkId = std::uint32_t;

/// Topology geometry + deterministic minimal routing.
///
/// Routing is dimension-ordered: e-cube on the hypercube, X-then-Y on
/// mesh/torus, fixed direction (shorter way) on the ring — deadlock-free
/// orders matching classic wormhole designs.
class TopologyModel {
 public:
  /// Node counts up to this bound get the precomputed route table (the
  /// coherence fabric's full-map directory caps the machine at 64 nodes).
  /// Larger standalone models fall back to computing routes on demand.
  static constexpr unsigned kPrecomputeMaxNodes = 64;

  TopologyModel(Topology kind, unsigned nodes);

  Topology kind() const { return kind_; }
  unsigned nodes() const { return nodes_; }
  unsigned num_links() const { return static_cast<unsigned>(links_); }

  /// Hop count of the deterministic minimal route from src to dst
  /// (0 when src == dst).
  unsigned hops(NodeId src, NodeId dst) const;

  /// Network diameter (max hops over all pairs).
  unsigned diameter() const;

  /// Average hop distance over all ordered pairs with src != dst.
  double mean_hops() const;

  /// The sequence of directed links the deterministic route traverses.
  /// Empty when src == dst. Allocation-free: a view into the route table
  /// built at construction, valid for the model's lifetime. (Above
  /// kPrecomputeMaxNodes the route is computed into a per-model scratch
  /// buffer instead; that fallback is not safe to call concurrently.)
  std::span<const LinkId> route(NodeId src, NodeId dst) const;

  /// Reference implementation: walks the routing algorithm step by step and
  /// returns a fresh vector. This is what the constructor tabulates; it
  /// stays public so tests can check table/walk equivalence.
  std::vector<LinkId> compute_route(NodeId src, NodeId dst) const;

  /// The paper's D matrix entry: topological distance, with D[i][i] == 1
  /// ("1 if i = j"), so local accesses carry unit weight in the DDS.
  std::uint32_t ddv_distance(NodeId i, NodeId j) const;

  /// Full D matrix in row-major order (n*n entries).
  std::vector<std::uint32_t> ddv_distance_matrix() const;

 private:
  unsigned mesh_side() const { return mesh_side_; }
  LinkId link_id(NodeId from, NodeId to) const;

  Topology kind_;
  unsigned nodes_;
  unsigned mesh_side_;  ///< cached: sqrt(nodes) for mesh/torus, else 0
  std::size_t links_;
  /// CSR route table: the route src->dst occupies
  /// route_arena_[route_offsets_[src*nodes+dst] ..
  ///              route_offsets_[src*nodes+dst+1]).
  std::vector<std::uint32_t> route_offsets_;
  std::vector<LinkId> route_arena_;
  mutable std::vector<LinkId> route_scratch_;  ///< >64-node fallback only
};

}  // namespace dsm::net
