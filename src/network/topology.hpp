// topology.hpp — interconnect topologies and deterministic routing.
//
// The paper's machine uses a hypercube (Table I); the DDV's distance matrix
// D is "a matrix of pre-programmed constants" derived from the topology.
// We also provide mesh/torus/ring so ablations can vary D's structure.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace dsm::net {

/// A directed link between adjacent routers, identified densely so the
/// contention model can keep per-link counters.
using LinkId = std::uint32_t;

/// Topology geometry + deterministic minimal routing.
///
/// Routing is dimension-ordered: e-cube on the hypercube, X-then-Y on
/// mesh/torus, fixed direction (shorter way) on the ring — deadlock-free
/// orders matching classic wormhole designs.
class TopologyModel {
 public:
  TopologyModel(Topology kind, unsigned nodes);

  Topology kind() const { return kind_; }
  unsigned nodes() const { return nodes_; }
  unsigned num_links() const { return static_cast<unsigned>(links_); }

  /// Hop count of the deterministic minimal route from src to dst
  /// (0 when src == dst).
  unsigned hops(NodeId src, NodeId dst) const;

  /// Network diameter (max hops over all pairs).
  unsigned diameter() const;

  /// Average hop distance over all ordered pairs with src != dst.
  double mean_hops() const;

  /// The sequence of directed links the deterministic route traverses.
  /// Empty when src == dst.
  std::vector<LinkId> route(NodeId src, NodeId dst) const;

  /// The paper's D matrix entry: topological distance, with D[i][i] == 1
  /// ("1 if i = j"), so local accesses carry unit weight in the DDS.
  std::uint32_t ddv_distance(NodeId i, NodeId j) const;

  /// Full D matrix in row-major order (n*n entries).
  std::vector<std::uint32_t> ddv_distance_matrix() const;

 private:
  unsigned mesh_side() const;
  LinkId link_id(NodeId from, NodeId to) const;

  Topology kind_;
  unsigned nodes_;
  std::size_t links_;
};

}  // namespace dsm::net
