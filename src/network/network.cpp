#include "network/network.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm::net {

Network::Network(const MachineConfig& cfg, obs::Observability* obs)
    : cfg_(cfg),
      topo_(cfg.network.topology, cfg.num_nodes),
      core_cycles_per_router_cycle_(
          static_cast<double>(cfg.core.frequency_hz) /
          cfg.network.router_frequency_hz),
      per_hop_cycles_(cfg.network.pin_to_pin_ns * cfg.cycles_per_ns()),
      capacity_flits_(static_cast<double>(cfg.network.contention_epoch_cycles) /
                      core_cycles_per_router_cycle_),
      tracker_(topo_.num_links(), cfg.network.contention_epoch_cycles,
               capacity_flits_) {
  if (obs != nullptr && obs->stats_enabled()) {
    // One (msgs, bytes) counter pair per directed link, registered in
    // LinkId order — the route walk in message_latency indexes straight
    // into these lanes. Increments happen per simulated message, so the
    // totals are deterministic across --threads/--shards/--batch.
    link_obs_ = true;
    const std::size_t nl = topo_.num_links();
    link_msgs_.reserve(nl);
    link_bytes_.reserve(nl);
    for (std::size_t k = 0; k < nl; ++k) {
      const std::string base = "net.link" + std::to_string(k);
      link_msgs_.push_back(obs->counter(base + ".msgs"));
      link_bytes_.push_back(obs->counter(base + ".bytes"));
    }
  }
}

unsigned Network::flits_for(unsigned payload_bytes) const {
  return cfg_.network.header_flits +
         static_cast<unsigned>(
             ceil_div(payload_bytes, cfg_.network.link_bytes_per_flit));
}

Cycle Network::zero_load_latency(NodeId src, NodeId dst,
                                 unsigned payload_bytes) const {
  if (src == dst) return 0;
  const unsigned h = topo_.hops(src, dst);
  const unsigned flits = flits_for(payload_bytes);
  // Wormhole: header pays per-hop latency at every hop; the body streams
  // behind it, adding (flits-1) router cycles of serialization once.
  const double cycles =
      h * per_hop_cycles_ +
      (flits - 1) * core_cycles_per_router_cycle_;
  return static_cast<Cycle>(std::ceil(cycles));
}

double Network::contention_cycles(NodeId src, NodeId dst, Cycle now) const {
  // The header flit pays the queueing delay at each hop; body flits
  // pipeline behind it (their serialization is already charged once in
  // zero_load_latency).
  if (src == dst) return 0.0;
  double queue_router_cycles = 0.0;
  for (const LinkId link : topo_.route(src, dst)) {
    queue_router_cycles +=
        tracker_.queueing_delay(link, now, cfg_.network.contention_alpha);
  }
  return queue_router_cycles * core_cycles_per_router_cycle_;
}

Cycle Network::message_latency(NodeId src, NodeId dst, unsigned payload_bytes,
                               Cycle now, TrafficClass cls) {
  const auto idx = static_cast<unsigned>(cls);
  DSM_ASSERT(idx < kNumTrafficClasses);
  ++msg_count_[idx];
  byte_count_[idx] += payload_bytes;
  if (src == dst) return 0;
  const unsigned flits = flits_for(payload_bytes);
  // One route fetch serves both the zero-load term (hops == link count)
  // and the per-link contention walk; same arithmetic as
  // zero_load_latency + contention_cycles, ceil'd separately.
  const auto path = topo_.route(src, dst);
  if (link_obs_) {
    for (const LinkId link : path) {
      link_msgs_[link].inc();
      link_bytes_[link].add(payload_bytes);
    }
  }
  const double zero_load =
      static_cast<double>(path.size()) * per_hop_cycles_ +
      (flits - 1) * core_cycles_per_router_cycle_;
  const double queue_router_cycles = tracker_.delay_and_record_path(
      path, now, cfg_.network.contention_alpha, flits);
  return static_cast<Cycle>(std::ceil(zero_load)) +
         static_cast<Cycle>(
             std::ceil(queue_router_cycles * core_cycles_per_router_cycle_));
}

Cycle Network::probe_latency(NodeId src, NodeId dst, unsigned payload_bytes,
                             Cycle now) const {
  if (src == dst) return 0;
  return zero_load_latency(src, dst, payload_bytes) +
         static_cast<Cycle>(std::ceil(contention_cycles(src, dst, now)));
}

std::uint64_t Network::messages_sent(TrafficClass cls) const {
  return msg_count_[static_cast<unsigned>(cls)];
}

std::uint64_t Network::bytes_sent(TrafficClass cls) const {
  return byte_count_[static_cast<unsigned>(cls)];
}

std::uint64_t Network::total_messages() const {
  std::uint64_t t = 0;
  for (const auto c : msg_count_) t += c;
  return t;
}

std::uint64_t Network::total_bytes() const {
  std::uint64_t t = 0;
  for (const auto c : byte_count_) t += c;
  return t;
}

}  // namespace dsm::net
