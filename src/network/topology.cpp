#include "network/topology.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace dsm::net {

TopologyModel::TopologyModel(Topology kind, unsigned nodes)
    : kind_(kind), nodes_(nodes), mesh_side_(0) {
  DSM_ASSERT(nodes > 0);
  switch (kind_) {
    case Topology::kHypercube:
      DSM_ASSERT_MSG(is_pow2(nodes), "hypercube needs power-of-two nodes");
      break;
    case Topology::kMesh2D:
    case Topology::kTorus2D: {
      const unsigned s =
          static_cast<unsigned>(std::lround(std::sqrt(double(nodes_))));
      DSM_ASSERT_MSG(s * s == nodes, "mesh/torus needs a square node count");
      mesh_side_ = s;
      break;
    }
    case Topology::kRing:
      break;
  }
  // Link ids are keyed densely as from * nodes + to; only adjacent pairs are
  // ever produced by route(), so the id space is sparse but bounded.
  links_ = static_cast<std::size_t>(nodes_) * nodes_;

  if (nodes_ <= kPrecomputeMaxNodes) {
    const std::size_t pairs = static_cast<std::size_t>(nodes_) * nodes_;
    route_offsets_.resize(pairs + 1, 0);
    // First pass: per-pair hop counts as offsets; second pass: fill.
    std::uint32_t total = 0;
    for (NodeId s = 0; s < nodes_; ++s)
      for (NodeId d = 0; d < nodes_; ++d) {
        route_offsets_[static_cast<std::size_t>(s) * nodes_ + d] = total;
        total += hops(s, d);
      }
    route_offsets_[pairs] = total;
    route_arena_.resize(total);
    for (NodeId s = 0; s < nodes_; ++s)
      for (NodeId d = 0; d < nodes_; ++d) {
        const auto path = compute_route(s, d);
        std::uint32_t at =
            route_offsets_[static_cast<std::size_t>(s) * nodes_ + d];
        for (const LinkId l : path) route_arena_[at++] = l;
        DSM_ASSERT(at == route_offsets_[static_cast<std::size_t>(s) * nodes_ +
                                        d + 1]);
      }
  }
}

LinkId TopologyModel::link_id(NodeId from, NodeId to) const {
  DSM_ASSERT(from < nodes_ && to < nodes_);
  return from * nodes_ + to;
}

unsigned TopologyModel::hops(NodeId src, NodeId dst) const {
  DSM_ASSERT(src < nodes_ && dst < nodes_);
  if (src == dst) return 0;
  switch (kind_) {
    case Topology::kHypercube:
      return hamming(src, dst);
    case Topology::kMesh2D: {
      const unsigned s = mesh_side();
      const int dx = std::abs(int(src % s) - int(dst % s));
      const int dy = std::abs(int(src / s) - int(dst / s));
      return static_cast<unsigned>(dx + dy);
    }
    case Topology::kTorus2D: {
      const unsigned s = mesh_side();
      const unsigned ax = src % s, bx = dst % s;
      const unsigned ay = src / s, by = dst / s;
      const unsigned dx = std::min((ax - bx + s) % s, (bx - ax + s) % s);
      const unsigned dy = std::min((ay - by + s) % s, (by - ay + s) % s);
      return dx + dy;
    }
    case Topology::kRing: {
      const unsigned fwd = (dst - src + nodes_) % nodes_;
      return std::min(fwd, nodes_ - fwd);
    }
  }
  return 0;
}

unsigned TopologyModel::diameter() const {
  switch (kind_) {
    case Topology::kHypercube:
      return nodes_ == 1 ? 0 : log2_exact(nodes_);
    case Topology::kMesh2D:
      return 2 * (mesh_side() - 1);
    case Topology::kTorus2D:
      return 2 * (mesh_side() / 2);
    case Topology::kRing:
      return nodes_ / 2;
  }
  return 0;
}

double TopologyModel::mean_hops() const {
  if (nodes_ == 1) return 0.0;
  std::uint64_t total = 0;
  for (NodeId i = 0; i < nodes_; ++i)
    for (NodeId j = 0; j < nodes_; ++j)
      if (i != j) total += hops(i, j);
  return static_cast<double>(total) /
         (static_cast<double>(nodes_) * (nodes_ - 1));
}

std::span<const LinkId> TopologyModel::route(NodeId src, NodeId dst) const {
  DSM_ASSERT(src < nodes_ && dst < nodes_);
  if (!route_offsets_.empty()) {
    const std::size_t pair = static_cast<std::size_t>(src) * nodes_ + dst;
    const std::uint32_t begin = route_offsets_[pair];
    const std::uint32_t end = route_offsets_[pair + 1];
    return {route_arena_.data() + begin, end - begin};
  }
  route_scratch_ = compute_route(src, dst);
  return {route_scratch_.data(), route_scratch_.size()};
}

std::vector<LinkId> TopologyModel::compute_route(NodeId src,
                                                 NodeId dst) const {
  DSM_ASSERT(src < nodes_ && dst < nodes_);
  std::vector<LinkId> path;
  if (src == dst) return path;
  NodeId cur = src;
  auto step_to = [&](NodeId next) {
    path.push_back(link_id(cur, next));
    cur = next;
  };
  switch (kind_) {
    case Topology::kHypercube: {
      // e-cube: resolve differing dimensions lowest-first (deadlock-free).
      std::uint32_t diff = cur ^ dst;
      while (diff != 0) {
        const std::uint32_t bit = diff & (~diff + 1);  // lowest set bit
        step_to(cur ^ bit);
        diff = cur ^ dst;
      }
      break;
    }
    case Topology::kMesh2D: {
      const unsigned s = mesh_side();
      // X first.
      while (cur % s != dst % s)
        step_to(cur % s < dst % s ? cur + 1 : cur - 1);
      while (cur / s != dst / s)
        step_to(cur / s < dst / s ? cur + s : cur - s);
      break;
    }
    case Topology::kTorus2D: {
      const unsigned s = mesh_side();
      auto wrap_step = [&](unsigned c, unsigned d) -> unsigned {
        // Shorter direction along one dimension of size s.
        const unsigned fwd = (d - c + s) % s;
        const unsigned bwd = (c - d + s) % s;
        return fwd <= bwd ? (c + 1) % s : (c + s - 1) % s;
      };
      while (cur % s != dst % s) {
        const unsigned nx = wrap_step(cur % s, dst % s);
        step_to((cur / s) * s + nx);
      }
      while (cur / s != dst / s) {
        const unsigned ny = wrap_step(cur / s, dst / s);
        step_to(ny * s + cur % s);
      }
      break;
    }
    case Topology::kRing: {
      const unsigned fwd = (dst - cur + nodes_) % nodes_;
      const bool forward = fwd <= nodes_ - fwd;
      while (cur != dst)
        step_to(forward ? (cur + 1) % nodes_ : (cur + nodes_ - 1) % nodes_);
      break;
    }
  }
  DSM_ASSERT(cur == dst);
  DSM_ASSERT(path.size() == hops(src, dst));
  return path;
}

std::uint32_t TopologyModel::ddv_distance(NodeId i, NodeId j) const {
  // Paper: D_ij is "a measure of the distance from node i to node j
  // (1 if i = j)". We use hop count, floored at 1 for the local node.
  if (i == j) return 1;
  return hops(i, j);
}

std::vector<std::uint32_t> TopologyModel::ddv_distance_matrix() const {
  std::vector<std::uint32_t> d(static_cast<std::size_t>(nodes_) * nodes_);
  for (NodeId i = 0; i < nodes_; ++i)
    for (NodeId j = 0; j < nodes_; ++j)
      d[static_cast<std::size_t>(i) * nodes_ + j] = ddv_distance(i, j);
  return d;
}

}  // namespace dsm::net
