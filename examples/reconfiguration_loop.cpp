// reconfiguration_loop.cpp — the full phase-adaptive loop of the paper's
// §II: detector -> predictor -> reconfiguration module, closed over a real
// simulated execution.
//
// The reconfiguration module here tunes a hypothetical adaptive resource
// with four settings whose payoff depends on the interval's memory
// intensity (think: L2 prefetch aggressiveness / DRAM power states). For
// every *new* phase the controller trial-runs each setting for one
// interval (the paper's trial-and-error tuning, which is why fewer phases
// mean less tuning overhead), then locks the best one and applies it
// whenever the predictor forecasts that phase.
//
// Output: energy-delay-style payoff with (a) no adaptation, (b) oracle
// per-interval tuning, (c) the phase-adaptive loop with BBV only, and
// (d) with BBV+DDV — showing detection quality turning into end value.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "common/config.hpp"
#include "phase/detector.hpp"
#include "phase/predictor.hpp"
#include "sim/machine.hpp"

namespace {

using namespace dsm;

/// Payoff of running one interval under config k (0..3): how much of the
/// interval's memory-stall time the setting recovers, minus a fixed cost.
/// The best k depends on the interval's CPI regime.
double payoff(const phase::IntervalRecord& rec, unsigned k) {
  const double mem_weight = std::min(1.0, rec.cpi / 4.0);  // stall share
  const double aggression = k / 3.0;
  // Aggressive settings help memory-bound intervals, hurt compute-bound.
  return aggression * (mem_weight - 0.35) - 0.05 * aggression;
}

struct LoopResult {
  double total_payoff = 0.0;
  unsigned phases_tuned = 0;
  unsigned tuning_intervals = 0;
};

/// Runs the §II loop over a recorded trace with the given detector.
LoopResult run_loop(const std::vector<phase::IntervalRecord>& trace,
                    phase::PhaseDetector& detector) {
  phase::MarkovPhasePredictor predictor;
  struct Tuning {
    unsigned next_trial = 0;       // < 4: still trying configs
    double best_payoff = -1e300;
    unsigned best_config = 0;
  };
  std::map<PhaseId, Tuning> tunings;
  LoopResult out;

  PhaseId predicted = kNoPhase;
  for (const auto& rec : trace) {
    // Configuration for this interval was chosen from the *prediction*
    // made at the end of the previous interval.
    unsigned config = 0;
    bool counts_as_trial = false;
    if (predicted != kNoPhase) {
      Tuning& t = tunings[predicted];
      if (t.next_trial < 4) {
        config = t.next_trial;  // trial-and-error tuning
        counts_as_trial = true;
      } else {
        config = t.best_config;
      }
    }

    const double p = payoff(rec, config);
    out.total_payoff += p;

    // Detector classifies the interval that just finished.
    const auto c = detector.classify(rec);
    if (c.new_phase) ++out.phases_tuned;
    if (counts_as_trial && predicted == c.phase) {
      // The trial ran on the phase we thought it would: record it.
      Tuning& t = tunings[c.phase];
      if (p > t.best_payoff) {
        t.best_payoff = p;
        t.best_config = config;
      }
      ++t.next_trial;
      ++out.tuning_intervals;
    }
    predictor.observe(c.phase);
    predicted = predictor.predict();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;

  // Shared sweep flags (--scale, --nodes, --threads, --verbose) via the
  // experiment driver; the loop itself stays a single-configuration study.
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  auto& opt = parsed.options;
  if (!parsed.scale_set) opt.scale = apps::Scale::kBench;  // historic default
  if (opt.node_counts.empty()) opt.node_counts = {8};

  // Single-configuration study: first named app (default Equake) on the
  // first node count. Extra --apps/--nodes entries would be silently
  // ignored, so reject them rather than mislabel the results.
  if (opt.app_names.size() > 1 || opt.node_counts.size() > 1) {
    std::fprintf(stderr, "error: this example studies exactly one "
                         "app/node-count; pass at most one of each\n");
    return 2;
  }
  if (!opt.csv_dir.empty()) {
    std::fprintf(stderr,
                 "error: --csv is not supported by this example\n");
    return 2;
  }
  // Same reasoning for the sharding flags: a single-configuration study
  // has nothing to shard, and silently running the full study N times
  // would corrupt a stream merge.
  if (opt.shard_set || opt.shards > 0) {
    std::fprintf(stderr, "error: --shard/--shards are not supported by "
                         "this example\n");
    return 2;
  }
  // Copy the pointer out: the vector named_apps returns is a temporary,
  // but the AppInfo it points at lives in the registry.
  const apps::AppInfo* const app = bench::named_apps(opt, {"Equake"}).front();

  std::printf("simulating %s on %u nodes...\n", app->name.c_str(),
              opt.node_counts[0]);
  const auto sweep = bench::run_sweep({app}, {opt.node_counts[0]}, opt);
  const auto& run = sweep.front().run;
  const MachineConfig& cfg = run.cfg;
  const auto& trace = run.procs[0].intervals;
  std::printf("%zu intervals recorded on proc 0\n\n", trace.size());

  // (a) static best single config, (b) oracle per-interval.
  double static_best = -1e300;
  for (unsigned k = 0; k < 4; ++k) {
    double s = 0.0;
    for (const auto& rec : trace) s += payoff(rec, k);
    static_best = std::max(static_best, s);
  }
  double oracle = 0.0;
  for (const auto& rec : trace) {
    double best = -1e300;
    for (unsigned k = 0; k < 4; ++k) best = std::max(best, payoff(rec, k));
    oracle += best;
  }

  // (c)/(d) the adaptive loop under each detector.
  double dds_span = 0.0;
  {
    double lo = 1e300, hi = -1e300;
    for (const auto& r : trace) {
      lo = std::min(lo, r.dds);
      hi = std::max(hi, r.dds);
    }
    dds_span = hi - lo;
  }
  phase::Thresholds t;
  t.bbv = cfg.phase.bbv_norm / 8;
  t.dds = dds_span / 6.0;
  phase::BbvDetector bbv(cfg.phase.footprint_vectors, t);
  phase::BbvDdvDetector ddv(cfg.phase.footprint_vectors, t);
  const auto r_bbv = run_loop(trace, bbv);
  const auto r_ddv = run_loop(trace, ddv);

  std::printf("policy                    payoff   phases  tuning intervals\n");
  std::printf("best static config      %8.2f        -   -\n", static_best);
  std::printf("oracle per interval     %8.2f        -   -\n", oracle);
  std::printf("phase-adaptive, BBV     %8.2f   %6u   %u\n",
              r_bbv.total_payoff, r_bbv.phases_tuned, r_bbv.tuning_intervals);
  std::printf("phase-adaptive, BBV+DDV %8.2f   %6u   %u\n",
              r_ddv.total_payoff, r_ddv.phases_tuned, r_ddv.tuning_intervals);
  std::printf("\nBetter phase homogeneity means trial results transfer to "
              "the rest of the\nphase — detection quality becomes payoff "
              "(§II's motivation for the CoV metric).\n");
  return 0;
}
