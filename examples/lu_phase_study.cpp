// lu_phase_study.cpp — a domain-specific deep dive: run SPLASH-2-style LU
// on an 8-node Table I machine, classify its intervals online with the
// BBV+DDV detector, and walk through what the phases correspond to in the
// factorization (init sweep, interior-dominated early steps, barrier-bound
// late steps).
//
// Demonstrates: workload factories, online detection (as the hardware
// would run it, fixed thresholds), per-phase statistics, and the phase
// predictors the paper's conclusion calls for.
#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/cov.hpp"
#include "apps/lu.hpp"
#include "apps/registry.hpp"
#include "common/config.hpp"
#include "phase/detector.hpp"
#include "phase/predictor.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace dsm;

  MachineConfig cfg = default_config(8);
  cfg.phase.interval_instructions = apps::scaled_interval("LU", apps::Scale::kBench);

  apps::LuParams lu;  // bench-size input: 256x256 matrix, 8x8 blocks
  lu.n = 256;
  lu.block = 8;

  std::printf("simulating LU %ux%u (block %u) on %u nodes...\n", lu.n, lu.n,
              lu.block, cfg.num_nodes);
  sim::Machine machine(cfg);
  const auto run = machine.run(apps::make_lu(lu));

  // Online detection on processor 0's trace, thresholds fixed up front —
  // exactly what the dedicated hardware of §III-B would do.
  const auto& trace = run.procs[0].intervals;
  double dds_lo = 1e300, dds_hi = -1e300;
  for (const auto& r : trace) {
    dds_lo = std::min(dds_lo, r.dds);
    dds_hi = std::max(dds_hi, r.dds);
  }
  phase::Thresholds t;
  t.bbv = cfg.phase.bbv_norm / 8;
  t.dds = (dds_hi - dds_lo) / 6.0;
  phase::BbvDdvDetector detector(cfg.phase.footprint_vectors, t);
  phase::LastPhasePredictor last_pred;
  phase::MarkovPhasePredictor markov_pred;
  phase::RunLengthPredictor rl_pred;

  std::vector<PhaseId> assignment;
  assignment.reserve(trace.size());
  std::printf("\nproc 0 interval timeline (online BBV+DDV):\n");
  std::printf("  interval | phase | CPI    | DDS\n");
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto c = detector.classify(trace[i]);
    assignment.push_back(c.phase);
    last_pred.observe(c.phase);
    markov_pred.observe(c.phase);
    rl_pred.observe(c.phase);
    if (i < 12 || i + 4 > trace.size() || c.new_phase) {
      std::printf("  %8zu | %5d | %6.3f | %.3g%s\n", i, c.phase,
                  trace[i].cpi, trace[i].dds,
                  c.new_phase ? "  <- new phase allocated" : "");
    } else if (i == 12) {
      std::printf("  ...\n");
    }
  }

  std::printf("\nper-phase statistics (proc 0):\n");
  std::printf("  phase | intervals | mean CPI | CoV of CPI\n");
  for (const auto& ps : analysis::per_phase_stats(trace, assignment)) {
    std::printf("  %5d | %9zu | %8.3f | %.4f\n", ps.phase, ps.intervals,
                ps.mean_cpi, ps.cov_cpi);
  }
  std::printf("  identifier CoV: %.4f\n",
              analysis::identifier_cov(trace, assignment));

  std::printf("\nphase predictors over this phase sequence (the paper's "
              "future-work step):\n");
  for (const phase::PhasePredictor* p :
       {static_cast<const phase::PhasePredictor*>(&last_pred),
        static_cast<const phase::PhasePredictor*>(&markov_pred),
        static_cast<const phase::PhasePredictor*>(&rl_pred)}) {
    std::printf("  %-18s accuracy %.1f%% (%llu predictions)\n", p->name(),
                100.0 * p->accuracy(),
                static_cast<unsigned long long>(p->predictions()));
  }
  return 0;
}
