// quickstart.cpp — minimal end-to-end tour of the library:
//   1. configure the Table I machine with 8 nodes,
//   2. run a workload with a known two-phase structure where the phases
//      differ only in data distribution (micro::hot_home),
//   3. classify the recorded intervals with the BBV baseline and with the
//      proposed BBV+DDV detector,
//   4. print the identifier CoV of CPI for both — the paper's §II metric.
//
// Expected outcome: BBV merges the two behaviours (same basic blocks!)
// into one phase and reports a high CoV; BBV+DDV separates them and the
// CoV collapses.
#include <cstdio>

#include "analysis/classifier.hpp"
#include "analysis/cov.hpp"
#include "apps/micro.hpp"
#include "common/config.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace dsm;

  // A Table I machine with 8 nodes; shrink the sampling interval to match
  // this small demo workload.
  MachineConfig cfg = default_config(8);
  cfg.phase.interval_instructions = 800'000;  // 100k per processor

  apps::MicroParams wl;
  wl.repeats = 8;
  wl.iters_per_segment = 12'000;

  sim::Machine machine(cfg);
  const sim::RunSummary run = machine.run(apps::make_hot_home(wl));

  std::printf("simulated %u processors, %zu intervals on proc 0\n",
              cfg.num_nodes, run.procs[0].intervals.size());
  std::printf("proc 0 aggregate CPI: %.3f, remote access fraction: %.2f\n\n",
              run.cpi(0), run.remote_access_fraction(0));

  // Classify every processor's trace under both detectors with mid-range
  // thresholds, then report the system-wide (processor-averaged) CoV.
  phase::Thresholds t;
  t.bbv = cfg.phase.bbv_norm / 4;  // generous: same code => BBV matches
  double bbv_cov = 0.0, ddv_cov = 0.0, bbv_phases = 0.0, ddv_phases = 0.0;
  for (const auto& proc : run.procs) {
    const auto base = analysis::classify_trace(
        proc.intervals, /*use_dds=*/false, cfg.phase.footprint_vectors, t);
    bbv_cov += analysis::identifier_cov(proc.intervals, base.assignment);
    bbv_phases += base.distinct_phases;

    // DDS threshold: a quarter of this processor's observed DDS spread.
    double lo = 1e300, hi = -1e300;
    for (const auto& r : proc.intervals) {
      lo = std::min(lo, r.dds);
      hi = std::max(hi, r.dds);
    }
    phase::Thresholds td = t;
    td.dds = (hi - lo) / 4.0;
    const auto ddv = analysis::classify_trace(
        proc.intervals, /*use_dds=*/true, cfg.phase.footprint_vectors, td);
    ddv_cov += analysis::identifier_cov(proc.intervals, ddv.assignment);
    ddv_phases += ddv.distinct_phases;
  }
  const double n = static_cast<double>(run.procs.size());
  std::printf("detector   mean phases   identifier CoV of CPI\n");
  std::printf("BBV        %6.1f        %.4f\n", bbv_phases / n, bbv_cov / n);
  std::printf("BBV+DDV    %6.1f        %.4f\n", ddv_phases / n, ddv_cov / n);
  std::printf("\n(BBV cannot separate phases that differ only in data "
              "distribution;\n the DDV extension can — the paper's core "
              "observation.)\n");
  return 0;
}
