// detector_anatomy.cpp — the paper's Figures 1 and 3, animated: build the
// BBV accumulator, footprint table, and DDV structures by hand, feed them
// hand-crafted events, and print every intermediate value — the clearest
// way to see why two intervals with identical instruction working sets can
// still be different phases in a DSM machine.
#include <cstdio>

#include "network/topology.hpp"
#include "phase/bbv.hpp"
#include "phase/ddv.hpp"
#include "phase/footprint.hpp"

int main() {
  using namespace dsm;

  // ---- Fig. 1: the BBV accumulator ----
  std::printf("== Fig. 1 anatomy: BBV accumulator ==\n");
  phase::BbvAccumulator acc(8, 1000);  // 8 counters, normalize to 1000
  struct Branch { Addr pc; InstrCount instrs; };
  const Branch loop_a{0x400100, 20};  // hot inner loop
  const Branch loop_b{0x400480, 5};   // short bookkeeping loop
  for (int i = 0; i < 9; ++i) acc.record_branch(loop_a.pc, loop_a.instrs);
  for (int i = 0; i < 4; ++i) acc.record_branch(loop_b.pc, loop_b.instrs);
  std::printf("  after 9 x (branch@0x%llx, +20 instr) and 4 x "
              "(branch@0x%llx, +5 instr):\n",
              static_cast<unsigned long long>(loop_a.pc),
              static_cast<unsigned long long>(loop_b.pc));
  std::printf("  hash buckets: loop_a -> %u, loop_b -> %u\n",
              acc.index_of(loop_a.pc), acc.index_of(loop_b.pc));
  const auto v1 = acc.snapshot();
  std::printf("  normalized snapshot: [");
  for (const auto x : v1) std::printf(" %u", x);
  std::printf(" ]  (sums to ~1000)\n\n");

  // A second interval with a shifted mix.
  acc.reset();
  for (int i = 0; i < 4; ++i) acc.record_branch(loop_a.pc, loop_a.instrs);
  for (int i = 0; i < 24; ++i) acc.record_branch(loop_b.pc, loop_b.instrs);
  const auto v2 = acc.snapshot();
  std::printf("  second interval (4 x loop_a, 24 x loop_b) snapshot: [");
  for (const auto x : v2) std::printf(" %u", x);
  std::printf(" ]\n  Manhattan distance between the intervals: %llu\n\n",
              static_cast<unsigned long long>(phase::manhattan(v1, v2)));

  // ---- footprint table classification ----
  std::printf("== Footprint table (LRU, threshold matching) ==\n");
  phase::FootprintTable table(2, /*use_dds=*/false);  // tiny on purpose
  auto show = [&](const char* what, const phase::Classification& c) {
    std::printf("  %-28s -> phase %d%s (bbv distance %llu)\n", what, c.phase,
                c.new_phase ? " [new entry]" : "",
                static_cast<unsigned long long>(c.bbv_distance));
  };
  show("interval 1 (v1)", table.classify(v1, 0, 300, 0));
  show("interval 2 (v2)", table.classify(v2, 0, 300, 0));
  show("interval 3 (v1 again)", table.classify(v1, 0, 300, 0));
  phase::BbvVector v3(8, 0);
  v3[3] = 1000;  // a third behaviour evicts the LRU entry (capacity 2)
  show("interval 4 (new behaviour)", table.classify(v3, 0, 300, 0));
  show("interval 5 (v2 after evict)", table.classify(v2, 0, 300, 0));
  std::printf("  phases issued in total: %d (capacity pressure visible)\n\n",
              table.phases_issued());

  // ---- Fig. 3: the DDV on a 2-processor system ----
  std::printf("== Fig. 3 anatomy: DDV on a 2-processor DSM ==\n");
  net::TopologyModel topo(Topology::kHypercube, 2);
  phase::DdvFabric ddv(2, topo.ddv_distance_matrix());
  // Interval X: processor 0 works from its own memory; processor 1 also
  // hammers node 0's memory (contention).
  for (int i = 0; i < 90; ++i) ddv.record_access(0, 0);
  for (int i = 0; i < 10; ++i) ddv.record_access(0, 1);
  for (int i = 0; i < 80; ++i) ddv.record_access(1, 0);
  auto g = ddv.gather(0);
  std::printf("  interval X: F[0][*] = {%llu, %llu}, C = {%llu, %llu}, "
              "D[0][*] = {%u, %u}\n",
              static_cast<unsigned long long>(g.own_f[0]),
              static_cast<unsigned long long>(g.own_f[1]),
              static_cast<unsigned long long>(g.c[0]),
              static_cast<unsigned long long>(g.c[1]),
              ddv.distance(0, 0), ddv.distance(0, 1));
  std::printf("  DDS_0 = F*D*C summed = %.0f\n", g.dds);

  // Interval Y: identical code on processor 0 — same BBV! — but now its
  // data lives remotely and processor 1 is quiet.
  for (int i = 0; i < 10; ++i) ddv.record_access(0, 0);
  for (int i = 0; i < 90; ++i) ddv.record_access(0, 1);
  g = ddv.gather(0);
  std::printf("  interval Y: F[0][*] = {%llu, %llu}, C = {%llu, %llu}\n",
              static_cast<unsigned long long>(g.own_f[0]),
              static_cast<unsigned long long>(g.own_f[1]),
              static_cast<unsigned long long>(g.c[0]),
              static_cast<unsigned long long>(g.c[1]));
  std::printf("  DDS_0 = %.0f\n", g.dds);
  std::printf("\n  Identical BBVs, very different DDS values: the BBV "
              "detector calls X and Y\n  the same phase, the BBV+DDV "
              "detector does not — the paper's core point.\n");
  return 0;
}
