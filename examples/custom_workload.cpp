// custom_workload.cpp — how to bring your own application to the
// simulator and the detectors. The workload here is a bulk-synchronous
// 1-D stencil relaxation with a mid-run repartitioning event: a realistic
// "adaptive application" whose data distribution changes while its code
// does not — precisely the situation the paper's DDV exists for.
//
// Checklist for a new workload (mirrors what src/apps/* do):
//   1. Put shared state in a shared_ptr captured by the AppFn closure;
//      initialize it on processor 0 before a barrier.
//   2. Allocate simulated memory via ctx.alloc/alloc_on/alloc_distributed
//      (placement decides home nodes — the DDV's 'home' is defined here).
//   3. Express computation as basic blocks: loads/stores at cache-line
//      granularity plus ctx.bb(site, instructions, fp_fraction).
//   4. Synchronize with ctx.barrier()/lock(); sync costs cycles but no
//      instructions (the paper's interval definition).
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/classifier.hpp"
#include "analysis/cov.hpp"
#include "apps/registry.hpp"
#include "common/config.hpp"
#include "sim/thread_ctx.hpp"

namespace {

using namespace dsm;

struct StencilShared {
  std::vector<Addr> chunk;   ///< per-proc slice of the field
  std::uint64_t chunk_bytes = 0;
};

/// A 1-D Jacobi-style relaxation. After half the sweeps, ownership shifts
/// by one node (simulating repartitioning after load imbalance): each
/// processor now works on its *neighbour's* memory — identical code,
/// different homes.
sim::AppFn make_stencil(unsigned sweeps, std::uint64_t field_bytes) {
  auto s = std::make_shared<StencilShared>();
  return [=](sim::ThreadCtx& ctx) {
    const unsigned n = ctx.nprocs();
    if (ctx.self() == 0) {
      s->chunk_bytes = field_bytes / n;
      s->chunk.resize(n);
      for (unsigned q = 0; q < n; ++q)
        s->chunk[q] = ctx.alloc_on(s->chunk_bytes, q);
    }
    ctx.barrier();

    constexpr BlockId kSweep = sim::bb_id("stencil.sweep");
    const unsigned line = ctx.config().l2.line_bytes;
    for (unsigned sweep = 0; sweep < sweeps; ++sweep) {
      // Repartitioning event: shift ownership by one node.
      const unsigned owner_shift = (sweep < sweeps / 2) ? 0u : 1u;
      const Addr base = s->chunk[(ctx.self() + owner_shift) % n];
      for (Addr a = base; a < base + s->chunk_bytes; a += line) {
        ctx.load(a);
        ctx.store(a);
        ctx.bb(kSweep, 24, 0.6);
      }
      ctx.barrier();
    }
  };
}

}  // namespace

int main() {
  MachineConfig cfg = default_config(8);
  cfg.phase.interval_instructions = 3'200'000;  // 400k per processor

  sim::Machine machine(cfg);
  // 4 MB per-processor chunks: the field streams through the 2 MB L2,
  // so after the repartition every sweep pays *remote* misses — a
  // persistent, distribution-only phase change.
  const auto run = machine.run(make_stencil(/*sweeps=*/16, 32u << 20));

  std::printf("custom stencil on %u nodes: %zu intervals/proc, CPI %.2f, "
              "remote fraction %.2f\n",
              cfg.num_nodes, run.procs[0].intervals.size(), run.cpi(0),
              run.remote_access_fraction(0));

  // The repartitioning is invisible to BBV (same code!) but obvious to the
  // DDV. Classify with both and report.
  const auto& trace = run.procs[3].intervals;
  double lo = 1e300, hi = -1e300;
  for (const auto& r : trace) {
    lo = std::min(lo, r.dds);
    hi = std::max(hi, r.dds);
  }
  phase::Thresholds t{.bbv = cfg.phase.bbv_norm / 8, .dds = (hi - lo) / 4};
  const auto bbv = analysis::classify_trace(trace, false, 32, t);
  const auto ddv = analysis::classify_trace(trace, true, 32, t);
  std::printf("BBV    : %u phases, identifier CoV %.4f\n",
              bbv.distinct_phases,
              analysis::identifier_cov(trace, bbv.assignment));
  std::printf("BBV+DDV: %u phases, identifier CoV %.4f\n",
              ddv.distinct_phases,
              analysis::identifier_cov(trace, ddv.assignment));
  std::printf("\nThe ownership shift halfway through is a data-distribution"
              "-only phase\nchange: BBV merges it, BBV+DDV finds it.\n");
  return 0;
}
