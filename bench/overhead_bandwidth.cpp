// overhead_bandwidth.cpp — reproduces the paper's §III-B communication-
// overhead estimate for the DDV mechanism:
//
//   "Assuming 32 2GHz processors, IPC = 1, and a 'real-world' interval
//    length of 100M instructions, the overall sustained bandwidth
//    requirement of this mechanism is about 160kB/s. If modern memory
//    controllers can handle 1.5GB/s, then the overhead of this mechanism
//    is under 0.15% of the peak bandwidth."
//
// Two independent derivations are reported: (a) the analytic model with
// the paper's assumptions, and (b) the DDV traffic actually recorded by
// the simulator on a real workload, scaled to the paper's interval length.
// The single measurement run goes through the experiment driver so the
// harness shares the sweep flags (--threads accepted, trivially).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "phase/traffic_model.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  const auto& opt = parsed.options;

  std::printf("== DDV bandwidth overhead (paper §III-B) ==\n\n");

  // (a) Analytic, with the paper's assumptions.
  phase::DdvTrafficParams pp;  // 32 procs, 2 GHz, IPC 1, 100M-instr interval
  const auto r = ddv_traffic(pp);
  std::printf("analytic (paper assumptions):\n");
  std::printf("  interval ends per second per proc: %.1f\n",
              r.intervals_per_second);
  std::printf("  bytes exchanged per interval end : %llu\n",
              static_cast<unsigned long long>(r.bytes_per_gather));
  std::printf("  per-processor traffic            : %.1f kB/s  "
              "(paper: ~160 kB/s for the mechanism)\n",
              r.node_bytes_per_second / 1e3);
  std::printf("  system-wide traffic              : %.2f MB/s\n",
              r.system_bytes_per_second / 1e6);
  std::printf("  fraction of a 1.5 GB/s controller: %.4f%%  "
              "(paper: under 0.15%%)\n\n",
              100.0 * r.fraction_of_controller);

  // (b) Simulated: measure DDV bytes on a real run, rescale to the
  // paper's "real-world" interval length. Fixed configuration (LU, 32
  // nodes, test scale) — a one-point sweep on the driver.
  const unsigned nodes = 32;
  bench::BenchOptions run_opt = opt;
  run_opt.scale = apps::Scale::kTest;
  const auto sweep = bench::run_sweep(
      {&apps::app_by_name("LU")}, {nodes}, run_opt);
  const auto& run = sweep.front().run;
  const double sim_interval =
      static_cast<double>(run.cfg.interval_per_processor());
  const double gathers =
      static_cast<double>(run.net_messages[3]) / (2.0 * (nodes - 1));
  const double bytes_per_gather =
      static_cast<double>(run.net_bytes[3]) / gathers;
  // At IPC=1 and 2 GHz, a 100M-instruction per-processor interval (the
  // paper's "real-world" length) takes 100M cycles = 50 ms.
  const double interval_seconds =
      100e6 / static_cast<double>(run.cfg.core.frequency_hz);
  // x2: the node's interface also serves every peer's gather (responder
  // role), matching the analytic model's accounting.
  const double node_rate = 2.0 * bytes_per_gather / interval_seconds;
  std::printf("simulated (LU, %u nodes; %0.f-instr intervals rescaled to "
              "the paper's 100M):\n",
              nodes, sim_interval);
  std::printf("  DDV messages recorded            : %llu (%llu bytes)\n",
              static_cast<unsigned long long>(run.net_messages[3]),
              static_cast<unsigned long long>(run.net_bytes[3]));
  std::printf("  bytes per gather                 : %.0f\n", bytes_per_gather);
  std::printf("  per-processor traffic            : %.1f kB/s\n",
              node_rate / 1e3);
  std::printf("  fraction of a 1.5 GB/s controller: %.4f%%\n",
              100.0 * node_rate / 1.5e9);

  const bool ok = r.fraction_of_controller < 0.0015 &&
                  node_rate / 1.5e9 < 0.0015;
  std::printf("\npaper claim (<0.15%% of controller bandwidth): %s\n",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
