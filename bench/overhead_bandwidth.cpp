// overhead_bandwidth.cpp — reproduces the paper's §III-B communication-
// overhead estimate for the DDV mechanism:
//
//   "Assuming 32 2GHz processors, IPC = 1, and a 'real-world' interval
//    length of 100M instructions, the overall sustained bandwidth
//    requirement of this mechanism is about 160kB/s. If modern memory
//    controllers can handle 1.5GB/s, then the overhead of this mechanism
//    is under 0.15% of the peak bandwidth."
//
// Two independent derivations are reported: (a) the analytic model with
// the paper's assumptions, and (b) the DDV traffic actually recorded by
// the simulator on a real workload, scaled to the paper's interval length.
// The single measurement run goes through the experiment driver so the
// harness shares the sweep flags (--threads, --shard, --shards) — its
// one-point "sweep" reduces to the four DDV traffic counters in-worker.
#include <cstdio>
#include <optional>

#include "bench/bench_util.hpp"
#include "phase/traffic_model.hpp"

namespace {

using namespace dsm;

constexpr unsigned kNodes = 32;

struct DdvTraffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t sim_interval = 0;
  std::uint64_t frequency_hz = 0;

  double bytes_per_gather() const {
    const double gathers =
        static_cast<double>(messages) / (2.0 * (kNodes - 1));
    return static_cast<double>(bytes) / gathers;
  }
  /// Per-processor traffic at the paper's "real-world" interval: at IPC=1
  /// a 100M-instruction interval takes 100M cycles; x2 because the node's
  /// interface also serves every peer's gather (responder role), matching
  /// the analytic model's accounting.
  double node_rate() const {
    const double interval_seconds =
        100e6 / static_cast<double>(frequency_hz);
    return 2.0 * bytes_per_gather() / interval_seconds;
  }
};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  const auto& opt = parsed.options;
  const bool stream = bench::stream_mode(opt);

  if (!stream) std::printf("== DDV bandwidth overhead (paper §III-B) ==\n\n");

  // (a) Analytic, with the paper's assumptions.
  phase::DdvTrafficParams pp;  // 32 procs, 2 GHz, IPC 1, 100M-instr interval
  const auto r = ddv_traffic(pp);
  if (!stream) {
    std::printf("analytic (paper assumptions):\n");
    std::printf("  interval ends per second per proc: %.1f\n",
                r.intervals_per_second);
    std::printf("  bytes exchanged per interval end : %llu\n",
                static_cast<unsigned long long>(r.bytes_per_gather));
    std::printf("  per-processor traffic            : %.1f kB/s  "
                "(paper: ~160 kB/s for the mechanism)\n",
                r.node_bytes_per_second / 1e3);
    std::printf("  system-wide traffic              : %.2f MB/s\n",
                r.system_bytes_per_second / 1e6);
    std::printf("  fraction of a 1.5 GB/s controller: %.4f%%  "
                "(paper: under 0.15%%)\n\n",
                100.0 * r.fraction_of_controller);
  }

  // (b) Simulated: measure DDV bytes on a real run, rescale to the
  // paper's "real-world" interval length. Fixed configuration (LU, 32
  // nodes, test scale) — a one-point sweep on the driver. The reduce
  // step captures the counters for the claim check, which runs in every
  // mode (a shard that does not own the point skips it and exits 0; the
  // owning worker's status carries the verdict through the orchestrator).
  bench::BenchOptions run_opt = opt;
  run_opt.scale = apps::Scale::kTest;
  std::optional<DdvTraffic> measured;
  bench::run_reduced_sweep<DdvTraffic>(
      {&apps::app_by_name("LU")}, {kNodes}, run_opt, "overhead_bandwidth",
      [&measured](const driver::SpecPoint&, sim::RunSummary&& run) {
        DdvTraffic m;
        m.messages = run.net_messages[3];
        m.bytes = run.net_bytes[3];
        m.sim_interval = run.cfg.interval_per_processor();
        m.frequency_hz = run.cfg.core.frequency_hz;
        measured = m;
        return m;
      },
      [](const driver::SpecPoint&, const DdvTraffic& m) {
        return shard::JsonObject()
            .add("ddv_messages", m.messages)
            .add("ddv_bytes", m.bytes)
            .add("bytes_per_gather", m.bytes_per_gather())
            .add("node_rate_bytes_per_s", m.node_rate())
            .add("claim_holds",
                 std::uint64_t{m.node_rate() / 1.5e9 < 0.0015})
            .str();
      },
      [&](const driver::SpecPoint&, DdvTraffic&& m) {
        std::printf("simulated (LU, %u nodes; %llu-instr intervals rescaled "
                    "to the paper's 100M):\n",
                    kNodes, static_cast<unsigned long long>(m.sim_interval));
        std::printf("  DDV messages recorded            : %llu (%llu "
                    "bytes)\n",
                    static_cast<unsigned long long>(m.messages),
                    static_cast<unsigned long long>(m.bytes));
        std::printf("  bytes per gather                 : %.0f\n",
                    m.bytes_per_gather());
        std::printf("  per-processor traffic            : %.1f kB/s\n",
                    m.node_rate() / 1e3);
        std::printf("  fraction of a 1.5 GB/s controller: %.4f%%\n",
                    100.0 * m.node_rate() / 1.5e9);
      });

  if (!measured) return 0;  // shard worker that does not own the point
  const bool ok = r.fraction_of_controller < 0.0015 &&
                  measured->node_rate() / 1.5e9 < 0.0015;
  if (!stream)
    std::printf("\npaper claim (<0.15%% of controller bandwidth): %s\n",
                ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
