// overhead_bandwidth.cpp — reproduces the paper's §III-B communication-
// overhead estimate for the DDV mechanism:
//
//   "Assuming 32 2GHz processors, IPC = 1, and a 'real-world' interval
//    length of 100M instructions, the overall sustained bandwidth
//    requirement of this mechanism is about 160kB/s. If modern memory
//    controllers can handle 1.5GB/s, then the overhead of this mechanism
//    is under 0.15% of the peak bandwidth."
//
// Two independent derivations are reported by the renderer in src/report:
// (a) the analytic model with the paper's assumptions (a pure function,
// recomputed at render time), and (b) the DDV traffic actually recorded
// by the simulator on a real workload, carried in the stream record and
// rescaled to the paper's interval length. The single measurement run
// goes through the experiment driver so the harness shares the sweep
// flags (--threads, --shard, --shards); the renderer's finish() verdict
// is the paper-claim exit code — live or offline.
#include "bench/bench_util.hpp"
#include "phase/traffic_model.hpp"

namespace {

using namespace dsm;

constexpr unsigned kNodes = 32;

struct DdvTraffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t sim_interval = 0;
  std::uint64_t frequency_hz = 0;

  double bytes_per_gather() const {
    const double gathers =
        static_cast<double>(messages) / (2.0 * (kNodes - 1));
    return static_cast<double>(bytes) / gathers;
  }
  /// Per-processor traffic at the paper's "real-world" interval: at IPC=1
  /// a 100M-instruction interval takes 100M cycles; x2 because the node's
  /// interface also serves every peer's gather (responder role), matching
  /// the analytic model's accounting.
  double node_rate() const {
    const double interval_seconds =
        100e6 / static_cast<double>(frequency_hz);
    return 2.0 * bytes_per_gather() / interval_seconds;
  }
};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  const auto& opt = parsed.options;

  // Simulated: measure DDV bytes on a real run, rescale to the paper's
  // "real-world" interval length. Fixed configuration (LU, 32 nodes,
  // test scale) — a one-point sweep on the driver. The record carries
  // the counters plus the claim verdict; the renderer prints both the
  // analytic and the simulated derivation and returns the claim status
  // (a shard worker that does not own the point exits 0; the owning
  // worker's record carries the verdict through the merge to `render`).
  bench::BenchOptions run_opt = opt;
  run_opt.scale = apps::Scale::kTest;
  return bench::run_reduced_sweep<DdvTraffic>(
      {&apps::app_by_name("LU")}, {kNodes}, run_opt, "overhead_bandwidth",
      [](const driver::SpecPoint&, sim::RunSummary&& run) {
        DdvTraffic m;
        m.messages = run.net_messages[3];
        m.bytes = run.net_bytes[3];
        m.sim_interval = run.cfg.interval_per_processor();
        m.frequency_hz = run.cfg.core.frequency_hz;
        return m;
      },
      [](const driver::SpecPoint&, const DdvTraffic& m) {
        return shard::JsonObject()
            .add("ddv_messages", m.messages)
            .add("ddv_bytes", m.bytes)
            .add("sim_interval", m.sim_interval)
            .add("bytes_per_gather", m.bytes_per_gather())
            .add("node_rate_bytes_per_s", m.node_rate())
            .add("claim_holds",
                 std::uint64_t{m.node_rate() / 1.5e9 < 0.0015})
            .str();
      });
}
