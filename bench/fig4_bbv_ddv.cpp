// fig4_bbv_ddv.cpp — reproduces Figure 4 of the paper: CoV curves of the
// BBV baseline vs the proposed BBV+DDV detector at 8 and 32 processors for
// the four Table II applications.
//
// Paper-shape expectations this harness reports at the end:
//   * BBV+DDV's curve lies at or below BBV's across the board;
//   * the gap widens from 8P to 32P;
//   * headline example (paper): FMM at 32P — BBV reaches 29% CoV with 25
//     phases, BBV+DDV ~15% at the same 25 phases, and only ~11 phases are
//     needed to reach BBV's 29%.
//
// The app × nodes sweep runs on the experiment driver (--threads=N);
// analysis and printing happen serially in spec order afterwards, so the
// output is identical at any thread count.
#include <algorithm>
#include <cstdio>

#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {8, 32};

  std::printf("== Figure 4: BBV vs BBV+DDV CoV curves (scale: %s) ==\n\n",
              apps::scale_name(opt.scale));

  analysis::CurveParams cp;

  TableWriter headline({"app", "nodes", "BBV CoV@25", "DDV CoV@25",
                        "CoV ratio", "BBV phases@CoV", "DDV phases@CoV"});

  const auto results =
      bench::run_sweep(bench::selected_apps(opt), opt.node_counts, opt);
  for (const auto& res : results) {
    const auto& app = *res.app;
    const unsigned nodes = res.point.nodes;
    const auto bbv = analysis::bbv_cov_curve(res.run.procs, cp);
    const auto ddv = analysis::bbv_ddv_cov_curve(res.run.procs, cp);

    char title[160];
    std::snprintf(title, sizeof title, "-- %s, %uP: BBV --",
                  app.name.c_str(), nodes);
    bench::print_curve(title, bbv, 10);
    std::snprintf(title, sizeof title, "-- %s, %uP: BBV+DDV --",
                  app.name.c_str(), nodes);
    bench::print_curve(title, ddv, 10);
    bench::maybe_write_csv(opt, "fig4_" + app.name + "_" +
                                    std::to_string(nodes) + "p_bbv",
                           bbv);
    bench::maybe_write_csv(opt, "fig4_" + app.name + "_" +
                                    std::to_string(nodes) + "p_ddv",
                           ddv);

    const double bbv25 = analysis::cov_at_phases(bbv, 25.0);
    const double ddv25 = analysis::cov_at_phases(ddv, 25.0);
    // Phase counts each detector needs to reach the BBV@25 CoV level —
    // the paper's "tuning savings" view.
    const double bbv_need = analysis::phases_for_cov(bbv, bbv25);
    const double ddv_need = analysis::phases_for_cov(ddv, bbv25);
    headline.add_row({app.name, std::to_string(nodes),
                      TableWriter::fmt(bbv25, 3),
                      TableWriter::fmt(ddv25, 3),
                      TableWriter::fmt(ddv25 / std::max(bbv25, 1e-9), 3),
                      TableWriter::fmt(bbv_need, 3),
                      TableWriter::fmt(ddv_need, 3)});
  }

  std::printf("== Figure 4 headline (paper shape: DDV at/below BBV, gap "
              "widening with nodes) ==\n%s\n",
              headline.to_text().c_str());
  return 0;
}
