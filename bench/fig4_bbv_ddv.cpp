// fig4_bbv_ddv.cpp — reproduces Figure 4 of the paper: CoV curves of the
// BBV baseline vs the proposed BBV+DDV detector at 8 and 32 processors for
// the four Table II applications.
//
// Paper-shape expectations the renderer reports at the end:
//   * BBV+DDV's curve lies at or below BBV's across the board;
//   * the gap widens from 8P to 32P;
//   * headline example (paper): FMM at 32P — BBV reaches 29% CoV with 25
//     phases, BBV+DDV ~15% at the same 25 phases, and only ~11 phases are
//     needed to reach BBV's 29%.
//
// The app × nodes sweep runs on the experiment driver (--threads=N,
// --shard=i/N, --shards=N); both curves are computed from the RunSummary
// inside the worker (raw interval traces are dropped there) and carried
// in the configuration's stream record, which the fig4 renderer in
// src/report turns into the curves and headline table — live or offline.
#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"

namespace {

struct Fig4Curves {
  std::vector<dsm::analysis::CurvePoint> bbv;
  std::vector<dsm::analysis::CurvePoint> ddv;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {8, 32};

  analysis::CurveParams cp;

  return bench::run_reduced_sweep<Fig4Curves>(
      bench::selected_apps(opt), opt.node_counts, opt, "fig4_bbv_ddv",
      [&cp](const driver::SpecPoint&, sim::RunSummary&& run) {
        Fig4Curves c;
        c.bbv = analysis::bbv_cov_curve(run.procs, cp);
        c.ddv = analysis::bbv_ddv_cov_curve(run.procs, cp);
        return c;
      },
      [](const driver::SpecPoint&, const Fig4Curves& c) {
        const double bbv25 = analysis::cov_at_phases(c.bbv, 25.0);
        const double ddv25 = analysis::cov_at_phases(c.ddv, 25.0);
        // Phase counts each detector needs to reach the BBV@25 CoV level
        // — the paper's "tuning savings" view.
        return shard::JsonObject()
            .add("bbv_cov_at_25", bbv25)
            .add("ddv_cov_at_25", ddv25)
            .add("bbv_phases_at_cov", analysis::phases_for_cov(c.bbv, bbv25))
            .add("ddv_phases_at_cov", analysis::phases_for_cov(c.ddv, bbv25))
            .add_raw("bbv_curve", bench::curve_json(c.bbv))
            .add_raw("ddv_curve", bench::curve_json(c.ddv))
            .str();
      });
}
