// fig4_bbv_ddv.cpp — reproduces Figure 4 of the paper: CoV curves of the
// BBV baseline vs the proposed BBV+DDV detector at 8 and 32 processors for
// the four Table II applications.
//
// Paper-shape expectations this harness reports at the end:
//   * BBV+DDV's curve lies at or below BBV's across the board;
//   * the gap widens from 8P to 32P;
//   * headline example (paper): FMM at 32P — BBV reaches 29% CoV with 25
//     phases, BBV+DDV ~15% at the same 25 phases, and only ~11 phases are
//     needed to reach BBV's 29%.
//
// The app × nodes sweep runs on the experiment driver (--threads=N,
// --shard=i/N, --shards=N); both curves are computed from the RunSummary
// inside the worker (raw interval traces are dropped there) and printing
// happens in spec order as results stream in, so the output is identical
// at any thread count.
#include <algorithm>
#include <cstdio>

#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"

namespace {

struct Fig4Curves {
  std::vector<dsm::analysis::CurvePoint> bbv;
  std::vector<dsm::analysis::CurvePoint> ddv;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {8, 32};
  const bool stream = bench::stream_mode(opt);

  if (!stream)
    std::printf("== Figure 4: BBV vs BBV+DDV CoV curves (scale: %s) ==\n\n",
                apps::scale_name(opt.scale));

  analysis::CurveParams cp;

  TableWriter headline({"app", "nodes", "BBV CoV@25", "DDV CoV@25",
                        "CoV ratio", "BBV phases@CoV", "DDV phases@CoV"});

  bench::run_reduced_sweep<Fig4Curves>(
      bench::selected_apps(opt), opt.node_counts, opt, "fig4_bbv_ddv",
      [&cp](const driver::SpecPoint&, sim::RunSummary&& run) {
        Fig4Curves c;
        c.bbv = analysis::bbv_cov_curve(run.procs, cp);
        c.ddv = analysis::bbv_ddv_cov_curve(run.procs, cp);
        return c;
      },
      [](const driver::SpecPoint&, const Fig4Curves& c) {
        const double bbv25 = analysis::cov_at_phases(c.bbv, 25.0);
        const double ddv25 = analysis::cov_at_phases(c.ddv, 25.0);
        return shard::JsonObject()
            .add("bbv_cov_at_25", bbv25)
            .add("ddv_cov_at_25", ddv25)
            .add("bbv_phases_at_cov", analysis::phases_for_cov(c.bbv, bbv25))
            .add("ddv_phases_at_cov", analysis::phases_for_cov(c.ddv, bbv25))
            .str();
      },
      [&](const driver::SpecPoint& pt, Fig4Curves&& c) {
        const unsigned nodes = pt.nodes;
        char title[160];
        std::snprintf(title, sizeof title, "-- %s, %uP: BBV --",
                      pt.app.c_str(), nodes);
        bench::print_curve(title, c.bbv, 10);
        std::snprintf(title, sizeof title, "-- %s, %uP: BBV+DDV --",
                      pt.app.c_str(), nodes);
        bench::print_curve(title, c.ddv, 10);
        bench::maybe_write_csv(opt, "fig4_" + pt.app + "_" +
                                        std::to_string(nodes) + "p_bbv",
                               c.bbv);
        bench::maybe_write_csv(opt, "fig4_" + pt.app + "_" +
                                        std::to_string(nodes) + "p_ddv",
                               c.ddv);

        const double bbv25 = analysis::cov_at_phases(c.bbv, 25.0);
        const double ddv25 = analysis::cov_at_phases(c.ddv, 25.0);
        // Phase counts each detector needs to reach the BBV@25 CoV level —
        // the paper's "tuning savings" view.
        const double bbv_need = analysis::phases_for_cov(c.bbv, bbv25);
        const double ddv_need = analysis::phases_for_cov(c.ddv, bbv25);
        headline.add_row({pt.app, std::to_string(nodes),
                          TableWriter::fmt(bbv25, 3),
                          TableWriter::fmt(ddv25, 3),
                          TableWriter::fmt(ddv25 / std::max(bbv25, 1e-9), 3),
                          TableWriter::fmt(bbv_need, 3),
                          TableWriter::fmt(ddv_need, 3)});
      });

  if (!stream)
    std::printf("== Figure 4 headline (paper shape: DDV at/below BBV, gap "
                "widening with nodes) ==\n%s\n",
                headline.to_text().c_str());
  return 0;
}
