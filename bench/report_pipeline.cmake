# report_pipeline.cmake — ctest script enforcing the offline result-store
# contract end to end for one harness:
#
#   1. two *separate worker processes* (--shard=0/2, --shard=1/2) write
#      per-shard NDJSON files — the multi-host simulation: nothing but the
#      files crosses process boundaries;
#   2. `dsm_report merge` over the collected files must be byte-identical
#      to the in-process `--shards=2` orchestrator's merged stream;
#   3. `dsm_report render` over the merged file must be byte-identical to
#      the harness's live human stdout (and agree on the exit code) —
#      live output and offline render are the same renderer code on the
#      same records.
#
# Variables: HARNESS (binary path), HARNESS_ARGS (;-list of flags),
#            LIVE_ARGS (;-list of live-only extra flags, may be empty),
#            DSM_REPORT (dsm_report binary path), TAG (file-name tag),
#            WORK_DIR (where the artifacts land), CSV (optional: non-empty
#            to also byte-compare live --csv exports vs render --csv).

set(s0 "${WORK_DIR}/${TAG}_shard0.ndjson")
set(s1 "${WORK_DIR}/${TAG}_shard1.ndjson")
set(merged_ref "${WORK_DIR}/${TAG}_shards2.ndjson")
set(merged "${WORK_DIR}/${TAG}_merged.ndjson")
set(live_out "${WORK_DIR}/${TAG}_live.txt")
set(rendered "${WORK_DIR}/${TAG}_rendered.txt")

# 1. Two independent shard workers, each writing its own file.
execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --shard=0/2
  OUTPUT_FILE ${s0}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${HARNESS} --shard=0/2 exited with ${rc}")
endif()
execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --shard=1/2
  OUTPUT_FILE ${s1}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${HARNESS} --shard=1/2 exited with ${rc}")
endif()

# 2. In-process orchestrator reference stream.
execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --shards=2
  OUTPUT_FILE ${merged_ref}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${HARNESS} --shards=2 exited with ${rc}")
endif()

# Offline merge over the collected files.
execute_process(
  COMMAND ${DSM_REPORT} merge ${s0} ${s1}
  OUTPUT_FILE ${merged}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsm_report merge exited with ${rc}")
endif()

file(READ ${merged_ref} ref_bytes)
file(READ ${merged} merged_bytes)
if(ref_bytes STREQUAL "")
  message(FATAL_ERROR "--shards=2 stream ${merged_ref} is empty")
endif()
if(NOT ref_bytes STREQUAL merged_bytes)
  message(FATAL_ERROR
    "offline `dsm_report merge` differs from the in-process --shards=2 "
    "stream:\n  reference: ${merged_ref}\n  merged:    ${merged}")
endif()

# 3. Live human output vs offline render of the merged records.
set(live_cmd ${HARNESS} ${HARNESS_ARGS})
if(LIVE_ARGS)
  list(APPEND live_cmd ${LIVE_ARGS})
endif()
set(render_cmd ${DSM_REPORT} render)
if(CSV)
  file(MAKE_DIRECTORY "${WORK_DIR}/${TAG}_csv_live")
  file(MAKE_DIRECTORY "${WORK_DIR}/${TAG}_csv_render")
  list(APPEND live_cmd "--csv=${WORK_DIR}/${TAG}_csv_live")
  list(APPEND render_cmd "--csv=${WORK_DIR}/${TAG}_csv_render")
endif()
list(APPEND render_cmd ${merged})

execute_process(
  COMMAND ${live_cmd}
  OUTPUT_FILE ${live_out}
  RESULT_VARIABLE rc_live)
execute_process(
  COMMAND ${render_cmd}
  OUTPUT_FILE ${rendered}
  RESULT_VARIABLE rc_render)
if(NOT rc_live EQUAL rc_render)
  message(FATAL_ERROR
    "live run exited with ${rc_live} but `dsm_report render` with "
    "${rc_render}")
endif()
if(NOT rc_live EQUAL 0)
  message(FATAL_ERROR "live run exited with ${rc_live}")
endif()

file(READ ${live_out} live_bytes)
file(READ ${rendered} rendered_bytes)
if(live_bytes STREQUAL "")
  message(FATAL_ERROR "live output ${live_out} is empty")
endif()
if(NOT live_bytes STREQUAL rendered_bytes)
  message(FATAL_ERROR
    "`dsm_report render` output differs from the live human output:\n"
    "  live:     ${live_out}\n  rendered: ${rendered}")
endif()

# 3b. Batch equivalence: the Machine→fabric access batch size is a pure
# host-side execution knob, so the SAME live command with --batch=4 must
# reproduce the live stdout byte for byte — records, tables, exit code.
set(batch_out "${WORK_DIR}/${TAG}_live_batch4.txt")
set(batch_cmd ${HARNESS} ${HARNESS_ARGS})
if(LIVE_ARGS)
  list(APPEND batch_cmd ${LIVE_ARGS})
endif()
list(APPEND batch_cmd "--batch=4")
execute_process(
  COMMAND ${batch_cmd}
  OUTPUT_FILE ${batch_out}
  RESULT_VARIABLE rc_batch)
if(NOT rc_batch EQUAL 0)
  message(FATAL_ERROR "live run with --batch=4 exited with ${rc_batch}")
endif()
file(READ ${batch_out} batch_bytes)
if(NOT batch_bytes STREQUAL live_bytes)
  message(FATAL_ERROR
    "--batch=4 changed the simulated output (batching must be "
    "bit-identical):\n  serial: ${live_out}\n  batched: ${batch_out}")
endif()

# 4. Optional: the CSV exports must match file for file.
if(CSV)
  file(GLOB live_csvs RELATIVE "${WORK_DIR}/${TAG}_csv_live"
       "${WORK_DIR}/${TAG}_csv_live/*.csv")
  file(GLOB render_csvs RELATIVE "${WORK_DIR}/${TAG}_csv_render"
       "${WORK_DIR}/${TAG}_csv_render/*.csv")
  if(NOT live_csvs)
    message(FATAL_ERROR "live --csv run produced no CSV files")
  endif()
  if(NOT live_csvs STREQUAL render_csvs)
    message(FATAL_ERROR
      "CSV file sets differ: live [${live_csvs}] vs render [${render_csvs}]")
  endif()
  foreach(f IN LISTS live_csvs)
    file(READ "${WORK_DIR}/${TAG}_csv_live/${f}" a)
    file(READ "${WORK_DIR}/${TAG}_csv_render/${f}" b)
    if(NOT a STREQUAL b)
      message(FATAL_ERROR "CSV export ${f} differs between live and render")
    endif()
  endforeach()
endif()

message(STATUS "report pipeline OK (${TAG}): offline merge == --shards=2, "
               "render == live stdout == live --batch=4 stdout")
