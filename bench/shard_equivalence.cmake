# shard_equivalence.cmake — ctest script: a harness forked as two shard
# workers (--shards=2) must merge to the byte-identical NDJSON stream the
# single-process serial worker (--shard=0/1) emits.
#
# Variables: HARNESS (binary path), HARNESS_ARGS (;-list of flags),
#            TAG (file-name tag), WORK_DIR (where the .ndjson files land).

set(serial "${WORK_DIR}/${TAG}_serial.ndjson")
set(merged "${WORK_DIR}/${TAG}_merged.ndjson")

execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --shard=0/1
  OUTPUT_FILE ${serial}
  RESULT_VARIABLE rc_serial)
if(NOT rc_serial EQUAL 0)
  message(FATAL_ERROR "${HARNESS} --shard=0/1 exited with ${rc_serial}")
endif()

execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --shards=2
  OUTPUT_FILE ${merged}
  RESULT_VARIABLE rc_merged)
if(NOT rc_merged EQUAL 0)
  message(FATAL_ERROR "${HARNESS} --shards=2 exited with ${rc_merged}")
endif()

file(READ ${serial} serial_bytes)
file(READ ${merged} merged_bytes)
if(serial_bytes STREQUAL "")
  message(FATAL_ERROR "serial stream ${serial} is empty")
endif()
if(NOT serial_bytes STREQUAL merged_bytes)
  message(FATAL_ERROR
    "merged 2-shard stream differs from the serial stream:\n"
    "  serial: ${serial}\n  merged: ${merged}")
endif()
message(STATUS "merged --shards=2 stream is byte-identical to --shard=0/1 "
               "(${TAG})")
