// fig2_bbv_baseline.cpp — reproduces Figure 2 of the paper: CoV curves of
// the *uniprocessor BBV detector* applied per-node to a DSM, for the four
// Table II applications at 2, 8, and 32 processors.
//
// Paper-shape expectations the renderer reports at the end:
//   * for a fixed phase count (7 and 25), CoV grows markedly with the
//     node count for every application;
//   * e.g. paper: LU achieves <10% CoV with ~7 phases at 2P, but ~40% /
//     ~70% CoV at the same 7 phases on 8P / 32P.
//
// The app × nodes sweep runs on the experiment driver (--threads=N,
// --shard=i/N, --shards=N); each RunSummary is reduced to its CoV curve
// inside the worker (the raw interval traces never leave it) and
// serialized into the configuration's stream record. The human tables are
// produced by the fig2 renderer in src/report — the same code whether the
// records are replayed live here or offline by `dsm_report render`.
#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {2, 8, 32};

  analysis::CurveParams cp;  // 32-entry BBV, 32-vector footprint, 200 thr.

  using Curve = std::vector<analysis::CurvePoint>;
  return bench::run_reduced_sweep<Curve>(
      bench::selected_apps(opt), opt.node_counts, opt, "fig2_bbv_baseline",
      [&cp](const driver::SpecPoint&, sim::RunSummary&& run) {
        return analysis::bbv_cov_curve(run.procs, cp);
      },
      [](const driver::SpecPoint&, const Curve& curve) {
        return shard::JsonObject()
            .add("cov_at_7", analysis::cov_at_phases(curve, 7.0))
            .add("cov_at_25", analysis::cov_at_phases(curve, 25.0))
            .add("phases_for_cov20", analysis::phases_for_cov(curve, 0.20))
            .add("curve_points", static_cast<std::uint64_t>(curve.size()))
            .add_raw("curve", bench::curve_json(curve))
            .str();
      });
}
