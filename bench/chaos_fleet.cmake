# chaos_fleet.cmake — ctest script enforcing the fleet's fault-tolerance
# contract for one harness:
#
#   1. an undisturbed `--shards=3` pull-fleet run is the byte reference;
#   2. for every fault kind (worker-exit, worker-hang, truncated-record,
#      dropped-heartbeat) a `--inject-fault=KIND@SPEC` run must recover —
#      exit 0, report the recovery on stderr, and produce a merged stream
#      BYTE-IDENTICAL to the reference (deaths must be invisible in the
#      output);
#   3. resume: the reference store truncated mid-record must scan as
#      recoverable (`dsm_report resume` exits 1, names the gaps), and a
#      `--resume=` fleet over it must complete it back to the exact
#      reference bytes;
#   4. the heartbeat tee and lease ledger side files must exist and the
#      ledger must parse (CI uploads them as artifacts on failure).
#
# Variables: HARNESS (binary path), HARNESS_ARGS (;-list of flags),
#            DSM_REPORT (dsm_report binary path), TAG (file-name tag),
#            WORK_DIR (where the artifacts land).
#
# The deadline/backoff knobs are tuned small (2 s deadline, 100 ms beats)
# so the worker-hang reap costs seconds, not the 30 s production default.

set(ref "${WORK_DIR}/${TAG}_ref.ndjson")
set(knobs
  --lease-timeout-ms=2000 --hb-interval-ms=100 --backoff-ms=50)

# 1. Undisturbed reference fleet.
execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --shards=3
  OUTPUT_FILE ${ref}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${HARNESS} --shards=3 exited with ${rc}")
endif()
file(READ ${ref} ref_bytes)
if(ref_bytes STREQUAL "")
  message(FATAL_ERROR "reference fleet stream ${ref} is empty")
endif()
file(STRINGS ${ref} ref_lines)
list(LENGTH ref_lines total)

# 2. Every fault kind must recover byte-identically. The fault spec index
# sits mid-sweep so work exists on both sides of the death.
math(EXPR fault_spec "${total} / 2")
foreach(kind worker-exit worker-hang truncated-record dropped-heartbeat)
  set(out "${WORK_DIR}/${TAG}_${kind}.ndjson")
  set(err "${WORK_DIR}/${TAG}_${kind}.stderr")
  set(hb "${WORK_DIR}/${TAG}_${kind}.hb")
  set(ledger "${WORK_DIR}/${TAG}_${kind}.lease.ndjson")
  execute_process(
    COMMAND ${HARNESS} ${HARNESS_ARGS} --shards=3 ${knobs}
      --inject-fault=${kind}@${fault_spec}
      --heartbeat=${hb} --lease-log=${ledger}
    OUTPUT_FILE ${out}
    ERROR_FILE ${err}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    file(READ ${err} err_bytes)
    message(FATAL_ERROR
      "fleet with --inject-fault=${kind}@${fault_spec} exited with ${rc} "
      "(must recover and exit 0); stderr:\n${err_bytes}")
  endif()
  file(READ ${out} chaos_bytes)
  if(NOT chaos_bytes STREQUAL ref_bytes)
    message(FATAL_ERROR
      "fleet recovered from ${kind} but the merged stream differs from "
      "the undisturbed reference:\n  reference: ${ref}\n  chaos:     ${out}")
  endif()
  # The fault must be *visible* in the diagnostics — one that silently
  # never fired would pass the byte compare while testing nothing. The
  # three crash/wedge kinds also deterministically cost a worker death;
  # dropped-heartbeat need not: lease grants restart the liveness clock,
  # so a muted worker that keeps finishing leases inside the deadline
  # completes the sweep without ever being reaped (the reap-at-deadline
  # path is what worker-hang pins down).
  file(READ ${err} err_bytes)
  if(NOT err_bytes MATCHES "fleet: arming ${kind}@${fault_spec}")
    message(FATAL_ERROR
      "${kind} run never armed the fault; stderr:\n${err_bytes}")
  endif()
  if(NOT kind STREQUAL "dropped-heartbeat" AND
     NOT err_bytes MATCHES "fleet: recovered")
    message(FATAL_ERROR
      "${kind} run recovered no death (did the fault fire?); "
      "stderr:\n${err_bytes}")
  endif()
  # 4. Side-channel artifacts: the lease ledger must parse back through
  # dsm_report, and at least one heartbeat tee file must exist.
  execute_process(
    COMMAND ${DSM_REPORT} progress --lease=${ledger}
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "dsm_report progress --lease=${ledger} exited with ${rc}")
  endif()
  file(GLOB hb_files "${hb}.*")
  if(NOT hb_files)
    message(FATAL_ERROR "${kind} run wrote no heartbeat tee files (${hb}.*)")
  endif()
endforeach()

# 3. Resume: cut the reference store mid-record (a fleet killed while a
# worker was writing), verify the scanner calls it recoverable and names
# gaps, then complete it with a --resume fleet.
set(partial "${WORK_DIR}/${TAG}_partial.ndjson")
file(SIZE ${ref} ref_size)
math(EXPR cut "${ref_size} - 40")
file(READ ${ref} partial_bytes LIMIT ${cut})
file(WRITE ${partial} "${partial_bytes}")

execute_process(
  COMMAND ${DSM_REPORT} resume --total=${total} ${partial}
  OUTPUT_VARIABLE scan_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "dsm_report resume on a truncated store exited with ${rc} (want 1 = "
    "gaps remain):\n${scan_out}")
endif()
if(NOT scan_out MATCHES "truncated final record")
  message(FATAL_ERROR
    "dsm_report resume did not flag the truncated tail:\n${scan_out}")
endif()

set(resumed "${WORK_DIR}/${TAG}_resumed.ndjson")
execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --shards=2 ${knobs} --resume=${partial}
  OUTPUT_FILE ${resumed}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--resume fleet exited with ${rc}")
endif()
file(READ ${resumed} resumed_bytes)
if(NOT resumed_bytes STREQUAL ref_bytes)
  message(FATAL_ERROR
    "resumed fleet's completed store differs from the reference:\n"
    "  reference: ${ref}\n  resumed:   ${resumed}")
endif()
execute_process(
  COMMAND ${DSM_REPORT} resume --total=${total} ${resumed}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "completed store still reports gaps (dsm_report resume -> ${rc})")
endif()

message(STATUS "chaos fleet OK (${TAG}): ${total} specs; worker-exit, "
               "worker-hang, truncated-record, dropped-heartbeat all "
               "recovered byte-identically; truncated store resumed to "
               "the reference bytes")
