// predictors_eval.cpp — the paper's conclusion: "future work ... should
// move toward combining the insights derived from our study with
// appropriate phase prediction mechanisms". This harness closes that
// loop: classify each application online with both detectors, feed the
// phase sequence to three predictors (last-phase, first-order Markov,
// run-length Markov), and report next-interval prediction accuracy.
//
// The interesting comparison: better detectors produce *more stable*
// phase sequences, which are easier to predict — detection quality and
// predictability compound.
//
// The app × nodes sweep runs on the experiment driver (--threads=N,
// --shard=i/N, --shards=N); classification runs inside the worker (the
// raw traces are dropped there) and the table is assembled in spec order
// as results stream in, so it is byte-identical at any thread count.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"
#include "phase/detector.hpp"
#include "phase/predictor.hpp"

namespace {

struct PredictorRow {
  double phases = 0.0;
  double last_pct = 0.0;
  double markov_pct = 0.0;
  double run_length_pct = 0.0;
};

struct PredictorRows {
  PredictorRow bbv;
  PredictorRow ddv;
};

PredictorRow evaluate(const dsm::sim::RunSummary& run, bool use_dds) {
  using namespace dsm;
  // Mid-range thresholds derived per processor, as the examples do.
  phase::LastPhasePredictor last;
  phase::MarkovPhasePredictor markov;
  phase::RunLengthPredictor rl;
  double phases = 0.0;
  for (const auto& proc : run.procs) {
    double lo = 1e300, hi = -1e300;
    for (const auto& r : proc.intervals) {
      lo = std::min(lo, r.dds);
      hi = std::max(hi, r.dds);
    }
    phase::Thresholds th;
    th.bbv = run.cfg.phase.bbv_norm / 8;
    th.dds = (hi - lo) / 6.0;
    std::unique_ptr<phase::PhaseDetector> det;
    if (use_dds)
      det = std::make_unique<phase::BbvDdvDetector>(
          run.cfg.phase.footprint_vectors, th);
    else
      det = std::make_unique<phase::BbvDetector>(
          run.cfg.phase.footprint_vectors, th);
    PhaseId max_phase = 0;
    for (const auto& rec : proc.intervals) {
      const auto c = det->classify(rec);
      max_phase = std::max(max_phase, c.phase);
      last.observe(c.phase);
      markov.observe(c.phase);
      rl.observe(c.phase);
    }
    phases += max_phase + 1;
  }
  PredictorRow row;
  row.phases = phases / run.procs.size();
  row.last_pct = 100.0 * last.accuracy();
  row.markov_pct = 100.0 * markov.accuracy();
  row.run_length_pct = 100.0 * rl.accuracy();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {8};
  const bool stream = bench::stream_mode(opt);

  if (!stream)
    std::printf("== Phase predictors over detected phase sequences "
                "(scale: %s) ==\n\n",
                apps::scale_name(opt.scale));

  TableWriter t({"app", "nodes", "detector", "phases", "last-phase",
                 "markov", "run-length"});

  bench::run_reduced_sweep<PredictorRows>(
      bench::selected_apps(opt), opt.node_counts, opt, "predictors_eval",
      [](const driver::SpecPoint&, sim::RunSummary&& run) {
        PredictorRows rows;
        rows.bbv = evaluate(run, /*use_dds=*/false);
        rows.ddv = evaluate(run, /*use_dds=*/true);
        return rows;
      },
      [](const driver::SpecPoint&, const PredictorRows& rows) {
        return shard::JsonObject()
            .add("bbv_phases", rows.bbv.phases)
            .add("bbv_markov_pct", rows.bbv.markov_pct)
            .add("ddv_phases", rows.ddv.phases)
            .add("ddv_markov_pct", rows.ddv.markov_pct)
            .str();
      },
      [&](const driver::SpecPoint& pt, PredictorRows&& rows) {
        for (const bool use_dds : {false, true}) {
          const PredictorRow& row = use_dds ? rows.ddv : rows.bbv;
          t.add_row({pt.app, std::to_string(pt.nodes),
                     use_dds ? "BBV+DDV" : "BBV",
                     TableWriter::fmt(row.phases, 3),
                     TableWriter::fmt(row.last_pct, 3),
                     TableWriter::fmt(row.markov_pct, 3),
                     TableWriter::fmt(row.run_length_pct, 3)});
        }
      });
  if (!stream)
    std::printf("%s\n(accuracies in %%; phases = mean phase ids issued per "
                "processor)\n",
                t.to_text().c_str());
  return 0;
}
