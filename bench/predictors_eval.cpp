// predictors_eval.cpp — the paper's conclusion: "future work ... should
// move toward combining the insights derived from our study with
// appropriate phase prediction mechanisms". This harness closes that
// loop: classify each application online with both detectors, feed the
// phase sequence to three predictors (last-phase, first-order Markov,
// run-length Markov), and report next-interval prediction accuracy.
//
// The interesting comparison: better detectors produce *more stable*
// phase sequences, which are easier to predict — detection quality and
// predictability compound.
//
// The app × nodes sweep runs on the experiment driver (--threads=N);
// classification and printing happen serially in spec order afterwards,
// so the table is byte-identical at any thread count.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"
#include "phase/detector.hpp"
#include "phase/predictor.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {8};

  std::printf("== Phase predictors over detected phase sequences "
              "(scale: %s) ==\n\n",
              apps::scale_name(opt.scale));

  TableWriter t({"app", "nodes", "detector", "phases", "last-phase",
                 "markov", "run-length"});

  const auto results =
      bench::run_sweep(bench::selected_apps(opt), opt.node_counts, opt);
  for (const auto& res : results) {
    const auto& run = res.run;
    for (const bool use_dds : {false, true}) {
      // Mid-range thresholds derived per processor, as the examples do.
      phase::LastPhasePredictor last;
      phase::MarkovPhasePredictor markov;
      phase::RunLengthPredictor rl;
      double phases = 0.0;
      for (const auto& proc : run.procs) {
        double lo = 1e300, hi = -1e300;
        for (const auto& r : proc.intervals) {
          lo = std::min(lo, r.dds);
          hi = std::max(hi, r.dds);
        }
        phase::Thresholds th;
        th.bbv = run.cfg.phase.bbv_norm / 8;
        th.dds = (hi - lo) / 6.0;
        std::unique_ptr<phase::PhaseDetector> det;
        if (use_dds)
          det = std::make_unique<phase::BbvDdvDetector>(
              run.cfg.phase.footprint_vectors, th);
        else
          det = std::make_unique<phase::BbvDetector>(
              run.cfg.phase.footprint_vectors, th);
        PhaseId max_phase = 0;
        for (const auto& rec : proc.intervals) {
          const auto c = det->classify(rec);
          max_phase = std::max(max_phase, c.phase);
          last.observe(c.phase);
          markov.observe(c.phase);
          rl.observe(c.phase);
        }
        phases += max_phase + 1;
      }
      t.add_row({res.app->name, std::to_string(res.point.nodes),
                 use_dds ? "BBV+DDV" : "BBV",
                 TableWriter::fmt(phases / run.procs.size(), 3),
                 TableWriter::fmt(100.0 * last.accuracy(), 3),
                 TableWriter::fmt(100.0 * markov.accuracy(), 3),
                 TableWriter::fmt(100.0 * rl.accuracy(), 3)});
    }
  }
  std::printf("%s\n(accuracies in %%; phases = mean phase ids issued per "
              "processor)\n",
              t.to_text().c_str());
  return 0;
}
