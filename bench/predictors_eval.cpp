// predictors_eval.cpp — the paper's conclusion: "future work ... should
// move toward combining the insights derived from our study with
// appropriate phase prediction mechanisms". This harness closes that
// loop: classify each application online with both detectors, feed the
// phase sequence to three predictors (last-phase, first-order Markov,
// run-length Markov), and report next-interval prediction accuracy.
//
// The interesting comparison: better detectors produce *more stable*
// phase sequences, which are easier to predict — detection quality and
// predictability compound.
//
// The app × nodes sweep runs on the experiment driver (--threads=N,
// --shard=i/N, --shards=N); classification runs inside the worker (the
// raw traces are dropped there) and both detectors' accuracy rows ride
// the stream record. The predictors renderer in src/report assembles the
// table in spec order — live or offline.
#include <algorithm>
#include <memory>

#include "bench/bench_util.hpp"
#include "phase/detector.hpp"
#include "phase/predictor.hpp"

namespace {

struct PredictorRow {
  double phases = 0.0;
  double last_pct = 0.0;
  double markov_pct = 0.0;
  double run_length_pct = 0.0;
};

struct PredictorRows {
  PredictorRow bbv;
  PredictorRow ddv;
};

PredictorRow evaluate(const dsm::sim::RunSummary& run, bool use_dds) {
  using namespace dsm;
  // Mid-range thresholds derived per processor, as the examples do.
  phase::LastPhasePredictor last;
  phase::MarkovPhasePredictor markov;
  phase::RunLengthPredictor rl;
  double phases = 0.0;
  for (const auto& proc : run.procs) {
    double lo = 1e300, hi = -1e300;
    for (const auto& r : proc.intervals) {
      lo = std::min(lo, r.dds);
      hi = std::max(hi, r.dds);
    }
    phase::Thresholds th;
    th.bbv = run.cfg.phase.bbv_norm / 8;
    th.dds = (hi - lo) / 6.0;
    std::unique_ptr<phase::PhaseDetector> det;
    if (use_dds)
      det = std::make_unique<phase::BbvDdvDetector>(
          run.cfg.phase.footprint_vectors, th);
    else
      det = std::make_unique<phase::BbvDetector>(
          run.cfg.phase.footprint_vectors, th);
    PhaseId max_phase = 0;
    for (const auto& rec : proc.intervals) {
      const auto c = det->classify(rec);
      max_phase = std::max(max_phase, c.phase);
      last.observe(c.phase);
      markov.observe(c.phase);
      rl.observe(c.phase);
    }
    phases += max_phase + 1;
  }
  PredictorRow row;
  row.phases = phases / run.procs.size();
  row.last_pct = 100.0 * last.accuracy();
  row.markov_pct = 100.0 * markov.accuracy();
  row.run_length_pct = 100.0 * rl.accuracy();
  return row;
}

std::string row_json(const PredictorRow& row) {
  using namespace dsm;
  return shard::JsonObject()
      .add("phases", row.phases)
      .add("last_pct", row.last_pct)
      .add("markov_pct", row.markov_pct)
      .add("run_length_pct", row.run_length_pct)
      .str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {8};

  return bench::run_reduced_sweep<PredictorRows>(
      bench::selected_apps(opt), opt.node_counts, opt, "predictors_eval",
      [](const driver::SpecPoint&, sim::RunSummary&& run) {
        PredictorRows rows;
        rows.bbv = evaluate(run, /*use_dds=*/false);
        rows.ddv = evaluate(run, /*use_dds=*/true);
        return rows;
      },
      [](const driver::SpecPoint&, const PredictorRows& rows) {
        return shard::JsonObject()
            .add_raw("bbv", row_json(rows.bbv))
            .add_raw("ddv", row_json(rows.ddv))
            .str();
      });
}
