// ablation_protocol.cpp — protocol × topology × nodes ablation over the
// CohPolicy seam (src/coherence/policy.hpp). The paper's machine runs
// MESI; this harness re-runs the same workload under MSI (no Exclusive —
// every private read pays an upgrade on first write) and MOESI (Owned —
// dirty lines forward cache-to-cache with no sharing writeback) across
// interconnects, to show how much of the phase signal's memory component
// the protocol choice moves.
//
// The protocol rides the SweepSpec's protocol axis (innermost), the
// topology rides the variant axis; both are ablated axes, so the seed is
// derived from the point WITHOUT them — every row of one app × nodes
// group replays the identical instruction stream and the deltas are pure
// protocol/topology effects. Runs on the experiment driver (--threads=N,
// --shard=i/N, --shards=N); the protocol renderer in src/report groups
// rows into one table per app × node count — live or offline.
#include <stdexcept>
#include <string>

#include "bench/bench_util.hpp"
#include "sim/machine.hpp"

namespace {

using namespace dsm;

constexpr Topology kTopologies[] = {Topology::kHypercube, Topology::kMesh2D};

// The variant axis carries the topology by name; map it back rather
// than inferring from the point's index.
Topology topology_of(const driver::SpecPoint& pt) {
  for (const Topology topo : kTopologies)
    if (pt.detector == topology_name(topo)) return topo;
  throw std::runtime_error("unknown topology variant: " + pt.detector);
}

// Seed from the point WITHOUT the ablated axes: every protocol × topology
// row of an app × nodes group must share one RNG stream, or the
// comparison would mislabel seed-induced variation as a protocol effect.
std::uint64_t protocol_seed(const driver::SpecPoint& pt) {
  driver::SpecPoint seed_pt = pt;
  seed_pt.detector.clear();
  seed_pt.protocol.clear();
  return driver::spec_seed(seed_pt);
}

/// One row: machine-wide coherence traffic plus mean CPI.
struct ProtocolRow {
  double mean_cpi = 0.0;
  std::uint64_t cache_to_cache = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t remote_mem = 0;
};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  if (opt.app_names.empty()) opt.app_names = {"LU"};
  if (opt.node_counts.empty()) opt.node_counts = {4, 16};
  // Ablate all three protocols unless --protocol narrowed the set (note
  // parse_options folds an explicit {mesi} into "unswept"; put it back —
  // here the protocol IS the subject, so it is always a real axis).
  if (opt.protocols.empty()) opt.protocols = {"msi", "mesi", "moesi"};

  driver::SweepSpec spec;
  spec.apps = opt.app_names;
  spec.node_counts = opt.node_counts;
  for (const Topology topo : kTopologies)
    spec.detectors.push_back(topology_name(topo));
  spec.protocols = opt.protocols;
  spec.batches = opt.batches;
  spec.scale = opt.scale;

  return bench::sharded_sweep<sim::RunSummary, ProtocolRow>(
      spec.expand(), opt, "ablation_protocol",
      [&opt](const driver::SpecPoint& pt) {
        const auto& app = apps::app_by_name(pt.app);
        MachineConfig cfg = default_config(pt.nodes);
        cfg.network.topology = topology_of(pt);
        cfg.protocol = bench::protocol_of_point(pt);
        cfg.batch_size = pt.batch != 0 ? pt.batch : opt.batch_size;
        cfg.phase.interval_instructions =
            apps::scaled_interval(app.name, pt.scale);
        cfg.seed = protocol_seed(pt);
        sim::Machine machine(cfg);
        sim::RunSummary run = machine.run(app.factory(pt.scale));
        if (opt.verbose) machine.fabric().check_invariants();
        return run;
      },
      [](const driver::SpecPoint& pt, sim::RunSummary&& run) {
        ProtocolRow row;
        double cpi = 0.0;
        for (unsigned p = 0; p < pt.nodes; ++p) cpi += run.cpi(p);
        row.mean_cpi = cpi / pt.nodes;
        for (const auto& s : run.coherence) {
          row.cache_to_cache += s.cache_to_cache;
          row.upgrades += s.upgrades;
          row.invalidations += s.invalidations_sent;
          row.writebacks += s.writebacks;
          row.remote_mem += s.remote_mem;
        }
        return row;
      },
      protocol_seed,
      [](const driver::SpecPoint&, const ProtocolRow& row) {
        return shard::JsonObject()
            .add("mean_cpi", row.mean_cpi)
            .add("cache_to_cache", row.cache_to_cache)
            .add("upgrades", row.upgrades)
            .add("invalidations", row.invalidations)
            .add("writebacks", row.writebacks)
            .add("remote_mem", row.remote_mem)
            .str();
      });
}
