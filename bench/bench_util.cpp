#include "bench/bench_util.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/log.hpp"
#include "common/table_writer.hpp"

namespace dsm::bench {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep))
    if (!item.empty()) out.push_back(item);
  return out;
}

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr,
               "error: %s\n"
               "options:\n"
               "  --scale=paper|bench|test   workload size (default bench)\n"
               "  --apps=LU,FMM,Art,Equake   subset of applications\n"
               "  --nodes=2,8,32             subset of node counts\n"
               "  --csv=DIR                  dump full-resolution CSV\n"
               "  --verbose                  progress logging\n",
               msg);
  std::exit(2);
}

}  // namespace

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--scale=", 0) == 0) {
      const std::string v = value("--scale=");
      if (v == "paper") opt.scale = apps::Scale::kPaper;
      else if (v == "bench") opt.scale = apps::Scale::kBench;
      else if (v == "test") opt.scale = apps::Scale::kTest;
      else usage("unknown --scale value");
    } else if (arg.rfind("--apps=", 0) == 0) {
      opt.app_names = split(value("--apps="), ',');
    } else if (arg.rfind("--nodes=", 0) == 0) {
      for (const auto& n : split(value("--nodes="), ','))
        opt.node_counts.push_back(
            static_cast<unsigned>(std::strtoul(n.c_str(), nullptr, 10)));
    } else if (arg.rfind("--csv=", 0) == 0) {
      opt.csv_dir = value("--csv=");
    } else if (arg == "--verbose") {
      opt.verbose = true;
      set_log_level(LogLevel::kInfo);
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // google-benchmark flag: not ours, ignore.
    } else {
      usage(("unknown option: " + arg).c_str());
    }
  }
  return opt;
}

sim::RunSummary run_workload(const apps::AppInfo& app, apps::Scale scale,
                             unsigned nodes, bool verbose) {
  MachineConfig cfg = default_config(nodes);
  cfg.phase.interval_instructions = apps::scaled_interval(app.name, scale);
  const auto t0 = std::chrono::steady_clock::now();
  sim::Machine machine(cfg);
  sim::RunSummary run = machine.run(app.factory(scale));
  if (verbose) {
    const auto dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    DSM_LOG_INFO("%s @ %uP (%s): %zu intervals/proc0, CPI %.2f, %.1fs",
                 app.name.c_str(), nodes, apps::scale_name(scale),
                 run.procs[0].intervals.size(), run.cpi(0), dt);
  }
  return run;
}

void print_curve(const std::string& title,
                 const std::vector<analysis::CurvePoint>& curve,
                 std::size_t max_rows) {
  TableWriter t({"#phases", "identifier CoV", "tuning frac"});
  const std::size_t stride =
      curve.size() <= max_rows ? 1 : curve.size() / max_rows;
  for (std::size_t i = 0; i < curve.size(); i += stride) {
    t.add_row({TableWriter::fmt(curve[i].mean_phases, 3),
               TableWriter::fmt(curve[i].mean_cov, 3),
               TableWriter::fmt(curve[i].tuning_fraction, 2)});
  }
  std::printf("%s\n%s\n", title.c_str(), t.to_text().c_str());
}

void maybe_write_csv(const BenchOptions& opt, const std::string& name,
                     const std::vector<analysis::CurvePoint>& curve) {
  if (opt.csv_dir.empty()) return;
  TableWriter t({"phases", "cov", "tuning_fraction", "bbv_threshold",
                 "dds_rel_threshold"});
  for (const auto& pt : curve) {
    t.add_row({TableWriter::fmt(pt.mean_phases, 6),
               TableWriter::fmt(pt.mean_cov, 6),
               TableWriter::fmt(pt.tuning_fraction, 6),
               std::to_string(pt.thresholds.bbv),
               TableWriter::fmt(pt.thresholds.dds, 6)});
  }
  t.write_csv_file(opt.csv_dir + "/" + name + ".csv");
}

}  // namespace dsm::bench
